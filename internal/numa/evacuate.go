package numa

// This file is the manager's degraded-mode machinery: the evacuation
// protocol that drains a failing node's local memory onto the survivors,
// the quarantine mask that keeps placements off offline nodes, and the
// revival path that returns a node to service cold.
//
// When the health driver marks a node failing (FailNode), every page with
// a copy there is evacuated synchronously, in directory order, through a
// bounded work queue: read-only replicas are simply dropped (the global
// frame is authoritative), remote placements are demoted home-to-global,
// and the local-writable authority migrates to the nearest surviving
// node with room — backing off exponentially under destination pressure
// (surfaced as Stats.EvacRetries) and falling back to a sync-to-global
// when no survivor can take the copy (Stats.EvacFallbacks). Afterwards
// the node's frame pool is empty and quarantined: the offline mask
// demotes any LOCAL or remote placement aimed at it until ReviveNode.
//
// Inertness: offline stays nil until the first FailNode, so a run with
// no failure schedule pays one nil check per fault and allocates none of
// this.

import (
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// Evacuation tuning: the work queue is bounded (the directory is
// rescanned until no copies remain on the failing node), and destination
// pressure is waited out with the same exponential-backoff shape as the
// chaos retry path.
const (
	evacBatch      = 64
	evacMaxRetries = 3
	evacBackoff    = 200 * sim.Microsecond
)

// NodeOffline reports whether node is quarantined by a failure schedule.
//
//numalint:hotpath
func (n *Manager) NodeOffline(node int) bool {
	return n.offline != nil && n.offline[node]
}

// degradeOffline demotes placement answers aimed at quarantined nodes:
// a LOCAL answer for a faulting processor homed on an offline node, or a
// remote placement whose home node is offline, proceeds against global
// memory instead. Called from Access only once the offline mask exists.
func (n *Manager) degradeOffline(pg *Page, loc Location, node int) Location {
	if loc == Local && n.offline[node] {
		return Global
	}
	if loc == PlaceRemote && pg.home >= 0 && n.offline[n.machine.Home(pg.home)] {
		return Global
	}
	return loc
}

// FailNode marks node failing and evacuates it: every page copy resident
// there is migrated or dropped, the frame pool drains to empty, and the
// node is quarantined until ReviveNode. The protocol work is charged to
// th as system time. It returns the number of page copies evacuated;
// failing an already offline node does nothing.
func (n *Manager) FailNode(th *sim.Thread, node int) int {
	n.now = th.Clock()
	if node < 0 || node >= n.machine.NNodes() {
		panic(n.violation(nil, "numa: FailNode on bad node %d", node))
	}
	if n.offline == nil {
		n.offline = make([]bool, n.machine.NNodes())
		n.offlineSeen = make([]bool, n.machine.NNodes())
	}
	if n.offline[node] {
		return 0
	}
	n.offline[node] = true
	n.stats.NodesFailed++
	evacuated := n.evacuateNode(th, node)
	// The pool must have drained: a frame still allocated after
	// evacuation would be unreachable for the rest of the quarantine.
	pool := n.machine.Memory().Local(node)
	if pool.Free() != pool.Size() {
		panic(n.violation(nil, "numa: node%d pool holds %d frames after evacuation",
			node, pool.Size()-pool.Free()))
	}
	if n.topoAware != nil {
		n.topoAware.BindTopology(n.machine.Spec())
	}
	return evacuated
}

// ReviveNode returns an offline node to service. The node starts cold:
// its residency shard must be empty and its pool fully free (evacuation
// left it so, and the quarantine kept it so), its reference bits and
// clock hand are reset, and the quarantine — including the auditor's
// monotonicity shadow — is lifted. Reviving an online node does nothing.
func (n *Manager) ReviveNode(th *sim.Thread, node int) {
	n.now = th.Clock()
	if node < 0 || node >= n.machine.NNodes() {
		panic(n.violation(nil, "numa: ReviveNode on bad node %d", node))
	}
	if n.offline == nil || !n.offline[node] {
		return
	}
	shard := &n.shards[node]
	for i, pg := range shard.resident {
		if pg != nil {
			panic(n.violation(pg, "numa: revived node%d has stale residency at frame %d", node, i))
		}
		shard.refbit[i] = false
	}
	shard.hand = 0
	pool := n.machine.Memory().Local(node)
	if pool.Free() != pool.Size() {
		panic(n.violation(nil, "numa: revived node%d pool holds %d allocated frames",
			node, pool.Size()-pool.Free()))
	}
	n.offlineSeen[node] = false
	n.offline[node] = false
	n.stats.NodesRevived++
	if n.topoAware != nil {
		n.topoAware.BindTopology(n.machine.Spec())
	}
}

// evacuateNode drains every page copy off node through the bounded work
// queue: scan the directory for up to evacBatch pages holding a copy
// there, evacuate them, rescan. The rescan makes the queue bound safe —
// evacuating one page can cascade (a migration may reclaim on a
// survivor) but never adds copies to the failing node, so the loop
// strictly drains.
func (n *Manager) evacuateNode(th *sim.Thread, node int) int {
	if n.evacQueue == nil {
		n.evacQueue = make([]*Page, 0, evacBatch)
	}
	total := 0
	for {
		q := n.evacQueue[:0]
		_ = n.dir.forEach(func(pg *Page) error {
			if len(q) < evacBatch && pg.copies[node] != nil {
				q = append(q, pg)
			}
			return nil
		})
		n.evacQueue = q
		if len(q) == 0 {
			return total
		}
		for _, pg := range q {
			n.evacuatePage(th, pg, node)
			total++
		}
	}
}

// evacuatePage removes pg's copy from the failing node. Read-only
// replicas are dropped; a remote placement homed there is demoted to
// global; the local-writable authority migrates to the nearest surviving
// node with room, or syncs back to the global frame when none has any.
// One-writable-copy holds throughout: the authority moves in a single
// copy-then-drop step, and the fallback makes the global frame the sole
// authority.
func (n *Manager) evacuatePage(th *sim.Thread, pg *Page, node int) {
	switch {
	case pg.state == Remote && pg.owner == node:
		n.demoteRemote(th, pg, n.survivorProc(node))
		n.stats.Evacuations++
		n.emitEvacuate(th, pg, node, -1, "demote remote")
	case pg.state == LocalWritable && pg.owner == node:
		dst := n.evacDest(th, pg, node)
		if dst < 0 {
			n.syncFlush(th, pg, node, n.survivorProc(node), "sync&flush own")
			pg.setState(ReadOnly)
			pg.owner = -1
			n.stats.Evacuations++
			n.stats.EvacFallbacks++
			n.emitEvacuate(th, pg, node, -1, "sync to global")
			break
		}
		src := pg.copies[node]
		dstProc := n.nodeProc(dst)
		dstF, err := n.machine.Memory().Local(dst).Alloc()
		if err != nil {
			// evacDest verified (or reclaimed) a free frame.
			panic(n.violation(pg, "numa: evacuation pool %d unexpectedly empty: %v", dst, err))
		}
		dstF.CopyFrom(src)
		n.machine.ChargeCopySys(th, src, dstF, dstProc)
		n.stats.Copies++
		n.chargeMoveDelay(th, dstProc)
		n.dropCopy(th, pg, node)
		pg.copies[dst] = dstF
		n.noteCopy(pg, dst, dstF)
		pg.owner = dst
		pg.lastOwner = dst
		n.stats.Evacuations++
		n.emitEvacuate(th, pg, node, dst, "migrate owner")
	case pg.copies[node] != nil:
		// Read-only replica: the global frame is authoritative.
		n.dropCopy(th, pg, node)
		n.stats.Evacuations++
		n.emitEvacuate(th, pg, node, -1, "drop replica")
	}
	n.maybeAudit(pg)
}

// evacDest picks the destination node for an evacuating writable copy:
// the nearest surviving node with a free frame. When every survivor is
// full it backs off exponentially (destination pressure may be a burst —
// retries are surfaced in Stats.EvacRetries), then falls back to
// reclaiming a frame on the nearest survivor. Returns -1 when no
// survivor can take the copy at all.
func (n *Manager) evacDest(th *sim.Thread, pg *Page, from int) int {
	ranked := n.machine.Spec().Ranked(from)
	if dst := n.freeSurvivor(ranked); dst >= 0 {
		return dst
	}
	for attempt := 0; attempt < evacMaxRetries; attempt++ {
		n.stats.EvacRetries++
		wait := evacBackoff << uint(attempt)
		th.Idle(wait)
		th.AdvanceSys(n.machine.Cost().NUMAOp)
		if n.bus.Enabled() {
			n.bus.Emit(simtrace.Event{
				Kind: simtrace.KindRetry, Proc: int32(n.nodeProc(from)), Thread: int32(th.ID()),
				Time: int64(th.Clock()), Dur: int64(wait), Page: pg.id,
				Arg: int64(attempt), Label: "evacuate",
			})
		}
		if dst := n.freeSurvivor(ranked); dst >= 0 {
			return dst
		}
	}
	for _, cand := range ranked[1:] {
		if n.offline[cand] {
			continue
		}
		if n.reclaimLocal(th, pg, cand, n.nodeProc(cand)) {
			return cand
		}
	}
	return -1
}

// freeSurvivor returns the first node in ranked order that is online and
// has a free frame, or -1. ranked[0] is the failing node itself.
func (n *Manager) freeSurvivor(ranked []int) int {
	for _, cand := range ranked[1:] {
		if !n.offline[cand] && n.machine.Memory().Local(cand).Free() > 0 {
			return cand
		}
	}
	return -1
}

// survivorProc returns a representative processor on the nearest online
// node — the processor evacuation work is billed to when the failing
// node's own processors are no longer eligible. Falls back to processor
// 0 when every node is offline (a degenerate schedule).
func (n *Manager) survivorProc(node int) int {
	for _, cand := range n.machine.Spec().Ranked(node) {
		if cand == node || n.offline[cand] {
			continue
		}
		if ps := n.machine.NodeProcs(cand); len(ps) > 0 {
			return ps[0]
		}
	}
	return 0
}

// emitEvacuate reports one evacuation action on the trace bus. dst is
// the destination node, or -1 when the copy was dropped or synced to
// global memory.
func (n *Manager) emitEvacuate(th *sim.Thread, pg *Page, from, dst int, label string) {
	if n.bus.Enabled() {
		n.bus.Emit(simtrace.Event{
			Kind: simtrace.KindEvacuate, Proc: -1, Thread: int32(th.ID()),
			Time: int64(th.Clock()), Page: pg.id,
			Arg: int64(from), Arg2: int64(dst), Label: label,
		})
	}
}
