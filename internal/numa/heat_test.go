package numa

// White-box property tests for the per-page decaying access histograms:
// the lazy shift-on-touch decay must be indistinguishable from an eager
// model that halves every counter at every epoch boundary.

import "testing"

// testRand is a tiny deterministic PRNG (SplitMix64) so this
// determinism-core package's tests need no math/rand.
type testRand uint64

func (r *testRand) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b893
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRand) intn(n int) int { return int(r.next() % uint64(n)) }

// eagerHeat is the reference model: counters halved once per elapsed
// epoch, applied eagerly at every advance.
type eagerHeat struct {
	heat  []uint32
	move  uint32
	epoch uint32
}

func (e *eagerHeat) advanceTo(epoch uint32) {
	for e.epoch < epoch {
		for i := range e.heat {
			e.heat[i] >>= 1
		}
		e.move >>= 1
		e.epoch++
	}
}

func TestHeatDecayLazyMatchesEager(t *testing.T) {
	const nodes = 4
	for seed := 0; seed < 100; seed++ {
		rng := testRand(seed)
		pg := &Page{heat: make([]uint32, nodes)}
		ref := &eagerHeat{heat: make([]uint32, nodes)}
		epoch := uint32(0)
		for op := 0; op < 400; op++ {
			// Advance the epoch clock by 0..5 and touch the page: the
			// lazy model decays on touch, the eager model per epoch.
			epoch += uint32(rng.intn(6))
			pg.decayTo(epoch)
			ref.advanceTo(epoch)
			if rng.intn(4) == 0 {
				pg.moveHeat++
				ref.move++
			} else {
				n := rng.intn(nodes)
				pg.heat[n]++
				ref.heat[n]++
			}
			for i := range ref.heat {
				if pg.heat[i] != ref.heat[i] {
					t.Fatalf("seed %d op %d: node %d lazy heat %d, eager %d",
						seed, op, i, pg.heat[i], ref.heat[i])
				}
			}
			if pg.moveHeat != ref.move {
				t.Fatalf("seed %d op %d: lazy moveHeat %d, eager %d", seed, op, pg.moveHeat, ref.move)
			}
			if pg.heatEpoch != epoch {
				t.Fatalf("seed %d op %d: epoch stamp %d, want %d", seed, op, pg.heatEpoch, epoch)
			}
		}
	}
}

func TestHeatDecayLargeJumpZeroes(t *testing.T) {
	pg := &Page{heat: []uint32{1 << 31, 12345, 7}, moveHeat: 999, heatEpoch: 3}
	pg.decayTo(3 + 32)
	for i, h := range pg.heat {
		if h != 0 {
			t.Errorf("node %d: heat %d after a 32-epoch jump, want 0", i, h)
		}
	}
	if pg.moveHeat != 0 {
		t.Errorf("moveHeat %d after a 32-epoch jump, want 0", pg.moveHeat)
	}
	if pg.heatEpoch != 35 {
		t.Errorf("epoch stamp %d, want 35", pg.heatEpoch)
	}
}

func TestHeatAccessors(t *testing.T) {
	pg := &Page{heat: []uint32{3, 9, 9, 1}, moveHeat: 5}
	if got := pg.TotalHeat(); got != 22 {
		t.Errorf("TotalHeat = %d, want 22", got)
	}
	// Ties go to the lowest node index, keeping the advisor deterministic.
	if got := pg.HotNode(); got != 1 {
		t.Errorf("HotNode = %d, want 1", got)
	}
	if got := pg.NodeHeat(2); got != 9 {
		t.Errorf("NodeHeat(2) = %d, want 9", got)
	}
	if got := pg.MoveHeat(); got != 5 {
		t.Errorf("MoveHeat = %d, want 5", got)
	}
	cold := &Page{heat: make([]uint32, 4)}
	if got := cold.HotNode(); got != -1 {
		t.Errorf("HotNode on a cold page = %d, want -1", got)
	}
	pg.SetPolicyWord(0xdeadbeef)
	if got := pg.PolicyWord(); got != 0xdeadbeef {
		t.Errorf("PolicyWord = %#x, want 0xdeadbeef", got)
	}
}
