package numa_test

import (
	"fmt"
	"math/rand"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/topology"
)

// failureFuzzConfig replays a seeded random access script with node
// failures woven into it: at random points the script takes a random
// node offline (never the last one standing) or revives a random
// offline node, exactly as the health driver would, while the usual
// fuzz apparatus — stride-1 audit, the dense/map oracle, the
// last-write-wins content oracle and the event-stream checker — runs
// throughout. Contended machines additionally sever and restore random
// links mid-script, so transfers reroute while the protocol churns.
func failureFuzzConfig(t *testing.T, seed int64, cfg ace.Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := ace.MustMachine(cfg)
	nnodes := m.NNodes()

	const nops = 120
	script := &policy.Scripted{}
	for i := 0; i < nops; i++ {
		switch r := rng.Intn(10); {
		case r < 5:
			script.Answers = append(script.Answers, numa.Local)
		case r < 8:
			script.Answers = append(script.Answers, numa.Global)
		default:
			script.Answers = append(script.Answers, numa.PlaceRemote)
		}
	}
	n := numa.NewManager(m, script)

	ring := simtrace.NewRingSink(256)
	checker := newProtocolChecker()
	m.AttachSink(simtrace.Tee(ring, checker))
	n.EnableAudit(1, ring)
	mirror := numa.InstallMapOracle(n)

	links := m.Spec().Links()
	severed := make([]bool, len(links))
	offline := make([]bool, nnodes)
	online := nnodes

	const npages = 6
	pages := make([]*numa.Page, npages)
	oracle := make([]uint32, npages)

	var scriptErr error
	m.Engine().Spawn("failure-fuzz", 0, func(th *sim.Thread) {
		scriptErr = func() error {
			for i := range pages {
				pg, err := n.NewPage()
				if err != nil {
					return err
				}
				if i%2 == 0 {
					pg.SetHint(numa.HintRemote)
					pg.SetHome(rng.Intn(cfg.NProc))
				}
				pages[i] = pg
			}
			for op := 0; op < nops; op++ {
				i := rng.Intn(npages)
				pg := pages[i]
				proc := rng.Intn(cfg.NProc)
				switch r := rng.Intn(100); {
				case r < 55:
					write := rng.Intn(2) == 0
					f, prot := n.Access(th, pg, proc, write, mmu.ProtReadWrite)
					if write {
						if !prot.CanWrite() {
							return fmt.Errorf("op %d: write access granted prot %v", op, prot)
						}
						v := uint32(seed)<<8 | uint32(op)
						f.Store32(0, v)
						oracle[i] = v
					} else if got := f.Load32(0); got != oracle[i] {
						return fmt.Errorf("op %d: page%d read %#x, oracle %#x", op, pg.ID(), got, oracle[i])
					}
				case r < 62:
					n.PrepareEvict(th, pg)
				case r < 70:
					n.MigrateOwner(th, pg, rng.Intn(cfg.NProc))
				case r < 75:
					n.FreePageSync(n.FreePage(th, pg))
					fresh, err := n.NewPage()
					if err != nil {
						return err
					}
					pages[i], oracle[i] = fresh, 0
				case r < 85:
					// Node failure: evacuate and quarantine a random online
					// node, keeping at least one node in service.
					if online > 1 {
						node := rng.Intn(nnodes)
						for offline[node] {
							node = rng.Intn(nnodes)
						}
						n.FailNode(th, node)
						m.Topo().SetNodeHealth(node, false)
						offline[node] = true
						online--
					}
				case r < 92:
					// Revival: a random offline node returns cold.
					if online < nnodes {
						node := rng.Intn(nnodes)
						for !offline[node] {
							node = rng.Intn(nnodes)
						}
						m.Topo().SetNodeHealth(node, true)
						n.ReviveNode(th, node)
						offline[node] = false
						online++
					}
				case r < 97 && len(links) > 0:
					// Link churn mid-script: sever or restore a random link,
					// rerouting any transfer the next access charges.
					li := rng.Intn(len(links))
					if severed[li] {
						m.Topo().RestoreLink(li)
					} else {
						m.Topo().SeverLink(li)
					}
					severed[li] = !severed[li]
				default:
					pg.SetHome(rng.Intn(cfg.NProc))
				}
				for j, p := range pages {
					if err := n.CheckInvariants(p); err != nil {
						return fmt.Errorf("op %d: %w", op, err)
					}
					if got := p.Authoritative().Load32(0); got != oracle[j] {
						return fmt.Errorf("op %d: page%d authoritative copy holds %#x, oracle %#x",
							op, p.ID(), got, oracle[j])
					}
				}
				if err := n.AuditAll(); err != nil {
					return fmt.Errorf("op %d: %w", op, err)
				}
				if err := mirror.Check(n); err != nil {
					return fmt.Errorf("op %d: dense/map divergence: %w", op, err)
				}
			}
			return nil
		}()
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatalf("seed %d: engine: %v", seed, err)
	}
	if scriptErr != nil || len(checker.errs) > 0 {
		t.Errorf("seed %d: script error: %v; checker errors: %v", seed, scriptErr, checker.errs)
		t.Logf("last %d events:\n%s", len(ring.Events()), simtrace.FormatEvents(ring.Events()))
	}
}

// TestProtocolFuzzFailure replays the fuzz scripts on seeded random
// multi-node machines with node failures, revivals and link churn woven
// into the scripts. A pass means evacuation, quarantine and rerouting
// preserve every invariant the healthy protocol holds: contents match
// the last-write-wins oracle, the dense directory matches its map
// mirror, no copy ever rests on an offline node, and every observed
// state transition stays legal.
func TestProtocolFuzzFailure(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 20
	}
	for i := 0; i < seeds; i++ {
		seed := int64(90_000 + i)
		rng := rand.New(rand.NewSource(seed))
		nnodes := 2 + rng.Intn(7) // 2..8 nodes
		dist := make([][]int, nnodes)
		for a := range dist {
			dist[a] = make([]int, nnodes)
			dist[a][a] = 10
		}
		for a := 0; a < nnodes; a++ {
			for b := a + 1; b < nnodes; b++ {
				d := 11 + rng.Intn(40)
				dist[a][b], dist[b][a] = d, d
			}
		}
		nprocs := nnodes + rng.Intn(nnodes+1) // N..2N processors
		contended := i%2 == 0
		spec, err := topology.Custom("fuzz", nprocs, dist,
			650*sim.Nanosecond, 840*sim.Nanosecond, contended, 12*sim.Nanosecond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := ace.DefaultConfig()
		cfg.NProc = nprocs
		cfg.GlobalFrames = 32
		cfg.LocalFrames = 4
		cfg.PageSize = 256
		cfg.Topo = spec
		failureFuzzConfig(t, seed, cfg)
		if t.Failed() {
			t.Fatalf("stopping at first failing seed (%d nodes, %d procs, contended=%v)", nnodes, nprocs, contended)
		}
	}
}
