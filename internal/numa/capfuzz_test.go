package numa_test

// Capability fuzz: the seeded protocol fuzz rerun with a policy that
// carries the full optional-capability surface — a page observer, a
// thread advisor and an epoch retirer — plus a fake thread mover wired
// into the manager's co-placement channel. The heat counters, the
// advisory path and the epoch clock all run hot while the usual
// apparatus (online audit at stride 1, the dense/map oracle, the
// last-write-wins content oracle) checks that none of it perturbs the
// protocol.

import (
	"fmt"
	"math/rand"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// capPolicy wraps the scripted policy with every optional capability.
// The advice script is pre-generated, so runs are reproducible.
type capPolicy struct {
	*policy.Scripted
	advice   []capAdvice
	pos      int
	observed int
	retired  int
}

type capAdvice struct {
	target int
	ok     bool
}

// ObserveAccess implements numa.PageObserver.
//
//numalint:hotpath
func (c *capPolicy) ObserveAccess(pg *numa.Page, proc int, write bool, now sim.Time) {
	c.observed++
}

// AdviseThread implements numa.ThreadAdvisor.
//
//numalint:hotpath
func (c *capPolicy) AdviseThread(pg *numa.Page, proc, node int, now sim.Time) (int, bool) {
	if c.pos >= len(c.advice) {
		return 0, false
	}
	a := c.advice[c.pos]
	c.pos++
	return a.target, a.ok
}

// RetireEpoch implements numa.Retirer.
//
//numalint:hotpath
func (c *capPolicy) RetireEpoch(now sim.Time) { c.retired++ }

// fakeMover stands in for the scheduler on a machine with no scheduler:
// it records every hint and accepts every other one.
type fakeMover struct {
	calls    int
	accepted int
}

// MigrateHint implements numa.ThreadMover.
//
//numalint:hotpath
func (f *fakeMover) MigrateHint(th *sim.Thread, node int) bool {
	f.calls++
	if f.calls%2 == 0 {
		f.accepted++
		return true
	}
	return false
}

var (
	_ numa.PageObserver  = (*capPolicy)(nil)
	_ numa.ThreadAdvisor = (*capPolicy)(nil)
	_ numa.Retirer       = (*capPolicy)(nil)
	_ numa.ThreadMover   = (*fakeMover)(nil)
)

// capFuzzScript is fuzzScript's capability-bearing sibling: same shape
// of seeded access script, but the policy observes pages, advises
// thread moves and retires epochs throughout.
func capFuzzScript(t *testing.T, seed int64) {
	t.Helper()
	cfg := ace.DefaultConfig()
	cfg.NProc = 3
	cfg.GlobalFrames = 32
	cfg.LocalFrames = 4
	cfg.PageSize = 256
	rng := rand.New(rand.NewSource(seed))
	m := ace.MustMachine(cfg)

	const nops = 120
	pol := &capPolicy{Scripted: &policy.Scripted{}}
	for i := 0; i < nops; i++ {
		if rng.Intn(2) == 0 {
			pol.Answers = append(pol.Answers, numa.Local)
		} else {
			pol.Answers = append(pol.Answers, numa.Global)
		}
		pol.advice = append(pol.advice, capAdvice{
			target: rng.Intn(m.NNodes()),
			ok:     rng.Intn(3) != 0,
		})
	}
	n := numa.NewManager(m, pol)
	if !n.TracksHeat() {
		t.Fatalf("seed %d: capability policy bound but heat tracking is off", seed)
	}
	// A short epoch so the retirer's clock ticks within the run.
	n.SetHeatEpoch(sim.Millisecond)
	mover := &fakeMover{}
	n.SetThreadMover(mover)

	ring := simtrace.NewRingSink(256)
	checker := newProtocolChecker()
	m.AttachSink(simtrace.Tee(ring, checker))
	n.EnableAudit(1, ring)
	mirror := numa.InstallMapOracle(n)

	const npages = 6
	pages := make([]*numa.Page, npages)
	oracle := make([]uint32, npages)

	var scriptErr error
	m.Engine().Spawn("capfuzz", 0, func(th *sim.Thread) {
		scriptErr = func() error {
			for i := range pages {
				pg, err := n.NewPage()
				if err != nil {
					return err
				}
				pages[i] = pg
			}
			for op := 0; op < nops; op++ {
				i := rng.Intn(npages)
				pg := pages[i]
				proc := rng.Intn(cfg.NProc)
				switch r := rng.Intn(100); {
				case r < 70:
					write := rng.Intn(2) == 0
					f, prot := n.Access(th, pg, proc, write, mmu.ProtReadWrite)
					if write {
						if !prot.CanWrite() {
							return fmt.Errorf("op %d: write access granted prot %v", op, prot)
						}
						v := uint32(seed)<<8 | uint32(op)
						f.Store32(0, v)
						oracle[i] = v
					} else if got := f.Load32(0); got != oracle[i] {
						return fmt.Errorf("op %d: page%d read %#x, oracle %#x", op, pg.ID(), got, oracle[i])
					}
					// Keep virtual time moving so heat epochs elapse.
					th.Idle(200 * sim.Microsecond)
				case r < 80:
					n.PrepareEvict(th, pg)
				case r < 90:
					n.MigrateOwner(th, pg, rng.Intn(cfg.NProc))
				default:
					n.FreePageSync(n.FreePage(th, pg))
					fresh, err := n.NewPage()
					if err != nil {
						return err
					}
					pages[i], oracle[i] = fresh, 0
				}
				for j, p := range pages {
					if err := n.CheckInvariants(p); err != nil {
						return fmt.Errorf("op %d: %w", op, err)
					}
					if got := p.Authoritative().Load32(0); got != oracle[j] {
						return fmt.Errorf("op %d: page%d authoritative copy holds %#x, oracle %#x",
							op, p.ID(), got, oracle[j])
					}
				}
				if err := mirror.Check(n); err != nil {
					return fmt.Errorf("op %d: dense/map divergence: %w", op, err)
				}
			}
			return nil
		}()
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatalf("seed %d: engine: %v", seed, err)
	}
	if scriptErr != nil || len(checker.errs) > 0 {
		t.Errorf("seed %d: script error: %v; checker errors: %v", seed, scriptErr, checker.errs)
		t.Logf("last %d events:\n%s", len(ring.Events()), simtrace.FormatEvents(ring.Events()))
		return
	}
	if pol.observed == 0 {
		t.Errorf("seed %d: the observer never fired", seed)
	}
	if pol.retired == 0 {
		t.Errorf("seed %d: the epoch retirer never fired", seed)
	}
	st := n.Stats()
	if got := st.HintsAccepted + st.HintsRejected; got != uint64(mover.calls) {
		t.Errorf("seed %d: manager counted %d hints, mover saw %d calls", seed, got, mover.calls)
	}
	if st.HintsAccepted != uint64(mover.accepted) {
		t.Errorf("seed %d: manager counted %d accepted hints, mover accepted %d", seed, st.HintsAccepted, mover.accepted)
	}
}

// TestProtocolFuzzCapabilities replays seeded scripts with the
// capability-bearing policy. A pass means the heat counters, advisory
// calls and epoch retirement never corrupt contents, break a directory
// invariant, diverge the dense forms from the map oracle, or drift the
// manager's hint accounting from the mover's.
func TestProtocolFuzzCapabilities(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		capFuzzScript(t, int64(20_000+seed))
		if t.Failed() {
			t.Fatalf("stopping at first failing seed")
		}
	}
}
