package numa

import (
	"numasim/internal/mem"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// This file is the manager's memory-pressure machinery: the residency
// index over local frames, the deterministic clock-style reclaimer that
// frees a frame when a local memory fills, and the fault-injection hooks
// (transient allocation failures with bounded retry/backoff, delayed page
// moves). None of it runs — and none of it charges virtual time or emits
// events — unless a local pool actually exhausts or an Injector is
// installed, which is what keeps default-configuration runs byte-identical
// to a build without it.

// admitLocal reports whether node can take one more local copy of pg,
// retrying injected transient failures with backoff and running the clock
// reclaimer when the pool is genuinely full. proc is the faulting
// processor the work is billed to. On false the caller demotes the
// placement to global for this request only.
func (n *Manager) admitLocal(th *sim.Thread, pg *Page, node, proc int) bool {
	if n.chaos != nil {
		//numalint:coldpath fault injection: the retry loop runs only with an Injector installed
		for attempt := 0; n.chaos.FailLocalAlloc(th.Clock(), proc); attempt++ {
			n.stats.ChaosFaults++
			if attempt >= n.chaos.MaxRetries() {
				n.emitPressure(th, pg, node, proc, "chaos-fallback")
				return false
			}
			// Wait out the transient condition in virtual time; the
			// bookkeeping of re-issuing the allocation is system time.
			wait := n.chaos.RetryBackoff(attempt)
			th.Idle(wait)
			th.AdvanceSys(n.machine.Cost().NUMAOp)
			n.stats.Retries++
			if n.bus.Enabled() {
				n.bus.Emit(simtrace.Event{
					Kind: simtrace.KindRetry, Proc: int32(proc), Thread: int32(th.ID()),
					Time: int64(th.Clock()), Dur: int64(wait), Page: pg.id,
					Arg: int64(attempt),
				})
			}
		}
	}
	if n.machine.Memory().Local(node).Free() > 0 {
		return true
	}
	if n.reclaimLocal(th, pg, node, proc) {
		return true
	}
	n.emitPressure(th, pg, node, proc, "local-fallback")
	return false
}

// reclaimLocal frees one frame of node's local memory by evicting a
// resident copy, chosen by a second-chance clock over the frame table:
// the hand sweeps frame indices in order, clearing reference bits, and
// evicts the first frame whose bit is already clear. Read-only replicas
// are flushed (the global frame stays authoritative); a local-writable
// copy is synced back to global memory first. Remote home placements are
// sticky (§4.4) and are skipped, as is keep — the page being placed.
// proc is the faulting processor billed for the eviction. Reports false
// when nothing was evictable.
func (n *Manager) reclaimLocal(th *sim.Thread, keep *Page, node, proc int) bool {
	shard := &n.shards[node]
	size := len(shard.resident)
	// Two revolutions bound the scan: the first may only clear bits.
	for step := 0; step < 2*size; step++ {
		i := shard.hand
		shard.hand = (i + 1) % size
		victim := shard.resident[i]
		if victim == nil || victim == keep || victim.state == Remote {
			continue
		}
		if shard.refbit[i] {
			shard.refbit[i] = false
			continue
		}
		before := victim.state
		var action string
		if victim.state == LocalWritable {
			// The only copy of a local-writable page lives on its owner,
			// so a resident local-writable victim is owned by node.
			n.syncFlush(th, victim, node, proc, "sync&flush own")
			victim.setState(ReadOnly)
			victim.owner = -1
			action = "sync&flush own"
		} else {
			n.dropCopy(th, victim, node)
			action = "flush"
		}
		th.AdvanceSys(n.machine.Cost().NUMAOp)
		n.stats.Evictions++
		if n.bus.Enabled() {
			n.bus.Emit(simtrace.Event{
				Kind: simtrace.KindEvict, Proc: int32(node), Thread: int32(th.ID()),
				Time: int64(th.Clock()), Page: victim.id,
				Arg: int64(before), Label: action,
			})
		}
		n.maybeAudit(victim)
		return true
	}
	return false
}

// noteCopy records that frame f of node's local memory now holds a copy
// of pg, and gives it a fresh reference bit.
//
//numalint:oraclechannel
func (n *Manager) noteCopy(pg *Page, node int, f *mem.Frame) {
	shard := &n.shards[node]
	shard.resident[f.Index()] = pg
	shard.refbit[f.Index()] = true
	if n.mir != nil {
		//numalint:coldpath test-only: the mirror oracle is attached by the fuzz/parity suites
		n.mir.noteCopy(pg, node, f.Index())
	}
}

// noteDrop clears the residency record for frame f of node's pool.
//
//numalint:oraclechannel
func (n *Manager) noteDrop(node int, f *mem.Frame) {
	shard := &n.shards[node]
	shard.resident[f.Index()] = nil
	shard.refbit[f.Index()] = false
	if n.mir != nil {
		//numalint:coldpath test-only: the mirror oracle is attached by the fuzz/parity suites
		n.mir.noteDrop(node, f.Index())
	}
}

// chargeMoveDelay charges any injected delay for a page move performed by
// proc (chaos models bus contention and slow paths on copies).
//
//numalint:coldpath fault injection: no-op unless an Injector is installed
func (n *Manager) chargeMoveDelay(th *sim.Thread, proc int) {
	if n.chaos == nil {
		return
	}
	if d := n.chaos.MoveDelay(th.Clock(), proc); d > 0 {
		th.Idle(d)
		n.stats.ChaosDelays++
	}
}

// emitPressure reports one graceful-degradation event: a LOCAL or remote
// placement could not get a frame of node's local memory and the request
// by proc proceeds against global memory.
func (n *Manager) emitPressure(th *sim.Thread, pg *Page, node, proc int, label string) {
	if n.bus.Enabled() {
		n.bus.Emit(simtrace.Event{
			Kind: simtrace.KindPressure, Proc: int32(proc), Thread: int32(th.ID()),
			Time: int64(th.Clock()), Page: pg.id,
			Arg: int64(n.machine.Memory().Local(node).Free()), Label: label,
		})
	}
}
