package numa_test

import (
	"fmt"
	"math/rand"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/chaos"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/topology"
)

// protocolChecker is a simtrace sink that validates protocol invariants
// from the event stream alone: every observed state change must be legal
// under numa.Transitions, a page is pinned at most once per lifetime, and
// its move count never decreases. Violations are recorded, not fatal, so
// the fuzz driver can dump the ring-buffer trace alongside them.
type protocolChecker struct {
	errs   []string
	state  map[int64]numa.State
	pinned map[int64]bool
	moves  map[int64]int64
}

func newProtocolChecker() *protocolChecker {
	return &protocolChecker{
		state:  make(map[int64]numa.State),
		pinned: make(map[int64]bool),
		moves:  make(map[int64]int64),
	}
}

func (c *protocolChecker) failf(format string, args ...any) {
	c.errs = append(c.errs, fmt.Sprintf(format, args...))
}

func (c *protocolChecker) Emit(ev simtrace.Event) {
	switch ev.Kind {
	case simtrace.KindPageCreated:
		c.state[ev.Page] = numa.ReadOnly
		c.pinned[ev.Page] = false
		c.moves[ev.Page] = 0
	case simtrace.KindStateChange:
		from, to := numa.State(ev.Arg2), numa.State(ev.Arg)
		if have, ok := c.state[ev.Page]; ok && have != from {
			c.failf("page%d: state change from %v but last known state is %v", ev.Page, from, have)
		}
		legal := false
		for _, s := range numa.Transitions[from] {
			if s == to {
				legal = true
				break
			}
		}
		if !legal {
			c.failf("page%d: illegal transition %v -> %v", ev.Page, from, to)
		}
		c.state[ev.Page] = to
	case simtrace.KindPin:
		if c.pinned[ev.Page] {
			c.failf("page%d: pinned twice without an intervening free", ev.Page)
		}
		c.pinned[ev.Page] = true
	case simtrace.KindDecision:
		if ev.Arg2 < c.moves[ev.Page] {
			c.failf("page%d: move count went backwards (%d -> %d)", ev.Page, c.moves[ev.Page], ev.Arg2)
		}
		c.moves[ev.Page] = ev.Arg2
	case simtrace.KindPageFreed:
		delete(c.state, ev.Page)
		delete(c.pinned, ev.Page)
		delete(c.moves, ev.Page)
	}
}

// fuzzScript drives one seeded random access script against the NUMA
// manager and reports the first invariant violation, comparing page
// contents against a trivial last-write-wins oracle throughout. With
// pressure set, a scripted chaos injector fails a quarter of the local
// frame allocations, exercising the retry/fallback path under the same
// oracle.
// It returns the number of chaos faults the manager absorbed, so the
// pressure test can assert the failure schedule really fired.
func fuzzScript(t *testing.T, seed int64, pressure bool) uint64 {
	t.Helper()
	cfg := ace.DefaultConfig()
	cfg.NProc = 3
	cfg.GlobalFrames = 32
	cfg.LocalFrames = 4 // small enough that LOCAL decisions sometimes fall back
	cfg.PageSize = 256
	return fuzzConfig(t, seed, pressure, cfg)
}

// fuzzConfig is fuzzScript against an arbitrary machine configuration; the
// multi-node topology fuzz feeds it random Custom specs via cfg.Topo.
func fuzzConfig(t *testing.T, seed int64, pressure bool, cfg ace.Config) uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := ace.MustMachine(cfg)

	// Pre-generate the policy's answers so the run exercises Scripted too.
	// PlaceRemote answers are demoted to Global by the manager unless the
	// page carries a home pragma.
	const nops = 120
	script := &policy.Scripted{}
	for i := 0; i < nops; i++ {
		switch r := rng.Intn(10); {
		case r < 5:
			script.Answers = append(script.Answers, numa.Local)
		case r < 8:
			script.Answers = append(script.Answers, numa.Global)
		default:
			script.Answers = append(script.Answers, numa.PlaceRemote)
		}
	}
	n := numa.NewManager(m, script)
	if pressure {
		// The failure schedule is part of the seeded script: call k of
		// FailLocalAlloc fails iff fails[k], so the run stays reproducible.
		fails := make([]bool, 4*nops)
		for i := range fails {
			fails[i] = rng.Intn(4) == 0
		}
		n.SetChaos(&chaos.Scripted{Fail: fails, Retries: 2, Wait: 50 * sim.Microsecond})
	}

	ring := simtrace.NewRingSink(256)
	checker := newProtocolChecker()
	m.AttachSink(simtrace.Tee(ring, checker))
	// Full online audit: every protocol action re-validates the directory
	// invariants, and any violation dies with the ring contents attached.
	n.EnableAudit(1, ring)
	// Map oracle: the pre-dense representation of the live-page directory
	// and the residency shards runs alongside and is compared after every
	// operation (the dense forms must stay identical to the map forms).
	mirror := numa.InstallMapOracle(n)

	const npages = 6
	pages := make([]*numa.Page, npages)
	oracle := make([]uint32, npages)

	var scriptErr error
	m.Engine().Spawn("fuzz", 0, func(th *sim.Thread) {
		scriptErr = func() error {
			for i := range pages {
				pg, err := n.NewPage()
				if err != nil {
					return err
				}
				if i%2 == 0 {
					pg.SetHint(numa.HintRemote)
					pg.SetHome(rng.Intn(cfg.NProc))
				}
				pages[i] = pg
			}
			if err := mirror.Check(n); err != nil {
				return fmt.Errorf("after page creation: dense/map divergence: %w", err)
			}
			for op := 0; op < nops; op++ {
				i := rng.Intn(npages)
				pg := pages[i]
				proc := rng.Intn(cfg.NProc)
				switch r := rng.Intn(100); {
				case r < 70:
					write := rng.Intn(2) == 0
					f, prot := n.Access(th, pg, proc, write, mmu.ProtReadWrite)
					if write {
						if !prot.CanWrite() {
							return fmt.Errorf("op %d: write access granted prot %v", op, prot)
						}
						v := uint32(seed)<<8 | uint32(op)
						f.Store32(0, v)
						oracle[i] = v
					} else if got := f.Load32(0); got != oracle[i] {
						return fmt.Errorf("op %d: page%d read %#x, oracle %#x", op, pg.ID(), got, oracle[i])
					}
				case r < 80:
					n.PrepareEvict(th, pg)
				case r < 90:
					n.MigrateOwner(th, pg, rng.Intn(cfg.NProc))
				case r < 95:
					n.FreePageSync(n.FreePage(th, pg))
					fresh, err := n.NewPage()
					if err != nil {
						return err
					}
					pages[i], oracle[i] = fresh, 0
				default:
					pg.SetHome(rng.Intn(cfg.NProc)) // churn the §4.4 home pragma
				}
				for j, p := range pages {
					if err := n.CheckInvariants(p); err != nil {
						return fmt.Errorf("op %d: %w", op, err)
					}
					if got := p.Authoritative().Load32(0); got != oracle[j] {
						return fmt.Errorf("op %d: page%d authoritative copy holds %#x, oracle %#x",
							op, p.ID(), got, oracle[j])
					}
				}
				if err := mirror.Check(n); err != nil {
					return fmt.Errorf("op %d: dense/map divergence: %w", op, err)
				}
			}
			return nil
		}()
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatalf("seed %d: engine: %v", seed, err)
	}
	if scriptErr != nil || len(checker.errs) > 0 {
		t.Errorf("seed %d: script error: %v; checker errors: %v", seed, scriptErr, checker.errs)
		t.Logf("last %d events:\n%s", len(ring.Events()), simtrace.FormatEvents(ring.Events()))
	}
	return n.Stats().ChaosFaults
}

// TestProtocolFuzz replays seeded random access scripts against the NUMA
// manager: random reads and writes from random processors under a scripted
// policy (including §4.4 remote placements), interleaved with evictions,
// owner migrations, frees and home-pragma churn. After every operation the
// structural invariants must hold and each page's authoritative contents
// must match a last-write-wins oracle; the simtrace event stream is
// independently checked for transition legality and pin monotonicity.
// Failures dump the ring-buffer trace.
func TestProtocolFuzz(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 50
	}
	for seed := 0; seed < seeds; seed++ {
		fuzzScript(t, int64(seed), false)
		if t.Failed() {
			t.Fatalf("stopping at first failing seed")
		}
	}
}

// TestProtocolFuzzPressure reruns the fuzz scripts with a scripted chaos
// injector failing a quarter of the local-frame allocations. Transient
// allocation failures must never corrupt contents or break a protocol
// invariant: the manager retries, reclaims or falls back to global
// placement, and the last-write-wins oracle stays green throughout.
func TestProtocolFuzzPressure(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 25
	}
	var faults uint64
	for seed := 0; seed < seeds; seed++ {
		faults += fuzzScript(t, int64(seed), true)
		if t.Failed() {
			t.Fatalf("stopping at first failing seed")
		}
	}
	if faults == 0 {
		t.Error("the scripted failure schedule never fired; the pressure path went unexercised")
	}
}

// TestProtocolFuzzTopology replays the fuzz scripts on seeded random
// multi-node machines: 2..8 nodes with random symmetric SLIT matrices,
// more processors than nodes (so node pools and their copies are shared
// between processors), and link contention on half the machines. The full
// protocol apparatus rides along — online audit at stride 1 with its
// per-node residency bounds, the dense/map oracle, the last-write-wins
// content oracle, and the event-stream transition checker — so a pass
// means the node-indexed protocol holds the same invariants the two-level
// ACE does.
func TestProtocolFuzzTopology(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 20
	}
	for i := 0; i < seeds; i++ {
		seed := int64(50_000 + i)
		rng := rand.New(rand.NewSource(seed))
		nnodes := 2 + rng.Intn(7) // 2..8 nodes
		dist := make([][]int, nnodes)
		for a := range dist {
			dist[a] = make([]int, nnodes)
			dist[a][a] = 10
		}
		for a := 0; a < nnodes; a++ {
			for b := a + 1; b < nnodes; b++ {
				d := 11 + rng.Intn(40)
				dist[a][b], dist[b][a] = d, d
			}
		}
		nprocs := nnodes + rng.Intn(nnodes+1) // N..2N processors
		contended := i%2 == 0
		spec, err := topology.Custom("fuzz", nprocs, dist,
			650*sim.Nanosecond, 840*sim.Nanosecond, contended, 12*sim.Nanosecond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := ace.DefaultConfig()
		cfg.NProc = nprocs
		cfg.GlobalFrames = 32
		cfg.LocalFrames = 4
		cfg.PageSize = 256
		cfg.Topo = spec
		fuzzConfig(t, seed, i%4 == 3, cfg)
		if t.Failed() {
			t.Fatalf("stopping at first failing seed (%d nodes, %d procs, contended=%v)", nnodes, nprocs, contended)
		}
	}
}

// TestDenseDirectoryOracle is the dense-vs-map property test: it replays
// seeded fuzz scripts (a fresh seed range, half of them under memory
// pressure so eviction and reclaim churn the residency shards) while the
// map-based oracle installed by fuzzScript shadows every directory and
// residency mutation. fuzzScript compares the two representations after
// every operation, so a pass means the dense, generation-stamped forms
// stayed identical to the old map forms across create/free/reuse cycles,
// replication, migration, eviction and remote placement.
func TestDenseDirectoryOracle(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 20
	}
	for i := 0; i < seeds; i++ {
		seed := int64(10_000 + i)
		fuzzScript(t, seed, i%2 == 1)
		if t.Failed() {
			t.Fatalf("stopping at first failing seed")
		}
	}
}
