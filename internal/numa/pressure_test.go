package numa

// White-box property test for the local-frame reclaimer: however hard a
// random workload leans on local placement, the residency table never
// holds more pages than the configured frame budget, and it stays exactly
// consistent with the pages' own copy records.

import (
	"math/rand"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/sim"
)

// alwaysLocal asks for local placement on every request, the worst case
// for a bounded local memory.
type alwaysLocal struct{}

func (alwaysLocal) CachePolicy(pg *Page, proc int, write bool, maxProt mmu.Prot) Location {
	return Local
}
func (alwaysLocal) Name() string { return "always-local" }

// checkResidency verifies the two-way consistency between the manager's
// residency table and the pages' copy records, and the frame budget.
func checkResidency(t *testing.T, n *Manager, pages []*Page, budget int) {
	t.Helper()
	for proc := range n.shards {
		count := 0
		for idx, pg := range n.shards[proc].resident {
			if pg == nil {
				continue
			}
			count++
			f := pg.copies[proc]
			if f == nil {
				t.Fatalf("cpu%d frame %d: resident table lists page%d, which has no copy there",
					proc, idx, pg.id)
			}
			if f.Index() != idx {
				t.Fatalf("cpu%d: resident table slot %d holds page%d whose copy is in frame %d",
					proc, idx, pg.id, f.Index())
			}
		}
		if count > budget {
			t.Fatalf("cpu%d: %d resident local pages exceed the %d-frame budget", proc, count, budget)
		}
		for _, pg := range pages {
			if f := pg.copies[proc]; f != nil && n.shards[proc].resident[f.Index()] != pg {
				t.Fatalf("cpu%d: page%d has a copy in frame %d but the resident table disagrees",
					proc, pg.id, f.Index())
			}
		}
	}
}

// TestReclaimerResidencyProperty hammers a minimal local memory with
// local-hungry accesses from every processor and checks after every
// operation that residency never exceeds the budget and the table never
// drifts from the pages' copy records.
func TestReclaimerResidencyProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))

		cfg := ace.DefaultConfig()
		cfg.NProc = 3
		cfg.GlobalFrames = 64
		cfg.LocalFrames = ace.MinLocalFrames
		cfg.PageSize = 256
		m := ace.MustMachine(cfg)
		n := NewManager(m, alwaysLocal{})

		const npages = 8
		pages := make([]*Page, npages)

		var scriptErr error
		m.Engine().Spawn("pressure", 0, func(th *sim.Thread) {
			for i := range pages {
				pg, err := n.NewPage()
				if err != nil {
					scriptErr = err
					return
				}
				pages[i] = pg
			}
			for op := 0; op < 300; op++ {
				pg := pages[rng.Intn(npages)]
				proc := rng.Intn(cfg.NProc)
				write := rng.Intn(2) == 0
				n.Access(th, pg, proc, write, mmu.ProtReadWrite)
				checkResidency(t, n, pages, cfg.LocalFrames)
				if t.Failed() {
					return
				}
			}
		})
		if err := m.Engine().Run(); err != nil {
			t.Fatalf("seed %d: engine: %v", seed, err)
		}
		if scriptErr != nil {
			t.Fatalf("seed %d: %v", seed, scriptErr)
		}
		if t.Failed() {
			t.Fatalf("seed %d: residency property violated", seed)
		}
		if n.Stats().Evictions == 0 {
			t.Errorf("seed %d: a %d-frame local memory under %d pages never evicted",
				seed, cfg.LocalFrames, npages)
		}
	}
}
