package numa_test

import (
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mem"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
)

// remoteRig builds a machine with a pragma policy, so HintRemote pages are
// placed at their home processor (§4.4).
func remoteRig(t *testing.T, nproc int, body func(th *sim.Thread, m *ace.Machine, n *numa.Manager)) {
	t.Helper()
	cfg := ace.DefaultConfig()
	cfg.NProc = nproc
	cfg.GlobalFrames = 32
	cfg.LocalFrames = 16
	m := ace.MustMachine(cfg)
	n := numa.NewManager(m, policy.NewPragma(nil))
	m.Engine().Spawn("test", 0, func(th *sim.Thread) { body(th, m, n) })
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRemotePlacement(t *testing.T) {
	remoteRig(t, 3, func(th *sim.Thread, m *ace.Machine, n *numa.Manager) {
		pg, _ := n.NewPage()
		pg.SetHint(numa.HintRemote)
		pg.SetHome(1)
		f, prot := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		if pg.State() != numa.Remote {
			t.Fatalf("state = %v, want remote", pg.State())
		}
		if f != pg.Copy(1) || f.Proc() != 1 {
			t.Errorf("frame = %v, want cpu1's local frame", f)
		}
		if !prot.CanWrite() {
			t.Error("remote page should map writable")
		}
		if pg.Authoritative() != f {
			t.Error("home copy should be authoritative")
		}
		// A second access from another processor is a no-action hit on the
		// same frame.
		f2, _ := n.Access(th, pg, 2, false, mmu.ProtReadWrite)
		if f2 != f {
			t.Error("all processors must share the home frame")
		}
		if pg.NCopies() != 1 {
			t.Errorf("copies = %d, want exactly the home copy", pg.NCopies())
		}
		if n.Stats().RemotePlaced != 1 {
			t.Errorf("RemotePlaced = %d", n.Stats().RemotePlaced)
		}
	})
}

func TestRemoteAccessCosts(t *testing.T) {
	remoteRig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager) {
		pg, _ := n.NewPage()
		pg.SetHint(numa.HintRemote)
		pg.SetHome(0)
		f, _ := n.Access(th, pg, 1, true, mmu.ProtReadWrite)
		cost := m.Cost()
		// Home accesses are local, others remote.
		if got := cost.FetchCost(f, 0); got != cost.LocalFetch {
			t.Errorf("home fetch cost %v, want local", got)
		}
		if got := cost.FetchCost(f, 1); got != cost.RemoteFetch {
			t.Errorf("other fetch cost %v, want remote", got)
		}
		if got := cost.StoreCost(f, 1); got != cost.RemoteStore {
			t.Errorf("other store cost %v, want remote store", got)
		}
	})
}

func TestRemotePreservesData(t *testing.T) {
	remoteRig(t, 3, func(th *sim.Thread, m *ace.Machine, n *numa.Manager) {
		pg, _ := n.NewPage()
		// Establish data while the page migrates normally.
		f0, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		f0.Store32(0, 321)
		// Now hint it remote at cpu2.
		pg.SetHint(numa.HintRemote)
		pg.SetHome(2)
		f, _ := n.Access(th, pg, 1, false, mmu.ProtReadWrite)
		if f.Load32(0) != 321 {
			t.Error("remote placement lost data")
		}
		f.Store32(0, 654)
		// Demote by clearing the hint: next access syncs home copy back.
		pg.SetHint(numa.HintNone)
		g, _ := n.Access(th, pg, 0, false, mmu.ProtReadWrite)
		if g.Load32(0) != 654 {
			t.Errorf("demotion lost data: %d", g.Load32(0))
		}
		if pg.State() == numa.Remote {
			t.Error("page still remote after hint cleared")
		}
		if n.Stats().RemoteDemoted != 1 {
			t.Errorf("RemoteDemoted = %d", n.Stats().RemoteDemoted)
		}
	})
}

func TestRemoteFromEachState(t *testing.T) {
	states := []string{"fresh", "replicated", "lw-home", "lw-other", "global"}
	for _, setup := range states {
		setup := setup
		t.Run(setup, func(t *testing.T) {
			remoteRig(t, 3, func(th *sim.Thread, m *ace.Machine, n *numa.Manager) {
				pg, _ := n.NewPage()
				var want uint32
				prep := func(proc int, write bool, v uint32) {
					f, _ := n.Access(th, pg, proc, write, mmu.ProtReadWrite)
					if write {
						f.Store32(4, v)
						want = v
					}
				}
				switch setup {
				case "fresh":
				case "replicated":
					prep(0, true, 7)
					prep(1, false, 0)
					prep(2, false, 0)
				case "lw-home":
					prep(1, true, 9)
				case "lw-other":
					prep(0, true, 11)
				case "global":
					// ping-pong past the default threshold of the pragma
					// fallback policy
					for i := uint32(0); i < 6; i++ {
						prep(int(i%2), true, 100+i)
					}
					if pg.State() != numa.GlobalWritable {
						t.Fatalf("setup: state %v, want global-writable", pg.State())
					}
				}
				pg.SetHint(numa.HintRemote)
				pg.SetHome(1)
				f, _ := n.Access(th, pg, 0, false, mmu.ProtReadWrite)
				if pg.State() != numa.Remote {
					t.Fatalf("state = %v, want remote", pg.State())
				}
				if f.Proc() != 1 || f.Kind() != mem.Local {
					t.Errorf("frame %v not at home", f)
				}
				if got := f.Load32(4); got != want {
					t.Errorf("data = %d, want %d", got, want)
				}
				if pg.NCopies() != 1 {
					t.Errorf("copies = %d, want 1", pg.NCopies())
				}
			})
		})
	}
}

func TestRemoteWithoutHomeFallsBackGlobal(t *testing.T) {
	remoteRig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager) {
		pg, _ := n.NewPage()
		pg.SetHint(numa.HintRemote) // no SetHome
		f, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		if f != pg.GlobalFrame() || pg.State() != numa.GlobalWritable {
			t.Errorf("remote without home should fall back to global, got %v/%v", f, pg.State())
		}
	})
}

func TestRemoteEvictAndFree(t *testing.T) {
	remoteRig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager) {
		pg, _ := n.NewPage()
		pg.SetHint(numa.HintRemote)
		pg.SetHome(1)
		f, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		f.Store32(8, 42)
		n.PrepareEvict(th, pg)
		if pg.GlobalFrame().Load32(8) != 42 {
			t.Error("evict lost remote data")
		}
		if pg.NCopies() != 0 {
			t.Error("evict left copies")
		}
		localFree := m.Memory().Local(1).Free()
		// Re-place and then free.
		g, _ := n.Access(th, pg, 0, false, mmu.ProtReadWrite)
		if g.Load32(8) != 42 {
			t.Error("re-placement lost data")
		}
		tag := n.FreePage(th, pg)
		n.FreePageSync(tag)
		if m.Memory().Local(1).Free() != localFree {
			t.Error("free did not release the home frame")
		}
	})
}
