// Package numa implements the paper's primary contribution: the NUMA
// manager, which maintains the consistency of pages cached in local
// memories using a directory-based ownership protocol (§2.3.1), and the
// policy interface through which a NUMA policy directs page placement
// (§2.3.2).
//
// Every logical page is permanently backed by one frame of global memory
// and may additionally be cached in at most one frame of local memory per
// node (on the paper's ACE every processor is its own node; other
// topologies home several processors on one node and those processors
// share the node's copy). A logical page is in one of three states:
//
//   - read-only: replicated in zero or more local memories, all mappings
//     read-only; the global frame holds the authoritative contents.
//   - local-writable: one local memory holds the (possibly dirty)
//     authoritative copy; the global frame is stale.
//   - global-writable: no local copies; everybody accesses global memory.
//
// Requests reach the manager from the pmap layer on page faults. For each
// request the policy answers LOCAL or GLOBAL, and the manager performs the
// actions of the paper's Table 1 (reads) or Table 2 (writes): some mix of
// "sync" (copy a dirty local page back to global), "flush" (drop mappings
// and free local copies), "unmap" (drop mappings to the global frame) and
// "copy to local".
package numa

import (
	"fmt"

	"numasim/internal/ace"
	"numasim/internal/mem"
	"numasim/internal/mmu"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// State is the consistency state of a logical page.
//
//numalint:stateenum
type State int

// Logical page states. The first three are §2.3.1's; Remote realizes the
// §4.4 extension: the page lives permanently in one processor's local
// memory ("home") and every other processor references it remotely.
const (
	ReadOnly State = iota
	LocalWritable
	GlobalWritable
	Remote
)

func (s State) String() string {
	switch s {
	case ReadOnly:
		return "read-only"
	case LocalWritable:
		return "local-writable"
	case GlobalWritable:
		return "global-writable"
	case Remote:
		return "remote"
	default:
		//numalint:coldpath diagnostic formatting for an out-of-range state value
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Location is a policy's placement answer (§2.3.1: "a single function,
// cache_policy, that takes a logical page and protection and returns a
// location: LOCAL or GLOBAL").
type Location int

// Policy answers. PlaceRemote is the §4.4 extension: place the page in
// its home processor's local memory and let other processors reference it
// remotely. It requires a home pragma on the page (the paper: "we see no
// reasonable way of determining this location without pragmas").
const (
	Local Location = iota
	Global
	PlaceRemote
)

func (l Location) String() string {
	switch l {
	case Local:
		return "LOCAL"
	case Global:
		return "GLOBAL"
	case PlaceRemote:
		return "REMOTE"
	default:
		return fmt.Sprintf("location(%d)", int(l))
	}
}

// ReconsideringPolicy is a Policy that wants pinned (global-writable)
// pages re-presented periodically. Because the manager maps pinned pages
// with full permissions (there is nothing further to learn for the
// paper's policy), a policy that can unpin needs its mappings dropped now
// and then so accesses fault and re-consult it. The manager runs an
// amortized sweep — the moral equivalent of PLATINUM's defrost daemon —
// dropping mappings of pages that have been pinned and unexamined for the
// given interval.
type ReconsideringPolicy interface {
	Policy
	ReconsiderInterval() sim.Time
}

// Policy decides whether a page should be placed in local or global memory.
// Implementations live in the policy package; the manager works with any.
type Policy interface {
	// CachePolicy is consulted on every request the manager handles.
	// write reports whether the faulting access was a store; maxProt is the
	// loosest protection the machine-independent VM system permits for the
	// mapping (the paper's first pmap_enter protection argument).
	CachePolicy(pg *Page, proc int, write bool, maxProt mmu.Prot) Location
	// Name identifies the policy in reports.
	Name() string
}

// Page is the NUMA manager's record for one logical page.
type Page struct {
	id     int64 // manager-unique id, for trace events
	bus    *simtrace.Bus
	global *mem.Frame
	state  State
	owner  int          // node holding the local-writable copy, else -1
	copies []*mem.Frame // per-node local replica, nil when absent

	moves     int  // ownership transfers in response to writes (§2.3.2)
	pinned    bool // placed permanently in global memory by the policy
	lastOwner int  // last node to hold the page local-writable
	needZero  bool // lazy zero-fill still pending (§2.3.1)

	// Virtual-time stamps for time-based policies (e.g. the
	// PLATINUM-style freeze/defrost comparator).
	lastMove    sim.Time
	lastRequest sim.Time

	// everWritten supports the paper's observation that read-only logical
	// pages often hold data that could have been written but never was.
	everWritten bool

	// hint is an application placement pragma (§4.3). Policies may honour
	// or ignore it.
	hint Hint
	// home is the processor named by a HintRemote pragma (§4.4); -1 when
	// unset.
	home int

	// Decaying counters for the adaptive policies (see policyapi.go):
	// heat is the per-node access histogram, moveHeat the decaying
	// analogue of moves, heatEpoch the decay epoch the counters were
	// last shifted to, and pword an opaque 64-bit scratch word owned by
	// the bound policy. Maintained only when the policy has the
	// PageObserver or ThreadAdvisor capability; pooled with the record.
	heat      []uint32
	moveHeat  uint32
	heatEpoch uint32
	pword     uint64

	// mgr is the owning manager (set on adoption); slot/gen locate the
	// page in the manager's dense live-page directory (slot -1 after
	// FreePage; gen guards against stale handles once the slot is
	// reused). pinSeen is the auditor's pin-monotonicity shadow: once the
	// auditor has observed the pin bit set, it must stay set until
	// FreePage.
	mgr     *Manager
	slot    int32
	gen     uint32
	pinSeen bool
}

// Hint is an application-supplied placement pragma (§4.3: "pragmas that
// would cause a region of virtual memory to be marked cacheable and placed
// in local memory or marked noncacheable and placed in global memory").
type Hint int

// Placement hints.
const (
	HintNone Hint = iota
	HintCacheable
	HintNoncacheable
	// HintRemote asks for §4.4 remote placement at the page's home
	// processor (set with SetHome).
	HintRemote
)

func (h Hint) String() string {
	switch h {
	case HintNone:
		return "none"
	case HintCacheable:
		return "cacheable"
	case HintNoncacheable:
		return "noncacheable"
	case HintRemote:
		return "remote"
	default:
		return fmt.Sprintf("hint(%d)", int(h))
	}
}

// ID returns the page's manager-unique id, as carried by trace events.
//
//numalint:hotpath
func (p *Page) ID() int64 { return p.id }

// Hint returns the page's placement pragma.
//
//numalint:hotpath
func (p *Page) Hint() Hint { return p.hint }

// SetHint sets the page's placement pragma.
//
//numalint:hotpath
func (p *Page) SetHint(h Hint) { p.hint = h }

// Home returns the processor named by a remote-placement pragma, or -1.
//
//numalint:hotpath
func (p *Page) Home() int { return p.home }

// SetHome names the page's home processor for remote placement (§4.4).
//
//numalint:hotpath
func (p *Page) SetHome(proc int) { p.home = proc }

// GlobalFrame returns the page's permanent global-memory frame.
//
//numalint:hotpath
func (p *Page) GlobalFrame() *mem.Frame { return p.global }

// State returns the page's consistency state.
//
//numalint:hotpath
func (p *Page) State() State { return p.state }

// Owner returns the node holding the local-writable copy, or -1. On the
// ACE topology node indices coincide with processor indices.
func (p *Page) Owner() int { return p.owner }

// Copy returns node's local replica, or nil.
//
//numalint:hotpath
func (p *Page) Copy(node int) *mem.Frame { return p.copies[node] }

// NCopies reports how many local replicas exist.
func (p *Page) NCopies() int {
	n := 0
	for _, c := range p.copies {
		if c != nil {
			n++
		}
	}
	return n
}

// Moves reports how many times the consistency protocol has moved the page
// between processors in response to writes.
//
//numalint:hotpath
func (p *Page) Moves() int { return p.moves }

// LastMoveAt reports the virtual time of the page's most recent ownership
// transfer (zero if it has never moved).
//
//numalint:hotpath
func (p *Page) LastMoveAt() sim.Time { return p.lastMove }

// LastRequestAt reports the virtual time of the request currently being
// (or most recently) handled for this page. Policies may compare it with
// LastMoveAt to reason about recency.
//
//numalint:hotpath
func (p *Page) LastRequestAt() sim.Time { return p.lastRequest }

// Pinned reports whether the page has been placed permanently in global
// memory.
//
//numalint:hotpath
func (p *Page) Pinned() bool { return p.pinned }

// EverWritten reports whether any processor has ever written the page.
//
//numalint:hotpath
func (p *Page) EverWritten() bool { return p.everWritten }

// Authoritative returns the frame currently holding the true contents of
// the page: the owner's local copy for local-writable pages, otherwise the
// global frame.
//
//numalint:hotpath
func (p *Page) Authoritative() *mem.Frame {
	switch p.state {
	case LocalWritable:
		return p.copies[p.owner]
	case Remote:
		return p.copies[p.owner]
	default:
		return p.global
	}
}

// Stats counts NUMA-manager events.
type Stats struct {
	ReadRequests  uint64
	WriteRequests uint64
	Syncs         uint64 // dirty local copies written back to global
	Flushes       uint64 // local copies freed
	Unmaps        uint64 // global-frame mappings dropped
	Copies        uint64 // pages copied into a local memory
	ZeroFills     uint64 // lazy zero-fills performed
	Moves         uint64 // ownership transfers in response to writes
	Pins          uint64 // pages pinned into global memory
	LocalFallback uint64 // LOCAL decisions demoted because local memory was full
	Evictions     uint64 // local copies evicted by the clock reclaimer
	Retries       uint64 // transiently failed local allocations retried after backoff
	ChaosFaults   uint64 // transient local-allocation failures injected
	ChaosDelays   uint64 // page moves delayed by fault injection
	RemotePlaced  uint64 // pages placed at a home processor (§4.4)
	RemoteDemoted uint64 // remote placements revoked by a policy change
	PagesCreated  uint64
	PagesFreed    uint64
	HintsAccepted uint64 // thread-migration hints the scheduler recorded
	HintsRejected uint64 // thread-migration hints the scheduler refused
	Evacuations   uint64 // page copies moved or dropped off failing nodes
	EvacRetries   uint64 // evacuations that backed off on destination pressure
	EvacFallbacks uint64 // evacuated pages synced to global (no survivor had room)
	NodesFailed   uint64 // nodes taken offline by the failure schedule
	NodesRevived  uint64 // offline nodes returned to service
}

// Injector is the fault-injection hook the NUMA manager consults on the
// pressure paths; internal/chaos implements it. All methods are called
// from the simulation loop with the acting thread's virtual clock, so an
// implementation advancing a seeded PRNG stays deterministic at any host
// parallelism. A nil Injector (the default) injects nothing.
type Injector interface {
	// FailLocalAlloc reports whether one local-frame allocation attempt
	// by proc at virtual time now fails transiently.
	FailLocalAlloc(now sim.Time, proc int) bool
	// MoveDelay returns extra virtual time to charge a page move by proc,
	// or zero.
	MoveDelay(now sim.Time, proc int) sim.Time
	// MaxRetries bounds the manager's retry loop for transient failures.
	MaxRetries() int
	// RetryBackoff returns the virtual-time wait before the zero-based
	// retry attempt.
	RetryBackoff(attempt int) sim.Time
	// Disrupt is consulted once per protocol request; it may panic (crash
	// drill) or return true to make the calling thread stall without
	// advancing virtual time, exercising the engine's stall watchdog.
	Disrupt(now sim.Time, proc int) bool
}

// Manager is the NUMA manager: it owns the consistency protocol for all
// logical pages of one machine.
type Manager struct {
	machine *ace.Machine
	policy  Policy
	stats   Stats

	// bus is the machine's trace bus; nextPageID numbers pages for its
	// events, and now tracks the virtual time of the request being
	// handled for emission sites that have no thread at hand (page
	// creation, state changes).
	bus        *simtrace.Bus
	nextPageID int64
	now        sim.Time

	// noReplication disables read replication: a read-only page keeps at
	// most one local copy, which migrates to its readers (the pure
	// migration protocol of Li-style systems). Used by the replication
	// ablation; the paper's system always replicates.
	noReplication bool

	// Defrost-daemon state for ReconsideringPolicy (see that type).
	gwPages   []*Page
	lastSweep sim.Time

	// Capability bindings (see policyapi.go): the policy's optional
	// interfaces, asserted once in NewManager so the hot path only
	// nil-checks. trackHeat is set when an observer or advisor is
	// bound; heatEpoch is the decay period and curEpoch the epoch of
	// the most recent request; mover is the scheduler-side co-placement
	// channel installed by SetThreadMover.
	observer   PageObserver
	advisor    ThreadAdvisor
	retirer    Retirer
	reconsider ReconsideringPolicy
	mover      ThreadMover
	trackHeat  bool
	heatEpoch  sim.Time
	curEpoch   uint32

	// chaos, when non-nil, injects transient local-allocation failures
	// and page-move delays on the pressure paths.
	chaos Injector

	// Degraded-mode state (see evacuate.go): offline is the node
	// quarantine mask (nil until the first FailNode, so healthy runs pay
	// one nil check on the fault path and allocate nothing), offlineSeen
	// the auditor's monotonic-quarantine shadow, evacQueue the bounded
	// evacuation work list reused across failures, and topoAware the
	// bound TopologyAware capability, kept so health changes can rebind.
	offline     []bool
	offlineSeen []bool
	evacQueue   []*Page
	topoAware   TopologyAware

	// Clock-reclaimer state, sharded by node: which page's copy occupies
	// each local frame (shards[node].resident[frameIndex]), a
	// second-chance reference bit per frame, and the clock hand. The
	// residency shard is the per-memory index that makes deterministic
	// eviction possible without iterating any map.
	shards []procShard

	// onAction, when set, receives the paper's action vocabulary as each
	// protocol action is performed ("sync&flush other", "copy to local",
	// ...). Used to derive Tables 1 and 2 from the implementation itself.
	onAction func(string)

	// Online-auditor state (see audit.go): the sampling stride and
	// operation counter, the forensic ring snapshot attached to
	// violations, and the dense live-page directory behind AuditAll and
	// the state-dump directory summary.
	auditStride     int
	auditOps        uint64
	auditSweepEvery uint64
	ring            *simtrace.RingSink
	//numalint:oracle
	dir directory

	// mir, when non-nil, mirrors directory and residency mutations into a
	// test oracle (see the mirror interface in directory.go).
	//numalint:oraclehook
	mir mirror

	// freePages recycles Page records: FreePage pushes the retired record
	// and NewPage/AdoptPage pop one instead of allocating, so steady-state
	// page churn (pageout/pagein cycles, task teardown) allocates nothing.
	// freeTag is the single reusable FreePage completion token — cleanup
	// is eager, so at most one tag is ever outstanding per free.
	freePages []*Page
	freeTag   FreeTag
}

// NewManager creates a NUMA manager for machine using the given policy.
//
//numalint:oraclechannel constructor: the residency shards are built before any mirror can attach
func NewManager(machine *ace.Machine, pol Policy) *Manager {
	if pol == nil {
		panic(newViolation(nil, nil, "numa: nil policy"))
	}
	n := &Manager{machine: machine, policy: pol, bus: machine.Bus(), heatEpoch: DefaultHeatEpoch}
	n.bindCapabilities(pol)
	machine.Engine().AddDumpSection(n.DumpSection)
	nnodes := machine.NNodes()
	n.shards = make([]procShard, nnodes)
	for p := 0; p < nnodes; p++ {
		size := machine.Memory().Local(p).Size()
		n.shards[p].resident = make([]*Page, size)
		n.shards[p].refbit = make([]bool, size)
	}
	return n
}

// SetChaos installs a fault injector on the manager's pressure paths
// (nil disables injection). Install before the simulation runs.
func (n *Manager) SetChaos(inj Injector) { n.chaos = inj }

// Chaos returns the installed fault injector, or nil.
func (n *Manager) Chaos() Injector { return n.chaos }

// Policy returns the manager's placement policy.
func (n *Manager) Policy() Policy { return n.policy }

// Stats returns a copy of the manager's counters.
func (n *Manager) Stats() Stats { return n.stats }

// Machine returns the machine this manager runs on.
func (n *Manager) Machine() *ace.Machine { return n.machine }

// SetActionHook registers fn to observe protocol actions (for deriving the
// paper's Tables 1 and 2 and for protocol tests). Pass nil to disable.
func (n *Manager) SetActionHook(fn func(string)) { n.onAction = fn }

// SetReplication enables or disables read replication (enabled by
// default). With replication off, read-only pages migrate their single
// local copy between readers instead of replicating.
func (n *Manager) SetReplication(enabled bool) { n.noReplication = !enabled }

// emitAction reports one protocol action: to the string hook (from which
// Tables 1 and 2 are derived) and, when a sink is attached, as a
// structured KindAction event stamped with the acting thread's clock.
// proc is the processor the action serves, or -1 for whole-page sweeps.
func (n *Manager) emitAction(th *sim.Thread, pg *Page, proc int, label string) {
	if n.onAction != nil {
		//numalint:coldpath observer hook: table derivation and protocol tests only
		n.onAction(label)
	}
	if n.bus.Enabled() {
		n.bus.Emit(simtrace.Event{
			Kind: simtrace.KindAction, Proc: int32(proc), Thread: int32(th.ID()),
			Time: int64(th.Clock()), Page: pg.id, Arg: int64(pg.state), Label: label,
		})
	}
}

// newPageRecord returns a blank Page record, recycling one retired by
// FreePage when available. Every field is at its adoption default: state
// read-only, no owner, no copies, no pragmas.
func (n *Manager) newPageRecord() *Page {
	if k := len(n.freePages); k > 0 {
		pg := n.freePages[k-1]
		n.freePages = n.freePages[:k-1]
		copies := pg.copies
		for i := range copies {
			copies[i] = nil
		}
		heat := pg.heat
		for i := range heat {
			heat[i] = 0
		}
		*pg = Page{copies: copies, heat: heat, owner: -1, lastOwner: -1, home: -1, slot: -1}
		return pg
	}
	return &Page{
		owner:     -1,
		lastOwner: -1,
		home:      -1,
		slot:      -1,
		copies:    make([]*mem.Frame, n.machine.NNodes()),
		heat:      make([]uint32, n.machine.NNodes()),
	}
}

// nodeProc returns a representative processor homed on node (the lowest-
// numbered one), for protocol work initiated on a page rather than by a
// faulting processor. On the ACE it is the node index itself. A node
// with no processors falls back to processor 0.
func (n *Manager) nodeProc(node int) int {
	if ps := n.machine.NodeProcs(node); len(ps) > 0 {
		return ps[0]
	}
	return 0
}

// NewPage allocates a fresh logical page backed by a newly allocated global
// frame. The page starts in the read-only state with no copies and a lazy
// zero-fill pending. It returns mem.ErrNoFrames when global memory is
// exhausted (the VM layer then reclaims via pageout).
func (n *Manager) NewPage() (*Page, error) {
	f, err := n.machine.Memory().Global().Alloc()
	if err != nil {
		return nil, err
	}
	// Model invariant, not a charged operation: a reused frame must not leak
	// the previous page's bytes into the zero-fill semantics. The charged
	// zero-fill happens lazily at first touch (§2.3.1).
	f.Zero()
	pg := n.newPageRecord()
	pg.global = f
	pg.needZero = true
	n.adopt(pg)
	return pg, nil
}

// adopt numbers a new page, hooks it to the trace bus and reports its
// birth. Creation has no thread at hand, so the event carries the time of
// the request the manager most recently handled.
func (n *Manager) adopt(pg *Page) {
	pg.id = n.nextPageID
	n.nextPageID++
	pg.bus = n.bus
	n.register(pg)
	n.stats.PagesCreated++
	if n.bus.Enabled() {
		n.bus.Emit(simtrace.Event{
			Kind: simtrace.KindPageCreated, Proc: -1, Thread: -1,
			Time: int64(n.now), Page: pg.id,
		})
	}
}

// AdoptPage builds a page around existing contents (page-in from backing
// store). The global frame must already hold the page's data; no zero-fill
// is pending. NUMA placement state starts fresh, which is how the paper's
// system reconsiders pinning decisions only across a pageout/pagein cycle
// (§4.3 footnote 4).
func (n *Manager) AdoptPage(global *mem.Frame) *Page {
	pg := n.newPageRecord()
	pg.global = global
	n.adopt(pg)
	return pg
}

// MarkZeroFill records that the page must read as zeros on its next
// materialization (the Mach pmap_zero_page, lazily evaluated per §2.3.1).
// It may only be applied to a quiescent page.
//
//numalint:hotpath
func (n *Manager) MarkZeroFill(pg *Page) {
	if pg.NCopies() != 0 || pg.state != ReadOnly {
		panic(n.violation(pg, "numa: MarkZeroFill on an active page"))
	}
	pg.global.Zero()
	pg.needZero = true
}

// MarkFilled records that the page's global frame already holds valid data
// (e.g. after pmap_copy_page or pagein), cancelling any pending lazy
// zero-fill.
//
//numalint:hotpath
func (n *Manager) MarkFilled(pg *Page) {
	pg.needZero = false
}

// Access handles one request from the pmap layer: processor proc faulted on
// the page with a load (write=false) or store (write=true). It consults the
// policy, performs the actions of Table 1 or Table 2, and returns the frame
// the processor should map together with the strictest protection that
// resolves the fault (the paper's min-protection, §2.3.3).
//
// All protocol costs are charged to th as system time.
//
//numalint:hotpath
func (n *Manager) Access(th *sim.Thread, pg *Page, proc int, write bool, maxProt mmu.Prot) (*mem.Frame, mmu.Prot) {
	if write && !maxProt.CanWrite() {
		panic(n.violation(pg, "numa: write request on non-writable page escaped the VM layer"))
	}
	cost := n.machine.Cost()
	th.AdvanceSys(cost.NUMAOp)
	if write {
		n.stats.WriteRequests++
		pg.everWritten = true
	} else {
		n.stats.ReadRequests++
	}
	pg.lastRequest = th.Clock()
	n.now = th.Clock()
	if n.chaos != nil && n.chaos.Disrupt(th.Clock(), proc) {
		//numalint:coldpath fault injection: a stall drill deliberately wedges the thread
		// Injected stall drill: spin without advancing virtual time until
		// the engine's stall watchdog declares the run livelocked and
		// tears it down (Yield panics an abort signal then).
		for {
			th.Yield()
		}
	}
	n.MaybeSweep(th)

	// The faulting processor's placements land on its home node's local
	// memory (on the ACE the two indices coincide).
	node := n.machine.Home(proc)
	if n.trackHeat {
		n.observeAccess(pg, proc, node, write, th.Clock())
	}
	loc := n.policy.CachePolicy(pg, proc, write, maxProt)
	if n.offline != nil {
		//numalint:coldpath degraded mode: the offline mask exists only under a failure schedule
		loc = n.degradeOffline(pg, loc, node)
	}
	if loc == Local && pg.copies[node] == nil && !n.admitLocal(th, pg, node, proc) {
		// Local memory could not yield a frame even after retry and
		// reclaim: fall back to a global placement for this request only
		// (the decision is re-made on the next fault).
		loc = Global
		n.stats.LocalFallback++
	}
	if loc == PlaceRemote {
		// No home pragma, or the home's local memory is exhausted.
		if pg.home < 0 {
			loc = Global
		} else if h := n.machine.Home(pg.home); pg.copies[h] == nil && !n.admitLocal(th, pg, h, proc) {
			loc = Global
		}
	}
	if n.bus.Enabled() {
		n.bus.Emit(simtrace.Event{
			Kind: simtrace.KindDecision, Proc: int32(proc), Thread: int32(th.ID()),
			Time: int64(th.Clock()), Page: pg.id,
			Arg: int64(loc), Arg2: int64(pg.moves), Label: n.policy.Name(),
		})
	}
	// A remote-placed page whose policy answer has changed is demoted
	// first: its home copy is synced back to global memory and flushed.
	if pg.state == Remote && loc != PlaceRemote {
		n.demoteRemote(th, pg, proc)
	}

	var f *mem.Frame
	var prot mmu.Prot
	switch {
	case loc == PlaceRemote:
		f, prot = n.toRemote(th, pg, proc, maxProt)
	case loc == Global:
		f, prot = n.toGlobal(th, pg, proc, node, maxProt)
	case write:
		f, prot = n.writeLocal(th, pg, proc, node, maxProt)
	default:
		f, prot = n.readLocal(th, pg, proc, node)
	}
	// Give the frame a second chance against the clock reclaimer: it was
	// just used.
	if f.Kind() == mem.Local {
		n.shards[f.Proc()].refbit[f.Index()] = true
	}
	// With the co-placement channel connected, ask the advisor whether
	// the faulting thread would be better placed elsewhere now that the
	// request — and the counters it updated — are settled.
	if n.advisor != nil && n.mover != nil {
		n.adviseThread(th, pg, proc, node)
	}
	n.maybeAudit(pg)
	return f, prot
}

// toRemote implements the §4.4 extension: the page is placed in its home
// processor's local memory; every processor maps that single frame, so the
// home references it locally and everyone else remotely. The transition
// rules are the "straightforward extension of the algorithm presented in
// Section 2" the paper describes.
func (n *Manager) toRemote(th *sim.Thread, pg *Page, proc int, maxProt mmu.Prot) (*mem.Frame, mmu.Prot) {
	home := n.machine.Home(pg.home)
	switch pg.state {
	case Remote:
		if pg.owner == home {
			n.emitAction(th, pg, proc, "no action")
			return pg.copies[home], maxProt
		}
		// The home pragma changed while the page was placed: sync the old
		// placement away and fall through to re-place at the new home.
		n.demoteRemote(th, pg, proc)
	case ReadOnly:
		n.flushExcept(th, pg, home, "flush other")
	case LocalWritable:
		if pg.owner != home {
			n.syncFlush(th, pg, pg.owner, proc, "sync&flush other")
		}
		pg.owner = -1
	case GlobalWritable:
		n.unmapAll(th, pg)
	}
	f := n.ensureCopy(th, pg, home, proc)
	pg.setState(Remote)
	pg.owner = home
	n.stats.RemotePlaced++
	n.emitAction(th, pg, proc, "place at home")
	return f, maxProt
}

// demoteRemote revokes a remote placement: the home copy is synced back to
// the global frame, every processor's mapping of it is dropped, and the
// frame is freed. The page reverts to the read-only state with no copies.
func (n *Manager) demoteRemote(th *sim.Thread, pg *Page, requester int) {
	at := pg.owner
	src := pg.copies[at]
	if src == nil {
		panic(n.violation(pg, "numa: remote page without a placed copy"))
	}
	cost := n.machine.Cost()
	pg.global.CopyFrom(src)
	n.machine.ChargeCopySys(th, src, pg.global, requester)
	n.stats.Syncs++
	n.chargeMoveDelay(th, requester)
	// Every processor may map the home frame; drop them all.
	for p := 0; p < n.machine.NProc(); p++ {
		if n.machine.MMU(p).RemoveFrame(src) {
			th.AdvanceSys(cost.MMUOp)
		}
	}
	n.machine.Memory().Local(at).Release(src)
	n.noteDrop(at, src)
	pg.copies[at] = nil
	n.stats.Flushes++
	n.stats.RemoteDemoted++
	pg.setState(ReadOnly)
	pg.owner = -1
	n.emitAction(th, pg, requester, "sync&flush home")
}

// readLocal implements the LOCAL row of Table 1. node is proc's home
// node, where the replica is placed.
func (n *Manager) readLocal(th *sim.Thread, pg *Page, proc, node int) (*mem.Frame, mmu.Prot) {
	switch pg.state {
	case ReadOnly:
		// Desired appearance: one more replica; state unchanged. Under the
		// no-replication ablation the single copy migrates instead.
		if n.noReplication && pg.copies[node] == nil && pg.NCopies() > 0 {
			n.flushExcept(th, pg, node, "flush other")
		}
		f := n.ensureCopy(th, pg, node, proc)
		return f, mmu.ProtRead
	case GlobalWritable:
		n.unmapAll(th, pg)
		f := n.ensureCopy(th, pg, node, proc)
		pg.setState(ReadOnly)
		return f, mmu.ProtRead
	case LocalWritable:
		if pg.owner == node {
			n.emitAction(th, pg, proc, "no action")
			return pg.copies[node], mmu.ProtRead
		}
		n.syncFlush(th, pg, pg.owner, proc, "sync&flush other")
		f := n.ensureCopy(th, pg, node, proc)
		pg.setState(ReadOnly)
		pg.owner = -1
		return f, mmu.ProtRead
	default:
		panic(n.violation(pg, "numa: readLocal on a remote page (toRemote handles placement)"))
	}
}

// writeLocal implements the LOCAL row of Table 2. node is proc's home
// node, which takes ownership.
func (n *Manager) writeLocal(th *sim.Thread, pg *Page, proc, node int, maxProt mmu.Prot) (*mem.Frame, mmu.Prot) {
	switch pg.state {
	case ReadOnly:
		n.flushExcept(th, pg, node, "flush other")
		f := n.ensureCopy(th, pg, node, proc)
		n.becomeOwner(pg, node)
		return f, maxProt
	case GlobalWritable:
		n.unmapAll(th, pg)
		f := n.ensureCopy(th, pg, node, proc)
		// Coming home from global memory is not a transfer between
		// processors, so it does not count against the move budget.
		pg.setState(LocalWritable)
		pg.owner = node
		pg.lastOwner = node
		return f, maxProt
	case LocalWritable:
		if pg.owner == node {
			n.emitAction(th, pg, proc, "no action")
			return pg.copies[node], maxProt
		}
		n.syncFlush(th, pg, pg.owner, proc, "sync&flush other")
		f := n.ensureCopy(th, pg, node, proc)
		n.becomeOwner(pg, node)
		return f, maxProt
	default:
		panic(n.violation(pg, "numa: writeLocal on a remote page (toRemote handles placement)"))
	}
}

// toGlobal implements the GLOBAL rows of Tables 1 and 2. node is proc's
// home node, used only to label the sync of an own-node copy.
func (n *Manager) toGlobal(th *sim.Thread, pg *Page, proc, node int, maxProt mmu.Prot) (*mem.Frame, mmu.Prot) {
	switch pg.state {
	case ReadOnly:
		n.flushExcept(th, pg, -1, "flush all")
	case GlobalWritable:
		n.emitAction(th, pg, proc, "no action")
	case LocalWritable:
		if pg.owner == node {
			n.syncFlush(th, pg, node, proc, "sync&flush own")
		} else {
			n.syncFlush(th, pg, pg.owner, proc, "sync&flush other")
		}
		pg.owner = -1
	case Remote:
		panic(n.violation(pg, "numa: toGlobal on a remote page (demote it first)"))
	}
	if pg.state != GlobalWritable {
		pg.setState(GlobalWritable)
		if !pg.pinned {
			pg.pinned = true
			n.stats.Pins++
			if n.bus.Enabled() {
				n.bus.Emit(simtrace.Event{
					Kind: simtrace.KindPin, Proc: int32(proc), Thread: int32(th.ID()),
					Time: int64(th.Clock()), Page: pg.id, Arg: int64(pg.moves),
				})
			}
		}
		if n.reconsider != nil {
			n.gwPages = append(n.gwPages, pg) //numalint:coldpath bounded: one slot per pinned page, reclaimed by the sweep
		}
	}
	if pg.needZero {
		n.machine.ChargeZeroSys(th, pg.global, proc)
		pg.needZero = false
		n.stats.ZeroFills++
	}
	return pg.global, maxProt
}

// MaybeSweep implements the defrost daemon: under a ReconsideringPolicy,
// once per interval it drops every pinned page's mappings, so the next
// access faults and the policy is consulted again. It is invoked from the
// fault path and from the scheduler's clock tick (pinned pages do not
// fault on their own); the sweep's cost is charged to the thread that
// triggered it, as daemon work billed to system time.
//
//numalint:hotpath
func (n *Manager) MaybeSweep(th *sim.Thread) {
	if n.reconsider == nil || len(n.gwPages) == 0 {
		return
	}
	interval := n.reconsider.ReconsiderInterval()
	if th.Clock()-n.lastSweep < interval {
		return
	}
	n.lastSweep = th.Clock()
	live := n.gwPages[:0]
	for _, pg := range n.gwPages {
		if pg.state != GlobalWritable {
			continue // left the pinned state some other way
		}
		n.unmapAll(th, pg)
		th.AdvanceSys(n.machine.Cost().NUMAOp)
		live = append(live, pg) //numalint:coldpath in-place filter: live reuses gwPages' backing array and cannot grow
	}
	n.gwPages = live
}

// becomeOwner records node as the page's local-writable owner and counts
// an ownership transfer when the page last belonged to a different node
// ("transfers of page ownership", §2.3.2).
func (n *Manager) becomeOwner(pg *Page, node int) {
	pg.setState(LocalWritable)
	pg.owner = node
	if pg.lastOwner >= 0 && pg.lastOwner != node {
		pg.moves++
		n.stats.Moves++
		pg.lastMove = pg.lastRequest
		if n.trackHeat && pg.moveHeat < heatCap {
			pg.moveHeat++
		}
	}
	pg.lastOwner = node
}

// ensureCopy guarantees that node holds a local replica of the page,
// copying from global memory (or performing the pending lazy zero-fill) as
// needed, and reports the replica's frame. The copy work is charged to
// the faulting processor proc. The caller has verified that a local frame
// is available.
func (n *Manager) ensureCopy(th *sim.Thread, pg *Page, node, proc int) *mem.Frame {
	if f := pg.copies[node]; f != nil {
		return f
	}
	f, err := n.machine.Memory().Local(node).Alloc()
	if err != nil {
		// Access checked Free() before deciding LOCAL.
		panic(n.violation(pg, "numa: local pool %d unexpectedly empty: %v", node, err))
	}
	if pg.needZero {
		// Lazy zero-fill directly into local memory, avoiding "writing
		// zeros into global memory and immediately copying them" (§2.3.1).
		f.Zero()
		n.machine.ChargeZeroSys(th, f, proc)
		pg.needZero = false
		n.stats.ZeroFills++
	} else {
		f.CopyFrom(pg.global)
		n.machine.ChargeCopySys(th, pg.global, f, proc)
		n.stats.Copies++
		n.chargeMoveDelay(th, proc)
	}
	pg.copies[node] = f
	n.noteCopy(pg, node, f)
	n.emitAction(th, pg, proc, "copy to local")
	return f
}

// syncFlush copies the dirty local-writable copy held by the owner node
// back to the global frame, then flushes that copy. The copy is performed
// by the faulting processor, so syncing another node's page pays
// remote-fetch plus global-store per word. The action label distinguishes
// the paper's "sync&flush own" and "sync&flush other".
func (n *Manager) syncFlush(th *sim.Thread, pg *Page, owner, requester int, label string) {
	src := pg.copies[owner]
	if src == nil {
		panic(n.violation(pg, "numa: syncFlush without a local copy on cpu%d", owner))
	}
	pg.global.CopyFrom(src)
	n.machine.ChargeCopySys(th, src, pg.global, requester)
	n.stats.Syncs++
	n.chargeMoveDelay(th, requester)
	n.dropCopy(th, pg, owner)
	n.emitAction(th, pg, requester, label)
}

// dropCopy removes node's replica: drops any mapping to it (every
// processor homed on the node may have one) and releases the local frame.
func (n *Manager) dropCopy(th *sim.Thread, pg *Page, node int) {
	f := pg.copies[node]
	if f == nil {
		return
	}
	cost := n.machine.Cost()
	for _, p := range n.machine.NodeProcs(node) {
		if n.machine.MMU(p).RemoveFrame(f) {
			th.AdvanceSys(cost.MMUOp)
		}
	}
	n.machine.Memory().Local(node).Release(f)
	n.noteDrop(node, f)
	pg.copies[node] = nil
	n.stats.Flushes++
}

// flushExcept drops every local replica except keep's (keep == -1 flushes
// all), and also drops any read-only mappings of the global frame on the
// processors of the flushed nodes.
func (n *Manager) flushExcept(th *sim.Thread, pg *Page, keep int, label string) {
	cost := n.machine.Cost()
	acted := false
	for node := range pg.copies {
		if node == keep {
			continue
		}
		if pg.copies[node] != nil {
			n.dropCopy(th, pg, node)
			acted = true
		}
		// A processor may map the global frame read-only (local fallback).
		for _, p := range n.machine.NodeProcs(node) {
			if n.machine.MMU(p).RemoveFrame(pg.global) {
				th.AdvanceSys(cost.MMUOp)
				acted = true
			}
		}
	}
	if acted {
		n.emitAction(th, pg, -1, label)
	}
}

// unmapAll drops every processor's mapping of the global frame (used when a
// global-writable page, which has no local copies, leaves that state). The
// action is reported unconditionally: it is the protocol step, whether or
// not translations happen to exist at the moment.
func (n *Manager) unmapAll(th *sim.Thread, pg *Page) {
	cost := n.machine.Cost()
	for p := 0; p < n.machine.NProc(); p++ {
		if n.machine.MMU(p).RemoveFrame(pg.global) {
			th.AdvanceSys(cost.MMUOp)
			n.stats.Unmaps++
		}
	}
	n.emitAction(th, pg, -1, "unmap all")
}

// MigrateOwner moves a local-writable page's copy from its current owner
// node to newProc's home node — the §4.7 load-balancing primitive ("we
// will need to migrate processes to new homes and move their local pages
// with them"). The copy is charged to th at memory speed; pages in other
// states are left where they are. The transfer does not count against the
// page's move budget: it is scheduler-initiated, not "in response to
// writes".
func (n *Manager) MigrateOwner(th *sim.Thread, pg *Page, newProc int) {
	n.now = th.Clock()
	node := n.machine.Home(newProc)
	if pg.state != LocalWritable || pg.owner == node {
		return
	}
	if n.offline != nil && n.offline[node] {
		return // quarantined destination: leave the page where it is
	}
	if n.machine.Memory().Local(node).Free() == 0 {
		return // destination full: leave the page; faults will sort it out
	}
	src := pg.copies[pg.owner]
	dst, err := n.machine.Memory().Local(node).Alloc()
	if err != nil {
		// Free() was checked above.
		panic(n.violation(pg, "numa: local pool %d unexpectedly empty: %v", node, err))
	}
	dst.CopyFrom(src)
	n.machine.ChargeCopySys(th, src, dst, newProc)
	n.stats.Copies++
	n.chargeMoveDelay(th, newProc)
	n.dropCopy(th, pg, pg.owner)
	pg.copies[node] = dst
	n.noteCopy(pg, node, dst)
	pg.owner = node
	pg.lastOwner = node
	n.maybeAudit(pg)
}

// PrepareEvict quiesces a page for pageout: syncs a dirty owner copy back
// to global memory, flushes every replica and drops every mapping. After it
// returns, the global frame is authoritative and unmapped everywhere.
func (n *Manager) PrepareEvict(th *sim.Thread, pg *Page) {
	n.now = th.Clock()
	if pg.state == Remote {
		n.demoteRemote(th, pg, n.nodeProc(pg.owner))
	}
	if pg.state == LocalWritable {
		n.syncFlush(th, pg, pg.owner, n.nodeProc(pg.owner), "sync&flush own")
		pg.owner = -1
	}
	n.flushExcept(th, pg, -1, "flush all")
	n.unmapAll(th, pg)
	pg.setState(ReadOnly)
	n.maybeAudit(pg)
}

// CheckInvariants validates the structural invariants of a page's
// consistency state; tests and the chaos harness call it after protocol
// operations.
func (n *Manager) CheckInvariants(pg *Page) error {
	switch pg.state {
	case ReadOnly:
		if pg.owner != -1 {
			return fmt.Errorf("numa: read-only page has owner %d", pg.owner)
		}
	case LocalWritable:
		if pg.owner < 0 || pg.owner >= n.machine.NNodes() {
			return fmt.Errorf("numa: local-writable page has bad owner %d", pg.owner)
		}
		if pg.NCopies() != 1 || pg.copies[pg.owner] == nil {
			return fmt.Errorf("numa: local-writable page has %d copies (owner %d copy %v)",
				pg.NCopies(), pg.owner, pg.copies[pg.owner])
		}
	case GlobalWritable:
		if pg.NCopies() != 0 {
			return fmt.Errorf("numa: global-writable page has %d copies", pg.NCopies())
		}
		if pg.owner != -1 {
			return fmt.Errorf("numa: global-writable page has owner %d", pg.owner)
		}
	case Remote:
		if pg.owner < 0 || pg.copies[pg.owner] == nil || pg.NCopies() != 1 {
			return fmt.Errorf("numa: remote page placement inconsistent (owner %d, copies %d)",
				pg.owner, pg.NCopies())
		}
	default:
		return fmt.Errorf("numa: unknown state %v", pg.state)
	}
	for p, c := range pg.copies {
		if c != nil && (c.Kind() != mem.Local || c.Proc() != p) {
			return fmt.Errorf("numa: copy slot %d holds frame %v", p, c)
		}
	}
	if pg.global == nil || pg.global.Kind() != mem.Global {
		return fmt.Errorf("numa: bad global frame %v", pg.global)
	}
	return nil
}

// FreeTag is the token returned by FreePage, redeemed by FreePageSync
// (the paper's lazy pmap_free_page / pmap_free_page_sync pair, §2.3.3).
type FreeTag struct {
	pg   *Page
	done bool
}

// FreePage starts cleanup of a logical page whose machine-independent frame
// has been freed: all cache resources are released and cache state reset.
// The costs are charged when the cleanup is performed; the returned tag
// lets a reallocation wait for completion.
func (n *Manager) FreePage(th *sim.Thread, pg *Page) *FreeTag {
	n.now = th.Clock()
	if pg.state == Remote {
		n.demoteRemote(th, pg, n.nodeProc(pg.owner))
	}
	for node := range pg.copies {
		n.dropCopy(th, pg, node)
		for _, p := range n.machine.NodeProcs(node) {
			if n.machine.MMU(p).RemoveFrame(pg.global) {
				th.AdvanceSys(n.machine.Cost().MMUOp)
			}
		}
	}
	n.machine.Memory().Global().Release(pg.global)
	pg.setState(ReadOnly)
	pg.owner = -1
	pg.pinned = false
	pg.pinSeen = false
	pg.moves = 0
	n.unregister(pg)
	n.stats.PagesFreed++
	if n.bus.Enabled() {
		n.bus.Emit(simtrace.Event{
			Kind: simtrace.KindPageFreed, Proc: -1, Thread: int32(th.ID()),
			Time: int64(th.Clock()), Page: pg.id,
		})
	}
	// Purge the page from the defrost list before the record can be
	// recycled: a stale entry aliasing a future page would be swept
	// twice. The old lazy drop (state no longer global-writable) acted on
	// nothing either, so this is observably identical.
	if len(n.gwPages) > 0 {
		live := n.gwPages[:0]
		for _, g := range n.gwPages {
			if g != pg {
				live = append(live, g)
			}
		}
		n.gwPages = live
	}
	// Retire the record into the pool; the next NewPage/AdoptPage reuses
	// it (with a fresh id). Cleanup is eager, so the reusable tag is
	// always complete.
	n.freePages = append(n.freePages, pg)
	n.freeTag = FreeTag{pg: pg, done: true}
	return &n.freeTag
}

// FreePageSync waits for the lazy cleanup started by FreePage to complete.
// In this implementation cleanup is performed eagerly, so the call only
// validates the tag; the interface shape is the paper's.
func (n *Manager) FreePageSync(tag *FreeTag) {
	if tag == nil || !tag.done {
		panic(n.violation(nil, "numa: FreePageSync on incomplete tag"))
	}
}
