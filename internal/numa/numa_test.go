package numa_test

import (
	"math/rand"
	"reflect"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
)

// rig builds a small machine plus a manager driven by a mutable forced
// policy, and runs body inside a simulated thread.
func rig(t *testing.T, nproc int, body func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced)) {
	t.Helper()
	cfg := ace.DefaultConfig()
	cfg.NProc = nproc
	cfg.GlobalFrames = 64
	cfg.LocalFrames = 16
	m := ace.MustMachine(cfg)
	forced := &policy.Forced{Answer: numa.Local}
	n := numa.NewManager(m, forced)
	m.Engine().Spawn("test", 0, func(th *sim.Thread) {
		body(th, m, n, forced)
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStateStrings(t *testing.T) {
	if numa.ReadOnly.String() != "read-only" ||
		numa.LocalWritable.String() != "local-writable" ||
		numa.GlobalWritable.String() != "global-writable" {
		t.Error("state strings wrong")
	}
	if numa.Local.String() != "LOCAL" || numa.Global.String() != "GLOBAL" {
		t.Error("location strings wrong")
	}
	if numa.HintCacheable.String() != "cacheable" || numa.HintNoncacheable.String() != "noncacheable" || numa.HintNone.String() != "none" {
		t.Error("hint strings wrong")
	}
}

func TestNewPageInitialState(t *testing.T) {
	rig(t, 3, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, _ *policy.Forced) {
		pg, err := n.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if pg.State() != numa.ReadOnly || pg.Owner() != -1 || pg.NCopies() != 0 {
			t.Errorf("fresh page state=%v owner=%d copies=%d", pg.State(), pg.Owner(), pg.NCopies())
		}
		if pg.Moves() != 0 || pg.Pinned() || pg.EverWritten() {
			t.Error("fresh page has history")
		}
		if pg.Authoritative() != pg.GlobalFrame() {
			t.Error("fresh page authority should be global frame")
		}
	})
}

func TestGlobalExhaustion(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, _ *policy.Forced) {
		for {
			if _, err := n.NewPage(); err != nil {
				return // exhausted as expected
			}
			if n.Stats().PagesCreated > 1000 {
				t.Fatal("global pool never exhausted")
			}
		}
	})
}

// transitionCase describes one cell of the paper's Table 1 or Table 2.
type transitionCase struct {
	name        string
	write       bool          // Table 2 if true, Table 1 if false
	decision    numa.Location // the policy row
	setup       string        // initial state: "ro-fresh", "ro-replicated", "gw", "lw-own", "lw-other"
	wantActions []string
	wantState   numa.State
	wantOwner   int // -2 = don't check
}

// buildState puts a fresh page into the named starting state, from the
// point of view of requesting processor 0 on a 3-CPU machine.
func buildState(th *sim.Thread, n *numa.Manager, forced *policy.Forced, setup string) *numa.Page {
	pg, err := n.NewPage()
	if err != nil {
		panic(err)
	}
	switch setup {
	case "ro-fresh":
		// nothing: zero-fill pending, no copies
	case "ro-replicated":
		// replicas on CPUs 1 and 2; content synced to global
		forced.Answer = numa.Local
		n.Access(th, pg, 1, false, mmu.ProtReadWrite)
		n.Access(th, pg, 2, false, mmu.ProtReadWrite)
	case "gw":
		forced.Answer = numa.Global
		n.Access(th, pg, 1, true, mmu.ProtReadWrite)
	case "lw-own":
		forced.Answer = numa.Local
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)
	case "lw-other":
		forced.Answer = numa.Local
		n.Access(th, pg, 1, true, mmu.ProtReadWrite)
	default:
		panic("bad setup " + setup)
	}
	return pg
}

// TestTable1ReadActions exhaustively verifies the LOCAL and GLOBAL rows of
// the paper's Table 1 (NUMA manager actions for read requests), deriving
// the actions from the implementation via the action hook (E3).
func TestTable1ReadActions(t *testing.T) {
	cases := []transitionCase{
		{"local/read-only", false, numa.Local, "ro-replicated",
			[]string{"copy to local"}, numa.ReadOnly, -1},
		{"local/global-writable", false, numa.Local, "gw",
			[]string{"unmap all", "copy to local"}, numa.ReadOnly, -1},
		{"local/lw-own", false, numa.Local, "lw-own",
			[]string{"no action"}, numa.LocalWritable, 0},
		{"local/lw-other", false, numa.Local, "lw-other",
			[]string{"sync&flush other", "copy to local"}, numa.ReadOnly, -1},
		{"global/read-only", false, numa.Global, "ro-replicated",
			[]string{"flush all"}, numa.GlobalWritable, -1},
		{"global/global-writable", false, numa.Global, "gw",
			[]string{"no action"}, numa.GlobalWritable, -1},
		{"global/lw-own", false, numa.Global, "lw-own",
			[]string{"sync&flush own"}, numa.GlobalWritable, -1},
		{"global/lw-other", false, numa.Global, "lw-other",
			[]string{"sync&flush other"}, numa.GlobalWritable, -1},
	}
	runTransitionCases(t, cases)
}

// TestTable2WriteActions exhaustively verifies the paper's Table 2 (NUMA
// manager actions for write requests) the same way (E4).
func TestTable2WriteActions(t *testing.T) {
	cases := []transitionCase{
		{"local/read-only", true, numa.Local, "ro-replicated",
			[]string{"flush other", "copy to local"}, numa.LocalWritable, 0},
		{"local/global-writable", true, numa.Local, "gw",
			[]string{"unmap all", "copy to local"}, numa.LocalWritable, 0},
		{"local/lw-own", true, numa.Local, "lw-own",
			[]string{"no action"}, numa.LocalWritable, 0},
		{"local/lw-other", true, numa.Local, "lw-other",
			[]string{"sync&flush other", "copy to local"}, numa.LocalWritable, 0},
		{"global/read-only", true, numa.Global, "ro-replicated",
			[]string{"flush all"}, numa.GlobalWritable, -1},
		{"global/global-writable", true, numa.Global, "gw",
			[]string{"no action"}, numa.GlobalWritable, -1},
		{"global/lw-own", true, numa.Global, "lw-own",
			[]string{"sync&flush own"}, numa.GlobalWritable, -1},
		{"global/lw-other", true, numa.Global, "lw-other",
			[]string{"sync&flush other"}, numa.GlobalWritable, -1},
	}
	runTransitionCases(t, cases)
}

func runTransitionCases(t *testing.T, cases []transitionCase) {
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rig(t, 3, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
				pg := buildState(th, n, forced, c.setup)
				var actions []string
				n.SetActionHook(func(a string) { actions = append(actions, a) })
				forced.Answer = c.decision
				frame, prot := n.Access(th, pg, 0, c.write, mmu.ProtReadWrite)
				n.SetActionHook(nil)

				if !reflect.DeepEqual(actions, c.wantActions) {
					t.Errorf("actions = %v, want %v", actions, c.wantActions)
				}
				if pg.State() != c.wantState {
					t.Errorf("state = %v, want %v", pg.State(), c.wantState)
				}
				if c.wantOwner != -2 && pg.Owner() != c.wantOwner {
					t.Errorf("owner = %d, want %d", pg.Owner(), c.wantOwner)
				}
				// The returned frame must match the new state.
				switch c.wantState {
				case numa.GlobalWritable:
					if frame != pg.GlobalFrame() {
						t.Errorf("frame = %v, want global", frame)
					}
					if pg.NCopies() != 0 {
						t.Errorf("global-writable page has %d copies", pg.NCopies())
					}
				default:
					if frame != pg.Copy(0) {
						t.Errorf("frame = %v, want cpu0 local copy %v", frame, pg.Copy(0))
					}
				}
				// Protection: reads resolve with the strictest permission
				// (read-only), writes with write permission (§2.3.3).
				if c.write && !prot.CanWrite() {
					t.Errorf("write request resolved with prot %v", prot)
				}
				if !c.write && c.decision == numa.Local && prot != mmu.ProtRead {
					t.Errorf("read request resolved with prot %v, want r--", prot)
				}
			})
		})
	}
}

func TestReadOnlyReplication(t *testing.T) {
	rig(t, 3, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		for p := 0; p < 3; p++ {
			f, prot := n.Access(th, pg, p, false, mmu.ProtReadWrite)
			if f.Kind().String() != "local" || f.Proc() != p {
				t.Errorf("cpu%d read mapped to %v", p, f)
			}
			if prot != mmu.ProtRead {
				t.Errorf("replica prot = %v", prot)
			}
		}
		if pg.NCopies() != 3 || pg.State() != numa.ReadOnly {
			t.Errorf("after 3 reads: copies=%d state=%v", pg.NCopies(), pg.State())
		}
	})
}

func TestWriteMigration(t *testing.T) {
	// A page written alternately by two processors migrates and counts
	// moves; content follows.
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		f0, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		f0.Store32(0, 111)
		if pg.Moves() != 0 {
			t.Errorf("first write counted as a move")
		}
		f1, _ := n.Access(th, pg, 1, true, mmu.ProtReadWrite)
		if got := f1.Load32(0); got != 111 {
			t.Errorf("after migration cpu1 reads %d, want 111", got)
		}
		f1.Store32(0, 222)
		if pg.Moves() != 1 || pg.Owner() != 1 {
			t.Errorf("moves=%d owner=%d, want 1/1", pg.Moves(), pg.Owner())
		}
		f0b, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		if got := f0b.Load32(0); got != 222 {
			t.Errorf("after second migration cpu0 reads %d, want 222", got)
		}
		if pg.Moves() != 2 {
			t.Errorf("moves=%d, want 2", pg.Moves())
		}
	})
}

func TestReadThenWriteCountsMove(t *testing.T) {
	// A writes; B reads (page becomes read-only on B); B writes. The
	// ownership transfer A->B must be counted even though the copy arrived
	// during the read.
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		fa, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		fa.Store32(8, 7)
		fb, _ := n.Access(th, pg, 1, false, mmu.ProtReadWrite)
		if fb.Load32(8) != 7 {
			t.Error("read did not see writer's data")
		}
		if pg.Moves() != 0 {
			t.Error("read transfer must not count as a move")
		}
		n.Access(th, pg, 1, true, mmu.ProtReadWrite)
		if pg.Moves() != 1 {
			t.Errorf("moves = %d after read-then-write transfer, want 1", pg.Moves())
		}
	})
}

func TestUpgradeOwnPageNoMove(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)  // LW on 0
		n.Access(th, pg, 0, false, mmu.ProtReadWrite) // read own page
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)  // write again
		if pg.Moves() != 0 {
			t.Errorf("moves = %d for single-processor use, want 0", pg.Moves())
		}
	})
}

func TestPinTransition(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		f, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		f.Store32(0, 5)
		forced.Answer = numa.Global
		g, prot := n.Access(th, pg, 1, true, mmu.ProtReadWrite)
		if g != pg.GlobalFrame() {
			t.Error("global decision did not map global frame")
		}
		if g.Load32(0) != 5 {
			t.Error("sync lost data on pin")
		}
		if !prot.CanWrite() {
			t.Error("pinned page should map writable")
		}
		if !pg.Pinned() || pg.State() != numa.GlobalWritable {
			t.Error("page not pinned")
		}
		if n.Stats().Pins != 1 {
			t.Errorf("pins = %d", n.Stats().Pins)
		}
	})
}

func TestLazyZeroFill(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		before := th.SysTime()
		f, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		zeroCost := m.Cost().ZeroCost(f, 0, m.PageSize())
		elapsed := th.SysTime() - before
		// One NUMA op plus a zero-fill at local speed; no global copy.
		want := m.Cost().NUMAOp + zeroCost
		if elapsed != want {
			t.Errorf("first-touch cost = %v, want %v (zero directly into local memory)", elapsed, want)
		}
		if n.Stats().ZeroFills != 1 || n.Stats().Copies != 0 {
			t.Errorf("stats = %+v, want 1 zero-fill and no copies", n.Stats())
		}
	})
}

func TestZeroFillGlobalDecision(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		forced.Answer = numa.Global
		f, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		if f != pg.GlobalFrame() {
			t.Fatal("not mapped global")
		}
		if n.Stats().ZeroFills != 1 {
			t.Error("zero-fill not charged on global first touch")
		}
		// Second access must not zero again.
		f.Store32(0, 3)
		n.Access(th, pg, 1, false, mmu.ProtReadWrite)
		if n.Stats().ZeroFills != 1 {
			t.Error("zero-fill charged twice")
		}
	})
}

func TestLocalPoolExhaustionReclaims(t *testing.T) {
	cfg := ace.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 32
	cfg.LocalFrames = 2 // tiny local memory
	m := ace.MustMachine(cfg)
	forced := &policy.Forced{Answer: numa.Local}
	n := numa.NewManager(m, forced)
	m.Engine().Spawn("test", 0, func(th *sim.Thread) {
		var pages []*numa.Page
		for i := 0; i < 4; i++ {
			pg, err := n.NewPage()
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, pg)
			n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		}
		// CPU0's two local frames went to the first two pages; the clock
		// reclaimer then evicted those cold copies (syncing them back to
		// global memory) so the later pages could still be placed locally.
		if pages[0].State() != numa.ReadOnly || pages[1].State() != numa.ReadOnly {
			t.Errorf("evicted pages should be read-only, got %v/%v",
				pages[0].State(), pages[1].State())
		}
		if pages[2].State() != numa.LocalWritable || pages[3].State() != numa.LocalWritable {
			t.Errorf("latest pages should be local, got %v/%v",
				pages[2].State(), pages[3].State())
		}
		if n.Stats().Evictions != 2 {
			t.Errorf("Evictions = %d, want 2", n.Stats().Evictions)
		}
		if n.Stats().LocalFallback != 0 {
			t.Errorf("LocalFallback = %d, want 0", n.Stats().LocalFallback)
		}
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalPoolExhaustionFallsBack(t *testing.T) {
	// When every local frame holds a page the reclaimer refuses to evict
	// (remote home placements are sticky), the manager degrades gracefully:
	// the request is served from global memory and counted.
	cfg := ace.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 32
	cfg.LocalFrames = 2
	m := ace.MustMachine(cfg)
	forced := &policy.Forced{Answer: numa.PlaceRemote}
	n := numa.NewManager(m, forced)
	m.Engine().Spawn("test", 0, func(th *sim.Thread) {
		for i := 0; i < 2; i++ {
			pg, err := n.NewPage()
			if err != nil {
				t.Fatal(err)
			}
			pg.SetHome(0)
			n.Access(th, pg, 1, true, mmu.ProtReadWrite)
			if pg.State() != numa.Remote {
				t.Fatalf("page %d state = %v, want Remote", i, pg.State())
			}
		}
		// CPU0's local memory is full of sticky remote placements; a LOCAL
		// answer for a fresh page cannot be honoured.
		forced.Answer = numa.Local
		pg, err := n.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		if pg.State() != numa.GlobalWritable {
			t.Errorf("overflow page state = %v, want GlobalWritable", pg.State())
		}
		if n.Stats().LocalFallback != 1 {
			t.Errorf("LocalFallback = %d, want 1", n.Stats().LocalFallback)
		}
		if n.Stats().Evictions != 0 {
			t.Errorf("Evictions = %d, want 0", n.Stats().Evictions)
		}
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreePageReleasesEverything(t *testing.T) {
	rig(t, 3, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		n.Access(th, pg, 0, false, mmu.ProtReadWrite)
		n.Access(th, pg, 1, false, mmu.ProtReadWrite)
		globalFree := m.Memory().Global().Free()
		localFree0 := m.Memory().Local(0).Free()
		tag := n.FreePage(th, pg)
		n.FreePageSync(tag)
		if m.Memory().Global().Free() != globalFree+1 {
			t.Error("global frame not released")
		}
		if m.Memory().Local(0).Free() != localFree0+1 {
			t.Error("local copy not released")
		}
		if pg.Moves() != 0 || pg.Pinned() {
			t.Error("free did not reset placement state")
		}
	})
}

func TestFreePageSyncBadTagPanics(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		n.FreePageSync(nil)
	})
}

func TestPrepareEvict(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		f, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		f.Store32(4, 99)
		n.PrepareEvict(th, pg)
		if pg.NCopies() != 0 {
			t.Error("copies survive eviction")
		}
		if pg.GlobalFrame().Load32(4) != 99 {
			t.Error("dirty data lost on eviction")
		}
		if pg.Authoritative() != pg.GlobalFrame() {
			t.Error("global frame should be authoritative after evict")
		}
	})
}

func TestAdoptPageSkipsZeroFill(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		g, err := m.Memory().Global().Alloc()
		if err != nil {
			t.Fatal(err)
		}
		g.Store32(0, 42)
		pg := n.AdoptPage(g)
		f, _ := n.Access(th, pg, 0, false, mmu.ProtReadWrite)
		if f.Load32(0) != 42 {
			t.Error("adopted page lost its contents (zero-fill should not be pending)")
		}
		if n.Stats().ZeroFills != 0 {
			t.Error("adopt should not zero-fill")
		}
	})
}

func TestEverWritten(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		n.Access(th, pg, 0, false, mmu.ProtReadWrite)
		if pg.EverWritten() {
			t.Error("read marked page written")
		}
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		if !pg.EverWritten() {
			t.Error("write did not mark page written")
		}
	})
}

func TestHints(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		if pg.Hint() != numa.HintNone {
			t.Error("default hint")
		}
		pg.SetHint(numa.HintNoncacheable)
		if pg.Hint() != numa.HintNoncacheable {
			t.Error("hint not stored")
		}
	})
}

func TestNilPolicyPanics(t *testing.T) {
	m := ace.MustMachine(ace.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	numa.NewManager(m, nil)
}

func TestWriteWithoutWritePermPanics(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		n.Access(th, pg, 0, true, mmu.ProtRead)
	})
}

// TestCoherenceProperty drives a long random mix of reads and writes from
// several processors through the protocol under each policy, checking
// after every operation that the value read matches a flat reference
// array. This is the key safety property: migration, replication, pinning
// and sync/flush must never lose or reorder data.
func TestCoherenceProperty(t *testing.T) {
	policies := map[string]numa.Policy{
		"threshold(4)": policy.NewDefault(),
		"threshold(0)": policy.NewThreshold(0),
		"never-pin":    policy.NeverPin(),
		"all-global":   policy.AllGlobal{},
		"all-local":    policy.AllLocal{},
	}
	for name, pol := range policies {
		pol := pol
		t.Run(name, func(t *testing.T) {
			cfg := ace.DefaultConfig()
			cfg.NProc = 4
			cfg.GlobalFrames = 8
			cfg.LocalFrames = 8
			m := ace.MustMachine(cfg)
			n := numa.NewManager(m, pol)
			rng := rand.New(rand.NewSource(12345))
			m.Engine().Spawn("driver", 0, func(th *sim.Thread) {
				const npages = 4
				wordsPerPage := m.PageSize() / 4
				pages := make([]*numa.Page, npages)
				for i := range pages {
					var err error
					pages[i], err = n.NewPage()
					if err != nil {
						t.Fatal(err)
					}
				}
				ref := make([]uint32, npages*wordsPerPage)
				for step := 0; step < 3000; step++ {
					pi := rng.Intn(npages)
					word := rng.Intn(wordsPerPage)
					proc := rng.Intn(cfg.NProc)
					write := rng.Intn(2) == 0
					f, prot := n.Access(th, pages[pi], proc, write, mmu.ProtReadWrite)
					if write {
						if !prot.CanWrite() {
							t.Fatalf("step %d: write resolved read-only", step)
						}
						v := rng.Uint32()
						f.Store32(word*4, v)
						ref[pi*wordsPerPage+word] = v
					} else {
						got := f.Load32(word * 4)
						if want := ref[pi*wordsPerPage+word]; got != want {
							t.Fatalf("step %d (policy %s): cpu%d page %d word %d = %d, want %d",
								step, pol.Name(), proc, pi, word, got, want)
						}
					}
				}
			})
			if err := m.Engine().Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInvariants drives random traffic and checks the protocol's structural
// invariants after every step.
func TestInvariants(t *testing.T) {
	cfg := ace.DefaultConfig()
	cfg.NProc = 4
	cfg.GlobalFrames = 16
	cfg.LocalFrames = 4
	m := ace.MustMachine(cfg)
	n := numa.NewManager(m, policy.NewThreshold(2))
	rng := rand.New(rand.NewSource(99))
	m.Engine().Spawn("driver", 0, func(th *sim.Thread) {
		var pages []*numa.Page
		for i := 0; i < 6; i++ {
			pg, err := n.NewPage()
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, pg)
		}
		for step := 0; step < 2000; step++ {
			pg := pages[rng.Intn(len(pages))]
			proc := rng.Intn(cfg.NProc)
			write := rng.Intn(3) == 0
			n.Access(th, pg, proc, write, mmu.ProtReadWrite)
			switch pg.State() {
			case numa.ReadOnly:
				if pg.Owner() != -1 {
					t.Fatalf("step %d: read-only page has owner %d", step, pg.Owner())
				}
			case numa.LocalWritable:
				if pg.Owner() < 0 || pg.NCopies() != 1 || pg.Copy(pg.Owner()) == nil {
					t.Fatalf("step %d: local-writable page owner=%d copies=%d", step, pg.Owner(), pg.NCopies())
				}
			case numa.GlobalWritable:
				if pg.NCopies() != 0 || pg.Owner() != -1 {
					t.Fatalf("step %d: global-writable page has copies/owner", step)
				}
				if !pg.Pinned() {
					t.Fatalf("step %d: global-writable page not pinned under threshold policy", step)
				}
			}
			if pg.Moves() > 0 && pg.State() == numa.GlobalWritable && pg.Moves() < 2 {
				t.Fatalf("step %d: pinned before threshold", step)
			}
		}
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSystemTimeCharged verifies that protocol work is charged as system
// time, not user time (§3.3 measures them separately).
func TestSystemTimeCharged(t *testing.T) {
	rig(t, 2, func(th *sim.Thread, m *ace.Machine, n *numa.Manager, forced *policy.Forced) {
		pg, _ := n.NewPage()
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		n.Access(th, pg, 1, true, mmu.ProtReadWrite) // sync + copy
		if th.UserTime() != 0 {
			t.Errorf("protocol charged %v as user time", th.UserTime())
		}
		if th.SysTime() == 0 {
			t.Error("protocol charged no system time")
		}
		// The migration must include a page copy each way at memory speed.
		minCost := m.Cost().CopyCost(pg.GlobalFrame(), pg.GlobalFrame(), 0, m.PageSize())
		if th.SysTime() < minCost {
			t.Errorf("sys time %v implausibly small (< one page copy %v)", th.SysTime(), minCost)
		}
	})
}
