package numa

import (
	"numasim/internal/simtrace"
)

// Transitions is the page-consistency protocol's legal state-transition
// relation — the one place the shape of the paper's Tables 1 and 2 (plus
// the §4.4 remote extension) is written down. Rows are source states;
// each row lists every state the protocol may move the page to:
//
//   - read-only pages may gain a writer (local or global), be placed at a
//     home processor, or stay read-only while replicas churn;
//   - local-writable pages may be demoted to read-only, pinned global,
//     re-owned by another writer, or placed at a home;
//   - global-writable (pinned) pages leave only via a defrost sweep, an
//     eviction, or a remote placement — never to another pinned state;
//   - remote pages only ever revert to read-only (demotion syncs the home
//     copy back before any other transition can happen).
//
// setState checks the relation at simulation time; the numalint
// statemachine analyzer checks statically that every transition is routed
// through setState with a named state, and that this table stays total.
//
//numalint:transitions
var Transitions = map[State][]State{
	ReadOnly:       {ReadOnly, LocalWritable, GlobalWritable, Remote},
	LocalWritable:  {ReadOnly, LocalWritable, GlobalWritable, Remote},
	GlobalWritable: {ReadOnly, LocalWritable, Remote},
	Remote:         {ReadOnly},
}

// setState moves the page to next, enforcing Transitions. It is the only
// writer of Page.state after construction (statically enforced by the
// numalint statemachine analyzer).
//
//numalint:stateguard
func (p *Page) setState(next State) {
	for _, s := range Transitions[p.state] {
		if s == next {
			if p.bus.Enabled() && next != p.state {
				// setState has no thread at hand; the page's last-request
				// stamp is the best deterministic approximation of "now".
				p.bus.Emit(simtrace.Event{
					Kind: simtrace.KindStateChange, Proc: -1, Thread: -1,
					Time: int64(p.lastRequest), Page: p.id,
					Arg: int64(next), Arg2: int64(p.state), Label: next.String(),
				})
			}
			p.state = next
			return
		}
	}
	panic(p.mgr.violation(p, "numa: illegal page transition %v -> %v", p.state, next))
}
