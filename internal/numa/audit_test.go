package numa

// White-box tests for the online auditor: they corrupt the directory in
// ways no public API allows and check the audit catches each class of
// damage with a typed, forensics-carrying violation. The black-box audit
// coverage (full-stride auditing over random scripts) lives in the fuzz
// suite, which runs EnableAudit(1, ...) over every seed.

import (
	"errors"
	"strings"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// localPolicy caches everything locally, so one write gives the page a
// local-writable copy to corrupt. (The real policies live in a package
// that imports this one; a white-box test must bring its own.)
type localPolicy struct{}

func (localPolicy) CachePolicy(pg *Page, proc int, write bool, maxProt mmu.Prot) Location {
	return Local
}
func (localPolicy) Name() string { return "test-local" }

// auditRig builds a two-processor machine, runs one write so the page
// has a local-writable copy on cpu0, and returns the audited manager.
func auditRig(t *testing.T) (*Manager, *Page, *simtrace.RingSink) {
	t.Helper()
	cfg := ace.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 32
	cfg.LocalFrames = 4
	cfg.PageSize = 256
	m := ace.MustMachine(cfg)
	n := NewManager(m, localPolicy{})
	ring := simtrace.NewRingSink(64)
	m.AttachSink(ring)
	n.EnableAudit(1, ring)

	var pg *Page
	m.Engine().Spawn("setup", 0, func(th *sim.Thread) {
		var err error
		if pg, err = n.NewPage(); err != nil {
			t.Error(err)
			return
		}
		f, _ := n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		f.Store32(0, 7)
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if pg.copies[0] == nil || pg.state != LocalWritable {
		t.Fatalf("rig: page state %v, want a local-writable copy on cpu0", pg.state)
	}
	if err := n.AuditAll(); err != nil {
		t.Fatalf("clean directory fails audit: %v", err)
	}
	return n, pg, ring
}

func TestAuditStride(t *testing.T) {
	n, _, _ := auditRig(t)
	if n.AuditStride() != 1 {
		t.Errorf("AuditStride = %d, want 1", n.AuditStride())
	}
}

func TestAuditCatchesMissingResidency(t *testing.T) {
	n, pg, _ := auditRig(t)
	n.shards[0].resident[pg.copies[0].Index()] = nil // lose the residency record
	err := n.AuditAll()
	if err == nil || !strings.Contains(err.Error(), "missing from the residency table") {
		t.Errorf("err = %v, want missing-residency report", err)
	}
}

func TestAuditCatchesStaleResidency(t *testing.T) {
	n, pg, _ := auditRig(t)
	// Record the page in a frame slot it does not occupy.
	idx := pg.copies[0].Index()
	n.shards[1].resident[idx] = pg
	err := n.AuditAll()
	if err == nil || !strings.Contains(err.Error(), "stale residency entry") {
		t.Errorf("err = %v, want stale-residency report", err)
	}
}

func TestAuditCatchesPinRegression(t *testing.T) {
	n, pg, _ := auditRig(t)
	pg.pinSeen = true // the audit saw it pinned once...
	pg.pinned = false // ...and now the bit is gone without a FreePage
	err := n.AuditAll()
	if err == nil || !strings.Contains(err.Error(), "pin bit cleared outside FreePage") {
		t.Errorf("err = %v, want pin-monotonicity report", err)
	}
}

// TestMaybeAuditPanicsTyped: the incremental audit dies with a
// *ProtocolViolationError that names the page, carries its state, and
// attaches the forensic ring contents.
func TestMaybeAuditPanicsTyped(t *testing.T) {
	n, pg, ring := auditRig(t)
	if len(ring.Events()) == 0 {
		t.Fatal("rig produced no trace events; the forensic ring would be empty")
	}
	n.shards[0].resident[pg.copies[0].Index()] = nil
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted directory did not panic under stride-1 audit")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %T, want error", r)
		}
		var v *ProtocolViolationError
		if !errors.As(err, &v) {
			t.Fatalf("panic error %v, want *ProtocolViolationError", err)
		}
		if v.Page != pg.id || v.State != pg.state {
			t.Errorf("violation page=%d state=%v, want %d/%v", v.Page, v.State, pg.id, pg.state)
		}
		if len(v.Trace) == 0 {
			t.Error("violation carries no ring trace")
		}
		msg := v.Error()
		if !strings.Contains(msg, "audit") || !strings.Contains(msg, "trace events captured") {
			t.Errorf("violation message %q missing audit context or trace count", msg)
		}
	}()
	n.maybeAudit(pg)
}

// TestSampledAuditSkips: with a large stride the ops between sample
// points are never audited, so a transient corruption repaired before
// the next sample point goes unreported (the documented trade-off).
func TestSampledAuditSkips(t *testing.T) {
	n, pg, _ := auditRig(t)
	n.EnableAudit(1000, nil)
	saved := n.shards[0].resident[pg.copies[0].Index()]
	n.shards[0].resident[pg.copies[0].Index()] = nil
	for i := 0; i < 10; i++ {
		n.maybeAudit(pg) // ops 1..10 of 1000: no sample point reached
	}
	n.shards[0].resident[pg.copies[0].Index()] = saved
}

func TestViolationWithoutPage(t *testing.T) {
	v := newViolation(nil, nil, "numa: %s", "nil policy")
	if v.Page != -1 {
		t.Errorf("pageless violation Page = %d, want -1", v.Page)
	}
	if got := v.Error(); got != "numa: nil policy" {
		t.Errorf("Error() = %q, want bare message (no page suffix, no trace note)", got)
	}
}
