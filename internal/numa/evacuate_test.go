package numa

// White-box property tests for the evacuation protocol: whatever a
// seeded random workload has scattered across the nodes, failing one
// must move every byte of every page intact onto the survivors, drain
// the failing pool to empty, and leave a revived node genuinely cold.

import (
	"bytes"
	"math/rand"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/sim"
	"numasim/internal/topology"
)

// randomPlacement answers placement requests from a seeded stream, so
// evacuation meets every mix of local, global and remote copies.
type randomPlacement struct{ rng *rand.Rand }

func (p *randomPlacement) CachePolicy(pg *Page, proc int, write bool, maxProt mmu.Prot) Location {
	switch r := p.rng.Intn(10); {
	case r < 5:
		return Local
	case r < 8:
		return Global
	default:
		return PlaceRemote
	}
}
func (p *randomPlacement) Name() string { return "random-placement" }

// evacMachine builds a seeded random multi-node machine for the
// evacuation properties: 2-6 nodes, symmetric random distances, one
// processor per node so placement spreads copies across every node.
func evacMachine(t *testing.T, seed int64, localFrames int) (*ace.Machine, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nnodes := 2 + rng.Intn(5)
	dist := make([][]int, nnodes)
	for a := range dist {
		dist[a] = make([]int, nnodes)
		dist[a][a] = 10
	}
	for a := 0; a < nnodes; a++ {
		for b := a + 1; b < nnodes; b++ {
			d := 11 + rng.Intn(40)
			dist[a][b], dist[b][a] = d, d
		}
	}
	spec, err := topology.Custom("evac", nnodes, dist,
		650*sim.Nanosecond, 840*sim.Nanosecond, seed%2 == 0, 12*sim.Nanosecond)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	cfg := ace.DefaultConfig()
	cfg.NProc = nnodes
	cfg.GlobalFrames = 64
	cfg.LocalFrames = localFrames
	cfg.PageSize = 256
	cfg.Topo = spec
	return ace.MustMachine(cfg), nnodes
}

// TestEvacuationPreservesContents fills pages with full-page byte
// patterns through ordinary write accesses, fails and revives nodes
// mid-script, and after every operation compares each page's
// authoritative frame byte-for-byte against a shadow copy. Evacuation
// must never lose or corrupt a byte, whichever path it takes (owner
// migration, demotion, sync-to-global, or replica drop).
func TestEvacuationPreservesContents(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, nnodes := evacMachine(t, seed, 4)
		n := NewManager(m, &randomPlacement{rng: rand.New(rand.NewSource(seed + 1))})

		const npages = 8
		pages := make([]*Page, npages)
		shadow := make([][]byte, npages)
		offline := make([]bool, nnodes)
		online := nnodes

		var scriptErr error
		m.Engine().Spawn("contents", 0, func(th *sim.Thread) {
			for i := range pages {
				pg, err := n.NewPage()
				if err != nil {
					scriptErr = err
					return
				}
				pages[i] = pg
				shadow[i] = make([]byte, m.PageSize())
			}
			for op := 0; op < 200; op++ {
				i := rng.Intn(npages)
				pg := pages[i]
				proc := rng.Intn(nnodes)
				switch r := rng.Intn(100); {
				case r < 50:
					f, prot := n.Access(th, pg, proc, true, mmu.ProtReadWrite)
					if !prot.CanWrite() {
						t.Errorf("seed %d op %d: write access granted %v", seed, op, prot)
						return
					}
					data := f.Data()
					for j := range data {
						data[j] = byte(op + j + int(seed))
					}
					copy(shadow[i], data)
				case r < 70:
					f, _ := n.Access(th, pg, proc, false, mmu.ProtReadWrite)
					if !bytes.Equal(f.Data(), shadow[i]) {
						t.Errorf("seed %d op %d: page%d read frame diverges from shadow", seed, op, pg.id)
						return
					}
				case r < 85:
					if online > 1 {
						node := rng.Intn(nnodes)
						for offline[node] {
							node = rng.Intn(nnodes)
						}
						n.FailNode(th, node)
						offline[node] = true
						online--
					}
				default:
					if online < nnodes {
						node := rng.Intn(nnodes)
						for !offline[node] {
							node = rng.Intn(nnodes)
						}
						n.ReviveNode(th, node)
						offline[node] = false
						online++
					}
				}
				for j, p := range pages {
					if !bytes.Equal(p.Authoritative().Data(), shadow[j]) {
						t.Errorf("seed %d op %d: page%d authoritative frame diverges from shadow",
							seed, op, p.id)
						return
					}
					if err := n.CheckInvariants(p); err != nil {
						t.Errorf("seed %d op %d: %v", seed, op, err)
						return
					}
				}
			}
		})
		if err := m.Engine().Run(); err != nil {
			t.Fatalf("seed %d: engine: %v", seed, err)
		}
		if scriptErr != nil {
			t.Fatalf("seed %d: %v", seed, scriptErr)
		}
		if t.Failed() {
			t.Fatalf("seed %d: contents property violated", seed)
		}
	}
}

// TestEvacuationQueueDrains piles local-hungry writes onto minimal
// local memories, then fails nodes one by one down to a single
// survivor. After every failure the failing node must hold no page
// copies and a fully free pool, and the full audit must stay clean —
// the bounded work queue drained completely regardless of how full the
// survivors were. Destination pressure must also be visible: across the
// seed set some evacuation had to back off or reclaim.
func TestEvacuationQueueDrains(t *testing.T) {
	var retries, evacuations uint64
	for seed := int64(100); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, nnodes := evacMachine(t, seed, ace.MinLocalFrames)
		n := NewManager(m, alwaysLocal{})

		npages := nnodes*ace.MinLocalFrames + 4
		pages := make([]*Page, npages)

		var scriptErr error
		m.Engine().Spawn("drain", 0, func(th *sim.Thread) {
			for i := range pages {
				pg, err := n.NewPage()
				if err != nil {
					scriptErr = err
					return
				}
				pages[i] = pg
			}
			// Fill every node's local memory with writable copies.
			for op := 0; op < 6*npages; op++ {
				pg := pages[rng.Intn(npages)]
				n.Access(th, pg, rng.Intn(nnodes), true, mmu.ProtReadWrite)
			}
			order := rng.Perm(nnodes)
			for _, node := range order[:nnodes-1] {
				n.FailNode(th, node)
				for _, pg := range pages {
					if pg.copies[node] != nil {
						t.Errorf("seed %d: page%d still has a copy on failed node%d", seed, pg.id, node)
						return
					}
				}
				pool := m.Memory().Local(node)
				if pool.Free() != pool.Size() {
					t.Errorf("seed %d: node%d pool holds %d frames after evacuation",
						seed, node, pool.Size()-pool.Free())
					return
				}
				if err := n.AuditAll(); err != nil {
					t.Errorf("seed %d: audit after failing node%d: %v", seed, node, err)
					return
				}
			}
		})
		if err := m.Engine().Run(); err != nil {
			t.Fatalf("seed %d: engine: %v", seed, err)
		}
		if scriptErr != nil {
			t.Fatalf("seed %d: %v", seed, scriptErr)
		}
		if t.Failed() {
			t.Fatalf("seed %d: drain property violated", seed)
		}
		retries += n.Stats().EvacRetries
		evacuations += n.Stats().Evacuations
	}
	if evacuations == 0 {
		t.Error("no seed evacuated a single copy; the property never exercised the protocol")
	}
	if retries == 0 {
		t.Error("no seed hit destination pressure; minimal survivors should have forced a backoff")
	}
}

// TestRevivedNodeStartsCold fails a node carrying live copies, keeps
// the workload running against the survivors, then revives it and
// checks the node returns with no residency, clear reference bits, a
// reset clock hand and an untouched pool — and that it serves local
// placements again afterwards.
func TestRevivedNodeStartsCold(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, nnodes := evacMachine(t, seed, 4)
		n := NewManager(m, alwaysLocal{})

		const npages = 8
		pages := make([]*Page, npages)
		victim := int(seed) % nnodes

		var scriptErr error
		m.Engine().Spawn("revive", 0, func(th *sim.Thread) {
			for i := range pages {
				pg, err := n.NewPage()
				if err != nil {
					scriptErr = err
					return
				}
				pages[i] = pg
			}
			for op := 0; op < 60; op++ {
				n.Access(th, pages[rng.Intn(npages)], rng.Intn(nnodes), rng.Intn(2) == 0, mmu.ProtReadWrite)
			}
			n.FailNode(th, victim)
			for op := 0; op < 40; op++ {
				proc := rng.Intn(nnodes)
				if proc == victim {
					continue
				}
				n.Access(th, pages[rng.Intn(npages)], proc, rng.Intn(2) == 0, mmu.ProtReadWrite)
			}
			n.ReviveNode(th, victim)

			shard := &n.shards[victim]
			for i := range shard.resident {
				if shard.resident[i] != nil {
					t.Errorf("seed %d: revived node%d frame %d still resident", seed, victim, i)
				}
				if shard.refbit[i] {
					t.Errorf("seed %d: revived node%d frame %d refbit set", seed, victim, i)
				}
			}
			if shard.hand != 0 {
				t.Errorf("seed %d: revived node%d clock hand at %d, want 0", seed, victim, shard.hand)
			}
			pool := m.Memory().Local(victim)
			if pool.Free() != pool.Size() {
				t.Errorf("seed %d: revived node%d pool holds %d frames", seed, victim,
					pool.Size()-pool.Free())
			}
			if n.NodeOffline(victim) {
				t.Errorf("seed %d: node%d still quarantined after revival", seed, victim)
			}

			// The revived node must serve local placement again.
			pg := pages[0]
			n.Access(th, pg, victim, true, mmu.ProtReadWrite)
			if pg.copies[victim] == nil {
				t.Errorf("seed %d: revived node%d refused a local placement", seed, victim)
			}
			if err := n.AuditAll(); err != nil {
				t.Errorf("seed %d: audit after revival: %v", seed, err)
			}
		})
		if err := m.Engine().Run(); err != nil {
			t.Fatalf("seed %d: engine: %v", seed, err)
		}
		if scriptErr != nil {
			t.Fatalf("seed %d: %v", seed, scriptErr)
		}
	}
}
