package numa

// This file holds the manager's dense hot state: the generation-stamped
// live-page directory (which pages exist, in stable slot order) and the
// per-processor residency shards the clock reclaimer sweeps. Both used
// map- or swap-indexed forms; the dense forms are page-index-addressed
// slices so the fault path never hashes and whole-directory sweeps are
// linear scans. A test-only mirror interface lets white-box tests run the
// old map-based representation alongside and compare after every step.

// dirSlot is one slot of the live-page directory. gen is bumped each time
// the slot is vacated, so a stale *Page handle (freed, slot since reused)
// can never unregister the slot's new occupant: remove checks both the
// pointer and the generation stamp.
type dirSlot struct {
	pg  *Page
	gen uint32
}

// directory is the dense live-page index behind AuditAll, the state-dump
// summary, and page registration. Slots are reused LIFO through a free
// list; iteration is by ascending slot index, which is deterministic by
// construction (no map iteration anywhere).
type directory struct {
	slots []dirSlot
	free  []int32 // vacated slot indices, reused LIFO
	n     int     // live pages
}

// add registers pg in the first free slot (or a fresh one) and stamps the
// page with its slot and generation.
func (d *directory) add(pg *Page) {
	var idx int32
	if k := len(d.free); k > 0 {
		idx = d.free[k-1]
		d.free = d.free[:k-1]
	} else {
		idx = int32(len(d.slots))
		d.slots = append(d.slots, dirSlot{})
	}
	s := &d.slots[idx]
	s.pg = pg
	pg.slot = idx
	pg.gen = s.gen
	d.n++
}

// remove vacates pg's slot and bumps its generation. A page whose stamp
// no longer matches (already freed, slot reused) is ignored, mirroring
// the old swap-remove index's tolerance of double unregister.
func (d *directory) remove(pg *Page) {
	idx := pg.slot
	if idx < 0 || int(idx) >= len(d.slots) {
		return
	}
	s := &d.slots[idx]
	if s.pg != pg || s.gen != pg.gen {
		return
	}
	s.pg = nil
	s.gen++
	pg.slot = -1
	d.free = append(d.free, idx)
	d.n--
}

// len reports the number of live pages.
func (d *directory) len() int { return d.n }

// forEach visits every live page in ascending slot order and stops at the
// first error.
func (d *directory) forEach(fn func(*Page) error) error {
	for i := range d.slots {
		if pg := d.slots[i].pg; pg != nil {
			if err := fn(pg); err != nil {
				return err
			}
		}
	}
	return nil
}

// procShard is one node's share of the reclaimer's hot state: which
// page's copy occupies each local frame, a second-chance reference bit
// per frame, and the clock hand. Sharding by node keeps each pool's
// working set contiguous and independent — the parallel harness runs
// whole machines concurrently, and within a machine each node's sweep
// touches only its own shard. (On the ACE, node == processor, hence the
// historical name.)
type procShard struct {
	//numalint:oracle
	resident []*Page // frame index -> page holding a copy there
	refbit   []bool  // second-chance reference bits
	hand     int     // clock hand position
}

// mirror observes directory and residency mutations. White-box tests
// install a map-based implementation (the pre-dense representation) and
// assert it stays identical to the dense forms after every protocol step;
// production leaves it nil, so the hook costs one nil check per
// registration or residency change — never per reference.
type mirror interface {
	register(pg *Page)
	unregister(pg *Page)
	noteCopy(pg *Page, node, frame int)
	noteDrop(node, frame int)
}
