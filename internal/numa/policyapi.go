// Capability interfaces: the redesigned policy API surface.
//
// numa.Policy stays a two-method core — CachePolicy plus Name — so the
// paper's fixed policies keep compiling unchanged. Everything richer is
// an optional capability detected once, by type assertion, when the
// manager binds the policy in NewManager:
//
//   - PageObserver: the policy wants per-access notifications, and the
//     manager maintains per-page decaying access histograms for it;
//   - ThreadAdvisor: the policy may advise the scheduler to migrate the
//     faulting thread toward the node holding the page's heat;
//   - Retirer: the policy wants a hook at every decay-epoch rollover;
//   - TopologyAware: the policy wants the machine's topology spec
//     (distance matrix) at bind time.
//
// Binding once keeps the per-request hot path free of type assertions:
// Access consults plain nil-checked interface fields, exactly the price
// the pre-redesign ReconsideringPolicy assertions paid per call.
//
// The decaying counters themselves live on the Page record (heat,
// moveHeat, heatEpoch, pword) and are pooled with it, so the counter
// paths allocate nothing; they are maintained only when an observer or
// advisor capability is bound, which keeps the default-policy hot path
// — and every ACE golden — byte-identical to the pre-redesign manager.
package numa

import (
	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/topology"
)

// DefaultHeatEpoch is the decay period for the per-page access
// histograms and move-heat counters: every elapsed epoch halves every
// counter (a lazy right-shift applied on the page's next touch). 50ms
// matches the Reconsider policy's default sweep interval, so one epoch
// is roughly "one reconsideration window".
const DefaultHeatEpoch = 50 * sim.Millisecond

// heatCap saturates the decaying counters. With shift decay the
// counters cannot overflow in practice; the cap just bounds them
// defensively and keeps TotalHeat comfortably inside uint64.
const heatCap = 1 << 24

// PageObserver is a Policy that wants to see every request the manager
// handles. Binding an observer also turns on the manager's per-page
// decaying access histograms (NodeHeat/MoveHeat/HotNode), which are
// updated before ObserveAccess runs, so the observer — and the
// CachePolicy call that follows it — sees counters current through the
// present access.
type PageObserver interface {
	Policy
	// ObserveAccess is called once per request, after the page's
	// decaying counters have been updated for it and before CachePolicy
	// is consulted. It runs on the protocol hot path: implementations
	// must not allocate.
	ObserveAccess(pg *Page, proc int, write bool, now sim.Time)
}

// ThreadAdvisor is a Policy that may steer threads as well as pages:
// after each request is resolved the manager asks the advisor whether
// the faulting thread would be better placed on another node, and
// forwards an affirmative answer to the scheduler as a migration hint
// (applied, if accepted, at the thread's next quantum boundary).
// Binding an advisor turns on the per-page heat histograms just as
// PageObserver does.
type ThreadAdvisor interface {
	Policy
	// AdviseThread may nominate a node for the faulting thread to
	// migrate to. node is proc's home node; returning (target, true)
	// with target != node proposes the move. It runs on the protocol
	// hot path: implementations must not allocate.
	AdviseThread(pg *Page, proc, node int, now sim.Time) (int, bool)
}

// Retirer is a Policy that wants a hook at every decay-epoch rollover
// — the moment the manager first handles a request in a new heat
// epoch. Adaptive policies use it to retire exploration state or
// re-seed deterministic exploration schedules.
type Retirer interface {
	Policy
	// RetireEpoch is called once per decay epoch, from the protocol hot
	// path: implementations must not allocate.
	RetireEpoch(now sim.Time)
}

// TopologyAware is a Policy that wants the machine's topology spec at
// bind time, so its answers can honour inter-node distances (e.g. only
// advising a thread migration when it strictly shortens the distance
// to the page's heat).
type TopologyAware interface {
	Policy
	// BindTopology runs from NewManager, and again whenever a node's
	// health changes in degraded mode (FailNode/ReviveNode) — a
	// cache-invalidation signal for any distance state the policy
	// derived. Implementations must be idempotent.
	BindTopology(spec *topology.Spec)
}

// ThreadMover accepts thread-migration hints on the manager's behalf;
// sched.Scheduler implements it. MigrateHint reports whether the hint
// was accepted (recorded for the thread's next quantum boundary) or
// rejected (unknown thread, out-of-range node). It is called from the
// protocol hot path: implementations must not allocate.
type ThreadMover interface {
	MigrateHint(th *sim.Thread, node int) bool
}

// SetThreadMover installs the co-placement channel: with a mover set
// and a ThreadAdvisor-capable policy bound, the manager forwards the
// policy's migration advice to the scheduler. Install before the
// simulation runs; nil disconnects the channel.
func (n *Manager) SetThreadMover(m ThreadMover) { n.mover = m }

// SetHeatEpoch overrides the decay period of the per-page heat
// counters (DefaultHeatEpoch otherwise). Install before the simulation
// runs; d must be positive.
func (n *Manager) SetHeatEpoch(d sim.Time) {
	if d <= 0 {
		panic(newViolation(nil, nil, "numa: non-positive heat epoch %v", d))
	}
	n.heatEpoch = d
}

// HeatEpoch returns the decay period of the per-page heat counters.
func (n *Manager) HeatEpoch() sim.Time { return n.heatEpoch }

// TracksHeat reports whether the bound policy's capabilities turned
// the per-page heat histograms on.
func (n *Manager) TracksHeat() bool { return n.trackHeat }

// bindCapabilities detects the policy's optional capabilities once, at
// manager construction, so the hot path never repeats the assertions.
func (n *Manager) bindCapabilities(pol Policy) {
	n.observer, _ = pol.(PageObserver)
	n.advisor, _ = pol.(ThreadAdvisor)
	n.retirer, _ = pol.(Retirer)
	n.reconsider, _ = pol.(ReconsideringPolicy)
	// A retirer needs the epoch clock, which ticks with the counters.
	n.trackHeat = n.observer != nil || n.advisor != nil || n.retirer != nil
	n.topoAware, _ = pol.(TopologyAware)
	if n.topoAware != nil {
		n.topoAware.BindTopology(n.machine.Spec())
	}
}

// observeAccess maintains the decaying counters for one request and
// runs the observer capability. Called from Access only when trackHeat
// is set, after the request counters and timestamps are stamped and
// before the policy is consulted.
//
//numalint:hotpath
func (n *Manager) observeAccess(pg *Page, proc, node int, write bool, now sim.Time) {
	e := uint32(now / n.heatEpoch)
	if e != n.curEpoch {
		n.curEpoch = e
		if n.retirer != nil {
			n.retirer.RetireEpoch(now)
		}
	}
	pg.decayTo(e)
	if pg.heat[node] < heatCap {
		pg.heat[node]++
	}
	if n.observer != nil {
		n.observer.ObserveAccess(pg, proc, write, now)
	}
}

// adviseThread runs the advisor capability for one resolved request and
// forwards its answer to the scheduler, emitting a KindSchedHint event
// with the scheduler's verdict. Called from Access only when both an
// advisor and a mover are bound.
//
//numalint:hotpath
func (n *Manager) adviseThread(th *sim.Thread, pg *Page, proc, node int) {
	target, ok := n.advisor.AdviseThread(pg, proc, node, th.Clock())
	if !ok || target == node {
		return
	}
	accepted := n.mover.MigrateHint(th, target)
	if accepted {
		n.stats.HintsAccepted++
	} else {
		n.stats.HintsRejected++
	}
	if n.bus.Enabled() {
		verdict := int64(0)
		if accepted {
			verdict = 1
		}
		n.bus.Emit(simtrace.Event{
			Kind: simtrace.KindSchedHint, Proc: int32(proc), Thread: int32(th.ID()),
			Time: int64(th.Clock()), Page: pg.id,
			Arg: int64(target), Arg2: verdict, Label: n.policy.Name(),
		})
	}
}

// decayTo applies the lazy shift decay: every epoch elapsed since the
// page was last touched halves every counter.
//
//numalint:hotpath
func (p *Page) decayTo(epoch uint32) {
	if epoch == p.heatEpoch {
		return
	}
	shift := epoch - p.heatEpoch
	p.heatEpoch = epoch
	if shift >= 32 {
		for i := range p.heat {
			p.heat[i] = 0
		}
		p.moveHeat = 0
		return
	}
	for i := range p.heat {
		p.heat[i] >>= shift
	}
	p.moveHeat >>= shift
}

// NodeHeat returns the page's decayed access count for node. Counters
// are maintained only when the bound policy has the PageObserver or
// ThreadAdvisor capability; otherwise every node reads zero.
//
//numalint:hotpath
func (p *Page) NodeHeat(node int) uint32 { return p.heat[node] }

// MoveHeat returns the page's decayed ownership-transfer count: the
// adaptive analogue of Moves, which never decays.
//
//numalint:hotpath
func (p *Page) MoveHeat() uint32 { return p.moveHeat }

// TotalHeat sums the decayed access counts across all nodes.
//
//numalint:hotpath
func (p *Page) TotalHeat() uint64 {
	var t uint64
	for _, h := range p.heat {
		t += uint64(h)
	}
	return t
}

// HotNode returns the node with the highest decayed access count (ties
// to the lowest node id), or -1 when every counter is zero.
//
//numalint:hotpath
func (p *Page) HotNode() int {
	best, node := uint32(0), -1
	for i, h := range p.heat {
		if h > best {
			best, node = h, i
		}
	}
	return node
}

// PolicyWord returns the page's 64-bit policy scratch word: opaque
// per-page state for adaptive policies (the bandit packs its per-arm
// value estimates here), zeroed when the page record is created or
// recycled.
//
//numalint:hotpath
func (p *Page) PolicyWord() uint64 { return p.pword }

// SetPolicyWord stores the page's policy scratch word.
//
//numalint:hotpath
func (p *Page) SetPolicyWord(w uint64) { p.pword = w }
