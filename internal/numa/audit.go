package numa

import (
	"fmt"

	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// This file is the manager's online auditor: an incremental checker that
// validates the directory invariants after protocol actions, at a
// configurable sampling stride, and the typed-violation machinery every
// protocol-state panic in this package routes through. A violation
// carries the page, its state and the recent ring-buffer trace, so a
// failed run dies with forensics attached instead of a bare string.

// ProtocolViolationError reports a broken protocol invariant. It is the
// panic value for every protocol-state failure in this package; the sim
// engine wraps it (with %w) into the thread error, so callers can recover
// it through engine.Run with errors.As and mine it for forensics.
type ProtocolViolationError struct {
	Page  int64 // offending page id, -1 when no single page is implicated
	State State // the page's state at the time of the violation
	Msg   string
	// Trace holds the machine's recent trace events (oldest first) when a
	// forensic ring buffer was attached via EnableAudit, else nil.
	Trace []simtrace.Event
}

func (e *ProtocolViolationError) Error() string {
	s := e.Msg
	if e.Page >= 0 {
		s += fmt.Sprintf(" [page%d state=%v]", e.Page, e.State)
	}
	if len(e.Trace) > 0 {
		s += fmt.Sprintf(" (%d trace events captured)", len(e.Trace))
	}
	return s
}

// newViolation builds a typed violation, snapshotting the forensic ring.
// It is one of the two blessed panic arguments in this package (the
// numalint violation analyzer rejects any bare panic here).
func newViolation(ring *simtrace.RingSink, pg *Page, format string, args ...any) *ProtocolViolationError {
	page := int64(-1)
	var state State
	if pg != nil {
		page, state = pg.id, pg.state
	}
	var events []simtrace.Event
	if ring != nil {
		events = ring.Events()
	}
	return &ProtocolViolationError{Page: page, State: state, Msg: fmt.Sprintf(format, args...), Trace: events}
}

// violation builds a typed violation against this manager's forensic
// ring; pg may be nil when no single page is implicated. The bus is
// flushed first so a batching ring sink has the complete event stream
// before it is snapshotted.
func (n *Manager) violation(pg *Page, format string, args ...any) *ProtocolViolationError {
	n.bus.Flush()
	return newViolation(n.ring, pg, format, args...)
}

// auditSweepFactor spaces full-directory sweeps: one sweep per this many
// sampled page audits.
const auditSweepFactor = 256

// EnableAudit turns on the online auditor. After every protocol action
// the manager increments an operation counter; every stride-th operation
// audits the page just acted on, and every stride*256-th operation sweeps
// the whole directory (every live page plus the residency table). Stride
// 1 is the full audit used by tests and the fuzz suite; larger strides
// make sampled auditing near-free for long sweeps. Stride 0 disables
// checking but still records ring as the forensic trace attached to any
// violation raised by the protocol itself.
func (n *Manager) EnableAudit(stride int, ring *simtrace.RingSink) {
	n.auditStride = stride
	n.ring = ring
	if stride > 0 {
		n.auditSweepEvery = uint64(stride) * auditSweepFactor
	}
}

// AuditStride returns the configured sampling stride (0 = auditing off).
func (n *Manager) AuditStride() int { return n.auditStride }

// maybeAudit runs the incremental audit according to the sampling stride.
// pg is the page the protocol just acted on.
//
//numalint:coldpath diagnostics: sampled invariant checking is opt-in via EnableAudit
func (n *Manager) maybeAudit(pg *Page) {
	if n.auditStride <= 0 {
		return
	}
	n.auditOps++
	if n.auditOps%uint64(n.auditStride) == 0 {
		if err := n.auditCheckPage(pg); err != nil {
			panic(n.violation(pg, "numa: audit: %v", err))
		}
	}
	if n.auditSweepEvery > 0 && n.auditOps%n.auditSweepEvery == 0 {
		if err := n.AuditAll(); err != nil {
			panic(n.violation(pg, "numa: audit sweep: %v", err))
		}
	}
}

// auditCheckPage validates one page's directory invariants: the
// structural checks of CheckInvariants (exactly one writable copy,
// replica sets consistent with the page state), every replica recorded in
// the residency table, and pin monotonicity (a pin is only cleared by
// FreePage).
func (n *Manager) auditCheckPage(pg *Page) error {
	if err := n.CheckInvariants(pg); err != nil {
		return err
	}
	for p, c := range pg.copies {
		if c == nil {
			continue
		}
		if n.shards[p].resident[c.Index()] != pg {
			return fmt.Errorf("page%d copy on cpu%d frame %d is missing from the residency table",
				pg.id, p, c.Index())
		}
		if n.offline != nil && n.offline[p] {
			return fmt.Errorf("page%d holds a copy on offline node%d", pg.id, p)
		}
	}
	if pg.pinSeen && !pg.pinned {
		return fmt.Errorf("page%d pin bit cleared outside FreePage", pg.id)
	}
	if pg.pinned {
		pg.pinSeen = true
	}
	// Heat-counter invariants (policyapi.go): the histogram is sized to
	// the machine, it never runs ahead of the manager's decay epoch, and
	// without an observing/advising policy it stays untouched.
	if len(pg.heat) != len(n.shards) {
		return fmt.Errorf("page%d heat histogram has %d buckets, want %d", pg.id, len(pg.heat), len(n.shards))
	}
	if pg.heatEpoch > n.curEpoch {
		return fmt.Errorf("page%d heat epoch %d is ahead of the manager's epoch %d", pg.id, pg.heatEpoch, n.curEpoch)
	}
	if !n.trackHeat {
		if pg.moveHeat != 0 || pg.heatEpoch != 0 {
			return fmt.Errorf("page%d carries heat counters but the policy has no observer/advisor capability", pg.id)
		}
		for node, h := range pg.heat {
			if h != 0 {
				return fmt.Errorf("page%d node%d heat %d without an observer/advisor capability", pg.id, node, h)
			}
		}
	}
	return nil
}

// AuditAll audits the whole directory: every live page's invariants plus
// the residency table's consistency with the pages it indexes (no stale
// entries, and never more recorded copies than allocated frames — the
// residency ≤ LocalFrames budget). It returns the first violation found,
// or nil. The fuzz suite runs it after every operation; sampled runs
// reach it through the sweep stride.
func (n *Manager) AuditAll() error {
	if err := n.dir.forEach(n.auditCheckPage); err != nil {
		return err
	}
	for p := range n.shards {
		used := 0
		for i, pg := range n.shards[p].resident {
			if pg == nil {
				continue
			}
			used++
			c := pg.copies[p]
			if c == nil || c.Index() != i {
				return fmt.Errorf("stale residency entry: cpu%d frame %d records page%d, which holds no such copy",
					p, i, pg.id)
			}
		}
		pool := n.machine.Memory().Local(p)
		if alloc := pool.Size() - pool.Free(); used > alloc {
			return fmt.Errorf("cpu%d residency table records %d copies but only %d frames are allocated",
				p, used, alloc)
		}
		// Degraded-mode invariants: an offline node stays empty (no
		// residency, pool fully free) for the whole quarantine, and the
		// quarantine is monotonic — only ReviveNode may lift it (it clears
		// the auditor's shadow bit before the mask).
		if n.offline != nil {
			if n.offline[p] {
				n.offlineSeen[p] = true
				if used != 0 {
					return fmt.Errorf("offline node%d has %d resident copies", p, used)
				}
				if pool.Free() != pool.Size() {
					return fmt.Errorf("offline node%d pool holds %d allocated frames",
						p, pool.Size()-pool.Free())
				}
			} else if n.offlineSeen[p] {
				return fmt.Errorf("node%d came back online outside ReviveNode (quarantine is monotonic)", p)
			}
		}
	}
	return nil
}

// register adds a page to the dense live-page directory used by AuditAll
// and the state-dump summary.
//
//numalint:oraclechannel
func (n *Manager) register(pg *Page) {
	pg.mgr = n
	n.dir.add(pg)
	if n.mir != nil {
		n.mir.register(pg)
	}
}

// unregister removes a freed page from the directory; its slot's
// generation stamp is bumped so a stale handle cannot evict a later
// occupant.
//
//numalint:oraclechannel
func (n *Manager) unregister(pg *Page) {
	n.dir.remove(pg)
	if n.mir != nil {
		n.mir.unregister(pg)
	}
}

// DumpSection summarizes the directory for engine state dumps: live-page
// counts per state, pins, replicas, per-processor residency occupancy and
// the headline protocol counters. NewManager registers it with the
// machine's engine, so deadlock/stall/stop dumps and repro bundles always
// include the NUMA view.
func (n *Manager) DumpSection() sim.DumpSection {
	var byState [4]int
	pinned, replicas := 0, 0
	_ = n.dir.forEach(func(pg *Page) error {
		if s := int(pg.state); s >= 0 && s < len(byState) {
			byState[s]++
		}
		if pg.pinned {
			pinned++
		}
		replicas += pg.NCopies()
		return nil
	})
	body := fmt.Sprintf("live pages: %d (read-only %d, local-writable %d, global-writable %d, remote %d); pinned %d; local replicas %d\n",
		n.dir.len(), byState[ReadOnly], byState[LocalWritable], byState[GlobalWritable], byState[Remote],
		pinned, replicas)
	for p := range n.shards {
		used := 0
		for _, pg := range n.shards[p].resident {
			if pg != nil {
				used++
			}
		}
		body += fmt.Sprintf("cpu%d local residency: %d/%d frames\n", p, used, len(n.shards[p].resident))
	}
	s := n.stats
	body += fmt.Sprintf("requests: %d reads, %d writes; syncs %d, flushes %d, copies %d, moves %d, pins %d, evictions %d, fallbacks %d\n",
		s.ReadRequests, s.WriteRequests, s.Syncs, s.Flushes, s.Copies, s.Moves, s.Pins,
		s.Evictions, s.LocalFallback)
	return sim.DumpSection{Title: "NUMA directory", Body: body}
}
