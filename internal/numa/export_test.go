package numa

import "fmt"

// This file exports the dense directory's test oracle to the black-box
// fuzz suite. MapOracle is the pre-dense representation of the manager's
// hot state — a map-based live-page index and map-based per-processor
// residency tables — maintained through the mirror hook and compared
// against the dense forms after every protocol step. It exists only
// under test; production code never constructs one.

// MapOracle mirrors directory and residency mutations into maps.
type MapOracle struct {
	live     map[int64]*Page       // page id -> page (old live-index form)
	resident map[int]map[int]*Page // proc -> frame index -> page
}

// InstallMapOracle hooks a fresh oracle into the manager's mirror
// interface. Install before any page is created.
func InstallMapOracle(n *Manager) *MapOracle {
	if n.dir.len() != 0 {
		panic("numa: InstallMapOracle on a manager with live pages")
	}
	o := &MapOracle{
		live:     make(map[int64]*Page),
		resident: make(map[int]map[int]*Page),
	}
	for p := range n.shards {
		o.resident[p] = make(map[int]*Page)
	}
	n.mir = o
	return o
}

func (o *MapOracle) register(pg *Page)   { o.live[pg.id] = pg }
func (o *MapOracle) unregister(pg *Page) { delete(o.live, pg.id) }
func (o *MapOracle) noteCopy(pg *Page, proc, frame int) {
	o.resident[proc][frame] = pg
}
func (o *MapOracle) noteDrop(proc, frame int) {
	delete(o.resident[proc], frame)
}

// Check compares the manager's dense sharded state against the map
// oracle: the live-page directory must hold exactly the oracle's pages,
// and each processor's residency shard must record exactly the oracle's
// (frame, page) entries, with every recorded page holding a matching
// copy. It returns the first divergence found, or nil.
func (o *MapOracle) Check(n *Manager) error {
	seen := 0
	err := n.dir.forEach(func(pg *Page) error {
		seen++
		got, ok := o.live[pg.id]
		if !ok {
			return fmt.Errorf("page%d is in the dense directory but not the map oracle", pg.id)
		}
		if got != pg {
			return fmt.Errorf("page%d: dense directory and map oracle hold different records", pg.id)
		}
		if pg.slot < 0 || int(pg.slot) >= len(n.dir.slots) ||
			n.dir.slots[pg.slot].pg != pg || n.dir.slots[pg.slot].gen != pg.gen {
			return fmt.Errorf("page%d: slot/generation stamp does not match its directory slot", pg.id)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if seen != len(o.live) {
		return fmt.Errorf("dense directory holds %d pages, map oracle %d", seen, len(o.live))
	}
	for p := range n.shards {
		dense := n.shards[p].resident
		count := 0
		for i, pg := range dense {
			if pg == nil {
				continue
			}
			count++
			got, ok := o.resident[p][i]
			if !ok {
				return fmt.Errorf("cpu%d frame %d: dense shard records page%d, map oracle records nothing", p, i, pg.id)
			}
			if got != pg {
				return fmt.Errorf("cpu%d frame %d: dense shard records page%d, map oracle page%d", p, i, pg.id, got.id)
			}
			if c := pg.copies[p]; c == nil || c.Index() != i {
				return fmt.Errorf("cpu%d frame %d: resident page%d holds no matching copy", p, i, pg.id)
			}
		}
		if count != len(o.resident[p]) {
			return fmt.Errorf("cpu%d: dense shard records %d copies, map oracle %d", p, count, len(o.resident[p]))
		}
	}
	return nil
}
