package sched_test

import (
	"testing"

	"numasim/internal/ace"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

func newKernel(nproc int) *vm.Kernel {
	cfg := ace.DefaultConfig()
	cfg.NProc = nproc
	cfg.GlobalFrames = 64
	cfg.LocalFrames = 32
	return vm.NewKernel(ace.MustMachine(cfg), policy.NewDefault())
}

func TestSequentialAssignment(t *testing.T) {
	k := newKernel(4)
	s := sched.New(k, sched.Affinity)
	task := k.NewTask("t")
	var procs []int
	for i := 0; i < 4; i++ {
		s.Spawn("w", task, 0, func(c *vm.Context) {
			procs = append(procs, c.Proc())
			c.Compute(1000) // stay alive so later spawns see the CPU busy
		})
	}
	if err := k.Machine().Engine().Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i, p := range procs {
		if p != want[i] {
			t.Errorf("spawn %d on cpu%d, want cpu%d (sequential assignment)", i, p, want[i])
		}
	}
}

func TestReuseAfterExit(t *testing.T) {
	k := newKernel(2)
	s := sched.New(k, sched.Affinity)
	task := k.NewTask("t")
	var first *sim.Thread
	first = s.Spawn("a", task, 0, func(c *vm.Context) { c.Compute(1) })
	var secondProc int
	k.Machine().Engine().Spawn("driver", 0, func(th *sim.Thread) {
		first.Join(th)
		// After a exits, cpu0 is free again and should be reused.
		w := s.Spawn("b", task, th.Clock(), func(c *vm.Context) {
			secondProc = c.Proc()
		})
		w.Join(th)
	})
	if err := k.Machine().Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if s.Live(0) != 0 || s.Live(1) != 0 {
		t.Errorf("live counts not drained: %d %d", s.Live(0), s.Live(1))
	}
	_ = secondProc // assignment rule is round-robin over free CPUs; b may take 0 or 1
}

func TestModeAccessor(t *testing.T) {
	k := newKernel(1)
	if sched.New(k, sched.NoAffinity).Mode() != sched.NoAffinity {
		t.Error("mode accessor wrong")
	}
}

// TestMigrateHint covers the explicit migration API: an accepted hint
// moves the thread to the target node at its next quantum boundary, the
// per-thread home-node accounting follows, and the stats ledger
// reconciles with what the caller observed.
func TestMigrateHint(t *testing.T) {
	k := newKernel(4)
	s := sched.New(k, sched.Affinity)
	task := k.NewTask("t")
	var before, after int
	var th *sim.Thread
	th = s.Spawn("w", task, 0, func(c *vm.Context) {
		before = c.Proc()
		if !s.MigrateHint(th, 2) {
			t.Error("in-range hint on an affinity scheduler rejected")
		}
		c.Compute(20000) // cross a quantum boundary so the hint applies
		after = c.Proc()
	})
	if err := k.Machine().Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if home := k.Machine().Home(before); home == 2 {
		t.Fatalf("test setup: thread spawned on the target node")
	}
	if home := k.Machine().Home(after); home != 2 {
		t.Errorf("after an accepted hint the thread runs on node %d, want 2", home)
	}
	st := s.Stats()
	if st.HintsAccepted != 1 || st.Migrations != 1 {
		t.Errorf("stats = %+v, want 1 accepted hint and 1 migration", st)
	}
	if st.NodeMigrations[2] != 1 {
		t.Errorf("NodeMigrations[2] = %d, want 1", st.NodeMigrations[2])
	}
	if st.NodeThreads[2] != 1 {
		t.Errorf("NodeThreads[2] = %d, want 1 (the migrated thread's new home)", st.NodeThreads[2])
	}
}

// TestMigrateHintRejections checks the rejection cases: out-of-range
// nodes, untracked threads, and any hint on a no-affinity scheduler.
func TestMigrateHintRejections(t *testing.T) {
	k := newKernel(2)
	s := sched.New(k, sched.Affinity)
	task := k.NewTask("t")
	var th *sim.Thread
	th = s.Spawn("w", task, 0, func(c *vm.Context) {
		if s.MigrateHint(th, -1) || s.MigrateHint(th, 99) {
			t.Error("out-of-range node accepted")
		}
		// A hint for the node the thread already lives on is accepted
		// but clears any pending move.
		if !s.MigrateHint(th, k.Machine().Home(c.Proc())) {
			t.Error("same-node hint rejected")
		}
		c.Compute(1000)
	})
	if err := k.Machine().Engine().Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.HintsRejected != 2 {
		t.Errorf("HintsRejected = %d, want 2", st.HintsRejected)
	}
	if st.Migrations != 0 {
		t.Errorf("Migrations = %d, want 0 (same-node hint must not move)", st.Migrations)
	}

	k2 := newKernel(2)
	s2 := sched.New(k2, sched.NoAffinity)
	task2 := k2.NewTask("t")
	var th2 *sim.Thread
	th2 = s2.Spawn("w", task2, 0, func(c *vm.Context) {
		if s2.MigrateHint(th2, 1) {
			t.Error("no-affinity scheduler accepted a hint")
		}
		c.Compute(1000)
	})
	if err := k2.Machine().Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().HintsRejected; got != 1 {
		t.Errorf("no-affinity HintsRejected = %d, want 1", got)
	}
}
