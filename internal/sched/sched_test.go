package sched_test

import (
	"testing"

	"numasim/internal/ace"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

func newKernel(nproc int) *vm.Kernel {
	cfg := ace.DefaultConfig()
	cfg.NProc = nproc
	cfg.GlobalFrames = 64
	cfg.LocalFrames = 32
	return vm.NewKernel(ace.MustMachine(cfg), policy.NewDefault())
}

func TestSequentialAssignment(t *testing.T) {
	k := newKernel(4)
	s := sched.New(k, sched.Affinity)
	task := k.NewTask("t")
	var procs []int
	for i := 0; i < 4; i++ {
		s.Spawn("w", task, 0, func(c *vm.Context) {
			procs = append(procs, c.Proc())
			c.Compute(1000) // stay alive so later spawns see the CPU busy
		})
	}
	if err := k.Machine().Engine().Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i, p := range procs {
		if p != want[i] {
			t.Errorf("spawn %d on cpu%d, want cpu%d (sequential assignment)", i, p, want[i])
		}
	}
}

func TestReuseAfterExit(t *testing.T) {
	k := newKernel(2)
	s := sched.New(k, sched.Affinity)
	task := k.NewTask("t")
	var first *sim.Thread
	first = s.Spawn("a", task, 0, func(c *vm.Context) { c.Compute(1) })
	var secondProc int
	k.Machine().Engine().Spawn("driver", 0, func(th *sim.Thread) {
		first.Join(th)
		// After a exits, cpu0 is free again and should be reused.
		w := s.Spawn("b", task, th.Clock(), func(c *vm.Context) {
			secondProc = c.Proc()
		})
		w.Join(th)
	})
	if err := k.Machine().Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if s.Live(0) != 0 || s.Live(1) != 0 {
		t.Errorf("live counts not drained: %d %d", s.Live(0), s.Live(1))
	}
	_ = secondProc // assignment rule is round-robin over free CPUs; b may take 0 or 1
}

func TestModeAccessor(t *testing.T) {
	k := newKernel(1)
	if sched.New(k, sched.NoAffinity).Mode() != sched.NoAffinity {
		t.Error("mode accessor wrong")
	}
}
