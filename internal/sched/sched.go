// Package sched models the processor scheduler the paper modified for
// NUMA (§4.7): each newly created thread is bound to a processor —
// assigned sequentially by processor number, skipping processors that are
// busy unless all are busy — and executes everything there (processor
// affinity).
//
// The original Mach scheduler kept a single queue of runnable processes
// from which available processors picked, so "processes moved between
// processors far too often"; NoAffinity mode reproduces that behaviour for
// the affinity ablation (E11) by migrating a thread to the next processor
// at every scheduling quantum.
package sched

import (
	"fmt"
	"strings"

	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/vm"
)

// Mode selects the scheduling discipline.
type Mode int

// Scheduling modes.
const (
	// Affinity is the paper's modified scheduler: bind at creation, stay.
	Affinity Mode = iota
	// NoAffinity approximates the original Mach single-queue scheduler:
	// threads hop processors at quantum boundaries.
	NoAffinity
)

func (m Mode) String() string {
	if m == Affinity {
		return "affinity"
	}
	return "no-affinity"
}

// ParseMode parses a scheduler name from the command line. "affinity"
// selects the paper's modified scheduler; "noaffinity" (or "no-affinity")
// the original single-queue behavior. Matching is case-insensitive.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "affinity":
		return Affinity, nil
	case "noaffinity", "no-affinity":
		return NoAffinity, nil
	}
	return Affinity, fmt.Errorf("unknown scheduler %q (want affinity or noaffinity)", s)
}

// Scheduler assigns simulated threads to processors.
type Scheduler struct {
	kernel *vm.Kernel
	mode   Mode
	live   []int // live thread count per processor
	next   int   // next processor for sequential assignment
}

// New creates a scheduler for the kernel's machine.
func New(k *vm.Kernel, mode Mode) *Scheduler {
	return &Scheduler{
		kernel: k,
		mode:   mode,
		live:   make([]int, k.Machine().NProc()),
	}
}

// Mode returns the scheduling discipline.
func (s *Scheduler) Mode() Mode { return s.mode }

// pick assigns a processor for a new thread: sequentially by number,
// skipping busy processors unless all are busy (§4.7).
func (s *Scheduler) pick() int {
	n := len(s.live)
	for i := 0; i < n; i++ {
		p := (s.next + i) % n
		if s.live[p] == 0 {
			s.next = (p + 1) % n
			return p
		}
	}
	p := s.next % n
	s.next = (p + 1) % n
	return p
}

// Spawn creates a simulated thread running fn in task, bound to a
// processor chosen by the affinity rule. start is the thread's initial
// virtual time (pass the spawner's clock when forking from a running
// thread, 0 at program start).
func (s *Scheduler) Spawn(name string, task *vm.Task, start sim.Time, fn func(*vm.Context)) *sim.Thread {
	proc := s.pick()
	s.live[proc]++
	th := s.kernel.Machine().Engine().Spawn(name, start, func(th *sim.Thread) {
		defer func() { s.live[proc]-- }()
		c := vm.NewContext(s.kernel, task, th, proc)
		if s.mode == NoAffinity {
			c.OnQuantum = s.hop
		}
		fn(c)
	})
	if bus := s.kernel.Machine().Bus(); bus.Enabled() {
		bus.Emit(simtrace.Event{
			Kind: simtrace.KindSchedAssign, Proc: int32(proc), Thread: int32(th.ID()),
			Time: int64(start), Page: -1, Label: name,
		})
	}
	return th
}

// hop migrates a thread to the next processor in round-robin order, the
// locality-destroying behaviour of a single global run queue.
func (s *Scheduler) hop(c *vm.Context) {
	c.MigrateTo((c.Proc() + 1) % s.kernel.Machine().NProc())
	c.Thread().Yield()
}

// Live reports the number of live threads bound to processor p.
func (s *Scheduler) Live(p int) int { return s.live[p] }
