// Package sched models the processor scheduler the paper modified for
// NUMA (§4.7): each newly created thread is bound to a processor —
// assigned sequentially by processor number, skipping processors that are
// busy unless all are busy — and executes everything there (processor
// affinity).
//
// The original Mach scheduler kept a single queue of runnable processes
// from which available processors picked, so "processes moved between
// processors far too often"; NoAffinity mode reproduces that behaviour for
// the affinity ablation (E11) by migrating a thread to the next processor
// at every scheduling quantum.
package sched

import (
	"fmt"
	"strings"

	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/vm"
)

// Mode selects the scheduling discipline.
type Mode int

// Scheduling modes.
const (
	// Affinity is the paper's modified scheduler: bind at creation, stay.
	Affinity Mode = iota
	// NoAffinity approximates the original Mach single-queue scheduler:
	// threads hop processors at quantum boundaries.
	NoAffinity
)

func (m Mode) String() string {
	if m == Affinity {
		return "affinity"
	}
	return "no-affinity"
}

// ParseMode parses a scheduler name from the command line. "affinity"
// selects the paper's modified scheduler; "noaffinity" (or "no-affinity")
// the original single-queue behavior. Matching is case-insensitive.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "affinity":
		return Affinity, nil
	case "noaffinity", "no-affinity":
		return NoAffinity, nil
	}
	return Affinity, fmt.Errorf("unknown scheduler %q (want affinity or noaffinity)", s)
}

// Stats counts scheduler events: thread spawns, the migration-hint
// traffic of the co-placement channel (numa.ThreadMover), and where
// threads ended up. NodeThreads counts each thread once, at the node
// it was last bound to (spawn binding, updated by hint migrations);
// NodeMigrations counts hint migrations into each node.
type Stats struct {
	Spawns         uint64
	HintsAccepted  uint64
	HintsRejected  uint64
	Migrations     uint64 // accepted hints applied at quantum boundaries
	Failovers      uint64 // threads moved off dead processors at quantum boundaries
	NodeThreads    []int
	NodeMigrations []int
}

// Scheduler assigns simulated threads to processors.
type Scheduler struct {
	kernel *vm.Kernel
	mode   Mode
	live   []int // live thread count per processor
	next   int   // next processor for sequential assignment

	// Migration-hint state (the numa.ThreadMover side of the
	// co-placement channel): hint holds the advised node per thread id
	// (-1 none), homeNode the node each thread is currently bound to
	// (-1 unknown). Both are grown at Spawn, so the hot-path MigrateHint
	// only indexes.
	hint     []int32
	homeNode []int32
	stats    Stats

	// Degraded-mode state (see failover.go): deadProc/deadNode mask
	// processors and nodes taken offline by a failure schedule. Both are
	// nil until the first FailNode, so the healthy paths pay one nil
	// check and the scheduler stays byte-identical without a schedule.
	deadProc []bool
	deadNode []bool
}

// New creates a scheduler for the kernel's machine.
func New(k *vm.Kernel, mode Mode) *Scheduler {
	nnodes := k.Machine().NNodes()
	return &Scheduler{
		kernel: k,
		mode:   mode,
		live:   make([]int, k.Machine().NProc()),
		stats: Stats{
			NodeThreads:    make([]int, nnodes),
			NodeMigrations: make([]int, nnodes),
		},
	}
}

// Mode returns the scheduling discipline.
func (s *Scheduler) Mode() Mode { return s.mode }

// pick assigns a processor for a new thread: sequentially by number,
// skipping busy processors unless all are busy (§4.7). Dead processors
// are never picked unless every processor is dead (a degenerate
// schedule); without a failure schedule the walk is unchanged.
func (s *Scheduler) pick() int {
	n := len(s.live)
	for i := 0; i < n; i++ {
		p := (s.next + i) % n
		if s.deadProc != nil && s.deadProc[p] {
			continue
		}
		if s.live[p] == 0 {
			s.next = (p + 1) % n
			return p
		}
	}
	for i := 0; i < n; i++ {
		p := (s.next + i) % n
		if s.deadProc == nil || !s.deadProc[p] {
			s.next = (p + 1) % n
			return p
		}
	}
	p := s.next % n
	s.next = (p + 1) % n
	return p
}

// Spawn creates a simulated thread running fn in task, bound to a
// processor chosen by the affinity rule. start is the thread's initial
// virtual time (pass the spawner's clock when forking from a running
// thread, 0 at program start).
func (s *Scheduler) Spawn(name string, task *vm.Task, start sim.Time, fn func(*vm.Context)) *sim.Thread {
	proc := s.pick()
	s.live[proc]++
	th := s.kernel.Machine().Engine().Spawn(name, start, func(th *sim.Thread) {
		defer func() { s.live[proc]-- }()
		c := vm.NewContext(s.kernel, task, th, proc)
		if s.mode == NoAffinity {
			c.OnQuantum = s.hop
		} else {
			// The affinity scheduler honours migration hints at quantum
			// boundaries; with no hint pending the hook is exactly the
			// default quantum yield.
			c.OnQuantum = s.applyHint
		}
		fn(c)
	})
	s.track(th, s.kernel.Machine().Home(proc))
	if bus := s.kernel.Machine().Bus(); bus.Enabled() {
		bus.Emit(simtrace.Event{
			Kind: simtrace.KindSchedAssign, Proc: int32(proc), Thread: int32(th.ID()),
			Time: int64(start), Page: -1, Label: name,
		})
	}
	return th
}

// track records a newly spawned thread's home node and sizes the hint
// tables so the hot-path MigrateHint never grows them.
func (s *Scheduler) track(th *sim.Thread, node int) {
	id := int(th.ID())
	for len(s.hint) <= id {
		s.hint = append(s.hint, -1)
		s.homeNode = append(s.homeNode, -1)
	}
	s.hint[id] = -1
	s.homeNode[id] = int32(node)
	s.stats.Spawns++
	s.stats.NodeThreads[node]++
}

// hop migrates a thread to the next processor in round-robin order, the
// locality-destroying behaviour of a single global run queue. Dead
// processors are skipped.
func (s *Scheduler) hop(c *vm.Context) {
	n := s.kernel.Machine().NProc()
	next := (c.Proc() + 1) % n
	if s.deadProc != nil {
		for i := 0; i < n && s.deadProc[next]; i++ {
			next = (next + 1) % n
		}
	}
	c.MigrateTo(next)
	c.Thread().Yield()
}

// Live reports the number of live threads bound to processor p.
func (s *Scheduler) Live(p int) int { return s.live[p] }

// MigrateHint records a request to rebind th to a processor homed on
// node, applied at the thread's next quantum boundary. It implements
// numa.ThreadMover: a ThreadAdvisor-capable policy reaches it through
// the manager's co-placement channel. Hints are accepted only under
// the affinity discipline (NoAffinity hops every quantum regardless)
// and only for threads this scheduler spawned; a later hint for the
// same thread replaces an unapplied earlier one. It runs on the
// protocol hot path and must not allocate.
//
//numalint:hotpath
func (s *Scheduler) MigrateHint(th *sim.Thread, node int) bool {
	id := int(th.ID())
	if s.mode != Affinity || node < 0 || node >= len(s.stats.NodeThreads) ||
		id >= len(s.hint) || s.homeNode[id] < 0 ||
		(s.deadNode != nil && s.deadNode[node]) {
		s.stats.HintsRejected++
		return false
	}
	if int(s.homeNode[id]) == node {
		// Already bound there: honour the hint by doing nothing.
		s.hint[id] = -1
	} else {
		s.hint[id] = int32(node)
	}
	s.stats.HintsAccepted++
	return true
}

// applyHint is the affinity scheduler's quantum hook: fail the thread
// over if its processor has died, apply a pending migration hint, then
// yield the processor as an unhooked quantum would. A hint accepted
// before its target node died is dropped, not applied.
func (s *Scheduler) applyHint(c *vm.Context) {
	if s.deadProc != nil && s.deadProc[c.Proc()] {
		s.failover(c)
	}
	id := int(c.Thread().ID())
	if id < len(s.hint) {
		if node := s.hint[id]; node >= 0 {
			s.hint[id] = -1
			if s.deadNode == nil || !s.deadNode[node] {
				s.migrate(c, int(node))
			}
		}
	}
	c.Thread().Yield()
}

// migrate rebinds the context's thread to the least-loaded processor
// homed on node (ties to the lowest processor number) and accounts the
// move. The thread travels to its pages — co-placement's complement to
// the protocol moving pages to threads — so no page traffic is charged
// here; the next faults simply land closer.
func (s *Scheduler) migrate(c *vm.Context, node int) {
	procs := s.kernel.Machine().NodeProcs(node)
	target := -1
	for _, p := range procs {
		if s.deadProc != nil && s.deadProc[p] {
			continue
		}
		if target < 0 || s.live[p] < s.live[target] {
			target = p
		}
	}
	if target < 0 {
		return
	}
	from := c.Proc()
	if target == from {
		return
	}
	id := int(c.Thread().ID())
	if old := s.homeNode[id]; old >= 0 {
		s.stats.NodeThreads[old]--
	}
	s.homeNode[id] = int32(node)
	s.stats.NodeThreads[node]++
	s.stats.Migrations++
	s.stats.NodeMigrations[node]++
	c.MigrateTo(target)
	if bus := s.kernel.Machine().Bus(); bus.Enabled() {
		bus.Emit(simtrace.Event{
			Kind: simtrace.KindSchedMigrate, Proc: int32(target), Thread: int32(c.Thread().ID()),
			Time: int64(c.Thread().Clock()), Page: -1,
			Arg: int64(node), Arg2: int64(from),
		})
	}
}

// Stats returns a copy of the scheduler's counters (slices cloned).
func (s *Scheduler) Stats() Stats {
	st := s.stats
	st.NodeThreads = append([]int(nil), s.stats.NodeThreads...)
	st.NodeMigrations = append([]int(nil), s.stats.NodeMigrations...)
	return st
}
