package sched

import "numasim/internal/vm"

// Degraded-mode thread failover: when the health driver takes a node
// offline, its processors stop receiving new threads immediately (pick
// skips them) and the threads already bound there are moved off at their
// next quantum boundary — the same boundary the co-placement hints use —
// onto the least-loaded processor of the nearest surviving node. The
// masks are nil until the first FailNode, so a run with no failure
// schedule is byte-identical to one without this file.

// FailNode marks node and every processor homed on it dead. New threads
// and hint migrations avoid them; threads currently bound there fail
// over at their next quantum boundary.
func (s *Scheduler) FailNode(node int) {
	if node < 0 || node >= len(s.stats.NodeThreads) {
		return
	}
	if s.deadProc == nil {
		s.deadProc = make([]bool, len(s.live))
		s.deadNode = make([]bool, len(s.stats.NodeThreads))
	}
	if s.deadNode[node] {
		return
	}
	s.deadNode[node] = true
	for _, p := range s.kernel.Machine().NodeProcs(node) {
		s.deadProc[p] = true
	}
}

// ReviveNode returns a dead node's processors to service. Threads do
// not move back on their own; new spawns and migrations may use the
// node again.
func (s *Scheduler) ReviveNode(node int) {
	if s.deadNode == nil || node < 0 || node >= len(s.deadNode) || !s.deadNode[node] {
		return
	}
	s.deadNode[node] = false
	for _, p := range s.kernel.Machine().NodeProcs(node) {
		s.deadProc[p] = false
	}
}

// NodeDead reports whether node is currently failed over.
func (s *Scheduler) NodeDead(node int) bool {
	return s.deadNode != nil && s.deadNode[node]
}

// failover moves the context's thread off its dead processor onto the
// least-loaded processor of the nearest surviving node (distance-ranked
// from the dead processor's home, ties to the lowest node id). With
// every node dead the thread stays put — a degenerate schedule the
// harness never produces.
func (s *Scheduler) failover(c *vm.Context) {
	machine := s.kernel.Machine()
	home := machine.Home(c.Proc())
	for _, cand := range machine.Spec().Ranked(home) {
		if s.deadNode[cand] || len(machine.NodeProcs(cand)) == 0 {
			continue
		}
		s.stats.Failovers++
		s.migrate(c, cand)
		return
	}
}
