package topology

import (
	"testing"

	"numasim/internal/sim"
)

// aceLat is the paper's measured latency set (§2.2).
var aceLat = ACELatencies{
	LocalFetch: 650 * sim.Nanosecond, LocalStore: 840 * sim.Nanosecond,
	GlobalFetch: 1500 * sim.Nanosecond, GlobalStore: 1400 * sim.Nanosecond,
	RemoteFetch: 1800 * sim.Nanosecond, RemoteStore: 1700 * sim.Nanosecond,
}

// TestACESpecMatchesPublishedConstants: the ACE builder's latency matrix
// holds exactly the six published constants — the foundation of the
// byte-identity contract.
func TestACESpecMatchesPublishedConstants(t *testing.T) {
	s, err := ACE(7, aceLat)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNodes() != 7 || s.NProcs() != 7 {
		t.Fatalf("ACE shape: %d nodes, %d procs, want 7 and 7", s.NNodes(), s.NProcs())
	}
	for p := 0; p < 7; p++ {
		if s.Home(p) != p {
			t.Errorf("ACE home of cpu%d = %d, want identity", p, s.Home(p))
		}
		if got := s.NodeProcs(p); len(got) != 1 || got[0] != p {
			t.Errorf("ACE NodeProcs(%d) = %v, want [%d]", p, got, p)
		}
		for n := 0; n <= 7; n++ {
			wantF, wantS := aceLat.RemoteFetch, aceLat.RemoteStore
			switch {
			case n == p:
				wantF, wantS = aceLat.LocalFetch, aceLat.LocalStore
			case n == 7:
				wantF, wantS = aceLat.GlobalFetch, aceLat.GlobalStore
			}
			if got := s.FetchLatency(p, n); got != wantF {
				t.Errorf("ACE fetch[%d][%d] = %v, want %v", p, n, got, wantF)
			}
			if got := s.StoreLatency(p, n); got != wantS {
				t.Errorf("ACE store[%d][%d] = %v, want %v", p, n, got, wantS)
			}
		}
	}
	if s.Contended() {
		t.Error("ACE spec models link contention; the paper's bus is fixed-latency")
	}
	// 1800/650 scaled to SLIT units: 27.
	if d := s.Dist(0, 1); d != 27 {
		t.Errorf("ACE remote distance = %d, want 27 (1800*10/650)", d)
	}
	// Global frames (mem's proc -1) map to the interleave column.
	if c := s.Col(-1); c != 7 {
		t.Errorf("Col(-1) = %d, want the interleave column 7", c)
	}
}

// TestDerivedLatencies: Custom derives entry (p,n) as base × dist/10 in
// integer nanoseconds and the interleave column as the integer mean.
func TestDerivedLatencies(t *testing.T) {
	dist := [][]int{{10, 16, 22}, {16, 10, 16}, {22, 16, 10}}
	s, err := Custom("t", 3, dist, 650*sim.Nanosecond, 840*sim.Nanosecond, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		var sum sim.Time
		for n := 0; n < 3; n++ {
			want := 650 * sim.Nanosecond * sim.Time(dist[p][n]) / 10
			if got := s.FetchLatency(p, n); got != want {
				t.Errorf("fetch[%d][%d] = %v, want %v", p, n, got, want)
			}
			sum += want
		}
		if got, want := s.FetchLatency(p, 3), sum/3; got != want {
			t.Errorf("interleave fetch[%d] = %v, want mean %v", p, got, want)
		}
	}
}

// TestRanked: remotes come distance-ranked, self first, ties by id.
func TestRanked(t *testing.T) {
	dist := [][]int{
		{10, 30, 20, 30},
		{30, 10, 30, 20},
		{20, 30, 10, 30},
		{30, 20, 30, 10},
	}
	s, err := Custom("t", 4, dist, 650*sim.Nanosecond, 840*sim.Nanosecond, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2, 1, 3}, {1, 3, 0, 2}, {2, 0, 1, 3}, {3, 1, 0, 2}}
	for n := range want {
		got := s.Ranked(n)
		for i := range want[n] {
			if got[i] != want[n][i] {
				t.Fatalf("Ranked(%d) = %v, want %v", n, got, want[n])
			}
		}
	}
}

// TestValidateRejects: the SLIT conventions are enforced.
func TestValidateRejects(t *testing.T) {
	base := 650 * sim.Nanosecond
	cases := []struct {
		name string
		dist [][]int
	}{
		{"diagonal not 10", [][]int{{11, 20}, {20, 10}}},
		{"remote at local distance", [][]int{{10, 10}, {10, 10}}},
		{"remote below local", [][]int{{10, 5}, {5, 10}}},
	}
	for _, c := range cases {
		if _, err := Custom("bad", 2, c.dist, base, base, false, 0); err == nil {
			t.Errorf("%s: accepted %v", c.name, c.dist)
		}
	}
	if _, err := Custom("bad", 2, [][]int{{10, 20}, {20, 10}}, 0, base, false, 0); err == nil {
		t.Error("zero base latency accepted")
	}
	if _, err := ACE(2, ACELatencies{}); err == nil {
		t.Error("zero ACE latency set accepted")
	}
	if _, err := ByName("torus", 4); err == nil {
		t.Error("unknown topology name accepted")
	}
}

// TestBuilders: the registered topologies build for assorted processor
// counts and carry the advertised shapes.
func TestBuilders(t *testing.T) {
	for _, np := range []int{2, 4, 7, 8, 16} {
		s, err := FourSocket(np)
		if err != nil {
			t.Fatalf("FourSocket(%d): %v", np, err)
		}
		if s.NNodes() != 4 || !s.Contended() || len(s.Links()) != 6 {
			t.Errorf("FourSocket(%d): %d nodes, %d links, contended=%v", np, s.NNodes(), len(s.Links()), s.Contended())
		}
		m, err := Mesh8(np)
		if err != nil {
			t.Fatalf("Mesh8(%d): %v", np, err)
		}
		if m.NNodes() != 8 || !m.Contended() || len(m.Links()) != 10 {
			t.Errorf("Mesh8(%d): %d nodes, %d links, contended=%v", np, m.NNodes(), len(m.Links()), m.Contended())
		}
		// Opposite corners of the 2x4 mesh are 4 hops: 10 + 6*4.
		if d := m.Dist(0, 7); d != 34 {
			t.Errorf("Mesh8 corner distance = %d, want 34", d)
		}
	}
	for _, name := range Names()[1:] {
		if _, err := ByName(name, 8); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}

// TestServiceConservation: every transfer's service time lands in exactly
// the links on its route — summing LinkStats.Service over all links equals
// the sum over transfers of route-length × bytes × PerByte, regardless of
// interleaving or contention.
func TestServiceConservation(t *testing.T) {
	s, err := Mesh8(8)
	if err != nil {
		t.Fatal(err)
	}
	topo := New(s)
	var want sim.Time
	var wantBytes uint64
	now := sim.Time(0)
	// A deterministic pseudo-random schedule (LCG; no math/rand in the
	// deterministic core).
	state := uint64(42)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for i := 0; i < 5000; i++ {
		proc := next(8)
		col := next(9) // node column or the interleave column 8
		bytes := 4 + next(4096)
		before := topo.rrTarget(proc, col)
		topo.ChargeTransfer(now, proc, col, bytes)
		if hops := len(s.routes[s.homeOf[proc]*s.nnodes+before]); before != s.homeOf[proc] {
			want += sim.Time(hops) * sim.Time(bytes) * 12 * sim.Nanosecond
			wantBytes += uint64(bytes) * uint64(hops)
		}
		now += sim.Time(next(2000)) * sim.Nanosecond
	}
	var got sim.Time
	var gotBytes uint64
	for _, l := range topo.LinkStats() {
		got += l.Service
		gotBytes += l.Bytes
	}
	if got != want || gotBytes != wantBytes {
		t.Errorf("service not conserved: got %v/%d bytes, want %v/%d bytes", got, gotBytes, want, wantBytes)
	}
}

// rrTarget resolves the destination node ChargeTransfer will pick for col
// without consuming the round-robin cursor (test helper).
func (t *Topology) rrTarget(proc, col int) int {
	if col == t.spec.nnodes {
		return t.rr
	}
	return col
}

// TestQueueingMonotone: at a fixed transfer schedule, total queueing delay
// is monotone non-decreasing in offered load (transfer size).
func TestQueueingMonotone(t *testing.T) {
	s, err := FourSocket(4)
	if err != nil {
		t.Fatal(err)
	}
	waitedAt := func(bytes int) sim.Time {
		topo := New(s)
		var total sim.Time
		// Two processors hammer the same link back-to-back at 1µs spacing.
		for i := 0; i < 200; i++ {
			now := sim.Time(i) * sim.Microsecond
			total += topo.ChargeTransfer(now, 0, 1, bytes)
			total += topo.ChargeTransfer(now, 1, 0, bytes)
		}
		return total
	}
	prev := sim.Time(-1)
	for _, bytes := range []int{16, 64, 256, 1024, 4096} {
		w := waitedAt(bytes)
		if w < prev {
			t.Errorf("queueing delay fell from %v to %v as size grew to %d bytes", prev, w, bytes)
		}
		prev = w
	}
	if prev == 0 {
		t.Error("4KB back-to-back transfers never queued; the token bucket is inert")
	}
}

// TestChargeTransferDeterminism: identical schedules against fresh
// Topology values produce identical waits and stats — the property that
// keeps -parallel byte-identical.
func TestChargeTransferDeterminism(t *testing.T) {
	s, err := Mesh8(8)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]sim.Time, []LinkStats) {
		topo := New(s)
		var waits []sim.Time
		state := uint64(7)
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int(state>>33) % n
		}
		now := sim.Time(0)
		for i := 0; i < 2000; i++ {
			waits = append(waits, topo.ChargeTransfer(now, next(8), next(9), 4+next(512)))
			now += sim.Time(next(900)) * sim.Nanosecond
		}
		return waits, topo.LinkStats()
	}
	w1, s1 := run()
	w2, s2 := run()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("replay diverged at transfer %d: %v vs %v", i, w1[i], w2[i])
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("replay link stats diverged on %s: %+v vs %+v", s1[i].Name, s1[i], s2[i])
		}
	}
}

// TestUncontendedChargesNothing: the ACE spec's ChargeTransfer is a no-op
// with no link state — the fast path the byte-identity contract rides on.
func TestUncontendedChargesNothing(t *testing.T) {
	s, err := ACE(3, aceLat)
	if err != nil {
		t.Fatal(err)
	}
	topo := New(s)
	for i := 0; i < 100; i++ {
		if w := topo.ChargeTransfer(sim.Time(i), i%3, (i+1)%4, 4096); w != 0 {
			t.Fatalf("uncontended transfer %d waited %v", i, w)
		}
	}
	if topo.LinkStats() != nil {
		t.Error("uncontended topology reported link stats")
	}
}
