package topology

// Unit tests for the degraded-mode runtime health state: deterministic
// rerouting around severed links and dead nodes, per-link capacity
// overrides, restore semantics, and the round-robin interleave cursor
// skipping offline nodes.

import (
	"reflect"
	"testing"

	"numasim/internal/sim"
)

// TestMeshDetour severs the node1-node2 edge of the 2x4 mesh and checks
// the XY routes recompute to the lowest-numbered shortest detour: BFS
// expands healthy links in ascending index order, so ties always
// resolve the same way.
func TestMeshDetour(t *testing.T) {
	spec, err := Mesh8(8)
	if err != nil {
		t.Fatal(err)
	}
	tp := New(spec)
	li, ok := spec.LinkIndex("node1-node2")
	if !ok {
		t.Fatal("mesh8 lacks link node1-node2")
	}
	if got := tp.Route(0, 2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("healthy route 0->2 = %v, want [0 1]", got)
	}

	tp.SeverLink(li)
	if !tp.Degraded() {
		t.Error("SeverLink did not mark the topology degraded")
	}
	if !tp.LinkSevered(li) {
		t.Error("severed link not reported severed")
	}
	// 0->2 detours through row 1: 0->1 over link 0, down link 7, across
	// link 4, up link 8. 0->3 pays the same drop-and-return, five hops.
	if got := tp.Route(0, 2); !reflect.DeepEqual(got, []int{0, 7, 4, 8}) {
		t.Errorf("severed route 0->2 = %v, want [0 7 4 8]", got)
	}
	if got := tp.Route(0, 3); !reflect.DeepEqual(got, []int{0, 7, 4, 5, 9}) {
		t.Errorf("severed route 0->3 = %v, want [0 7 4 5 9]", got)
	}
	// Pairs whose spec route avoids the severed link keep the exact spec
	// slice (shared, not copied).
	if got, want := tp.Route(4, 6), spec.routes[4*spec.nnodes+6]; &got[0] != &want[0] {
		t.Error("unaffected pair did not keep the shared spec route")
	}

	tp.RestoreLink(li)
	if got := tp.Route(0, 2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("restored route 0->2 = %v, want [0 1]", got)
	}
	if tp.LinkSevered(li) {
		t.Error("restored link still reported severed")
	}
}

// TestFullyConnectedRelay severs a direct link of the fully connected
// 4-socket machine and checks the pair relays two-hop through the
// lowest-numbered healthy intermediate — and moves to the next
// intermediate when that node dies too, then routes nil (base latency
// only) when the pair is fully partitioned.
func TestFullyConnectedRelay(t *testing.T) {
	spec, err := FourSocket(4)
	if err != nil {
		t.Fatal(err)
	}
	tp := New(spec)
	li, ok := spec.LinkIndex("node0-node1")
	if !ok {
		t.Fatal("4socket lacks link node0-node1")
	}

	tp.SeverLink(li)
	// Relay through node2: node0-node2 (link 1) then node1-node2 (link 3).
	if got := tp.Route(0, 1); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("severed route 0->1 = %v, want relay via node2 [1 3]", got)
	}
	if got := tp.Route(1, 0); !reflect.DeepEqual(got, []int{3, 1}) {
		t.Errorf("severed route 1->0 = %v, want relay via node2 [3 1]", got)
	}

	tp.SetNodeHealth(2, false)
	if !tp.NodeHealthy(0) || tp.NodeHealthy(2) {
		t.Error("node health mask wrong after taking node2 down")
	}
	// node2 down: relay shifts to node3 (links 2 and 4).
	if got := tp.Route(0, 1); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Errorf("route 0->1 with node2 down = %v, want relay via node3 [2 4]", got)
	}

	tp.SetNodeHealth(3, false)
	// All intermediates dead: the pair is partitioned and routes nil.
	if got := tp.Route(0, 1); got != nil {
		t.Errorf("partitioned route 0->1 = %v, want nil", got)
	}

	// Reviving node2 heals the partition through it again.
	tp.SetNodeHealth(2, true)
	if got := tp.Route(0, 1); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("route 0->1 after reviving node2 = %v, want [1 3]", got)
	}
}

// TestNodeDownSeversIncidentLinks checks a dead node takes its incident
// links with it, and re-onlining restores them unless independently
// severed.
func TestNodeDownSeversIncidentLinks(t *testing.T) {
	spec, err := FourSocket(4)
	if err != nil {
		t.Fatal(err)
	}
	tp := New(spec)
	l01, _ := spec.LinkIndex("node0-node1")
	l12, _ := spec.LinkIndex("node1-node2")
	l23, _ := spec.LinkIndex("node2-node3")

	tp.SetNodeHealth(1, false)
	if !tp.LinkSevered(l01) || !tp.LinkSevered(l12) {
		t.Error("links incident to the dead node are still routable")
	}
	if tp.LinkSevered(l23) {
		t.Error("link between two healthy nodes reported severed")
	}

	tp.SeverLink(l01) // independently severed while the node is down
	tp.SetNodeHealth(1, true)
	if !tp.LinkSevered(l01) {
		t.Error("independently severed link healed by node revival")
	}
	if tp.LinkSevered(l12) {
		t.Error("incident link not restored by node revival")
	}
}

// TestDegradeLinkFactor checks the per-byte override arithmetic and its
// restore, and that a degraded (slower, but routable) link keeps its
// routes.
func TestDegradeLinkFactor(t *testing.T) {
	spec, err := FourSocket(4)
	if err != nil {
		t.Fatal(err)
	}
	tp := New(spec)
	li, _ := spec.LinkIndex("node0-node1")
	base := spec.Links()[li].PerByte

	tp.DegradeLink(li, 4)
	if got := tp.LinkPerByte(li); got != 4*base {
		t.Errorf("degraded per-byte = %v, want %v", got, 4*base)
	}
	if got := tp.Route(0, 1); len(got) != 1 {
		t.Errorf("degraded link lost its route: %v", got)
	}
	tp.DegradeLink(li, 0) // clamps to 1
	if got := tp.LinkPerByte(li); got != base {
		t.Errorf("factor<1 per-byte = %v, want clamp to %v", got, base)
	}
	tp.DegradeLink(li, 4)
	tp.RestoreLink(li)
	if got := tp.LinkPerByte(li); got != base {
		t.Errorf("restored per-byte = %v, want %v", got, base)
	}
}

// TestInterleaveSkipsOfflineNodes checks the round-robin cursor that
// resolves interleaved-global transfers never lands on a dead node
// while any node survives.
func TestInterleaveSkipsOfflineNodes(t *testing.T) {
	spec, err := FourSocket(4)
	if err != nil {
		t.Fatal(err)
	}
	tp := New(spec)
	tp.SetNodeHealth(1, false)
	tp.SetNodeHealth(3, false)
	for i := 0; i < 8; i++ {
		n := tp.nextInterleave()
		if n == 1 || n == 3 {
			t.Fatalf("interleave cursor landed on offline node%d", n)
		}
	}
}

// TestDegradedChargeDeterminism replays the same transfer schedule on
// two independently degraded topologies and checks every charge
// matches: rerouted queueing must be a pure function of the schedule.
func TestDegradedChargeDeterminism(t *testing.T) {
	build := func() *Topology {
		spec, err := Mesh8(8)
		if err != nil {
			t.Fatal(err)
		}
		tp := New(spec)
		li, _ := spec.LinkIndex("node1-node2")
		tp.SeverLink(li)
		return tp
	}
	a, b := build(), build()
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		proc := i % 8
		col := (i * 3) % 9 // includes column 8, the interleaved global
		bytes := 64 + (i%7)*32
		wa := a.ChargeTransfer(now, proc, col, bytes)
		wb := b.ChargeTransfer(now, proc, col, bytes)
		if wa != wb {
			t.Fatalf("step %d: charge diverged: %v vs %v", i, wa, wb)
		}
		now += sim.Time(100+i) * sim.Nanosecond
	}
}

// TestUncontendedHealthMutations checks health mutations on a spec with
// no modelled interconnect are safe no-ops for routing: there are no
// routes to recompute, quarantine still gates placement, and
// ChargeTransfer still charges nothing.
func TestUncontendedHealthMutations(t *testing.T) {
	spec, err := Custom("plain", 4, [][]int{
		{10, 20, 20, 20}, {20, 10, 20, 20}, {20, 20, 10, 20}, {20, 20, 20, 10},
	}, 650*sim.Nanosecond, 840*sim.Nanosecond, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	tp := New(spec)
	tp.SetNodeHealth(2, false)
	if tp.NodeHealthy(2) {
		t.Error("uncontended topology did not record node health")
	}
	if got := tp.ChargeTransfer(0, 0, 1, 4096); got != 0 {
		t.Errorf("uncontended transfer charged %v, want 0", got)
	}
	tp.SetNodeHealth(2, true)
	if !tp.NodeHealthy(2) {
		t.Error("node2 still down after revival")
	}
}
