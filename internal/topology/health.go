// Degraded-mode runtime health: a node health mask, per-link capacity
// overrides, and deterministic rerouting around severed links. All state
// here lives on the per-machine Topology, never on the shared Spec — a
// failure schedule degrades one machine without touching its siblings in
// a parallel sweep.
//
// The inertness contract: a Topology with no health mutations keeps
// degraded == false, allocates nothing, and ChargeTransfer's healthy path
// is byte-for-byte the PR 8 behaviour. Every degraded branch is guarded
// by the single bool.
package topology

import "numasim/internal/sim"

// LinkIndex resolves a link name ("node0-node1") to its index in Links.
func (s *Spec) LinkIndex(name string) (int, bool) {
	for i, l := range s.links {
		if l.Name == name {
			return i, true
		}
	}
	return -1, false
}

// Degraded reports whether any health mutation has ever been applied.
func (t *Topology) Degraded() bool { return t.degraded }

// NodeHealthy reports whether node is online. Always true on a machine
// with no health mutations.
//
//numalint:hotpath
func (t *Topology) NodeHealthy(node int) bool {
	return !t.degraded || !t.nodeDown[node]
}

// LinkSevered reports whether link li is unusable (explicitly severed or
// an endpoint node is down).
func (t *Topology) LinkSevered(li int) bool {
	return t.degraded && t.linkDown[li]
}

// LinkPerByte returns link li's current per-byte service time, including
// any degrade override.
func (t *Topology) LinkPerByte(li int) sim.Time {
	if t.degraded {
		return t.perByte[li]
	}
	return t.spec.links[li].PerByte
}

// Route returns the current route between two nodes (the runtime route
// when degraded, the spec route otherwise). The slice is owned by the
// topology and must not be mutated; nil means the pair exchanges traffic
// without a modelled link.
func (t *Topology) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	if t.degraded {
		return t.routes[src*t.spec.nnodes+dst]
	}
	return t.spec.routes[src*t.spec.nnodes+dst]
}

// SetNodeHealth marks node offline (healthy == false) or back online.
// Taking a node down also takes down every link incident to it; routes
// recompute deterministically around the loss. Re-onlining restores the
// incident links unless they were independently severed.
func (t *Topology) SetNodeHealth(node int, healthy bool) {
	t.ensureDegraded()
	t.nodeDown[node] = !healthy
	t.refreshLinks()
}

// SeverLink makes link li unusable until RestoreLink. Routes recompute
// around it: mesh paths detour, fully connected pairs relay two-hop
// through the lowest-numbered healthy intermediate.
func (t *Topology) SeverLink(li int) {
	t.ensureDegraded()
	t.severed[li] = true
	t.refreshLinks()
}

// DegradeLink multiplies link li's per-byte service time by factor
// (factor >= 1; integer arithmetic keeps the model deterministic). The
// link stays routable — transfers just queue behind its slower drain.
func (t *Topology) DegradeLink(li, factor int) {
	t.ensureDegraded()
	if factor < 1 {
		factor = 1
	}
	t.perByte[li] = t.spec.links[li].PerByte * sim.Time(factor)
}

// RestoreLink undoes SeverLink and DegradeLink for link li.
func (t *Topology) RestoreLink(li int) {
	t.ensureDegraded()
	t.severed[li] = false
	t.perByte[li] = t.spec.links[li].PerByte
	t.refreshLinks()
}

// chargeDegraded routes one transfer over the runtime route with
// store-and-forward queueing: the transfer waits out each link's backlog
// in path order, its arrival at every hop delayed by the hops before it.
// The healthy path keeps the parallel-wait accounting (each link's
// backlog measured independently from the transfer's start time) for
// byte-identical goldens; under rerouting, where severed links funnel
// many node pairs through few survivors, the parallel sum counts a
// shared backlog once per link crossed and the thread clocks it feeds
// back into the link state diverge. Sequential traversal bounds the
// transfer's finish time by the worst backlog plus its own service.
//
//numalint:hotpath
func (t *Topology) chargeDegraded(now sim.Time, route []int, bytes int) sim.Time {
	var wait sim.Time
	cur := now
	for _, li := range route {
		ls := &t.links[li]
		service := sim.Time(bytes) * t.perByte[li]
		if ls.busyUntil > cur {
			d := ls.busyUntil - cur
			wait += d
			ls.waited += d
			cur = ls.busyUntil
		}
		ls.busyUntil = cur + service
		cur += service
		ls.xfers++
		ls.bytes += uint64(bytes)
		ls.service += service
	}
	return wait
}

// nextInterleave advances the interleaved-memory round-robin cursor to
// the next online node. With every node down it returns the cursor
// unmoved — a degenerate schedule the NUMA layer's evacuation protocol
// never produces. Called from ChargeTransfer only when degraded, so
// nodeDown is allocated.
func (t *Topology) nextInterleave() int {
	s := t.spec
	for i := 0; i < s.nnodes; i++ {
		n := t.rr
		t.rr++
		if t.rr == s.nnodes {
			t.rr = 0
		}
		if !t.nodeDown[n] {
			return n
		}
	}
	return t.rr
}

// ensureDegraded lazily clones the spec's routing and capacity tables
// into runtime form on the first health mutation.
func (t *Topology) ensureDegraded() {
	if t.degraded {
		return
	}
	t.degraded = true
	s := t.spec
	t.nodeDown = make([]bool, s.nnodes)
	t.severed = make([]bool, len(s.links))
	t.linkDown = make([]bool, len(s.links))
	t.perByte = make([]sim.Time, len(s.links))
	for i, l := range s.links {
		t.perByte[i] = l.PerByte
	}
	t.routes = make([][]int, len(s.routes))
	copy(t.routes, s.routes)
}

// refreshLinks re-derives the effective link-down mask from the severed
// flags and the node mask, then recomputes every route.
func (t *Topology) refreshLinks() {
	s := t.spec
	for i, l := range s.links {
		t.linkDown[i] = t.severed[i] || t.nodeDown[l.A] || t.nodeDown[l.B]
	}
	t.recomputeRoutes()
}

// recomputeRoutes rebuilds the runtime route table: pairs whose spec
// route survives keep it (shared slice, no copy); broken pairs get a
// deterministic shortest-hop path over the healthy links (BFS expanding
// neighbours in ascending node order, so ties always resolve to the
// lowest-numbered detour); unreachable pairs route nil, paying only the
// base latency — the partition is visible in LinkStats as missing
// traffic, and the NUMA layer never places memory across it because the
// dead nodes are evacuated.
func (t *Topology) recomputeRoutes() {
	s := t.spec
	if len(s.routes) == 0 {
		// Uncontended specs model no interconnect: there are no routes
		// to reroute, and health changes only gate placement.
		return
	}
	for a := 0; a < s.nnodes; a++ {
		for b := 0; b < s.nnodes; b++ {
			if a == b {
				continue
			}
			spec := s.routes[a*s.nnodes+b]
			if t.routeAlive(spec) {
				t.routes[a*s.nnodes+b] = spec
				continue
			}
			t.routes[a*s.nnodes+b] = t.findRoute(a, b)
		}
	}
}

// routeAlive reports whether every link on the route is usable. A nil
// spec route stays nil (the pair never had a modelled link).
func (t *Topology) routeAlive(route []int) bool {
	for _, li := range route {
		if t.linkDown[li] {
			return false
		}
	}
	return true
}

// findRoute runs a deterministic BFS from a to b over the healthy links
// and returns the link indices along the path, or nil when b is
// unreachable (or either endpoint node is down).
func (t *Topology) findRoute(a, b int) []int {
	s := t.spec
	if t.nodeDown[a] || t.nodeDown[b] {
		return nil
	}
	// adj[n] lists (neighbour, link) pairs in ascending link order; link
	// order itself is ascending by construction in every builder, which
	// combined with FIFO BFS yields the lowest-numbered shortest detour.
	parent := make([]int, s.nnodes) // predecessor node, -1 = unvisited
	via := make([]int, s.nnodes)    // link used to reach the node
	for i := range parent {
		parent[i] = -1
	}
	parent[a] = a
	queue := []int{a}
	for len(queue) > 0 && parent[b] == -1 {
		cur := queue[0]
		queue = queue[1:]
		for li, l := range s.links {
			if t.linkDown[li] {
				continue
			}
			var next int
			switch cur {
			case l.A:
				next = l.B
			case l.B:
				next = l.A
			default:
				continue
			}
			if t.nodeDown[next] || parent[next] != -1 {
				continue
			}
			parent[next] = cur
			via[next] = li
			queue = append(queue, next)
		}
	}
	if parent[b] == -1 {
		return nil
	}
	var rev []int
	for cur := b; cur != a; cur = parent[cur] {
		rev = append(rev, via[cur])
	}
	// Reverse into a→b order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
