package topology

import (
	"fmt"

	"numasim/internal/sim"
)

// ACELatencies are the measured 32-bit reference latencies that seed the
// ACE spec's latency matrix (§2.2 and §4.4 of the paper).
type ACELatencies struct {
	LocalFetch  sim.Time
	LocalStore  sim.Time
	GlobalFetch sim.Time
	GlobalStore sim.Time
	RemoteFetch sim.Time
	RemoteStore sim.Time
}

// ACE builds the paper's two-level machine as a topology spec: one node
// per processor (each processor's local memory is its own node), the
// interleave column holding the global-memory latencies, every other
// node at remote latency, and no contended links — the IPC bus is
// modelled, as in the paper, by the fixed global latencies alone. The
// distance matrix is derived from the fetch-latency ratios so
// distance-ranked placement degrades exactly as the measured machine
// does.
func ACE(nprocs int, lat ACELatencies) (*Spec, error) {
	if lat.LocalFetch <= 0 {
		return nil, fmt.Errorf("topology: ace local fetch latency %v not positive", lat.LocalFetch)
	}
	nnodes := nprocs
	homeOf := make([]int, nprocs)
	dist := make([][]int, nnodes)
	fetch := make([][]sim.Time, nprocs)
	store := make([][]sim.Time, nprocs)
	// Remote distance from the remote/local fetch ratio (1800/650 → 27).
	remoteDist := int(lat.RemoteFetch * LocalDistance / lat.LocalFetch)
	if remoteDist <= LocalDistance {
		remoteDist = LocalDistance + 1
	}
	for p := 0; p < nprocs; p++ {
		homeOf[p] = p
		dist[p] = make([]int, nnodes)
		fetch[p] = make([]sim.Time, nnodes+1)
		store[p] = make([]sim.Time, nnodes+1)
		for n := 0; n < nnodes; n++ {
			if n == p {
				dist[p][n] = LocalDistance
				fetch[p][n] = lat.LocalFetch
				store[p][n] = lat.LocalStore
			} else {
				dist[p][n] = remoteDist
				fetch[p][n] = lat.RemoteFetch
				store[p][n] = lat.RemoteStore
			}
		}
		fetch[p][nnodes] = lat.GlobalFetch
		store[p][nnodes] = lat.GlobalStore
	}
	return Explicit("ace", nnodes, nprocs, homeOf, dist, fetch, store)
}

// FourSocket builds a 4-socket fully-connected machine: SLIT distance 16
// between any two sockets (one hop over a point-to-point link), local
// latencies matching the ACE's measured local memory, and a contended
// link per socket pair at 12ns/byte (≈80 MB/s, the ACE's IPC bus rate).
// Processors are homed round-robin across the sockets.
func FourSocket(nprocs int) (*Spec, error) {
	const sockets = 4
	dist := make([][]int, sockets)
	for a := range dist {
		dist[a] = make([]int, sockets)
		for b := range dist[a] {
			if a == b {
				dist[a][b] = LocalDistance
			} else {
				dist[a][b] = 16
			}
		}
	}
	return Custom("4socket", nprocs, dist, 650*sim.Nanosecond, 840*sim.Nanosecond, true, 12*sim.Nanosecond)
}

// Mesh8 builds an 8-node 2x4 mesh: SLIT distance 10 + 6 per hop of
// Manhattan routing, latencies derived from the distances, and a
// contended link per mesh edge (10 links) with deterministic XY routing
// (traverse the row first, then the column).
func Mesh8(nprocs int) (*Spec, error) {
	const rows, cols = 2, 4
	const nnodes = rows * cols
	dist := make([][]int, nnodes)
	for a := 0; a < nnodes; a++ {
		dist[a] = make([]int, nnodes)
		for b := 0; b < nnodes; b++ {
			hops := manhattan(a, b, cols)
			dist[a][b] = LocalDistance + 6*hops
		}
	}
	s := &Spec{name: "mesh8", nnodes: nnodes, nprocs: nprocs, homeOf: defaultHomes(nnodes, nprocs)}
	var err error
	if s.dist, err = flattenDist(s.name, nnodes, dist); err != nil {
		return nil, err
	}
	s.fetch = deriveLatencies(s, 650*sim.Nanosecond)
	s.store = deriveLatencies(s, 840*sim.Nanosecond)
	s.contended = true
	s.links, s.routes = meshLinks(rows, cols, 12*sim.Nanosecond)
	return s.finish()
}

// manhattan counts mesh hops between nodes a and b on a cols-wide grid.
func manhattan(a, b, cols int) int {
	ar, ac := a/cols, a%cols
	br, bc := b/cols, b%cols
	dr, dc := ar-br, ac-bc
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// meshLinks builds one link per mesh edge and XY (row-first) routes.
func meshLinks(rows, cols int, perByte sim.Time) ([]Link, [][]int) {
	nnodes := rows * cols
	var links []Link
	// edge[a*nnodes+b] is the link index for adjacent nodes a, b.
	edge := make([]int, nnodes*nnodes)
	addEdge := func(a, b int) {
		edge[a*nnodes+b] = len(links)
		edge[b*nnodes+a] = len(links)
		links = append(links, Link{Name: fmt.Sprintf("node%d-node%d", a, b), A: a, B: b, PerByte: perByte})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols-1; c++ {
			addEdge(r*cols+c, r*cols+c+1)
		}
	}
	for c := 0; c < cols; c++ {
		for r := 0; r < rows-1; r++ {
			addEdge(r*cols+c, (r+1)*cols+c)
		}
	}
	routes := make([][]int, nnodes*nnodes)
	for a := 0; a < nnodes; a++ {
		for b := 0; b < nnodes; b++ {
			if a == b {
				continue
			}
			var path []int
			cur := a
			// Row first: walk along a's row to b's column...
			for cur%cols != b%cols {
				next := cur + 1
				if b%cols < cur%cols {
					next = cur - 1
				}
				path = append(path, edge[cur*nnodes+next])
				cur = next
			}
			// ...then down the column.
			for cur/cols != b/cols {
				next := cur + cols
				if b/cols < cur/cols {
					next = cur - cols
				}
				path = append(path, edge[cur*nnodes+next])
				cur = next
			}
			routes[a*nnodes+b] = path
		}
	}
	return links, routes
}

// ByName builds the registered topology named name for nprocs processors.
// The ACE itself is not built here: it needs the machine's measured
// latencies, so ace.SpecForConfig constructs it from the cost model.
func ByName(name string, nprocs int) (*Spec, error) {
	switch name {
	case "4socket", "4-socket", "foursocket":
		return FourSocket(nprocs)
	case "mesh8", "8mesh", "mesh":
		return Mesh8(nprocs)
	}
	return nil, fmt.Errorf("topology: unknown topology %q (have: %v)", name, Names())
}

// Names lists the registered topology names selectable via -topology,
// including the default ACE.
func Names() []string { return []string{"ace", "4socket", "mesh8"} }
