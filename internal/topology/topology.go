// Package topology parameterizes the simulated machine's memory shape: N
// memory nodes, the processors homed on them, a SLIT-style node-distance
// matrix (the Linux ACPI formulation: 10 is local, larger is farther),
// per-processor access-latency matrices derived from the distances, and a
// deterministic bandwidth/queueing model on the interconnect links so
// heavy remote traffic contends instead of paying a fixed latency.
//
// The package splits immutable description from mutable run state:
//
//   - Spec is the immutable shape — node count, home map, distance and
//     latency matrices, links and routes. A Spec is safe to share between
//     machines running concurrently; the harness reuses one Spec across
//     every run of a sweep.
//   - Topology is the per-machine runtime — the per-link token-bucket
//     clocks and transfer counters. Each machine owns a fresh Topology,
//     so the parallel harness stays byte-identical at any -parallel.
//
// The ACE of the paper is the registered two-level special case: each
// processor is its own node, the latency matrix holds the paper's
// measured constants, and no link contends — so the published tables are
// byte-identical through this generalized path.
package topology

import (
	"fmt"
	"strings"

	"numasim/internal/sim"
)

// LocalDistance is the SLIT convention for a node's distance to itself.
const LocalDistance = 10

// MaxNodes bounds the node count (the fuzz suite draws 2..8; real SLITs
// go far higher, but the dense matrices are sized for simulation scale).
const MaxNodes = 64

// Link is one interconnect link. Links are unidirectionally modelled but
// carry traffic of both directions of their endpoint pair: the token
// bucket serializes all transfers routed over the link.
type Link struct {
	// Name identifies the link in reports ("node0-node1").
	Name string
	// A and B are the endpoint nodes (descriptive; routing is explicit).
	A, B int
	// PerByte is the link's service time per byte transferred: the
	// token-bucket drain rate. 12ns/byte ≈ the ACE's 80 MB/s IPC bus.
	PerByte sim.Time
}

// Spec is an immutable machine shape. Build one with Explicit, Custom or
// a named builder (ACE, FourSocket, Mesh8, ByName); the zero value is not
// a valid Spec.
type Spec struct {
	name   string
	nnodes int
	nprocs int

	// homeOf maps each processor to the node its local memory lives on;
	// nodeProcs is the inverse (node -> processors homed there), in
	// ascending processor order.
	homeOf    []int
	nodeProcs [][]int

	// dist is the flattened SLIT matrix, dist[a*nnodes+b]. ranked[a] is
	// every node ordered by ascending distance from a (ties by node id),
	// so ranked[a][0] == a.
	dist   []int
	ranked [][]int

	// fetch and store are the flattened per-processor access-latency
	// matrices, one row per processor, nnodes+1 columns: column n is node
	// n's memory, column nnodes is the interleaved ("global") memory.
	fetch []sim.Time
	store []sim.Time

	// links and routes describe the contended interconnect. routes is
	// flattened (src*nnodes+dst -> link indices along the path); a nil
	// route means the pair exchanges traffic without a modelled link.
	links     []Link
	routes    [][]int
	contended bool
}

// Name returns the spec's registered name.
func (s *Spec) Name() string { return s.name }

// NNodes reports the number of memory nodes.
//
//numalint:hotpath
func (s *Spec) NNodes() int { return s.nnodes }

// NProcs reports the number of processors.
//
//numalint:hotpath
func (s *Spec) NProcs() int { return s.nprocs }

// Home reports the node processor proc's local memory lives on.
//
//numalint:hotpath
func (s *Spec) Home(proc int) int { return s.homeOf[proc] }

// NodeProcs returns the processors homed on node, in ascending order.
// The returned slice is the spec's own and must not be mutated.
//
//numalint:hotpath
func (s *Spec) NodeProcs(node int) []int { return s.nodeProcs[node] }

// Col maps a frame's node to its latency-matrix column: node indices map
// to themselves, and any negative value (mem's convention for global
// frames) maps to the interleave column.
//
//numalint:hotpath
func (s *Spec) Col(node int) int {
	if node < 0 {
		return s.nnodes
	}
	return node
}

// FetchLatency returns the 32-bit fetch latency for processor proc
// against latency-matrix column col (a node index, or NNodes for the
// interleaved global memory).
//
//numalint:hotpath
func (s *Spec) FetchLatency(proc, col int) sim.Time {
	return s.fetch[proc*(s.nnodes+1)+col]
}

// StoreLatency returns the 32-bit store latency for processor proc
// against latency-matrix column col.
//
//numalint:hotpath
func (s *Spec) StoreLatency(proc, col int) sim.Time {
	return s.store[proc*(s.nnodes+1)+col]
}

// Contended reports whether the spec models interconnect contention.
//
//numalint:hotpath
func (s *Spec) Contended() bool { return s.contended }

// Dist returns the SLIT distance from node a to node b.
//
//numalint:hotpath
func (s *Spec) Dist(a, b int) int { return s.dist[a*s.nnodes+b] }

// Ranked returns every node ordered by ascending distance from node
// (ties broken by node id), so Ranked(n)[0] == n and the tail is the
// distance-ranked remotes a placement policy walks. The returned slice
// is the spec's own and must not be mutated.
func (s *Spec) Ranked(node int) []int { return s.ranked[node] }

// Links returns the spec's interconnect links (nil when uncontended).
// The returned slice is the spec's own and must not be mutated.
func (s *Spec) Links() []Link { return s.links }

// validate checks the derived spec for structural consistency.
func (s *Spec) validate() error {
	if s.nnodes < 1 || s.nnodes > MaxNodes {
		return fmt.Errorf("topology %s: %d nodes outside [1, %d]", s.name, s.nnodes, MaxNodes)
	}
	if s.nprocs < 1 {
		return fmt.Errorf("topology %s: %d processors < 1", s.name, s.nprocs)
	}
	if len(s.homeOf) != s.nprocs {
		return fmt.Errorf("topology %s: home map covers %d of %d processors", s.name, len(s.homeOf), s.nprocs)
	}
	for p, n := range s.homeOf {
		if n < 0 || n >= s.nnodes {
			return fmt.Errorf("topology %s: cpu%d homed on bad node %d", s.name, p, n)
		}
	}
	for a := 0; a < s.nnodes; a++ {
		for b := 0; b < s.nnodes; b++ {
			d := s.dist[a*s.nnodes+b]
			if a == b && d != LocalDistance {
				return fmt.Errorf("topology %s: dist[%d][%d] = %d, want the SLIT local distance %d", s.name, a, b, d, LocalDistance)
			}
			if a != b && d <= LocalDistance {
				return fmt.Errorf("topology %s: remote dist[%d][%d] = %d not above the local distance %d", s.name, a, b, d, LocalDistance)
			}
		}
	}
	for i := 0; i < len(s.fetch); i++ {
		if s.fetch[i] <= 0 || s.store[i] <= 0 {
			return fmt.Errorf("topology %s: non-positive latency in matrix entry %d", s.name, i)
		}
	}
	for i, l := range s.links {
		if l.PerByte <= 0 {
			return fmt.Errorf("topology %s: link %d (%s) has non-positive per-byte service time", s.name, i, l.Name)
		}
	}
	return nil
}

// finish derives the inverse home map and the distance ranking, then
// validates. Every constructor funnels through it.
func (s *Spec) finish() (*Spec, error) {
	s.nodeProcs = make([][]int, s.nnodes)
	for p, n := range s.homeOf {
		if n >= 0 && n < s.nnodes {
			s.nodeProcs[n] = append(s.nodeProcs[n], p)
		}
	}
	s.ranked = make([][]int, s.nnodes)
	for a := 0; a < s.nnodes; a++ {
		order := make([]int, s.nnodes)
		for b := range order {
			order[b] = b
		}
		// Insertion sort by (distance, id): deterministic and tiny.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				x, y := order[j-1], order[j]
				if s.dist[a*s.nnodes+x] > s.dist[a*s.nnodes+y] ||
					(s.dist[a*s.nnodes+x] == s.dist[a*s.nnodes+y] && x > y) {
					order[j-1], order[j] = y, x
				} else {
					break
				}
			}
		}
		s.ranked[a] = order
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Explicit builds a spec from fully explicit matrices: fetch and store
// are per-processor rows of nnodes+1 latencies (column nnodes is the
// interleaved global memory). homeOf may be nil for the default p %
// nnodes assignment. The ACE builder uses this to install the paper's
// measured constants verbatim.
func Explicit(name string, nnodes, nprocs int, homeOf []int, dist [][]int, fetch, store [][]sim.Time) (*Spec, error) {
	s := &Spec{name: name, nnodes: nnodes, nprocs: nprocs}
	if homeOf == nil {
		homeOf = defaultHomes(nnodes, nprocs)
	}
	s.homeOf = append([]int(nil), homeOf...)
	var err error
	if s.dist, err = flattenDist(name, nnodes, dist); err != nil {
		return nil, err
	}
	if s.fetch, err = flattenLat(name, "fetch", nnodes, nprocs, fetch); err != nil {
		return nil, err
	}
	if s.store, err = flattenLat(name, "store", nnodes, nprocs, store); err != nil {
		return nil, err
	}
	return s.finish()
}

// Custom builds a contention-capable spec from a SLIT distance matrix:
// latencies are derived as base × distance / 10 (integer nanosecond
// arithmetic), the interleave column is the integer mean of the node
// columns, and — when contended — a fully connected link set with direct
// single-link routes and the given per-byte service time is generated.
// The fuzz suite feeds this random matrices; FourSocket is one call.
func Custom(name string, nprocs int, dist [][]int, baseFetch, baseStore sim.Time, contended bool, perByte sim.Time) (*Spec, error) {
	nnodes := len(dist)
	s := &Spec{name: name, nnodes: nnodes, nprocs: nprocs, homeOf: defaultHomes(nnodes, nprocs)}
	var err error
	if s.dist, err = flattenDist(name, nnodes, dist); err != nil {
		return nil, err
	}
	s.fetch = deriveLatencies(s, baseFetch)
	s.store = deriveLatencies(s, baseStore)
	if contended {
		s.contended = true
		s.links, s.routes = fullyConnected(nnodes, perByte)
	}
	return s.finish()
}

// defaultHomes homes processor p on node p % nnodes.
func defaultHomes(nnodes, nprocs int) []int {
	h := make([]int, nprocs)
	for p := range h {
		h[p] = p % nnodes
	}
	return h
}

// flattenDist copies a square distance matrix into flat row-major form.
func flattenDist(name string, nnodes int, dist [][]int) ([]int, error) {
	if len(dist) != nnodes {
		return nil, fmt.Errorf("topology %s: distance matrix has %d rows, want %d", name, len(dist), nnodes)
	}
	flat := make([]int, nnodes*nnodes)
	for a, row := range dist {
		if len(row) != nnodes {
			return nil, fmt.Errorf("topology %s: distance row %d has %d entries, want %d", name, a, len(row), nnodes)
		}
		copy(flat[a*nnodes:], row)
	}
	return flat, nil
}

// flattenLat copies per-processor latency rows into flat form.
func flattenLat(name, what string, nnodes, nprocs int, rows [][]sim.Time) ([]sim.Time, error) {
	if len(rows) != nprocs {
		return nil, fmt.Errorf("topology %s: %s matrix has %d rows, want %d", name, what, len(rows), nprocs)
	}
	flat := make([]sim.Time, nprocs*(nnodes+1))
	for p, row := range rows {
		if len(row) != nnodes+1 {
			return nil, fmt.Errorf("topology %s: %s row %d has %d entries, want %d", name, what, p, len(row), nnodes+1)
		}
		copy(flat[p*(nnodes+1):], row)
	}
	return flat, nil
}

// deriveLatencies fills a latency matrix from the distance matrix: entry
// (p, n) is base × dist(home(p), n) / 10, and the interleave column is
// the integer mean over the node columns. All arithmetic is integer
// nanoseconds, so derived costs are exact and platform-independent.
func deriveLatencies(s *Spec, base sim.Time) []sim.Time {
	flat := make([]sim.Time, s.nprocs*(s.nnodes+1))
	for p := 0; p < s.nprocs; p++ {
		home := s.homeOf[p]
		var sum sim.Time
		for n := 0; n < s.nnodes; n++ {
			lat := base * sim.Time(s.dist[home*s.nnodes+n]) / LocalDistance
			flat[p*(s.nnodes+1)+n] = lat
			sum += lat
		}
		flat[p*(s.nnodes+1)+s.nnodes] = sum / sim.Time(s.nnodes)
	}
	return flat
}

// fullyConnected builds one link per unordered node pair with direct
// single-link routes.
func fullyConnected(nnodes int, perByte sim.Time) ([]Link, [][]int) {
	var links []Link
	idx := make([]int, nnodes*nnodes) // pair -> link index
	for a := 0; a < nnodes; a++ {
		for b := a + 1; b < nnodes; b++ {
			idx[a*nnodes+b] = len(links)
			idx[b*nnodes+a] = len(links)
			links = append(links, Link{Name: fmt.Sprintf("node%d-node%d", a, b), A: a, B: b, PerByte: perByte})
		}
	}
	routes := make([][]int, nnodes*nnodes)
	for a := 0; a < nnodes; a++ {
		for b := 0; b < nnodes; b++ {
			if a != b {
				routes[a*nnodes+b] = []int{idx[a*nnodes+b]}
			}
		}
	}
	return links, routes
}

// Describe renders the shape for Figure 1-style diagrams: nodes with
// their processors, the distance matrix, and the link set.
func (s *Spec) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s topology: %d nodes, %d processors\n\n", s.name, s.nnodes, s.nprocs)
	for n := 0; n < s.nnodes; n++ {
		fmt.Fprintf(&b, "  node%-2d cpus", n)
		for _, p := range s.nodeProcs[n] {
			fmt.Fprintf(&b, " %d", p)
		}
		if len(s.nodeProcs[n]) == 0 {
			b.WriteString(" (none)")
		}
		b.WriteString("\n")
	}
	b.WriteString("\n  distance matrix (SLIT, 10 = local):\n")
	for a := 0; a < s.nnodes; a++ {
		b.WriteString("   ")
		for bn := 0; bn < s.nnodes; bn++ {
			fmt.Fprintf(&b, " %3d", s.dist[a*s.nnodes+bn])
		}
		b.WriteString("\n")
	}
	if len(s.links) > 0 {
		fmt.Fprintf(&b, "\n  interconnect: %d links, contended (token-bucket per link)\n", len(s.links))
		for _, l := range s.links {
			fmt.Fprintf(&b, "    %-14s %v/byte\n", l.Name, l.PerByte)
		}
	} else {
		b.WriteString("\n  interconnect: uncontended (fixed latencies)\n")
	}
	return b.String()
}

// LinkStats is one link's accumulated traffic accounting.
type LinkStats struct {
	Name string
	// Xfers and Bytes count transfers routed over the link.
	Xfers uint64
	Bytes uint64
	// Service is the total token-bucket service time the transfers
	// consumed (Bytes × PerByte, conserved by construction); Waited is
	// the total queueing delay transfers paid because the link was busy.
	Service sim.Time
	Waited  sim.Time
}

// linkState is one link's mutable token-bucket clock and counters.
type linkState struct {
	busyUntil sim.Time
	xfers     uint64
	bytes     uint64
	service   sim.Time
	waited    sim.Time
}

// Topology is the per-machine runtime over a Spec: the link token
// buckets and the interleave round-robin cursor. A Topology belongs to
// exactly one machine (the single-threaded simulation loop mutates it);
// build a fresh one per machine and share only the Spec.
type Topology struct {
	spec  *Spec
	links []linkState
	rr    int

	// Degraded-mode runtime health. All nil/false until the first health
	// mutation (SetNodeHealth, SeverLink, DegradeLink): the healthy hot
	// path pays one bool check and nothing else, and a machine with no
	// failure schedule never allocates any of it.
	degraded bool
	nodeDown []bool
	severed  []bool     // links explicitly severed
	linkDown []bool     // severed OR an endpoint node is down
	perByte  []sim.Time // runtime per-link service time (degrade override)
	routes   [][]int    // runtime routes, recomputed around dead links
}

// New builds the runtime state for spec.
func New(spec *Spec) *Topology {
	return &Topology{spec: spec, links: make([]linkState, len(spec.links))}
}

// Spec returns the immutable shape.
//
//numalint:hotpath
func (t *Topology) Spec() *Spec { return t.spec }

// Contended reports whether transfers contend on links.
//
//numalint:hotpath
func (t *Topology) Contended() bool { return t.spec.contended }

// ChargeTransfer routes a transfer of bytes between processor proc's
// home node and latency-matrix column col at virtual time now. Each link
// on the route absorbs the transfer's service time into its token-bucket
// clock; the returned value is the queueing delay the transfer waited on
// busy links, which the caller charges on top of the base latency (the
// base latency already covers the uncontended transfer). Local traffic,
// uncontended specs and unrouted pairs wait nothing. Column NNodes (the
// interleaved global memory) is resolved to a target node by a
// deterministic round-robin cursor.
//
//numalint:hotpath
func (t *Topology) ChargeTransfer(now sim.Time, proc, col, bytes int) sim.Time {
	s := t.spec
	if !s.contended {
		return 0
	}
	src := s.homeOf[proc]
	dst := col
	if dst == s.nnodes {
		if t.degraded {
			dst = t.nextInterleave()
		} else {
			dst = t.rr
			t.rr++
			if t.rr == s.nnodes {
				t.rr = 0
			}
		}
	}
	if dst == src {
		return 0
	}
	if t.degraded {
		return t.chargeDegraded(now, t.routes[src*s.nnodes+dst], bytes)
	}
	route := s.routes[src*s.nnodes+dst]
	var wait sim.Time
	for _, li := range route {
		ls := &t.links[li]
		service := sim.Time(bytes) * s.links[li].PerByte
		if ls.busyUntil > now {
			d := ls.busyUntil - now
			wait += d
			ls.waited += d
		} else {
			ls.busyUntil = now
		}
		ls.busyUntil += service
		ls.xfers++
		ls.bytes += uint64(bytes)
		ls.service += service
	}
	return wait
}

// LinkStats snapshots every link's traffic accounting, in link order.
// It returns nil for uncontended topologies, so reports can gate on it.
func (t *Topology) LinkStats() []LinkStats {
	if len(t.links) == 0 {
		return nil
	}
	out := make([]LinkStats, len(t.links))
	for i := range t.links {
		ls := &t.links[i]
		out[i] = LinkStats{
			Name: t.spec.links[i].Name, Xfers: ls.xfers, Bytes: ls.bytes,
			Service: ls.service, Waited: ls.waited,
		}
	}
	return out
}
