// Package mmu models the per-processor memory management unit of the ACE
// (the Rosetta-C), as seen through the narrow interface the paper's pmap
// layer uses: enter a translation, tighten its protection, remove it, and
// translate on access.
//
// The model preserves the hardware quirk the paper leans on: Rosetta allows
// only a single virtual address per physical page per processor, so entering
// an aliased mapping silently displaces the previous one, producing later
// faults that the machine-independent VM system resolves (§2.1, §2.3.1).
package mmu

import (
	"fmt"

	"numasim/internal/mem"
)

// Prot is a page protection: a bitmask of read/write permission.
type Prot uint8

// Protection values.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1

	ProtReadWrite = ProtRead | ProtWrite
)

// CanRead reports whether the protection permits loads.
//
//numalint:hotpath
func (p Prot) CanRead() bool { return p&ProtRead != 0 }

// CanWrite reports whether the protection permits stores.
//
//numalint:hotpath
func (p Prot) CanWrite() bool { return p&ProtWrite != 0 }

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ProtReadWrite:
		return "rw-"
	default:
		return fmt.Sprintf("prot(%d)", uint8(p))
	}
}

// Key identifies one translation: the virtual page number qualified by the
// address space it belongs to (the pmap layer packs a space id into the
// high bits). The Rosetta-style MMU is an inverted table shared by all
// address spaces running on its processor.
type Key uint64

// PTE is one virtual-to-physical translation held by an MMU.
type PTE struct {
	Key   Key
	Frame *mem.Frame
	Prot  Prot
}

// Stats counts MMU events of interest to the evaluation.
type Stats struct {
	Enters     uint64 // translations installed
	Removes    uint64 // translations dropped
	AliasDrops uint64 // translations displaced by the one-VA-per-frame rule
	Protects   uint64 // protection changes
}

// tlbSize is the number of direct-mapped software-TLB slots. Keys are
// (space, vpn) pairs, so consecutive pages of one address space fill
// consecutive slots; 64 slots cover the working set of the paper's
// applications' inner loops.
const tlbSize = 64

// tlbSlot caches one translation. The slot holds the PTE pointer, not a
// copy, so in-place protection changes are always visible; only mappings
// that are removed or replaced need explicit slot invalidation.
type tlbSlot struct {
	key Key
	pte *PTE
}

// MMU is the translation state of a single processor.
type MMU struct {
	proc  int
	pt    map[Key]*PTE        // key -> pte
	byFrm map[*mem.Frame]*PTE // frame -> its single pte on this processor
	stats Stats

	// free recycles PTE records: Remove pushes, Enter pops, so the
	// fault/protocol path stops allocating once the working set's PTEs
	// exist. Recycling is safe with respect to the TLB because every
	// removal path invalidates the slot caching the retired PTE before it
	// can be reused.
	free []*PTE

	// direct-mapped software "TLB" to make the hot translate path cheap
	tlb [tlbSize]tlbSlot
}

// New creates the MMU for processor proc.
func New(proc int) *MMU {
	return &MMU{
		proc:  proc,
		pt:    make(map[Key]*PTE),
		byFrm: make(map[*mem.Frame]*PTE),
	}
}

// Proc reports which processor this MMU belongs to.
func (m *MMU) Proc() int { return m.proc }

// Stats returns a copy of the MMU's event counters.
func (m *MMU) Stats() Stats { return m.stats }

// tlbDrop invalidates the slot caching key, if it still does.
func (m *MMU) tlbDrop(key Key) {
	s := &m.tlb[int(key)&(tlbSize-1)]
	if s.pte != nil && s.key == key {
		s.pte = nil
	}
}

// tlbFill caches a translation, displacing whatever shared its slot.
func (m *MMU) tlbFill(key Key, pte *PTE) {
	m.tlb[int(key)&(tlbSize-1)] = tlbSlot{key: key, pte: pte}
}

func (m *MMU) invalidateTLB() { m.tlb = [tlbSize]tlbSlot{} }

// Enter installs a translation from vpn to frame with the given protection,
// replacing any previous translation for vpn. If frame is already mapped at
// a different virtual address on this processor, that mapping is dropped
// first (the Rosetta single-VA restriction) and counted in Stats.AliasDrops.
//
//numalint:hotpath
func (m *MMU) Enter(key Key, frame *mem.Frame, prot Prot) {
	if frame == nil {
		panic("mmu: Enter with nil frame")
	}
	if prot == ProtNone {
		panic("mmu: Enter with no permissions")
	}
	if old, ok := m.byFrm[frame]; ok && old.Key != key {
		delete(m.pt, old.Key)
		delete(m.byFrm, frame)
		m.stats.AliasDrops++
		m.tlbDrop(old.Key)
		m.free = append(m.free, old) //numalint:coldpath bounded: capacity tracks the PTE working-set high water
	}
	if old, ok := m.pt[key]; ok {
		// Re-enter of a mapped key: update the record in place. The TLB
		// caches the pointer, so a cached slot stays valid.
		delete(m.byFrm, old.Frame)
		old.Frame = frame
		old.Prot = prot
		m.byFrm[frame] = old
		m.stats.Enters++
		m.tlbFill(key, old)
		return
	}
	var pte *PTE
	if k := len(m.free); k > 0 {
		pte = m.free[k-1]
		m.free = m.free[:k-1]
		*pte = PTE{Key: key, Frame: frame, Prot: prot}
	} else {
		//numalint:coldpath pool miss: first fault on a fresh key; the steady state pops the free list
		pte = &PTE{Key: key, Frame: frame, Prot: prot}
	}
	m.pt[key] = pte
	m.byFrm[frame] = pte
	m.stats.Enters++
	// Prefill: the faulting access retries immediately after Enter.
	m.tlbFill(key, pte)
}

// Remove drops the translation for vpn, if any.
//
//numalint:hotpath
func (m *MMU) Remove(key Key) {
	if pte, ok := m.pt[key]; ok {
		delete(m.pt, key)
		delete(m.byFrm, pte.Frame)
		m.stats.Removes++
		m.tlbDrop(key)
		m.free = append(m.free, pte) //numalint:coldpath bounded: capacity tracks the PTE working-set high water
	}
}

// RemoveFrame drops the translation (there is at most one) mapping frame on
// this processor. It reports whether a translation existed.
//
//numalint:hotpath
func (m *MMU) RemoveFrame(frame *mem.Frame) bool {
	pte, ok := m.byFrm[frame]
	if !ok {
		return false
	}
	delete(m.pt, pte.Key)
	delete(m.byFrm, frame)
	m.stats.Removes++
	m.tlbDrop(pte.Key)
	m.free = append(m.free, pte) //numalint:coldpath bounded: capacity tracks the PTE working-set high water
	return true
}

// Protect changes the protection of the translation for vpn, if present.
// Raising as well as lowering is permitted; the pmap layer uses lowering to
// provoke the faults that drive the NUMA protocol.
//
//numalint:hotpath
func (m *MMU) Protect(key Key, prot Prot) {
	if pte, ok := m.pt[key]; ok {
		if prot == ProtNone {
			m.Remove(key)
			return
		}
		// The TLB caches the PTE pointer, so the change is visible to
		// cached translations without invalidation.
		pte.Prot = prot
		m.stats.Protects++
	}
}

// ProtectFrame changes the protection of the translation mapping frame, if
// present.
//
//numalint:hotpath
func (m *MMU) ProtectFrame(frame *mem.Frame, prot Prot) {
	if pte, ok := m.byFrm[frame]; ok {
		m.Protect(pte.Key, prot)
	}
}

// Lookup returns the translation for vpn, or nil.
//
//numalint:hotpath
func (m *MMU) Lookup(key Key) *PTE {
	return m.pt[key]
}

// LookupFrame returns this processor's translation mapping frame, or nil.
//
//numalint:hotpath
func (m *MMU) LookupFrame(frame *mem.Frame) *PTE {
	return m.byFrm[frame]
}

// Translate resolves an access. It returns the frame to access if the
// translation exists with sufficient permission, or nil to signal a fault.
// This is the hot path: it goes through the direct-mapped TLB first.
//
//numalint:hotpath
func (m *MMU) Translate(key Key, write bool) *mem.Frame {
	s := &m.tlb[int(key)&(tlbSize-1)]
	pte := s.pte
	if pte == nil || s.key != key {
		var ok bool
		pte, ok = m.pt[key]
		if !ok {
			return nil
		}
		s.key = key
		s.pte = pte
	}
	if write {
		if !pte.Prot.CanWrite() {
			return nil
		}
	} else if !pte.Prot.CanRead() {
		return nil
	}
	return pte.Frame
}

// Mappings reports the number of live translations.
func (m *MMU) Mappings() int { return len(m.pt) }

// RemoveAll drops every translation (used when destroying an address space).
// The maps keep their buckets; the retired PTEs are left to the collector
// rather than recycled — pooling them would require iterating a map, and
// this is a teardown path, not a hot one.
func (m *MMU) RemoveAll() {
	n := uint64(len(m.pt))
	clear(m.pt)
	clear(m.byFrm)
	m.stats.Removes += n
	m.invalidateTLB()
}
