package mmu

import (
	"testing"

	"numasim/internal/mem"
)

func frames(n int) []*mem.Frame {
	p := mem.NewPool(mem.Global, -1, n, 4096)
	out := make([]*mem.Frame, n)
	for i := range out {
		f, err := p.Alloc()
		if err != nil {
			panic(err)
		}
		out[i] = f
	}
	return out
}

func TestProtBits(t *testing.T) {
	if ProtNone.CanRead() || ProtNone.CanWrite() {
		t.Error("ProtNone grants access")
	}
	if !ProtRead.CanRead() || ProtRead.CanWrite() {
		t.Error("ProtRead wrong")
	}
	if !ProtReadWrite.CanRead() || !ProtReadWrite.CanWrite() {
		t.Error("ProtReadWrite wrong")
	}
	for p, want := range map[Prot]string{ProtNone: "---", ProtRead: "r--", ProtWrite: "-w-", ProtReadWrite: "rw-"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestEnterTranslate(t *testing.T) {
	f := frames(2)
	m := New(0)
	if m.Translate(5, false) != nil {
		t.Error("translate on empty MMU should fault")
	}
	m.Enter(5, f[0], ProtRead)
	if got := m.Translate(5, false); got != f[0] {
		t.Errorf("read translate = %v, want %v", got, f[0])
	}
	if m.Translate(5, true) != nil {
		t.Error("write to read-only should fault")
	}
	m.Enter(5, f[1], ProtReadWrite) // replace mapping
	if got := m.Translate(5, true); got != f[1] {
		t.Errorf("after replace, translate = %v, want %v", got, f[1])
	}
	if m.LookupFrame(f[0]) != nil {
		t.Error("replaced frame should no longer be mapped")
	}
}

func TestRosettaAliasRestriction(t *testing.T) {
	f := frames(1)
	m := New(0)
	m.Enter(10, f[0], ProtReadWrite)
	m.Enter(20, f[0], ProtReadWrite) // same frame, new VA: old VA must drop
	if m.Translate(10, false) != nil {
		t.Error("old alias should have been dropped")
	}
	if m.Translate(20, true) != f[0] {
		t.Error("new alias should work")
	}
	if s := m.Stats(); s.AliasDrops != 1 {
		t.Errorf("AliasDrops = %d, want 1", s.AliasDrops)
	}
	if m.Mappings() != 1 {
		t.Errorf("mappings = %d, want 1", m.Mappings())
	}
}

func TestReEnterSameVPNSameFrame(t *testing.T) {
	f := frames(1)
	m := New(0)
	m.Enter(10, f[0], ProtRead)
	m.Enter(10, f[0], ProtReadWrite) // upgrade in place; not an alias drop
	if s := m.Stats(); s.AliasDrops != 0 {
		t.Errorf("AliasDrops = %d, want 0", s.AliasDrops)
	}
	if m.Translate(10, true) != f[0] {
		t.Error("upgraded mapping should be writable")
	}
}

func TestRemove(t *testing.T) {
	f := frames(1)
	m := New(0)
	m.Enter(7, f[0], ProtRead)
	m.Remove(7)
	if m.Translate(7, false) != nil {
		t.Error("removed mapping still translates")
	}
	m.Remove(7) // idempotent
	if s := m.Stats(); s.Removes != 1 {
		t.Errorf("Removes = %d, want 1", s.Removes)
	}
}

func TestRemoveFrame(t *testing.T) {
	f := frames(2)
	m := New(0)
	m.Enter(1, f[0], ProtRead)
	m.Enter(2, f[1], ProtRead)
	if !m.RemoveFrame(f[0]) {
		t.Error("RemoveFrame should report true for mapped frame")
	}
	if m.RemoveFrame(f[0]) {
		t.Error("RemoveFrame should report false for unmapped frame")
	}
	if m.Translate(1, false) != nil {
		t.Error("frame mapping not removed")
	}
	if m.Translate(2, false) != f[1] {
		t.Error("unrelated mapping disturbed")
	}
}

func TestProtect(t *testing.T) {
	f := frames(1)
	m := New(0)
	m.Enter(3, f[0], ProtReadWrite)
	m.Protect(3, ProtRead) // tighten
	if m.Translate(3, true) != nil {
		t.Error("write after tighten should fault")
	}
	if m.Translate(3, false) != f[0] {
		t.Error("read after tighten should succeed")
	}
	m.Protect(3, ProtReadWrite) // loosen again
	if m.Translate(3, true) != f[0] {
		t.Error("write after loosen should succeed")
	}
	m.Protect(3, ProtNone) // equivalent to removal
	if m.Translate(3, false) != nil {
		t.Error("ProtNone should remove mapping")
	}
	m.Protect(99, ProtRead) // absent: no-op
}

func TestProtectFrame(t *testing.T) {
	f := frames(1)
	m := New(0)
	m.Enter(3, f[0], ProtReadWrite)
	m.ProtectFrame(f[0], ProtRead)
	if m.Translate(3, true) != nil {
		t.Error("ProtectFrame did not tighten")
	}
}

func TestTLBInvalidation(t *testing.T) {
	f := frames(2)
	m := New(0)
	m.Enter(4, f[0], ProtReadWrite)
	if m.Translate(4, true) != f[0] { // warm the TLB
		t.Fatal("initial translate failed")
	}
	m.Protect(4, ProtRead)
	if m.Translate(4, true) != nil {
		t.Error("stale TLB allowed write after Protect")
	}
	m.Enter(4, f[1], ProtReadWrite)
	if m.Translate(4, false) != f[1] {
		t.Error("stale TLB served old frame after Enter")
	}
	m.Remove(4)
	if m.Translate(4, false) != nil {
		t.Error("stale TLB served removed mapping")
	}
}

func TestRemoveAll(t *testing.T) {
	f := frames(3)
	m := New(1)
	for i, fr := range f {
		m.Enter(Key(i), fr, ProtRead)
	}
	m.RemoveAll()
	if m.Mappings() != 0 {
		t.Errorf("mappings after RemoveAll = %d", m.Mappings())
	}
	if s := m.Stats(); s.Removes != 3 {
		t.Errorf("Removes = %d, want 3", s.Removes)
	}
}

func TestEnterNilFramePanics(t *testing.T) {
	m := New(0)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.Enter(0, nil, ProtRead)
}

func TestEnterNoPermPanics(t *testing.T) {
	m := New(0)
	f := frames(1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.Enter(0, f[0], ProtNone)
}

func TestLookup(t *testing.T) {
	f := frames(1)
	m := New(0)
	m.Enter(11, f[0], ProtRead)
	pte := m.Lookup(11)
	if pte == nil || pte.Frame != f[0] || pte.Prot != ProtRead || pte.Key != 11 {
		t.Errorf("Lookup = %+v", pte)
	}
	if m.Lookup(12) != nil {
		t.Error("Lookup of absent vpn should be nil")
	}
}
