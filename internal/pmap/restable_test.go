package pmap

import (
	"fmt"
	"math/rand"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
)

// TestResidencyTableOracle drives the dense VPN-indexed residency table
// and its map oracle through seeded scripts of pmap operations — enter,
// protect (including the removing ProtNone form), remove, whole-page
// removal, page free and address-space destruction — and asserts the two
// representations hold identical contents after every step. White-box:
// the oracle mirror lives inside resTable and only tests can enable it.
func TestResidencyTableOracle(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		resOracleScript(t, int64(seed))
		if t.Failed() {
			t.Fatalf("stopping at first failing seed")
		}
	}
}

func resOracleScript(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	cfg := ace.DefaultConfig()
	cfg.NProc = 3
	cfg.GlobalFrames = 64
	cfg.LocalFrames = 8
	cfg.PageSize = 256
	machine := ace.MustMachine(cfg)
	nm := numa.NewManager(machine, policy.NewDefault())
	pm := NewManager(machine, nm)

	const npmaps = 3
	const npages = 8
	const nops = 150

	newSpace := func() *Pmap {
		p := pm.Create()
		p.res.enableOracle()
		return p
	}

	var scriptErr error
	machine.Engine().Spawn("oracle", 0, func(th *sim.Thread) {
		scriptErr = func() error {
			pmaps := make([]*Pmap, npmaps)
			for i := range pmaps {
				pmaps[i] = newSpace()
			}
			pages := make([]*numa.Page, npages)
			for i := range pages {
				pg, err := nm.NewPage()
				if err != nil {
					return err
				}
				pages[i] = pg
			}
			checkAll := func(op int) error {
				for i, p := range pmaps {
					if err := p.res.check(); err != nil {
						return fmt.Errorf("op %d pmap %d: %w", op, i, err)
					}
				}
				return nil
			}
			shift := machine.PageShift()
			vaOf := func(vpn uint32) uint32 { return vpn << shift }
			for op := 0; op < nops; op++ {
				p := pmaps[rng.Intn(npmaps)]
				pi := rng.Intn(npages)
				pg := pages[pi]
				vpn := uint32(16 + rng.Intn(32))
				proc := rng.Intn(cfg.NProc)
				switch r := rng.Intn(100); {
				case r < 55:
					minProt := mmu.ProtRead
					if rng.Intn(2) == 0 {
						minProt = mmu.ProtWrite
					}
					p.Enter(th, proc, vaOf(vpn), pg, mmu.ProtReadWrite, minProt)
				case r < 65:
					prot := mmu.ProtRead
					if rng.Intn(3) == 0 {
						prot = mmu.ProtNone // the removing form
					}
					length := uint32(1+rng.Intn(4)) << shift
					p.Protect(th, vaOf(vpn), length, prot)
				case r < 75:
					length := uint32(1+rng.Intn(4)) << shift
					p.Remove(th, vaOf(vpn), length)
				case r < 85:
					pm.RemoveAll(th, pg)
				case r < 93:
					pm.FreePageSync(pm.FreePage(th, pg))
					fresh, err := nm.NewPage()
					if err != nil {
						return err
					}
					pages[pi] = fresh
				default:
					// Tear down one address space and open a fresh one; its
					// dense table must drain to empty in lockstep with the
					// oracle.
					di := rng.Intn(npmaps)
					pm.Destroy(th, pmaps[di])
					if err := pmaps[di].res.check(); err != nil {
						return fmt.Errorf("op %d: destroyed pmap: %w", op, err)
					}
					if pmaps[di].res.len() != 0 {
						return fmt.Errorf("op %d: destroyed pmap still has %d resident entries", op, pmaps[di].res.len())
					}
					pmaps[di] = newSpace()
				}
				if err := checkAll(op); err != nil {
					return err
				}
			}
			return nil
		}()
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatalf("seed %d: engine: %v", seed, err)
	}
	if scriptErr != nil {
		t.Errorf("seed %d: %v", seed, scriptErr)
	}
}
