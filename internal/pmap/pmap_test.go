package pmap_test

import (
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mem"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/pmap"
	"numasim/internal/policy"
	"numasim/internal/sim"
)

func rig(t *testing.T, nproc int, pol numa.Policy, body func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager)) {
	t.Helper()
	cfg := ace.DefaultConfig()
	cfg.NProc = nproc
	cfg.GlobalFrames = 64
	cfg.LocalFrames = 32
	machine := ace.MustMachine(cfg)
	if pol == nil {
		pol = policy.NewDefault()
	}
	nm := numa.NewManager(machine, pol)
	pm := pmap.NewManager(machine, nm)
	machine.Engine().Spawn("test", 0, func(th *sim.Thread) {
		body(th, machine, pm)
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEnterInstallsTranslation(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, err := pm.NUMA().NewPage()
		if err != nil {
			t.Fatal(err)
		}
		const va = 0x5000
		p.Enter(th, 0, va, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		f := m.MMU(0).Translate(p.Key(va), true)
		if f == nil {
			t.Fatal("no writable translation after Enter")
		}
		if f != pg.Copy(0) {
			t.Error("translation does not point at cpu0's local copy")
		}
		if p.Resident(va) != pg {
			t.Error("Resident lookup failed")
		}
		if p.Resident(0x9000) != nil {
			t.Error("Resident of unmapped va should be nil")
		}
	})
}

// TestMinMaxProtection verifies extension 2 (§2.3.3): a read fault on a
// writable page maps it read-only, so a later write faults again and the
// NUMA manager sees it.
func TestMinMaxProtection(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		const va = 0x2000
		p.Enter(th, 0, va, pg, mmu.ProtReadWrite, mmu.ProtRead)
		if m.MMU(0).Translate(p.Key(va), false) == nil {
			t.Fatal("read translation missing")
		}
		if m.MMU(0).Translate(p.Key(va), true) != nil {
			t.Error("provisionally read-only mapping allows writes")
		}
		if pg.State() != numa.ReadOnly {
			t.Errorf("page state = %v, want read-only", pg.State())
		}
		// The write fault upgrades.
		p.Enter(th, 0, va, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		if m.MMU(0).Translate(p.Key(va), true) == nil {
			t.Error("write translation missing after upgrade")
		}
		if pg.State() != numa.LocalWritable || pg.Owner() != 0 {
			t.Errorf("page state = %v owner %d, want local-writable on 0", pg.State(), pg.Owner())
		}
	})
}

// TestTargetProcessor verifies extension 3: Enter creates the mapping only
// on the named processor.
func TestTargetProcessor(t *testing.T) {
	rig(t, 3, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		const va = 0x3000
		p.Enter(th, 1, va, pg, mmu.ProtReadWrite, mmu.ProtRead)
		if m.MMU(1).Translate(p.Key(va), false) == nil {
			t.Error("no translation on target processor")
		}
		for _, other := range []int{0, 2} {
			if m.MMU(other).Translate(p.Key(va), false) != nil {
				t.Errorf("translation leaked onto cpu%d", other)
			}
		}
	})
}

func TestEnterMinExceedsMaxPanics(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		p.Enter(th, 0, 0x1000, pg, mmu.ProtRead, mmu.ProtReadWrite)
	})
}

func TestNoDowngradeOfExistingMapping(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		const va = 0x4000
		p.Enter(th, 0, va, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		// A subsequent read fault (e.g. after an alias drop reinstated)
		// must not strip the write permission from the same frame.
		p.Enter(th, 0, va, pg, mmu.ProtReadWrite, mmu.ProtRead)
		if m.MMU(0).Translate(p.Key(va), true) == nil {
			t.Error("read re-enter downgraded a writable mapping")
		}
	})
}

func TestProtectAndRemove(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		ps := uint32(m.PageSize())
		var pages []*numa.Page
		for i := uint32(0); i < 3; i++ {
			pg, _ := pm.NUMA().NewPage()
			pages = append(pages, pg)
			p.Enter(th, 0, 0x10000+i*ps, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		}
		// Tighten the middle page only.
		p.Protect(th, 0x10000+ps, ps, mmu.ProtRead)
		if m.MMU(0).Translate(p.Key(0x10000+ps), true) != nil {
			t.Error("protect did not tighten")
		}
		if m.MMU(0).Translate(p.Key(0x10000), true) == nil {
			t.Error("protect touched neighbouring page")
		}
		// Remove the whole range.
		p.Remove(th, 0x10000, 3*ps)
		for i := uint32(0); i < 3; i++ {
			if m.MMU(0).Translate(p.Key(0x10000+i*ps), false) != nil {
				t.Errorf("page %d still mapped after Remove", i)
			}
			if p.Resident(0x10000+i*ps) != nil {
				t.Errorf("page %d still resident after Remove", i)
			}
		}
	})
}

func TestProtectNoneRemoves(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		p.Enter(th, 0, 0x1000, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		p.Protect(th, 0x1000, uint32(m.PageSize()), mmu.ProtNone)
		if m.MMU(0).Translate(p.Key(0x1000), false) != nil {
			t.Error("ProtNone did not remove mapping")
		}
		if p.Resident(0x1000) != nil {
			t.Error("ProtNone left page resident")
		}
	})
}

func TestRemoveAllQuiesces(t *testing.T) {
	rig(t, 3, policy.NeverPin(), func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		p.Enter(th, 0, 0x1000, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		pg.Copy(0).Store32(0, 77)
		p.Enter(th, 1, 0x1000, pg, mmu.ProtReadWrite, mmu.ProtRead)
		pm.RemoveAll(th, pg)
		if pg.NCopies() != 0 {
			t.Error("copies survive RemoveAll")
		}
		if pg.GlobalFrame().Load32(0) != 77 {
			t.Error("dirty data lost by RemoveAll")
		}
		for i := 0; i < 3; i++ {
			if m.MMU(i).Translate(p.Key(0x1000), false) != nil {
				t.Errorf("cpu%d still maps page after RemoveAll", i)
			}
		}
		if p.Resident(0x1000) != nil {
			t.Error("page still resident after RemoveAll")
		}
	})
}

func TestTwoSpacesShareOnePage(t *testing.T) {
	// Two address spaces on different processors map the same logical page:
	// the page replicates and both spaces read the same contents.
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		pa := pm.Create()
		pb := pm.Create()
		if pa.Space() == pb.Space() {
			t.Fatal("spaces not distinct")
		}
		pg, _ := pm.NUMA().NewPage()
		pa.Enter(th, 0, 0x1000, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		f := m.MMU(0).Translate(pa.Key(0x1000), true)
		f.Store32(8, 123)
		pb.Enter(th, 1, 0x8000, pg, mmu.ProtReadWrite, mmu.ProtRead)
		g := m.MMU(1).Translate(pb.Key(0x8000), false)
		if g.Load32(8) != 123 {
			t.Error("second space does not see shared data")
		}
	})
}

func TestRosettaCrossSpaceAlias(t *testing.T) {
	// Two spaces on the SAME processor mapping the same page: the hardware
	// allows one virtual address per frame per processor, so the second
	// Enter displaces the first.
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		pa := pm.Create()
		pb := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		pa.Enter(th, 0, 0x1000, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		pb.Enter(th, 0, 0x8000, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		if m.MMU(0).Translate(pa.Key(0x1000), false) != nil {
			t.Error("first space's alias should have been displaced")
		}
		if m.MMU(0).Translate(pb.Key(0x8000), true) == nil {
			t.Error("second space's mapping missing")
		}
		if m.MMU(0).Stats().AliasDrops == 0 {
			t.Error("alias drop not counted")
		}
	})
}

func TestDestroyPmap(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		p.Enter(th, 0, 0x1000, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		pm.Destroy(th, p)
		if m.MMU(0).Translate(p.Key(0x1000), false) != nil {
			t.Error("mapping survives Destroy")
		}
		defer func() {
			if recover() == nil {
				t.Error("Enter after Destroy should panic")
			}
		}()
		p.Enter(th, 0, 0x2000, pg, mmu.ProtReadWrite, mmu.ProtRead)
	})
}

func TestZeroPageAndCopyPage(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		src, _ := pm.NUMA().NewPage()
		dst, _ := pm.NUMA().NewPage()
		p := pm.Create()
		p.Enter(th, 0, 0x1000, src, mmu.ProtReadWrite, mmu.ProtWrite)
		f := m.MMU(0).Translate(p.Key(0x1000), true)
		f.Store32(0, 55)
		pm.CopyPage(th, src, dst, 0)
		if dst.GlobalFrame().Load32(0) != 55 {
			t.Error("CopyPage did not copy authoritative contents")
		}
		// After CopyPage the destination must not zero-fill over the data.
		p2 := pm.Create()
		p2.Enter(th, 1, 0x1000, dst, mmu.ProtReadWrite, mmu.ProtRead)
		g := m.MMU(1).Translate(p2.Key(0x1000), false)
		if g.Load32(0) != 55 {
			t.Error("zero-fill clobbered copied page")
		}
		// ZeroPage re-arms zero fill on a quiescent page.
		pm.RemoveAll(th, dst)
		pm.ZeroPage(dst)
		p3 := pm.Create()
		p3.Enter(th, 0, 0x9000, dst, mmu.ProtReadWrite, mmu.ProtRead)
		h := m.MMU(0).Translate(p3.Key(0x9000), false)
		if h.Load32(0) != 0 {
			t.Error("ZeroPage did not zero")
		}
	})
}

func TestFreePageViaPmap(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		p.Enter(th, 0, 0x1000, pg, mmu.ProtReadWrite, mmu.ProtWrite)
		free := m.Memory().Global().Free()
		tag := pm.FreePage(th, pg)
		pm.FreePageSync(tag)
		if m.Memory().Global().Free() != free+1 {
			t.Error("global frame not reclaimed")
		}
		if m.MMU(0).Translate(p.Key(0x1000), false) != nil {
			t.Error("mapping survives FreePage")
		}
		if p.Resident(0x1000) != nil {
			t.Error("resident record survives FreePage")
		}
	})
}

// TestFaultDrivenProtocol runs the full fault-driven flow: translate, miss,
// Enter, retry — checking that protections drive the protocol exactly as
// §2.3.1 describes.
func TestFaultDrivenProtocol(t *testing.T) {
	rig(t, 2, nil, func(th *sim.Thread, m *ace.Machine, pm *pmap.Manager) {
		p := pm.Create()
		pg, _ := pm.NUMA().NewPage()
		const va = 0x7000

		access := func(proc int, write bool) *mem.Frame {
			for tries := 0; tries < 3; tries++ {
				if f := m.MMU(proc).Translate(p.Key(va), write); f != nil {
					return f
				}
				minProt := mmu.ProtRead
				if write {
					minProt = mmu.ProtWrite
				}
				p.Enter(th, proc, va, pg, mmu.ProtReadWrite, minProt)
			}
			t.Fatal("fault loop did not converge")
			return nil
		}

		// cpu0 writes, cpu1 reads, cpu1 writes, cpu0 reads.
		access(0, true).Store32(0, 1)
		if got := access(1, false).Load32(0); got != 1 {
			t.Errorf("cpu1 read %d, want 1", got)
		}
		access(1, true).Store32(0, 2)
		if got := access(0, false).Load32(0); got != 2 {
			t.Errorf("cpu0 read %d, want 2", got)
		}
		if pg.Moves() != 1 {
			t.Errorf("moves = %d, want 1", pg.Moves())
		}
	})
}
