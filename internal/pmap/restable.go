package pmap

import (
	"fmt"

	"numasim/internal/numa"
)

// resTable is a pmap's residency index: which logical page is resident at
// each virtual page number. It used to be a map[uint32]*numa.Page; the VM
// layer allocates virtual addresses densely from a low base, so the table
// is now a page-index-addressed slice — O(1) lookup with no hashing on
// the fault path, and teardown walks it in VPN order for free (the map
// form needed a sort to keep frame free-lists deterministic).
//
// The map form survives only as a test oracle: when oracle is non-nil
// (white-box tests), every mutation is mirrored into it and check
// compares the two representations entry by entry.
type resTable struct {
	//numalint:oracle
	pages []*numa.Page // indexed by VPN; nil = no mapping entered
	//numalint:oracle
	n int // number of non-nil entries

	//numalint:oraclehook
	oracle map[uint32]*numa.Page // test-only mirror; nil in production
}

// get returns the page resident at vpn, or nil.
func (t *resTable) get(vpn uint32) *numa.Page {
	if int(vpn) >= len(t.pages) {
		return nil
	}
	return t.pages[vpn]
}

// set records pg as resident at vpn, growing the table as needed.
//
//numalint:oraclechannel
//numalint:hotpath
func (t *resTable) set(vpn uint32, pg *numa.Page) {
	if int(vpn) >= len(t.pages) {
		//numalint:coldpath table growth: once per address-space high-water VPN
		grown := make([]*numa.Page, int(vpn)+1)
		copy(grown, t.pages)
		t.pages = grown
	}
	if t.pages[vpn] == nil {
		t.n++
	}
	t.pages[vpn] = pg
	if t.oracle != nil {
		t.oracle[vpn] = pg
	}
}

// del clears vpn's entry. Deleting an absent entry is a no-op, matching
// the map form.
//
//numalint:oraclechannel
func (t *resTable) del(vpn uint32) {
	if int(vpn) >= len(t.pages) || t.pages[vpn] == nil {
		return
	}
	t.pages[vpn] = nil
	t.n--
	if t.oracle != nil {
		delete(t.oracle, vpn)
	}
}

// len reports the number of resident entries.
func (t *resTable) len() int { return t.n }

// enableOracle turns on the map mirror (test-only). The table must be
// empty when enabled.
func (t *resTable) enableOracle() {
	if t.n != 0 {
		panic("pmap: enableOracle on a non-empty residency table")
	}
	t.oracle = make(map[uint32]*numa.Page)
}

// check compares the dense table against the map oracle entry by entry:
// same size, same VPNs, same pages. It returns the first mismatch, or
// nil. No-op without an oracle.
func (t *resTable) check() error {
	if t.oracle == nil {
		return nil
	}
	if t.n != len(t.oracle) {
		return fmt.Errorf("pmap: dense table has %d entries, oracle %d", t.n, len(t.oracle))
	}
	for vpn, pg := range t.pages {
		opg, ok := t.oracle[uint32(vpn)]
		if pg == nil {
			if ok {
				return fmt.Errorf("pmap: vpn %#x missing from dense table, oracle has page%d", vpn, opg.ID())
			}
			continue
		}
		if !ok {
			return fmt.Errorf("pmap: vpn %#x holds page%d in dense table, missing from oracle", vpn, pg.ID())
		}
		if opg != pg {
			return fmt.Errorf("pmap: vpn %#x holds page%d in dense table, page%d in oracle", vpn, pg.ID(), opg.ID())
		}
	}
	return nil
}
