// Package pmap implements the pmap manager of the paper's ACE pmap layer
// (Figure 2): the module that exports the Mach pmap interface to the
// machine-independent VM system, translating pmap operations into MMU
// operations and coordinating the NUMA manager and NUMA policy.
//
// The interface carries the paper's three NUMA extensions (§2.3.3):
//
//  1. pmap_free_page / pmap_free_page_sync, so cache resources can be
//     released and cache state reset when page frames are freed;
//  2. a min/max protection pair on pmap_enter, so the layer may map pages
//     with the strictest permissions that resolve the fault (provisionally
//     marking writable pages read-only to keep seeing faults);
//  3. an explicit target-processor argument on pmap_enter, so mappings are
//     created only on processors that need them.
package pmap

import (
	"fmt"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// Pmap holds the virtual-to-physical mappings of one address space (one
// Mach task). It is a cache: mappings may be dropped or their permissions
// reduced at almost any time, and will be re-entered on the resulting
// faults.
type Pmap struct {
	mgr     *Manager
	space   uint32 // address-space id, packed into MMU keys
	shift   uint   // page shift
	res     resTable
	destroy bool
}

// Manager is the pmap manager: one per machine, coordinating all pmaps.
// Live pmaps are held in a dense slice indexed by address-space id (ids
// are monotonic and never reused), so whole-machine sweeps like RemoveAll
// walk spaces in creation order with no map iteration.
type Manager struct {
	machine   *ace.Machine
	numa      *numa.Manager
	nextSpace uint32
	pmaps     []*Pmap // indexed by space id; nil after Destroy
	nlive     int
}

// NewManager creates the pmap manager for machine, placing pages through
// the NUMA manager nm.
func NewManager(machine *ace.Machine, nm *numa.Manager) *Manager {
	return &Manager{
		machine: machine,
		numa:    nm,
	}
}

// NUMA returns the NUMA manager this pmap manager drives.
func (m *Manager) NUMA() *numa.Manager { return m.numa }

// Machine returns the underlying machine.
func (m *Manager) Machine() *ace.Machine { return m.machine }

// Create makes a new pmap (a new address space).
func (m *Manager) Create() *Pmap {
	p := &Pmap{
		mgr:   m,
		space: m.nextSpace,
		shift: m.machine.PageShift(),
	}
	m.nextSpace++
	m.pmaps = append(m.pmaps, p)
	m.nlive++
	return p
}

// Destroy removes every mapping of the pmap and retires it. The dense
// residency table is walked in VPN order: removal releases frames back to
// the allocators, so any other order would reorder free lists and leak
// nondeterminism into later placements (the old map form needed an
// explicit sort here).
func (m *Manager) Destroy(th *sim.Thread, p *Pmap) {
	for vpn := range p.res.pages {
		if p.res.pages[vpn] != nil {
			p.removeVPN(th, uint32(vpn))
		}
	}
	p.destroy = true
	m.pmaps[p.space] = nil
	m.nlive--
}

// Space returns the pmap's address-space id.
func (p *Pmap) Space() uint32 { return p.space }

// Key composes the MMU key for virtual address va in this address space.
//
//numalint:hotpath
func (p *Pmap) Key(va uint32) mmu.Key {
	return mmu.Key(p.space)<<32 | mmu.Key(va>>p.shift)
}

func (p *Pmap) keyOfVPN(vpn uint32) mmu.Key {
	return mmu.Key(p.space)<<32 | mmu.Key(vpn)
}

// Resident returns the logical page resident at va, or nil. The pmap is a
// cache; absence means only that no mapping was entered through this pmap.
//
//numalint:hotpath
func (p *Pmap) Resident(va uint32) *numa.Page {
	return p.res.get(va >> p.shift)
}

// Enter resolves a fault: it establishes a translation for va on processor
// proc, placing the page through the NUMA policy. maxProt is the loosest
// protection machine-independent code permits; minProt the strictest that
// resolves the faulting access. Costs are charged to th as system time.
//
//numalint:hotpath
func (p *Pmap) Enter(th *sim.Thread, proc int, va uint32, pg *numa.Page, maxProt, minProt mmu.Prot) {
	if p.destroy {
		panic("pmap: Enter on destroyed pmap")
	}
	if minProt&^maxProt != 0 {
		panic(fmt.Sprintf("pmap: min protection %v exceeds max %v", minProt, maxProt))
	}
	write := minProt.CanWrite()
	frame, prot := p.mgr.numa.Access(th, pg, proc, write, maxProt)

	hw := p.mgr.machine.MMU(proc)
	key := p.Key(va)
	// Never downgrade an existing stronger mapping to the same frame: the
	// NUMA manager answers with the strictest permission for the request,
	// but a surviving looser mapping means no state change was needed.
	if existing := hw.Lookup(key); existing != nil && existing.Frame == frame {
		prot |= existing.Prot
	}
	hw.Enter(key, frame, prot)
	th.AdvanceSys(p.mgr.machine.Cost().MMUOp)
	p.res.set(va>>p.shift, pg)
	if bus := p.mgr.machine.Bus(); bus.Enabled() {
		bus.Emit(simtrace.Event{
			Kind: simtrace.KindMapEnter, Proc: int32(proc), Thread: int32(th.ID()),
			Time: int64(th.Clock()), Page: pg.ID(), Arg: int64(va), Arg2: int64(prot),
		})
	}
}

// Protect tightens (or loosens) the protection of all resident pages in
// [va, va+len) to prot on every processor. With ProtNone it removes the
// mappings, per the Mach pmap_protect semantics.
func (p *Pmap) Protect(th *sim.Thread, va, length uint32, prot mmu.Prot) {
	cost := p.mgr.machine.Cost()
	first := va >> p.shift
	last := (va + length - 1) >> p.shift
	for vpn := first; vpn <= last; vpn++ {
		if p.res.get(vpn) == nil {
			continue
		}
		key := p.keyOfVPN(vpn)
		for i := 0; i < p.mgr.machine.NProc(); i++ {
			p.mgr.machine.MMU(i).Protect(key, prot)
			th.AdvanceSys(cost.MMUOp)
		}
		if prot == mmu.ProtNone {
			p.res.del(vpn)
		}
	}
}

// Remove drops all mappings in [va, va+len) on every processor.
func (p *Pmap) Remove(th *sim.Thread, va, length uint32) {
	first := va >> p.shift
	last := (va + length - 1) >> p.shift
	for vpn := first; vpn <= last; vpn++ {
		if p.res.get(vpn) != nil {
			p.removeVPN(th, vpn)
		}
	}
}

func (p *Pmap) removeVPN(th *sim.Thread, vpn uint32) {
	key := p.keyOfVPN(vpn)
	cost := p.mgr.machine.Cost()
	for i := 0; i < p.mgr.machine.NProc(); i++ {
		p.mgr.machine.MMU(i).Remove(key)
		th.AdvanceSys(cost.MMUOp)
	}
	p.res.del(vpn)
}

// RemoveAll removes a single logical page from every pmap on every
// processor (the Mach pmap_remove_all, used by pageout). It quiesces the
// page through the NUMA manager, which also syncs dirty copies back to
// global memory.
func (m *Manager) RemoveAll(th *sim.Thread, pg *numa.Page) {
	m.numa.PrepareEvict(th, pg)
	m.dropResidency(pg)
}

// dropResidency clears every pmap's residency record of pg, walking
// spaces and VPNs in ascending order (deterministic by construction; no
// map iteration).
func (m *Manager) dropResidency(pg *numa.Page) {
	for _, p := range m.pmaps {
		if p == nil {
			continue
		}
		for vpn, rpg := range p.res.pages {
			if rpg == pg {
				p.res.del(uint32(vpn))
			}
		}
	}
}

// ZeroPage records that a page must read as zeros. Zero-filling is lazily
// evaluated: the zeros are written at pmap_enter time, once the target
// processor is known, "to avoid writing zeros into global memory and
// immediately copying them" (§2.3.1).
//
//numalint:hotpath
func (m *Manager) ZeroPage(pg *numa.Page) {
	m.numa.MarkZeroFill(pg)
}

// CopyPage copies the current contents of src into dst's global frame on
// behalf of processor proc (the Mach pmap_copy_page).
//
//numalint:hotpath
func (m *Manager) CopyPage(th *sim.Thread, src, dst *numa.Page, proc int) {
	from := src.Authoritative()
	to := dst.GlobalFrame()
	to.CopyFrom(from)
	m.numa.MarkFilled(dst)
	m.machine.ChargeCopySys(th, from, to, proc)
}

// FreePage starts lazy cleanup of a freed logical page and returns a tag
// (the paper's pmap_free_page).
func (m *Manager) FreePage(th *sim.Thread, pg *numa.Page) *numa.FreeTag {
	m.dropResidency(pg)
	return m.numa.FreePage(th, pg)
}

// FreePageSync waits for cleanup started by FreePage to complete (the
// paper's pmap_free_page_sync).
func (m *Manager) FreePageSync(tag *numa.FreeTag) {
	m.numa.FreePageSync(tag)
}
