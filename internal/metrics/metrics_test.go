package metrics_test

import (
	"math"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/metrics"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/workloads"
)

func TestDeriveMatchesPaperRows(t *testing.T) {
	// Feed the paper's own published times through equations (1), (4), (5)
	// and check we recover the published α, β, γ.
	cases := []struct {
		name                   string
		tGlobal, tNuma, tLocal sim.Ticks
		gOverL                 float64
		alpha, beta, gamma     float64
	}{
		// Note: the paper prints β=0.26 for IMatMult, but its published
		// times give (82.1−68.2)/68.2 · 1/1.3 ≈ 0.157 under the G/L=2.3
		// convention its footnote 3 assigns to IMatMult (and ≈0.20 under
		// G/L=2). We check the value equation (5) actually yields; see
		// EXPERIMENTS.md.
		{"IMatMult", 82.1, 69.0, 68.2, 2.3, 0.94, 0.157, 1.01},
		{"Primes3", 39.1, 37.4, 28.8, 2.0, 0.17, 0.36, 1.30},
		{"FFT", 687.4, 449.0, 438.4, 2.0, 0.96, 0.57, 1.02},
		{"Gfetch", 60.2, 60.2, 26.5, 2.3, 0.0, 0.98, 2.27},
	}
	for _, c := range cases {
		alpha, beta, gamma := metrics.Derive(c.tGlobal, c.tNuma, c.tLocal, c.gOverL)
		if math.Abs(alpha-c.alpha) > 0.02 {
			t.Errorf("%s: α = %.3f, want %.2f", c.name, alpha, c.alpha)
		}
		if math.Abs(beta-c.beta) > 0.02 {
			t.Errorf("%s: β = %.3f, want %.2f", c.name, beta, c.beta)
		}
		if math.Abs(gamma-c.gamma) > 0.01 {
			t.Errorf("%s: γ = %.3f, want %.2f", c.name, gamma, c.gamma)
		}
	}
}

func TestDeriveDegenerate(t *testing.T) {
	// T_global == T_local: β is 0 and α undefined (reported 0).
	alpha, beta, gamma := metrics.Derive(10, 10, 10, 2)
	if alpha != 0 || beta != 0 || gamma != 1 {
		t.Errorf("degenerate derive = %v %v %v", alpha, beta, gamma)
	}
}

func TestDeriveClamps(t *testing.T) {
	// Measurement noise can push Tnuma slightly outside [Tlocal, Tglobal];
	// α must stay in [0, 1].
	alpha, _, _ := metrics.Derive(10, 10.5, 9, 2)
	if alpha != 0 {
		t.Errorf("α = %v, want clamped to 0", alpha)
	}
	alpha, _, _ = metrics.Derive(10, 8.5, 9, 2)
	if alpha != 1 {
		t.Errorf("α = %v, want clamped to 1", alpha)
	}
}

func TestModelPredictTnuma(t *testing.T) {
	// Equation (2) must be the inverse of Derive: predicting T_numa from
	// the derived parameters reproduces the measured T_numa.
	tGlobal, tNuma, tLocal := sim.Ticks(82.1), sim.Ticks(69.0), sim.Ticks(68.2)
	gl := 2.3
	alpha, beta, _ := metrics.Derive(tGlobal, tNuma, tLocal, gl)
	pred := metrics.ModelPredictTnuma(tLocal, alpha, beta, gl)
	if math.Abs(float64(pred-tNuma)) > 1e-9 {
		t.Errorf("model round trip: predicted %.6f, measured %.6f", pred, tNuma)
	}
	// And with α=0 it must reproduce T_global (equation 3).
	predG := metrics.ModelPredictTnuma(tLocal, 0, beta, gl)
	if math.Abs(float64(predG-tGlobal)) > 1e-9 {
		t.Errorf("α=0 prediction %.6f, want T_global %.6f", predG, tGlobal)
	}
}

func TestRunCollectsEverything(t *testing.T) {
	cfg := ace.DefaultConfig()
	cfg.NProc = 3
	cfg.GlobalFrames = 512
	cfg.LocalFrames = 256
	res, err := metrics.Run(workloads.NewIMatMult(12), metrics.RunSpec{
		Config: cfg, Policy: policy.NewDefault(), Workers: 3, Sched: sched.Affinity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "IMatMult" || res.Policy != "threshold(4)" || res.NProc != 3 {
		t.Errorf("identity fields: %+v", res)
	}
	if res.UserSec <= 0 || res.SysSec <= 0 {
		t.Error("no time accounted")
	}
	if res.Refs.Total() == 0 || res.Faults == 0 || res.MMUEnters == 0 {
		t.Error("no activity counted")
	}
}

func TestRunPropagatesWorkloadErrors(t *testing.T) {
	cfg := ace.DefaultConfig()
	cfg.NProc = 1
	cfg.GlobalFrames = 2 // far too small: forces pageout storms; still works
	cfg.LocalFrames = 2
	// A workload that fails verification is impossible to fake here, so
	// instead check the error path with an impossible machine: zero
	// processors fails config validation, which Run must surface.
	cfg.NProc = 0
	_, err := metrics.Run(workloads.NewParMult(2, 2), metrics.RunSpec{
		Config: cfg, Policy: policy.NewDefault(), Workers: 1, Sched: sched.Affinity,
	})
	if err == nil {
		t.Error("want error from invalid config")
	}
}

func TestEvaluatorEndToEnd(t *testing.T) {
	ev := metrics.NewEvaluator()
	cfg := ace.DefaultConfig()
	cfg.NProc = 3
	cfg.GlobalFrames = 512
	cfg.LocalFrames = 256
	ev.Config = cfg
	e, err := ev.Evaluate(func() (metrics.Runner, error) { return workloads.NewGfetch(6, 4), nil })
	if err != nil {
		t.Fatal(err)
	}
	if e.Workload != "Gfetch" {
		t.Errorf("workload = %q", e.Workload)
	}
	// Gfetch's invariants hold even at tiny sizes.
	if e.Beta < 0.9 {
		t.Errorf("Gfetch β = %.2f, want ≈1", e.Beta)
	}
	if e.GOverL < 2.2 || e.GOverL > 2.4 {
		t.Errorf("fetch-heavy G/L = %.2f, want ≈2.3", e.GOverL)
	}
	if e.Tlocal <= 0 || e.Tnuma < e.Tlocal {
		t.Errorf("times inconsistent: %+v", e)
	}
	if e.LocalRun.NProc != 1 || e.LocalRun.Workers != 1 {
		t.Error("T_local run must use one thread on a one-processor machine")
	}
	if e.GlobalRun.Policy != "all-global" || e.LocalRun.Policy != "all-local" {
		t.Error("baseline policies wrong")
	}
	// The cross-check: the true local fraction should be low for Gfetch.
	if e.MeasuredLocalFrac > 0.3 {
		t.Errorf("measured local fraction = %.2f, want near 0", e.MeasuredLocalFrac)
	}
}
