// Package metrics implements the paper's evaluation methodology (§3.1):
// the three instrumented runs (T_numa under the placement policy, T_global
// with all writable data in global memory, T_local single-threaded on a
// one-processor machine), and the model parameters derived from them —
//
//	α = (T_global − T_numa) / (T_global − T_local)          (eq. 4)
//	β = ((T_global − T_local)/T_local) · (L/(G−L))          (eq. 5)
//	γ = T_numa / T_local                                    (eq. 1)
//
// α resembles a cache hit ratio over references to writable data; β is the
// fraction of run time an all-local run would spend referencing writable
// data; γ is the user-time expansion factor.
//
// Because the simulator also counts true per-processor reference
// destinations, each evaluation additionally reports the measured local
// fraction as a cross-check on the timing-derived α — something the
// paper's hardware could not do ("Conventional memory-management systems
// provide no way to measure the relative frequencies of references from
// processors to pages", §4.4).
package metrics

import (
	"fmt"
	"sync"

	"numasim/internal/ace"
	"numasim/internal/chaos"
	"numasim/internal/cthreads"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/topology"
	"numasim/internal/vm"
)

// Runner is the workload contract the evaluator needs; the workloads
// package's Workload satisfies it.
type Runner interface {
	Name() string
	FetchHeavy() bool
	Run(rt *cthreads.Runtime, nworkers int) error
}

// RunSpec describes one instrumented run.
type RunSpec struct {
	Config   ace.Config
	Policy   numa.Policy
	Workers  int
	Sched    sched.Mode
	UnixMast bool
	// NoReplication disables read replication (the replication ablation).
	NoReplication bool
	// TraceSink, when non-nil, is attached to the run's machine before the
	// workload starts. A sink shared across concurrent runs must be safe
	// for concurrent Emit (simtrace.CountingSink is).
	TraceSink simtrace.Sink
	// Chaos configures fault injection for this run. The zero value is
	// chaos off; when enabled, a fresh injector seeded from Chaos.Seed is
	// built for the run, so a spec is reusable across concurrent runs.
	Chaos chaos.Config
	// Audit enables the NUMA manager's online auditor at this sampling
	// stride: 1 audits after every protocol action, larger strides sample,
	// 0 leaves auditing off.
	Audit int
	// Forensics attaches a per-run forensic ring buffer and converts any
	// failure into a *RunError carrying the ring contents and a rendered
	// machine-state dump (the raw material of a repro bundle).
	Forensics bool
	// StallLimit overrides the engine's stall-watchdog threshold for this
	// run (0 keeps the engine default).
	StallLimit int
	// OnMachine, when non-nil, observes the freshly built machine before
	// the workload starts. The harness supervisor uses it to reach the
	// engine for wall-clock-timeout teardown.
	OnMachine func(*ace.Machine)
}

// forensicRingCap is the per-run ring-buffer capacity used when Forensics
// or auditing is on: enough recent events to reconstruct the failing
// protocol episode without retaining the whole run.
const forensicRingCap = 256

// RunError wraps a failed instrumented run with the forensics gathered
// before teardown. It unwraps to the underlying failure, so errors.As
// still reaches typed causes such as numa.ProtocolViolationError or
// sim.StallError.
type RunError struct {
	Workload string
	Policy   string
	Err      error
	// Events is the forensic ring's contents at failure, oldest first.
	Events []simtrace.Event
	// Dump is the rendered machine-state dump (sim.StateDump.Render).
	Dump string
}

func (e *RunError) Error() string { return e.Err.Error() }
func (e *RunError) Unwrap() error { return e.Err }

// RunResult is the outcome of one instrumented run.
type RunResult struct {
	Workload string
	Policy   string
	NProc    int
	Workers  int
	// UserSec and SysSec are virtual seconds (sim.Ticks), the unit of
	// every rendered table.
	UserSec   sim.Ticks
	SysSec    sim.Ticks
	Refs      ace.RefStats
	NUMA      numa.Stats
	VM        vm.Stats
	Faults    uint64
	MMUEnters uint64
	// Links holds per-interconnect-link contention counters for topologies
	// with a bandwidth model; nil on uncontended machines (the ACE).
	Links []topology.LinkStats
	// Sched holds the scheduler's counters: spawns, the co-placement
	// channel's hint traffic, and per-node thread homes.
	Sched sched.Stats
}

// Run executes one workload on a freshly built machine per spec.
func Run(w Runner, spec RunSpec) (RunResult, error) {
	machine, err := ace.NewMachine(spec.Config)
	if err != nil {
		return RunResult{}, fmt.Errorf("metrics: %s: %w", w.Name(), err)
	}
	// Forensics and auditing share one per-run ring buffer; a shared
	// TraceSink keeps receiving everything through a tee.
	var ring *simtrace.RingSink
	sink := spec.TraceSink
	if spec.Forensics || spec.Audit > 0 {
		ring = simtrace.NewRingSink(forensicRingCap)
		if sink != nil {
			sink = simtrace.Tee(sink, ring)
		} else {
			sink = ring
		}
	}
	if sink != nil {
		machine.AttachSink(sink)
	}
	if spec.StallLimit != 0 {
		machine.Engine().StallLimit = spec.StallLimit
	}
	kernel := vm.NewKernel(machine, spec.Policy)
	kernel.UnixMaster = spec.UnixMast
	if spec.NoReplication {
		kernel.NUMA().SetReplication(false)
	}
	if spec.Audit > 0 || ring != nil {
		kernel.NUMA().EnableAudit(spec.Audit, ring)
	}
	if spec.Chaos.Enabled() {
		kernel.NUMA().SetChaos(chaos.New(spec.Chaos))
	}
	if spec.OnMachine != nil {
		spec.OnMachine(machine)
	}
	rt := cthreads.New(kernel, spec.Sched)
	if spec.Chaos.HealthEnabled() {
		if err := StartHealthDriver(machine, kernel.NUMA(), rt.Scheduler(), spec.Chaos); err != nil {
			return RunResult{}, fmt.Errorf("metrics: %s: %w", w.Name(), err)
		}
	}
	if err := w.Run(rt, spec.Workers); err != nil {
		err = fmt.Errorf("metrics: %s under %s: %w", w.Name(), spec.Policy.Name(), err)
		if spec.Forensics {
			re := &RunError{
				Workload: w.Name(), Policy: spec.Policy.Name(), Err: err,
				Dump: machine.Engine().DumpState().Render(),
			}
			if ring != nil {
				re.Events = ring.Events()
			}
			return RunResult{}, re
		}
		return RunResult{}, err
	}
	var enters uint64
	for i := 0; i < machine.NProc(); i++ {
		enters += machine.MMU(i).Stats().Enters
	}
	return RunResult{
		Workload:  w.Name(),
		Policy:    spec.Policy.Name(),
		NProc:     spec.Config.NProc,
		Workers:   spec.Workers,
		UserSec:   machine.Engine().TotalUserTime().Ticks(),
		SysSec:    machine.Engine().TotalSysTime().Ticks(),
		Refs:      machine.TotalRefs(),
		NUMA:      kernel.NUMA().Stats(),
		VM:        kernel.Stats(),
		Faults:    machine.TotalFaults(),
		MMUEnters: enters,
		Links:     machine.Topo().LinkStats(),
		Sched:     rt.Scheduler().Stats(),
	}, nil
}

// Eval is the paper's per-application evaluation: the three timing runs
// and the derived model parameters.
type Eval struct {
	Workload string
	// Total user times in virtual seconds (sim.Ticks), §3.1.
	Tglobal, Tnuma, Tlocal sim.Ticks
	// Model parameters (dimensionless).
	Alpha, Beta, Gamma float64
	// GOverL is the G/L ratio used in the equations: the fetch-only ratio
	// (≈2.3) for fetch-heavy applications, the mixed ratio (≈2.0)
	// otherwise, per §3.2 footnote 3.
	GOverL float64
	// System times for the Table 4 overhead analysis, §3.3.
	Snuma, Sglobal, DeltaS sim.Ticks
	// MeasuredLocalFrac is the true fraction of references that hit local
	// memory in the T_numa run (simulator cross-check; not in the paper).
	MeasuredLocalFrac float64
	// Detailed per-run results.
	NumaRun, GlobalRun, LocalRun RunResult
}

// Evaluator runs the paper's three-way comparison for workloads.
type Evaluator struct {
	// Config is the machine used for the T_numa and T_global runs. The
	// T_local run uses a single-processor variant of the same machine.
	Config ace.Config
	// Workers is the number of worker threads for the parallel runs
	// (default: one per processor).
	Workers int
	// Threshold is the move limit for the placement policy (default 4).
	Threshold int
	// Sched selects the scheduling discipline (default affinity).
	Sched sched.Mode
	// Parallelism bounds how many of the three instrumented runs execute
	// concurrently on real OS threads (<=1: sequential). Each run is a
	// self-contained deterministic simulation on its own machine, so the
	// measured results are bit-identical regardless of this setting.
	Parallelism int
	// TraceSink, when non-nil, is attached to every run's machine. The
	// three runs may execute concurrently, so the sink must be safe for
	// concurrent Emit (simtrace.CountingSink is).
	TraceSink simtrace.Sink
	// Chaos configures fault injection. Each instrumented run gets its own
	// injector seeded from Chaos.Seed, so results stay byte-identical at
	// every Parallelism setting.
	Chaos chaos.Config
	// Audit, Forensics and StallLimit apply to every instrumented run; see
	// the RunSpec fields of the same names.
	Audit      int
	Forensics  bool
	StallLimit int
	// OnMachine observes each run's machine as it is built; with
	// Parallelism > 1 it may be called concurrently, so it must be safe
	// for concurrent use.
	OnMachine func(*ace.Machine)
}

// NewEvaluator returns an evaluator for the paper's measurement setup:
// seven processors, the default policy.
func NewEvaluator() *Evaluator {
	return &Evaluator{Config: ace.DefaultConfig(), Threshold: policy.DefaultThreshold}
}

// Evaluate measures one workload: fresh is a factory returning a new
// instance of the same workload for each of the three runs. A factory
// error aborts the evaluation before any run starts.
func (e *Evaluator) Evaluate(fresh func() (Runner, error)) (Eval, error) {
	cfg := e.Config
	workers := e.Workers
	if workers <= 0 {
		workers = cfg.NProc
	}
	thr := e.Threshold
	if thr == 0 {
		thr = policy.DefaultThreshold
	}

	// T_local: "running the parallel applications with a single thread on
	// a single processor system, causing all data to be placed in local
	// memory" (§3.1).
	localCfg := cfg
	localCfg.NProc = 1

	// The three instrumented runs are independent simulations on separate
	// machines; fan them out. The workload instances are created serially
	// (factories need not be concurrency-safe), only the runs overlap.
	spec := func(cfg ace.Config, pol numa.Policy, workers int) RunSpec {
		return RunSpec{
			Config: cfg, Policy: pol, Workers: workers, Sched: e.Sched,
			TraceSink: e.TraceSink, Chaos: e.Chaos,
			Audit: e.Audit, Forensics: e.Forensics, StallLimit: e.StallLimit,
			OnMachine: e.OnMachine,
		}
	}
	wNuma, err := fresh()
	if err != nil {
		return Eval{}, err
	}
	wGlobal, err := fresh()
	if err != nil {
		return Eval{}, err
	}
	wLocal, err := fresh()
	if err != nil {
		return Eval{}, err
	}
	runs := []struct {
		w    Runner
		spec RunSpec
	}{
		{wNuma, spec(cfg, policy.NewThreshold(thr), workers)},
		{wGlobal, spec(cfg, policy.AllGlobal{}, workers)},
		{wLocal, spec(localCfg, policy.AllLocal{}, 1)},
	}
	var results [3]RunResult
	var errs [3]error
	if e.Parallelism > 1 {
		sem := make(chan struct{}, e.Parallelism)
		var wg sync.WaitGroup
		for i := range runs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i], errs[i] = Run(runs[i].w, runs[i].spec)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range runs {
			results[i], errs[i] = Run(runs[i].w, runs[i].spec)
		}
	}
	for _, err := range errs {
		if err != nil {
			return Eval{}, err
		}
	}
	numaRun, globalRun, localRun := results[0], results[1], results[2]

	// Bind a copy of the cost model to the run's topology so the G/L ratio
	// reflects the machine actually simulated (the ACE binding reproduces
	// the published constants exactly).
	bc := cfg.Cost
	if spec, err := ace.SpecForConfig(cfg); err == nil {
		bc.Bind(spec)
	}
	gl := bc.GOverL(0.45)
	if wNuma.FetchHeavy() {
		gl = bc.GOverL(0)
	}
	ev := Eval{
		Workload:  wNuma.Name(),
		Tglobal:   globalRun.UserSec,
		Tnuma:     numaRun.UserSec,
		Tlocal:    localRun.UserSec,
		GOverL:    gl,
		Snuma:     numaRun.SysSec,
		Sglobal:   globalRun.SysSec,
		DeltaS:    numaRun.SysSec - globalRun.SysSec,
		NumaRun:   numaRun,
		GlobalRun: globalRun,
		LocalRun:  localRun,
	}
	ev.MeasuredLocalFrac = numaRun.Refs.LocalFraction()
	ev.Alpha, ev.Beta, ev.Gamma = Derive(ev.Tglobal, ev.Tnuma, ev.Tlocal, gl)
	return ev, nil
}

// Derive computes α, β and γ from the three run times per equations (1),
// (4) and (5). When T_global and T_local coincide (β = 0), α is undefined;
// it is reported as NaN-free 0 with β 0, matching the paper's "na" entry
// for ParMult.
func Derive(tGlobal, tNuma, tLocal sim.Ticks, gOverL float64) (alpha, beta, gamma float64) {
	gamma = float64(tNuma / tLocal)
	denom := tGlobal - tLocal
	if denom <= 0 {
		return 0, 0, gamma
	}
	alpha = float64((tGlobal - tNuma) / denom)
	beta = float64(denom/tLocal) * (1 / (gOverL - 1))
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return alpha, beta, gamma
}

// ModelPredictTnuma applies equation (2): the predicted T_numa for given
// α, β and T_local.
func ModelPredictTnuma(tLocal sim.Ticks, alpha, beta, gOverL float64) sim.Ticks {
	return sim.Ticks(float64(tLocal) * ((1 - beta) + beta*(alpha+(1-alpha)*gOverL)))
}
