package metrics

import "time"

// WallMicros is a wall-clock duration in microseconds, used only for
// host-side diagnostics (how long a simulation took to run, not how long
// the simulated machine ran). It is deliberately a distinct type from
// sim.Time and sim.Ticks: the numalint units analyzer rejects any
// arithmetic or comparison mixing wall-clock and virtual time, and the
// determinism analyzer keeps wall clocks out of the simulator core
// entirely — this package is host-side and may read them.
//
//numalint:unit
type WallMicros float64

// WallSince reports the wall-clock time elapsed since start. It is the
// blessed time.Time→WallMicros boundary.
func WallSince(start time.Time) WallMicros {
	return WallMicros(float64(time.Since(start)) / float64(time.Microsecond))
}

// Millis reports the duration in milliseconds, for human-oriented logs.
func (w WallMicros) Millis() float64 { return float64(w) / 1e3 }
