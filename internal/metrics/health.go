package metrics

// The health driver: a simulated thread that replays a chaos failure
// schedule against a running machine in virtual time. Each event fires
// at its scheduled instant — the driver idles to the event time and
// yields, so every workload thread has run up to that point — and then
// mutates the three degraded-mode layers in one atomic (yield-free)
// step: the topology's health mask and link capacities, the NUMA
// manager's evacuation/quarantine protocol, and the scheduler's
// failover masks.
//
// The driver thread is spawned only when the schedule is non-empty;
// a run without one spawns nothing and stays byte-identical, thread ids
// included.

import (
	"fmt"

	"numasim/internal/ace"
	"numasim/internal/chaos"
	"numasim/internal/numa"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// healthEvent is one schedule entry with its link name resolved to an
// index (-1 for node events) before the simulation starts, so a bad
// schedule fails fast instead of mid-run.
type healthEvent struct {
	ev   chaos.HealthEvent
	link int
}

// StartHealthDriver validates cfg's failure schedule against the
// machine's topology and spawns the driver thread that replays it. A
// nil error with no schedule means nothing was spawned. Call after the
// scheduler exists and before the workload runs.
func StartHealthDriver(machine *ace.Machine, mgr *numa.Manager, sch *sched.Scheduler, cfg chaos.Config) error {
	if !cfg.HealthEnabled() {
		return nil
	}
	if err := cfg.ValidateHealth(); err != nil {
		return err
	}
	spec := machine.Spec()
	events := cfg.SortedHealth()
	resolved := make([]healthEvent, len(events))
	for i, ev := range events {
		r := healthEvent{ev: ev, link: -1}
		switch ev.Kind {
		case chaos.NodeOffline, chaos.NodeOnline:
			if ev.Node >= machine.NNodes() {
				return fmt.Errorf("chaos: health event %q: machine has only %d nodes", ev, machine.NNodes())
			}
		default:
			li, ok := spec.LinkIndex(ev.Link)
			if !ok {
				return fmt.Errorf("chaos: health event %q: topology %s has no link %q", ev, spec.Name(), ev.Link)
			}
			r.link = li
		}
		resolved[i] = r
	}
	machine.Engine().Spawn("chaos-health", 0, func(th *sim.Thread) {
		for _, r := range resolved {
			if r.ev.At > th.Clock() {
				th.Idle(r.ev.At - th.Clock())
				th.Yield()
			}
			applyHealth(machine, mgr, sch, th, r)
		}
	})
	return nil
}

// applyHealth fires one schedule entry. A node failure evacuates the
// NUMA manager first — the sync-and-migrate traffic still travels the
// healthy routes of a failing-but-not-yet-dead node — then downs the
// topology and fails the scheduler over. Revival reverses the order.
func applyHealth(machine *ace.Machine, mgr *numa.Manager, sch *sched.Scheduler, th *sim.Thread, r healthEvent) {
	topo := machine.Topo()
	bus := machine.Bus()
	switch r.ev.Kind {
	case chaos.NodeOffline:
		evac := mgr.FailNode(th, r.ev.Node)
		topo.SetNodeHealth(r.ev.Node, false)
		sch.FailNode(r.ev.Node)
		if bus.Enabled() {
			bus.Emit(simtrace.Event{
				Kind: simtrace.KindNodeOffline, Proc: -1, Thread: int32(th.ID()),
				Time: int64(th.Clock()), Page: -1,
				Arg: int64(r.ev.Node), Arg2: int64(evac),
			})
		}
	case chaos.NodeOnline:
		topo.SetNodeHealth(r.ev.Node, true)
		mgr.ReviveNode(th, r.ev.Node)
		sch.ReviveNode(r.ev.Node)
		if bus.Enabled() {
			bus.Emit(simtrace.Event{
				Kind: simtrace.KindNodeOnline, Proc: -1, Thread: int32(th.ID()),
				Time: int64(th.Clock()), Page: -1, Arg: int64(r.ev.Node),
			})
		}
	case chaos.LinkSever:
		topo.SeverLink(r.link)
		emitLinkChange(bus, th, r.link, 0, "sever")
	case chaos.LinkDegrade:
		topo.DegradeLink(r.link, r.ev.Factor)
		emitLinkChange(bus, th, r.link, int64(r.ev.Factor), "degrade")
	case chaos.LinkRestore:
		topo.RestoreLink(r.link)
		emitLinkChange(bus, th, r.link, 1, "restore")
	}
}

func emitLinkChange(bus *simtrace.Bus, th *sim.Thread, link int, factor int64, label string) {
	if bus.Enabled() {
		bus.Emit(simtrace.Event{
			Kind: simtrace.KindLinkChange, Proc: -1, Thread: int32(th.ID()),
			Time: int64(th.Clock()), Page: -1,
			Arg: int64(link), Arg2: factor, Label: label,
		})
	}
}
