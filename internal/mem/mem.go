// Package mem models the physical memories of a two-level NUMA machine:
// one global memory reachable by every processor over the shared bus, and
// one local memory per processor module (§2.2 of the paper).
//
// Memory is divided into page frames. Frames carry real page contents so
// that the NUMA manager's migration, replication, sync and flush operations
// move actual data; tests exploit this to prove that the consistency
// protocol never loses or duplicates writes.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Kind distinguishes the two levels of the memory hierarchy.
type Kind int

// Frame kinds.
const (
	Global Kind = iota // shared memory on the IPC bus
	Local              // memory on one processor module
)

func (k Kind) String() string {
	switch k {
	case Global:
		return "global"
	case Local:
		return "local"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Frame is one physical page frame. Its contents are allocated lazily on
// first access, so large sparsely-touched memories are cheap to model.
type Frame struct {
	kind     Kind
	proc     int // owning processor for Local frames; -1 for Global
	index    int // position within its pool
	pageSize int
	data     []byte
	inUse    bool
}

// Kind reports which level of the hierarchy the frame belongs to.
//
//numalint:hotpath
func (f *Frame) Kind() Kind { return f.kind }

// Proc reports the node owning a local frame, or -1 for global frames.
// (On the ACE node == processor, hence the name.)
//
//numalint:hotpath
func (f *Frame) Proc() int { return f.proc }

// Index reports the frame's position within its pool.
//
//numalint:hotpath
func (f *Frame) Index() int { return f.index }

// PageSize reports the frame's size in bytes.
//
//numalint:hotpath
func (f *Frame) PageSize() int { return f.pageSize }

// InUse reports whether the frame is currently allocated.
func (f *Frame) InUse() bool { return f.inUse }

// String identifies the frame for diagnostics.
func (f *Frame) String() string {
	if f.kind == Global {
		return fmt.Sprintf("global[%d]", f.index)
	}
	return fmt.Sprintf("local%d[%d]", f.proc, f.index)
}

// Data returns the frame's backing bytes, allocating them zeroed on first
// use.
//
//numalint:hotpath
func (f *Frame) Data() []byte {
	if f.data == nil {
		//numalint:coldpath lazy first touch: each frame's backing bytes are allocated once
		f.data = make([]byte, f.pageSize)
	}
	return f.data
}

// Zero clears the frame's contents.
//
//numalint:hotpath
func (f *Frame) Zero() {
	if f.data == nil {
		// Never touched; already logically zero.
		return
	}
	clear(f.data)
}

// CopyFrom copies the full page contents of src into f.
//
//numalint:hotpath
func (f *Frame) CopyFrom(src *Frame) {
	if src.pageSize != f.pageSize {
		panic(fmt.Sprintf("mem: copy between mismatched page sizes %d and %d", src.pageSize, f.pageSize))
	}
	if src.data == nil {
		f.Zero()
		return
	}
	copy(f.Data(), src.data)
}

// Equal reports whether two frames hold identical contents.
func (f *Frame) Equal(other *Frame) bool {
	a, b := f.data, other.data
	switch {
	case a == nil && b == nil:
		return true
	case a == nil:
		return allZero(b)
	case b == nil:
		return allZero(a)
	default:
		return string(a) == string(b)
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func (f *Frame) checkOff(off, size int) {
	if off < 0 || off+size > f.pageSize {
		panic(fmt.Sprintf("mem: access [%d,%d) outside %d-byte frame %s", off, off+size, f.pageSize, f))
	}
}

// Load32 reads the 32-bit word at byte offset off.
//
//numalint:hotpath
func (f *Frame) Load32(off int) uint32 {
	f.checkOff(off, 4)
	if f.data == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(f.data[off:])
}

// Store32 writes the 32-bit word at byte offset off.
//
//numalint:hotpath
func (f *Frame) Store32(off int, v uint32) {
	f.checkOff(off, 4)
	binary.LittleEndian.PutUint32(f.Data()[off:], v)
}

// Load64 reads the 64-bit word at byte offset off.
//
//numalint:hotpath
func (f *Frame) Load64(off int) uint64 {
	f.checkOff(off, 8)
	if f.data == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(f.data[off:])
}

// Store64 writes the 64-bit word at byte offset off.
//
//numalint:hotpath
func (f *Frame) Store64(off int, v uint64) {
	f.checkOff(off, 8)
	binary.LittleEndian.PutUint64(f.Data()[off:], v)
}

// Load8 reads the byte at offset off.
//
//numalint:hotpath
func (f *Frame) Load8(off int) byte {
	f.checkOff(off, 1)
	if f.data == nil {
		return 0
	}
	return f.data[off]
}

// Store8 writes the byte at offset off.
//
//numalint:hotpath
func (f *Frame) Store8(off int, v byte) {
	f.checkOff(off, 1)
	f.Data()[off] = v
}

// ErrNoFrames is returned when a pool is exhausted.
type ErrNoFrames struct {
	Pool string
}

func (e *ErrNoFrames) Error() string {
	return fmt.Sprintf("mem: no free frames in %s", e.Pool)
}

// Pool is a fixed-size pool of page frames at one level of the hierarchy.
type Pool struct {
	name   string
	kind   Kind
	proc   int
	frames []*Frame
	free   []*Frame // LIFO free list

	// Pressure accounting: the most frames ever simultaneously in use,
	// and how many allocation attempts found the pool empty.
	highWater int
	exhausted uint64
}

// NewPool creates a pool of n frames of the given size. For Local pools,
// proc names the owning processor; Global pools use proc -1.
func NewPool(kind Kind, proc, n, pageSize int) *Pool {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d is not a power of two", pageSize))
	}
	if kind == Global {
		proc = -1
	}
	name := "global memory"
	if kind == Local {
		name = fmt.Sprintf("local memory of cpu%d", proc)
	}
	p := &Pool{name: name, kind: kind, proc: proc}
	p.frames = make([]*Frame, n)
	p.free = make([]*Frame, 0, n)
	// One block for all frame records: machine construction used to be one
	// allocation per frame, which dominated the harness's allocation
	// profile (a table run builds many machines).
	backing := make([]Frame, n)
	for i := 0; i < n; i++ {
		f := &backing[i]
		*f = Frame{kind: kind, proc: proc, index: i, pageSize: pageSize}
		p.frames[i] = f
	}
	// Hand out low indices first: push in reverse so the LIFO free list
	// pops frame 0 first.
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, p.frames[i])
	}
	return p
}

// Name returns a human-readable pool name.
func (p *Pool) Name() string { return p.name }

// Size reports the total number of frames.
//
//numalint:hotpath
func (p *Pool) Size() int { return len(p.frames) }

// Free reports the number of unallocated frames.
//
//numalint:hotpath
func (p *Pool) Free() int { return len(p.free) }

// InUse reports the number of allocated frames.
func (p *Pool) InUse() int { return len(p.frames) - len(p.free) }

// HighWater reports the most frames ever simultaneously allocated — the
// pool's true working footprint, independent of whether pressure relief
// (fallback, reclaim) kept later allocations below it.
func (p *Pool) HighWater() int { return p.highWater }

// Exhausted reports how many allocation attempts found the pool empty.
func (p *Pool) Exhausted() uint64 { return p.exhausted }

// Alloc takes a frame from the pool. The frame's previous contents are
// undefined; callers that need zeroed memory must call Zero (the pmap layer
// does this lazily, per §2.3.1).
//
//numalint:hotpath
func (p *Pool) Alloc() (*Frame, error) {
	if len(p.free) == 0 {
		//numalint:coldpath exhaustion: the caller falls back to reclaim or global memory
		p.exhausted++
		return nil, &ErrNoFrames{Pool: p.name}
	}
	f := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	f.inUse = true
	if used := p.InUse(); used > p.highWater {
		p.highWater = used
	}
	return f, nil
}

// Release returns a frame to the pool.
//
//numalint:hotpath
func (p *Pool) Release(f *Frame) {
	if f.kind != p.kind || f.proc != p.proc {
		panic(fmt.Sprintf("mem: frame %s released to wrong pool %s", f, p.name))
	}
	if !f.inUse {
		panic(fmt.Sprintf("mem: double free of frame %s", f))
	}
	f.inUse = false
	p.free = append(p.free, f) //numalint:coldpath bounded: free-list capacity is preallocated to the pool size
}

// Frame returns the i'th frame of the pool (allocated or not).
func (p *Pool) Frame(i int) *Frame { return p.frames[i] }

// Memory aggregates the global pool and the per-node local pools of a
// machine. On the two-level ACE every processor is its own node; multi-node
// topologies home several processors on one pool.
type Memory struct {
	pageSize int
	global   *Pool
	local    []*Pool
}

// NewMemory builds the physical memory of a machine with nnodes memory
// nodes, globalFrames frames of global memory and localFrames frames of
// local memory per node.
func NewMemory(nnodes, globalFrames, localFrames, pageSize int) *Memory {
	m := &Memory{pageSize: pageSize}
	m.global = NewPool(Global, -1, globalFrames, pageSize)
	m.local = make([]*Pool, nnodes)
	for i := range m.local {
		m.local[i] = NewPool(Local, i, localFrames, pageSize)
	}
	return m
}

// PageSize reports the machine page size in bytes.
func (m *Memory) PageSize() int { return m.pageSize }

// Global returns the global memory pool.
//
//numalint:hotpath
func (m *Memory) Global() *Pool { return m.global }

// Local returns node p's local memory pool.
//
//numalint:hotpath
func (m *Memory) Local(p int) *Pool { return m.local[p] }

// NProc reports the number of local pools (nodes; historical name from the
// one-node-per-processor ACE).
func (m *Memory) NProc() int { return len(m.local) }
