package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Global.String() != "global" || Local.String() != "local" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}

func TestPoolAllocRelease(t *testing.T) {
	p := NewPool(Global, 0, 4, 4096)
	if p.Size() != 4 || p.Free() != 4 || p.InUse() != 0 {
		t.Fatalf("fresh pool size=%d free=%d inuse=%d", p.Size(), p.Free(), p.InUse())
	}
	var frames []*Frame
	for i := 0; i < 4; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if !f.InUse() {
			t.Error("allocated frame not marked in use")
		}
		frames = append(frames, f)
	}
	if _, err := p.Alloc(); err == nil {
		t.Fatal("alloc from empty pool should fail")
	} else if !strings.Contains(err.Error(), "global memory") {
		t.Errorf("error %q should name the pool", err)
	}
	p.Release(frames[2])
	if p.Free() != 1 {
		t.Errorf("free = %d, want 1", p.Free())
	}
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if f != frames[2] {
		t.Error("expected LIFO reuse of released frame")
	}
}

func TestPoolAllocOrder(t *testing.T) {
	p := NewPool(Local, 3, 3, 1024)
	for want := 0; want < 3; want++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if f.Index() != want {
			t.Errorf("alloc %d returned frame %d", want, f.Index())
		}
		if f.Proc() != 3 || f.Kind() != Local {
			t.Errorf("frame identity wrong: %s", f)
		}
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := NewPool(Global, -1, 1, 512)
	f, _ := p.Alloc()
	p.Release(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double free should panic")
		}
	}()
	p.Release(f)
}

func TestWrongPoolReleasePanics(t *testing.T) {
	p0 := NewPool(Local, 0, 1, 512)
	p1 := NewPool(Local, 1, 1, 512)
	f, _ := p0.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("cross-pool release should panic")
		}
	}()
	p1.Release(f)
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non power-of-two page size should panic")
		}
	}()
	NewPool(Global, -1, 1, 1000)
}

func TestFrameWordAccess(t *testing.T) {
	p := NewPool(Global, -1, 1, 4096)
	f, _ := p.Alloc()
	if f.Load32(0) != 0 || f.Load64(8) != 0 || f.Load8(100) != 0 {
		t.Error("untouched frame must read zero")
	}
	f.Store32(0, 0xdeadbeef)
	f.Store64(8, 0x0123456789abcdef)
	f.Store8(100, 0x7f)
	if f.Load32(0) != 0xdeadbeef {
		t.Errorf("Load32 = %#x", f.Load32(0))
	}
	if f.Load64(8) != 0x0123456789abcdef {
		t.Errorf("Load64 = %#x", f.Load64(8))
	}
	if f.Load8(100) != 0x7f {
		t.Errorf("Load8 = %#x", f.Load8(100))
	}
}

func TestFrameBoundsPanic(t *testing.T) {
	p := NewPool(Global, -1, 1, 512)
	f, _ := p.Alloc()
	for _, fn := range []func(){
		func() { f.Load32(510) },
		func() { f.Store32(-1, 0) },
		func() { f.Load64(508) },
		func() { f.Load8(512) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-bounds access should panic")
				}
			}()
			fn()
		}()
	}
}

func TestZeroAndCopy(t *testing.T) {
	p := NewPool(Global, -1, 2, 256)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	a.Store32(4, 42)
	b.CopyFrom(a)
	if b.Load32(4) != 42 {
		t.Error("CopyFrom did not copy data")
	}
	a.Zero()
	if a.Load32(4) != 0 {
		t.Error("Zero did not clear")
	}
	if b.Load32(4) != 42 {
		t.Error("Zero of source affected copy")
	}
	// Copying from a never-touched frame zeroes the destination.
	c := NewPool(Global, -1, 1, 256)
	fresh, _ := c.Alloc()
	b.CopyFrom(fresh)
	if b.Load32(4) != 0 {
		t.Error("CopyFrom(untouched) should zero destination")
	}
}

func TestZeroUntouchedIsNoop(t *testing.T) {
	p := NewPool(Global, -1, 1, 256)
	f, _ := p.Alloc()
	f.Zero() // must not allocate
	if f.data != nil {
		t.Error("Zero on untouched frame should not allocate backing store")
	}
}

func TestEqual(t *testing.T) {
	p := NewPool(Global, -1, 3, 128)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	c, _ := p.Alloc()
	if !a.Equal(b) {
		t.Error("two untouched frames must be equal")
	}
	b.Store32(0, 0) // touched but still zero
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("untouched vs explicit-zero frames must be equal")
	}
	c.Store32(0, 9)
	if a.Equal(c) || c.Equal(a) {
		t.Error("different contents must not be equal")
	}
}

func TestCopyMismatchedSizesPanics(t *testing.T) {
	a, _ := NewPool(Global, -1, 1, 256).Alloc()
	b, _ := NewPool(Global, -1, 1, 512).Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched copy should panic")
		}
	}()
	a.CopyFrom(b)
}

func TestMemoryAggregate(t *testing.T) {
	m := NewMemory(4, 16, 8, 4096)
	if m.NProc() != 4 {
		t.Errorf("NProc = %d", m.NProc())
	}
	if m.PageSize() != 4096 {
		t.Errorf("PageSize = %d", m.PageSize())
	}
	if m.Global().Size() != 16 {
		t.Errorf("global size = %d", m.Global().Size())
	}
	for i := 0; i < 4; i++ {
		if m.Local(i).Size() != 8 {
			t.Errorf("local %d size = %d", i, m.Local(i).Size())
		}
		f, err := m.Local(i).Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if f.Proc() != i {
			t.Errorf("local frame proc = %d, want %d", f.Proc(), i)
		}
	}
}

// Property: a round trip of any word through a frame preserves the value,
// and neighbouring words are untouched.
func TestStoreLoadRoundTrip(t *testing.T) {
	p := NewPool(Global, -1, 1, 4096)
	f, _ := p.Alloc()
	prop := func(off uint16, v uint32, w uint64) bool {
		o32 := int(off) % (4096 - 4)
		o32 -= o32 % 4
		o64 := (int(off) + 512) % (4096 - 8) &^ 7
		if o64 == o32 || (o64 < o32+4 && o64+8 > o32) {
			return true // skip overlapping picks
		}
		f.Store32(o32, v)
		f.Store64(o64, w)
		return f.Load32(o32) == v && f.Load64(o64) == w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFrameString(t *testing.T) {
	g, _ := NewPool(Global, -1, 1, 256).Alloc()
	l, _ := NewPool(Local, 2, 1, 256).Alloc()
	if g.String() != "global[0]" {
		t.Errorf("global string = %q", g.String())
	}
	if l.String() != "local2[0]" {
		t.Errorf("local string = %q", l.String())
	}
}
