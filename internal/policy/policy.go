// Package policy provides NUMA placement policies: implementations of the
// numa.Policy interface that the pmap layer's NUMA manager consults on
// every request.
//
// The paper's production policy is Threshold (§2.3.2): place every page in
// local memory until the consistency protocol has moved it between
// processors, in response to writes, more than a fixed number of times,
// then pin it in global memory forever. AllGlobal and AllLocal are the
// instrumentation policies used to measure the T_global and T_local
// baselines (§3.1); Pragma and Reconsider realize two extensions the paper
// discusses (§4.3, §5).
package policy

import (
	"fmt"
	"math"
	"strings"

	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/sim"
)

// DefaultThreshold is the paper's default move limit ("a system-wide
// boot-time parameter which defaults to four").
const DefaultThreshold = 4

// Threshold is the paper's placement policy: LOCAL for any page that has
// not used up its threshold number of page moves, GLOBAL for any page that
// has.
type Threshold struct {
	Limit int
}

// NewThreshold returns the paper's policy with the given move limit.
func NewThreshold(limit int) *Threshold {
	if limit < 0 {
		panic(fmt.Sprintf("policy: negative threshold %d", limit))
	}
	return &Threshold{Limit: limit}
}

// NewDefault returns the paper's policy with its default limit of four.
func NewDefault() *Threshold { return NewThreshold(DefaultThreshold) }

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (t *Threshold) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	if pg.Moves() >= t.Limit {
		return numa.Global
	}
	return numa.Local
}

// Name implements numa.Policy.
//
//numalint:coldpath formats a report label; the manager only calls Name when tracing is on
func (t *Threshold) Name() string {
	if t.Limit == math.MaxInt {
		return "never-pin"
	}
	return fmt.Sprintf("threshold(%d)", t.Limit)
}

// NeverPin returns a policy that caches pages locally no matter how often
// they move — the degenerate Threshold with an unreachable limit. Writably
// shared pages ping-pong between local memories forever.
func NeverPin() *Threshold { return &Threshold{Limit: math.MaxInt} }

// AllGlobal is the baseline policy used for the paper's T_global runs:
// every writable page lives in global memory. Read-only pages are still
// replicated, since "most reasonable NUMA systems will replicate read-only
// data and code" (§3.1).
type AllGlobal struct{}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (AllGlobal) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	if maxProt.CanWrite() {
		return numa.Global
	}
	return numa.Local
}

// Name implements numa.Policy.
//
//numalint:hotpath
func (AllGlobal) Name() string { return "all-global" }

// AllLocal is the baseline policy used for the paper's T_local runs on a
// single-processor machine: every page is placed in local memory.
type AllLocal struct{}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (AllLocal) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	return numa.Local
}

// Name implements numa.Policy.
//
//numalint:hotpath
func (AllLocal) Name() string { return "all-local" }

// Pragma honours application placement pragmas (§4.3, §4.4): pages hinted
// cacheable are always placed locally, pages hinted noncacheable always
// globally, pages hinted remote at their home processor, and unhinted
// pages fall through to an underlying policy.
type Pragma struct {
	Fallback numa.Policy
}

// NewPragma returns a pragma-honouring policy over fallback (the paper's
// Threshold default if fallback is nil).
func NewPragma(fallback numa.Policy) *Pragma {
	if fallback == nil {
		fallback = NewDefault()
	}
	return &Pragma{Fallback: fallback}
}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (p *Pragma) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	switch pg.Hint() {
	case numa.HintCacheable:
		return numa.Local
	case numa.HintNoncacheable:
		return numa.Global
	case numa.HintRemote:
		return numa.PlaceRemote
	default:
		return p.Fallback.CachePolicy(pg, proc, write, maxProt)
	}
}

// Name implements numa.Policy.
//
//numalint:coldpath formats a report label; the manager only calls Name when tracing is on
func (p *Pragma) Name() string { return "pragma+" + p.Fallback.Name() }

// Reconsider is the §5 extension: like Threshold, but every Period requests
// that find a page pinned it forgives the page's accumulated moves, giving
// the page another chance to live in local memory. This models
// "periodically reconsidering the decision to pin a page in global memory".
type Reconsider struct {
	Limit  int
	Period int
	// Interval is how often the NUMA manager's daemon drops pinned pages'
	// mappings so this policy sees them again (without it, a pinned page
	// never faults and is never reconsidered).
	Interval sim.Time

	globalHits map[*numa.Page]int
	forgiven   map[*numa.Page]int
}

// NewReconsider returns a reconsidering policy.
func NewReconsider(limit, period int) *Reconsider {
	if limit < 0 || period < 1 {
		panic(fmt.Sprintf("policy: bad reconsider parameters limit=%d period=%d", limit, period))
	}
	return &Reconsider{
		Limit:      limit,
		Period:     period,
		Interval:   50 * sim.Millisecond,
		globalHits: make(map[*numa.Page]int),
		forgiven:   make(map[*numa.Page]int),
	}
}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (r *Reconsider) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	effective := pg.Moves() - r.forgiven[pg]
	if effective < r.Limit {
		return numa.Local
	}
	r.globalHits[pg]++
	if r.globalHits[pg] >= r.Period {
		r.globalHits[pg] = 0
		r.forgiven[pg] = pg.Moves()
		return numa.Local
	}
	return numa.Global
}

// Name implements numa.Policy.
//
//numalint:coldpath formats a report label; the manager only calls Name when tracing is on
func (r *Reconsider) Name() string {
	return fmt.Sprintf("reconsider(%d,%d)", r.Limit, r.Period)
}

// ReconsiderInterval implements numa.ReconsideringPolicy.
//
//numalint:hotpath
func (r *Reconsider) ReconsiderInterval() sim.Time { return r.Interval }

// Forced answers a fixed location for every request. It exists for protocol
// tests and for deriving the paper's Tables 1 and 2, where each row is "the
// policy said LOCAL" or "the policy said GLOBAL".
type Forced struct {
	Answer numa.Location
}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (f *Forced) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	return f.Answer
}

// Name implements numa.Policy.
//
//numalint:coldpath formats a report label; the manager only calls Name when tracing is on
func (f *Forced) Name() string { return "forced-" + f.Answer.String() }

// Scripted replays a pre-generated sequence of answers, one per request,
// repeating the last answer when the script runs out (an empty script
// answers LOCAL). It lets protocol tests — the seeded fuzz suite in
// particular — drive the NUMA manager through arbitrary decision
// sequences deterministically, independent of any real policy's logic.
type Scripted struct {
	Answers []numa.Location
	pos     int
}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (s *Scripted) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	if len(s.Answers) == 0 {
		return numa.Local
	}
	if s.pos >= len(s.Answers) {
		return s.Answers[len(s.Answers)-1]
	}
	ans := s.Answers[s.pos]
	s.pos++
	return ans
}

// Consumed reports how many scripted answers have been handed out.
func (s *Scripted) Consumed() int { return s.pos }

// Name implements numa.Policy.
//
//numalint:hotpath
func (s *Scripted) Name() string { return "scripted" }

// ByName builds a fresh policy instance from its pre-registry
// command-line name (case-insensitive), with threshold parameterizing
// the threshold and reconsider policies as the old -threshold flag did.
// The old spellings keep their exact behaviour; any other name is
// routed through the registry, so new "name:key=val" spellings work
// here too.
//
// Deprecated: use Parse, which lets every policy declare its own
// parameters ("threshold:limit=2" instead of ByName("threshold", 2)).
func ByName(name string, threshold int) (numa.Policy, error) {
	switch strings.ToLower(name) {
	case "threshold":
		return NewThreshold(threshold), nil
	case "allglobal":
		return AllGlobal{}, nil
	case "alllocal":
		return AllLocal{}, nil
	case "neverpin":
		return NeverPin(), nil
	case "pragma":
		return NewPragma(nil), nil
	case "reconsider":
		return NewReconsider(threshold, 64), nil
	case "freezedefrost":
		return NewFreezeDefrost(0, 0), nil
	}
	return Parse(name)
}

// Compile-time interface checks.
var (
	_ numa.Policy = (*Threshold)(nil)
	_ numa.Policy = AllGlobal{}
	_ numa.Policy = AllLocal{}
	_ numa.Policy = (*Pragma)(nil)
	_ numa.Policy = (*Reconsider)(nil)
	_ numa.Policy = (*Forced)(nil)
	_ numa.Policy = (*Scripted)(nil)
)
