package policy_test

import (
	"strings"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
)

// TestFreezeDefrostLifecycle drives a page through the freeze/defrost
// cycle: ping-pong writes freeze it in global memory; after the page sits
// quiet past the defrost time, it becomes cacheable again.
func TestFreezeDefrostLifecycle(t *testing.T) {
	cfg := ace.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 16
	cfg.LocalFrames = 16
	m := ace.MustMachine(cfg)
	pol := policy.NewFreezeDefrost(20*sim.Millisecond, 100*sim.Millisecond)
	n := numa.NewManager(m, pol)
	if !strings.Contains(pol.Name(), "freeze-defrost") {
		t.Errorf("name = %q", pol.Name())
	}
	m.Engine().Spawn("t", 0, func(th *sim.Thread) {
		pg, _ := n.NewPage()
		// Rapid ping-pong: each write lands within the freeze window of
		// the previous move.
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		n.Access(th, pg, 1, true, mmu.ProtReadWrite) // move 1
		n.Access(th, pg, 0, true, mmu.ProtReadWrite) // move 2: recent -> could freeze next
		n.Access(th, pg, 1, true, mmu.ProtReadWrite)
		if pg.State() != numa.GlobalWritable {
			t.Fatalf("hot page state = %v, want frozen in global memory", pg.State())
		}
		// While frozen and still being touched... stay frozen only while
		// within the defrost time of the last move.
		th.Advance(30 * sim.Millisecond)
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		if pg.State() != numa.GlobalWritable {
			t.Fatalf("page defrosted too early: %v", pg.State())
		}
		// Quiet period beyond the defrost time: cacheable again.
		th.Advance(150 * sim.Millisecond)
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		if pg.State() != numa.LocalWritable {
			t.Fatalf("page did not defrost: %v", pg.State())
		}
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeDefrostDefaults(t *testing.T) {
	p := policy.NewFreezeDefrost(0, 0)
	if p.FreezeWindow != 20*sim.Millisecond || p.DefrostAfter != 200*sim.Millisecond {
		t.Errorf("defaults = %v %v", p.FreezeWindow, p.DefrostAfter)
	}
}

// TestFreezeDefrostAdaptsToPhases shows the behavioural difference from
// Threshold: after a sharing phase ends, FreezeDefrost lets the page come
// home, while the paper's policy keeps it pinned forever.
func TestFreezeDefrostAdaptsToPhases(t *testing.T) {
	measure := func(pol numa.Policy) numa.State {
		cfg := ace.DefaultConfig()
		cfg.NProc = 2
		cfg.GlobalFrames = 16
		cfg.LocalFrames = 16
		m := ace.MustMachine(cfg)
		n := numa.NewManager(m, pol)
		var state numa.State
		m.Engine().Spawn("t", 0, func(th *sim.Thread) {
			pg, _ := n.NewPage()
			// Phase 1: heavy sharing.
			for i := 0; i < 8; i++ {
				n.Access(th, pg, i%2, true, mmu.ProtReadWrite)
				th.Advance(100 * sim.Microsecond)
			}
			// Phase 2: long quiet, then single-processor use.
			th.Advance(300 * sim.Millisecond)
			for i := 0; i < 5; i++ {
				n.Access(th, pg, 0, true, mmu.ProtReadWrite)
				th.Advance(100 * sim.Microsecond)
			}
			state = pg.State()
		})
		if err := m.Engine().Run(); err != nil {
			t.Fatal(err)
		}
		return state
	}
	if got := measure(policy.NewDefault()); got != numa.GlobalWritable {
		t.Errorf("threshold policy after phase change: %v, want still pinned", got)
	}
	if got := measure(policy.NewFreezeDefrost(20*sim.Millisecond, 200*sim.Millisecond)); got != numa.LocalWritable {
		t.Errorf("freeze-defrost after phase change: %v, want back in local memory", got)
	}
}
