package policy_test

import (
	"strings"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
)

// mkPage creates a page with a given move count by ping-ponging writes
// between two processors under a never-pinning policy.
func mkPage(t *testing.T, moves int) (*numa.Page, *numa.Manager) {
	t.Helper()
	cfg := ace.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 8
	cfg.LocalFrames = 8
	m := ace.MustMachine(cfg)
	n := numa.NewManager(m, policy.NeverPin())
	var pg *numa.Page
	m.Engine().Spawn("setup", 0, func(th *sim.Thread) {
		var err error
		pg, err = n.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		n.Access(th, pg, 0, true, mmu.ProtReadWrite)
		for pg.Moves() < moves {
			// Alternating writers transfer ownership once per write.
			n.Access(th, pg, (pg.Moves()+1)%2, true, mmu.ProtReadWrite)
		}
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	return pg, n
}

func TestThresholdPolicy(t *testing.T) {
	pg, _ := mkPage(t, 3)
	pol := policy.NewThreshold(4)
	if got := pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite); got != numa.Local {
		t.Errorf("below threshold: %v, want LOCAL", got)
	}
	pg4, _ := mkPage(t, 4)
	if got := pol.CachePolicy(pg4, 0, true, mmu.ProtReadWrite); got != numa.Global {
		t.Errorf("at threshold: %v, want GLOBAL", got)
	}
	if pol.Name() != "threshold(4)" {
		t.Errorf("name = %q", pol.Name())
	}
}

func TestDefaultThresholdIsFour(t *testing.T) {
	if policy.NewDefault().Limit != 4 || policy.DefaultThreshold != 4 {
		t.Error("paper's default threshold is four")
	}
}

func TestZeroThresholdPinsImmediately(t *testing.T) {
	// With limit 0 every page with any history goes global; even a fresh
	// page, since 0 >= 0.
	pg, _ := mkPage(t, 0)
	pol := policy.NewThreshold(0)
	if pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite) != numa.Global {
		t.Error("threshold 0 should answer GLOBAL")
	}
}

func TestNegativeThresholdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	policy.NewThreshold(-1)
}

func TestNeverPin(t *testing.T) {
	pg, _ := mkPage(t, 50)
	pol := policy.NeverPin()
	if pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite) != numa.Local {
		t.Error("never-pin answered GLOBAL")
	}
}

func TestAllGlobal(t *testing.T) {
	pg, _ := mkPage(t, 0)
	pol := policy.AllGlobal{}
	if pol.CachePolicy(pg, 0, false, mmu.ProtReadWrite) != numa.Global {
		t.Error("writable page should be GLOBAL")
	}
	if pol.CachePolicy(pg, 0, false, mmu.ProtRead) != numa.Local {
		t.Error("read-only page should still replicate locally")
	}
	if pol.Name() != "all-global" {
		t.Errorf("name = %q", pol.Name())
	}
}

func TestAllLocal(t *testing.T) {
	pg, _ := mkPage(t, 7)
	pol := policy.AllLocal{}
	if pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite) != numa.Local {
		t.Error("all-local answered GLOBAL")
	}
	if pol.Name() != "all-local" {
		t.Errorf("name = %q", pol.Name())
	}
}

func TestPragmaOverrides(t *testing.T) {
	pg, _ := mkPage(t, 10) // way past threshold
	pol := policy.NewPragma(nil)
	if !strings.HasPrefix(pol.Name(), "pragma+threshold") {
		t.Errorf("name = %q", pol.Name())
	}
	// Unhinted: falls through to threshold, which says GLOBAL at 10 moves.
	if pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite) != numa.Global {
		t.Error("unhinted page should follow fallback")
	}
	pg.SetHint(numa.HintCacheable)
	if pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite) != numa.Local {
		t.Error("cacheable hint ignored")
	}
	pg.SetHint(numa.HintNoncacheable)
	if pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite) != numa.Global {
		t.Error("noncacheable hint ignored")
	}
	fresh, _ := mkPage(t, 0)
	fresh.SetHint(numa.HintNoncacheable)
	if pol.CachePolicy(fresh, 0, true, mmu.ProtReadWrite) != numa.Global {
		t.Error("noncacheable hint on fresh page ignored")
	}
}

func TestReconsider(t *testing.T) {
	pg, _ := mkPage(t, 2)
	pol := policy.NewReconsider(2, 3)
	if !strings.Contains(pol.Name(), "reconsider") {
		t.Errorf("name = %q", pol.Name())
	}
	// Page at the limit: first two consultations say GLOBAL, the third
	// (period reached) forgives and says LOCAL.
	for i := 0; i < 2; i++ {
		if pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite) != numa.Global {
			t.Fatalf("consultation %d: want GLOBAL", i)
		}
	}
	if pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite) != numa.Local {
		t.Fatal("period reached: want LOCAL (pin reconsidered)")
	}
	// After forgiveness the page gets a fresh allowance.
	if pol.CachePolicy(pg, 0, true, mmu.ProtReadWrite) != numa.Local {
		t.Fatal("after forgiveness: want LOCAL")
	}
}

func TestReconsiderBadParamsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { policy.NewReconsider(-1, 5) },
		func() { policy.NewReconsider(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestForced(t *testing.T) {
	pg, _ := mkPage(t, 0)
	f := &policy.Forced{Answer: numa.Global}
	if f.CachePolicy(pg, 0, false, mmu.ProtRead) != numa.Global {
		t.Error("forced global")
	}
	if f.Name() != "forced-GLOBAL" {
		t.Errorf("name = %q", f.Name())
	}
	f.Answer = numa.Local
	if f.CachePolicy(pg, 0, false, mmu.ProtRead) != numa.Local {
		t.Error("forced local")
	}
}
