// Self-describing policy registry: every policy registers a Spec naming
// its parameters and a factory, and Parse builds fresh instances from
// the command-line syntax
//
//	name
//	name:key=val,key=val
//
// e.g. "threshold:limit=2", "coplace:inner=decaythreshold,min=16".
// Policies hold per-run state, so each run parses its own instance.
//
// The registry replaces the pre-redesign ByName(name, threshold) entry
// point, which survives as a deprecated wrapper: old spellings keep
// working, routed through the same factories.
package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"numasim/internal/numa"
	"numasim/internal/sim"
)

// Param documents one policy parameter for usage listings.
type Param struct {
	Key     string
	Default string
	Doc     string
}

// Spec is one registered policy: its canonical name, a one-line
// description, the parameters it accepts, and a factory building a
// fresh instance from parsed arguments.
type Spec struct {
	Name   string
	Doc    string
	Params []Param
	New    func(a *Args) (numa.Policy, error)
}

// Usage renders the spec's command-line shape, e.g.
// "threshold:limit=4".
func (sp *Spec) Usage() string {
	if len(sp.Params) == 0 {
		return sp.Name
	}
	parts := make([]string, len(sp.Params))
	for i, p := range sp.Params {
		parts[i] = p.Key + "=" + p.Default
	}
	return sp.Name + ":" + strings.Join(parts, ",")
}

var registry = map[string]*Spec{}

// Register adds a policy spec to the registry. It panics on a duplicate
// name; call it from init.
func Register(sp Spec) {
	key := strings.ToLower(sp.Name)
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("policy: duplicate registration %q", sp.Name))
	}
	if sp.New == nil {
		panic(fmt.Sprintf("policy: registration %q without a factory", sp.Name))
	}
	p := sp
	registry[key] = &p
}

// Names returns every registered policy name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	//numalint:ordered — sorted before returning
	for _, sp := range registry {
		names = append(names, sp.Name)
	}
	sort.Strings(names)
	return names
}

// Specs returns every registered policy spec, sorted by name.
func Specs() []*Spec {
	specs := make([]*Spec, 0, len(registry))
	//numalint:ordered — sorted before returning
	for _, sp := range registry {
		specs = append(specs, sp)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// Usage renders the whole registry for CLI help text: one line per
// policy, its parameter shape and description.
func Usage() string {
	var b strings.Builder
	for _, sp := range Specs() {
		fmt.Fprintf(&b, "  %-40s %s\n", sp.Usage(), sp.Doc)
	}
	return b.String()
}

// Args carries a parsed parameter list into a policy factory. Typed
// accessors record which keys were consumed and collect conversion
// errors; Parse reports the first error and any keys no factory asked
// about. A factory that builds a sub-policy (pragma, coplace) passes
// its Args through, so the inner policy's parameters live in the same
// list.
type Args struct {
	policy string
	kv     map[string]string
	used   map[string]bool
	err    error
}

func (a *Args) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf(format, args...)
	}
}

// Str returns the string parameter key, or def when absent.
func (a *Args) Str(key, def string) string {
	a.used[key] = true
	if s, ok := a.kv[key]; ok {
		return s
	}
	return def
}

// Int returns the integer parameter key, or def when absent.
func (a *Args) Int(key string, def int) int {
	a.used[key] = true
	s, ok := a.kv[key]
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		a.fail("policy %s: %s=%q: want an integer", a.policy, key, s)
		return def
	}
	return v
}

// Uint64 returns the unsigned parameter key (seeds), or def when absent.
func (a *Args) Uint64(key string, def uint64) uint64 {
	a.used[key] = true
	s, ok := a.kv[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		a.fail("policy %s: %s=%q: want an unsigned integer", a.policy, key, s)
		return def
	}
	return v
}

// Millis returns the duration parameter key, given as integer virtual
// milliseconds, or def when absent.
func (a *Args) Millis(key string, def sim.Time) sim.Time {
	a.used[key] = true
	s, ok := a.kv[key]
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		a.fail("policy %s: %s=%q: want milliseconds as a non-negative integer", a.policy, key, s)
		return def
	}
	return sim.Time(v) * sim.Millisecond
}

// Policy builds the sub-policy named by parameter key (def when
// absent), sharing this argument list, so the inner policy's
// parameters ride along: "coplace:inner=threshold,limit=2".
func (a *Args) Policy(key, def string) numa.Policy {
	name := strings.ToLower(a.Str(key, def))
	sp, ok := registry[name]
	if !ok {
		a.fail("policy %s: %s=%q: unknown policy (known: %s)",
			a.policy, key, name, strings.Join(Names(), ", "))
		return NewDefault()
	}
	pol, err := sp.New(a)
	if err != nil {
		a.fail("policy %s: %v", a.policy, err)
		return NewDefault()
	}
	return pol
}

// Parse builds a fresh policy instance from its command-line spelling:
// a registered name, optionally followed by ":key=val,key=val"
// parameters (see Usage for the vocabulary). Unknown names, malformed
// parameters and keys no policy consumes are errors.
func Parse(spec string) (numa.Policy, error) {
	name := strings.TrimSpace(spec)
	rest := ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name, rest = strings.TrimSpace(name[:i]), name[i+1:]
	}
	sp, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("unknown policy %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	a := &Args{policy: sp.Name, kv: map[string]string{}, used: map[string]bool{}}
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			k, v, found := strings.Cut(part, "=")
			if !found || strings.TrimSpace(k) == "" {
				return nil, fmt.Errorf("policy %s: malformed parameter %q (want key=value)", sp.Name, part)
			}
			a.kv[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
		}
	}
	pol, err := sp.New(a)
	if err != nil {
		return nil, err
	}
	if a.err != nil {
		return nil, a.err
	}
	var unknown []string
	//numalint:ordered — sorted before reporting
	for k := range a.kv {
		if !a.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("policy %s: unknown parameter(s) %s (accepts: %s)",
			sp.Name, strings.Join(unknown, ", "), sp.Usage())
	}
	return pol, nil
}

func init() {
	Register(Spec{
		Name:   "threshold",
		Doc:    "the paper's fixed policy: local until the page moves limit times, then pin global",
		Params: []Param{{Key: "limit", Default: "4", Doc: "move budget before pinning"}},
		New: func(a *Args) (numa.Policy, error) {
			limit := a.Int("limit", DefaultThreshold)
			if limit < 0 {
				return nil, fmt.Errorf("policy threshold: negative limit %d", limit)
			}
			return NewThreshold(limit), nil
		},
	})
	Register(Spec{
		Name: "neverpin",
		Doc:  "threshold with an unreachable limit: pages ping-pong forever",
		New:  func(a *Args) (numa.Policy, error) { return NeverPin(), nil },
	})
	Register(Spec{
		Name: "allglobal",
		Doc:  "the T_global baseline: every writable page lives in global memory",
		New:  func(a *Args) (numa.Policy, error) { return AllGlobal{}, nil },
	})
	Register(Spec{
		Name: "alllocal",
		Doc:  "the T_local baseline: every page is placed locally",
		New:  func(a *Args) (numa.Policy, error) { return AllLocal{}, nil },
	})
	Register(Spec{
		Name:   "pragma",
		Doc:    "honour application placement pragmas, falling through to an inner policy",
		Params: []Param{{Key: "fallback", Default: "threshold", Doc: "policy for unhinted pages"}},
		New: func(a *Args) (numa.Policy, error) {
			return NewPragma(a.Policy("fallback", "threshold")), nil
		},
	})
	Register(Spec{
		Name: "reconsider",
		Doc:  "threshold that periodically forgives a pinned page's moves (§5)",
		Params: []Param{
			{Key: "limit", Default: "4", Doc: "move budget before pinning"},
			{Key: "period", Default: "64", Doc: "pinned requests between reprieves"},
			{Key: "interval", Default: "50", Doc: "defrost sweep period, virtual ms"},
		},
		New: func(a *Args) (numa.Policy, error) {
			limit, period := a.Int("limit", DefaultThreshold), a.Int("period", 64)
			if limit < 0 || period < 1 {
				return nil, fmt.Errorf("policy reconsider: bad parameters limit=%d period=%d", limit, period)
			}
			r := NewReconsider(limit, period)
			r.Interval = a.Millis("interval", r.Interval)
			return r, nil
		},
	})
	Register(Spec{
		Name: "freezedefrost",
		Doc:  "PLATINUM-style: pin hot movers for a freeze window, defrost after quiet time",
		Params: []Param{
			{Key: "freeze", Default: "20", Doc: "freeze window, virtual ms"},
			{Key: "defrost", Default: "200", Doc: "quiet time before defrost, virtual ms"},
		},
		New: func(a *Args) (numa.Policy, error) {
			return NewFreezeDefrost(a.Millis("freeze", 0), a.Millis("defrost", 0)), nil
		},
	})
	Register(Spec{
		Name: "decaythreshold",
		Doc:  "adaptive threshold on the decaying move counter: pins cool off and unpin",
		Params: []Param{
			{Key: "limit", Default: "4", Doc: "decayed move heat before pinning"},
			{Key: "interval", Default: "50", Doc: "defrost sweep period, virtual ms"},
		},
		New: func(a *Args) (numa.Policy, error) {
			limit := a.Int("limit", DefaultThreshold)
			if limit < 1 {
				return nil, fmt.Errorf("policy decaythreshold: limit %d < 1", limit)
			}
			d := NewDecayThreshold(limit)
			d.Interval = a.Millis("interval", d.Interval)
			return d, nil
		},
	})
	Register(Spec{
		Name: "bandit",
		Doc:  "per-page epsilon-greedy local-vs-global bandit (MAO's spirit)",
		Params: []Param{
			{Key: "eps", Default: "10", Doc: "exploration probability, percent"},
			{Key: "seed", Default: "1", Doc: "exploration PRNG seed"},
			{Key: "interval", Default: "50", Doc: "defrost sweep period, virtual ms"},
		},
		New: func(a *Args) (numa.Policy, error) {
			eps := a.Int("eps", 10)
			if eps < 0 || eps > 100 {
				return nil, fmt.Errorf("policy bandit: eps %d%% outside [0,100]", eps)
			}
			b := NewBandit(eps, a.Uint64("seed", 1))
			b.Interval = a.Millis("interval", b.Interval)
			return b, nil
		},
	})
	Register(Spec{
		Name: "classifier",
		Doc:  "read-mostly pages replicate locally; write-contended pages without a dominant node go global",
		Params: []Param{
			{Key: "limit", Default: "4", Doc: "decayed move heat to call a page contended"},
			{Key: "interval", Default: "50", Doc: "defrost sweep period, virtual ms"},
		},
		New: func(a *Args) (numa.Policy, error) {
			limit := a.Int("limit", DefaultThreshold)
			if limit < 1 {
				return nil, fmt.Errorf("policy classifier: limit %d < 1", limit)
			}
			c := NewClassifier(limit)
			c.Interval = a.Millis("interval", c.Interval)
			return c, nil
		},
	})
	Register(Spec{
		Name: "coplace",
		Doc:  "wrap an inner policy with thread co-placement: advise migrating threads toward their hot pages",
		Params: []Param{
			{Key: "inner", Default: "decaythreshold", Doc: "page-placement policy to wrap"},
			{Key: "min", Default: "8", Doc: "decayed heat a node needs before advising"},
		},
		New: func(a *Args) (numa.Policy, error) {
			min := a.Int("min", 8)
			if min < 1 {
				return nil, fmt.Errorf("policy coplace: min %d < 1", min)
			}
			return NewCoPlace(a.Policy("inner", "decaythreshold"), min), nil
		},
	})
}
