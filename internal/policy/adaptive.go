// The adaptive policy zoo: counter-driven policies built on the NUMA
// manager's per-page decaying access histograms and move counters
// (numa.PageObserver and friends, see internal/numa/policyapi.go).
//
// Where the paper's Threshold pins on the lifetime move count — a
// one-way door — these policies react to decayed counters, so a page
// that was contended in one phase of a program can come back to local
// memory in the next:
//
//   - DecayThreshold pins on the decaying move counter and unpins as
//     it cools (the simplest possible adaptive fix to Threshold);
//   - Bandit runs a per-page epsilon-greedy two-armed bandit over
//     local-vs-global, in the spirit of MAO's learned approach;
//   - Classifier splits pages into the literature's two regimes:
//     read-mostly pages replicate locally, write-contended pages
//     without a dominant accessor go global;
//   - CoPlace wraps any inner policy with the ThreadAdvisor
//     capability, advising the scheduler to migrate threads toward
//     the nodes holding their hot pages (Phoenix's thread half of the
//     co-placement problem), weighting candidates by the topology's
//     distance matrix.
//
// Every method on these types runs on the protocol hot path and
// allocates nothing; per-page learned state lives in the page's
// 64-bit policy scratch word, pooled with the page record.
package policy

import (
	"fmt"

	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/sim"
	"numasim/internal/topology"
)

// DefaultSweepInterval is the defrost sweep period the adaptive
// policies request, matching Reconsider's default: pinned pages are
// re-presented every 50 virtual ms so a cooled page can unpin.
const DefaultSweepInterval = 50 * sim.Millisecond

// DecayThreshold is Threshold on the decaying move counter: a page is
// pinned global while its decayed move heat meets the limit and comes
// back to local memory once the heat has decayed away. Implementing
// PageObserver turns the manager's heat counters on; implementing
// ReconsideringPolicy gets pinned pages re-presented.
type DecayThreshold struct {
	Limit    uint32
	Interval sim.Time
}

// NewDecayThreshold returns the adaptive threshold with the given
// decayed-move-heat limit.
func NewDecayThreshold(limit int) *DecayThreshold {
	if limit < 1 {
		panic(fmt.Sprintf("policy: decay threshold limit %d < 1", limit))
	}
	return &DecayThreshold{Limit: uint32(limit), Interval: DefaultSweepInterval}
}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (d *DecayThreshold) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	if pg.MoveHeat() >= d.Limit {
		return numa.Global
	}
	return numa.Local
}

// Name implements numa.Policy.
//
//numalint:coldpath formats a report label; the manager only calls Name when tracing is on
func (d *DecayThreshold) Name() string { return fmt.Sprintf("decay-threshold(%d)", d.Limit) }

// ObserveAccess implements numa.PageObserver. The decision needs only
// the counters the manager maintains for any observer, so there is
// nothing further to record.
//
//numalint:hotpath
func (d *DecayThreshold) ObserveAccess(pg *numa.Page, proc int, write bool, now sim.Time) {}

// ReconsiderInterval implements numa.ReconsideringPolicy.
//
//numalint:hotpath
func (d *DecayThreshold) ReconsiderInterval() sim.Time { return d.Interval }

// Bandit state packed into the page's policy scratch word.
const (
	banditQMax = 1<<16 - 1 // full reward: the arm behaved perfectly
	// banditGlobalReward is the standing reward of the global arm: a
	// pinned page never moves but pays global latency on every access,
	// so the arm scores below a quiet local page (banditQMax) and above
	// a ping-ponging one (toward 0).
	banditGlobalReward = 40000
)

// Bandit is a per-page epsilon-greedy two-armed bandit over
// local-vs-global placement, in the spirit of MAO's learned policies.
// Each page carries two reward estimates in its policy scratch word:
// the local arm is rewarded when a local placement survived without an
// ownership move since the bandit's previous decision, the global arm
// earns a fixed mid-scale reward (stable but slow). Exploration is
// driven by a splitmix64 draw over the seed, the page id, the virtual
// time and the decay epoch — deterministic at any host parallelism.
type Bandit struct {
	Eps      int    // exploration probability in percent
	Seed     uint64 // exploration PRNG seed
	Interval sim.Time

	epoch uint64 // decay epochs seen, via the Retirer hook
}

// NewBandit returns a bandit exploring with the given probability
// (percent) and PRNG seed.
func NewBandit(epsPct int, seed uint64) *Bandit {
	if epsPct < 0 || epsPct > 100 {
		panic(fmt.Sprintf("policy: bandit eps %d%% outside [0,100]", epsPct))
	}
	return &Bandit{Eps: epsPct, Seed: seed, Interval: DefaultSweepInterval}
}

// mix64 is the splitmix64 finalizer (the chaos package's PRNG idiom):
// a bijective avalanche over one 64-bit word.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (b *Bandit) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	if !maxProt.CanWrite() {
		// Read-only data replicates; the bandit arbitrates only the
		// writable pages whose placement actually trades off.
		return numa.Local
	}
	w := pg.PolicyWord()
	qLocal := uint32(w & 0xffff)
	qGlobal := uint32(w >> 16 & 0xffff)
	lastMoves := uint32(w >> 32 & 0xffff)
	lastArm := uint32(w >> 48 & 1)
	moves := uint32(uint64(pg.Moves()) & 0xffff)
	if w>>49&1 == 1 {
		// Settle the previous decision's reward (EWMA, 1/8 step).
		if lastArm == 0 {
			var reward uint32
			if moves == lastMoves {
				reward = banditQMax
			}
			qLocal = qLocal - qLocal/8 + reward/8
		} else {
			qGlobal = qGlobal - qGlobal/8 + banditGlobalReward/8
		}
	} else {
		// Optimistic initialization: try local first.
		qLocal, qGlobal = banditQMax, banditGlobalReward
	}
	arm := uint32(0)
	if qGlobal > qLocal {
		arm = 1
	}
	r := mix64(b.Seed ^ uint64(pg.ID())*0x9e3779b97f4a7c15 ^ uint64(pg.LastRequestAt()) ^ b.epoch<<48)
	if int(r%100) < b.Eps {
		arm = uint32(r>>32) & 1
	}
	pg.SetPolicyWord(uint64(qLocal) | uint64(qGlobal)<<16 | uint64(moves)<<32 | uint64(arm)<<48 | 1<<49)
	if arm == 1 {
		return numa.Global
	}
	return numa.Local
}

// Name implements numa.Policy.
//
//numalint:coldpath formats a report label; the manager only calls Name when tracing is on
func (b *Bandit) Name() string { return fmt.Sprintf("bandit(%d%%,%d)", b.Eps, b.Seed) }

// RetireEpoch implements numa.Retirer: each decay epoch re-salts the
// exploration schedule, so a page stuck exploiting one arm gets fresh
// draws over time.
//
//numalint:hotpath
func (b *Bandit) RetireEpoch(now sim.Time) { b.epoch++ }

// ReconsiderInterval implements numa.ReconsideringPolicy.
//
//numalint:hotpath
func (b *Bandit) ReconsiderInterval() sim.Time { return b.Interval }

// Classifier realizes the literature's two-regime rule directly:
// read-mostly pages (never written, or mapped read-only) replicate
// into local memory; writable pages are partitioned locally while one
// node dominates their decayed access heat, and go global only while
// they are both moving (decayed move heat at the limit) and spread
// across nodes with no majority accessor.
type Classifier struct {
	Limit    uint32 // decayed move heat to call a page contended
	Interval sim.Time
}

// NewClassifier returns a classifier with the given contention limit.
func NewClassifier(limit int) *Classifier {
	if limit < 1 {
		panic(fmt.Sprintf("policy: classifier limit %d < 1", limit))
	}
	return &Classifier{Limit: uint32(limit), Interval: DefaultSweepInterval}
}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (c *Classifier) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	if !maxProt.CanWrite() || !pg.EverWritten() {
		return numa.Local
	}
	if pg.MoveHeat() >= c.Limit {
		hot := pg.HotNode()
		if hot < 0 || 2*uint64(pg.NodeHeat(hot)) <= pg.TotalHeat() {
			return numa.Global
		}
	}
	return numa.Local
}

// Name implements numa.Policy.
//
//numalint:coldpath formats a report label; the manager only calls Name when tracing is on
func (c *Classifier) Name() string { return fmt.Sprintf("classifier(%d)", c.Limit) }

// ObserveAccess implements numa.PageObserver (the classifier needs the
// manager's heat counters, nothing more).
//
//numalint:hotpath
func (c *Classifier) ObserveAccess(pg *numa.Page, proc int, write bool, now sim.Time) {}

// ReconsiderInterval implements numa.ReconsideringPolicy.
//
//numalint:hotpath
func (c *Classifier) ReconsiderInterval() sim.Time { return c.Interval }

// neverSweep effectively disables the defrost daemon for a CoPlace
// whose inner policy never reconsiders: no virtual clock reaches it.
const neverSweep = sim.Time(1) << 62

// CoPlace wraps an inner page-placement policy with the ThreadAdvisor
// capability: page placement is the inner policy's verbatim, and after
// each request CoPlace may advise the scheduler to migrate the
// faulting thread toward the node holding the page's heat — Phoenix's
// observation that orchestrating both thread and page placement beats
// either alone. Candidate nodes are scored by decayed heat discounted
// by the topology's distance from the thread's current node, so a
// moderately hot nearby node can out-bid a hotter far one; advice is
// only given when the winner dominates the page's total heat.
type CoPlace struct {
	Inner   numa.Policy
	MinHeat uint32 // decayed heat the winner needs before advising

	spec     *topology.Spec
	innerObs numa.PageObserver
	innerRet numa.Retirer
	innerRec numa.ReconsideringPolicy
}

// NewCoPlace wraps inner (the default DecayThreshold when nil) with
// thread co-placement advice.
func NewCoPlace(inner numa.Policy, minHeat int) *CoPlace {
	if inner == nil {
		inner = NewDecayThreshold(DefaultThreshold)
	}
	if minHeat < 1 {
		panic(fmt.Sprintf("policy: coplace min heat %d < 1", minHeat))
	}
	c := &CoPlace{Inner: inner, MinHeat: uint32(minHeat)}
	c.innerObs, _ = inner.(numa.PageObserver)
	c.innerRet, _ = inner.(numa.Retirer)
	c.innerRec, _ = inner.(numa.ReconsideringPolicy)
	return c
}

// CachePolicy implements numa.Policy: page placement is the inner
// policy's.
//
//numalint:hotpath
func (c *CoPlace) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	return c.Inner.CachePolicy(pg, proc, write, maxProt)
}

// Name implements numa.Policy.
//
//numalint:coldpath formats a report label; the manager only calls Name when tracing is on
func (c *CoPlace) Name() string { return "coplace+" + c.Inner.Name() }

// ObserveAccess implements numa.PageObserver, forwarding to an
// observing inner policy.
//
//numalint:hotpath
func (c *CoPlace) ObserveAccess(pg *numa.Page, proc int, write bool, now sim.Time) {
	if c.innerObs != nil {
		c.innerObs.ObserveAccess(pg, proc, write, now)
	}
}

// RetireEpoch implements numa.Retirer, forwarding to a retiring inner
// policy.
//
//numalint:hotpath
func (c *CoPlace) RetireEpoch(now sim.Time) {
	if c.innerRet != nil {
		c.innerRet.RetireEpoch(now)
	}
}

// ReconsiderInterval implements numa.ReconsideringPolicy, delegating
// to the inner policy; a non-reconsidering inner policy would gain
// nothing from sweeps, so they are pushed beyond any virtual clock.
//
//numalint:hotpath
func (c *CoPlace) ReconsiderInterval() sim.Time {
	if c.innerRec != nil {
		return c.innerRec.ReconsiderInterval()
	}
	return neverSweep
}

// BindTopology implements numa.TopologyAware, capturing the distance
// matrix the advice weights candidates with (and forwarding to an
// aware inner policy).
func (c *CoPlace) BindTopology(spec *topology.Spec) {
	c.spec = spec
	if ta, ok := c.Inner.(numa.TopologyAware); ok {
		ta.BindTopology(spec)
	}
}

// AdviseThread implements numa.ThreadAdvisor. node is the faulting
// thread's current node; each candidate node's decayed heat is
// discounted by its distance from node (LocalDistance/dist, so the
// thread's own node keeps its full heat) and the best scorer wins —
// provided it clears MinHeat and holds a strict majority of the page's
// total heat.
//
//numalint:hotpath
func (c *CoPlace) AdviseThread(pg *numa.Page, proc, node int, now sim.Time) (int, bool) {
	best, bestScore := -1, uint64(0)
	if c.spec != nil {
		for i := 0; i < c.spec.NNodes(); i++ {
			h := pg.NodeHeat(i)
			if h == 0 {
				continue
			}
			score := uint64(h) * uint64(topology.LocalDistance) / uint64(c.spec.Dist(node, i))
			if score > bestScore {
				best, bestScore = i, score
			}
		}
	} else {
		// No topology bound (direct-construction tests): fall back to
		// the raw hottest node.
		best = pg.HotNode()
		if best >= 0 {
			bestScore = uint64(pg.NodeHeat(best))
		}
	}
	if best < 0 || best == node || bestScore < uint64(c.MinHeat) {
		return 0, false
	}
	if 2*uint64(pg.NodeHeat(best)) <= pg.TotalHeat() {
		return 0, false
	}
	return best, true
}

// Compile-time interface checks.
var (
	_ numa.Policy              = (*DecayThreshold)(nil)
	_ numa.PageObserver        = (*DecayThreshold)(nil)
	_ numa.ReconsideringPolicy = (*DecayThreshold)(nil)
	_ numa.Policy              = (*Bandit)(nil)
	_ numa.Retirer             = (*Bandit)(nil)
	_ numa.ReconsideringPolicy = (*Bandit)(nil)
	_ numa.Policy              = (*Classifier)(nil)
	_ numa.PageObserver        = (*Classifier)(nil)
	_ numa.ReconsideringPolicy = (*Classifier)(nil)
	_ numa.Policy              = (*CoPlace)(nil)
	_ numa.PageObserver        = (*CoPlace)(nil)
	_ numa.ThreadAdvisor       = (*CoPlace)(nil)
	_ numa.Retirer             = (*CoPlace)(nil)
	_ numa.ReconsideringPolicy = (*CoPlace)(nil)
	_ numa.TopologyAware       = (*CoPlace)(nil)
)
