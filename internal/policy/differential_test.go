package policy_test

// Differential tests for the Policy API redesign: a capability-free
// policy must produce bit-identical runs whether or not it is wrapped
// with no-op capabilities (heat tracking must be invisible), and the
// deprecated ByName spellings must build the same policies the registry
// Parse syntax does.

import (
	"reflect"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/metrics"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/workloads"
)

// shimmed is Threshold plus no-op observer and retirer capabilities: it
// makes the manager maintain the heat histograms and tick the epoch
// clock without acting on either, so any divergence from the bare
// policy is a redesign bug.
type shimmed struct {
	*policy.Threshold
}

// ObserveAccess implements numa.PageObserver.
//
//numalint:hotpath
func (shimmed) ObserveAccess(pg *numa.Page, proc int, write bool, now sim.Time) {}

// RetireEpoch implements numa.Retirer.
//
//numalint:hotpath
func (shimmed) RetireEpoch(now sim.Time) {}

var (
	_ numa.PageObserver = shimmed{}
	_ numa.Retirer      = shimmed{}
)

func runWith(t *testing.T, w metrics.Runner, pol numa.Policy) metrics.RunResult {
	t.Helper()
	cfg := ace.DefaultConfig()
	cfg.NProc = 3
	res, err := metrics.Run(w, metrics.RunSpec{
		Config: cfg, Policy: pol, Workers: 3, Sched: sched.Affinity,
	})
	if err != nil {
		t.Fatalf("%s under %s: %v", w.Name(), pol.Name(), err)
	}
	return res
}

// TestCapabilityShimIsInvisible runs the same workloads under the bare
// Threshold and the shimmed one; every measured field must match. This
// is the differential proof that capability-free policies behave
// identically before and after the redesign: the shim exercises the
// entire counter-maintenance path the redesign added, and the results
// may not move by a single count or tick.
func TestCapabilityShimIsInvisible(t *testing.T) {
	for _, mk := range []func() metrics.Runner{
		func() metrics.Runner { return workloads.NewGfetch(12, 4) },
		func() metrics.Runner { return workloads.NewZipf(0, 0, 0) },
		func() metrics.Runner { return workloads.NewPhased(0, 0, 0) },
	} {
		bare := runWith(t, mk(), policy.NewDefault())
		shim := runWith(t, mk(), shimmed{policy.NewDefault()})
		if !reflect.DeepEqual(bare, shim) {
			t.Errorf("%s: bare and shimmed Threshold diverge:\nbare: %+v\nshim: %+v",
				bare.Workload, bare, shim)
		}
	}
}

// TestByNameMatchesParse checks that every deprecated ByName spelling
// builds the same policy the registry syntax does.
func TestByNameMatchesParse(t *testing.T) {
	cases := []struct {
		name string
		thr  int
		spec string
	}{
		{"threshold", 4, "threshold"},
		{"threshold", 2, "threshold:limit=2"},
		{"neverpin", 4, "neverpin"},
		{"allglobal", 4, "allglobal"},
		{"alllocal", 4, "alllocal"},
		{"pragma", 4, "pragma"},
		{"reconsider", 4, "reconsider:limit=4,period=64"},
		{"freezedefrost", 4, "freezedefrost"},
	}
	for _, c := range cases {
		old, err := policy.ByName(c.name, c.thr)
		if err != nil {
			t.Fatalf("ByName(%q, %d): %v", c.name, c.thr, err)
		}
		parsed, err := policy.Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if reflect.TypeOf(old) != reflect.TypeOf(parsed) {
			t.Errorf("%q vs %q: types %T and %T", c.name, c.spec, old, parsed)
		}
		if old.Name() != parsed.Name() {
			t.Errorf("%q vs %q: names %q and %q", c.name, c.spec, old.Name(), parsed.Name())
		}
	}
}

// TestByNameRoutesNewSpecs checks that the deprecated entry point
// accepts registry-only names and the new parameter syntax, so old
// call sites gain the zoo for free.
func TestByNameRoutesNewSpecs(t *testing.T) {
	for _, spec := range []string{"decaythreshold", "bandit:eps=5,seed=3", "classifier", "coplace:min=4"} {
		pol, err := policy.ByName(spec, 4)
		if err != nil {
			t.Fatalf("ByName(%q): %v", spec, err)
		}
		if pol.Name() == "" {
			t.Errorf("ByName(%q): empty name", spec)
		}
	}
	if _, err := policy.ByName("no-such-policy", 4); err == nil {
		t.Error("ByName accepted an unknown policy")
	}
}

// TestAdaptivePoliciesAnswerSanely drives each adaptive policy's
// CachePolicy against a live manager page and checks the answers stay
// within the protocol's vocabulary.
func TestAdaptivePoliciesAnswerSanely(t *testing.T) {
	for _, spec := range []string{"decaythreshold", "bandit", "classifier", "coplace"} {
		pol, err := policy.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ace.DefaultConfig()
		cfg.NProc = 2
		m := ace.MustMachine(cfg)
		n := numa.NewManager(m, pol)
		if !n.TracksHeat() {
			t.Errorf("%s: adaptive policy bound but heat tracking is off", spec)
		}
		m.Engine().Spawn("probe", 0, func(th *sim.Thread) {
			pg, err := n.NewPage()
			if err != nil {
				t.Errorf("%s: %v", spec, err)
				return
			}
			for i := 0; i < 32; i++ {
				loc := pol.CachePolicy(pg, i%2, i%3 == 0, mmu.ProtReadWrite)
				if loc != numa.Local && loc != numa.Global && loc != numa.PlaceRemote {
					t.Errorf("%s: answer %v out of vocabulary", spec, loc)
					return
				}
				n.Access(th, pg, i%2, i%3 == 0, mmu.ProtReadWrite)
			}
		})
		if err := m.Engine().Run(); err != nil {
			t.Fatalf("%s: engine: %v", spec, err)
		}
	}
}
