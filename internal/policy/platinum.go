package policy

import (
	"fmt"

	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/sim"
)

// FreezeDefrost is a PLATINUM-style placement policy (Cox and Fowler's
// coherent memory abstraction, cited by the paper as the contemporaneous
// alternative): instead of counting moves and pinning forever, it reasons
// about *time*. A page that moved recently — within FreezeWindow of the
// current request — is "frozen" in global memory; once it has sat quiet
// for DefrostAfter, it is given another chance in local memory.
//
// Compared with the paper's Threshold policy, FreezeDefrost adapts to
// phase changes (a page hot-shared in one phase can come back to local
// memory in the next) at the cost of re-learning, and of occasionally
// re-thrashing, when sharing persists.
type FreezeDefrost struct {
	// FreezeWindow: a move within this much virtual time of the request
	// marks the page as actively shared.
	FreezeWindow sim.Time
	// DefrostAfter: a frozen page quiet for this long becomes cacheable
	// again.
	DefrostAfter sim.Time
}

// NewFreezeDefrost returns a PLATINUM-style policy; non-positive arguments
// select defaults (20 ms freeze window, 200 ms defrost — the windows must
// comfortably exceed the several-millisecond cost of a page move, much as
// PLATINUM's daemon ran on timer ticks).
func NewFreezeDefrost(freeze, defrost sim.Time) *FreezeDefrost {
	if freeze <= 0 {
		freeze = 20 * sim.Millisecond
	}
	if defrost <= 0 {
		defrost = 10 * freeze
	}
	return &FreezeDefrost{FreezeWindow: freeze, DefrostAfter: defrost}
}

// CachePolicy implements numa.Policy.
//
//numalint:hotpath
func (p *FreezeDefrost) CachePolicy(pg *numa.Page, proc int, write bool, maxProt mmu.Prot) numa.Location {
	if pg.Moves() == 0 {
		return numa.Local
	}
	quiet := pg.LastRequestAt() - pg.LastMoveAt()
	switch {
	case quiet < p.FreezeWindow:
		// Moved very recently: freeze in global memory.
		return numa.Global
	case pg.State() == numa.GlobalWritable && quiet < p.DefrostAfter:
		// Still frozen; not quiet long enough to defrost.
		return numa.Global
	default:
		return numa.Local
	}
}

// Name implements numa.Policy.
//
//numalint:coldpath formats a report label; the manager only calls Name when tracing is on
func (p *FreezeDefrost) Name() string {
	return fmt.Sprintf("freeze-defrost(%v,%v)", p.FreezeWindow, p.DefrostAfter)
}

// ReconsiderInterval implements numa.ReconsideringPolicy: the manager's
// defrost daemon drops pinned pages' mappings once per defrost period so
// they fault back into this policy.
//
//numalint:hotpath
func (p *FreezeDefrost) ReconsiderInterval() sim.Time { return p.DefrostAfter }

var (
	_ numa.Policy              = (*FreezeDefrost)(nil)
	_ numa.ReconsideringPolicy = (*FreezeDefrost)(nil)
)
