package policy

import (
	"sort"
	"strings"
	"testing"
)

// TestParseErrors: every way a spec can be wrong must come back as an
// error, not a silently misconfigured policy.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"no-such-policy", "unknown policy"},
		{"threshold:frobnicate=1", "unknown parameter"},
		{"threshold:limit=banana", "want an integer"},
		{"threshold:limit", "malformed parameter"},
		{"threshold:=3", "malformed parameter"},
		{"bandit:seed=-1", "want an unsigned integer"},
		{"decaythreshold:interval=-5", "non-negative"},
		{"coplace:inner=no-such-policy", "unknown policy"},
	}
	for _, c := range cases {
		if _, err := Parse(c.spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want an error mentioning %q", c.spec, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want mention of %q", c.spec, err, c.want)
		}
	}
}

// TestParseSpellings: case and whitespace are forgiven; parameters reach
// the policy (visible through its self-describing Name).
func TestParseSpellings(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"threshold", "threshold(4)"},
		{"Threshold : limit=2", "threshold(2)"},
		{"THRESHOLD:limit=2,", "threshold(2)"},
		{"bandit:eps=25,seed=9", "bandit(25%,9)"},
		{"coplace:inner=threshold,limit=2,min=8", "coplace+threshold(2)"},
	}
	for _, c := range cases {
		pol, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if pol.Name() != c.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.spec, pol.Name(), c.name)
		}
	}
}

// TestRegistryCatalog: Names is sorted and complete, and Usage documents
// every registered policy with its parameter vocabulary.
func TestRegistryCatalog(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, want := range []string{
		"threshold", "neverpin", "allglobal", "alllocal", "pragma",
		"reconsider", "freezedefrost", "decaythreshold", "bandit",
		"classifier", "coplace",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() missing %q: %v", want, names)
		}
	}
	usage := Usage()
	for _, want := range []string{"threshold", "limit=", "eps=", "inner=", "interval="} {
		if !strings.Contains(usage, want) {
			t.Errorf("Usage() missing %q:\n%s", want, usage)
		}
	}
}

// TestParseReturnsFreshInstances: policies are stateful; two parses of
// the same spec must not share a policy.
func TestParseReturnsFreshInstances(t *testing.T) {
	a, err := Parse("decaythreshold")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("decaythreshold")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("Parse returned the same instance twice")
	}
}
