package trace

import (
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		refs []struct {
			proc  int
			write bool
		}
		want Class
	}{
		{"untouched", nil, Untouched},
		{"private-read", []struct {
			proc  int
			write bool
		}{{0, false}}, Private},
		{"private-rw", []struct {
			proc  int
			write bool
		}{{0, false}, {0, true}}, Private},
		{"read-shared", []struct {
			proc  int
			write bool
		}{{0, false}, {1, false}}, ReadShared},
		{"writably-shared", []struct {
			proc  int
			write bool
		}{{0, true}, {1, false}}, WritablyShared},
		{"two-writers", []struct {
			proc  int
			write bool
		}{{0, true}, {1, true}}, WritablyShared},
	}
	for _, c := range cases {
		u := &use{}
		for _, r := range c.refs {
			u.record(r.proc, r.write)
		}
		if got := u.classify(); got != c.want {
			t.Errorf("%s: classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		Untouched: "untouched", Private: "private",
		ReadShared: "read-shared", WritablyShared: "writably-shared",
	} {
		if c.String() != want {
			t.Errorf("%v", c)
		}
	}
}

func TestFalseSharingDetection(t *testing.T) {
	c := New(12, true)
	// Page 0: word 0 written only by cpu0, word 1 written only by cpu1:
	// the page is writably shared, but no word is -> falsely shared.
	c.Record(0, 0x000, true)
	c.Record(1, 0x004, true)
	// Page 1: word written by both cpus: truly shared.
	c.Record(0, 0x1000, true)
	c.Record(1, 0x1000, true)
	// Page 2: read-only sharing.
	c.Record(0, 0x2000, false)
	c.Record(1, 0x2000, false)
	// Page 3: private.
	c.Record(2, 0x3000, true)

	pages := c.Pages()
	if len(pages) != 4 {
		t.Fatalf("pages = %d, want 4", len(pages))
	}
	if !pages[0].FalselyShared || pages[0].Class != WritablyShared {
		t.Errorf("page 0 = %+v, want falsely shared", pages[0])
	}
	if pages[1].FalselyShared || pages[1].Class != WritablyShared {
		t.Errorf("page 1 = %+v, want truly writably shared", pages[1])
	}
	if pages[2].Class != ReadShared {
		t.Errorf("page 2 = %+v, want read-shared", pages[2])
	}
	if pages[3].Class != Private {
		t.Errorf("page 3 = %+v, want private", pages[3])
	}

	s := c.Summarize()
	if s.FalselyShared != 1 || s.WritablyShared != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.FalseSharePct != 50 {
		t.Errorf("FalseSharePct = %v, want 50", s.FalseSharePct)
	}
	out := s.Render()
	for _, want := range []string{"4 pages touched", "falsely shared:  1 of 2", "private:         1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestWordTrackingDisabled(t *testing.T) {
	c := New(12, false)
	c.Record(0, 0, true)
	c.Record(1, 4, true)
	pages := c.Pages()
	if pages[0].FalselyShared {
		t.Error("false sharing cannot be detected without word tracking")
	}
	if len(c.words) != 0 {
		t.Error("words tracked despite disabled")
	}
}

func TestCounts(t *testing.T) {
	c := New(12, true)
	for i := 0; i < 5; i++ {
		c.Record(0, 0x100, false)
	}
	for i := 0; i < 3; i++ {
		c.Record(0, 0x100, true)
	}
	p := c.Pages()[0]
	if p.Reads != 5 || p.Writes != 3 || p.Readers != 1 || p.Writers != 1 {
		t.Errorf("report = %+v", p)
	}
}
