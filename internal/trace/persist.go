package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// File format: a small binary container so traces can be captured in one
// run (cmd/acesim -traceout) and analysed offline (cmd/traceview).
//
//	magic "NSTR", version u16, pageShift u16,
//	nPages u32, nWords u32,
//	nPages  × { vpn u32, readers u16, writers u16, reads u64, writes u64 }
//	nWords  × { word u32, readers u16, writers u16, reads u64, writes u64 }
const (
	traceMagic   = "NSTR"
	traceVersion = 1
)

type record struct {
	Key     uint32
	Readers uint16
	Writers uint16
	Reads   uint64
	Writes  uint64
}

// Save writes the collector's trace to w.
func (c *Collector) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	hdr := []any{
		uint16(traceVersion),
		uint16(c.shift),
		uint32(len(c.pages)),
		uint32(len(c.words)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// Write records in key order: map iteration order would make the
	// file bytes differ between otherwise identical runs.
	write := func(m map[uint32]*use) error {
		keys := make([]uint32, 0, len(m))
		for key := range m {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, key := range keys {
			u := m[key]
			rec := record{Key: key, Readers: u.readers, Writers: u.writers, Reads: u.reads, Writes: u.writes}
			if err := binary.Write(bw, binary.LittleEndian, &rec); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(c.pages); err != nil {
		return err
	}
	if err := write(c.words); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a trace previously written by Save.
func Load(r io.Reader) (*Collector, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version, shift uint16
	var nPages, nWords uint32
	for _, v := range []any{&version, &shift, &nPages, &nWords} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	c := New(uint(shift), nWords > 0)
	read := func(m map[uint32]*use, n uint32) error {
		for i := uint32(0); i < n; i++ {
			var rec record
			if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
				return err
			}
			m[rec.Key] = &use{readers: rec.Readers, writers: rec.Writers, reads: rec.Reads, writes: rec.Writes}
		}
		return nil
	}
	if err := read(c.pages, nPages); err != nil {
		return nil, fmt.Errorf("trace: reading pages: %w", err)
	}
	if err := read(c.words, nWords); err != nil {
		return nil, fmt.Errorf("trace: reading words: %w", err)
	}
	return c, nil
}

// PageShift reports the page shift the trace was captured with.
func (c *Collector) PageShift() uint { return c.shift }
