package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := New(12, true)
	c.Record(0, 0x000, true)
	c.Record(1, 0x004, true)
	c.Record(0, 0x1000, true)
	c.Record(1, 0x1000, true)
	c.Record(2, 0x2000, false)
	for i := 0; i < 10; i++ {
		c.Record(0, 0x2000, false)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.PageShift() != 12 {
		t.Errorf("shift = %d", loaded.PageShift())
	}
	if !reflect.DeepEqual(c.Pages(), loaded.Pages()) {
		t.Errorf("pages differ:\n%v\n%v", c.Pages(), loaded.Pages())
	}
	a, b := c.Summarize(), loaded.Summarize()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("summaries differ:\n%+v\n%+v", a, b)
	}
	if b.FalselyShared != 1 {
		t.Errorf("false sharing lost in round trip: %d", b.FalselyShared)
	}
}

func TestSaveLoadWithoutWords(t *testing.T) {
	c := New(10, false)
	c.Record(0, 0x400, true)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.words) != 0 {
		t.Error("word records appeared from nowhere")
	}
	if len(loaded.pages) != 1 {
		t.Errorf("pages = %d", len(loaded.pages))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("XXXX\x01\x00\x0c\x00\x00\x00\x00\x00\x00\x00\x00\x00"),
		"short":       []byte("NSTR\x01\x00"),
		"bad version": []byte("NSTR\xff\x00\x0c\x00\x00\x00\x00\x00\x00\x00\x00\x00"),
		"truncated":   []byte("NSTR\x01\x00\x0c\x00\x05\x00\x00\x00\x00\x00\x00\x00"),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Load accepted garbage", name)
		}
	}
}

func TestLoadErrorsMentionCause(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("ABCD")))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("err = %v", err)
	}
}
