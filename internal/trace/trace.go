// Package trace implements the reference-trace facility the paper calls
// for in §5 ("We have begun to make and analyze reference traces of
// parallel programs"): it records which processors read and write each
// virtual page and each word, classifies pages by sharing behaviour, and
// detects false sharing — pages that are writably shared even though no
// single word in them is (§4.2).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Class is a page's (or word's) sharing classification, per §4.2.
type Class int

// Sharing classes.
const (
	// Untouched: never referenced.
	Untouched Class = iota
	// Private: referenced by exactly one processor.
	Private
	// ReadShared: referenced by several processors, never written.
	ReadShared
	// WritablyShared: written by at least one processor and read or
	// written by more than one.
	WritablyShared
)

func (c Class) String() string {
	switch c {
	case Untouched:
		return "untouched"
	case Private:
		return "private"
	case ReadShared:
		return "read-shared"
	case WritablyShared:
		return "writably-shared"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// use is a compact per-proc usage record: bitmasks of readers and writers.
type use struct {
	readers uint16
	writers uint16
	reads   uint64
	writes  uint64
}

func (u *use) record(proc int, write bool) {
	bit := uint16(1) << uint(proc)
	if write {
		u.writers |= bit
		u.writes++
	} else {
		u.readers |= bit
		u.reads++
	}
}

func popcount(v uint16) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// classify applies §4.2's definitions.
func (u *use) classify() Class {
	users := u.readers | u.writers
	switch {
	case users == 0:
		return Untouched
	case popcount(users) == 1:
		return Private
	case u.writers == 0:
		return ReadShared
	default:
		return WritablyShared
	}
}

// PageReport describes one traced page.
type PageReport struct {
	VPN           uint32
	Class         Class
	Readers       int
	Writers       int
	Reads, Writes uint64
	// FalselyShared reports a writably-shared page none of whose words is
	// itself writably shared: the sharing is an accident of colocation.
	FalselyShared bool
}

// Collector accumulates a reference trace. Install its Hook as the
// kernel's RefTrace. Word-granularity tracking (needed for false-sharing
// detection) costs memory proportional to the number of distinct words
// touched and can be disabled.
type Collector struct {
	shift      uint
	trackWords bool
	pages      map[uint32]*use
	words      map[uint32]*use
}

// New creates a collector for the given page shift (log2 of the page
// size). trackWords enables per-word classification.
func New(pageShift uint, trackWords bool) *Collector {
	return &Collector{
		shift:      pageShift,
		trackWords: trackWords,
		pages:      make(map[uint32]*use),
		words:      make(map[uint32]*use),
	}
}

// Hook returns the function to install as vm.Kernel.RefTrace.
func (c *Collector) Hook() func(proc int, va uint32, write bool) {
	return c.Record
}

// Record notes one reference.
func (c *Collector) Record(proc int, va uint32, write bool) {
	vpn := va >> c.shift
	u := c.pages[vpn]
	if u == nil {
		u = &use{}
		c.pages[vpn] = u
	}
	u.record(proc, write)
	if c.trackWords {
		w := va >> 2
		uw := c.words[w]
		if uw == nil {
			uw = &use{}
			c.words[w] = uw
		}
		uw.record(proc, write)
	}
}

// Pages returns the per-page reports, sorted by page number.
func (c *Collector) Pages() []PageReport {
	vpns := make([]uint32, 0, len(c.pages))
	for vpn := range c.pages {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	out := make([]PageReport, 0, len(vpns))
	for _, vpn := range vpns {
		u := c.pages[vpn]
		r := PageReport{
			VPN:     vpn,
			Class:   u.classify(),
			Readers: popcount(u.readers),
			Writers: popcount(u.writers),
			Reads:   u.reads,
			Writes:  u.writes,
		}
		if r.Class == WritablyShared && c.trackWords {
			r.FalselyShared = !c.pageHasWritablySharedWord(vpn)
		}
		out = append(out, r)
	}
	return out
}

func (c *Collector) pageHasWritablySharedWord(vpn uint32) bool {
	wordsPerPage := uint32(1) << (c.shift - 2)
	first := vpn << (c.shift - 2)
	for w := first; w < first+wordsPerPage; w++ {
		if u, ok := c.words[w]; ok && u.classify() == WritablyShared {
			return true
		}
	}
	return false
}

// Summary aggregates a trace.
type Summary struct {
	Pages          int
	ByClass        map[Class]int
	FalselyShared  int
	Reads, Writes  uint64
	WordsTracked   int
	WordsByClass   map[Class]int
	FalseSharePct  float64 // falsely shared / writably shared pages
	WritablyShared int
}

// Summarize aggregates the collector's trace.
func (c *Collector) Summarize() Summary {
	s := Summary{
		ByClass:      make(map[Class]int),
		WordsByClass: make(map[Class]int),
		WordsTracked: len(c.words),
	}
	for _, r := range c.Pages() {
		s.Pages++
		s.ByClass[r.Class]++
		s.Reads += r.Reads
		s.Writes += r.Writes
		if r.Class == WritablyShared {
			s.WritablyShared++
			if r.FalselyShared {
				s.FalselyShared++
			}
		}
	}
	for _, u := range c.words {
		s.WordsByClass[u.classify()]++
	}
	if s.WritablyShared > 0 {
		s.FalseSharePct = 100 * float64(s.FalselyShared) / float64(s.WritablyShared)
	}
	return s
}

// Render formats the summary as a small report.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reference trace: %d pages touched, %d reads, %d writes\n", s.Pages, s.Reads, s.Writes)
	for _, cl := range []Class{Private, ReadShared, WritablyShared} {
		fmt.Fprintf(&b, "  %-16s %d pages\n", cl.String()+":", s.ByClass[cl])
	}
	if s.WritablyShared > 0 {
		fmt.Fprintf(&b, "  falsely shared:  %d of %d writably-shared pages (%.0f%%)\n",
			s.FalselyShared, s.WritablyShared, s.FalseSharePct)
	}
	return b.String()
}
