package sim

import (
	"strings"
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3*Millisecond + 500*Microsecond, "3.500ms"},
		{2*Second + 250*Millisecond, "2.250s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Ready: "ready", Running: "running", Blocked: "blocked", Done: "done", State(42): "state(42)"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestSingleThreadRuns(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Spawn("a", 0, func(th *Thread) {
		th.Advance(10 * Microsecond)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("thread body did not run")
	}
	if got := e.TotalUserTime(); got != 10*Microsecond {
		t.Errorf("TotalUserTime = %v, want 10µs", got)
	}
}

func TestLowestClockRunsFirst(t *testing.T) {
	e := NewEngine()
	var order []string
	// b starts earlier in virtual time than a, so even though a is spawned
	// first, b must run first.
	e.Spawn("a", 100*Microsecond, func(th *Thread) {
		order = append(order, "a")
	})
	e.Spawn("b", 0, func(th *Thread) {
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Errorf("order = %v, want [b a]", order)
	}
}

func TestInterleavingByYield(t *testing.T) {
	e := NewEngine()
	var order []string
	mk := func(name string) func(*Thread) {
		return func(th *Thread) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				th.Advance(10 * Microsecond)
				th.Yield()
			}
		}
	}
	e.Spawn("a", 0, mk("a"))
	e.Spawn("b", 0, mk("b"))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a b a b a b"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn("t", Time(i%2)*Microsecond, func(th *Thread) {
				for j := 0; j < 4; j++ {
					order = append(order, i)
					th.Advance(Time(3+i) * Microsecond)
					th.Yield()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestResourceExclusion(t *testing.T) {
	e := NewEngine()
	cpu := &Resource{Name: "cpu0"}
	var finish []Time
	for i := 0; i < 2; i++ {
		e.Spawn("t", 0, func(th *Thread) {
			th.Bind(cpu)
			th.Advance(100 * Microsecond)
			finish = append(finish, th.Clock())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Second thread cannot start until the first has used the CPU for 100µs.
	if finish[0] != 100*Microsecond || finish[1] != 200*Microsecond {
		t.Errorf("finish times = %v, want [100µs 200µs]", finish)
	}
}

func TestResourceWaitIsNotUserTime(t *testing.T) {
	e := NewEngine()
	cpu := &Resource{Name: "cpu0"}
	var t2 *Thread
	t1 := e.Spawn("t1", 0, func(th *Thread) {
		th.Bind(cpu)
		th.Advance(100 * Microsecond)
	})
	t2 = e.Spawn("t2", 0, func(th *Thread) {
		th.Bind(cpu)
		th.Yield() // let t1 grab the cpu
		th.Advance(50 * Microsecond)
	})
	_ = t1
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if t2.UserTime() != 50*Microsecond {
		t.Errorf("t2 user time = %v, want 50µs (queue wait must not count)", t2.UserTime())
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine()
	var waiter *Thread
	var wokenAt Time
	waiter = e.Spawn("waiter", 0, func(th *Thread) {
		th.Block("event")
		wokenAt = th.Clock()
	})
	e.Spawn("waker", 0, func(th *Thread) {
		th.Advance(500 * Microsecond)
		waiter.Wake(th.Clock())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 500*Microsecond {
		t.Errorf("woken at %v, want 500µs", wokenAt)
	}
}

func TestWakeNonBlockedIsNoop(t *testing.T) {
	e := NewEngine()
	a := e.Spawn("a", 0, func(th *Thread) { th.Advance(Microsecond) })
	e.Spawn("b", 0, func(th *Thread) {
		a.Wake(100 * Second) // a is ready, not blocked: must not touch its clock
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Clock() != Microsecond {
		t.Errorf("a clock = %v, want 1µs", a.Clock())
	}
}

func TestJoin(t *testing.T) {
	e := NewEngine()
	var child *Thread
	child = e.Spawn("child", 0, func(th *Thread) {
		th.Advance(300 * Microsecond)
	})
	var after Time
	e.Spawn("parent", 0, func(th *Thread) {
		child.Join(th)
		after = th.Clock()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after != 300*Microsecond {
		t.Errorf("parent resumed at %v, want 300µs", after)
	}
}

func TestJoinAlreadyDone(t *testing.T) {
	e := NewEngine()
	child := e.Spawn("child", 0, func(th *Thread) { th.Advance(10 * Microsecond) })
	e.Spawn("parent", 50*Microsecond, func(th *Thread) {
		child.Join(th) // child finished long ago
		if th.Clock() != 50*Microsecond {
			t.Errorf("parent clock = %v, want unchanged 50µs", th.Clock())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", 0, func(th *Thread) {
		th.Block("never")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck(never)") {
		t.Errorf("deadlock report %q missing thread detail", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", 0, func(th *Thread) {
		panic("kaboom")
	})
	e.Spawn("bystander", 0, func(th *Thread) {
		for {
			th.Advance(Microsecond)
			th.Yield()
		}
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic error", err)
	}
}

func TestAbortTearsDownBlocked(t *testing.T) {
	e := NewEngine()
	blocked := e.Spawn("blocked", 0, func(th *Thread) { th.Block("forever") })
	e.Spawn("boom", 0, func(th *Thread) {
		th.Advance(Microsecond)
		panic("die")
	})
	if err := e.Run(); err == nil {
		t.Fatal("want error")
	}
	if blocked.State() != Done || blocked.Err() != ErrAborted {
		t.Errorf("blocked thread state=%v err=%v, want done/ErrAborted", blocked.State(), blocked.Err())
	}
}

func TestSysTimeAccounting(t *testing.T) {
	e := NewEngine()
	th := e.Spawn("t", 0, func(th *Thread) {
		th.Advance(10 * Microsecond)
		th.AdvanceSys(5 * Microsecond)
		th.Idle(100 * Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if th.UserTime() != 10*Microsecond || th.SysTime() != 5*Microsecond {
		t.Errorf("user=%v sys=%v, want 10µs/5µs", th.UserTime(), th.SysTime())
	}
	if th.Clock() != 115*Microsecond {
		t.Errorf("clock=%v, want 115µs", th.Clock())
	}
	if e.TotalSysTime() != 5*Microsecond {
		t.Errorf("TotalSysTime=%v, want 5µs", e.TotalSysTime())
	}
}

func TestSpawnFromThread(t *testing.T) {
	e := NewEngine()
	var inner *Thread
	e.Spawn("outer", 0, func(th *Thread) {
		th.Advance(10 * Microsecond)
		inner = e.Spawn("inner", th.Clock(), func(th2 *Thread) {
			th2.Advance(5 * Microsecond)
		})
		inner.Join(th)
		if th.Clock() != 15*Microsecond {
			t.Errorf("outer clock after join = %v, want 15µs", th.Clock())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", 0, func(th *Thread) { th.Advance(-1) })
	if err := e.Run(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v, want negative-advance panic", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestTraceHook(t *testing.T) {
	e := NewEngine()
	var switches int
	e.Trace = func(th *Thread) { switches++ }
	e.Spawn("a", 0, func(th *Thread) {
		th.Yield()
		th.Yield()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if switches != 3 {
		t.Errorf("switches = %d, want 3", switches)
	}
}

func TestTieBreakFIFO(t *testing.T) {
	// Two threads with identical clocks must alternate in spawn order.
	e := NewEngine()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("t", 0, func(th *Thread) {
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want [0 1 2]", order)
		}
	}
}
