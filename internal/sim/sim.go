// Package sim provides a deterministic discrete-event execution engine for
// virtual-time threads.
//
// Each simulated thread runs in its own goroutine, but the engine resumes
// exactly one thread at a time: always the ready thread with the smallest
// effective virtual clock (ties broken by yield order). The simulation is
// therefore single-threaded in effect — shared simulation state needs no
// locking — and completely deterministic for a given program.
//
// Threads advance their own clocks explicitly (Advance, AdvanceSys) and give
// up control explicitly (Yield, Block). A thread may be bound to an exclusive
// Resource (a simulated processor): while one thread runs on a resource, any
// other thread bound to it cannot start before the first yields, which models
// time-slicing without preemption.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"numasim/internal/simtrace"
)

// Time is a point in (or span of) virtual time, in nanoseconds.
//
//numalint:unit
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Ticks is a span of virtual time in seconds — the unit of every rendered
// table (the paper reports user/system seconds). It is a distinct type
// from Time (virtual nanoseconds) and from wall-clock measurements, so the
// numalint units analyzer can reject arithmetic that mixes scales.
//
//numalint:unit
type Ticks float64

// Ticks reports t rescaled to virtual seconds. The method is the blessed
// Time→Ticks boundary; converting Ticks(t) directly is a units violation.
func (t Time) Ticks() Ticks { return Ticks(float64(t) / float64(Second)) }

// String formats the time in the most readable unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// State is a thread's scheduling state.
//
//numalint:stateenum
type State int

// Thread states.
const (
	Ready State = iota
	Running
	Blocked
	Done
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrAborted is the error reported by threads torn down because another
// thread failed or the engine was stopped.
var ErrAborted = errors.New("sim: thread aborted")

// abortSignal unwinds a simulated thread's stack during engine teardown.
type abortSignal struct{}

// Resource is an exclusive unit of execution (a simulated processor). A
// thread bound to a Resource cannot begin running before the resource's
// previous occupant has yielded.
type Resource struct {
	Name string
	// ID is the resource's processor number as reported in trace events;
	// leave it zero for resources that are not processors.
	ID     int
	freeAt Time
}

// FreeAt reports the virtual time at which the resource next becomes free.
func (r *Resource) FreeAt() Time { return r.freeAt }

type resumeMsg struct {
	abort bool
}

// Thread is a simulated thread of control.
type Thread struct {
	engine *Engine
	id     int
	name   string
	state  State

	clock Time // thread-local virtual "now"
	user  Time // accumulated user time
	sys   Time // accumulated system time

	res *Resource // bound processor, may be nil

	seq    uint64 // yield order, for FIFO tie-breaking
	key    Time   // effective time when enqueued on the ready heap
	resume chan resumeMsg
	err    error

	joiners []*Thread
	blocked string // reason, for deadlock diagnostics
}

// ID returns the thread's engine-unique id.
//
//numalint:hotpath
func (t *Thread) ID() int { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// State returns the thread's scheduling state.
func (t *Thread) State() State { return t.state }

// Clock returns the thread's current virtual time.
//
//numalint:hotpath
func (t *Thread) Clock() Time { return t.clock }

// UserTime returns the accumulated user-mode virtual time.
func (t *Thread) UserTime() Time { return t.user }

// SysTime returns the accumulated system-mode virtual time.
func (t *Thread) SysTime() Time { return t.sys }

// Err returns the thread's terminal error, if any.
func (t *Thread) Err() error { return t.err }

// Resource returns the resource the thread is bound to, or nil.
func (t *Thread) Resource() *Resource { return t.res }

// Bind binds the thread to an exclusive resource, acquiring it immediately:
// if the resource is busy until some later virtual time, the thread idles
// until then. Rebinding models thread migration between processors.
func (t *Thread) Bind(r *Resource) {
	if t.res != nil && t.res.freeAt < t.clock {
		t.res.freeAt = t.clock
	}
	t.res = r
	if r != nil && r.freeAt > t.clock {
		t.clock = r.freeAt
	}
}

// Advance moves the thread's clock forward by d and accounts it as user time.
//
//numalint:hotpath
func (t *Thread) Advance(d Time) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	t.clock += d
	t.user += d
}

// AdvanceSys moves the thread's clock forward by d and accounts it as system
// time (kernel overhead such as fault handling and page copying).
//
//numalint:hotpath
func (t *Thread) AdvanceSys(d Time) {
	if d < 0 {
		panic("sim: negative AdvanceSys")
	}
	t.clock += d
	t.sys += d
}

// Idle moves the thread's clock forward without accounting user or system
// time (e.g. waiting for a processor or an I/O device).
func (t *Thread) Idle(d Time) {
	if d < 0 {
		panic("sim: negative Idle")
	}
	t.clock += d
}

// Yield returns control to the engine, letting other threads whose effective
// clocks are not later than this thread's run first.
func (t *Thread) Yield() {
	t.mustBeRunning("Yield")
	t.state = Ready
	t.seq = t.engine.nextSeq()
	t.engine.readyPush(t)
	t.park()
}

// Block suspends the thread until another thread calls Wake. The reason
// string appears in deadlock reports.
func (t *Thread) Block(reason string) {
	t.mustBeRunning("Block")
	t.state = Blocked
	t.blocked = reason
	t.park()
}

// Wake makes a blocked thread ready again, no earlier than virtual time at.
// Waking a thread that is not blocked is a no-op.
func (t *Thread) Wake(at Time) {
	if t.state != Blocked {
		return
	}
	t.state = Ready
	t.blocked = ""
	if t.clock < at {
		t.clock = at
	}
	t.seq = t.engine.nextSeq()
	t.engine.readyPush(t)
}

// Join blocks the calling thread until t has finished, then advances the
// caller's clock to at least t's final clock.
func (t *Thread) Join(caller *Thread) {
	if t == caller {
		panic("sim: thread joining itself")
	}
	if t.state == Done {
		if caller.clock < t.clock {
			caller.clock = t.clock
		}
		return
	}
	t.joiners = append(t.joiners, caller)
	caller.Block("join " + t.name)
	if caller.clock < t.clock {
		caller.clock = t.clock
	}
}

func (t *Thread) mustBeRunning(op string) {
	if t.engine.running != t {
		panic(fmt.Sprintf("sim: %s called from thread %q which is not running", op, t.name))
	}
}

// park hands control back to the engine and waits to be resumed.
func (t *Thread) park() {
	e := t.engine
	e.park <- t
	msg := <-t.resume
	if msg.abort {
		panic(abortSignal{})
	}
}

// Engine schedules simulated threads in deterministic virtual-time order.
type Engine struct {
	threads []*Thread
	ready   []*Thread // min-heap on (key, seq); key lower-bounds effTime
	running *Thread
	park    chan *Thread
	nextID  int
	seq     uint64
	started bool
	// linearPick forces the O(n) ready scan instead of the heap; the
	// scheduler-equivalence property test uses it to drive both
	// implementations on identical programs.
	linearPick bool
	// Trace, if non-nil, is called on every context switch with the thread
	// about to run.
	Trace func(t *Thread)
	// Bus, if non-nil, receives structured dispatch and execution-span
	// events. The engine only emits while a sink is attached.
	Bus *simtrace.Bus
	// StallLimit is the watchdog threshold: after this many consecutive
	// dispatches without any virtual-time progress the run is declared a
	// livelock and torn down with a StallError. NewEngine sets
	// DefaultStallLimit; a non-positive value disables the watchdog.
	StallLimit int

	stallRun int         // consecutive no-progress dispatches
	frontier Time        // high-water mark of dispatch virtual time
	stop     atomic.Bool // set by Stop, checked at each dispatch boundary
	dumpers  []func() DumpSection
}

// DefaultStallLimit bounds consecutive zero-progress dispatches. Real
// workloads charge virtual time on almost every dispatch, so a run that
// spins this long without the clock moving is livelocked.
const DefaultStallLimit = 1 << 20

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{park: make(chan *Thread), StallLimit: DefaultStallLimit}
}

// Stop asks the engine to abandon the run at the next dispatch boundary,
// aborting every live thread and returning a StoppedError from Run. It is
// the one engine entry point that is safe to call from another goroutine
// (a wall-clock watchdog); everything else assumes the simulation's
// single-threaded discipline.
func (e *Engine) Stop() { e.stop.Store(true) }

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// Spawn creates a new simulated thread that will execute fn when scheduled.
// The thread's initial clock is start. Spawn may be called before Run or from
// within a running thread.
func (e *Engine) Spawn(name string, start Time, fn func(*Thread)) *Thread {
	t := &Thread{
		engine: e,
		id:     e.nextID,
		name:   name,
		state:  Ready,
		clock:  start,
		seq:    e.nextSeq(),
		resume: make(chan resumeMsg),
	}
	e.nextID++
	e.threads = append(e.threads, t)
	e.readyPush(t)
	go t.top(fn)
	return t
}

// top is the goroutine body wrapping a thread's function.
func (t *Thread) top(fn func(*Thread)) {
	msg := <-t.resume
	if msg.abort {
		t.finish(ErrAborted)
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				t.finish(ErrAborted)
				return
			}
			// Wrap error panics so callers can unwrap typed failures
			// (e.g. numa.ProtocolViolationError) through engine.Run.
			if err, ok := r.(error); ok {
				t.finish(fmt.Errorf("sim: thread %q panicked: %w", t.name, err))
				return
			}
			t.finish(fmt.Errorf("sim: thread %q panicked: %v", t.name, r))
			return
		}
		t.finish(nil)
	}()
	fn(t)
}

func (t *Thread) finish(err error) {
	t.state = Done
	t.err = err
	if t.res != nil && t.res.freeAt < t.clock {
		t.res.freeAt = t.clock
	}
	for _, j := range t.joiners {
		j.Wake(t.clock)
	}
	t.joiners = nil
	t.engine.park <- t
}

// effTime is the earliest virtual time at which t could actually run.
func (t *Thread) effTime() Time {
	if t.res != nil && t.res.freeAt > t.clock {
		return t.res.freeAt
	}
	return t.clock
}

// pick selects the ready thread with the smallest (effective time, seq).
//
// The ready threads live in a binary min-heap ordered by (key, seq), where
// key is the thread's effective time captured when it was enqueued. A
// ready thread's own clock never changes, but its resource's freeAt can
// grow while it waits, so the stored key is a lower bound on the true
// effective time. pick therefore revalidates the root: if its effective
// time has grown past its key, the key is refreshed and the entry sifted
// down, and the scan repeats. Because every key lower-bounds its thread's
// true effective time, a root whose key is exact is the global minimum,
// and the (effTime, seq) order is identical to the former O(n) scan.
func (e *Engine) pick() *Thread {
	if e.linearPick {
		return e.pickLinear()
	}
	for len(e.ready) > 0 {
		t := e.ready[0]
		if t.state != Ready {
			e.readyPop() // entry gone stale during teardown
			continue
		}
		if et := t.effTime(); et > t.key {
			t.key = et
			e.readyFix(0)
			continue
		}
		e.readyPop()
		return t
	}
	return nil
}

// pickLinear is the original O(n) scan over all threads, kept as the
// reference implementation for the scheduler-equivalence property test.
func (e *Engine) pickLinear() *Thread {
	var best *Thread
	var bestTime Time
	for _, t := range e.threads {
		if t.state != Ready {
			continue
		}
		et := t.effTime()
		if best == nil || et < bestTime || (et == bestTime && t.seq < best.seq) {
			best, bestTime = t, et
		}
	}
	return best
}

// readyPush enqueues a thread that just became Ready.
func (e *Engine) readyPush(t *Thread) {
	if e.linearPick {
		return
	}
	t.key = t.effTime()
	e.ready = append(e.ready, t)
	e.readyUp(len(e.ready) - 1)
}

// readyPop removes the heap root.
func (e *Engine) readyPop() {
	last := len(e.ready) - 1
	e.ready[0] = e.ready[last]
	e.ready[last] = nil
	e.ready = e.ready[:last]
	if last > 0 {
		e.readyFix(0)
	}
}

// readyLess orders heap entries by (key, seq).
func (e *Engine) readyLess(i, j int) bool {
	a, b := e.ready[i], e.ready[j]
	return a.key < b.key || (a.key == b.key && a.seq < b.seq)
}

// readyUp restores the heap invariant from leaf i toward the root.
func (e *Engine) readyUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.readyLess(i, parent) {
			break
		}
		e.ready[i], e.ready[parent] = e.ready[parent], e.ready[i]
		i = parent
	}
}

// readyFix restores the heap invariant from node i toward the leaves.
func (e *Engine) readyFix(i int) {
	n := len(e.ready)
	for {
		min := i
		if l := 2*i + 1; l < n && e.readyLess(l, min) {
			min = l
		}
		if r := 2*i + 2; r < n && e.readyLess(r, min) {
			min = r
		}
		if min == i {
			return
		}
		e.ready[i], e.ready[min] = e.ready[min], e.ready[i]
		i = min
	}
}

// Run executes the simulation until every thread has finished. It returns
// the first thread error encountered (aborting all other threads), or a
// deadlock error if blocked threads remain with nothing ready.
func (e *Engine) Run() error {
	if e.started {
		return errors.New("sim: engine already run")
	}
	e.started = true
	// A batching sink may hold buffered events; deliver them however the
	// loop exits so post-run readers always see the complete stream.
	defer e.Bus.Flush()
	for {
		if e.stop.Load() {
			err := &StoppedError{Dump: e.DumpState()}
			e.abort()
			return err
		}
		t := e.pick()
		if t == nil {
			if stuck := e.blockedList(); len(stuck) > 0 {
				err := &DeadlockError{Blocked: stuck, Dump: e.DumpState()}
				e.abort()
				return err
			}
			return nil
		}
		// Waiting for the processor is idle time, not user time.
		if et := t.effTime(); t.clock < et {
			t.clock = et
		}
		t.state = Running
		e.running = t
		if e.Trace != nil {
			e.Trace(t)
		}
		spanStart := t.clock
		if e.Bus.Enabled() {
			e.Bus.Emit(simtrace.Event{
				Kind: simtrace.KindDispatch, Proc: resourceID(t.res),
				Thread: int32(t.id), Time: int64(t.clock), Page: -1,
			})
		}
		t.resume <- resumeMsg{}
		parked := <-e.park
		e.running = nil
		if e.Bus.Enabled() && parked.clock > spanStart {
			e.Bus.Emit(simtrace.Event{
				Kind: simtrace.KindSpan, Proc: resourceID(parked.res),
				Thread: int32(parked.id), Time: int64(spanStart),
				Dur: int64(parked.clock - spanStart), Page: -1,
				Label: parked.name,
			})
		}
		if parked.res != nil && parked.res.freeAt < parked.clock {
			parked.res.freeAt = parked.clock
		}
		if parked.state == Done && parked.err != nil && parked.err != ErrAborted {
			err := parked.err
			e.abort()
			return err
		}
		// Stall watchdog: a dispatch makes progress when the thread's clock
		// advanced or the dispatch time pushed past the frontier. A long run
		// of zero-progress dispatches at a frozen virtual time is a livelock
		// (threads yielding to each other without charging any time), which
		// the deadlock check above can never catch.
		if parked.clock > spanStart || spanStart > e.frontier {
			e.stallRun = 0
			if parked.clock > e.frontier {
				e.frontier = parked.clock
			} else if spanStart > e.frontier {
				e.frontier = spanStart
			}
		} else {
			e.stallRun++
			if e.StallLimit > 0 && e.stallRun >= e.StallLimit {
				err := &StallError{At: spanStart, Dispatches: e.stallRun, Dump: e.DumpState()}
				e.abort()
				return err
			}
		}
	}
}

// resourceID maps a bound resource to its trace processor number (-1 for
// unbound threads).
func resourceID(r *Resource) int32 {
	if r == nil {
		return -1
	}
	return int32(r.ID)
}

// blockedList describes all blocked threads for deadlock reports, one
// "name(reason)" entry per thread, sorted.
func (e *Engine) blockedList() []string {
	var names []string
	for _, t := range e.threads {
		if t.state == Blocked {
			names = append(names, fmt.Sprintf("%s(%s)", t.name, t.blocked))
		}
	}
	sort.Strings(names)
	return names
}

// abort tears down every live thread so their goroutines exit.
func (e *Engine) abort() {
	for _, t := range e.threads {
		if t.state == Ready || t.state == Blocked {
			t.state = Running
			t.resume <- resumeMsg{abort: true}
			<-e.park
		}
	}
}

// Threads returns all threads ever spawned, in creation order.
func (e *Engine) Threads() []*Thread { return e.threads }

// TotalUserTime sums user time across all threads — the paper's "total user
// time across all processors" (T in §3.1).
func (e *Engine) TotalUserTime() Time {
	var sum Time
	for _, t := range e.threads {
		sum += t.user
	}
	return sum
}

// TotalSysTime sums system time across all threads (S in §3.3).
func (e *Engine) TotalSysTime() Time {
	var sum Time
	for _, t := range e.threads {
		sum += t.sys
	}
	return sum
}
