package sim

import (
	"strconv"
	"testing"
)

// benchPick measures the engine's pick cost with n always-ready threads,
// under the heap-based ready queue or the reference linear scan.
func benchPick(b *testing.B, n int, linear bool) {
	e := NewEngine()
	e.linearPick = linear
	iters := b.N/n + 1
	for i := 0; i < n; i++ {
		e.Spawn("t", 0, func(th *Thread) {
			for j := 0; j < iters; j++ {
				th.Advance(Microsecond)
				th.Yield() // re-enqueue; every resume is one pick
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPick compares the indexed min-heap ready queue against the
// original O(n) scan it replaced, as the ready-thread count grows.
func BenchmarkPick(b *testing.B) {
	for _, n := range []int{1, 64, 1024} {
		n := n
		b.Run("heap/"+strconv.Itoa(n), func(b *testing.B) { benchPick(b, n, false) })
		b.Run("linear/"+strconv.Itoa(n), func(b *testing.B) { benchPick(b, n, true) })
	}
}
