package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUserTimeConservation: total user time equals the sum of all Advance
// calls, no matter how threads interleave, block or share processors.
func TestUserTimeConservation(t *testing.T) {
	prop := func(seed int64, nThreads uint8, nOps uint8) bool {
		n := int(nThreads)%5 + 1
		ops := int(nOps)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		cpu := &Resource{Name: "cpu"}
		var want Time
		plans := make([][]Time, n)
		for i := range plans {
			for j := 0; j < ops; j++ {
				d := Time(rng.Intn(1000)) * Microsecond
				plans[i] = append(plans[i], d)
				want += d
			}
		}
		for i := 0; i < n; i++ {
			i := i
			e.Spawn("t", Time(rng.Intn(100))*Microsecond, func(th *Thread) {
				if i%2 == 0 {
					th.Bind(cpu) // half the threads share one processor
				}
				for _, d := range plans[i] {
					th.Advance(d)
					if d%3 == 0 {
						th.Yield()
					}
					if d%7 == 0 {
						th.Idle(d / 2)
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.TotalUserTime() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestClockMonotonic: a thread's clock never decreases across any sequence
// of engine operations.
func TestClockMonotonic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		cpus := []*Resource{{Name: "a"}, {Name: "b"}}
		ok := true
		for i := 0; i < 3; i++ {
			e.Spawn("t", 0, func(th *Thread) {
				last := th.Clock()
				check := func() {
					if th.Clock() < last {
						ok = false
					}
					last = th.Clock()
				}
				for j := 0; j < 30; j++ {
					switch rng.Intn(4) {
					case 0:
						th.Advance(Time(rng.Intn(500)) * Microsecond)
					case 1:
						th.Yield()
					case 2:
						th.Bind(cpus[rng.Intn(2)])
					case 3:
						th.AdvanceSys(Time(rng.Intn(200)) * Microsecond)
					}
					check()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// scheduleTrace runs a randomized program of Spawn/Advance/Yield/Block/
// Wake/Bind/Join operations on an engine and records the exact schedule:
// the (thread id, clock) pair at every context switch, plus each thread's
// final clock and user time and the run's error. The program is fully
// determined by the seed, so two engines given the same seed execute the
// same program.
func scheduleTrace(seed int64, linear bool) (schedule []int64, err error) {
	rng := rand.New(rand.NewSource(seed))
	e := NewEngine()
	e.linearPick = linear
	cpus := []*Resource{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	e.Trace = func(t *Thread) {
		schedule = append(schedule, int64(t.id), int64(t.clock))
	}
	n := rng.Intn(6) + 2
	threads := make([]*Thread, n)
	body := func(i int) func(*Thread) {
		return func(th *Thread) {
			ops := rng.Intn(30) + 5
			for j := 0; j < ops; j++ {
				switch rng.Intn(10) {
				case 0, 1, 2:
					th.Advance(Time(rng.Intn(700)) * Microsecond)
				case 3:
					th.AdvanceSys(Time(rng.Intn(200)) * Microsecond)
				case 4:
					th.Idle(Time(rng.Intn(100)) * Microsecond)
				case 5, 6:
					th.Yield()
				case 7:
					th.Bind(cpus[rng.Intn(len(cpus))])
				case 8:
					// Wake a random peer (a no-op unless it is blocked).
					if p := threads[rng.Intn(n)]; p != nil && p != th {
						p.Wake(th.Clock())
					}
				case 9:
					// Block; a peer's case-8 wake (or a deadlock, identical
					// in both engines) resolves it.
					th.Block("rnd")
				}
			}
			// Wake everyone on the way out so most runs terminate cleanly.
			for _, p := range threads {
				if p != nil && p != th {
					p.Wake(th.Clock())
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		threads[i] = e.Spawn(fmt.Sprintf("t%d", i), Time(rng.Intn(50))*Microsecond, body(i))
	}
	err = e.Run()
	for _, t := range threads {
		schedule = append(schedule, int64(t.Clock()), int64(t.UserTime()), int64(t.SysTime()))
	}
	return schedule, err
}

// TestPickHeapMatchesLinearScan: the heap-based ready queue must produce
// exactly the schedule of the original O(n) scan — same threads resumed in
// the same order at the same clocks — on randomized programs exercising
// Spawn, Yield, Block, Wake and Bind. Deadlocking programs must deadlock
// identically.
func TestPickHeapMatchesLinearScan(t *testing.T) {
	prop := func(seed int64) bool {
		heapSched, heapErr := scheduleTrace(seed, false)
		linSched, linErr := scheduleTrace(seed, true)
		if len(heapSched) != len(linSched) {
			t.Logf("seed %d: schedule lengths differ: heap %d, linear %d", seed, len(heapSched), len(linSched))
			return false
		}
		for i := range heapSched {
			if heapSched[i] != linSched[i] {
				t.Logf("seed %d: schedules diverge at %d: heap %d, linear %d", seed, i, heapSched[i], linSched[i])
				return false
			}
		}
		heapMsg, linMsg := "", ""
		if heapErr != nil {
			heapMsg = heapErr.Error()
		}
		if linErr != nil {
			linMsg = linErr.Error()
		}
		if heapMsg != linMsg {
			t.Logf("seed %d: errors differ: heap %q, linear %q", seed, heapMsg, linMsg)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestResourceSerialization: two threads bound to one resource never
// overlap — the sum of their busy times never exceeds the final clock.
func TestResourceSerialization(t *testing.T) {
	e := NewEngine()
	cpu := &Resource{Name: "cpu"}
	var busy Time
	var maxClock Time
	for i := 0; i < 4; i++ {
		e.Spawn("t", 0, func(th *Thread) {
			th.Bind(cpu)
			for j := 0; j < 10; j++ {
				th.Advance(100 * Microsecond)
				busy += 100 * Microsecond
				th.Yield()
			}
			if th.Clock() > maxClock {
				maxClock = th.Clock()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if busy > maxClock {
		t.Errorf("busy time %v exceeds elapsed %v: threads overlapped on one CPU", busy, maxClock)
	}
	if maxClock != 4*10*100*Microsecond {
		t.Errorf("elapsed %v, want exactly the serialized work", maxClock)
	}
}
