package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUserTimeConservation: total user time equals the sum of all Advance
// calls, no matter how threads interleave, block or share processors.
func TestUserTimeConservation(t *testing.T) {
	prop := func(seed int64, nThreads uint8, nOps uint8) bool {
		n := int(nThreads)%5 + 1
		ops := int(nOps)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		cpu := &Resource{Name: "cpu"}
		var want Time
		plans := make([][]Time, n)
		for i := range plans {
			for j := 0; j < ops; j++ {
				d := Time(rng.Intn(1000)) * Microsecond
				plans[i] = append(plans[i], d)
				want += d
			}
		}
		for i := 0; i < n; i++ {
			i := i
			e.Spawn("t", Time(rng.Intn(100))*Microsecond, func(th *Thread) {
				if i%2 == 0 {
					th.Bind(cpu) // half the threads share one processor
				}
				for _, d := range plans[i] {
					th.Advance(d)
					if d%3 == 0 {
						th.Yield()
					}
					if d%7 == 0 {
						th.Idle(d / 2)
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.TotalUserTime() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestClockMonotonic: a thread's clock never decreases across any sequence
// of engine operations.
func TestClockMonotonic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		cpus := []*Resource{{Name: "a"}, {Name: "b"}}
		ok := true
		for i := 0; i < 3; i++ {
			e.Spawn("t", 0, func(th *Thread) {
				last := th.Clock()
				check := func() {
					if th.Clock() < last {
						ok = false
					}
					last = th.Clock()
				}
				for j := 0; j < 30; j++ {
					switch rng.Intn(4) {
					case 0:
						th.Advance(Time(rng.Intn(500)) * Microsecond)
					case 1:
						th.Yield()
					case 2:
						th.Bind(cpus[rng.Intn(2)])
					case 3:
						th.AdvanceSys(Time(rng.Intn(200)) * Microsecond)
					}
					check()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestResourceSerialization: two threads bound to one resource never
// overlap — the sum of their busy times never exceeds the final clock.
func TestResourceSerialization(t *testing.T) {
	e := NewEngine()
	cpu := &Resource{Name: "cpu"}
	var busy Time
	var maxClock Time
	for i := 0; i < 4; i++ {
		e.Spawn("t", 0, func(th *Thread) {
			th.Bind(cpu)
			for j := 0; j < 10; j++ {
				th.Advance(100 * Microsecond)
				busy += 100 * Microsecond
				th.Yield()
			}
			if th.Clock() > maxClock {
				maxClock = th.Clock()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if busy > maxClock {
		t.Errorf("busy time %v exceeds elapsed %v: threads overlapped on one CPU", busy, maxClock)
	}
	if maxClock != 4*10*100*Microsecond {
		t.Errorf("elapsed %v, want exactly the serialized work", maxClock)
	}
}
