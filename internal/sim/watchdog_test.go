package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestDeadlockErrorIsTyped: a total deadlock returns a *DeadlockError
// carrying the sorted blocked-thread list and a full state dump, and the
// engine still tears every thread down cleanly afterwards.
func TestDeadlockErrorIsTyped(t *testing.T) {
	e := NewEngine()
	b1 := e.Spawn("writer", 0, func(th *Thread) { th.Block("page lock") })
	b2 := e.Spawn("reader", 0, func(th *Thread) {
		th.Advance(Microsecond)
		th.Block("barrier")
	})
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %#v, want *DeadlockError", err)
	}
	want := []string{"reader(barrier)", "writer(page lock)"}
	if len(dl.Blocked) != 2 || dl.Blocked[0] != want[0] || dl.Blocked[1] != want[1] {
		t.Errorf("Blocked = %v, want %v (sorted)", dl.Blocked, want)
	}
	if dl.Dump == nil {
		t.Fatal("deadlock error carries no state dump")
	}
	r := dl.Dump.Render()
	for _, frag := range []string{`blocked on "page lock"`, `blocked on "barrier"`, "threads (2)"} {
		if !strings.Contains(r, frag) {
			t.Errorf("dump missing %q:\n%s", frag, r)
		}
	}
	// Clean teardown: both threads finished with the abort sentinel, so a
	// -race run proves no goroutine is left parked on the engine.
	for _, th := range []*Thread{b1, b2} {
		if th.State() != Done || th.Err() != ErrAborted {
			t.Errorf("thread %s state=%v err=%v, want done/ErrAborted", th.Name(), th.State(), th.Err())
		}
	}
}

// TestStallWatchdog: threads that keep yielding without charging virtual
// time are a livelock the deadlock check can never see; the stall
// watchdog must kill the run with a typed error and a dump, and abort
// innocent blocked bystanders.
func TestStallWatchdog(t *testing.T) {
	e := NewEngine()
	e.StallLimit = 64
	e.Spawn("spinner", 0, func(th *Thread) {
		for {
			th.Yield()
		}
	})
	bystander := e.Spawn("bystander", 0, func(th *Thread) { th.Block("forever") })
	err := e.Run()
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("err = %#v, want *StallError", err)
	}
	if st.Dispatches < 64 {
		t.Errorf("Dispatches = %d, want >= StallLimit", st.Dispatches)
	}
	if st.At != 0 {
		t.Errorf("At = %v, want the frozen virtual time 0", st.At)
	}
	if st.Dump == nil || !strings.Contains(st.Dump.Render(), "spinner") {
		t.Error("stall dump missing the spinning thread")
	}
	if bystander.State() != Done || bystander.Err() != ErrAborted {
		t.Errorf("bystander state=%v err=%v, want done/ErrAborted", bystander.State(), bystander.Err())
	}
}

// TestStallWatchdogDisabled: a non-positive StallLimit turns the
// watchdog off; a finite yield storm then completes normally.
func TestStallWatchdogDisabled(t *testing.T) {
	e := NewEngine()
	e.StallLimit = 0
	e.Spawn("spinner", 0, func(th *Thread) {
		for i := 0; i < 3*DefaultStallLimit/2; i++ {
			th.Yield()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("disabled watchdog still fired: %v", err)
	}
}

// TestProgressResetsStallCounter: real virtual-time progress between
// yield bursts must keep the watchdog quiet.
func TestProgressResetsStallCounter(t *testing.T) {
	e := NewEngine()
	e.StallLimit = 64
	e.Spawn("bursty", 0, func(th *Thread) {
		for burst := 0; burst < 8; burst++ {
			for i := 0; i < 48; i++ { // under the limit per burst
				th.Yield()
			}
			th.Advance(Microsecond) // progress: counter resets
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("watchdog fired despite progress: %v", err)
	}
}

// TestStopAbandonsRun: Engine.Stop (the harness supervisor's wall-clock
// watchdog hook) makes Run return a typed StoppedError with a dump and
// abort every thread at the next dispatch boundary.
func TestStopAbandonsRun(t *testing.T) {
	e := NewEngine()
	th := e.Spawn("worker", 0, func(th *Thread) {
		for {
			th.Advance(Microsecond)
			th.Yield()
		}
	})
	e.Stop() // before Run: the first dispatch boundary sees it
	err := e.Run()
	var stopped *StoppedError
	if !errors.As(err, &stopped) {
		t.Fatalf("err = %#v, want *StoppedError", err)
	}
	if stopped.Dump == nil || !strings.Contains(stopped.Dump.Render(), "worker") {
		t.Error("stop dump missing thread table")
	}
	if th.State() != Done || th.Err() != ErrAborted {
		t.Errorf("worker state=%v err=%v, want done/ErrAborted", th.State(), th.Err())
	}
}

// TestDumpSections: subsystem sections registered with AddDumpSection
// render after the engine's own tables, in registration order.
func TestDumpSections(t *testing.T) {
	e := NewEngine()
	e.AddDumpSection(func() DumpSection { return DumpSection{Title: "NUMA directory", Body: "live pages: 0\n"} })
	e.AddDumpSection(func() DumpSection { return DumpSection{Title: "second", Body: "no newline"} })
	e.Spawn("t", 0, func(th *Thread) { th.Advance(Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	r := e.DumpState().Render()
	i, j := strings.Index(r, "--- NUMA directory ---"), strings.Index(r, "--- second ---")
	if i < 0 || j < 0 || i > j {
		t.Errorf("sections missing or out of order:\n%s", r)
	}
	if !strings.HasSuffix(r, "no newline\n") {
		t.Errorf("render must terminate unterminated sections:\n%q", r)
	}
	if !strings.Contains(r, "=== machine state at 1.000ms ===") {
		t.Errorf("dump header missing frontier time:\n%s", r)
	}
}
