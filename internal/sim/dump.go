package sim

import (
	"fmt"
	"strings"
)

// ThreadDump is one thread's row in a StateDump.
type ThreadDump struct {
	ID        int
	Name      string
	State     State
	BlockedOn string // block reason, empty unless State is Blocked
	Clock     Time
	User      Time
	Sys       Time
	Resource  string // bound resource name, empty for unbound threads
}

// ResourceDump is one exclusive resource's row in a StateDump.
type ResourceDump struct {
	Name   string
	ID     int
	FreeAt Time
}

// DumpSection is an extra section of a state dump contributed by a
// subsystem outside the engine (for example the NUMA manager's directory
// summary). Sections render after the engine's own thread and resource
// tables, in registration order.
type DumpSection struct {
	Title string
	Body  string
}

// StateDump is a structured snapshot of the whole simulated machine:
// every thread's scheduling state and clocks, every bound resource, and
// any registered subsystem sections. The engine produces one whenever a
// run dies abnormally (deadlock, stall, external stop), and callers can
// take one on demand with Engine.DumpState for crash forensics.
type StateDump struct {
	Now       Time // virtual-time frontier: the largest thread clock
	Threads   []ThreadDump
	Resources []ResourceDump
	Sections  []DumpSection
}

// AddDumpSection registers a callback that contributes a section to every
// future StateDump. Callbacks run only while the simulation is quiescent
// (no thread running), so they may read simulation state freely.
func (e *Engine) AddDumpSection(fn func() DumpSection) {
	e.dumpers = append(e.dumpers, fn)
}

// DumpState snapshots the machine. Threads appear in creation order and
// resources in first-binding order, so the dump is deterministic for a
// deterministic run.
func (e *Engine) DumpState() *StateDump {
	d := &StateDump{}
	seen := make(map[*Resource]bool)
	for _, t := range e.threads {
		td := ThreadDump{
			ID: t.id, Name: t.name, State: t.state, BlockedOn: t.blocked,
			Clock: t.clock, User: t.user, Sys: t.sys,
		}
		if t.res != nil {
			td.Resource = t.res.Name
			if !seen[t.res] {
				seen[t.res] = true
				d.Resources = append(d.Resources, ResourceDump{
					Name: t.res.Name, ID: t.res.ID, FreeAt: t.res.freeAt,
				})
			}
		}
		if t.clock > d.Now {
			d.Now = t.clock
		}
		d.Threads = append(d.Threads, td)
	}
	for _, fn := range e.dumpers {
		d.Sections = append(d.Sections, fn())
	}
	return d
}

// Render formats the dump as the plain-text block written into repro
// bundles and failure reports.
func (d *StateDump) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== machine state at %v ===\n", d.Now)
	fmt.Fprintf(&b, "threads (%d):\n", len(d.Threads))
	for _, t := range d.Threads {
		fmt.Fprintf(&b, "  [%3d] %-16s %-8s clock=%-12v user=%-12v sys=%-12v",
			t.ID, t.Name, t.State, t.Clock, t.User, t.Sys)
		if t.Resource != "" {
			fmt.Fprintf(&b, " on %s", t.Resource)
		}
		if t.BlockedOn != "" {
			fmt.Fprintf(&b, " blocked on %q", t.BlockedOn)
		}
		b.WriteByte('\n')
	}
	if len(d.Resources) > 0 {
		fmt.Fprintf(&b, "resources (%d):\n", len(d.Resources))
		for _, r := range d.Resources {
			fmt.Fprintf(&b, "  %-8s free at %v\n", r.Name, r.FreeAt)
		}
	}
	for _, s := range d.Sections {
		fmt.Fprintf(&b, "--- %s ---\n%s", s.Title, s.Body)
		if !strings.HasSuffix(s.Body, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// DeadlockError reports total deadlock: no thread is runnable but blocked
// threads remain. It carries a full machine-state dump taken before the
// engine tore the threads down.
type DeadlockError struct {
	Blocked []string // "name(reason)" per blocked thread, sorted
	Dump    *StateDump
}

func (e *DeadlockError) Error() string {
	return "sim: deadlock, blocked threads: " + strings.Join(e.Blocked, ", ")
}

// StallError reports a virtual-time stall: the engine kept dispatching
// runnable threads, but virtual time stopped advancing for StallLimit
// consecutive dispatches (a livelock, typically a thread yielding in a
// tight loop without charging any time).
type StallError struct {
	At         Time // the frozen virtual time
	Dispatches int  // consecutive dispatches without progress
	Dump       *StateDump
}

func (e *StallError) Error() string {
	return fmt.Sprintf("sim: stall, %d consecutive dispatches without virtual-time progress at %v",
		e.Dispatches, e.At)
}

// StoppedError reports that the run was abandoned because Engine.Stop was
// called (typically by a wall-clock watchdog in the harness supervisor).
type StoppedError struct {
	Dump *StateDump
}

func (e *StoppedError) Error() string {
	return "sim: engine stopped by watchdog"
}
