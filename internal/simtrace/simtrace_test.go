package simtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilBusIsDisabledAndSafe(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus reports Enabled")
	}
	b.Emit(Event{Kind: KindAction}) // must not panic
	if b.Sink() != nil {
		t.Fatal("nil bus has a sink")
	}
}

func TestBusAttachDetach(t *testing.T) {
	b := NewBus()
	if b.Enabled() {
		t.Fatal("fresh bus reports Enabled")
	}
	b.Emit(Event{Kind: KindAction}) // dropped, must not panic

	var l ListSink
	b.Attach(&l)
	if !b.Enabled() {
		t.Fatal("bus with sink reports disabled")
	}
	b.Emit(Event{Kind: KindAction, Page: 3})
	b.Attach(nil)
	if b.Enabled() {
		t.Fatal("detached bus reports Enabled")
	}
	b.Emit(Event{Kind: KindAction, Page: 4})
	if len(l.Events()) != 1 || l.Events()[0].Page != 3 {
		t.Fatalf("want exactly the one event emitted while attached, got %v", l.Events())
	}
}

func TestCountingSink(t *testing.T) {
	var c CountingSink
	for i := 0; i < 5; i++ {
		c.Emit(Event{Kind: KindAction})
	}
	c.Emit(Event{Kind: KindSpan})
	if got := c.Count(KindAction); got != 5 {
		t.Fatalf("Count(KindAction) = %d, want 5", got)
	}
	if got := c.Count(KindSpan); got != 1 {
		t.Fatalf("Count(KindSpan) = %d, want 1", got)
	}
	if got := c.Count(KindPin); got != 0 {
		t.Fatalf("Count(KindPin) = %d, want 0", got)
	}
	if got := c.Total(); got != 6 {
		t.Fatalf("Total() = %d, want 6", got)
	}
	r := c.Render()
	if !strings.Contains(r, "action") || !strings.Contains(r, "span") {
		t.Fatalf("Render missing kinds:\n%s", r)
	}
	if strings.Contains(r, "pin") {
		t.Fatalf("Render includes zero-count kind:\n%s", r)
	}
}

func TestRingSinkWraparound(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KindAction, Time: int64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Time != want {
			t.Fatalf("event %d has time %d, want %d (oldest-first)", i, ev.Time, want)
		}
	}
}

func TestRingSinkPartial(t *testing.T) {
	r := NewRingSink(8)
	for i := 0; i < 3; i++ {
		r.Emit(Event{Time: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Time != 0 || evs[2].Time != 2 {
		t.Fatalf("partial ring contents wrong: %v", evs)
	}
}

func TestTee(t *testing.T) {
	var a, b ListSink
	s := Tee(&a, &b)
	s.Emit(Event{Kind: KindPin, Page: 7})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("tee did not fan out: %d, %d", len(a.Events()), len(b.Events()))
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Kind: KindStateChange, Proc: 2, Thread: -1, Page: 5, Time: 1500, Arg: 3, Arg2: 1, Label: "global-writable"}
	s := ev.String()
	for _, want := range []string{"state-change", "cpu2", "page5", "1->3", "global-writable"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "th-1") {
		t.Fatalf("String() = %q renders absent thread", s)
	}
}

func TestFormatEvents(t *testing.T) {
	out := FormatEvents([]Event{
		{Kind: KindPageCreated, Page: 1, Proc: -1, Thread: -1},
		{Kind: KindPin, Page: 1, Proc: 0, Thread: -1, Arg: 4},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d:\n%s", len(lines), out)
	}
}

func TestWriteChromeValidAndDeterministic(t *testing.T) {
	events := []Event{
		{Kind: KindPageCreated, Page: 0, Proc: -1, Thread: -1, Time: 0},
		{Kind: KindSchedAssign, Proc: 1, Thread: 2, Time: 100, Label: "worker0"},
		{Kind: KindSpan, Proc: 1, Thread: 2, Time: 100, Dur: 2000, Label: "worker0"},
		{Kind: KindFaultExit, Proc: 1, Thread: 2, Time: 3000, Dur: 500, Page: 0, Arg: 0x1000, Arg2: 1},
		{Kind: KindDecision, Proc: 1, Thread: 2, Time: 3000, Page: 0, Arg: 1, Arg2: 2, Label: "threshold"},
		{Kind: KindAction, Proc: 1, Thread: 2, Time: 3000, Page: 0, Label: "copy to local"},
		{Kind: KindStateChange, Proc: 1, Thread: -1, Time: 3000, Page: 0, Arg: 2, Arg2: 0, Label: "local-writable"},
		{Kind: KindPin, Proc: 1, Thread: -1, Time: 4000, Page: 0, Arg: 4},
		{Kind: KindPageCreated, Page: 1, Proc: -1, Thread: -1, Time: 4500},
		{Kind: KindPageFreed, Page: 0, Proc: -1, Thread: -1, Time: 5000},
		// Page 1 is never freed: the exporter must close its async track.
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, ChromeMeta{NProc: 3, Label: "unit \"quoted\""}); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !json.Valid(out) {
		t.Fatalf("exporter produced invalid JSON:\n%s", out)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	// 1 process_name + 3 cpus + 1 unbound metadata records.
	if phases["M"] != 5 {
		t.Fatalf("want 5 metadata events, got %d", phases["M"])
	}
	if phases["X"] != 2 { // span + fault
		t.Fatalf("want 2 complete events, got %d", phases["X"])
	}
	if phases["b"] != 2 || phases["e"] != 2 {
		t.Fatalf("want 2 async begin / 2 async end, got b=%d e=%d", phases["b"], phases["e"])
	}
	if phases["n"] != 1 {
		t.Fatalf("want 1 async instant, got %d", phases["n"])
	}
	if phases["i"] != 4 { // sched-assign, decision, action, pin
		t.Fatalf("want 4 instants, got %d", phases["i"])
	}

	var buf2 bytes.Buffer
	if err := WriteChrome(&buf2, events, ChromeMeta{NProc: 3, Label: "unit \"quoted\""}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, buf2.Bytes()) {
		t.Fatal("two exports of the same stream differ")
	}
}

func TestTSFormatting(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{0, "0.000"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1.000"},
		{1234567, "1234.567"},
	} {
		if got := ts(tc.ns); got != tc.want {
			t.Errorf("ts(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
