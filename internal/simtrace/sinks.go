package simtrace

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// CountingSink tallies events per kind. It is the cheapest useful sink
// (one atomic add per event) and is safe to share across simulations the
// harness runs concurrently — cmd/tables -timing attaches a single
// CountingSink to every run of a table.
type CountingSink struct {
	counts [KindCount]atomic.Uint64
}

// Emit implements Sink.
func (c *CountingSink) Emit(ev Event) {
	if ev.Kind < KindCount {
		c.counts[ev.Kind].Add(1)
	}
}

// EmitBatch implements BatchSink: the batch is tallied into a local
// array first, so a 256-event batch costs at most KindCount atomic adds
// instead of 256.
func (c *CountingSink) EmitBatch(evs []Event) {
	var local [KindCount]uint64
	for _, ev := range evs {
		if ev.Kind < KindCount {
			local[ev.Kind]++
		}
	}
	for k, n := range local {
		if n > 0 {
			c.counts[k].Add(n)
		}
	}
}

// Count returns the number of events of kind k seen so far.
func (c *CountingSink) Count(k Kind) uint64 {
	if k >= KindCount {
		return 0
	}
	return c.counts[k].Load()
}

// Total returns the number of events of all kinds seen so far.
func (c *CountingSink) Total() uint64 {
	var n uint64
	for i := range c.counts {
		n += c.counts[i].Load()
	}
	return n
}

// Render returns a fixed-order, one-line-per-kind summary of the counters
// (kinds with zero events are omitted; the order is the Kind enumeration,
// so output is deterministic).
func (c *CountingSink) Render() string {
	var b strings.Builder
	for k := Kind(0); k < KindCount; k++ {
		if n := c.counts[k].Load(); n > 0 {
			fmt.Fprintf(&b, "  %-12s %d\n", k.String(), n)
		}
	}
	return b.String()
}

// RingSink keeps the most recent events in a fixed-capacity ring buffer
// for post-mortem dumps: tests attach one and, on an invariant failure,
// log FormatEvents(ring.Events()) to show the protocol history that led
// to the bad state. Not safe for concurrent Emit.
type RingSink struct {
	buf   []Event
	next  int
	total int
}

// NewRingSink returns a ring buffer retaining the last cap events.
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (r *RingSink) Emit(ev Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// EmitBatch implements BatchSink.
func (r *RingSink) EmitBatch(evs []Event) {
	for _, ev := range evs {
		r.Emit(ev)
	}
}

// Total returns how many events were emitted overall, including any that
// have since been overwritten.
func (r *RingSink) Total() int { return r.total }

// Events returns the retained events, oldest first.
func (r *RingSink) Events() []Event {
	if len(r.buf) < cap(r.buf) {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// ListSink records every event in order. It is the exporter's collection
// buffer (acesim -trace-out attaches one, then hands Events() to
// WriteChrome). Not safe for concurrent Emit.
type ListSink struct {
	events []Event
}

// Emit implements Sink.
func (l *ListSink) Emit(ev Event) { l.events = append(l.events, ev) }

// EmitBatch implements BatchSink. The batch slice is the bus's reusable
// buffer, so the events are copied out (append copies the structs).
func (l *ListSink) EmitBatch(evs []Event) { l.events = append(l.events, evs...) }

// Events returns the recorded events in emission order. The slice is the
// sink's own backing store; do not Emit concurrently with using it.
func (l *ListSink) Events() []Event { return l.events }
