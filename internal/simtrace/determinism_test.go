package simtrace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/harness"
	"numasim/internal/metrics"
	"numasim/internal/policy"
	"numasim/internal/simtrace"
	"numasim/internal/workloads"
)

// exportFFT runs FFT(16) on 3 processors with a private event sink and
// returns the Chrome trace-event export. It may run off the test
// goroutine, so it reports errors instead of failing the test itself.
func exportFFT() ([]byte, error) {
	w, err := workloads.NewSized("FFT", 16)
	if err != nil {
		return nil, err
	}
	cfg := ace.DefaultConfig()
	cfg.NProc = 3
	events := &simtrace.ListSink{}
	spec := metrics.RunSpec{Config: cfg, Policy: policy.NewThreshold(policy.DefaultThreshold), TraceSink: events}
	if _, err := metrics.Run(w, spec); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	meta := simtrace.ChromeMeta{NProc: cfg.NProc, Label: w.Name()}
	if err := simtrace.WriteChrome(&buf, events.Events(), meta); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TestChromeExportDeterministicAcrossParallelism asserts the exporter's
// headline property: the same workload and configuration produce a
// byte-identical Chrome trace-event file whether the simulation runs alone
// (-parallel 1) or races seven identical siblings (-parallel 8). Each run
// has its own machine and sink; host scheduling must not leak in.
func TestChromeExportDeterministicAcrossParallelism(t *testing.T) {
	solo, err := exportFFT()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(solo) {
		t.Fatal("export is not valid JSON")
	}
	if len(solo) < 100 {
		t.Fatalf("export suspiciously small: %d bytes", len(solo))
	}

	const runs = 8
	exports := make([][]byte, runs)
	err = harness.NewPool(runs).Run(runs, func(i int) error {
		out, err := exportFFT()
		exports[i] = out
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range exports {
		if !bytes.Equal(got, solo) {
			t.Errorf("run %d of %d concurrent exports differs from the solo export (%d vs %d bytes)",
				i, runs, len(got), len(solo))
		}
	}
}
