package simtrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ChromeMeta parameterizes a Chrome trace-event export.
type ChromeMeta struct {
	// NProc is the machine's processor count; processor n becomes track
	// "cpuN", and events not bound to a processor land on an extra
	// "unbound" track with tid NProc.
	NProc int
	// Label names the process track (e.g. the application being traced).
	Label string
}

// WriteChrome renders events as Chrome trace-event JSON
// ({"traceEvents":[...]}), loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. The export carries one track per processor (complete
// "X" spans for thread execution and fault handling, instants for policy
// decisions and protocol actions) plus one async track per page whose
// begin/instant/end events trace the page's lifetime and consistency-state
// changes.
//
// The JSON is written by hand with a fixed key order and no map
// iteration, so a given event stream always serializes to identical
// bytes — the exporter determinism test depends on this.
func WriteChrome(w io.Writer, events []Event, meta ChromeMeta) error {
	bw := bufio.NewWriter(w)
	cw := chromeWriter{w: bw, nproc: meta.NProc}

	bw.WriteString("{\"traceEvents\":[\n")

	procName := "numasim"
	if meta.Label != "" {
		procName = "numasim: " + meta.Label
	}
	cw.meta("process_name", 0, fmt.Sprintf("{\"name\":%s}", quoteJSON(procName)))
	for p := 0; p < meta.NProc; p++ {
		cw.meta("thread_name", p, fmt.Sprintf("{\"name\":\"cpu%d\"}", p))
	}
	cw.meta("thread_name", meta.NProc, "{\"name\":\"unbound\"}")

	// Pages with an open async track, and the largest timestamp seen, so
	// never-freed pages can be closed at end-of-trace.
	open := make(map[int64]bool)
	var endTS int64
	for _, ev := range events {
		if ev.Time > endTS {
			endTS = ev.Time
		}
		switch ev.Kind {
		case KindSpan:
			name := ev.Label
			if name == "" {
				name = fmt.Sprintf("th%d", ev.Thread)
			}
			cw.complete(name, ev.Proc, ev.Time, ev.Dur,
				fmt.Sprintf("{\"thread\":%d}", ev.Thread))
		case KindFaultExit:
			cw.complete("fault", ev.Proc, ev.Time-ev.Dur, ev.Dur,
				fmt.Sprintf("{\"va\":%d,\"write\":%d,\"page\":%d}", ev.Arg, ev.Arg2, ev.Page))
		case KindDecision:
			cw.instant("decision: "+ev.Label, ev.Proc, ev.Time,
				fmt.Sprintf("{\"loc\":%d,\"moves\":%d,\"page\":%d}", ev.Arg, ev.Arg2, ev.Page))
		case KindAction:
			cw.instant("action: "+ev.Label, ev.Proc, ev.Time,
				fmt.Sprintf("{\"page\":%d}", ev.Page))
		case KindPin:
			cw.instant("pin", ev.Proc, ev.Time,
				fmt.Sprintf("{\"page\":%d,\"moves\":%d}", ev.Page, ev.Arg))
		case KindSchedAssign:
			cw.instant("spawn: "+ev.Label, ev.Proc, ev.Time,
				fmt.Sprintf("{\"thread\":%d}", ev.Thread))
		case KindPressure:
			cw.instant("pressure: "+ev.Label, ev.Proc, ev.Time,
				fmt.Sprintf("{\"free\":%d,\"page\":%d}", ev.Arg, ev.Page))
		case KindEvict:
			cw.instant("evict: "+ev.Label, ev.Proc, ev.Time,
				fmt.Sprintf("{\"page\":%d,\"state\":%d}", ev.Page, ev.Arg))
		case KindRetry:
			cw.instant("retry", ev.Proc, ev.Time,
				fmt.Sprintf("{\"attempt\":%d,\"backoff\":%d,\"page\":%d}", ev.Arg, ev.Dur, ev.Page))
		case KindLinkWait:
			cw.instant("link-wait", ev.Proc, ev.Time,
				fmt.Sprintf("{\"node\":%d,\"queued\":%d}", ev.Arg, ev.Dur))
		case KindPageCreated:
			cw.async('b', "page", ev.Page, ev.Time, "")
			open[ev.Page] = true
		case KindStateChange:
			label := ev.Label
			if label == "" {
				label = "state"
			}
			cw.async('n', label, ev.Page, ev.Time,
				fmt.Sprintf("{\"from\":%d,\"to\":%d}", ev.Arg2, ev.Arg))
		case KindPageFreed:
			cw.async('e', "page", ev.Page, ev.Time, "")
			delete(open, ev.Page)
		}
		// KindDispatch, KindFaultEnter and KindMapEnter are bookkeeping
		// for counters and post-mortems; the spans above already carry
		// their information visually.
	}

	// Close the async track of every page still live at end of trace.
	still := make([]int64, 0, len(open))
	for id := range open {
		still = append(still, id)
	}
	sort.Slice(still, func(i, j int) bool { return still[i] < still[j] })
	for _, id := range still {
		cw.async('e', "page", id, endTS, "")
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromeWriter emits trace-event objects with a fixed key order.
type chromeWriter struct {
	w     *bufio.Writer
	nproc int
	wrote bool
}

func (c *chromeWriter) sep() {
	if c.wrote {
		c.w.WriteString(",\n")
	}
	c.wrote = true
}

// tid maps a processor number to a track id; unbound events (-1) go to
// the extra track after the last processor.
func (c *chromeWriter) tid(proc int32) int {
	if proc < 0 {
		return c.nproc
	}
	return int(proc)
}

// ts renders virtual nanoseconds as the microsecond timestamps the trace
// format expects, keeping nanosecond precision via the fraction digits.
func ts(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

func (c *chromeWriter) meta(name string, tid int, args string) {
	c.sep()
	fmt.Fprintf(c.w, "{\"name\":%s,\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":%s}",
		quoteJSON(name), tid, args)
}

func (c *chromeWriter) complete(name string, proc int32, startNS, durNS int64, args string) {
	c.sep()
	fmt.Fprintf(c.w, "{\"name\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":0,\"tid\":%d",
		quoteJSON(name), ts(startNS), ts(durNS), c.tid(proc))
	if args != "" {
		fmt.Fprintf(c.w, ",\"args\":%s", args)
	}
	c.w.WriteString("}")
}

func (c *chromeWriter) instant(name string, proc int32, atNS int64, args string) {
	c.sep()
	fmt.Fprintf(c.w, "{\"name\":%s,\"ph\":\"i\",\"ts\":%s,\"pid\":0,\"tid\":%d,\"s\":\"t\"",
		quoteJSON(name), ts(atNS), c.tid(proc))
	if args != "" {
		fmt.Fprintf(c.w, ",\"args\":%s", args)
	}
	c.w.WriteString("}")
}

func (c *chromeWriter) async(ph byte, name string, page int64, atNS int64, args string) {
	c.sep()
	fmt.Fprintf(c.w, "{\"name\":%s,\"cat\":\"page\",\"ph\":\"%c\",\"ts\":%s,\"pid\":0,\"tid\":0,\"id\":\"page%d\"",
		quoteJSON(name), ph, ts(atNS), page)
	if args != "" {
		fmt.Fprintf(c.w, ",\"args\":%s", args)
	}
	c.w.WriteString("}")
}

// quoteJSON escapes a string as a JSON string literal. Labels are plain
// ASCII action and thread names, but escape defensively anyway.
func quoteJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch == '"' || ch == '\\':
			b.WriteByte('\\')
			b.WriteByte(ch)
		case ch < 0x20:
			fmt.Fprintf(&b, "\\u%04x", ch)
		default:
			b.WriteByte(ch)
		}
	}
	b.WriteByte('"')
	return b.String()
}
