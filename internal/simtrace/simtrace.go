// Package simtrace is the simulator's structured event layer: a typed
// event vocabulary covering engine scheduling, fault handling, NUMA
// protocol actions, policy decisions and page lifetimes, an always-present
// Bus that instrumented packages emit into, and pluggable Sinks that
// consume the stream (counting, ring-buffer post-mortems, Chrome
// trace-event export for Perfetto).
//
// The design constraint is zero cost when off: every machine owns a Bus,
// but with no sink attached the emit path is a nil check and nothing else
// — no Event is even constructed (instrumentation sites guard with
// Bus.Enabled() before building the Event). The Table 3 hot path measures
// under 1% overhead with tracing disabled (BenchmarkTraceOverhead).
//
// Determinism: events carry only virtual time and simulation state, never
// wall-clock or host identity (the package is on numalint's deterministic
// core list), and they are emitted from the single-threaded simulation
// loop, so for a given program the event stream — and any export derived
// from it — is byte-identical at every host parallelism setting.
package simtrace

import (
	"fmt"
	"strings"
)

// Kind classifies an Event.
type Kind uint8

// Event kinds. KindCount is the number of kinds, not a kind.
const (
	// KindDispatch: the engine resumed a thread (one per context switch).
	KindDispatch Kind = iota
	// KindSpan: a thread ran on a processor for [Time, Time+Dur).
	KindSpan
	// KindFaultEnter: a page fault entered the kernel (Arg: va, Arg2: 1
	// for a write fault).
	KindFaultEnter
	// KindFaultExit: the fault completed; Time is the completion time and
	// Dur the system time the fault consumed (Arg: va, Arg2: write).
	KindFaultExit
	// KindDecision: the NUMA policy answered a request (Arg: the
	// numa.Location ordinal, Arg2: the page's move count, Label: policy
	// name).
	KindDecision
	// KindAction: the NUMA manager performed one protocol action of the
	// paper's Tables 1/2 (Label: the paper's action vocabulary, Arg: the
	// page state ordinal after the action).
	KindAction
	// KindStateChange: a page moved between consistency states (Arg: new
	// state ordinal, Arg2: previous state ordinal).
	KindStateChange
	// KindPageCreated: a logical page came into existence.
	KindPageCreated
	// KindPageFreed: a logical page was freed back to global memory.
	KindPageFreed
	// KindPin: a page was pinned into global memory (Arg: move count at
	// the moment of pinning).
	KindPin
	// KindMapEnter: the pmap layer established a translation (Arg: va,
	// Arg2: protection bits).
	KindMapEnter
	// KindSchedAssign: the scheduler bound a newly created thread to a
	// processor (Label: thread name).
	KindSchedAssign
	// KindPressure: a memory pool could not satisfy an allocation and the
	// system degraded gracefully (Label: "local-fallback" when a LOCAL
	// placement demoted to global, "pageout" when global memory paged out
	// a victim; Arg: the pool's free-frame count at the moment).
	KindPressure
	// KindEvict: the clock reclaimer evicted one local copy to free a
	// frame (Proc: the pool swept, Page: the victim, Arg: the victim's
	// state ordinal before eviction, Label: the protocol action used).
	KindEvict
	// KindRetry: a transiently failed local allocation was retried after
	// a backoff (Arg: the zero-based attempt number, Dur: the backoff
	// waited in virtual nanoseconds).
	KindRetry
	// KindLinkWait: a memory transfer queued behind earlier traffic on a
	// busy interconnect link (contended topologies only; Dur: the
	// queueing delay charged in virtual nanoseconds, Arg: the node of the
	// frame being accessed, or -1 for interleaved global memory).
	KindLinkWait
	// KindSchedHint: a policy advised the scheduler to migrate a thread
	// toward a node (Arg: the advised node, Arg2: 1 if the scheduler
	// accepted the hint, 0 if it rejected it, Label: policy name).
	KindSchedHint
	// KindSchedMigrate: the scheduler applied an accepted hint at a
	// quantum boundary, rebinding the thread (Proc: the new processor,
	// Arg: the target node, Arg2: the processor left behind).
	KindSchedMigrate
	// KindNodeOffline: a health schedule marked a node failing (Arg: the
	// node; Arg2: the number of resident pages evacuated from it).
	KindNodeOffline
	// KindNodeOnline: a previously failed node rejoined cold (Arg: the
	// node).
	KindNodeOnline
	// KindLinkChange: an interconnect link changed health (Arg: the link
	// index, Arg2: the capacity divisor — 0 for severed, 1 for restored,
	// >1 for degraded; Label: "sever", "degrade" or "restore").
	KindLinkChange
	// KindEvacuate: the evacuation protocol moved or dropped one page off
	// a failing node (Page: the page, Arg: the source node, Arg2: the
	// destination node or -1 when the copy was dropped/synced to global,
	// Label: the evacuation action).
	KindEvacuate

	// KindCount is the number of event kinds.
	KindCount
)

var kindNames = [KindCount]string{
	"dispatch", "span", "fault-enter", "fault-exit", "decision",
	"action", "state-change", "page-created", "page-freed", "pin",
	"map-enter", "sched-assign", "pressure", "evict", "retry",
	"link-wait", "sched-hint", "sched-migrate",
	"node-offline", "node-online", "link-change", "evacuate",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one structured trace record. Time and Dur are virtual
// nanoseconds (the engine's sim.Time scale, held as int64 so this package
// depends on nothing); Proc and Thread are -1 when not applicable, Page is
// -1 when the event concerns no page. Arg/Arg2 are kind-specific (see the
// Kind constants); Label is the kind-specific human vocabulary (protocol
// action, thread name, policy name).
type Event struct {
	Kind   Kind
	Proc   int32
	Thread int32
	Time   int64
	Dur    int64
	Page   int64
	Arg    int64
	Arg2   int64
	Label  string
}

// String renders the event for logs and post-mortem dumps.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12dns %-12s", e.Time, e.Kind)
	if e.Proc >= 0 {
		fmt.Fprintf(&b, " cpu%d", e.Proc)
	}
	if e.Thread >= 0 {
		fmt.Fprintf(&b, " th%d", e.Thread)
	}
	if e.Page >= 0 {
		fmt.Fprintf(&b, " page%d", e.Page)
	}
	switch e.Kind {
	case KindSpan, KindFaultExit:
		fmt.Fprintf(&b, " dur=%dns", e.Dur)
	case KindStateChange:
		fmt.Fprintf(&b, " %d->%d", e.Arg2, e.Arg)
	case KindFaultEnter, KindMapEnter:
		fmt.Fprintf(&b, " va=%#x", uint32(e.Arg))
	case KindDecision:
		fmt.Fprintf(&b, " loc=%d moves=%d", e.Arg, e.Arg2)
	case KindPin:
		fmt.Fprintf(&b, " moves=%d", e.Arg)
	case KindPressure:
		fmt.Fprintf(&b, " free=%d", e.Arg)
	case KindRetry:
		fmt.Fprintf(&b, " attempt=%d backoff=%dns", e.Arg, e.Dur)
	case KindLinkWait:
		fmt.Fprintf(&b, " node=%d queued=%dns", e.Arg, e.Dur)
	case KindSchedHint:
		verdict := "rejected"
		if e.Arg2 != 0 {
			verdict = "accepted"
		}
		fmt.Fprintf(&b, " node=%d %s", e.Arg, verdict)
	case KindSchedMigrate:
		fmt.Fprintf(&b, " node=%d from=cpu%d", e.Arg, e.Arg2)
	case KindNodeOffline:
		fmt.Fprintf(&b, " node=%d evacuated=%d", e.Arg, e.Arg2)
	case KindNodeOnline:
		fmt.Fprintf(&b, " node=%d", e.Arg)
	case KindLinkChange:
		fmt.Fprintf(&b, " link=%d factor=%d", e.Arg, e.Arg2)
	case KindEvacuate:
		if e.Arg2 >= 0 {
			fmt.Fprintf(&b, " node%d->node%d", e.Arg, e.Arg2)
		} else {
			fmt.Fprintf(&b, " node%d->global", e.Arg)
		}
	}
	if e.Label != "" {
		fmt.Fprintf(&b, " %q", e.Label)
	}
	return b.String()
}

// Sink consumes events. Sinks attached to a machine that the harness runs
// concurrently with others (e.g. one CountingSink shared by every table
// row) must be safe for concurrent Emit; sinks attached to a single
// simulation (RingSink, ListSink) need not be.
type Sink interface {
	Emit(ev Event)
}

// BatchSink is a Sink that can absorb a run of events in one call. When
// the attached sink implements it, the Bus buffers emissions into a
// fixed-size ring and hands the sink whole batches instead of making one
// dynamic-dispatch call per event — the simulation loop's per-event cost
// drops to a buffered struct copy. The batch slice is the Bus's own
// buffer and is only valid for the duration of the call; sinks that
// retain events must copy them out.
type BatchSink interface {
	Sink
	EmitBatch(evs []Event)
}

// busBatch is the Bus's buffered-emission capacity. Events are delivered
// in order when the buffer fills and on Flush; 256 events keeps the
// buffer within a few cache pages while amortizing sink dispatch ~100x.
const busBatch = 256

// Bus is the per-machine event conduit. Instrumented packages keep a *Bus
// and guard every emission site with Enabled(), so a machine without an
// attached sink pays one nil check per potential event and never
// constructs the Event itself. A nil *Bus is valid and permanently
// disabled.
//
// When the attached sink implements BatchSink, the Bus buffers up to
// busBatch events and flushes them in order — on buffer fill, on Flush,
// and on Attach. The engine flushes when its run loop exits, so any code
// that inspects a buffering sink after Run sees the complete stream;
// mid-run readers (the protocol auditor's forensics snapshot) call Flush
// first.
type Bus struct {
	sink  Sink
	batch BatchSink // non-nil iff sink implements BatchSink
	n     int       // buffered events in buf[:n]
	buf   []Event
}

// NewBus returns a bus with no sink attached.
func NewBus() *Bus { return &Bus{} }

// Attach installs the sink that will receive subsequent events (nil
// detaches). Attach before the simulation runs; the simulation loop does
// not expect the sink to change mid-run. Any events buffered for a
// previously attached batching sink are flushed to it first.
func (b *Bus) Attach(s Sink) {
	b.Flush()
	b.sink = s
	b.batch = nil
	if bs, ok := s.(BatchSink); ok {
		b.batch = bs
		if b.buf == nil {
			b.buf = make([]Event, busBatch)
		}
	}
}

// Sink returns the attached sink, or nil.
func (b *Bus) Sink() Sink {
	if b == nil {
		return nil
	}
	return b.sink
}

// Enabled reports whether events are being consumed. Emission sites check
// it before constructing an Event — this is the whole zero-cost-when-off
// contract.
//
//numalint:hotpath
func (b *Bus) Enabled() bool { return b != nil && b.sink != nil }

// Emit delivers the event to the attached sink, if any. With a batching
// sink attached the event is buffered; see Flush.
//
//numalint:hotpath
func (b *Bus) Emit(ev Event) {
	if b == nil || b.sink == nil {
		return
	}
	if b.batch == nil {
		//numalint:coldpath unbatched sink: a host-side observer chose per-event dispatch
		b.sink.Emit(ev)
		return
	}
	b.buf[b.n] = ev
	b.n++
	if b.n == len(b.buf) {
		//numalint:coldpath amortized: one host-side batch dispatch per 256 events
		b.batch.EmitBatch(b.buf[:b.n])
		b.n = 0
	}
}

// Flush delivers any buffered events to the attached batching sink. A nil
// or non-buffering bus is a no-op. Readers that inspect sink state while
// a simulation is still running must Flush first.
func (b *Bus) Flush() {
	if b == nil || b.batch == nil || b.n == 0 {
		return
	}
	b.batch.EmitBatch(b.buf[:b.n])
	b.n = 0
}

// tee fans one event stream out to several sinks.
type tee []Sink

func (t tee) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// EmitBatch implements BatchSink: members that batch receive the whole
// run in one call, the rest get one Emit per event.
func (t tee) EmitBatch(evs []Event) {
	for _, s := range t {
		if bs, ok := s.(BatchSink); ok {
			bs.EmitBatch(evs)
			continue
		}
		for _, ev := range evs {
			s.Emit(ev)
		}
	}
}

// Tee returns a sink that forwards every event to each of sinks in order.
// The result implements BatchSink, so a Bus buffers for it; every member
// still observes the stream in emission order.
func Tee(sinks ...Sink) Sink { return tee(sinks) }

// FormatEvents renders events one per line — the post-mortem dump format
// tests log when an invariant fails.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, ev := range events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}
