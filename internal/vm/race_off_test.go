//go:build !race

package vm_test

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation guards skip under it (the race runtime allocates on
// paths the guards measure).
const raceEnabled = false
