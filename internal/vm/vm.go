// Package vm models the machine-independent part of the Mach virtual
// memory system (§2.1): tasks (address spaces), VM objects holding logical
// pages, zero-fill and protection fault handling, and a simple FIFO pageout
// to backing store. It drives the machine-dependent pmap layer exactly as
// Mach does — everything below the pmap interface is the paper's system.
//
// The package also provides Context, the user-level view through which
// simulated application threads issue loads and stores against their
// task's virtual address space, charging virtual time per reference.
package vm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"numasim/internal/ace"
	"numasim/internal/mem"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/pmap"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// Fault outcomes.
var (
	// ErrNoMapping reports an access outside any allocated region.
	ErrNoMapping = errors.New("vm: no mapping for address")
	// ErrProtection reports a write to a read-only region.
	ErrProtection = errors.New("vm: protection violation")
)

// AccessError is the panic value raised by Context on an unrecoverable
// memory access (the simulated program's segmentation fault).
type AccessError struct {
	VA    uint32
	Write bool
	Err   error
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("vm: %s fault at %#x: %v", kind, e.VA, e.Err)
}

func (e *AccessError) Unwrap() error { return e.Err }

// Stats counts VM-level events.
type Stats struct {
	ZeroFillFaults uint64
	Pageouts       uint64
	Pageins        uint64
	Faults         uint64
	COWReads       uint64 // reads resolved through a shared origin page
	COWCopies      uint64 // pages privately copied on first write
}

// Object is a Mach VM object: a container of logical pages that address
// spaces map. Objects may be mapped by several tasks, which is how memory
// is shared.
type Object struct {
	name   string
	kernel *Kernel
	slots  []slot
	refs   int
	freed  bool
}

type slot struct {
	pg      *numa.Page
	backing []byte // paged-out contents; nil if never paged out
}

// Name returns the object's diagnostic name.
func (o *Object) Name() string { return o.name }

// Pages returns the object's size in pages.
func (o *Object) Pages() int { return len(o.slots) }

// Page returns the resident logical page at index i, or nil.
func (o *Object) Page(i int) *numa.Page { return o.slots[i].pg }

// Peek32 reads the 32-bit word at byte offset off of page idx without
// charging simulated time: from the resident page's authoritative frame,
// from paged-out backing store, or zero for a never-touched page. It is
// meant for post-run verification.
func (o *Object) Peek32(idx, off int) uint32 {
	s := &o.slots[idx]
	switch {
	case s.pg != nil:
		return s.pg.Authoritative().Load32(off)
	case s.backing != nil:
		return uint32(s.backing[off]) | uint32(s.backing[off+1])<<8 |
			uint32(s.backing[off+2])<<16 | uint32(s.backing[off+3])<<24
	default:
		return 0
	}
}

// Peek64 reads the 64-bit word at byte offset off of page idx without
// charging simulated time (see Peek32).
func (o *Object) Peek64(idx, off int) uint64 {
	return uint64(o.Peek32(idx, off)) | uint64(o.Peek32(idx, off+4))<<32
}

// Entry is one region of a task's address map.
type Entry struct {
	start  uint32
	length uint32
	obj    *Object
	objOff uint32 // byte offset into the object, page aligned
	prot   mmu.Prot
	hint   numa.Hint
	home   int // home processor for remote placement; -1 unset
	name   string

	// Copy-on-write state (Mach vm_copy, §2.1). A COW entry reads through
	// the immutable origin object and copies pages into its private obj
	// (the shadow) on first write.
	cow       bool
	origin    *Object
	originOff uint32
}

// CopyOnWrite reports whether the region is a copy-on-write view.
func (e *Entry) CopyOnWrite() bool { return e.cow }

// Start returns the region's first virtual address.
func (e *Entry) Start() uint32 { return e.start }

// Length returns the region's size in bytes.
func (e *Entry) Length() uint32 { return e.length }

// End returns the first address past the region.
func (e *Entry) End() uint32 { return e.start + e.length }

// Prot returns the region's protection.
func (e *Entry) Prot() mmu.Prot { return e.prot }

// Object returns the backing VM object.
func (e *Entry) Object() *Object { return e.obj }

// Name returns the region's diagnostic name.
func (e *Entry) Name() string { return e.name }

// Task is a Mach task: an address space in which simulated threads run.
type Task struct {
	kernel  *Kernel
	pm      *pmap.Pmap
	entries []*Entry // sorted by start
	nextVA  uint32
	name    string
}

// Kernel ties the machine-independent VM system to one machine: it owns
// the NUMA manager, the pmap manager, all tasks and the pageout state.
type Kernel struct {
	machine *ace.Machine
	nm      *numa.Manager
	pm      *pmap.Manager
	tasks   []*Task
	stats   Stats

	// FIFO pageout queue of resident pages.
	fifo []fifoRef

	// bufPool recycles backing-store buffers across pageout/pagein
	// cycles, so steady-state paging allocates nothing.
	bufPool [][]byte

	// UnixMaster, when true, models the Mach Unix compatibility code that
	// funnels system calls onto processor 0 (§4.6).
	UnixMaster bool

	// RefTrace, when non-nil, observes every user-level memory reference
	// (the trace facility of §5). It adds one predicate test per access
	// when unset.
	RefTrace func(proc int, va uint32, write bool)
}

type fifoRef struct {
	obj *Object
	idx int
}

// NewKernel builds a kernel for machine with the given NUMA policy.
func NewKernel(machine *ace.Machine, pol numa.Policy) *Kernel {
	nm := numa.NewManager(machine, pol)
	return &Kernel{
		machine: machine,
		nm:      nm,
		pm:      pmap.NewManager(machine, nm),
	}
}

// Machine returns the kernel's machine.
func (k *Kernel) Machine() *ace.Machine { return k.machine }

// NUMA returns the kernel's NUMA manager.
func (k *Kernel) NUMA() *numa.Manager { return k.nm }

// Pmap returns the kernel's pmap manager.
func (k *Kernel) Pmap() *pmap.Manager { return k.pm }

// Stats returns a copy of the kernel's counters.
func (k *Kernel) Stats() Stats { return k.stats }

// NewTask creates an empty address space.
func (k *Kernel) NewTask(name string) *Task {
	t := &Task{
		kernel: k,
		pm:     k.pm.Create(),
		nextVA: 0x0001_0000,
		name:   name,
	}
	k.tasks = append(k.tasks, t)
	return t
}

// NewObject creates a VM object of the given size (rounded up to whole
// pages).
func (k *Kernel) NewObject(name string, size uint32) *Object {
	ps := uint32(k.machine.PageSize())
	n := int((size + ps - 1) / ps)
	if n == 0 {
		n = 1
	}
	return &Object{name: name, kernel: k, slots: make([]slot, n)}
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// Kernel returns the kernel the task belongs to.
func (t *Task) Kernel() *Kernel { return t.kernel }

// Pmap returns the task's pmap.
func (t *Task) Pmap() *pmap.Pmap { return t.pm }

// Entries returns the task's address map entries in address order.
func (t *Task) Entries() []*Entry { return t.entries }

// Allocate creates an anonymous zero-filled region of size bytes with the
// given protection (the Mach vm_allocate) and returns its base address.
// Regions are separated by an unmapped guard page so that overruns fault.
func (t *Task) Allocate(name string, size uint32, prot mmu.Prot) uint32 {
	obj := t.kernel.NewObject(name, size)
	return t.Map(name, obj, 0, size, prot)
}

// Map maps length bytes of obj starting at byte offset objOff (page
// aligned) into the task (the Mach vm_map) and returns the base address.
func (t *Task) Map(name string, obj *Object, objOff, length uint32, prot mmu.Prot) uint32 {
	ps := uint32(t.kernel.machine.PageSize())
	if objOff%ps != 0 {
		panic(fmt.Sprintf("vm: object offset %#x not page aligned", objOff))
	}
	if length == 0 {
		panic("vm: zero-length mapping")
	}
	if obj.freed {
		panic("vm: mapping a freed object")
	}
	pages := (length + ps - 1) / ps
	if int((objOff/ps)+pages) > len(obj.slots) {
		panic(fmt.Sprintf("vm: mapping [%#x,+%#x) exceeds object %q (%d pages)", objOff, length, obj.name, len(obj.slots)))
	}
	va := t.nextVA
	e := &Entry{
		start:  va,
		length: pages * ps,
		obj:    obj,
		objOff: objOff,
		prot:   prot,
		home:   -1,
		name:   name,
	}
	obj.refs++
	t.entries = append(t.entries, e)
	sort.Slice(t.entries, func(i, j int) bool { return t.entries[i].start < t.entries[j].start })
	t.nextVA = va + e.length + ps // guard page
	return va
}

// Deallocate removes the region containing va (the Mach vm_deallocate).
// When the last mapping of an object goes away, its pages are freed.
func (t *Task) Deallocate(th *sim.Thread, va uint32) {
	for i, e := range t.entries {
		if va >= e.start && va < e.End() {
			t.pm.Remove(th, e.start, e.length)
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			e.obj.refs--
			if e.obj.refs == 0 {
				t.kernel.destroyObject(th, e.obj)
			}
			if e.cow {
				e.origin.refs--
				if e.origin.refs == 0 {
					t.kernel.destroyObject(th, e.origin)
				}
			}
			return
		}
	}
	panic(fmt.Sprintf("vm: Deallocate of unmapped address %#x", va))
}

// CopyRegion makes a copy-on-write copy of the region containing srcVA
// (the Mach vm_copy) and returns the new region's base address. Both the
// source and the copy subsequently read the shared origin pages; the first
// write on either side copies the page privately.
func (t *Task) CopyRegion(th *sim.Thread, name string, srcVA uint32) uint32 {
	e := t.find(srcVA)
	if e == nil {
		panic(fmt.Sprintf("vm: CopyRegion of unmapped address %#x", srcVA))
	}
	ps := uint32(t.kernel.machine.PageSize())
	if !e.cow {
		// Convert the source to COW: its object becomes the shared,
		// now-immutable origin; the source reads through it and writes
		// into a fresh private shadow.
		shadow := t.kernel.NewObject(e.obj.name+"+shadow", e.length)
		shadow.refs = 1
		e.origin = e.obj
		e.originOff = e.objOff
		e.obj = shadow
		e.objOff = 0
		e.cow = true
		// Existing writable hardware mappings must fault on the next
		// write: reduce privileges (§2.1).
		t.pm.Protect(th, e.start, e.length, mmu.ProtRead)
	} else {
		// Copy of a copy: flatten by pushing the source's private pages
		// into a fresh origin? Keeping chains one level deep is enough
		// here: the existing origin is shared again, and source-private
		// pages are duplicated eagerly below.
	}
	// The new region shares the origin.
	e.origin.refs++
	newShadow := t.kernel.NewObject(name, e.length)
	va := t.Map(name, newShadow, 0, e.length, e.prot)
	ne := t.find(va)
	ne.cow = true
	ne.origin = e.origin
	ne.originOff = e.originOff
	ne.hint = e.hint
	ne.home = e.home
	// Pages the source has already privatized are not in the origin:
	// duplicate them eagerly so the copy sees the source's current view.
	for i := 0; i < int(e.length/ps); i++ {
		ss := &e.obj.slots[int(e.objOff/ps)+i]
		if ss.pg == nil && ss.backing == nil {
			continue
		}
		src := t.kernel.materialize(th, e, e.obj, int(e.objOff/ps)+i)
		pg := t.kernel.newPage(th)
		pg.SetHint(ne.hint)
		t.kernel.pm.CopyPage(th, src, pg, 0)
		newShadow.slots[i].pg = pg
		t.kernel.fifo = append(t.kernel.fifo, fifoRef{newShadow, i})
		t.kernel.stats.COWCopies++
	}
	return va
}

// destroyObject frees every page of an unreferenced object.
func (k *Kernel) destroyObject(th *sim.Thread, o *Object) {
	for i := range o.slots {
		if pg := o.slots[i].pg; pg != nil {
			tag := k.pm.FreePage(th, pg)
			k.pm.FreePageSync(tag)
			o.slots[i].pg = nil
		}
		o.slots[i].backing = nil
	}
	o.freed = true
}

// Protect changes the protection of the region containing va (the Mach
// vm_protect). Existing stricter hardware mappings are tightened; loosening
// takes effect lazily via faults.
func (t *Task) Protect(th *sim.Thread, va uint32, prot mmu.Prot) {
	e := t.find(va)
	if e == nil {
		panic(fmt.Sprintf("vm: Protect of unmapped address %#x", va))
	}
	e.prot = prot
	if prot == mmu.ProtNone {
		t.pm.Remove(th, e.start, e.length)
		return
	}
	t.pm.Protect(th, e.start, e.length, prot)
}

// SetHint attaches a placement pragma (§4.3) to the region containing va.
// It applies to pages already resident and to pages created later.
func (t *Task) SetHint(va uint32, hint numa.Hint) {
	e := t.find(va)
	if e == nil {
		panic(fmt.Sprintf("vm: SetHint of unmapped address %#x", va))
	}
	e.hint = hint
	t.eachResident(e, func(pg *numa.Page) { pg.SetHint(hint) })
}

// SetHome attaches the §4.4 remote-placement pragma to the region
// containing va: the region is hinted remote with the given home
// processor.
func (t *Task) SetHome(va uint32, proc int) {
	e := t.find(va)
	if e == nil {
		panic(fmt.Sprintf("vm: SetHome of unmapped address %#x", va))
	}
	if proc < 0 || proc >= t.kernel.machine.NProc() {
		panic(fmt.Sprintf("vm: SetHome with bad processor %d", proc))
	}
	e.hint = numa.HintRemote
	e.home = proc
	t.eachResident(e, func(pg *numa.Page) {
		pg.SetHint(numa.HintRemote)
		pg.SetHome(proc)
	})
}

// eachResident applies fn to every resident page of a region.
func (t *Task) eachResident(e *Entry, fn func(*numa.Page)) {
	ps := uint32(t.kernel.machine.PageSize())
	first := int(e.objOff / ps)
	for i := 0; i < int(e.length/ps); i++ {
		if pg := e.obj.slots[first+i].pg; pg != nil {
			fn(pg)
		}
	}
}

// find locates the entry containing va, or nil. The binary search over
// entries (sorted by end address) is open-coded: a sort.Search closure
// would escape and allocate on every fault.
func (t *Task) find(va uint32) *Entry {
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.entries[mid].End() > va {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < len(t.entries) && va >= t.entries[lo].start {
		return t.entries[lo]
	}
	return nil
}

// EntryAt returns the region containing va, or nil.
func (t *Task) EntryAt(va uint32) *Entry { return t.find(va) }

// Fault resolves a page fault taken by processor proc in this task. It is
// called by Context on translation misses, and by tests directly. With a
// trace sink attached it brackets the handling in fault-enter/fault-exit
// events; the exit event's duration is the virtual time the fault
// consumed.
//
//numalint:hotpath
func (k *Kernel) Fault(th *sim.Thread, task *Task, proc int, va uint32, write bool) error {
	bus := k.machine.Bus()
	if !bus.Enabled() {
		return k.fault(th, task, proc, va, write)
	}
	wr := int64(0)
	if write {
		wr = 1
	}
	bus.Emit(simtrace.Event{
		Kind: simtrace.KindFaultEnter, Proc: int32(proc), Thread: int32(th.ID()),
		Time: int64(th.Clock()), Page: -1, Arg: int64(va), Arg2: wr,
	})
	t0 := th.Clock()
	err := k.fault(th, task, proc, va, write)
	bus.Emit(simtrace.Event{
		Kind: simtrace.KindFaultExit, Proc: int32(proc), Thread: int32(th.ID()),
		Time: int64(th.Clock()), Dur: int64(th.Clock() - t0), Page: -1,
		Arg: int64(va), Arg2: wr,
	})
	return err
}

// fault is the uninstrumented fault handler.
func (k *Kernel) fault(th *sim.Thread, task *Task, proc int, va uint32, write bool) error {
	cost := k.machine.Cost()
	th.AdvanceSys(cost.FaultBase)
	k.machine.Proc(proc).Faults++
	k.stats.Faults++

	e := task.find(va)
	if e == nil {
		return ErrNoMapping
	}
	if write && !e.prot.CanWrite() {
		return ErrProtection
	}
	ps := uint32(k.machine.PageSize())
	idx := int((va - e.start + e.objOff) / ps)
	if e.cow {
		return k.faultCOW(th, task, e, proc, va, idx, write)
	}
	pg := k.materialize(th, e, e.obj, idx)
	minProt := mmu.ProtRead
	if write {
		minProt = mmu.ProtWrite
	}
	task.pm.Enter(th, proc, va, pg, e.prot, minProt)
	return nil
}

// faultCOW resolves a fault on a copy-on-write region: reads before the
// first write go to the shared origin page, provisionally mapped
// read-only; the first write copies the origin page into the entry's
// private shadow ("Mach may reduce privileges to implement copy-on-write",
// §2.1).
func (k *Kernel) faultCOW(th *sim.Thread, task *Task, e *Entry, proc int, va uint32, idx int, write bool) error {
	originIdx := idx - int(e.objOff/uint32(k.machine.PageSize())) + int(e.originOff/uint32(k.machine.PageSize()))
	s := &e.obj.slots[idx]
	if s.pg == nil && s.backing == nil {
		//numalint:coldpath first touch: COW read-through or copy break, once per shadow page
		if !write {
			// Read through the origin; cap the mapping at read-only so the
			// first write still faults.
			src := k.materialize(th, e, e.origin, originIdx)
			task.pm.Enter(th, proc, va, src, mmu.ProtRead, mmu.ProtRead)
			k.stats.COWReads++
			return nil
		}
		// First write: break the sharing by copying the origin page into
		// the shadow (skipping the copy when the origin was never touched).
		pg := k.newPage(th)
		pg.SetHint(e.hint)
		if e.home >= 0 {
			pg.SetHome(e.home)
		}
		os := &e.origin.slots[originIdx]
		if os.pg != nil || os.backing != nil {
			src := k.materialize(th, e, e.origin, originIdx)
			k.pm.CopyPage(th, src, pg, proc)
			k.stats.COWCopies++
		} else {
			k.stats.ZeroFillFaults++
		}
		s.pg = pg
		k.fifo = append(k.fifo, fifoRef{e.obj, idx})
	}
	pg := k.materialize(th, e, e.obj, idx)
	minProt := mmu.ProtRead
	if write {
		minProt = mmu.ProtWrite
	}
	task.pm.Enter(th, proc, va, pg, e.prot, minProt)
	return nil
}

// materialize returns the resident logical page at obj[idx], paging it in
// or creating it zero-filled as needed.
func (k *Kernel) materialize(th *sim.Thread, e *Entry, obj *Object, idx int) *numa.Page {
	s := &obj.slots[idx]
	if s.pg == nil {
		//numalint:coldpath first touch: pagein or zero-fill materialization, once per resident page
		if s.backing != nil {
			k.pagein(th, obj, idx)
		} else {
			s.pg = k.newPage(th)
			s.pg.SetHint(e.hint)
			if e.home >= 0 {
				s.pg.SetHome(e.home)
			}
			k.stats.ZeroFillFaults++
			k.fifo = append(k.fifo, fifoRef{obj, idx})
		}
	}
	return s.pg
}

// newPage allocates a logical page, paging out victims as needed.
func (k *Kernel) newPage(th *sim.Thread) *numa.Page {
	for {
		pg, err := k.nm.NewPage()
		if err == nil {
			return pg
		}
		var full *mem.ErrNoFrames
		if !errors.As(err, &full) {
			panic(err)
		}
		if !k.pageoutOne(th) {
			panic("vm: out of memory and nothing to page out")
		}
	}
}

// pageoutOne evicts the oldest resident page to backing store. It reports
// false when no page is evictable.
func (k *Kernel) pageoutOne(th *sim.Thread) bool {
	for len(k.fifo) > 0 {
		ref := k.fifo[0]
		k.fifo = k.fifo[1:]
		s := &ref.obj.slots[ref.idx]
		if ref.obj.freed || s.pg == nil {
			continue // stale queue entry
		}
		pg := s.pg
		// Quiesce: sync dirty copies, drop all replicas and mappings.
		k.pm.RemoveAll(th, pg)
		// Write the page to backing store at global-memory read speed.
		var data []byte
		if n := len(k.bufPool); n > 0 {
			data = k.bufPool[n-1]
			k.bufPool = k.bufPool[:n-1]
		} else {
			data = make([]byte, k.machine.PageSize())
		}
		copy(data, pg.GlobalFrame().Data())
		th.AdvanceSys(sim.Time(k.machine.PageSize()/4) * k.machine.Cost().GlobalFetch)
		s.backing = data
		tag := k.pm.FreePage(th, pg)
		k.pm.FreePageSync(tag)
		s.pg = nil
		k.stats.Pageouts++
		if bus := k.machine.Bus(); bus.Enabled() {
			bus.Emit(simtrace.Event{
				Kind: simtrace.KindPressure, Proc: -1, Thread: int32(th.ID()),
				Time: int64(th.Clock()), Page: pg.ID(),
				Arg: int64(k.machine.Memory().Global().Free()), Label: "pageout",
			})
		}
		return true
	}
	return false
}

// pagein brings a paged-out page back from backing store. The page's NUMA
// placement state starts over, which is the only occasion on which a
// pinning decision is reconsidered (§4.3 footnote 4).
func (k *Kernel) pagein(th *sim.Thread, obj *Object, idx int) {
	s := &obj.slots[idx]
	var frame *mem.Frame
	for {
		f, err := k.machine.Memory().Global().Alloc()
		if err == nil {
			frame = f
			break
		}
		if !k.pageoutOne(th) {
			panic("vm: out of memory during pagein")
		}
	}
	copy(frame.Data(), s.backing)
	th.AdvanceSys(sim.Time(k.machine.PageSize()/4) * k.machine.Cost().GlobalStore)
	k.bufPool = append(k.bufPool, s.backing)
	s.backing = nil
	s.pg = k.nm.AdoptPage(frame)
	k.fifo = append(k.fifo, fifoRef{obj, idx})
	k.stats.Pageins++
}

// maxFaultRetries bounds the translate-fault-retry loop of a single access.
const maxFaultRetries = 4

// Context is one simulated thread's view of memory: it runs in a task on a
// processor, issuing loads and stores against virtual addresses and
// charging virtual time for each reference and for counted instruction
// work.
type Context struct {
	kernel *Kernel
	task   *Task
	th     *sim.Thread
	proc   int

	// Hot-path caches: every Load/Store goes through these, so the
	// indirections through kernel, machine and task are resolved once here
	// (and again on migration) instead of per reference.
	mach     *ace.Machine
	hw       *mmu.MMU   // current processor's MMU
	pm       *pmap.Pmap // the task's pmap (for key composition)
	pageMask uint32     // PageSize-1, for offset extraction

	sliceEnd sim.Time
	// OnQuantum, if set, is invoked when the scheduling quantum expires,
	// instead of a plain yield. Schedulers use it to time-slice and (in the
	// no-affinity ablation) to migrate the thread.
	OnQuantum func(*Context)
}

// NewContext creates a context for thread th running in task on processor
// proc. The thread is bound to the processor's execution resource.
func NewContext(k *Kernel, task *Task, th *sim.Thread, proc int) *Context {
	th.Bind(k.machine.Proc(proc).Resource())
	return &Context{
		kernel:   k,
		task:     task,
		th:       th,
		proc:     proc,
		mach:     k.machine,
		hw:       k.machine.MMU(proc),
		pm:       task.pm,
		pageMask: uint32(k.machine.PageSize() - 1),
	}
}

// Kernel returns the kernel this context runs on.
func (c *Context) Kernel() *Kernel { return c.kernel }

// Task returns the context's task.
func (c *Context) Task() *Task { return c.task }

// Thread returns the underlying simulated thread.
func (c *Context) Thread() *sim.Thread { return c.th }

// Proc returns the processor the context currently runs on.
func (c *Context) Proc() int { return c.proc }

// MigrateTo moves the context (and its thread) to another processor.
func (c *Context) MigrateTo(proc int) {
	if proc == c.proc {
		return
	}
	c.proc = proc
	c.hw = c.mach.MMU(proc)
	c.th.Bind(c.mach.Proc(proc).Resource())
}

// MigrateWithPages moves the context to another processor and takes the
// task's local-writable pages owned by the old processor along — the
// paper's §4.7 prescription for load balancing long-lived compute-bound
// applications ("migrate processes to new homes and move their local
// pages with them"). In a task with several threads on the old processor
// this is a blunt instrument (page-to-thread attribution does not exist,
// which is presumably why the paper left it as future work); callers use
// it for single-threaded tasks or whole-task moves. It returns the number
// of pages moved.
func (c *Context) MigrateWithPages(proc int) int {
	if proc == c.proc {
		return 0
	}
	old := c.proc
	c.MigrateTo(proc)
	moved := 0
	ps := uint32(c.kernel.machine.PageSize())
	oldNode := c.mach.Home(old)
	newNode := c.mach.Home(proc)
	for _, e := range c.task.entries {
		for i := range e.obj.slots {
			pg := e.obj.slots[i].pg
			if pg == nil || pg.State() != numa.LocalWritable || pg.Owner() != oldNode {
				continue
			}
			c.kernel.nm.MigrateOwner(c.th, pg, proc)
			if pg.Owner() != newNode {
				continue
			}
			moved++
			// Re-establish the translation at the new home so the thread
			// resumes without even a mapping fault.
			off := uint32(i) * ps
			if off >= e.objOff && off-e.objOff < e.length && e.prot.CanWrite() {
				va := e.start + (off - e.objOff)
				c.task.pm.Enter(c.th, proc, va, pg, e.prot, mmu.ProtWrite)
			}
		}
	}
	return moved
}

// tick yields the processor when the scheduling quantum has expired.
func (c *Context) tick() {
	if c.th.Clock() < c.sliceEnd {
		return
	}
	c.quantumExpired()
}

// quantumExpired handles the end of a scheduling slice: the clock tick
// drives kernel daemons (the NUMA manager's reconsider sweep) as a timer
// interrupt would, then yields (or runs the scheduler's OnQuantum hook)
// and starts the next slice.
//
//numalint:coldpath quantum rollover: runs once per scheduling slice, not per reference
func (c *Context) quantumExpired() {
	c.kernel.nm.MaybeSweep(c.th)
	if c.OnQuantum != nil {
		c.OnQuantum(c)
	} else {
		c.th.Yield()
	}
	c.sliceEnd = c.th.Clock() + c.kernel.machine.Config().Quantum
}

// translate resolves va for an access, faulting as needed. The TLB probe
// is the fast path; everything after a miss lives in translateSlow so the
// probe inlines into the accessors.
func (c *Context) translate(va uint32, write bool) *mem.Frame {
	if f := c.hw.Translate(c.pm.Key(va), write); f != nil {
		return f
	}
	return c.translateSlow(va, write)
}

// translateSlow resolves a TLB/translation miss through the fault path.
func (c *Context) translateSlow(va uint32, write bool) *mem.Frame {
	for i := 0; i < maxFaultRetries; i++ {
		if err := c.kernel.Fault(c.th, c.task, c.proc, va, write); err != nil {
			panic(&AccessError{VA: va, Write: write, Err: err})
		}
		if f := c.hw.Translate(c.pm.Key(va), write); f != nil {
			return f
		}
	}
	panic(&AccessError{VA: va, Write: write, Err: errors.New("fault loop did not converge")})
}

// refFetch is the folded translate+trace+charge path for one 32-bit read:
// on a TLB hit to a local frame it runs without touching kernel or task
// state beyond the trace predicate.
func (c *Context) refFetch(va uint32) *mem.Frame {
	f := c.hw.Translate(c.pm.Key(va), false)
	if f == nil {
		f = c.translateSlow(va, false)
	}
	if c.kernel.RefTrace != nil {
		//numalint:coldpath instrumentation: the reference-trace hook is nil outside trace captures
		c.kernel.RefTrace(c.proc, va, false)
	}
	c.mach.ChargeFetch(c.th, c.proc, f)
	return f
}

// refStore is the folded translate+trace+charge path for one 32-bit write.
func (c *Context) refStore(va uint32) *mem.Frame {
	f := c.hw.Translate(c.pm.Key(va), true)
	if f == nil {
		f = c.translateSlow(va, true)
	}
	if c.kernel.RefTrace != nil {
		//numalint:coldpath instrumentation: the reference-trace hook is nil outside trace captures
		c.kernel.RefTrace(c.proc, va, true)
	}
	c.mach.ChargeStore(c.th, c.proc, f)
	return f
}

// Load32 loads the 32-bit word at va.
//
//numalint:hotpath
func (c *Context) Load32(va uint32) uint32 {
	f := c.refFetch(va)
	v := f.Load32(int(va & c.pageMask))
	c.tick()
	return v
}

// Store32 stores a 32-bit word at va.
//
//numalint:hotpath
func (c *Context) Store32(va uint32, v uint32) {
	f := c.refStore(va)
	f.Store32(int(va&c.pageMask), v)
	c.tick()
}

// Load8 loads the byte at va (charged as one reference, as on the ROMP).
//
//numalint:hotpath
func (c *Context) Load8(va uint32) byte {
	f := c.refFetch(va)
	v := f.Load8(int(va & c.pageMask))
	c.tick()
	return v
}

// Store8 stores the byte at va.
//
//numalint:hotpath
func (c *Context) Store8(va uint32, v byte) {
	f := c.refStore(va)
	f.Store8(int(va&c.pageMask), v)
	c.tick()
}

// Load64 loads the 64-bit word at va, charged as two 32-bit references.
// The address must not cross a page boundary.
//
//numalint:hotpath
func (c *Context) Load64(va uint32) uint64 {
	c.checkSpan(va, 8)
	f := c.refFetch(va)
	if c.kernel.RefTrace != nil {
		//numalint:coldpath instrumentation: the reference-trace hook is nil outside trace captures
		c.kernel.RefTrace(c.proc, va+4, false)
	}
	c.mach.ChargeFetch(c.th, c.proc, f)
	v := f.Load64(int(va & c.pageMask))
	c.tick()
	return v
}

// Store64 stores a 64-bit word at va, charged as two 32-bit references.
//
//numalint:hotpath
func (c *Context) Store64(va uint32, v uint64) {
	c.checkSpan(va, 8)
	f := c.refStore(va)
	if c.kernel.RefTrace != nil {
		//numalint:coldpath instrumentation: the reference-trace hook is nil outside trace captures
		c.kernel.RefTrace(c.proc, va+4, true)
	}
	c.mach.ChargeStore(c.th, c.proc, f)
	f.Store64(int(va&c.pageMask), v)
	c.tick()
}

// LoadF64 loads the float64 at va.
//
//numalint:hotpath
func (c *Context) LoadF64(va uint32) float64 {
	return math.Float64frombits(c.Load64(va))
}

// StoreF64 stores a float64 at va.
//
//numalint:hotpath
func (c *Context) StoreF64(va uint32, v float64) {
	c.Store64(va, math.Float64bits(v))
}

func (c *Context) checkSpan(va uint32, n int) {
	if int(va&c.pageMask)+n > int(c.pageMask)+1 {
		panic(&AccessError{VA: va, Err: errors.New("access crosses page boundary")})
	}
}

// TestAndSet atomically reads the word at va and stores 1 into it,
// returning the old value. It charges one fetch and one store and, unlike
// a Load32/Store32 pair, cannot be preempted between them — the primitive
// spin locks are built from.
//
//numalint:hotpath
func (c *Context) TestAndSet(va uint32) uint32 {
	f := c.translate(va, true)
	if c.kernel.RefTrace != nil {
		//numalint:coldpath instrumentation: the reference-trace hook is nil outside trace captures
		c.kernel.RefTrace(c.proc, va, true)
	}
	m := c.mach
	m.ChargeFetch(c.th, c.proc, f)
	m.ChargeStore(c.th, c.proc, f)
	off := int(va & c.pageMask)
	old := f.Load32(off)
	f.Store32(off, 1)
	c.tick()
	return old
}

// FetchOr32 atomically ORs bits into the word at va and returns the old
// value, charged as one fetch plus one store (the sieve's
// "fetching and storing as it masks off bits").
//
//numalint:hotpath
func (c *Context) FetchOr32(va uint32, bits uint32) uint32 {
	f := c.translate(va, true)
	if c.kernel.RefTrace != nil {
		//numalint:coldpath instrumentation: the reference-trace hook is nil outside trace captures
		c.kernel.RefTrace(c.proc, va, true)
	}
	m := c.mach
	m.ChargeFetch(c.th, c.proc, f)
	m.ChargeStore(c.th, c.proc, f)
	off := int(va & c.pageMask)
	old := f.Load32(off)
	f.Store32(off, old|bits)
	c.tick()
	return old
}

// Compute charges n simple ALU/register instructions of user time.
func (c *Context) Compute(n int) {
	c.th.Advance(sim.Time(n) * c.kernel.machine.Cost().Instr)
	c.tick()
}

// Mul charges n integer multiplies (software multiply on the ROMP).
func (c *Context) Mul(n int) {
	c.th.Advance(sim.Time(n) * c.kernel.machine.Cost().Mul)
	c.tick()
}

// Div charges n integer divides ("division is expensive on the ACE").
func (c *Context) Div(n int) {
	c.th.Advance(sim.Time(n) * c.kernel.machine.Cost().Div)
	c.tick()
}

// FAdd charges n floating additions/subtractions.
func (c *Context) FAdd(n int) {
	c.th.Advance(sim.Time(n) * c.kernel.machine.Cost().FAdd)
	c.tick()
}

// FMul charges n floating multiplications.
func (c *Context) FMul(n int) {
	c.th.Advance(sim.Time(n) * c.kernel.machine.Cost().FMul)
	c.tick()
}

// FDiv charges n floating divisions.
func (c *Context) FDiv(n int) {
	c.th.Advance(sim.Time(n) * c.kernel.machine.Cost().FDiv)
	c.tick()
}

// Syscall models a Unix system call of roughly nInstr kernel instructions
// that reads and updates the user memory at each address in touches (as
// sigvec does with the handler structure). Under the kernel's UnixMaster
// mode the call executes on processor 0 — the "Unix Master" — so those
// user pages become writably shared with processor 0 and can end up in
// global memory, which is the effect the paper works around for sigvec,
// fstat and ioctl (§4.6).
func (c *Context) Syscall(nInstr int, touches ...uint32) {
	home := c.proc
	if c.kernel.UnixMaster && home != 0 {
		c.MigrateTo(0)
	}
	c.th.AdvanceSys(sim.Time(nInstr) * c.kernel.machine.Cost().Instr)
	for _, va := range touches {
		f := c.translate(va, true)
		m := c.mach
		m.ChargeFetch(c.th, c.proc, f)
		m.ChargeStore(c.th, c.proc, f)
		off := int(va & c.pageMask)
		f.Store32(off, f.Load32(off))
	}
	if c.proc != home {
		c.MigrateTo(home)
	}
	c.tick()
}
