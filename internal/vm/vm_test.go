package vm_test

import (
	"errors"
	"math/rand"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

func smallCfg(nproc int) ace.Config {
	cfg := ace.DefaultConfig()
	cfg.NProc = nproc
	cfg.GlobalFrames = 64
	cfg.LocalFrames = 32
	return cfg
}

// run1 runs body in a single simulated thread on cpu0.
func run1(t *testing.T, cfg ace.Config, pol numa.Policy, body func(c *vm.Context)) *vm.Kernel {
	t.Helper()
	machine := ace.MustMachine(cfg)
	if pol == nil {
		pol = policy.NewDefault()
	}
	k := vm.NewKernel(machine, pol)
	task := k.NewTask("t")
	machine.Engine().Spawn("main", 0, func(th *sim.Thread) {
		body(vm.NewContext(k, task, th, 0))
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestZeroFillAndRoundTrip(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		base := c.Task().Allocate("data", 8192, mmu.ProtReadWrite)
		if got := c.Load32(base); got != 0 {
			t.Errorf("fresh page reads %d, want 0", got)
		}
		c.Store32(base+4, 42)
		c.Store32(base+4096, 43) // second page
		if c.Load32(base+4) != 42 || c.Load32(base+4096) != 43 {
			t.Error("round trip failed")
		}
		c.Store8(base+9, 0xab)
		if c.Load8(base+9) != 0xab {
			t.Error("byte round trip failed")
		}
		c.Store64(base+16, 1<<40)
		if c.Load64(base+16) != 1<<40 {
			t.Error("64-bit round trip failed")
		}
		c.StoreF64(base+24, 3.25)
		if c.LoadF64(base+24) != 3.25 {
			t.Error("float round trip failed")
		}
	})
}

func TestGuardPageFaults(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		base := c.Task().Allocate("small", 4096, mmu.ProtReadWrite)
		defer func() {
			r := recover()
			ae, ok := r.(*vm.AccessError)
			if !ok {
				t.Fatalf("recover = %v, want AccessError", r)
			}
			if !errors.Is(ae, vm.ErrNoMapping) {
				t.Errorf("err = %v, want ErrNoMapping", ae)
			}
		}()
		c.Load32(base + 4096) // one past the end: guard page
	})
}

func TestProtectionViolation(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		base := c.Task().Allocate("ro", 4096, mmu.ProtRead)
		if c.Load32(base) != 0 {
			t.Error("read of read-only region failed")
		}
		defer func() {
			r := recover()
			ae, ok := r.(*vm.AccessError)
			if !ok || !errors.Is(ae, vm.ErrProtection) {
				t.Fatalf("recover = %v, want protection AccessError", r)
			}
			if !ae.Write {
				t.Error("error should record a write")
			}
		}()
		c.Store32(base, 1)
	})
}

func TestVMProtectTightens(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		base := c.Task().Allocate("d", 4096, mmu.ProtReadWrite)
		c.Store32(base, 9)
		c.Task().Protect(c.Thread(), base, mmu.ProtRead)
		if c.Load32(base) != 9 {
			t.Error("read after protect failed")
		}
		defer func() {
			if recover() == nil {
				t.Error("write after protect should fault")
			}
		}()
		c.Store32(base, 10)
	})
}

func TestSharedObjectAcrossTasks(t *testing.T) {
	machine := ace.MustMachine(smallCfg(2))
	k := vm.NewKernel(machine, policy.NewDefault())
	ta := k.NewTask("a")
	tb := k.NewTask("b")
	obj := k.NewObject("shared", 4096)
	vaA := ta.Map("sh", obj, 0, 4096, mmu.ProtReadWrite)
	vaB := tb.Map("sh", obj, 0, 4096, mmu.ProtReadWrite)
	done := make(chan struct{}, 1)
	machine.Engine().Spawn("a", 0, func(th *sim.Thread) {
		ca := vm.NewContext(k, ta, th, 0)
		ca.Store32(vaA+8, 77)
	})
	machine.Engine().Spawn("b", 1, func(th *sim.Thread) {
		cb := vm.NewContext(k, tb, th, 1)
		if got := cb.Load32(vaB + 8); got != 77 {
			t.Errorf("task b reads %d, want 77", got)
		}
		done <- struct{}{}
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestMigrationBetweenProcessors(t *testing.T) {
	machine := ace.MustMachine(smallCfg(2))
	k := vm.NewKernel(machine, policy.NewDefault())
	task := k.NewTask("t")
	base := task.Allocate("shared", 4096, mmu.ProtReadWrite)
	var w0 *sim.Thread
	w0 = machine.Engine().Spawn("w0", 0, func(th *sim.Thread) {
		c := vm.NewContext(k, task, th, 0)
		c.Store32(base, 1)
	})
	machine.Engine().Spawn("w1", 0, func(th *sim.Thread) {
		w0.Join(th)
		c := vm.NewContext(k, task, th, 1)
		if c.Load32(base) != 1 {
			t.Error("cpu1 does not see cpu0's write")
		}
		c.Store32(base, 2)
		pg := task.EntryAt(base).Object().Page(0)
		if pg.State() != numa.LocalWritable || pg.Owner() != 1 {
			t.Errorf("page state %v owner %d, want LW on 1", pg.State(), pg.Owner())
		}
		if pg.Moves() != 1 {
			t.Errorf("moves = %d, want 1", pg.Moves())
		}
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdPinsViaContexts(t *testing.T) {
	machine := ace.MustMachine(smallCfg(2))
	k := vm.NewKernel(machine, policy.NewThreshold(2))
	task := k.NewTask("t")
	base := task.Allocate("pingpong", 4096, mmu.ProtReadWrite)
	machine.Engine().Spawn("driver", 0, func(th *sim.Thread) {
		c0 := vm.NewContext(k, task, th, 0)
		for i := 0; i < 3; i++ {
			c0.MigrateTo(0)
			c0.Store32(base, uint32(i))
			c0.MigrateTo(1)
			c0.Store32(base+4, uint32(i))
		}
		pg := task.EntryAt(base).Object().Page(0)
		if !pg.Pinned() || pg.State() != numa.GlobalWritable {
			t.Errorf("ping-ponged page not pinned: state %v moves %d", pg.State(), pg.Moves())
		}
		// Data still correct in global memory.
		if c0.Load32(base) != 2 || c0.Load32(base+4) != 2 {
			t.Error("data lost on pinning")
		}
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeallocateFreesFrames(t *testing.T) {
	machine := ace.MustMachine(smallCfg(2))
	k := vm.NewKernel(machine, policy.NewDefault())
	task := k.NewTask("t")
	machine.Engine().Spawn("main", 0, func(th *sim.Thread) {
		c := vm.NewContext(k, task, th, 0)
		before := machine.Memory().Global().Free()
		base := task.Allocate("tmp", 16384, mmu.ProtReadWrite)
		for i := uint32(0); i < 4; i++ {
			c.Store32(base+i*4096, i)
		}
		if machine.Memory().Global().Free() != before-4 {
			t.Errorf("expected 4 frames in use, free %d->%d", before, machine.Memory().Global().Free())
		}
		task.Deallocate(th, base)
		if machine.Memory().Global().Free() != before {
			t.Error("Deallocate did not release frames")
		}
		if machine.Memory().Local(0).InUse() != 0 {
			t.Error("Deallocate did not release local copies")
		}
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPageoutResetsPin is E10: a pinned page that is paged out and back in
// starts with fresh placement state — the only occasion the paper's system
// reconsiders a pinning decision (§4.3 footnote 4).
func TestPageoutResetsPin(t *testing.T) {
	cfg := smallCfg(2)
	cfg.GlobalFrames = 4 // tiny global memory forces pageout
	machine := ace.MustMachine(cfg)
	k := vm.NewKernel(machine, policy.NewThreshold(1))
	task := k.NewTask("t")
	hot := task.Allocate("hot", 4096, mmu.ProtReadWrite)
	filler := task.Allocate("filler", 4*4096, mmu.ProtReadWrite)
	machine.Engine().Spawn("main", 0, func(th *sim.Thread) {
		c := vm.NewContext(k, task, th, 0)
		// Pin the hot page by ping-ponging writes: the move during the
		// second write reaches the threshold, and the third write finds the
		// page over the limit and pins it.
		c.Store32(hot, 11)
		c.MigrateTo(1)
		c.Store32(hot, 22)
		c.MigrateTo(0)
		c.Store32(hot, 22)
		pg := task.EntryAt(hot).Object().Page(0)
		if !pg.Pinned() {
			t.Fatal("setup: page should be pinned")
		}
		// Touch filler pages until the hot page is evicted.
		for i := uint32(0); i < 4; i++ {
			c.Store32(filler+i*4096, i)
		}
		if task.EntryAt(hot).Object().Page(0) != nil {
			t.Fatal("hot page was not paged out")
		}
		if k.Stats().Pageouts == 0 {
			t.Fatal("no pageout counted")
		}
		// Touch it again: pagein with fresh state.
		if got := c.Load32(hot); got != 22 {
			t.Errorf("paged-in data = %d, want 22", got)
		}
		pg2 := task.EntryAt(hot).Object().Page(0)
		if pg2 == nil {
			t.Fatal("pagein did not restore page")
		}
		if pg2.Pinned() || pg2.Moves() != 0 {
			t.Error("pagein did not reset placement state")
		}
		if pg2.State() == numa.GlobalWritable {
			t.Error("paged-in page should be cacheable again")
		}
		if k.Stats().Pageins == 0 {
			t.Error("no pagein counted")
		}
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPragmaHint(t *testing.T) {
	machine := ace.MustMachine(smallCfg(2))
	k := vm.NewKernel(machine, policy.NewPragma(nil))
	task := k.NewTask("t")
	base := task.Allocate("noncache", 4096, mmu.ProtReadWrite)
	task.SetHint(base, numa.HintNoncacheable)
	machine.Engine().Spawn("main", 0, func(th *sim.Thread) {
		c := vm.NewContext(k, task, th, 0)
		c.Store32(base, 1)
		pg := task.EntryAt(base).Object().Page(0)
		if pg.State() != numa.GlobalWritable {
			t.Errorf("noncacheable page state = %v, want global-writable", pg.State())
		}
		if pg.Hint() != numa.HintNoncacheable {
			t.Error("hint not propagated to page")
		}
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

// TestUnixMasterSharing is E12: with the Unix-master mode on, system calls
// that touch user memory run on processor 0, dragging otherwise-private
// pages into sharing with the master processor.
func TestUnixMasterSharing(t *testing.T) {
	for _, master := range []bool{false, true} {
		machine := ace.MustMachine(smallCfg(3))
		k := vm.NewKernel(machine, policy.NewThreshold(1))
		k.UnixMaster = master
		task := k.NewTask("t")
		stack := task.Allocate("stack", 4096, mmu.ProtReadWrite)
		machine.Engine().Spawn("w", 0, func(th *sim.Thread) {
			c := vm.NewContext(k, task, th, 2)
			for i := 0; i < 4; i++ {
				c.Store32(stack, uint32(i))
				c.Syscall(100, stack) // e.g. sigvec reading the user stack
			}
		})
		if err := machine.Engine().Run(); err != nil {
			t.Fatal(err)
		}
		r0 := machine.Proc(0).Refs()
		if master && r0.Total() == 0 {
			t.Error("unix-master syscalls made no references from cpu0")
		}
		if !master && r0.Total() != 0 {
			t.Error("without unix-master, cpu0 should be idle")
		}
	}
}

func TestQuantumHook(t *testing.T) {
	cfg := smallCfg(2)
	cfg.Quantum = 10 * sim.Microsecond
	machine := ace.MustMachine(cfg)
	k := vm.NewKernel(machine, policy.NewDefault())
	task := k.NewTask("t")
	var fired int
	machine.Engine().Spawn("w", 0, func(th *sim.Thread) {
		c := vm.NewContext(k, task, th, 0)
		c.OnQuantum = func(*vm.Context) { fired++ }
		c.Compute(1000) // 500µs of work at 0.5µs/instr
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Error("quantum hook never fired")
	}
}

func TestAllocationAlignmentAndGuards(t *testing.T) {
	machine := ace.MustMachine(smallCfg(2))
	k := vm.NewKernel(machine, policy.NewDefault())
	task := k.NewTask("t")
	a := task.Allocate("a", 100, mmu.ProtReadWrite) // rounds to one page
	b := task.Allocate("b", 4097, mmu.ProtReadWrite)
	if a%4096 != 0 || b%4096 != 0 {
		t.Error("allocations not page aligned")
	}
	if b < a+4096+4096 {
		t.Error("no guard page between regions")
	}
	e := task.EntryAt(b)
	if e.Length() != 8192 {
		t.Errorf("entry length = %d, want 8192", e.Length())
	}
	if task.EntryAt(a+4096) != nil {
		t.Error("guard page should not be mapped")
	}
	if e.Start() != b || e.End() != b+8192 || e.Name() != "b" {
		t.Error("entry accessors wrong")
	}
}

func TestBadMapsPanic(t *testing.T) {
	machine := ace.MustMachine(smallCfg(2))
	k := vm.NewKernel(machine, policy.NewDefault())
	task := k.NewTask("t")
	obj := k.NewObject("o", 4096)
	for name, fn := range map[string]func(){
		"unaligned offset": func() { task.Map("x", obj, 100, 4096, mmu.ProtRead) },
		"zero length":      func() { task.Map("x", obj, 0, 0, mmu.ProtRead) },
		"beyond object":    func() { task.Map("x", obj, 0, 8192, mmu.ProtRead) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSyscallStaysOnProcWithoutMaster(t *testing.T) {
	machine := ace.MustMachine(smallCfg(2))
	k := vm.NewKernel(machine, policy.NewDefault())
	task := k.NewTask("t")
	base := task.Allocate("d", 4096, mmu.ProtReadWrite)
	machine.Engine().Spawn("w", 0, func(th *sim.Thread) {
		c := vm.NewContext(k, task, th, 1)
		c.Store32(base, 1)
		before := th.SysTime()
		c.Syscall(10, base)
		if th.SysTime() <= before {
			t.Error("syscall charged no system time")
		}
		if c.Proc() != 1 {
			t.Error("syscall did not return to home processor")
		}
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCoherence runs several threads hammering a shared region
// through the full VM stack and checks reads against a reference array
// maintained at synchronization points.
func TestConcurrentCoherence(t *testing.T) {
	cfg := smallCfg(4)
	cfg.Quantum = 50 * sim.Microsecond
	machine := ace.MustMachine(cfg)
	k := vm.NewKernel(machine, policy.NewThreshold(3))
	task := k.NewTask("t")
	const words = 256
	base := task.Allocate("shared", words*4, mmu.ProtReadWrite)

	// Each thread owns a disjoint slice of words, so every value is
	// single-writer and reads have deterministic expectations even under
	// arbitrary interleaving; pages are still writably shared.
	for p := 0; p < 4; p++ {
		p := p
		machine.Engine().Spawn("w", 0, func(th *sim.Thread) {
			c := vm.NewContext(k, task, th, p)
			rng := rand.New(rand.NewSource(int64(p)))
			mine := make(map[uint32]uint32)
			for i := 0; i < 400; i++ {
				w := uint32(p + 4*rng.Intn(words/4)) // stride-4 ownership
				va := base + w*4
				if rng.Intn(2) == 0 {
					v := rng.Uint32()
					c.Store32(va, v)
					mine[va] = v
				} else if want, ok := mine[va]; ok {
					if got := c.Load32(va); got != want {
						t.Errorf("cpu%d: word %#x = %d, want %d", p, va, got, want)
					}
				}
			}
		})
	}
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	refs := machine.TotalRefs()
	if refs.Total() == 0 {
		t.Fatal("no references recorded")
	}
}

// TestMigrateWithPages is the §4.7 load-balancing primitive: a migrating
// thread takes its local-writable pages along, so it keeps running at
// local speed with no further faults; without page migration every page
// must fault its way over.
func TestMigrateWithPages(t *testing.T) {
	run := func(withPages bool) (faults uint64, user sim.Time) {
		machine := ace.MustMachine(smallCfg(2))
		k := vm.NewKernel(machine, policy.NewDefault())
		task := k.NewTask("t")
		base := task.Allocate("data", 4*4096, mmu.ProtReadWrite)
		machine.Engine().Spawn("w", 0, func(th *sim.Thread) {
			c := vm.NewContext(k, task, th, 0)
			for i := uint32(0); i < 4; i++ {
				c.Store32(base+i*4096, i)
			}
			before := machine.TotalFaults()
			if withPages {
				if moved := c.MigrateWithPages(1); moved != 4 {
					t.Errorf("moved %d pages, want 4", moved)
				}
			} else {
				c.MigrateTo(1)
			}
			startUser := th.UserTime()
			for pass := 0; pass < 50; pass++ {
				for i := uint32(0); i < 4; i++ {
					c.Store32(base+i*4096, i+uint32(pass))
				}
			}
			faults = machine.TotalFaults() - before
			user = th.UserTime() - startUser
		})
		if err := machine.Engine().Run(); err != nil {
			t.Fatal(err)
		}
		return faults, user
	}
	fWith, uWith := run(true)
	fWithout, uWithout := run(false)
	if fWith != 0 {
		t.Errorf("with page migration: %d faults after move, want 0", fWith)
	}
	if fWithout < 4 {
		t.Errorf("without page migration: %d faults, want one per page", fWithout)
	}
	if uWith != uWithout {
		// Both end up local eventually; user time should match.
		t.Errorf("user time differs: %v vs %v", uWith, uWithout)
	}
}
