package vm_test

import (
	"errors"
	"strings"
	"testing"

	"numasim/internal/mmu"
	"numasim/internal/vm"
)

func TestAccessErrorMessage(t *testing.T) {
	e := &vm.AccessError{VA: 0x1234, Write: true, Err: vm.ErrProtection}
	if !strings.Contains(e.Error(), "write fault at 0x1234") {
		t.Errorf("message = %q", e.Error())
	}
	if !errors.Is(e, vm.ErrProtection) {
		t.Error("unwrap broken")
	}
	r := &vm.AccessError{VA: 8, Err: vm.ErrNoMapping}
	if !strings.Contains(r.Error(), "read fault") {
		t.Errorf("message = %q", r.Error())
	}
}

func TestObjectAndTaskAccessors(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		task := c.Task()
		k := c.Kernel()
		if task.Name() != "t" || task.Kernel() != k || task.Pmap() == nil {
			t.Error("task accessors wrong")
		}
		if k.NUMA() == nil || k.Pmap() == nil {
			t.Error("kernel accessors wrong")
		}
		va := task.Allocate("obj", 2*4096, mmu.ProtReadWrite)
		e := task.EntryAt(va)
		if e.Prot() != mmu.ProtReadWrite {
			t.Error("entry prot wrong")
		}
		obj := e.Object()
		if obj.Name() != "obj" || obj.Pages() != 2 {
			t.Errorf("object accessors: %q %d", obj.Name(), obj.Pages())
		}
		if len(task.Entries()) != 1 {
			t.Errorf("entries = %d", len(task.Entries()))
		}
		c.Store64(va, 0x1122334455667788)
		if obj.Peek64(0, 0) != 0x1122334455667788 {
			t.Error("Peek64 wrong")
		}
	})
}

func TestContextInstructionCharges(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		cost := c.Kernel().Machine().Cost()
		cases := []struct {
			fn   func(int)
			unit int64
		}{
			{c.Compute, int64(cost.Instr)},
			{c.Mul, int64(cost.Mul)},
			{c.Div, int64(cost.Div)},
			{c.FAdd, int64(cost.FAdd)},
			{c.FMul, int64(cost.FMul)},
			{c.FDiv, int64(cost.FDiv)},
		}
		for i, cse := range cases {
			before := c.Thread().UserTime()
			cse.fn(3)
			got := int64(c.Thread().UserTime() - before)
			if got != 3*cse.unit {
				t.Errorf("case %d: charged %d, want %d", i, got, 3*cse.unit)
			}
		}
	})
}

func TestTestAndSetAndFetchOr(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		va := c.Task().Allocate("w", 4096, mmu.ProtReadWrite)
		if c.TestAndSet(va) != 0 {
			t.Error("first TAS should see 0")
		}
		if c.TestAndSet(va) != 1 {
			t.Error("second TAS should see 1")
		}
		c.Store32(va, 0b0101)
		if old := c.FetchOr32(va, 0b0010); old != 0b0101 {
			t.Errorf("FetchOr old = %b", old)
		}
		if c.Load32(va) != 0b0111 {
			t.Errorf("FetchOr result = %b", c.Load32(va))
		}
	})
}

func TestCrossPageAccessPanics(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		va := c.Task().Allocate("w", 2*4096, mmu.ProtReadWrite)
		defer func() {
			if r := recover(); r == nil {
				t.Error("64-bit access across a page boundary should fault")
			}
		}()
		c.Load64(va + 4096 - 4)
	})
}

func TestProtectUnmappedPanics(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		c.Task().Protect(c.Thread(), 0xdead0000, mmu.ProtRead)
	})
}

func TestSetHintUnmappedPanics(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		c.Task().SetHint(0xdead0000, 0)
	})
}

func TestSetHomeBadProcPanics(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		va := c.Task().Allocate("w", 4096, mmu.ProtReadWrite)
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		c.Task().SetHome(va, 99)
	})
}

func TestDeallocateUnmappedPanics(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		c.Task().Deallocate(c.Thread(), 0xdead0000)
	})
}

func TestCopyRegionUnmappedPanics(t *testing.T) {
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		c.Task().CopyRegion(c.Thread(), "x", 0xdead0000)
	})
}
