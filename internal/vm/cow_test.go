package vm_test

import (
	"testing"

	"numasim/internal/ace"
	"numasim/internal/policy"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

// cowRig runs body in one simulated thread with a small machine.
func cowRig(t *testing.T, body func(c *vm.Context, task *vm.Task, k *vm.Kernel)) {
	t.Helper()
	cfg := ace.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 64
	cfg.LocalFrames = 32
	machine := ace.MustMachine(cfg)
	k := vm.NewKernel(machine, policy.NewDefault())
	task := k.NewTask("t")
	machine.Engine().Spawn("main", 0, func(th *sim.Thread) {
		body(vm.NewContext(k, task, th, 0), task, k)
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCopyRegionSnapshotSemantics(t *testing.T) {
	cowRig(t, func(c *vm.Context, task *vm.Task, k *vm.Kernel) {
		src := task.Allocate("src", 2*4096, 3)
		c.Store32(src, 111)
		c.Store32(src+4096, 222)

		dst := task.CopyRegion(c.Thread(), "copy", src)
		if !task.EntryAt(dst).CopyOnWrite() || !task.EntryAt(src).CopyOnWrite() {
			t.Fatal("both sides should be COW after vm_copy")
		}

		// The copy sees the snapshot.
		if c.Load32(dst) != 111 || c.Load32(dst+4096) != 222 {
			t.Error("copy does not see source data")
		}
		// Writes to the source do not leak into the copy...
		c.Store32(src, 333)
		if got := c.Load32(dst); got != 111 {
			t.Errorf("copy sees source's post-copy write: %d", got)
		}
		// ...and writes to the copy do not leak into the source.
		c.Store32(dst+4096, 444)
		if got := c.Load32(src + 4096); got != 222 {
			t.Errorf("source sees copy's write: %d", got)
		}
		if c.Load32(src) != 333 || c.Load32(dst+4096) != 444 {
			t.Error("own writes lost")
		}
		if k.Stats().COWCopies == 0 {
			t.Error("no COW copies counted")
		}
	})
}

func TestCopyRegionSharesUntilWrite(t *testing.T) {
	cowRig(t, func(c *vm.Context, task *vm.Task, k *vm.Kernel) {
		src := task.Allocate("src", 4*4096, 3)
		for i := uint32(0); i < 4; i++ {
			c.Store32(src+i*4096, i+1)
		}
		framesBefore := c.Kernel().Machine().Memory().Global().InUse()
		dst := task.CopyRegion(c.Thread(), "copy", src)
		// Pure copying would need 4 new frames immediately; COW needs none.
		if used := c.Kernel().Machine().Memory().Global().InUse(); used != framesBefore {
			t.Errorf("vm_copy allocated %d frames eagerly", used-framesBefore)
		}
		// Reading the whole copy still allocates nothing.
		for i := uint32(0); i < 4; i++ {
			if c.Load32(dst+i*4096) != i+1 {
				t.Fatal("copy read wrong")
			}
		}
		if used := c.Kernel().Machine().Memory().Global().InUse(); used != framesBefore {
			t.Error("reading the copy allocated frames")
		}
		if k.Stats().COWReads == 0 {
			t.Error("no COW read-throughs counted")
		}
		// One write allocates exactly one page.
		c.Store32(dst, 99)
		if used := c.Kernel().Machine().Memory().Global().InUse(); used != framesBefore+1 {
			t.Errorf("first write allocated %d frames, want 1", used-framesBefore)
		}
	})
}

func TestCopyOfCopy(t *testing.T) {
	cowRig(t, func(c *vm.Context, task *vm.Task, k *vm.Kernel) {
		src := task.Allocate("src", 4096, 3)
		c.Store32(src, 1)
		c1 := task.CopyRegion(c.Thread(), "c1", src)
		c.Store32(c1, 2) // privatize in the first copy
		c2 := task.CopyRegion(c.Thread(), "c2", c1)
		if got := c.Load32(c2); got != 2 {
			t.Errorf("second copy = %d, want first copy's view 2", got)
		}
		c.Store32(c1, 3)
		if got := c.Load32(c2); got != 2 {
			t.Errorf("second copy sees later write: %d", got)
		}
		if c.Load32(src) != 1 {
			t.Error("source disturbed")
		}
	})
}

func TestCopyRegionZeroPages(t *testing.T) {
	// Copying a region whose pages were never touched must not copy
	// anything: first writes on either side just zero-fill.
	cowRig(t, func(c *vm.Context, task *vm.Task, k *vm.Kernel) {
		src := task.Allocate("src", 4096, 3)
		dst := task.CopyRegion(c.Thread(), "copy", src)
		c.Store32(dst, 5)
		c.Store32(src, 6)
		if c.Load32(dst) != 5 || c.Load32(src) != 6 {
			t.Error("independent writes wrong")
		}
		if k.Stats().COWCopies != 0 {
			t.Errorf("COWCopies = %d for untouched origin", k.Stats().COWCopies)
		}
	})
}

func TestCopyRegionDeallocate(t *testing.T) {
	cowRig(t, func(c *vm.Context, task *vm.Task, k *vm.Kernel) {
		src := task.Allocate("src", 4096, 3)
		c.Store32(src, 7)
		dst := task.CopyRegion(c.Thread(), "copy", src)
		if c.Load32(dst) != 7 {
			t.Fatal("copy wrong")
		}
		before := c.Kernel().Machine().Memory().Global().InUse()
		task.Deallocate(c.Thread(), dst)
		// Copy gone, origin still referenced by the source: only shadow
		// pages (none here) are freed.
		if c.Load32(src) != 7 {
			t.Error("source lost data after copy deallocated")
		}
		task.Deallocate(c.Thread(), src)
		after := c.Kernel().Machine().Memory().Global().InUse()
		if after >= before {
			t.Errorf("frames not reclaimed: %d -> %d", before, after)
		}
	})
}

func TestCopyRegionUnderPageout(t *testing.T) {
	cfg := ace.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 6
	cfg.LocalFrames = 8
	machine := ace.MustMachine(cfg)
	k := vm.NewKernel(machine, policy.NewDefault())
	task := k.NewTask("t")
	machine.Engine().Spawn("main", 0, func(th *sim.Thread) {
		c := vm.NewContext(k, task, th, 0)
		src := task.Allocate("src", 3*4096, 3)
		for i := uint32(0); i < 3; i++ {
			c.Store32(src+i*4096, 100+i)
		}
		dst := task.CopyRegion(th, "copy", src)
		// Blow through memory so origin pages get paged out.
		filler := task.Allocate("filler", 8*4096, 3)
		for i := uint32(0); i < 8; i++ {
			c.Store32(filler+i*4096, i)
		}
		if k.Stats().Pageouts == 0 {
			t.Error("no pageout pressure")
		}
		for i := uint32(0); i < 3; i++ {
			if got := c.Load32(dst + i*4096); got != 100+i {
				t.Errorf("copy page %d = %d after pageout, want %d", i, got, 100+i)
			}
		}
	})
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
}
