//go:build race

package vm_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
