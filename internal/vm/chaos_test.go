package vm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

// TestKernelChaos drives the full stack — faults, migration, replication,
// pinning, pragma changes, pageout under memory pressure, processor
// migration — with a long random operation stream, checking every load
// against shadow memory. It is the system-level safety net for the whole
// protocol.
func TestKernelChaos(t *testing.T) {
	seeds := []int64{1, 7, 42}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := ace.DefaultConfig()
			cfg.NProc = 3
			cfg.GlobalFrames = 12 // tight: constant pageout pressure
			cfg.LocalFrames = 8
			cfg.Quantum = 50 * sim.Microsecond
			machine := ace.MustMachine(cfg)
			k := vm.NewKernel(machine, policy.NewPragma(policy.NewThreshold(2)))
			task := k.NewTask("chaos")

			const regions = 4
			const pagesPerRegion = 5
			ps := uint32(cfg.PageSize)
			bases := make([]uint32, regions)
			for i := range bases {
				bases[i] = task.Allocate(fmt.Sprintf("r%d", i), pagesPerRegion*ps, 3)
			}
			shadow := make(map[uint32]uint32)
			rng := rand.New(rand.NewSource(seed))

			machine.Engine().Spawn("chaos", 0, func(th *sim.Thread) {
				c := vm.NewContext(k, task, th, 0)
				for step := 0; step < 4000; step++ {
					region := bases[rng.Intn(regions)]
					va := region + uint32(rng.Intn(pagesPerRegion))*ps + uint32(rng.Intn(int(ps/4)))*4
					switch op := rng.Intn(10); {
					case op < 4: // store
						v := rng.Uint32()
						c.Store32(va, v)
						shadow[va] = v
					case op < 8: // load
						if got, want := c.Load32(va), shadow[va]; got != want {
							t.Fatalf("seed %d step %d: [%#x] = %d, want %d", seed, step, va, got, want)
						}
					case op == 8: // change the region's pragma
						switch rng.Intn(4) {
						case 0:
							task.SetHint(region, numa.HintNone)
						case 1:
							task.SetHint(region, numa.HintCacheable)
						case 2:
							task.SetHint(region, numa.HintNoncacheable)
						case 3:
							task.SetHome(region, rng.Intn(cfg.NProc))
						}
					default: // migrate to another processor
						c.MigrateTo(rng.Intn(cfg.NProc))
					}
					if step%64 == 0 {
						for _, e := range task.Entries() {
							for i := 0; i < e.Object().Pages(); i++ {
								if pg := e.Object().Page(i); pg != nil {
									if err := k.NUMA().CheckInvariants(pg); err != nil {
										t.Fatalf("step %d: %v", step, err)
									}
								}
							}
						}
					}
				}
			})
			if err := machine.Engine().Run(); err != nil {
				t.Fatal(err)
			}
			if k.Stats().Pageouts == 0 {
				t.Error("chaos run never paged out; pressure knob broken")
			}
			// Final sweep: every shadowed word must still read back.
			for va, want := range shadow {
				e := task.EntryAt(va)
				idx := int((va - e.Start()) / ps)
				if got := e.Object().Peek32(idx, int(va&(ps-1))); got != want {
					t.Errorf("final [%#x] = %d, want %d", va, got, want)
				}
			}
		})
	}
}

// TestKernelChaosParallel repeats the chaos with three concurrent threads
// on disjoint word sets (so expectations stay deterministic), which adds
// genuine protocol concurrency: interleaved faults, shared pages, spills.
func TestKernelChaosParallel(t *testing.T) {
	cfg := ace.DefaultConfig()
	cfg.NProc = 3
	cfg.GlobalFrames = 16
	cfg.LocalFrames = 8
	cfg.Quantum = 50 * sim.Microsecond
	machine := ace.MustMachine(cfg)
	k := vm.NewKernel(machine, policy.NewThreshold(2))
	task := k.NewTask("chaos")
	const pages = 24
	ps := uint32(cfg.PageSize)
	base := task.Allocate("shared", pages*ps, 3)

	for p := 0; p < 3; p++ {
		p := p
		machine.Engine().Spawn(fmt.Sprintf("w%d", p), 0, func(th *sim.Thread) {
			c := vm.NewContext(k, task, th, p)
			rng := rand.New(rand.NewSource(int64(100 + p)))
			mine := make(map[uint32]uint32)
			for step := 0; step < 1500; step++ {
				// Stride-3 word ownership keeps writers disjoint while
				// sharing every page.
				word := uint32(p + 3*rng.Intn(int(ps/4/3)))
				va := base + uint32(rng.Intn(pages))*ps + word*4
				if rng.Intn(2) == 0 {
					v := rng.Uint32()
					c.Store32(va, v)
					mine[va] = v
				} else if want, ok := mine[va]; ok {
					if got := c.Load32(va); got != want {
						t.Errorf("cpu%d step %d: [%#x] = %d, want %d", p, step, va, got, want)
						return
					}
				}
			}
		})
	}
	if err := machine.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Pageouts == 0 {
		t.Error("no pageout pressure in parallel chaos")
	}
}
