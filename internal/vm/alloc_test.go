package vm_test

import (
	"testing"

	"numasim/internal/mmu"
	"numasim/internal/vm"
)

// TestHotPathZeroAlloc is the zero-allocation invariant the perf work
// promises: once a page is mapped and owned, the TLB-hit translate path
// and the local-reference charge path allocate nothing per access.
// testing.AllocsPerRun measures inside the simulated thread (the
// references must run under the engine); the results are asserted after
// Run returns. The guard is skipped under the race detector, whose
// runtime allocates on the measured paths.
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on the hot path; guard runs in non-race CI")
	}
	var tlbHit, localRef float64
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		base := c.Task().Allocate("data", 8192, mmu.ProtReadWrite)
		// Warm up: fault the pages in and take local-writable ownership so
		// subsequent accesses are pure TLB hits on a local frame.
		c.Store32(base, 1)
		c.Store32(base+4096, 2)
		_ = c.Load32(base)

		// TLB-hit path: repeated loads of one mapped address.
		tlbHit = testing.AllocsPerRun(200, func() {
			_ = c.Load32(base)
		})
		// Local-reference path: mixed loads and stores against locally
		// owned pages, exercising translate, charge and quantum ticking.
		localRef = testing.AllocsPerRun(200, func() {
			_ = c.Load32(base)
			c.Store32(base+4096, 3)
		})
	})
	if tlbHit != 0 {
		t.Errorf("TLB-hit load path allocates %.1f objects per access, want 0", tlbHit)
	}
	if localRef != 0 {
		t.Errorf("local-reference path allocates %.1f objects per access, want 0", localRef)
	}
}
