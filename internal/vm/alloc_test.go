package vm_test

import (
	"testing"

	"numasim/internal/mmu"
	"numasim/internal/policy"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

// TestHotPathZeroAlloc is the zero-allocation invariant the perf work
// promises: once a page is mapped and owned, the TLB-hit translate path
// and the local-reference charge path allocate nothing per access.
// testing.AllocsPerRun measures inside the simulated thread (the
// references must run under the engine); the results are asserted after
// Run returns. The guard is skipped under the race detector, whose
// runtime allocates on the measured paths.
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on the hot path; guard runs in non-race CI")
	}
	var tlbHit, localRef float64
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		base := c.Task().Allocate("data", 8192, mmu.ProtReadWrite)
		// Warm up: fault the pages in and take local-writable ownership so
		// subsequent accesses are pure TLB hits on a local frame.
		c.Store32(base, 1)
		c.Store32(base+4096, 2)
		_ = c.Load32(base)

		// TLB-hit path: repeated loads of one mapped address.
		tlbHit = testing.AllocsPerRun(200, func() {
			_ = c.Load32(base)
		})
		// Local-reference path: mixed loads and stores against locally
		// owned pages, exercising translate, charge and quantum ticking.
		localRef = testing.AllocsPerRun(200, func() {
			_ = c.Load32(base)
			c.Store32(base+4096, 3)
		})
	})
	if tlbHit != 0 {
		t.Errorf("TLB-hit load path allocates %.1f objects per access, want 0", tlbHit)
	}
	if localRef != 0 {
		t.Errorf("local-reference path allocates %.1f objects per access, want 0", localRef)
	}
}

// TestHotPathZeroAllocTopology reruns the core guard on a contended
// multi-node machine: the latency-matrix lookup, home-node mapping and
// token-bucket link charging that replaced the Local/Global constants must
// also be allocation-free per access.
func TestHotPathZeroAllocTopology(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on the hot path; guard runs in non-race CI")
	}
	cfg := smallCfg(4)
	cfg.Topology = "4socket"
	var tlbHit, localRef float64
	run1(t, cfg, nil, func(c *vm.Context) {
		base := c.Task().Allocate("data", 8192, mmu.ProtReadWrite)
		c.Store32(base, 1)
		c.Store32(base+4096, 2)
		_ = c.Load32(base)

		tlbHit = testing.AllocsPerRun(200, func() {
			_ = c.Load32(base)
		})
		localRef = testing.AllocsPerRun(200, func() {
			_ = c.Load32(base)
			c.Store32(base+4096, 3)
		})
	})
	if tlbHit != 0 {
		t.Errorf("4socket TLB-hit load path allocates %.1f objects per access, want 0", tlbHit)
	}
	if localRef != 0 {
		t.Errorf("4socket local-reference path allocates %.1f objects per access, want 0", localRef)
	}
}

// TestHotPathRootsZeroAlloc extends the guard to every remaining
// //numalint:hotpath root on Context and Kernel: the sized and atomic
// access paths, and the steady-state fault path (refault of an already
// materialized page). Together with TestHotPathZeroAlloc this pins the
// full set of annotated entry points, so the static hotpath pass and the
// runtime allocation counter agree about what "allocation-free" covers.
func TestHotPathRootsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on the hot path; guard runs in non-race CI")
	}
	counts := map[string]float64{}
	run1(t, smallCfg(2), nil, func(c *vm.Context) {
		base := c.Task().Allocate("data", 8192, mmu.ProtReadWrite)
		// Warm up both pages with every access width so ownership and
		// protection are settled before measuring.
		c.Store32(base, 1)
		c.Store64(base+4096, 2)
		_ = c.Load32(base)

		counts["Load8/Store8"] = testing.AllocsPerRun(200, func() {
			c.Store8(base+8, 0x5a)
			_ = c.Load8(base + 8)
		})
		counts["Load64/Store64"] = testing.AllocsPerRun(200, func() {
			c.Store64(base+16, 0x0123456789abcdef)
			_ = c.Load64(base + 16)
		})
		counts["LoadF64/StoreF64"] = testing.AllocsPerRun(200, func() {
			c.StoreF64(base+24, 3.5)
			_ = c.LoadF64(base + 24)
		})
		counts["TestAndSet"] = testing.AllocsPerRun(200, func() {
			_ = c.TestAndSet(base + 32)
		})
		counts["FetchOr32"] = testing.AllocsPerRun(200, func() {
			_ = c.FetchOr32(base+36, 0x10)
		})
		// Steady-state fault path: tear out the mappings for a materialized
		// page, then refault it through Kernel.Fault, placement and the
		// pmap enter path (mirrors BenchmarkFaultPath, which reports
		// 0 allocs/op).
		pm := c.Kernel().Pmap()
		counts["Fault"] = testing.AllocsPerRun(50, func() {
			if pg := c.Task().Pmap().Resident(base); pg != nil {
				pm.RemoveAll(c.Thread(), pg)
			}
			_ = c.Load32(base)
		})
	})
	for path, n := range counts {
		if n != 0 {
			t.Errorf("%s path allocates %.1f objects per access, want 0", path, n)
		}
	}
}

// heatMover is the zero-allocation guard's stand-in scheduler: hint
// recording must not allocate either.
type heatMover struct{ calls int }

// MigrateHint implements numa.ThreadMover.
//
//numalint:hotpath
func (m *heatMover) MigrateHint(th *sim.Thread, node int) bool {
	m.calls++
	return false
}

// TestHeatPathZeroAlloc extends the guard to the adaptive-policy
// machinery: with a capability-bearing policy bound (observer, advisor,
// retirer all live) and a thread mover wired in, the steady-state
// refault path — which now also decays and bumps the heat histograms,
// consults the advisor and offers hints to the mover — must still
// allocate nothing per access.
func TestHeatPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on the hot path; guard runs in non-race CI")
	}
	pol, err := policy.Parse("coplace:min=1")
	if err != nil {
		t.Fatal(err)
	}
	var fault float64
	run1(t, smallCfg(2), pol, func(c *vm.Context) {
		c.Kernel().NUMA().SetThreadMover(&heatMover{})
		base := c.Task().Allocate("data", 8192, mmu.ProtReadWrite)
		c.Store32(base, 1)
		_ = c.Load32(base)
		pm := c.Kernel().Pmap()
		fault = testing.AllocsPerRun(50, func() {
			if pg := c.Task().Pmap().Resident(base); pg != nil {
				pm.RemoveAll(c.Thread(), pg)
			}
			_ = c.Load32(base)
		})
	})
	if fault != 0 {
		t.Errorf("heat-tracking fault path allocates %.1f objects per access, want 0", fault)
	}
}
