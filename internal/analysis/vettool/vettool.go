// Package vettool speaks the `go vet -vettool=` unit-checker protocol, so
// the numalint analyzers run under the go command's build cache exactly
// like the standard vet suite.
//
// The protocol (see cmd/go/internal/work and the reference implementation
// in golang.org/x/tools/go/analysis/unitchecker):
//
//   - `tool -V=full` prints "<name> version devel ... buildID=<hex>"; the
//     go command folds the line into its action cache key, so the hex must
//     change whenever the tool binary changes (we hash the executable);
//   - `tool -flags` prints a JSON description of the tool's flags ("[]");
//   - `tool <file>.cfg` analyzes one compilation unit: the cfg file is a
//     JSON Config naming the unit's sources and the export data of every
//     dependency. Diagnostics go to stderr as "file:line:col: message" and
//     the exit status is 2 when there are findings.
//
// The go command supplies export data for all imports in Config, so no
// `go list` subprocesses run here — analysis is pure CPU on cached data.
package vettool

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"

	"numasim/internal/analysis"
	"numasim/internal/analysis/load"
)

// Config is the JSON payload of a vet .cfg file, as written by the go
// command for each compilation unit.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the protocol for args (os.Args[1:]). It returns the
// process exit status: 0 clean, 1 tool error, 2 diagnostics reported.
func Main(progname string, args []string, analyzers []*analysis.Analyzer) int {
	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			fmt.Printf("%s version devel numalint buildID=%s\n", progname, selfID())
			return 0
		case "-V", "-V=short":
			fmt.Printf("%s version devel numalint\n", progname)
			return 0
		case "-flags":
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) != 1 || filepath.Ext(args[0]) != ".cfg" {
		fmt.Fprintf(os.Stderr, "%s: in vettool mode expected a single .cfg argument, got %q\n", progname, args)
		return 1
	}
	n, err := runUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	if n > 0 {
		return 2
	}
	return 0
}

// selfID hashes the running executable, keying the go command's cache to
// this build of the tool.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// runUnit analyzes one compilation unit and returns the finding count.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// The go command requires the facts file to exist even though the
	// numalint analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("numalint: no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	exp := &load.Exports{
		Files:     cfg.PackageFile,
		ImportMap: cfg.ImportMap,
		NoList:    true,
	}
	pkg, err := load.Check(cfg.ImportPath, fset, cfg.GoFiles, exp.Importer(fset))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	if len(pkg.Files) == 0 {
		// A unit of test files only (external _test package): analyzers
		// do not inspect test code.
		return 0, nil
	}

	findings, err := analysis.Run(fset, pkg.Files, pkg.Types, pkg.TypesInfo, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(f.Diag.Pos), f.Analyzer.Name, f.Diag.Message)
	}
	return len(findings), nil
}
