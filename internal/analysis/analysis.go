// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library so the repository carries no external dependencies.
//
// It defines the Analyzer/Pass/Diagnostic vocabulary used by the numalint
// analyzers (internal/analysis/passes/...), which statically enforce the
// simulator's determinism, protocol and units invariants. Drivers live
// alongside it:
//
//   - internal/analysis/load type-checks packages of this module via
//     `go list -export` (the standalone numalint mode);
//   - internal/analysis/vettool speaks the `go vet -vettool` unit-checker
//     protocol, so the same analyzers run under the build cache;
//   - internal/analysis/analysistest runs an analyzer over a fixture
//     directory and checks its diagnostics against `// want` comments.
//
// Analyzers never inspect *_test.go files: test code may legitimately
// exercise nondeterminism or partial switches, and the invariants guarded
// here are about what the simulator computes, not how it is probed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a short description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass holds one analyzed package and the hooks for reporting findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, parsed with comments. Test files
	// (*_test.go) are excluded before the pass runs.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Directive is one //numalint:<name> comment.
type Directive struct {
	Pos  token.Pos
	Name string // e.g. "ordered", "deterministic", "stateenum"
	// Arg is the rest of the comment line after the name — free text that
	// escape directives use to carry a justification.
	Arg string
	// Node is the declaration the directive is attached to, when it heads
	// a declaration's doc comment (nil for free-standing directives).
	Node ast.Node
}

const directivePrefix = "//numalint:"

// Directives collects every //numalint: comment in the file, attaching
// doc-comment directives to their declarations.
func Directives(file *ast.File) []Directive {
	byPos := make(map[token.Pos]ast.Node)
	ast.Inspect(file, func(n ast.Node) bool {
		var doc *ast.CommentGroup
		switch d := n.(type) {
		case *ast.GenDecl:
			doc = d.Doc
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.TypeSpec:
			doc = d.Doc
		case *ast.ValueSpec:
			doc = d.Doc
		case *ast.Field:
			doc = d.Doc
		}
		if doc != nil {
			for _, c := range doc.List {
				byPos[c.Pos()] = n
			}
		}
		return true
	})
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			name := strings.TrimPrefix(c.Text, directivePrefix)
			var arg string
			if i := strings.IndexAny(name, " \t"); i >= 0 {
				arg = strings.TrimSpace(name[i:])
				name = name[:i]
			}
			out = append(out, Directive{Pos: c.Pos(), Name: name, Arg: arg, Node: byPos[c.Pos()]})
		}
	}
	return out
}

// HasPackageDirective reports whether any file of the pass carries the
// named free-standing or package-level directive.
func HasPackageDirective(pass *Pass, name string) bool {
	for _, f := range pass.Files {
		for _, d := range Directives(f) {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}

// NamedType resolves an expression's type to its *types.Named form,
// unwrapping aliases and pointers. Returns nil for unnamed types.
func NamedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// TypeKey renders a named type as "import/path.Name" for config lookups.
func TypeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// ConstantsOfType enumerates the package-scope constants declared with
// exactly type T in T's declaring package (the enum members).
func ConstantsOfType(n *types.Named) []*types.Const {
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), n) {
			out = append(out, c)
		}
	}
	return out
}

// IsTestFile reports whether filename names a Go test file.
func IsTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
