package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numasim/internal/analysis/load"

	"go/token"
)

func write(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckUnparseableFile(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "bad.go", "package p\n\nfunc broken( {\n")
	_, err := load.Check("p", token.NewFileSet(), []string{path}, nil)
	if err == nil {
		t.Fatal("want a parse error for malformed source, got nil")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("parse error should name the file: %v", err)
	}
}

func TestCheckTypeError(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "typo.go", "package p\n\nfunc f() int { return undefinedIdent }\n")
	_, err := load.Check("p", token.NewFileSet(), []string{path}, nil)
	if err == nil {
		t.Fatal("want a type-check error for an undefined identifier, got nil")
	}
	if !strings.Contains(err.Error(), "undefinedIdent") {
		t.Errorf("type error should name the identifier: %v", err)
	}
}

func TestCheckTestFilesOnly(t *testing.T) {
	// An external _test package hands the loader nothing but test files;
	// analyzers never inspect test code, so Check returns an empty package
	// rather than an error.
	dir := t.TempDir()
	path := write(t, dir, "p_test.go", "package p_test\n")
	pkg, err := load.Check("p", token.NewFileSet(), []string{path}, nil)
	if err != nil {
		t.Fatalf("test-only package should load empty, got error: %v", err)
	}
	if len(pkg.Files) != 0 {
		t.Errorf("test files must be dropped, got %d files", len(pkg.Files))
	}
	if pkg.Types == nil || pkg.TypesInfo == nil {
		t.Error("empty package must still carry non-nil Types and TypesInfo")
	}
}

func TestCheckGood(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "ok.go", "package p\n\nfunc f() int { return 1 }\n")
	pkg, err := load.Check("p", token.NewFileSet(), []string{path}, nil)
	if err != nil {
		t.Fatalf("valid source should check: %v", err)
	}
	if len(pkg.Files) != 1 || pkg.Types.Name() != "p" {
		t.Errorf("unexpected package shape: files=%d name=%s", len(pkg.Files), pkg.Types.Name())
	}
}

func TestPackagesMissingPattern(t *testing.T) {
	root := moduleRoot(t)
	_, err := load.Packages(root, "./does/not/exist")
	if err == nil {
		t.Fatal("want an error for a pattern matching no package, got nil")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error should identify the failing go list invocation: %v", err)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}
