// Package load type-checks packages of this module for the numalint
// analyzers without any dependency outside the standard library.
//
// It drives `go list -deps -export -json`, which compiles (or fetches from
// the build cache) the export data of every dependency, then parses the
// target packages from source and type-checks them against that export
// data via the standard gc importer. The result is the same typed syntax
// an x/tools-based driver would hand an analyzer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"numasim/internal/analysis"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File // non-test files, parsed with comments
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// Exports resolves import paths to compiled export data. The zero value
// resolves lazily by shelling out to `go list -export`; prefilled maps
// (the vettool protocol's PackageFile) take precedence.
type Exports struct {
	mu sync.Mutex
	// Files maps a package path to its export data file.
	Files map[string]string
	// ImportMap maps source-level import paths to package paths
	// (vendoring or test-variant indirection); identity when absent.
	ImportMap map[string]string
	// Dir is the working directory for lazy `go list` calls.
	Dir string
	// NoList disables lazy resolution (vettool mode: the go command has
	// already supplied every legal import).
	NoList bool
}

// Lookup returns a reader of the export data for path.
func (e *Exports) Lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.ImportMap[path]; ok {
		path = p
	}
	if e.Files == nil {
		e.Files = make(map[string]string)
	}
	file, ok := e.Files[path]
	if !ok {
		if e.NoList {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		if err := e.list(path); err != nil {
			return nil, err
		}
		if file, ok = e.Files[path]; !ok {
			return nil, fmt.Errorf("go list produced no export data for %q", path)
		}
	}
	return os.Open(file)
}

// list resolves path (and its dependencies, cheaply, since they share
// build-cache entries) into e.Files.
func (e *Exports) list(patterns ...string) error {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export,DepOnly,Standard,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = e.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Export != "" {
			e.Files[p.ImportPath] = p.Export
		}
	}
	return nil
}

// Importer returns a types.Importer backed by the export map.
func (e *Exports) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", e.Lookup)
}

// NewInfo allocates a fully populated types.Info.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Check parses and type-checks one package from its file list. Test files
// are dropped (analyzers do not inspect them). sizes may be nil.
func Check(pkgPath string, fset *token.FileSet, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		if analysis.IsTestFile(name) {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// Nothing but test files (an external _test package): analyzers do
		// not inspect test code, so return an empty package.
		return &Package{PkgPath: pkgPath, Fset: fset, Types: types.NewPackage(pkgPath, "_"), TypesInfo: NewInfo()}, nil
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// Packages loads, parses and type-checks the packages matching the go
// list patterns (e.g. "./..."), in deterministic import-path order.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	exp := &Exports{Files: make(map[string]string), Dir: dir}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export,DepOnly,Standard,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Export != "" {
			exp.Files[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		fset := token.NewFileSet()
		var names []string
		for _, g := range t.GoFiles {
			names = append(names, filepath.Join(t.Dir, g))
		}
		pkg, err := Check(t.ImportPath, fset, names, exp.Importer(fset))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
