package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding couples a diagnostic with the analyzer that produced it.
type Finding struct {
	Analyzer *Analyzer
	Diag     Diagnostic
}

// Run applies every analyzer to one type-checked package and returns the
// findings sorted by file position (deterministic across runs).
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				findings = append(findings, Finding{Analyzer: a, Diag: d})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		pi, pj := fset.Position(findings[i].Diag.Pos), fset.Position(findings[j].Diag.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return findings, nil
}
