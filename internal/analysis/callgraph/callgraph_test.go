package callgraph_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"numasim/internal/analysis/callgraph"
	"numasim/internal/analysis/load"
)

// check type-checks src as a single-file, import-free package and returns
// its syntax and type information.
func check(t *testing.T, src string) ([]*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := load.NewInfo()
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return []*ast.File{file}, info
}

// node finds the graph node for the function or method named name.
func node(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("no node for %s", name)
	return nil
}

// key renders an edge compactly for set membership checks.
func key(e callgraph.Edge) string {
	target := e.Dynamic
	if e.Callee != nil {
		target = e.Callee.Name()
		if e.Interface {
			target += "/iface"
		}
	}
	return fmt.Sprintf("%s %s", e.Kind, target)
}

func edgeSet(n *callgraph.Node) map[string]int {
	out := make(map[string]int)
	for _, e := range n.Out {
		out[key(e)]++
	}
	return out
}

func TestBuildEdgeKinds(t *testing.T) {
	files, info := check(t, `
package p

type T struct{ F func() }

func leaf() {}

func (t *T) M() {}

type I interface{ Do() }

func root(t *T, i I, fn func()) {
	leaf()
	defer leaf()
	go leaf()
	t.M()
	i.Do()
	fn()
	t.F()
}
`)
	g := callgraph.Build(files, info)
	edges := edgeSet(node(t, g, "root"))
	for _, want := range []string{
		"call leaf",
		"defer leaf",
		"go leaf",
		"call M",
		"call Do/iface",
		"call function value fn",
		"call function-typed field F",
	} {
		if edges[want] != 1 {
			t.Errorf("edge %q: got %d, want 1 (all: %v)", want, edges[want], edges)
		}
	}
	if len(node(t, g, "root").Out) != 7 {
		t.Errorf("root has %d edges, want 7: %v", len(node(t, g, "root").Out), edges)
	}
	if len(node(t, g, "leaf").Out) != 0 {
		t.Errorf("leaf should have no out-edges")
	}
}

func TestBuildMethodValues(t *testing.T) {
	files, info := check(t, `
package p

type T struct{}

func (t *T) M() {}

func sink(func()) {}

func take(t *T) {
	g := t.M
	_ = g
	sink(t.M)
	sink(g)
}
`)
	g := callgraph.Build(files, info)
	edges := edgeSet(node(t, g, "take"))
	// Each method value mention outside call position is one Ref edge; the
	// two sink calls are direct calls.
	if edges["reference M"] != 2 {
		t.Errorf("want 2 method-value references to M, got %d (all: %v)", edges["reference M"], edges)
	}
	if edges["call sink"] != 2 {
		t.Errorf("want 2 calls of sink, got %d (all: %v)", edges["call sink"], edges)
	}
}

func TestBuildDeferredAndLiteralBodies(t *testing.T) {
	files, info := check(t, `
package p

func leaf() {}

func cleanup() {}

func root() {
	defer cleanup()
	func() {
		leaf()
	}()
	defer func() {
		leaf()
	}()
}
`)
	g := callgraph.Build(files, info)
	edges := edgeSet(node(t, g, "root"))
	if edges["defer cleanup"] != 1 {
		t.Errorf("want deferred call of cleanup, got: %v", edges)
	}
	// Function-literal bodies are attributed to the enclosing declaration:
	// both leaf() calls belong to root, and the invoked literals themselves
	// add no dynamic edge.
	if edges["call leaf"] != 2 {
		t.Errorf("want 2 calls of leaf via literal bodies, got %d (all: %v)", edges["call leaf"], edges)
	}
	for k := range edges {
		if k == "defer cleanup" || k == "call leaf" {
			continue
		}
		t.Errorf("unexpected edge %q (immediately invoked literals must not produce dynamic edges)", k)
	}
}
