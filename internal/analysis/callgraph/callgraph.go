// Package callgraph builds a conservative per-package call graph for the
// numalint interprocedural passes (hotpath, oracleparity).
//
// The graph has one node per declared function or method with a body, and
// one out-edge per potential transfer of control found in that body:
// direct calls, calls started by go and defer statements, and references
// to functions outside call position (method values, functions stored
// into variables or struct fields, functions passed as arguments). Sites
// whose target cannot be resolved statically — calls through function
// values, function-typed fields, and interface method dispatch — produce
// edges with a nil Callee and a human-readable Dynamic description, so a
// pass can either reject them or demand an annotation.
//
// Code inside function literals is attributed to the enclosing declared
// function: a closure built on a hot path may run anywhere, so its body
// must meet the same obligations as the function that builds it.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Kind classifies how an edge's target may be reached.
type Kind int

const (
	// Call is a direct call in call position.
	Call Kind = iota
	// Go is a call started by a go statement.
	Go
	// Defer is a call scheduled by a defer statement.
	Defer
	// Ref is a function referenced outside call position: a method value,
	// a function stored or passed as a value. The reference may be invoked
	// later from anywhere, so passes treat it like a call.
	Ref
)

func (k Kind) String() string {
	switch k {
	case Call:
		return "call"
	case Go:
		return "go"
	case Defer:
		return "defer"
	case Ref:
		return "reference"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Edge is one potential transfer of control out of a function.
type Edge struct {
	Kind Kind
	Pos  token.Pos
	// Callee is the statically resolved target, possibly from another
	// package. Nil when the target cannot be resolved; Dynamic then
	// describes the site.
	Callee *types.Func
	// Interface marks a resolved method whose dispatch is still dynamic
	// (the receiver is an interface): Callee names the interface method,
	// but any implementation may run.
	Interface bool
	// Dynamic describes an unresolvable target, e.g. "function value" or
	// "function-typed field RefTrace".
	Dynamic string
}

// Node is one declared function or method and its outgoing edges, in
// source order.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Out  []Edge
}

// Graph is the call graph of one package.
type Graph struct {
	// Nodes maps each declared function object to its node.
	Nodes map[*types.Func]*Node
	// ByDecl maps the declaration syntax to the same nodes.
	ByDecl map[*ast.FuncDecl]*Node
}

// Node returns the node for f, or nil if f is not declared with a body in
// this package.
func (g *Graph) Node(f *types.Func) *Node { return g.Nodes[f] }

// Build constructs the call graph for the given files, which must all
// belong to the package described by info.
func Build(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{
		Nodes:  make(map[*types.Func]*Node),
		ByDecl: make(map[*ast.FuncDecl]*Node),
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Func: obj, Decl: fd}
			g.Nodes[obj] = n
			g.ByDecl[fd] = n
			if fd.Body != nil {
				collect(n, fd.Body, info)
			}
		}
	}
	return g
}

// collect appends every edge found in body to n.Out.
func collect(n *Node, body *ast.BlockStmt, info *types.Info) {
	// First sweep: note which call expressions are the operands of go and
	// defer statements, so the call visit below can label them.
	stmtKind := make(map[*ast.CallExpr]Kind)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			stmtKind[x.Call] = Go
		case *ast.DeferStmt:
			stmtKind[x.Call] = Defer
		}
		return true
	})

	// consumed marks expressions already accounted for as the function
	// operand of a direct call (or as a type in a conversion), so the Ref
	// sweep does not double-report them.
	consumed := make(map[ast.Node]bool)

	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			kind := Call
			if k, ok := stmtKind[x]; ok {
				kind = k
			}
			callEdge(n, x, kind, info, consumed)
		case *ast.SelectorExpr:
			if consumed[x] {
				consumed[x.Sel] = true
				return true
			}
			if f, ok := info.Uses[x.Sel].(*types.Func); ok {
				consumed[x.Sel] = true
				n.Out = append(n.Out, refEdge(x.Pos(), f, info, x))
			}
		case *ast.Ident:
			if consumed[x] {
				return true
			}
			if f, ok := info.Uses[x].(*types.Func); ok {
				n.Out = append(n.Out, refEdge(x.Pos(), f, info, nil))
			}
		}
		return true
	})
}

// refEdge builds a Ref edge for a function mentioned outside call
// position. A method value on an interface receiver stays dynamic.
func refEdge(pos token.Pos, f *types.Func, info *types.Info, sel *ast.SelectorExpr) Edge {
	e := Edge{Kind: Ref, Pos: pos, Callee: f}
	if sel != nil {
		if s, ok := info.Selections[sel]; ok && types.IsInterface(s.Recv()) {
			e.Interface = true
		}
	}
	return e
}

// callEdge classifies one call expression and appends the resulting edge,
// if any, to n.Out. Conversions and calls of builtins produce no edge:
// passes that care about builtins (append, make, ...) inspect the syntax
// themselves.
func callEdge(n *Node, call *ast.CallExpr, kind Kind, info *types.Info, consumed map[ast.Node]bool) {
	fun := ast.Unparen(call.Fun)
	// Strip explicit generic instantiation: F[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := info.Types[fun]; ok && tv.IsValue() {
			if _, isFunc := tv.Type.Underlying().(*types.Signature); isFunc {
				fun = ast.Unparen(ix.X)
			}
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		// Conversion, not a call.
		consumed[fun] = true
		return
	}
	switch f := fun.(type) {
	case *ast.Ident:
		consumed[f] = true
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			n.Out = append(n.Out, Edge{Kind: kind, Pos: call.Pos(), Callee: obj})
		case *types.Builtin:
			// No edge; syntax-level checks handle builtins.
		case nil:
			// Defined here (impossible for a call) or unresolved; ignore.
		default:
			// A variable or parameter of function type.
			n.Out = append(n.Out, Edge{Kind: kind, Pos: call.Pos(),
				Dynamic: fmt.Sprintf("function value %s", f.Name)})
		}
	case *ast.SelectorExpr:
		consumed[f] = true
		consumed[f.Sel] = true
		if s, ok := info.Selections[f]; ok {
			switch s.Kind() {
			case types.MethodVal, types.MethodExpr:
				m := s.Obj().(*types.Func)
				e := Edge{Kind: kind, Pos: call.Pos(), Callee: m}
				if types.IsInterface(s.Recv()) {
					e.Interface = true
				}
				n.Out = append(n.Out, e)
			case types.FieldVal:
				n.Out = append(n.Out, Edge{Kind: kind, Pos: call.Pos(),
					Dynamic: fmt.Sprintf("function-typed field %s", f.Sel.Name)})
			}
			return
		}
		// Package-qualified reference: pkg.F(...) or pkg.Var(...).
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			n.Out = append(n.Out, Edge{Kind: kind, Pos: call.Pos(), Callee: obj})
		case *types.Builtin:
			// e.g. unsafe.Sizeof; no edge.
		default:
			n.Out = append(n.Out, Edge{Kind: kind, Pos: call.Pos(),
				Dynamic: fmt.Sprintf("function value %s", f.Sel.Name)})
		}
	case *ast.FuncLit:
		// Immediately invoked literal: its body is already attributed to
		// the enclosing function by the surrounding walk.
		consumed[f] = true
	default:
		n.Out = append(n.Out, Edge{Kind: kind, Pos: call.Pos(), Dynamic: "function value"})
	}
}
