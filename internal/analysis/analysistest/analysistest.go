// Package analysistest runs a numalint analyzer over a fixture directory
// and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// A fixture is a flat directory of Go files (conventionally under a
// testdata/src/<name> tree, which the go tool ignores). Each line that
// should be diagnosed carries a comment of the form
//
//	// want `regexp`
//
// (backquoted or double-quoted; several patterns may follow one want for
// lines with several findings). The fixture is type-checked against real
// export data — stdlib and module imports both work — resolved lazily
// through `go list -export`.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"numasim/internal/analysis"
	"numasim/internal/analysis/load"
)

// Option adjusts a fixture run.
type Option func(*config)

type config struct {
	importPath string
}

// WithImportPath type-checks the fixture under the given import path,
// letting tests exercise path-keyed analyzer configuration (e.g. the
// determinism analyzer's restricted-package list).
func WithImportPath(path string) Option {
	return func(c *config) { c.importPath = path }
}

// TestData returns the caller package's testdata/src root.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata", "src")
}

// Run applies the analyzer to the fixture directory and reports any
// mismatch between its diagnostics and the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, opts ...Option) {
	t.Helper()
	cfg := config{importPath: "fixture/" + filepath.Base(dir)}
	for _, o := range opts {
		o(&cfg)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	exp := &load.Exports{Files: make(map[string]string)}
	pkg, err := load.Check(cfg.importPath, fset, files, exp.Importer(fset))
	if err != nil {
		t.Fatalf("analysistest: type-checking %s: %v", dir, err)
	}

	findings, err := analysis.Run(fset, pkg.Files, pkg.Types, pkg.TypesInfo, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants := parseWants(t, files)
	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, f := range findings {
		posn := fset.Position(f.Diag.Pos)
		got[key{posn.Filename, posn.Line}] = append(got[key{posn.Filename, posn.Line}], f.Diag.Message)
	}

	for _, w := range wants {
		k := key{w.file, w.line}
		matched := false
		for i, msg := range got[k] {
			if w.re.MatchString(msg) {
				got[k] = append(got[k][:i], got[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
	var leftover []string
	//numalint:ordered — leftover is sorted before reporting
	for k, msgs := range got {
		for _, m := range msgs {
			leftover = append(leftover, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", filepath.Base(k.file), k.line, m))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Error(l)
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE matches one pattern in a want comment: `...` or "...".
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants extracts // want comments from the fixture files.
func parseWants(t *testing.T, files []string) []want {
	t.Helper()
	var out []want
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			rest := line[idx+len("// want "):]
			matches := wantRE.FindAllStringSubmatch(rest, -1)
			if len(matches) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", filepath.Base(name), i+1, rest)
			}
			for _, m := range matches {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", filepath.Base(name), i+1, pat, err)
				}
				out = append(out, want{file: name, line: i + 1, re: re})
			}
		}
	}
	return out
}
