package determinism_test

import (
	"path/filepath"
	"testing"

	"numasim/internal/analysis/analysistest"
	"numasim/internal/analysis/passes/determinism"
)

func TestDirectiveOptIn(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "directive_optin"), determinism.Analyzer)
}

func TestRestrictedImportPath(t *testing.T) {
	// The same kind of violation is reported without any directive when
	// the package lives in the restricted subtree.
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "core_path"), determinism.Analyzer,
		analysistest.WithImportPath("numasim/internal/sim/fixture"))
}

func TestUnrestrictedPackageIsIgnored(t *testing.T) {
	// No directive, host-side import path: the same code is legal. (The
	// harness used to be the canonical host-side path here, but the
	// supervisor pulled it into the deterministic core; report stays out.)
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "unrestricted"), determinism.Analyzer,
		analysistest.WithImportPath("numasim/internal/report/fixture"))
}

func TestHarnessIsRestricted(t *testing.T) {
	// The harness drives the deterministic simulations and renders their
	// byte-identical reports, so it is on the restricted list too.
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "core_path"), determinism.Analyzer,
		analysistest.WithImportPath("numasim/internal/harness/fixture"))
}

func TestHostsideEscape(t *testing.T) {
	// A //numalint:hostside doc directive exempts one function from the
	// function-level bans; the rest of the file stays checked.
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "hostside"), determinism.Analyzer,
		analysistest.WithImportPath("numasim/internal/harness/fixture"))
}

func TestPathBoundary(t *testing.T) {
	// A path that merely shares a prefix string (numasim/internal/simX)
	// must NOT be restricted: the boundary is a path separator.
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "unrestricted"), determinism.Analyzer,
		analysistest.WithImportPath("numasim/internal/simulators"))
}
