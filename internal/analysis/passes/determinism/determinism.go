// Package determinism forbids wall-clock and entropy sources inside the
// simulator's deterministic core.
//
// The repository's headline guarantee is that every table in the paper is
// reproduced by a deterministic discrete-event simulation: byte-identical
// output at any host parallelism. A single time.Now or unseeded
// math/rand call inside the simulation would silently void that
// guarantee, so the core packages are closed to ambient inputs.
//
// A package is "core" when its import path is on the built-in restricted
// list (the simulator packages) or when any of its files carries a
// //numalint:deterministic directive. Within a core package the analyzer
// reports:
//
//   - any import of math/rand, math/rand/v2 or crypto/rand (workloads
//     that need pseudo-randomness must use an explicitly seeded generator
//     owned by the simulation, not a package-level source);
//   - any reference to a wall-clock or process-identity function:
//     time.Now/Since/Until/After/AfterFunc/Tick/NewTimer/NewTicker/Sleep,
//     os.Getpid/Getppid/Environ/Getenv/Hostname.
//
// A single function inside a core package may opt back out with a
// //numalint:hostside directive on its doc comment. The escape exists
// for the harness supervisor's wall-clock watchdog: the code that bounds
// how long a simulation may run must, by definition, read the host
// clock, but it never feeds wall time back into the simulation. The
// directive is deliberately function-grained so the rest of the file
// stays under the ban.
package determinism

import (
	"go/ast"
	"strconv"
	"strings"

	"numasim/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock and entropy sources in the simulator's deterministic core",
	Run:  run,
}

// RestrictedPrefixes lists the import paths (and their subtrees) that make
// up the deterministic core. Packages can also opt in with a
// //numalint:deterministic directive.
var RestrictedPrefixes = []string{
	"numasim/internal/sim",
	"numasim/internal/numa",
	"numasim/internal/vm",
	"numasim/internal/mmu",
	"numasim/internal/pmap",
	"numasim/internal/policy",
	"numasim/internal/workloads",
	"numasim/internal/ace",
	"numasim/internal/cthreads",
	"numasim/internal/sched",
	"numasim/internal/mem",
	"numasim/internal/trace",
	"numasim/internal/simtrace",
	"numasim/internal/chaos",
	"numasim/internal/harness",
	"numasim/internal/topology",
}

// forbiddenImports are packages whose mere presence defeats determinism.
var forbiddenImports = map[string]string{
	"math/rand":    "package-level randomness",
	"math/rand/v2": "package-level randomness",
	"crypto/rand":  "hardware entropy",
}

// forbiddenFuncs maps package path to the ambient functions banned in it.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now": "wall clock", "Since": "wall clock", "Until": "wall clock",
		"After": "wall-clock timer", "AfterFunc": "wall-clock timer",
		"Tick": "wall-clock timer", "NewTimer": "wall-clock timer",
		"NewTicker": "wall-clock timer", "Sleep": "wall-clock delay",
	},
	"os": {
		"Getpid": "process identity", "Getppid": "process identity",
		"Environ": "ambient environment", "Getenv": "ambient environment",
		"LookupEnv": "ambient environment", "Hostname": "host identity",
	},
}

func restricted(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	for _, p := range RestrictedPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return analysis.HasPackageDirective(pass, "deterministic")
}

// hostside collects the functions in a file that carry a
// //numalint:hostside doc-comment directive; references inside them are
// exempt from the function-level bans (imports stay checked).
func hostside(f *ast.File) map[*ast.FuncDecl]bool {
	var escaped map[*ast.FuncDecl]bool
	for _, d := range analysis.Directives(f) {
		if d.Name != "hostside" {
			continue
		}
		if fn, ok := d.Node.(*ast.FuncDecl); ok {
			if escaped == nil {
				escaped = make(map[*ast.FuncDecl]bool)
			}
			escaped[fn] = true
		}
	}
	return escaped
}

func run(pass *analysis.Pass) error {
	if !restricted(pass) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := forbiddenImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s (%s) in deterministic package %s; use a simulation-owned seeded generator instead",
					path, why, pass.Pkg.Path())
			}
		}
		escaped := hostside(f)
		ast.Inspect(f, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && escaped[fn] {
				return false // //numalint:hostside: skip the whole function
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if why, ok := forbiddenFuncs[obj.Pkg().Path()][obj.Name()]; ok {
				pass.Reportf(sel.Pos(), "%s.%s (%s) in deterministic package %s; simulated code must take time from sim.Thread clocks only",
					obj.Pkg().Path(), obj.Name(), why, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
