// Package fixture exercises the //numalint:hostside escape: the
// annotated watchdog may read the host clock, every other function in
// the same (restricted) package is still checked.
package fixture

import "time"

// watchdog is the blessed wall-clock user, like the supervisor's
// timeout watchdog in the real harness.
//
//numalint:hostside
func watchdog(budget time.Duration, stop func()) *time.Timer {
	t := time.AfterFunc(budget, stop)
	_ = time.Now()
	return t
}

// unblessed has no directive: the same references are reported.
func unblessed() int64 {
	time.Sleep(0)                // want `time\.Sleep \(wall-clock delay\)`
	return time.Now().UnixNano() // want `time\.Now \(wall clock\)`
}

// docOnly shows the directive must head the function it exempts; a
// free-standing comment inside a body exempts nothing.
func docOnly() time.Time {
	//numalint:hostside
	return time.Now() // want `time\.Now \(wall clock\)`
}
