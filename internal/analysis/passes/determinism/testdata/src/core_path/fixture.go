// Package fixture carries no directive; it is restricted only when
// type-checked under a core import path (the test overrides the path to
// live below numasim/internal/sim).
package fixture

import "time"

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now \(wall clock\)`
}
