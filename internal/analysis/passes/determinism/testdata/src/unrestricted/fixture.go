// Package fixture is host-side code: no directive, and the test runs it
// under a non-core import path, so wall clocks are allowed (the harness
// legitimately measures how long simulations take to run).
package fixture

import "time"

func wallClock() int64 {
	return time.Now().UnixNano()
}
