// Package fixture opts into the deterministic core via directive: every
// ambient-input reference below must be reported.
//
//numalint:deterministic
package fixture

import (
	"math/rand" // want `import of math/rand \(package-level randomness\)`
	"os"
	"time"
)

func wallClock() int64 {
	t := time.Now()                            // want `time\.Now \(wall clock\)`
	time.Sleep(0)                              // want `time\.Sleep \(wall-clock delay\)`
	return t.UnixNano() + int64(time.Since(t)) // want `time\.Since \(wall clock\)`
}

func entropy() int {
	return rand.Int() + os.Getpid() // want `os\.Getpid \(process identity\)`
}

func environment() string {
	v, _ := os.LookupEnv("HOME") // want `os\.LookupEnv \(ambient environment\)`
	return v
}

// Virtual-time constructs are fine: only ambient sources are banned.
func allowed() time.Duration {
	return 3 * time.Second
}
