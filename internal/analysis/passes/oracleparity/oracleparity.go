// Package oracleparity keeps the dense hot-path state and its map-shadow
// test oracles from drifting apart.
//
// PR 6 replaced the NUMA manager's live-page map and the pmap residency
// map with dense structures (generation-stamped directory slots,
// VPN-indexed tables) and kept the old maps as shadow oracles that tests
// replay every mutation into. That scheme is only sound if every mutation
// of the dense state routes through a function that also feeds the
// oracle; one direct write added in a refactor and the oracle silently
// diverges from the code it checks.
//
// Three field/function directives express the design and the analyzer
// enforces it package-wide:
//
//	//numalint:oracle        on a field: the guarded dense state
//	//numalint:oraclehook    on a field: the shadow oracle hook
//	//numalint:oraclechannel on a function: a sanctioned mutator
//
// The rules:
//
//  1. Any mutation reached through an oracle-guarded field — an
//     assignment, ++/--, explicit address-taking, append/copy/delete/
//     clear, or a call of a mutating method on the field — must occur
//     inside an oraclechannel function or be a call to one.
//  2. Every oraclechannel must reference an oraclehook field somewhere in
//     its body, or say why not in the directive itself
//     (//numalint:oraclechannel constructor: mirror attached later).
//
// Whether a same-package method mutates its receiver is computed to a
// fixpoint over the package; methods the analyzer cannot see are assumed
// mutating.
package oracleparity

import (
	"go/ast"
	"go/token"
	"go/types"

	"numasim/internal/analysis"
)

// Analyzer is the oracle-parity check.
var Analyzer = &analysis.Analyzer{
	Name: "oracleparity",
	Doc:  "route every mutation of oracle-guarded state through an oracle channel",
	Run:  run,
}

type config struct {
	guarded  map[*types.Var]bool
	hooks    map[*types.Var]bool
	channels map[*types.Func]string // func -> directive arg
}

func run(pass *analysis.Pass) error {
	cfg := collect(pass)
	if len(cfg.guarded) == 0 && len(cfg.channels) == 0 {
		return nil
	}
	mutating := mutatingMethods(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			_, isChannel := cfg.channels[obj]
			if !isChannel {
				checkMutations(pass, cfg, mutating, fd)
			}
		}
	}

	checkChannels(pass, cfg)
	return nil
}

// collect gathers the directive-marked fields and functions.
func collect(pass *analysis.Pass) config {
	cfg := config{
		guarded:  make(map[*types.Var]bool),
		hooks:    make(map[*types.Var]bool),
		channels: make(map[*types.Func]string),
	}
	fieldObjs := func(d analysis.Directive, name string) []*types.Var {
		field, ok := d.Node.(*ast.Field)
		if !ok {
			pass.Reportf(d.Pos, "//numalint:%s must be on a struct field's doc comment", name)
			return nil
		}
		var out []*types.Var
		for _, n := range field.Names {
			if obj, ok := pass.TypesInfo.Defs[n].(*types.Var); ok {
				out = append(out, obj)
			}
		}
		return out
	}
	for _, f := range pass.Files {
		for _, d := range analysis.Directives(f) {
			switch d.Name {
			case "oracle":
				for _, obj := range fieldObjs(d, "oracle") {
					cfg.guarded[obj] = true
				}
			case "oraclehook":
				for _, obj := range fieldObjs(d, "oraclehook") {
					cfg.hooks[obj] = true
				}
			case "oraclechannel":
				fd, ok := d.Node.(*ast.FuncDecl)
				if !ok {
					pass.Reportf(d.Pos, "//numalint:oraclechannel must be on a function's doc comment")
					continue
				}
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					cfg.channels[obj] = d.Arg
				}
			}
		}
	}
	return cfg
}

// checkMutations reports every mutation of guarded state inside fd, which
// is not an oracle channel.
func checkMutations(pass *analysis.Pass, cfg config, mutating map[*types.Func]bool, fd *ast.FuncDecl) {
	report := func(pos token.Pos, via *types.Var, what string) {
		pass.Reportf(pos,
			"%s oracle-guarded field %s outside an //numalint:oraclechannel function; route it through a channel so the shadow oracle stays in sync",
			what, via.Name())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				if via := guardedIn(pass, cfg, lhs); via != nil {
					report(lhs.Pos(), via, "write to")
				}
			}
		case *ast.IncDecStmt:
			if via := guardedIn(pass, cfg, x.X); via != nil {
				report(x.Pos(), via, "write to")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if via := guardedIn(pass, cfg, x.X); via != nil {
					report(x.Pos(), via, "address taken of")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, cfg, mutating, x, report)
		}
		return true
	})
}

// checkCall flags builtin mutations (append/copy/delete/clear on guarded
// state) and calls of mutating methods on guarded receivers that do not
// target an oracle channel.
func checkCall(pass *analysis.Pass, cfg config, mutating map[*types.Func]bool, call *ast.CallExpr, report func(token.Pos, *types.Var, string)) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "copy", "delete", "clear":
				if len(call.Args) > 0 {
					if via := guardedIn(pass, cfg, call.Args[0]); via != nil {
						report(call.Pos(), via, b.Name()+" on")
					}
				}
			}
			return
		}
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	via := guardedIn(pass, cfg, sel.X)
	if via == nil {
		return
	}
	callee, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	if _, isChannel := cfg.channels[callee]; isChannel {
		return // sanctioned mutator: the channel itself keeps the oracle in sync
	}
	if isMutating(pass, mutating, callee) {
		report(call.Pos(), via, "call of mutating method "+callee.Name()+" on")
	}
}

// guardedIn walks expr's selector/index chain and returns the first
// oracle-guarded field it passes through, or nil.
func guardedIn(pass *analysis.Pass, cfg config, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
				if obj, ok := s.Obj().(*types.Var); ok && cfg.guarded[obj] {
					return obj
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// checkChannels enforces rule 2: a channel must touch a hook or carry a
// justification in its directive.
func checkChannels(pass *analysis.Pass, cfg config) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			arg, isChannel := cfg.channels[obj]
			if !isChannel || arg != "" {
				continue
			}
			if fd.Body == nil || !referencesHook(pass, cfg, fd.Body) {
				pass.Reportf(fd.Pos(),
					"oraclechannel %s never references an //numalint:oraclehook field; invoke the oracle hook or justify its absence in the directive",
					obj.Name())
			}
		}
	}
}

// referencesHook reports whether body mentions any oraclehook field.
func referencesHook(pass *analysis.Pass, cfg config, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if obj, ok := s.Obj().(*types.Var); ok && cfg.hooks[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mutatingMethods computes, to a fixpoint, which same-package methods
// write through their receiver (directly, or by calling another mutating
// method on it).
func mutatingMethods(pass *analysis.Pass) map[*types.Func]bool {
	type method struct {
		fn   *types.Func
		recv *types.Var
		body *ast.BlockStmt
	}
	var methods []method
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var recv *types.Var
			if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recv, _ = pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
			}
			methods = append(methods, method{fn, recv, fd.Body})
		}
	}

	mutating := make(map[*types.Func]bool)
	// throughRecv reports whether expr's base chain ends at the receiver.
	throughRecv := func(recv *types.Var, expr ast.Expr) bool {
		for {
			switch e := ast.Unparen(expr).(type) {
			case *ast.SelectorExpr:
				expr = e.X
			case *ast.IndexExpr:
				expr = e.X
			case *ast.StarExpr:
				expr = e.X
			case *ast.Ident:
				return pass.TypesInfo.Uses[e] == recv
			default:
				return false
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if mutating[m.fn] || m.recv == nil {
				continue
			}
			writes := false
			ast.Inspect(m.body, func(n ast.Node) bool {
				if writes {
					return false
				}
				switch x := n.(type) {
				case *ast.AssignStmt:
					if x.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range x.Lhs {
						// A write to a bare `recv = ...` rebinds the local
						// copy; only writes through a selector/index count.
						if _, bare := ast.Unparen(lhs).(*ast.Ident); !bare && throughRecv(m.recv, lhs) {
							writes = true
						}
					}
				case *ast.IncDecStmt:
					if _, bare := ast.Unparen(x.X).(*ast.Ident); !bare && throughRecv(m.recv, x.X) {
						writes = true
					}
				case *ast.CallExpr:
					fun := ast.Unparen(x.Fun)
					if id, ok := fun.(*ast.Ident); ok {
						if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
							switch b.Name() {
							case "append", "copy", "delete", "clear":
								if len(x.Args) > 0 && throughRecv(m.recv, x.Args[0]) {
									writes = true
								}
							}
							return true
						}
					}
					if sel, ok := fun.(*ast.SelectorExpr); ok {
						if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal && throughRecv(m.recv, sel.X) {
							if callee, ok := s.Obj().(*types.Func); ok && isMutating(pass, mutating, callee) {
								writes = true
							}
						}
					}
				}
				return true
			})
			if writes {
				mutating[m.fn] = true
				changed = true
			}
		}
	}
	return mutating
}

// isMutating resolves a callee against the fixpoint, assuming the worst
// for methods declared outside the package (their bodies are invisible).
func isMutating(pass *analysis.Pass, mutating map[*types.Func]bool, callee *types.Func) bool {
	if callee.Pkg() == pass.Pkg {
		return mutating[callee]
	}
	return true
}
