package oracleparity_test

import (
	"path/filepath"
	"testing"

	"numasim/internal/analysis/analysistest"
	"numasim/internal/analysis/passes/oracleparity"
)

func TestParity(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "parity"), oracleparity.Analyzer)
}
