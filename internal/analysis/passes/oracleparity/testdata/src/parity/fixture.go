// Package parity exercises the oracle-parity rules: guarded mutations
// must route through channels, and channels must feed the hook.
package parity

// page is a stand-in for the dense state's element type.
type page struct{ id int }

type table struct {
	//numalint:oracle
	slots []*page
	//numalint:oracle
	n int

	//numalint:oraclehook
	mirror map[int]*page

	hand int // unguarded: free to touch anywhere
}

// set is a sanctioned mutator that feeds the hook.
//
//numalint:oraclechannel
func (t *table) set(i int, pg *page) {
	t.slots[i] = pg
	t.n++
	if t.mirror != nil {
		t.mirror[i] = pg
	}
}

// reset is a channel justified by its directive argument instead of a
// hook reference.
//
//numalint:oraclechannel constructor: the mirror attaches after reset
func (t *table) reset(size int) {
	t.slots = make([]*page, size)
	t.n = 0
}

// silent mutates guarded state but never touches the hook and gives no
// reason: rule 2.
//
//numalint:oraclechannel
func (t *table) silent(i int) { // want `oraclechannel silent never references an //numalint:oraclehook field`
	t.slots[i] = nil
}

// rogue bypasses the channels in every way rule 1 catches.
func (t *table) rogue(i int, pg *page) {
	t.slots[i] = pg               // want `write to oracle-guarded field slots outside an //numalint:oraclechannel function`
	t.n++                         // want `write to oracle-guarded field n outside an //numalint:oraclechannel function`
	t.slots = append(t.slots, pg) // want `write to oracle-guarded field slots` `append on oracle-guarded field slots`
	_ = &t.slots[i]               // want `address taken of oracle-guarded field slots`
	t.hand = i                    // unguarded: clean
}

// grow calls a mutating method on the guarded state outside a channel.
type inner struct{ xs []int }

func (s *inner) push(x int) { s.xs = append(s.xs, x) }

type holder struct {
	//numalint:oracle
	in inner
}

func (h *holder) bad(x int) {
	h.in.push(x) // want `call of mutating method push on oracle-guarded field in`
}

// ok routes the same mutation through a channel call.
//
//numalint:oraclechannel pushes are mirrored by the caller
func (h *holder) channelPush(x int) { h.in.push(x) }

func (h *holder) good(x int) {
	h.channelPush(x)
	_ = h.in.xs // reads stay free
}
