// Package fixture exercises the maporder analyzer: range-over-map loops
// whose bodies emit ordered output are flagged; order-independent loops,
// the key-collection idiom and //numalint:ordered suppressions are not.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func appendValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `iteration over map m writes ordered output \(append to out\)`
		out = append(out, v)
	}
	return out
}

func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `iteration over map m writes ordered output \(WriteString call\)`
		b.WriteString(k)
	}
	return b.String()
}

func printDirectly(m map[string]int) {
	for k, v := range m { // want `iteration over map m writes ordered output \(Printf call\)`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func sendKeys(m map[string]int, ch chan string) {
	for k := range m { // want `iteration over map m writes ordered output \(channel send\)`
		ch <- k
	}
}

func concat(m map[string]int) string {
	s := ""
	for k := range m { // want `iteration over map m writes ordered output \(string concatenation onto s\)`
		s += k
	}
	return s
}

func sliceStore(m map[int]string, out []string) {
	for i, v := range m { // want `iteration over map m writes ordered output \(store into slice out\)`
		out[i%len(out)] = v
	}
}

// Order-independent uses are not reported.

func countValues(m map[string]int) map[int]int {
	counts := make(map[int]int)
	for _, v := range m {
		counts[v]++ // a map store commutes; no report
	}
	return counts
}

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// The key-collection idiom is exempt: the loop only gathers keys and the
// slice is sorted before use.

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// An explicit suppression silences the report (the caller sorts).

func suppressed(m map[string]int) []int {
	var out []int
	//numalint:ordered — caller sorts the result
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func suppressedSameLine(m map[string]int) []int {
	var out []int
	for _, v := range m { //numalint:ordered
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// A directive attached to nothing is itself flagged, so stale
// suppressions cannot accumulate.

func stale(m map[string]int) int {
	//numalint:ordered stale, attached to nothing // want `unused //numalint:ordered directive`
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
