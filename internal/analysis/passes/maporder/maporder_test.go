package maporder_test

import (
	"path/filepath"
	"testing"

	"numasim/internal/analysis/analysistest"
	"numasim/internal/analysis/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "maporder"), maporder.Analyzer)
}
