// Package maporder flags range loops over maps whose bodies produce
// ordered output, where Go's randomized iteration order would leak into
// results.
//
// A `for ... range m` over a map is reported when the loop body visibly
// accumulates ordered data: appending to a slice declared outside the
// loop, writing to a strings.Builder/bytes.Buffer/io.Writer (any
// Write*/Fprint*/Print* call), sending on a channel, concatenating onto
// an outer string, or storing through an outer slice index. Iterating to
// update maps, counters or sets is order-independent and not reported.
//
// Three escapes exist, and the repository's own fixes prefer the first:
//
//   - iterate a sorted slice of keys instead of the map (the loop is then
//     not a map range at all);
//   - the key-collection idiom: a body that only appends the range's key
//     to an outer slice is exempt when that slice is handed to a sort.*
//     call later in the same function;
//   - annotate the range statement with //numalint:ordered (same line or
//     the line above) when order-independence holds for a reason the
//     analyzer cannot see (e.g. the output is sorted afterwards).
//
// An //numalint:ordered directive that is not attached to a range-over-map
// statement is itself reported, so stale annotations cannot accumulate.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"numasim/internal/analysis"
)

// Analyzer is the map-iteration-order check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body emits ordered output",
	Run:  run,
}

// orderedSinks are method names that append to an ordered sink.
var orderedSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"WriteTo": true, "Encode": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		runFile(pass, f)
	}
	return nil
}

func runFile(pass *analysis.Pass, f *ast.File) {
	// Line numbers of //numalint:ordered directives, and whether each was
	// attached to a range-over-map.
	ordered := make(map[int]*directive)
	for _, d := range analysis.Directives(f) {
		if d.Name == "ordered" {
			line := pass.Fset.Position(d.Pos).Line
			ordered[line] = &directive{pos: d.Pos}
		}
	}
	suppressed := func(rng *ast.RangeStmt) bool {
		line := pass.Fset.Position(rng.Pos()).Line
		for _, l := range []int{line, line - 1} {
			if d, ok := ordered[l]; ok {
				d.used = true
				return true
			}
		}
		return false
	}

	// Stack of enclosing nodes, so a range can find the function that
	// contains it (for the key-collection-then-sort exemption).
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if suppressed(rng) {
			return true
		}
		if keyCollectionSorted(pass, rng, stack) {
			return true
		}
		if sink := orderedEffect(pass, rng); sink != nil {
			pass.Reportf(rng.Pos(),
				"iteration over map %s writes ordered output (%s); iterate sorted keys or annotate //numalint:ordered",
				render(pass, rng.X), sink.what)
		}
		return true
	})

	for _, d := range sortedDirectives(pass, ordered) {
		if !d.used {
			pass.Reportf(d.pos, "unused //numalint:ordered directive (not attached to a range over a map)")
		}
	}
}

func sortedDirectives(pass *analysis.Pass, m map[int]*directive) []*directive {
	var out []*directive
	//numalint:ordered — out is position-sorted below
	for _, d := range m {
		out = append(out, d)
	}
	// Deterministic report order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].pos < out[j-1].pos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type directive struct {
	pos  token.Pos
	used bool
}

// keyCollectionSorted recognizes the sanctioned key-collection idiom: the
// loop body is exactly `keys = append(keys, k)` where k is the range's key
// variable and keys is declared outside the loop, and some later statement
// in the same function passes keys to a sort.* call. Iteration order then
// cannot escape: only the key set is observed, and it is sorted before use.
func keyCollectionSorted(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || arg0.Name != dst.Name {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[arg1] == nil || pass.TypesInfo.Uses[arg1] != pass.TypesInfo.Defs[key] {
		return false
	}
	dstObj := pass.TypesInfo.Uses[dst]
	if dstObj == nil || !(dstObj.Pos() < rng.Pos() || dstObj.Pos() > rng.End()) {
		return false
	}

	// Find the innermost enclosing function and look for sort.*(... dst ...)
	// after the loop.
	var fnBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			fnBody = fn.Body
		case *ast.FuncLit:
			fnBody = fn.Body
		}
		if fnBody != nil {
			break
		}
	}
	if fnBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted || (n != nil && n.Pos() <= rng.End()) {
			return !sorted
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sort" {
			return true
		}
		ast.Inspect(call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == dstObj {
				sorted = true
			}
			return !sorted
		})
		return !sorted
	})
	return sorted
}

// effect describes the first order-sensitive statement found in a body.
type effect struct {
	what string
}

// orderedEffect scans the loop body for statements whose outcome depends
// on iteration order.
func orderedEffect(pass *analysis.Pass, rng *ast.RangeStmt) *effect {
	var found *effect
	outer := func(id *ast.Ident) bool {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			found = &effect{what: "channel send"}
		case *ast.CallExpr:
			switch fun := s.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && len(s.Args) > 0 {
					if id, ok := s.Args[0].(*ast.Ident); ok && outer(id) {
						found = &effect{what: "append to " + id.Name}
					}
				}
			case *ast.SelectorExpr:
				if orderedSinks[fun.Sel.Name] {
					if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil && isSinkCall(obj) {
						found = &effect{what: fun.Sel.Name + " call"}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				switch l := lhs.(type) {
				case *ast.Ident:
					// Outer-variable append or string concatenation.
					if i < len(s.Rhs) && outer(l) {
						if isAppendTo(pass, s.Rhs[i]) {
							found = &effect{what: "append to " + l.Name}
						} else if s.Tok == token.ADD_ASSIGN && isString(pass, l) {
							found = &effect{what: "string concatenation onto " + l.Name}
						}
					}
				case *ast.IndexExpr:
					// Store through an outer slice index (map stores are
					// order-independent).
					if id, ok := l.X.(*ast.Ident); ok && outer(id) {
						if t := pass.TypesInfo.TypeOf(l.X); t != nil {
							if _, isSlice := t.Underlying().(*types.Slice); isSlice {
								found = &effect{what: "store into slice " + id.Name}
							}
						}
					}
				}
			}
		}
		return found == nil
	})
	return found
}

// isSinkCall reports whether obj is a function or method plausibly writing
// to an ordered sink (fmt functions, or any method on a writer-ish type).
func isSinkCall(obj types.Object) bool {
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return true
	}
	_, isFunc := obj.(*types.Func)
	return isFunc
}

func isAppendTo(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		if b, ok := obj.(*types.Builtin); ok {
			return b.Name() == "append"
		}
	}
	return false
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func render(pass *analysis.Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(pass, x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return render(pass, x.Fun) + "(...)"
	default:
		return "expression"
	}
}
