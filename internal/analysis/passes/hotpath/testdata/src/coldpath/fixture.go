// Package coldpath exercises the three //numalint:coldpath escape forms.
package coldpath

import "fmt"

// slowInit is sanctioned wholesale by a doc-level directive: hot code may
// call it and its body is never checked.
//
//numalint:coldpath setup: runs once before the simulation starts
func slowInit(n int) []int {
	return make([]int, n)
}

// Root mixes escaped and checked operations; only the unescaped make is
// reported.
//
//numalint:hotpath
func Root(xs []int, n int) []int {
	if len(xs) == 0 {
		//numalint:coldpath first fill: the steady state reuses the slice
		xs = make([]int, 8)
		xs = append(xs, slowInit(n)...)
	}
	xs = append(xs, n) //numalint:coldpath bounded: capacity preallocated by the caller
	_ = slowInit(n)
	if n < 0 {
		panic(fmt.Sprintf("coldpath: bad n %d", n))
	}
	_ = make([]int, n) // want `make allocates`
	return xs
}
