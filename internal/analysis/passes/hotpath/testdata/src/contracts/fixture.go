// Package contracts exercises contract enforcement in the defining
// package: the test registers (fixture/contracts.T).Hot and a key naming
// no declared function before running the analyzer.
package contracts // want `stale hotpath contract: fixture/contracts\.Missing names no function declared in fixture/contracts`

// T carries the contract method.
type T struct{ n int }

// Hot is named by a Contracts entry but lacks the required annotation.
func (t T) Hot() int { return t.n } // want `\(fixture/contracts\.T\)\.Hot is a cross-package hotpath contract but is not annotated //numalint:hotpath`

// Vetted is named by a Contracts entry and properly annotated.
//
//numalint:hotpath
func (t T) Vetted() int { return t.n }
