// Package violations exercises the hotpath op scanner and edge checks.
package violations

import "fmt"

type big struct{ a, b int }

// T carries a method for the method-value and dispatch checks.
type T struct{ n int }

// M is hot-clean on its own.
func (t T) M() int { return t.n }

// I is a local interface with no InterfaceContracts entry.
type I interface{ M() int }

// Root is a hot-path root covering every forbidden operation.
//
//numalint:hotpath
func Root(n int, xs []int, m map[string]int, s string, bs []byte) {
	xs = append(xs, n)       // want `append may grow its backing array`
	_ = make([]int, n)       // want `make allocates`
	_ = new(big)             // want `new allocates`
	_ = &big{a: n}           // want `composite literal escapes to the heap`
	_ = []int{n}             // want `slice literal allocates`
	_ = map[string]int{s: n} // want `map literal allocates`
	_ = s + s                // want `string concatenation allocates`
	_ = string(bs)           // want `\[\]byte/\[\]rune to string conversion allocates`
	_ = []byte(s)            // want `string to \[\]byte/\[\]rune conversion allocates`
	var i any
	i = n // want `assignment boxes int into interface`
	_ = i
	for k := range m { // want `iterates a map`
		_ = k
	}
	_ = fmt.Sprint(n) // want `call of fmt.Sprint allocates \(formatting and reflection are banned on hot paths\)` `argument boxes int into interface`
	helper(n)
}

// helper is reached from Root; its own violation carries the chain.
func helper(n int) { leaf(n) }

func leaf(n int) {
	_ = make([]int, n) // want `make allocates \[hot: Root → helper → leaf\]`
}

// RootBox checks boxing at returns.
//
//numalint:hotpath
func RootBox(n int) any {
	return n // want `return boxes int into interface`
}

// RootIface checks interface dispatch without a contract.
//
//numalint:hotpath
func RootIface(i I) int {
	return i.M() // want `interface dispatch call \(fixture/violations\.I\)\.M is not a hot-path interface contract`
}

// RootMethodValue checks the method-value closure report.
//
//numalint:hotpath
func RootMethodValue(t T) func() int {
	f := t.M // want `method value M allocates a closure`
	return f
}

// RootDynamic checks closures, go statements and dynamic calls.
//
//numalint:hotpath
func RootDynamic(n int) {
	f := func() int { return n } // want `function literal \(a closure may allocate\)`
	_ = f()                      // want `call to function value f cannot be verified`
	go helper(n)                 // want `go statement allocates a goroutine`
}
