// Package ifacecontract exercises interface-contract auto-enforcement:
// the test registers (fixture/ifacecontract.Policy).Decide before running
// the analyzer, so every implementing type declared here must annotate its
// Decide method hotpath or coldpath.
package ifacecontract

// Policy is the contract interface.
type Policy interface{ Decide(n int) int }

// good annotates its implementation and stays clean.
type good struct{}

//numalint:hotpath
func (good) Decide(n int) int { return n }

// cold sanctions its implementation as a slow path.
type cold struct{}

//numalint:coldpath diagnostic-only implementation
func (cold) Decide(n int) int { return len(make([]int, n)) }

// bad implements the contract without any annotation, and its body is
// walked anyway so the violation also surfaces.
type bad struct{}

func (bad) Decide(n int) int { // want `\(bad\)\.Decide implements hot-path interface method \(fixture/ifacecontract\.Policy\)\.Decide and must be annotated`
	return len(make([]int, n)) // want `make allocates`
}

var _ = []Policy{good{}, cold{}, bad{}}
