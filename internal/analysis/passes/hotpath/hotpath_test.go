package hotpath_test

import (
	"path/filepath"
	"testing"

	"numasim/internal/analysis/analysistest"
	"numasim/internal/analysis/passes/hotpath"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "violations"), hotpath.Analyzer)
}

func TestColdpathEscapes(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "coldpath"), hotpath.Analyzer)
}

func TestContractEnforcement(t *testing.T) {
	// Register fixture-keyed contracts: one unannotated, one annotated, one
	// naming no declared function (stale).
	for _, key := range []string{
		"(fixture/contracts.T).Hot",
		"(fixture/contracts.T).Vetted",
		"fixture/contracts.Missing",
	} {
		hotpath.Contracts[key] = true
		defer delete(hotpath.Contracts, key)
	}
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "contracts"), hotpath.Analyzer)
}

func TestInterfaceContractEnforcement(t *testing.T) {
	key := "(fixture/ifacecontract.Policy).Decide"
	hotpath.InterfaceContracts[key] = true
	defer delete(hotpath.InterfaceContracts, key)
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "ifacecontract"), hotpath.Analyzer)
}
