// Package hotpath proves, at lint time, that the simulator's per-reference
// paths are transitively allocation-free.
//
// PR 6 made the TLB-hit, local-reference and fault paths allocation-free,
// but enforced it only with testing.AllocsPerRun on the paths the
// benchmarks happen to exercise. One fmt.Sprintf or interface boxing added
// three calls deep silently reintroduces allocations everywhere else. This
// analyzer closes that hole: a function annotated
//
//	//numalint:hotpath
//
// on its doc comment is a hot-path root. The analyzer walks the package
// call graph from every root and reports, with the full call chain from
// the root, any reachable operation that can allocate:
//
//   - composite literals whose address is taken, and map or slice literals;
//   - the allocating builtins append (may grow), make and new;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - values boxed into interfaces at calls, assignments or returns;
//   - map iteration, function literals, method values, go statements;
//   - any call into fmt or reflect.
//
// Calls may only target other hot-path-vetted functions: same-package
// functions are walked transitively; cross-package calls must appear in
// the Contracts table (and the named function must itself be annotated
// //numalint:hotpath in its defining package — the analyzer enforces the
// annotation when it analyzes that package); interface dispatch must
// appear in InterfaceContracts, whose implementations are in turn forced
// to be annotated wherever they are declared. Calls through function
// values and function-typed fields cannot be verified and are reported.
//
// The escape hatch mirrors the determinism pass's hostside directive:
//
//	//numalint:coldpath <why>
//
// On a function's doc comment it sanctions the whole function (a slow
// path hot code may call but that is not itself checked). Free-standing
// inside a body it exempts the innermost enclosing block — the idiom for
// a slow-path branch is to place it as the first comment inside the
// branch. Trailing a statement it exempts just that statement. Arguments
// of panic calls are always exempt: a function on fire may allocate.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"numasim/internal/analysis"
	"numasim/internal/analysis/callgraph"
)

// Analyzer is the hot-path purity check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "prove //numalint:hotpath functions transitively allocation-free",
	Run:  run,
}

// Contracts lists cross-package functions that hot paths may call, keyed
// by types.Func.FullName. Each entry is a promise enforced on both sides:
// call sites may trust it, and when the analyzer reaches the defining
// package it requires the function to exist and carry //numalint:hotpath
// (a stale or unannotated entry is itself a diagnostic).
var Contracts = map[string]bool{
	// mmu: translation, mapping and protection on the per-processor MMU.
	"(*numasim/internal/mmu.MMU).Translate":    true,
	"(*numasim/internal/mmu.MMU).Enter":        true,
	"(*numasim/internal/mmu.MMU).Remove":       true,
	"(*numasim/internal/mmu.MMU).RemoveFrame":  true,
	"(*numasim/internal/mmu.MMU).Protect":      true,
	"(*numasim/internal/mmu.MMU).ProtectFrame": true,
	"(*numasim/internal/mmu.MMU).Lookup":       true,
	"(*numasim/internal/mmu.MMU).LookupFrame":  true,
	"(numasim/internal/mmu.Prot).CanRead":      true,
	"(numasim/internal/mmu.Prot).CanWrite":     true,

	// mem: frame accessors and pool alloc/release.
	"(*numasim/internal/mem.Frame).Load8":    true,
	"(*numasim/internal/mem.Frame).Store8":   true,
	"(*numasim/internal/mem.Frame).Load32":   true,
	"(*numasim/internal/mem.Frame).Store32":  true,
	"(*numasim/internal/mem.Frame).Load64":   true,
	"(*numasim/internal/mem.Frame).Store64":  true,
	"(*numasim/internal/mem.Frame).Data":     true,
	"(*numasim/internal/mem.Frame).Zero":     true,
	"(*numasim/internal/mem.Frame).CopyFrom": true,
	"(*numasim/internal/mem.Frame).Kind":     true,
	"(*numasim/internal/mem.Frame).Proc":     true,
	"(*numasim/internal/mem.Frame).Index":    true,
	"(*numasim/internal/mem.Frame).PageSize": true,
	"(*numasim/internal/mem.Pool).Alloc":     true,
	"(*numasim/internal/mem.Pool).Release":   true,
	"(*numasim/internal/mem.Pool).Free":      true,
	"(*numasim/internal/mem.Pool).Size":      true,
	"(*numasim/internal/mem.Memory).Local":   true,
	"(*numasim/internal/mem.Memory).Global":  true,

	// sim: virtual-time accounting on the running thread.
	"(*numasim/internal/sim.Thread).Advance":    true,
	"(*numasim/internal/sim.Thread).AdvanceSys": true,
	"(*numasim/internal/sim.Thread).Clock":      true,
	"(*numasim/internal/sim.Thread).ID":         true,

	// topology: latency-matrix lookups and link charging.
	"(*numasim/internal/topology.Spec).NNodes":             true,
	"(*numasim/internal/topology.Spec).NProcs":             true,
	"(*numasim/internal/topology.Spec).Home":               true,
	"(*numasim/internal/topology.Spec).NodeProcs":          true,
	"(*numasim/internal/topology.Spec).Col":                true,
	"(*numasim/internal/topology.Spec).FetchLatency":       true,
	"(*numasim/internal/topology.Spec).StoreLatency":       true,
	"(*numasim/internal/topology.Spec).Contended":          true,
	"(*numasim/internal/topology.Spec).Dist":               true,
	"(*numasim/internal/topology.Topology).Spec":           true,
	"(*numasim/internal/topology.Topology).Contended":      true,
	"(*numasim/internal/topology.Topology).ChargeTransfer": true,

	// ace: per-reference cost charging and machine accessors.
	"(*numasim/internal/ace.Machine).ChargeFetch":   true,
	"(*numasim/internal/ace.Machine).ChargeStore":   true,
	"(*numasim/internal/ace.Machine).ChargeCopySys": true,
	"(*numasim/internal/ace.Machine).ChargeZeroSys": true,
	"(*numasim/internal/ace.Machine).NNodes":        true,
	"(*numasim/internal/ace.Machine).Home":          true,
	"(*numasim/internal/ace.Machine).NodeProcs":     true,
	"(*numasim/internal/ace.Machine).Topo":          true,
	"(*numasim/internal/ace.Machine).MMU":           true,
	"(*numasim/internal/ace.Machine).Cost":          true,
	"(*numasim/internal/ace.Machine).Proc":          true,
	"(*numasim/internal/ace.Machine).Bus":           true,
	"(*numasim/internal/ace.Machine).PageSize":      true,
	"(*numasim/internal/ace.Machine).PageShift":     true,
	"(*numasim/internal/ace.Machine).VPN":           true,
	"(*numasim/internal/ace.Machine).PageOff":       true,
	"(*numasim/internal/ace.Machine).NProc":         true,
	"(*numasim/internal/ace.Machine).Memory":        true,
	"(*numasim/internal/ace.CostModel).FetchCost":   true,
	"(*numasim/internal/ace.CostModel).StoreCost":   true,
	"(*numasim/internal/ace.CostModel).CopyCost":    true,
	"(*numasim/internal/ace.CostModel).ZeroCost":    true,
	"(*numasim/internal/ace.Processor).Resource":    true,

	// numa: the per-reference protocol entry point and page accessors.
	"(*numasim/internal/numa.Manager).Access":       true,
	"(*numasim/internal/numa.Manager).MaybeSweep":   true,
	"(*numasim/internal/numa.Manager).MarkFilled":   true,
	"(*numasim/internal/numa.Manager).MarkZeroFill": true,
	"(*numasim/internal/numa.Page).ID":              true,
	"(*numasim/internal/numa.Page).Hint":            true,
	"(*numasim/internal/numa.Page).SetHint":         true,
	"(*numasim/internal/numa.Page).Home":            true,
	"(*numasim/internal/numa.Page).SetHome":         true,
	"(*numasim/internal/numa.Page).State":           true,
	"(*numasim/internal/numa.Page).Moves":           true,
	"(*numasim/internal/numa.Page).LastMoveAt":      true,
	"(*numasim/internal/numa.Page).LastRequestAt":   true,
	"(*numasim/internal/numa.Page).EverWritten":     true,
	"(*numasim/internal/numa.Page).Pinned":          true,
	"(*numasim/internal/numa.Page).Authoritative":   true,
	"(*numasim/internal/numa.Page).GlobalFrame":     true,
	"(*numasim/internal/numa.Page).Copy":            true,
	"(*numasim/internal/numa.Page).NodeHeat":        true,
	"(*numasim/internal/numa.Page).MoveHeat":        true,
	"(*numasim/internal/numa.Page).TotalHeat":       true,
	"(*numasim/internal/numa.Page).HotNode":         true,
	"(*numasim/internal/numa.Page).PolicyWord":      true,
	"(*numasim/internal/numa.Page).SetPolicyWord":   true,

	// pmap: VPN-indexed residency lookups and mapping entry.
	"(*numasim/internal/pmap.Pmap).Key":         true,
	"(*numasim/internal/pmap.Pmap).Resident":    true,
	"(*numasim/internal/pmap.Pmap).Enter":       true,
	"(*numasim/internal/pmap.Manager).CopyPage": true,
	"(*numasim/internal/pmap.Manager).ZeroPage": true,

	// simtrace: the (batched) event bus.
	"(*numasim/internal/simtrace.Bus).Enabled": true,
	"(*numasim/internal/simtrace.Bus).Emit":    true,
}

// InterfaceContracts lists interface methods hot paths may dispatch
// through, keyed by the interface method's FullName. The obligation
// transfers to the implementations: whenever the analyzer sees a package
// declare a type implementing the interface, the implementing method must
// itself be annotated //numalint:hotpath and is checked as a root.
var InterfaceContracts = map[string]bool{
	"(numasim/internal/numa.Policy).CachePolicy":                     true,
	"(numasim/internal/numa.Policy).Name":                            true,
	"(numasim/internal/numa.ReconsideringPolicy).ReconsiderInterval": true,
	// The capability interfaces of the redesigned policy API
	// (internal/numa/policyapi.go): per-access observation, thread
	// migration advice, epoch retirement, and the scheduler's side of
	// the co-placement channel all run per protocol request.
	"(numasim/internal/numa.PageObserver).ObserveAccess": true,
	"(numasim/internal/numa.ThreadAdvisor).AdviseThread": true,
	"(numasim/internal/numa.Retirer).RetireEpoch":        true,
	"(numasim/internal/numa.ThreadMover).MigrateHint":    true,
}

// cleanStd are standard-library packages whose exported functions are
// axiomatically allocation-free for our purposes.
var cleanStd = map[string]bool{
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"encoding/binary": true,
}

// span is a half-open source range [lo, hi] within which hot-path
// obligations are suspended.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.lo && p <= s.hi }

type checker struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
	// cold marks functions sanctioned whole by a doc-level coldpath
	// directive: callable from hot code, not themselves checked.
	cold map[*types.Func]bool
	// roots are the //numalint:hotpath functions in declaration order.
	roots []*types.Func
	// spans maps each declared function to its exempt source ranges.
	spans map[*types.Func][]span
	// via records the BFS discovery parent for chain diagnostics.
	via map[*types.Func]*types.Func
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:  pass,
		graph: callgraph.Build(pass.Files, pass.TypesInfo),
		cold:  make(map[*types.Func]bool),
		spans: make(map[*types.Func][]span),
		via:   make(map[*types.Func]*types.Func),
	}
	c.collectDirectives()
	c.checkContracts()
	c.enforceInterfaceContracts()
	c.walk()
	return nil
}

// collectDirectives gathers hotpath roots, coldpath sanctions and
// in-body exempt spans from every file.
func (c *checker) collectDirectives() {
	for _, f := range c.pass.Files {
		for _, d := range analysis.Directives(f) {
			switch d.Name {
			case "hotpath":
				fd, ok := d.Node.(*ast.FuncDecl)
				if !ok {
					c.pass.Reportf(d.Pos, "//numalint:hotpath must be on a function's doc comment")
					continue
				}
				if obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.roots = append(c.roots, obj)
				}
			case "coldpath":
				if fd, ok := d.Node.(*ast.FuncDecl); ok {
					if obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						c.cold[obj] = true
					}
					continue
				}
				c.addBodySpan(f, d)
			}
		}
	}
}

// addBodySpan resolves a free-standing coldpath directive to an exempt
// span in its enclosing function: the covering statement when the
// directive trails one, the innermost enclosing block otherwise.
func (c *checker) addBodySpan(file *ast.File, d analysis.Directive) {
	fd := enclosingFunc(file, d.Pos)
	if fd == nil || fd.Body == nil {
		c.pass.Reportf(d.Pos, "free-standing //numalint:coldpath must be inside a function body")
		return
	}
	obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	line := c.pass.Fset.Position(d.Pos).Line

	// A statement whose line range covers the directive line: the
	// directive trails it (or is inside it) and exempts just that
	// statement.
	var stmt ast.Stmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if _, isBlock := s.(*ast.BlockStmt); isBlock {
			return true
		}
		from := c.pass.Fset.Position(s.Pos()).Line
		to := c.pass.Fset.Position(s.End()).Line
		if from <= line && line <= to {
			stmt = s // keep innermost
		}
		return true
	})
	if stmt != nil {
		c.spans[obj] = append(c.spans[obj], span{stmt.Pos(), stmt.End()})
		return
	}

	// Otherwise: the innermost block-like node containing the directive.
	var innermost ast.Node = fd.Body
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			if n.Pos() <= d.Pos && d.Pos <= n.End() {
				innermost = n
			}
		}
		return true
	})
	c.spans[obj] = append(c.spans[obj], span{innermost.Pos(), innermost.End()})
}

// spansOf returns fn's exempt ranges, adding panic-argument spans on
// first use.
func (c *checker) spansOf(fn *types.Func, decl *ast.FuncDecl) []span {
	spans := c.spans[fn]
	if decl.Body != nil {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					spans = append(spans, span{call.Pos(), call.End()})
				}
			}
			return true
		})
	}
	return spans
}

func inSpans(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// checkContracts verifies that every Contracts entry naming this package
// resolves to a declared, annotated function.
func (c *checker) checkContracts() {
	mine := make(map[string]bool)
	for key := range Contracts {
		if contractPkg(key) == c.pass.Pkg.Path() {
			mine[key] = false
		}
	}
	if len(mine) == 0 {
		return
	}
	rootSet := make(map[*types.Func]bool, len(c.roots))
	for _, r := range c.roots {
		rootSet[r] = true
	}
	for fn, node := range c.graph.Nodes {
		key := fn.FullName()
		if _, ok := mine[key]; !ok {
			continue
		}
		mine[key] = true
		if !rootSet[fn] {
			c.pass.Reportf(node.Decl.Pos(),
				"%s is a cross-package hotpath contract but is not annotated //numalint:hotpath", key)
		}
	}
	for _, key := range sortedKeys(mine) {
		if !mine[key] {
			c.pass.Reportf(c.pass.Files[0].Package,
				"stale hotpath contract: %s names no function declared in %s", key, c.pass.Pkg.Path())
		}
	}
}

// enforceInterfaceContracts turns InterfaceContracts obligations into
// roots: any type this package declares that implements a contract
// interface must annotate its locally-declared implementing method.
func (c *checker) enforceInterfaceContracts() {
	rootSet := make(map[*types.Func]bool, len(c.roots))
	for _, r := range c.roots {
		rootSet[r] = true
	}
	for _, key := range sortedKeys(InterfaceContracts) {
		ifacePkg, ifaceName, method, ok := splitInterfaceKey(key)
		if !ok {
			continue
		}
		pkg := findPackage(c.pass.Pkg, ifacePkg)
		if pkg == nil {
			continue // interface's package not in this compilation's import graph
		}
		obj, ok := pkg.Scope().Lookup(ifaceName).(*types.TypeName)
		if !ok {
			if pkg == c.pass.Pkg {
				c.pass.Reportf(c.pass.Files[0].Package,
					"stale hotpath interface contract: %s names no interface in %s", key, ifacePkg)
			}
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		scope := c.pass.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			var recv types.Type
			switch {
			case types.Implements(named, iface):
				recv = named
			case types.Implements(types.NewPointer(named), iface):
				recv = types.NewPointer(named)
			default:
				continue
			}
			sel, _, _ := types.LookupFieldOrMethod(recv, true, c.pass.Pkg, method)
			impl, ok := sel.(*types.Func)
			if !ok || impl.Pkg() != c.pass.Pkg {
				continue
			}
			node := c.graph.Node(impl)
			if node == nil {
				continue // promoted method from an embedded foreign type
			}
			if !rootSet[impl] && !c.cold[impl] {
				c.pass.Reportf(node.Decl.Pos(),
					"%s implements hot-path interface method %s and must be annotated //numalint:hotpath (or //numalint:coldpath with a reason)",
					shortName(impl), key)
				rootSet[impl] = true // still walk it so chain diagnostics appear once
			}
			c.roots = appendUnique(c.roots, impl)
		}
	}
}

// walk runs the BFS from every root, checking each newly reached
// function's operations and edges.
func (c *checker) walk() {
	visited := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), c.roots...)
	for _, r := range queue {
		visited[r] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := c.graph.Node(fn)
		if node == nil || node.Decl.Body == nil || c.cold[fn] {
			continue
		}
		spans := c.spansOf(fn, node.Decl)
		chain := c.chain(fn)
		c.scanOps(node.Decl, fn, spans, chain)
		for _, e := range node.Out {
			if inSpans(spans, e.Pos) {
				continue
			}
			target, diag := c.checkEdge(e)
			if diag != "" {
				c.pass.Reportf(e.Pos, "hot path: %s%s", diag, chain)
				continue
			}
			if target != nil && !visited[target] {
				visited[target] = true
				c.via[target] = fn
				queue = append(queue, target)
			}
		}
	}
}

// checkEdge vets one call-graph edge. It returns a same-package target to
// walk into, or a non-empty diagnostic, or neither (the edge is satisfied
// by a contract).
func (c *checker) checkEdge(e callgraph.Edge) (*types.Func, string) {
	if e.Callee == nil {
		return nil, fmt.Sprintf("%s to %s cannot be verified; annotate the slow path //numalint:coldpath or call a named function",
			e.Kind, e.Dynamic)
	}
	name := e.Callee.FullName()
	if e.Interface {
		if InterfaceContracts[name] {
			return nil, ""
		}
		return nil, fmt.Sprintf("interface dispatch %s %s is not a hot-path interface contract", e.Kind, name)
	}
	pkg := e.Callee.Pkg()
	if pkg == c.pass.Pkg {
		if c.cold[e.Callee] {
			return nil, ""
		}
		if n := c.graph.Node(e.Callee); n != nil {
			return e.Callee, ""
		}
		// Declared without syntax in this package (embedding, instantiation).
		if Contracts[name] {
			return nil, ""
		}
		return nil, fmt.Sprintf("%s of %s has no body to verify in this package", e.Kind, name)
	}
	if pkg == nil {
		return nil, fmt.Sprintf("%s of %s cannot be attributed to a package", e.Kind, name)
	}
	path := pkg.Path()
	if cleanStd[path] {
		return nil, ""
	}
	if Contracts[name] {
		return nil, ""
	}
	if path == "fmt" || path == "reflect" {
		return nil, fmt.Sprintf("%s of %s allocates (formatting and reflection are banned on hot paths)", e.Kind, name)
	}
	return nil, fmt.Sprintf("%s of %s which is not hotpath-vetted; add a contract and annotate it, or guard the branch //numalint:coldpath",
		e.Kind, name)
}

// chain renders the BFS discovery path from a root to fn.
func (c *checker) chain(fn *types.Func) string {
	var names []string
	for f := fn; ; {
		names = append(names, shortName(f))
		p, ok := c.via[f]
		if !ok {
			break
		}
		f = p
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return " [hot: " + strings.Join(names, " → ") + "]"
}

// scanOps reports every allocating operation in fn's body outside the
// exempt spans.
func (c *checker) scanOps(decl *ast.FuncDecl, fn *types.Func, spans []span, chain string) {
	sig := fn.Type().(*types.Signature)
	consumed := make(map[ast.Node]bool)
	c.scanBody(decl.Body, sig, spans, chain, consumed)
}

func (c *checker) scanBody(body *ast.BlockStmt, sig *types.Signature, spans []span, chain string, consumed map[ast.Node]bool) {
	info := c.pass.TypesInfo
	report := func(pos token.Pos, format string, args ...any) {
		c.pass.Reportf(pos, "hot path: "+fmt.Sprintf(format, args...)+chain)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inSpans(spans, n.Pos()) {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "function literal (a closure may allocate)")
			if tv, ok := info.Types[x]; ok {
				if litSig, ok := tv.Type.(*types.Signature); ok {
					c.scanBody(x.Body, litSig, spans, chain, consumed)
				}
			}
			return false
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")
		case *ast.CallExpr:
			c.scanCall(x, spans, chain, consumed, report)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "composite literal escapes to the heap")
					consumed[lit] = true
				}
			}
		case *ast.CompositeLit:
			if consumed[x] {
				return true
			}
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Map:
				report(x.Pos(), "map literal allocates")
			case *types.Slice:
				report(x.Pos(), "slice literal allocates")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && tv.Value == nil && isString(tv.Type) {
					report(x.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if c.boxes(x.Rhs[i], info.TypeOf(x.Lhs[i])) {
						report(x.Rhs[i].Pos(), "assignment boxes %s into interface %s",
							types.TypeString(info.TypeOf(x.Rhs[i]), types.RelativeTo(c.pass.Pkg)),
							types.TypeString(info.TypeOf(x.Lhs[i]), types.RelativeTo(c.pass.Pkg)))
					}
				}
			}
		case *ast.ReturnStmt:
			res := sig.Results()
			if len(x.Results) == res.Len() {
				for i, r := range x.Results {
					if c.boxes(r, res.At(i).Type()) {
						report(r.Pos(), "return boxes %s into interface %s",
							types.TypeString(info.TypeOf(r), types.RelativeTo(c.pass.Pkg)),
							types.TypeString(res.At(i).Type(), types.RelativeTo(c.pass.Pkg)))
					}
				}
			}
		case *ast.RangeStmt:
			switch info.TypeOf(x.X).Underlying().(type) {
			case *types.Map:
				report(x.Pos(), "iterates a map (nondeterministic order, hidden iterator)")
			case *types.Signature:
				report(x.Pos(), "ranges over a function (iterator closures allocate)")
			}
		case *ast.SelectorExpr:
			if consumed[x] {
				return true
			}
			if s, ok := info.Selections[x]; ok && s.Kind() == types.MethodVal {
				report(x.Pos(), "method value %s allocates a closure", x.Sel.Name)
			}
		}
		return true
	})
}

// scanCall handles the call-site checks: allocating builtins, allocating
// conversions, and arguments boxed into interface parameters.
func (c *checker) scanCall(call *ast.CallExpr, spans []span, chain string, consumed map[ast.Node]bool, report func(token.Pos, string, ...any)) {
	info := c.pass.TypesInfo
	fun := ast.Unparen(call.Fun)
	consumed[fun] = true

	// Conversion?
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			switch {
			case isString(dst) && (isByteSlice(src) || isRuneSlice(src)):
				report(call.Pos(), "[]byte/[]rune to string conversion allocates")
			case (isByteSlice(dst) || isRuneSlice(dst)) && isString(src):
				report(call.Pos(), "string to []byte/[]rune conversion allocates")
			case c.boxes(call.Args[0], dst):
				report(call.Pos(), "conversion boxes %s into interface %s",
					types.TypeString(src, types.RelativeTo(c.pass.Pkg)),
					types.TypeString(dst, types.RelativeTo(c.pass.Pkg)))
			}
		}
		return
	}

	// Builtin?
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				report(call.Pos(), "append may grow its backing array")
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "print", "println":
				report(call.Pos(), "print/println allocate their operands")
			}
			return
		}
	}

	// Boxing at the call boundary, using the call expression's own
	// signature (known even for dynamic calls).
	tv, ok := info.Types[fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if inSpans(spans, arg.Pos()) {
			continue
		}
		var dst types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through
			}
			dst = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			dst = params.At(i).Type()
		}
		if c.boxes(arg, dst) {
			report(arg.Pos(), "argument boxes %s into interface %s",
				types.TypeString(info.TypeOf(arg), types.RelativeTo(c.pass.Pkg)),
				types.TypeString(dst, types.RelativeTo(c.pass.Pkg)))
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst heap-
// allocates an interface box. Pointer-shaped values (pointers, channels,
// maps, functions, unsafe pointers) are stored directly in the interface
// word and do not allocate; nil and existing interface values do not
// either.
func (c *checker) boxes(expr ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	return !pointerShaped(tv.Type)
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool { return isSliceOf(t, types.Byte) }
func isRuneSlice(t types.Type) bool { return isSliceOf(t, types.Rune) }

func isSliceOf(t types.Type, kind types.BasicKind) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// shortName renders fn as F or (T).M / (*T).M relative to its package.
func shortName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s",
			types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())), fn.Name())
	}
	return fn.Name()
}

// contractPkg extracts the defining package path from a FullName key:
// "pkg/path.F", "(pkg/path.T).M" or "(*pkg/path.T).M".
func contractPkg(key string) string {
	s := key
	if strings.HasPrefix(s, "(") {
		s = strings.TrimPrefix(s[1:], "*")
		if i := strings.Index(s, ")"); i >= 0 {
			s = s[:i]
		}
	}
	i := strings.LastIndex(s, ".")
	if i < 0 {
		return ""
	}
	return s[:i]
}

// splitInterfaceKey parses "(pkg/path.Iface).Method".
func splitInterfaceKey(key string) (pkg, iface, method string, ok bool) {
	if !strings.HasPrefix(key, "(") {
		return "", "", "", false
	}
	rp := strings.Index(key, ")")
	if rp < 0 || rp+2 > len(key) || key[rp+1] != '.' {
		return "", "", "", false
	}
	qual := key[1:rp]
	method = key[rp+2:]
	i := strings.LastIndex(qual, ".")
	if i < 0 {
		return "", "", "", false
	}
	return qual[:i], qual[i+1:], method, method != ""
}

// findPackage locates path in pkg's transitive import graph.
func findPackage(pkg *types.Package, path string) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	seen := map[*types.Package]bool{pkg: true}
	stack := []*types.Package{pkg}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, imp := range p.Imports() {
			if imp.Path() == path {
				return imp
			}
			if !seen[imp] {
				seen[imp] = true
				stack = append(stack, imp)
			}
		}
	}
	return nil
}

func appendUnique(fns []*types.Func, fn *types.Func) []*types.Func {
	for _, f := range fns {
		if f == fn {
			return fns
		}
	}
	return append(fns, fn)
}

// enclosingFunc finds the function declaration whose source range covers
// pos.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// sortedKeys returns m's keys in sorted order, keeping every iteration
// that can influence diagnostics deterministic.
func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
