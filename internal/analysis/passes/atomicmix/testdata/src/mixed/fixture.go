// Package mixed exercises the atomic/plain mixed-access check.
package mixed

import "sync/atomic"

type counters struct {
	// mixed is touched both ways: flagged at the declaration.
	mixed uint64 // want `field mixed is accessed both atomically .* and with plain loads/stores .*; all accesses must agree`

	// atomicOnly and plainOnly each keep one discipline: clean.
	atomicOnly uint64
	plainOnly  uint64

	// typed uses an atomic type, so plain access is impossible anyway.
	typed atomic.Uint64

	// sampled intentionally mixes: written before the goroutine starts,
	// read atomically after.
	//
	//numalint:unsynchronized seeded once before the workers start
	sampled uint64

	// lanes is an array accessed through &x.lanes[i].
	lanes [4]uint64 // want `field lanes is accessed both atomically .* and with plain loads/stores`
}

func (c *counters) work(i int) uint64 {
	atomic.AddUint64(&c.mixed, 1)
	c.mixed++ // the plain side of the mix

	atomic.AddUint64(&c.atomicOnly, 1)
	atomic.StoreUint64(&c.atomicOnly, 0)

	c.plainOnly++
	c.plainOnly = c.plainOnly + 2

	c.typed.Add(1)

	c.sampled = 7
	atomic.AddUint64(&c.sampled, 1)

	atomic.AddUint64(&c.lanes[i], 1)
	return c.lanes[i] + atomic.LoadUint64(&c.mixed)
}
