package atomicmix_test

import (
	"path/filepath"
	"testing"

	"numasim/internal/analysis/analysistest"
	"numasim/internal/analysis/passes/atomicmix"
)

func TestMixedAccess(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "mixed"), atomicmix.Analyzer)
}
