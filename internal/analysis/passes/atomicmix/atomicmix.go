// Package atomicmix flags struct fields accessed both through sync/atomic
// and with plain loads or stores.
//
// A field is either atomic or it is not: mixing `atomic.AddUint64(&s.n, 1)`
// on one path with `s.n++` (or even a bare read `s.n`) on another is a data
// race the race detector only catches when both paths happen to run in the
// sampled interleaving. The batched-emission counters added with the PR 6
// sink work are exactly where this bug class breeds, so the invariant is
// enforced statically: every access to a field must agree on its
// discipline.
//
// For each field the analyzer classifies uses package-wide:
//
//   - an atomic use is &x.f (possibly through an index, &x.fs[i]) passed
//     to a sync/atomic function;
//   - a plain use is any other read, write or address-taking of the field.
//
// Fields whose declared type lives in sync/atomic (atomic.Uint64 and
// friends) are exempt: the type system already forbids plain access.
// A field that must intentionally mix — e.g. a counter written before the
// goroutine starts and read atomically after — can opt out with
//
//	//numalint:unsynchronized <why>
//
// on the field's declaration.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"numasim/internal/analysis"
)

// Analyzer is the atomic/plain mixed-access check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag struct fields accessed both atomically and with plain loads/stores",
	Run:  run,
}

type fieldUses struct {
	firstAtomic token.Pos
	firstPlain  token.Pos
}

func run(pass *analysis.Pass) error {
	exempt := exemptFields(pass)

	uses := make(map[*types.Var]*fieldUses)
	var order []*types.Var // fields in first-appearance order, for determinism

	note := func(obj *types.Var, pos token.Pos, atomic bool) {
		u := uses[obj]
		if u == nil {
			u = &fieldUses{}
			uses[obj] = u
			order = append(order, obj)
		}
		if atomic {
			if !u.firstAtomic.IsValid() {
				u.firstAtomic = pos
			}
		} else if !u.firstPlain.IsValid() {
			u.firstPlain = pos
		}
	}

	for _, f := range pass.Files {
		// First sweep: mark the field selectors that are the &-operands of
		// sync/atomic calls.
		atomicSel := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if sel := addressedField(pass, arg); sel != nil {
					atomicSel[sel] = true
				}
			}
			return true
		})
		// Second sweep: classify every field selector.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			obj, ok := s.Obj().(*types.Var)
			if !ok || atomicType(obj.Type()) {
				return true
			}
			note(obj, sel.Pos(), atomicSel[sel])
			return true
		})
	}

	for _, obj := range order {
		u := uses[obj]
		if !u.firstAtomic.IsValid() || !u.firstPlain.IsValid() || exempt[obj] {
			continue
		}
		pos := obj.Pos()
		if pos == token.NoPos || obj.Pkg() != pass.Pkg {
			pos = u.firstAtomic
		}
		pass.Reportf(pos,
			"field %s is accessed both atomically (%s) and with plain loads/stores (%s); all accesses must agree, or annotate the field //numalint:unsynchronized with a reason",
			obj.Name(), pass.Fset.Position(u.firstAtomic), pass.Fset.Position(u.firstPlain))
	}
	return nil
}

// exemptFields collects the field objects carrying an
// //numalint:unsynchronized doc directive.
func exemptFields(pass *analysis.Pass) map[*types.Var]bool {
	exempt := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		for _, d := range analysis.Directives(f) {
			if d.Name != "unsynchronized" {
				continue
			}
			field, ok := d.Node.(*ast.Field)
			if !ok {
				pass.Reportf(d.Pos, "//numalint:unsynchronized must be on a struct field's doc comment")
				continue
			}
			for _, name := range field.Names {
				if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					exempt[obj] = true
				}
			}
		}
	}
	return exempt
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedField unwraps &x.f or &x.fs[i] (possibly parenthesized) to the
// innermost field selector being addressed, or nil.
func addressedField(pass *analysis.Pass, arg ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	x := ast.Unparen(u.X)
	for {
		switch e := x.(type) {
		case *ast.IndexExpr:
			x = ast.Unparen(e.X)
		case *ast.SelectorExpr:
			if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
				return e
			}
			return nil
		default:
			return nil
		}
	}
}

// atomicType reports whether t is (or aliases) a type declared in
// sync/atomic, whose values cannot be accessed non-atomically anyway.
func atomicType(t types.Type) bool {
	n := analysis.NamedType(t)
	if n == nil {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}
