// Package fixture exercises the statemachine analyzer with a local enum,
// guard and transition table declared via directives.
package fixture

// Phase is a little three-state machine.
//
//numalint:stateenum
type Phase int

// Phases.
const (
	PhaseA Phase = iota
	PhaseB
	PhaseC
)

// Transitions is the legal relation.
//
//numalint:transitions
var Transitions = map[Phase][]Phase{
	PhaseA: {PhaseB},
	PhaseB: {PhaseC},
	PhaseC: {PhaseA},
}

// MissingRow lacks an entry for PhaseC.
//
//numalint:transitions
var MissingRow = map[Phase][]Phase{ // want `transition table has no entries for states \[PhaseC\]`
	PhaseA: {PhaseB},
	PhaseB: {PhaseA},
}

func mkPhase() Phase { return PhaseB }

// NonConst smuggles a computed state into the relation.
//
//numalint:transitions
var NonConst = map[Phase][]Phase{
	PhaseA: {mkPhase()}, // want `transition table entries must be declared .*Phase constants`
	PhaseB: {PhaseA},
	PhaseC: {PhaseA},
}

type machine struct {
	phase Phase
}

// setPhase is the sole writer of machine.phase.
//
//numalint:stateguard
func (m *machine) setPhase(next Phase) {
	for _, s := range Transitions[m.phase] {
		if s == next {
			m.phase = next
			return
		}
	}
	panic("illegal transition")
}

func (m *machine) throughGuard() {
	m.setPhase(PhaseB)
}

func (m *machine) directWrite() {
	m.phase = PhaseB // want `direct assignment to .*Phase field phase outside setPhase`
}

func (m *machine) computedState(p Phase) {
	m.setPhase(p) // want `setPhase must be called with a declared .*Phase constant`
}

// Construction is not a transition: composite literals are exempt.
func fresh() *machine {
	return &machine{phase: PhaseA}
}

// Switch coverage.

func exhaustive(p Phase) int {
	switch p {
	case PhaseA:
		return 0
	case PhaseB:
		return 1
	case PhaseC:
		return 2
	}
	return -1
}

func withDefault(p Phase) int {
	switch p {
	case PhaseA:
		return 0
	default:
		return -1
	}
}

func missingCases(p Phase) int {
	switch p { // want `switch on .*Phase is not exhaustive: missing \[PhaseB PhaseC\]`
	case PhaseA:
		return 0
	}
	return -1
}
