// Package statemachine enforces the shape of the simulator's state
// machines: the NUMA manager's page-consistency protocol (the paper's
// Tables 1 and 2) and the engine's thread lifecycle.
//
// Two families of checks:
//
// # Exhaustive switches
//
// Every `switch` whose tag has a registered state-enum type (numa.State,
// sim.State, or any type whose declaration carries //numalint:stateenum)
// must either cover all of the type's declared constants or carry a
// default clause. A new protocol state can then never silently fall
// through an existing switch.
//
// # Guarded transitions
//
// A package may designate one method as the sole writer of a state field
// with //numalint:stateguard, and declare the legal transition relation
// with //numalint:transitions on a package-level composite literal (the
// single place the paper's Table 1/2 relation lives; the guard checks it
// at simulation time). The analyzer then reports:
//
//   - any assignment to a struct field of the enum type outside the guard
//     method (composite literals — construction, not transition — are
//     exempt);
//   - any guard call whose argument is not a declared constant of the
//     enum (transitions must target named states, not computed ones);
//   - any transition-table entry that is not a declared constant, and any
//     declared state missing from the table's sources.
package statemachine

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"numasim/internal/analysis"
)

// Analyzer is the state-machine check.
var Analyzer = &analysis.Analyzer{
	Name: "statemachine",
	Doc:  "exhaustive switches over state enums and guarded Table 1/2 transitions",
	Run:  run,
}

// KnownEnums registers state-enum types by "path.Name"; packages may add
// their own with //numalint:stateenum.
var KnownEnums = map[string]bool{
	"numasim/internal/numa.State": true,
	"numasim/internal/sim.State":  true,
}

func run(pass *analysis.Pass) error {
	enums := collectEnums(pass)
	isEnum := func(t types.Type) *types.Named {
		n := analysis.NamedType(t)
		if n == nil {
			return nil
		}
		if KnownEnums[analysis.TypeKey(n)] || enums[n.Obj()] {
			return n
		}
		return nil
	}

	guard, guardEnum := findGuard(pass, isEnum)
	checkTransitionTables(pass, isEnum)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.SwitchStmt:
				if s.Tag != nil {
					if enum := isEnum(pass.TypesInfo.TypeOf(s.Tag)); enum != nil {
						checkExhaustive(pass, s, enum)
					}
				}
			case *ast.AssignStmt:
				if guard != nil {
					checkFieldAssign(pass, s, isEnum, guard)
				}
			case *ast.CallExpr:
				if guard != nil {
					checkGuardCall(pass, s, guard, guardEnum)
				}
			}
			return true
		})
	}
	return nil
}

// collectEnums finds in-package types marked //numalint:stateenum.
func collectEnums(pass *analysis.Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, d := range analysis.Directives(f) {
			if d.Name != "stateenum" || d.Node == nil {
				continue
			}
			switch n := d.Node.(type) {
			case *ast.TypeSpec:
				if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.TypeName); ok {
					out[obj] = true
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						if obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							out[obj] = true
						}
					}
				}
			}
		}
	}
	return out
}

// checkExhaustive verifies that a switch over enum covers every declared
// constant or has a default clause.
func checkExhaustive(pass *analysis.Pass, s *ast.SwitchStmt, enum *types.Named) {
	consts := analysis.ConstantsOfType(enum)
	if len(consts) == 0 {
		return
	}
	covered := make(map[constant.Value]bool)
	hasDefault := false
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for _, c := range consts {
		if !covered[c.Val()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(s.Pos(), "switch on %s is not exhaustive: missing %v (add the cases or a default clause)",
			analysis.TypeKey(enum), missing)
	}
}

// findGuard locates the //numalint:stateguard method and the enum type it
// guards (its sole parameter's type).
func findGuard(pass *analysis.Pass, isEnum func(types.Type) *types.Named) (*types.Func, *types.Named) {
	for _, f := range pass.Files {
		for _, d := range analysis.Directives(f) {
			fd, ok := d.Node.(*ast.FuncDecl)
			if d.Name != "stateguard" || !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Params().Len() != 1 {
				pass.Reportf(fd.Pos(), "//numalint:stateguard method must take exactly one state parameter")
				continue
			}
			enum := isEnum(sig.Params().At(0).Type())
			if enum == nil {
				pass.Reportf(fd.Pos(), "//numalint:stateguard parameter type is not a registered state enum")
				continue
			}
			return obj, enum
		}
	}
	return nil, nil
}

// checkFieldAssign reports direct stores to enum-typed struct fields
// outside the guard method.
func checkFieldAssign(pass *analysis.Pass, s *ast.AssignStmt, isEnum func(types.Type) *types.Named, guard *types.Func) {
	for _, lhs := range s.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			continue
		}
		enum := isEnum(selection.Obj().Type())
		if enum == nil {
			continue
		}
		if within(pass, s.Pos(), guard) {
			continue
		}
		pass.Reportf(s.Pos(), "direct assignment to %s field %s outside %s; route the transition through the guard",
			analysis.TypeKey(enum), selection.Obj().Name(), guard.Name())
	}
}

// within reports whether pos falls inside the guard method's declaration.
func within(pass *analysis.Pass, pos token.Pos, guard *types.Func) bool {
	scope := guard.Scope()
	return scope != nil && scope.Contains(pos)
}

// checkGuardCall verifies that every call of the guard passes a declared
// constant of the enum.
func checkGuardCall(pass *analysis.Pass, call *ast.CallExpr, guard *types.Func, enum *types.Named) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if pass.TypesInfo.Uses[sel.Sel] != guard {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if id := constIdent(arg); id != nil {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && types.Identical(obj.Type(), enum) {
			return
		}
	}
	pass.Reportf(arg.Pos(), "%s must be called with a declared %s constant, not a computed state",
		guard.Name(), analysis.TypeKey(enum))
}

func constIdent(e ast.Expr) *ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	case *ast.ParenExpr:
		return constIdent(x.X)
	}
	return nil
}

// checkTransitionTables validates //numalint:transitions composite
// literals: entries must be declared constants, and every declared state
// must appear as a source.
func checkTransitionTables(pass *analysis.Pass, isEnum func(types.Type) *types.Named) {
	for _, f := range pass.Files {
		for _, d := range analysis.Directives(f) {
			if d.Name != "transitions" {
				continue
			}
			var values []ast.Expr
			switch n := d.Node.(type) {
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						values = append(values, vs.Values...)
					}
				}
			case *ast.ValueSpec:
				values = append(values, n.Values...)
			default:
				pass.Reportf(d.Pos, "//numalint:transitions must annotate a package-level var declaration")
				continue
			}
			for _, v := range values {
				checkTableLiteral(pass, v, isEnum)
			}
		}
	}
}

func checkTableLiteral(pass *analysis.Pass, v ast.Expr, isEnum func(types.Type) *types.Named) {
	lit, ok := v.(*ast.CompositeLit)
	if !ok {
		pass.Reportf(v.Pos(), "//numalint:transitions value must be a composite literal")
		return
	}
	var enum *types.Named
	sources := make(map[constant.Value]bool)
	var checkExpr func(e ast.Expr)
	checkExpr = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				checkExpr(elt)
			}
		case *ast.KeyValueExpr:
			if en := isEnum(pass.TypesInfo.TypeOf(x.Key)); en != nil {
				enum = en
				if tv, ok := pass.TypesInfo.Types[x.Key]; ok && tv.Value != nil {
					sources[tv.Value] = true
				}
				requireConst(pass, x.Key, en)
			}
			checkExpr(x.Value)
		default:
			if en := isEnum(pass.TypesInfo.TypeOf(e)); en != nil {
				enum = en
				requireConst(pass, e, en)
			}
		}
	}
	for _, elt := range lit.Elts {
		checkExpr(elt)
	}
	if enum == nil {
		return
	}
	var missing []string
	for _, c := range analysis.ConstantsOfType(enum) {
		if !sources[c.Val()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(lit.Pos(), "transition table has no entries for states %v; every state needs an explicit (possibly empty) row", missing)
	}
}

// requireConst reports non-constant enum expressions in the table.
func requireConst(pass *analysis.Pass, e ast.Expr, enum *types.Named) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		pass.Reportf(e.Pos(), "transition table entries must be declared %s constants", analysis.TypeKey(enum))
	}
}
