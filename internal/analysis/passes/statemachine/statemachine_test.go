package statemachine_test

import (
	"path/filepath"
	"testing"

	"numasim/internal/analysis/analysistest"
	"numasim/internal/analysis/passes/statemachine"
)

func TestStateMachine(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "statemachine"), statemachine.Analyzer)
}
