// Package fixture is type-checked under the numasim/internal/numa
// import path, so every panic here must carry a typed violation built
// in-argument.
package fixture

import "fmt"

type violationError struct{ msg string }

func (e *violationError) Error() string { return e.msg }

func newViolation(format string, args ...any) *violationError {
	return &violationError{msg: fmt.Sprintf(format, args...)}
}

type manager struct{}

func (m *manager) violation(format string, args ...any) *violationError {
	return newViolation(format, args...)
}

func good(m *manager) {
	panic(newViolation("broken invariant on page%d", 3))
}

func goodMethod(m *manager) {
	panic(m.violation("broken invariant"))
}

func goodParen(m *manager) {
	panic((m.violation("parenthesised is still a direct call")))
}

func badString() {
	panic("numa: broken invariant") // want `panic in numasim/internal/numa must pass a typed violation built in-argument by violation or newViolation`
}

func badErrorf() {
	panic(fmt.Errorf("numa: broken invariant")) // want `panic in numasim/internal/numa must pass a typed violation`
}

func badHoisted(m *manager) {
	v := m.violation("built too early")
	panic(v) // want `panic in numasim/internal/numa must pass a typed violation`
}

func shadowed() {
	// A local function named panic is not the builtin; no finding.
	panic := func(v any) {}
	panic("fine")
}
