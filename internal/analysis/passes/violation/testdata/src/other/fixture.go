// Package fixture is type-checked under a package path the violation
// analyzer does not cover: bare panics are someone else's problem here.
package fixture

func anythingGoes() {
	panic("not a protocol package")
}
