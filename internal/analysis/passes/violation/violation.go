// Package violation enforces that every protocol-state panic in the
// NUMA manager carries typed forensics.
//
// The simulator's crash-forensics pipeline — the engine's %w-wrapping of
// panic values, the supervisor's repro bundles, the facade's
// ProtocolViolation alias — only works when the panic value is a
// *numa.ProtocolViolationError built by one of the package's two blessed
// constructors. A bare panic("...") anywhere in internal/numa would ship
// a string through that pipeline: no page id, no state, no ring trace,
// and errors.As finds nothing.
//
// So inside the target package every call to the panic builtin must pass
// a direct call to the violation helper (the Manager method, which
// snapshots the manager's forensic ring) or newViolation (the
// free-standing constructor for call sites without a manager). Any other
// argument — a string, an fmt.Errorf, a variable holding a previously
// built violation — is reported; hoisting the constructor call into the
// panic argument keeps the invariant checkable.
package violation

import (
	"go/ast"
	"go/types"

	"numasim/internal/analysis"
)

// Analyzer is the typed-violation check.
var Analyzer = &analysis.Analyzer{
	Name: "violation",
	Doc:  "require protocol panics in internal/numa to construct a typed ProtocolViolationError",
	Run:  run,
}

// TargetPackages maps each import path under the check to the helper
// functions whose results are acceptable panic arguments there.
var TargetPackages = map[string][]string{
	"numasim/internal/numa": {"violation", "newViolation"},
}

func run(pass *analysis.Pass) error {
	helpers := TargetPackages[pass.Pkg.Path()]
	if len(helpers) == 0 {
		return nil
	}
	allowed := make(map[string]bool, len(helpers))
	for _, h := range helpers {
		allowed[h] = true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinPanic(pass, call.Fun) {
				return true
			}
			if len(call.Args) == 1 && isHelperCall(call.Args[0], allowed) {
				return true
			}
			pass.Reportf(call.Pos(), "panic in %s must pass a typed violation built in-argument by %s (protocol forensics depend on it)",
				pass.Pkg.Path(), helperList(helpers))
			return true
		})
	}
	return nil
}

// isBuiltinPanic reports whether fun denotes the predeclared panic (a
// local function or variable shadowing the name does not count).
func isBuiltinPanic(pass *analysis.Pass, fun ast.Expr) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}

// isHelperCall reports whether arg is a direct call to one of the
// blessed constructors, by function or method name.
func isHelperCall(arg ast.Expr, allowed map[string]bool) bool {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return allowed[fun.Name]
	case *ast.SelectorExpr:
		return allowed[fun.Sel.Name]
	}
	return false
}

func helperList(helpers []string) string {
	s := ""
	for i, h := range helpers {
		if i > 0 {
			s += " or "
		}
		s += h
	}
	return s
}
