package violation_test

import (
	"path/filepath"
	"testing"

	"numasim/internal/analysis/analysistest"
	"numasim/internal/analysis/passes/violation"
)

func TestNumaPanicsMustBeTyped(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "numa"), violation.Analyzer,
		analysistest.WithImportPath("numasim/internal/numa"))
}

func TestOtherPackagesAreIgnored(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "other"), violation.Analyzer,
		analysistest.WithImportPath("numasim/internal/harness"))
}
