package units_test

import (
	"path/filepath"
	"testing"

	"numasim/internal/analysis/analysistest"
	"numasim/internal/analysis/passes/units"
)

func TestUnits(t *testing.T) {
	analysistest.Run(t, filepath.Join(analysistest.TestData(), "units"), units.Analyzer)
}
