// Package fixture exercises the units analyzer with two local unit types.
// Mixing them through raw-float laundering or direct conversion is
// flagged; dimension-changing multiplication/division, untyped constants
// and explicit accessor methods are not.
package fixture

//numalint:unit
type Meters float64

//numalint:unit
type Feet float64

// Kilometer is a declared constant of a unit type: it carries the unit.
const Kilometer Meters = 1000

// Feet is the blessed Meters→Feet accessor: a method call is a deliberate
// scale boundary.
func (m Meters) Feet() Feet { return Feet(float64(m) * 3.28084) }

func mixing(m, m2 Meters, f Feet) {
	_ = float64(m) - float64(f)  // want `operands of "-" mix units .*Meters and .*Feet`
	_ = float64(f) + float64(m2) // want `operands of "\+" mix units .*Feet and .*Meters`
	if float64(m) > float64(f) { // want `operands of ">" mix units .*Meters and .*Feet`
		return
	}
}

func conversion(m Meters) Feet {
	return Feet(m) // want `conversion from .*Meters to .*Feet changes units without rescaling`
}

func allowed(m, m2 Meters, f Feet) {
	_ = m + m2                  // same unit
	_ = m + 5                   // untyped constants carry no unit
	_ = m > Kilometer           // named unit constant, same unit
	_ = float64(m) * float64(f) // multiplication changes dimension
	ratio := float64(m / m2)    // same-unit ratio is a plain number
	_ = ratio
	_ = m.Feet() + f // accessor call is a deliberate boundary
	_ = Meters(3.5)  // converting an untyped constant attaches a unit
	_ = float64(m)   // converting to a non-unit type drops the unit
}
