// Package units keeps the simulator's time scales from being mixed.
//
// The repository renders virtual time in three distinct units: sim.Time
// (virtual nanoseconds, the engine's clock), sim.Ticks (virtual seconds,
// the unit of every rendered table) and metrics.WallMicros (wall-clock
// microseconds, host-side diagnostics only). Go's type system already
// rejects `Time + Ticks`, but a conversion through a raw float launders
// the unit: `float64(wall) - float64(ticks)` compiles and is meaningless.
//
// The analyzer tracks each operand's unit provenance through parentheses,
// unary operators and numeric conversions, and reports:
//
//   - additive or comparison operators (+ - < <= > >= == !=, and their
//     assignment forms) whose operands carry different units;
//   - a direct conversion from one unit type to another (rescaling must
//     go through an explicit accessor such as Time.Ticks(), whose method
//     call is a deliberate scale boundary).
//
// Multiplication and division are exempt: they legitimately change
// dimension (a Ticks/Ticks ratio is a plain number). Untyped constants
// carry no unit. Types join the unit set via the built-in registry or a
// //numalint:unit directive on their declaration.
package units

import (
	"go/ast"
	"go/token"
	"go/types"

	"numasim/internal/analysis"
)

// Analyzer is the units check.
var Analyzer = &analysis.Analyzer{
	Name: "units",
	Doc:  "flag arithmetic mixing simulated-time and wall-clock unit types",
	Run:  run,
}

// KnownUnits registers unit types by "path.Name"; packages may add their
// own with //numalint:unit.
var KnownUnits = map[string]bool{
	"numasim/internal/sim.Time":           true,
	"numasim/internal/sim.Ticks":          true,
	"numasim/internal/metrics.WallMicros": true,
}

// mixingOps are the operators for which operands must share a unit.
var mixingOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

var mixingAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
}

func run(pass *analysis.Pass) error {
	local := collectLocalUnits(pass)
	unitOf := func(t types.Type) *types.Named {
		n := analysis.NamedType(t)
		if n == nil {
			return nil
		}
		if KnownUnits[analysis.TypeKey(n)] || local[n.Obj()] {
			return n
		}
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if mixingOps[e.Op] {
					checkPair(pass, unitOf, e.X, e.Y, e.OpPos, e.Op.String())
				}
			case *ast.AssignStmt:
				if mixingAssignOps[e.Tok] && len(e.Lhs) == 1 && len(e.Rhs) == 1 {
					checkPair(pass, unitOf, e.Lhs[0], e.Rhs[0], e.TokPos, e.Tok.String())
				}
			case *ast.CallExpr:
				checkConversion(pass, unitOf, e)
			}
			return true
		})
	}
	return nil
}

// collectLocalUnits finds in-package types marked //numalint:unit.
func collectLocalUnits(pass *analysis.Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, d := range analysis.Directives(f) {
			if d.Name != "unit" || d.Node == nil {
				continue
			}
			switch n := d.Node.(type) {
			case *ast.TypeSpec:
				if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.TypeName); ok {
					out[obj] = true
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						if obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							out[obj] = true
						}
					}
				}
			}
		}
	}
	return out
}

func checkPair(pass *analysis.Pass, unitOf func(types.Type) *types.Named, x, y ast.Expr, pos token.Pos, op string) {
	ux := provenance(pass, unitOf, x)
	uy := provenance(pass, unitOf, y)
	if ux != nil && uy != nil && ux.Obj() != uy.Obj() {
		pass.Reportf(pos, "operands of %q mix units %s and %s; rescale through an explicit accessor first",
			op, analysis.TypeKey(ux), analysis.TypeKey(uy))
	}
}

// checkConversion reports direct unit-to-unit conversions T(v).
func checkConversion(pass *analysis.Pass, unitOf func(types.Type) *types.Named, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := unitOf(tv.Type)
	if dst == nil {
		return
	}
	src := provenance(pass, unitOf, call.Args[0])
	if src != nil && src.Obj() != dst.Obj() {
		pass.Reportf(call.Pos(), "conversion from %s to %s changes units without rescaling; use an explicit accessor",
			analysis.TypeKey(src), analysis.TypeKey(dst))
	}
}

// provenance resolves the unit an expression's value is denominated in,
// looking through parentheses, unary +/- and numeric conversions. A
// function or method call (other than a conversion) is a deliberate
// boundary and yields no unit; so do untyped constants.
func provenance(pass *analysis.Pass, unitOf func(types.Type) *types.Named, e ast.Expr) *types.Named {
	tv, ok := pass.TypesInfo.Types[e]
	if ok && tv.Value != nil && tv.Type != nil {
		// A constant expression: unless it is a declared constant of a
		// unit type referenced by name, it carries no unit.
		if id := constName(e); id == nil {
			return nil
		}
	}
	if ok {
		if u := unitOf(tv.Type); u != nil {
			return u
		}
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return provenance(pass, unitOf, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			return provenance(pass, unitOf, x.X)
		}
	case *ast.CallExpr:
		if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return provenance(pass, unitOf, x.Args[0])
		}
	}
	return nil
}

func constName(e ast.Expr) *ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	case *ast.ParenExpr:
		return constName(x.X)
	}
	return nil
}
