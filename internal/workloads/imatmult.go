package workloads

import (
	"fmt"

	"numasim/internal/cthreads"
	"numasim/internal/vm"
)

// IMatMult computes the product of a pair of N×N integer matrices (the
// paper used 200×200). "Workload allocation parcels out elements of the
// output matrix, which is found to be shared and is placed in global
// memory. Once initialized, the input matrices are only read, and are thus
// replicated in local memory. This program emphasizes the value of
// replicating data that is writable, but that is never written" (§3.2).
type IMatMult struct {
	N int

	a, b, c uint32 // region bases
	task    *vm.Task
}

// NewIMatMult creates an IMatMult instance; zero selects the paper's size
// (200×200).
func NewIMatMult(n int) *IMatMult {
	if n <= 0 {
		n = 200
	}
	return &IMatMult{N: n}
}

// Name implements Workload.
func (w *IMatMult) Name() string { return "IMatMult" }

// FetchHeavy implements Workload. IMatMult "does almost all fetches and no
// stores" (§3.2 footnote 3).
func (w *IMatMult) FetchHeavy() bool { return true }

func aInit(i, j int) uint32 { return uint32((i+j)%17 + 1) }
func bInit(i, j int) uint32 { return uint32((3*i+2*j)%13 + 1) }

// Run implements Workload.
func (w *IMatMult) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *IMatMult) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	n := w.N
	sz := uint32(n * n * 4)
	w.task = rt.Task()
	w.a = rt.Alloc("A", sz)
	w.b = rt.Alloc("B", sz)
	w.c = rt.Alloc("C", sz)
	// Per-worker stack pages for the partial-product temporary the
	// compiler keeps in the stack frame.
	stacks := make([]uint32, nworkers)
	for i := range stacks {
		stacks[i] = rt.Alloc(fmt.Sprintf("stack%d", i), 4096)
	}
	pile := rt.NewWorkPile(uint32(n * n))

	rt.StartMain(func(mc *vm.Context) {
		// Initialization on the main processor: the input matrices become
		// local-writable there, then replicate to the readers.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				mc.Store32(w.a+uint32((i*n+j)*4), aInit(i, j))
				mc.Store32(w.b+uint32((i*n+j)*4), bInit(i, j))
			}
		}
		workers := rt.ForkWorkers(mc, nworkers, func(id int, c *vm.Context) {
			stack := stacks[id]
			for {
				e, ok := pile.Next(c)
				if !ok {
					return
				}
				i, j := int(e)/n, int(e)%n
				var sum uint32
				for k := 0; k < n; k++ {
					av := c.Load32(w.a + uint32((i*n+k)*4))
					bv := c.Load32(w.b + uint32((k*n+j)*4))
					sum += av * bv
					c.Mul(1)
					c.Compute(1)
					// The 1989 compiler keeps the running sum in the
					// stack frame, not a register.
					c.Store32(stack, sum)
				}
				c.Store32(w.c+uint32((i*n+j)*4), sum)
			}
		})
		for _, wk := range workers {
			wk.Join(mc)
		}
	})
	return w.verify
}

func (w *IMatMult) verify() error {
	n := w.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want uint32
			for k := 0; k < n; k++ {
				want += aInit(i, k) * bInit(k, j)
			}
			if got := readWord(w.task, w.c+uint32((i*n+j)*4)); got != want {
				return fmt.Errorf("IMatMult: C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
	return nil
}
