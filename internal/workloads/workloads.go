// Package workloads implements the paper's application mix (§3.2): a fast
// Fourier transform (FFT), a graphics rendering program (PlyTrace), three
// prime finders (Primes1-3) and an integer matrix multiplier (IMatMult),
// as well as a program designed to spend all of its time referencing
// shared memory (Gfetch) and one designed not to reference shared memory
// at all (ParMult).
//
// Every application performs its real computation — the primes are real
// primes, the transform is a real FFT, the renderer fills a real z-buffer
// — through simulated virtual memory, and verifies its own results, so a
// placement bug that corrupts data fails the run rather than skewing a
// number.
//
// Default problem sizes are scaled down from the paper's (which total
// hours of 1989 CPU time); every workload takes its sizes as parameters so
// the harness and benchmarks can sweep them.
package workloads

import (
	"fmt"
	"strings"

	"numasim/internal/cthreads"
	"numasim/internal/vm"
)

// Starter is a workload that can be started on a runtime without owning
// the simulation run, so several applications can execute concurrently on
// one machine (the multiprogrammed "application mix"). Start spawns the
// application's threads and returns a finish function that verifies the
// results after the engine has run.
type Starter interface {
	Workload
	Start(rt *cthreads.Runtime, nworkers int) (finish func() error)
}

// Workload is one measured application.
type Workload interface {
	// Name returns the application's name as the paper's tables spell it.
	Name() string
	// FetchHeavy reports whether the paper used the fetch-only G/L ratio
	// (2.3) for this application rather than the mixed ratio (~2): true
	// for Gfetch and IMatMult, which "do almost all fetches and no
	// stores" (§3.2 footnote 3).
	FetchHeavy() bool
	// Run executes the workload to completion on the runtime with the
	// given number of worker threads, verifying its own results.
	Run(rt *cthreads.Runtime, nworkers int) error
}

// All returns one instance of every workload in the paper's Table 3 order,
// at default (scaled) problem sizes.
func All() []Workload {
	return []Workload{
		NewParMult(0, 0),
		NewGfetch(0, 0),
		NewIMatMult(0),
		NewPrimes1(0),
		NewPrimes2(0, true),
		NewPrimes3(0),
		NewFFT(0),
		NewPlyTrace(0, 0, 0),
	}
}

// ByName returns the named workload at default size, or an error. The
// special name "Primes2-untuned" selects the pre-tuning Primes2 variant of
// §4.2.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if strings.EqualFold(w.Name(), name) {
			return w, nil
		}
	}
	if strings.EqualFold(name, "Primes2-untuned") {
		return NewPrimes2(0, false), nil
	}
	if strings.EqualFold(name, "Phased") {
		return NewPhased(0, 0, 0), nil
	}
	if strings.EqualFold(name, "Zipf") {
		return NewZipf(0, 0, 0), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (known: %v plus Primes2-untuned, Phased and Zipf)", name, Names())
}

// NewSized returns the named workload at an explicit problem size. The
// size parameter is the workload's primary knob: work units for ParMult,
// pages for Gfetch, matrix side for IMatMult and FFT, the search limit for
// the prime finders, and the triangle count for PlyTrace.
func NewSized(name string, size int) (Workload, error) {
	if size < 0 {
		return nil, fmt.Errorf("workloads: negative size %d", size)
	}
	switch canonical(name) {
	case "ParMult":
		return NewParMult(size, 0), nil
	case "Gfetch":
		return NewGfetch(size, 0), nil
	case "IMatMult":
		return NewIMatMult(size), nil
	case "Primes1":
		return NewPrimes1(uint32(size)), nil
	case "Primes2":
		return NewPrimes2(uint32(size), true), nil
	case "Primes2-untuned":
		return NewPrimes2(uint32(size), false), nil
	case "Primes3":
		return NewPrimes3(uint32(size)), nil
	case "FFT":
		return NewFFT(size), nil
	case "PlyTrace":
		return NewPlyTrace(size, 0, 0), nil
	case "Syscaller":
		return NewSyscaller(size, 0), nil
	case "Phased":
		return NewPhased(size, 0, 0), nil
	case "Zipf":
		return NewZipf(size, 0, 0), nil
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
}

// canonical resolves name to its exact Table 3 spelling,
// case-insensitively, leaving unknown names untouched. Workload names on
// the command line thus work in any case ("fft", "FFT", "plytrace").
func canonical(name string) string {
	for _, n := range Names() {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	for _, n := range []string{"Primes2-untuned", "Syscaller", "Phased", "Zipf"} {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	return name
}

// Names lists the standard workload names in table order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name())
	}
	return out
}

// runStarter starts a workload and runs the simulation to completion.
func runStarter(w Starter, rt *cthreads.Runtime, nworkers int) error {
	finish := w.Start(rt, nworkers)
	if err := rt.Kernel().Machine().Engine().Run(); err != nil {
		return err
	}
	return finish()
}

// readWord reads a word from the task's memory after the simulation has
// finished, without charging simulated time (for verification).
func readWord(task *vm.Task, va uint32) uint32 {
	obj, idx, off := locate(task, va)
	return obj.Peek32(idx, off)
}

func readWord64(task *vm.Task, va uint32) uint64 {
	obj, idx, off := locate(task, va)
	return obj.Peek64(idx, off)
}

func locate(task *vm.Task, va uint32) (obj *vm.Object, pageIdx, off int) {
	e := task.EntryAt(va)
	if e == nil {
		panic(fmt.Sprintf("workloads: unmapped address %#x", va))
	}
	ps := task.Kernel().Machine().PageSize()
	return e.Object(), int((va - e.Start()) / uint32(ps)), int(va) & (ps - 1)
}
