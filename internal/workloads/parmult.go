package workloads

import (
	"fmt"

	"numasim/internal/cthreads"
	"numasim/internal/vm"
)

// ParMult is the paper's no-shared-memory extreme: it "does nothing but
// integer multiplication. Its only data references are for workload
// allocation and are too infrequent to be visible through measurement
// error. Its β is thus 0 and its α irrelevant" (§3.2).
type ParMult struct {
	Units       int // work units in the pile
	MulsPerUnit int // integer multiplies per unit

	sums []uint64 // per-worker partial checksums (host-side)
}

// NewParMult creates a ParMult instance; zero parameters select defaults.
func NewParMult(units, mulsPerUnit int) *ParMult {
	if units <= 0 {
		units = 350
	}
	if mulsPerUnit <= 0 {
		mulsPerUnit = 400
	}
	return &ParMult{Units: units, MulsPerUnit: mulsPerUnit}
}

// Name implements Workload.
func (w *ParMult) Name() string { return "ParMult" }

// FetchHeavy implements Workload.
func (w *ParMult) FetchHeavy() bool { return false }

// unitChecksum is the real computation of one work unit: a multiply-heavy
// linear-congruential chain.
func unitChecksum(unit uint32, muls int, charge func(muls, adds int)) uint32 {
	x := unit*2654435761 + 1
	for j := 0; j < muls; j++ {
		x = x*1664525 + 1013904223
	}
	charge(muls, muls)
	return x
}

// Run implements Workload.
func (w *ParMult) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *ParMult) Start(rt *cthreads.Runtime, nworkers int) func() error {
	pile := rt.NewWorkPile(uint32(w.Units))
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	w.sums = make([]uint64, nworkers)
	rt.Start(nworkers, func(id int, c *vm.Context) {
		for {
			unit, ok := pile.Next(c)
			if !ok {
				return
			}
			v := unitChecksum(unit, w.MulsPerUnit, func(muls, adds int) {
				c.Mul(muls)
				c.Compute(adds)
			})
			w.sums[id] += uint64(v)
		}
	})
	return w.verify
}

func (w *ParMult) verify() error {
	var got uint64
	for _, s := range w.sums {
		got += s
	}
	var want uint64
	for u := 0; u < w.Units; u++ {
		want += uint64(unitChecksum(uint32(u), w.MulsPerUnit, func(int, int) {}))
	}
	if got != want {
		return fmt.Errorf("ParMult: checksum %d, want %d", got, want)
	}
	return nil
}
