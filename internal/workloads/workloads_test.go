package workloads_test

import (
	"strings"
	"testing"

	"numasim/internal/ace"
	"numasim/internal/cthreads"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/vm"
	"numasim/internal/workloads"
)

// newRT builds a small machine and C-Threads runtime.
func newRT(nproc int, pol numa.Policy) *cthreads.Runtime {
	cfg := ace.DefaultConfig()
	cfg.NProc = nproc
	cfg.GlobalFrames = 2048
	cfg.LocalFrames = 1024
	k := vm.NewKernel(ace.MustMachine(cfg), pol)
	return cthreads.New(k, sched.Affinity)
}

// tiny returns small instances of every workload (fast enough to run under
// several policies in tests).
func tiny() []workloads.Workload {
	return []workloads.Workload{
		workloads.NewParMult(40, 50),
		workloads.NewGfetch(8, 3),
		workloads.NewIMatMult(16),
		workloads.NewPrimes1(2000),
		workloads.NewPrimes2(2000, true),
		workloads.NewPrimes2(2000, false),
		workloads.NewPrimes3(20000),
		workloads.NewFFT(16),
		workloads.NewPlyTrace(72, 48, 48),
	}
}

// TestWorkloadsComputeCorrectResults runs every workload under the paper's
// default policy on 4 processors; each workload verifies its own output.
func TestWorkloadsComputeCorrectResults(t *testing.T) {
	for _, w := range tiny() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			rt := newRT(4, policy.NewDefault())
			if err := w.Run(rt, 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWorkloadsUnderBaselinePolicies runs every workload under the
// all-global policy (the T_global instrumentation run) and single-threaded
// under all-local (the T_local run): results must stay correct.
func TestWorkloadsUnderBaselinePolicies(t *testing.T) {
	for _, w := range tiny() {
		w := w
		t.Run(w.Name()+"/all-global", func(t *testing.T) {
			rt := newRT(4, policy.AllGlobal{})
			if err := w.Run(rt, 4); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, w := range tiny() {
		w := w
		t.Run(w.Name()+"/all-local-1cpu", func(t *testing.T) {
			rt := newRT(1, policy.AllLocal{})
			if err := w.Run(rt, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWorkloadsNeverPin stresses the protocol with endless migration.
func TestWorkloadsNeverPin(t *testing.T) {
	for _, w := range []workloads.Workload{
		workloads.NewGfetch(4, 2),
		workloads.NewIMatMult(12),
		workloads.NewPrimes3(5000),
	} {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			rt := newRT(3, policy.NeverPin())
			if err := w.Run(rt, 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	names := workloads.Names()
	want := []string{"ParMult", "Gfetch", "IMatMult", "Primes1", "Primes2", "Primes3", "FFT", "PlyTrace"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("Names() = %v, want %v", names, want)
	}
	for _, n := range append(want, "Primes2-untuned") {
		w, err := workloads.ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
			continue
		}
		if w.Name() != n {
			t.Errorf("ByName(%q).Name() = %q", n, w.Name())
		}
	}
	if _, err := workloads.ByName("nosuch"); err == nil {
		t.Error("ByName of unknown workload should fail")
	}
}

func TestFetchHeavyFlags(t *testing.T) {
	// §3.2 footnote 3: Gfetch and IMatMult use G/L = 2.3; the rest use ~2.
	for _, w := range workloads.All() {
		want := w.Name() == "Gfetch" || w.Name() == "IMatMult"
		if w.FetchHeavy() != want {
			t.Errorf("%s.FetchHeavy() = %v, want %v", w.Name(), w.FetchHeavy(), want)
		}
	}
}

// TestGfetchExtremes is E7: under the paper's policy on several CPUs,
// Gfetch's pages end up pinned in global memory and essentially all fetch
// traffic is global (α≈0); ParMult performs almost no data references.
func TestGfetchExtremes(t *testing.T) {
	g := workloads.NewGfetch(8, 6)
	rt := newRT(4, policy.NewDefault())
	if err := g.Run(rt, 4); err != nil {
		t.Fatal(err)
	}
	refs := rt.Kernel().Machine().TotalRefs()
	localFrac := refs.LocalFraction()
	if localFrac > 0.25 {
		t.Errorf("Gfetch local fraction = %.2f, want near 0 (pages should pin global)", localFrac)
	}
	if pins := rt.Kernel().NUMA().Stats().Pins; pins < 8 {
		t.Errorf("pins = %d, want at least one per data page", pins)
	}

	p := workloads.NewParMult(200, 200)
	rt2 := newRT(4, policy.NewDefault())
	if err := p.Run(rt2, 4); err != nil {
		t.Fatal(err)
	}
	refs2 := rt2.Kernel().Machine().TotalRefs()
	// ParMult's only references are workload allocation: their time must
	// be invisible next to the multiplication work (β ≈ 0).
	refTime := float64(refs2.Total()) * 2e-6
	userTime := rt2.Kernel().Machine().Engine().TotalUserTime().Seconds()
	if frac := refTime / userTime; frac > 0.05 {
		t.Errorf("ParMult spends %.1f%% of user time on memory references, want < 5%%", frac*100)
	}
}

// TestPrimes2FalseSharing is E8: the untuned Primes2 reads its divisors
// from the writably-shared output vector and so makes far more global
// references than the tuned version, which copies divisors to private
// memory first (α 0.66 -> 1.00 in §4.2).
func TestPrimes2FalseSharing(t *testing.T) {
	run := func(tuned bool) float64 {
		w := workloads.NewPrimes2(20000, tuned)
		rt := newRT(4, policy.NewDefault())
		if err := w.Run(rt, 4); err != nil {
			t.Fatal(err)
		}
		refs := rt.Kernel().Machine().TotalRefs()
		return refs.LocalFraction()
	}
	tuned := run(true)
	untuned := run(false)
	if tuned <= untuned {
		t.Errorf("tuned local fraction %.3f should exceed untuned %.3f", tuned, untuned)
	}
	if tuned < 0.8 {
		t.Errorf("tuned Primes2 local fraction = %.3f, want > 0.8", tuned)
	}
	if untuned > tuned-0.15 {
		t.Errorf("untuned Primes2 local fraction = %.3f, want well below tuned %.3f", untuned, tuned)
	}
}

// TestIMatMultReplication: the input matrices are read-only after
// initialization and must be replicated (read mostly local), while the
// output pages become globally pinned.
func TestIMatMultReplication(t *testing.T) {
	w := workloads.NewIMatMult(24)
	rt := newRT(4, policy.NewDefault())
	if err := w.Run(rt, 4); err != nil {
		t.Fatal(err)
	}
	refs := rt.Kernel().Machine().TotalRefs()
	if lf := refs.LocalFraction(); lf < 0.8 {
		t.Errorf("IMatMult local fraction = %.3f, want > 0.8 (inputs replicate)", lf)
	}
	if pins := rt.Kernel().NUMA().Stats().Pins; pins == 0 {
		t.Error("no pages pinned; the shared output matrix should pin")
	}
}

// TestFFTMostlyPrivateReferences checks the Baylor-Rathi finding the paper
// cites for EPEX FFT: "about 95% of its data references were to private
// memory". In our terms, the T_numa run's references are overwhelmingly
// local (private workspace + replicated shared pages).
func TestFFTMostlyPrivateReferences(t *testing.T) {
	w := workloads.NewFFT(32)
	rt := newRT(4, policy.NewDefault())
	if err := w.Run(rt, 4); err != nil {
		t.Fatal(err)
	}
	refs := rt.Kernel().Machine().TotalRefs()
	if lf := refs.LocalFraction(); lf < 0.9 {
		t.Errorf("FFT local fraction = %.3f, want >= 0.9 (Baylor-Rathi: ~95%% private)", lf)
	}
}

// TestLargerScale runs three applications at sizes closer to the paper's
// (skipped under -short): correctness must hold at scale, not just on the
// tiny test instances.
func TestLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large run")
	}
	for _, w := range []workloads.Workload{
		workloads.NewIMatMult(160),
		workloads.NewFFT(128),
		workloads.NewPrimes3(2000000),
	} {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			rt := newRT(7, policy.NewDefault())
			if err := w.Run(rt, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEveryAppUnderEveryPolicy is the robustness matrix: every application
// must compute correct results under every placement policy, including the
// extensions.
func TestEveryAppUnderEveryPolicy(t *testing.T) {
	pols := []func() numa.Policy{
		func() numa.Policy { return policy.NewPragma(nil) },
		func() numa.Policy { return policy.NewReconsider(2, 4) },
		func() numa.Policy { return policy.NewFreezeDefrost(0, 0) },
	}
	for _, mk := range pols {
		for _, w := range tiny() {
			w, pol := w, mk()
			t.Run(pol.Name()+"/"+w.Name(), func(t *testing.T) {
				rt := newRT(3, pol)
				if err := w.Run(rt, 3); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
