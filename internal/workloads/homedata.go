package workloads

import (
	"fmt"

	"numasim/internal/cthreads"
	"numasim/internal/numa"
	"numasim/internal/vm"
)

// HomeData is the probe workload for the §4.4 remote-reference experiment:
// "data used frequently by one processor and infrequently by others". One
// producer hammers a shared buffer; the other workers sample it rarely.
// Under automatic placement the samplers' reads keep degrading the
// producer's ownership (sync, replicate, re-own) until the pages pin in
// global memory and every producer access pays the global price. With the
// remote pragma the buffer is placed once in the producer's local memory
// and the samplers pay the remote price instead.
type HomeData struct {
	Iters          int // producer update rounds
	ConsumerPeriod int // one consumer sample every this many rounds
	UseRemote      bool

	task *vm.Task
	base uint32
}

// NewHomeData creates the probe; zeros select defaults.
func NewHomeData(iters, period int, useRemote bool) *HomeData {
	if iters <= 0 {
		iters = 1500
	}
	if period <= 0 {
		period = 25
	}
	return &HomeData{Iters: iters, ConsumerPeriod: period, UseRemote: useRemote}
}

// Name implements Workload.
func (w *HomeData) Name() string {
	if w.UseRemote {
		return "HomeData-remote"
	}
	return "HomeData"
}

// FetchHeavy implements Workload.
func (w *HomeData) FetchHeavy() bool { return false }

// Run implements Workload.
func (w *HomeData) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *HomeData) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	w.task = rt.Task()
	const words = 64
	w.base = rt.Alloc("homedata", words*4)
	barrier := cthreads.NewBarrier(nworkers)

	rt.Start(nworkers, func(id int, c *vm.Context) {
		if id == 0 && w.UseRemote {
			// The producer knows this buffer is its own: pragma it remote
			// with its processor as home (§4.4).
			w.task.SetHome(w.base, c.Proc())
		}
		barrier.Wait(c)
		if id == 0 {
			// Producer: frequent read-modify-write rounds.
			for i := 0; i < w.Iters; i++ {
				for wd := uint32(0); wd < words; wd += 4 {
					v := c.Load32(w.base + wd*4)
					c.Store32(w.base+wd*4, v+1)
				}
				c.Compute(20)
			}
		} else {
			// Consumers: occasional samples of a few words.
			samples := w.Iters / w.ConsumerPeriod
			for s := 0; s < samples; s++ {
				c.Compute(20 * w.ConsumerPeriod) // off doing other work
				sum := uint32(0)
				for wd := uint32(0); wd < 4; wd++ {
					sum += c.Load32(w.base + wd*16)
				}
				_ = sum
			}
		}
	})
	return func() error {
		// Every touched word was incremented exactly Iters times.
		for wd := uint32(0); wd < words; wd += 4 {
			if got := readWord(w.task, w.base+wd*4); got != uint32(w.Iters) {
				return fmt.Errorf("%s: word %d = %d, want %d", w.Name(), wd, got, w.Iters)
			}
		}
		// Under the pragma the page must have stayed at its home.
		pg := w.task.EntryAt(w.base).Object().Page(0)
		if w.UseRemote && pg.State() != numa.Remote {
			return fmt.Errorf("%s: page state %v, want remote", w.Name(), pg.State())
		}
		return nil
	}
}
