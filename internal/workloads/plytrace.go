package workloads

import (
	"fmt"

	"numasim/internal/cthreads"
	"numasim/internal/vm"
)

// PlyTrace is modelled on Garcia's polygon renderer: "a floating-point
// intensive C-threads program for rendering artificial images in which
// surfaces are approximated by polygons. One of its phases is parallelized
// by using as a work pile its queue of lists of polygons to be rendered"
// (§3.2).
//
// The scene's triangles are grouped into per-band lists (the "lists of
// polygons"); the work pile hands out lists. Each worker transforms its
// polygons — floating-point matrix work against the shared, replicated
// scene description — and rasterizes them, clipped to the band, into the
// shared z-buffer and image. A band's rows are written only by the worker
// that drew its list, so most z-buffer pages stay local; pages straddling
// a band boundary are written by two workers and exhibit exactly the
// false sharing of §4.2.
type PlyTrace struct {
	NPoly int
	W, H  int
	Bands int // horizontal bands (= polygon lists)

	task  *vm.Task
	zbuf  uint32
	image uint32
	verts uint32
}

// NewPlyTrace creates a PlyTrace instance; zeros select defaults.
func NewPlyTrace(npoly, w, h int) *PlyTrace {
	if npoly <= 0 {
		npoly = 1600
	}
	if w <= 0 {
		w = 128
	}
	if h <= 0 {
		h = 128
	}
	return &PlyTrace{NPoly: npoly, W: w, H: h, Bands: 16}
}

// Name implements Workload.
func (w *PlyTrace) Name() string { return "PlyTrace" }

// FetchHeavy implements Workload.
func (w *PlyTrace) FetchHeavy() bool { return false }

// tri is one model triangle before transformation.
type tri struct {
	x, y, z [3]float64 // model-space vertices
	color   uint32
}

// scene generates the deterministic model: NPoly triangles jittered around
// band centres, with strictly distinct depths so the z-buffer winner per
// pixel is order independent.
func (w *PlyTrace) scene() []tri {
	out := make([]tri, w.NPoly)
	bh := float64(w.H) / float64(w.Bands)
	rng := uint32(12345)
	next := func() float64 {
		rng = rng*1664525 + 1013904223
		return float64(rng>>8) / float64(1<<24) // [0,1)
	}
	for i := range out {
		band := i % w.Bands
		cy := (float64(band) + 0.5) * bh
		cx := next() * float64(w.W)
		var t tri
		for v := 0; v < 3; v++ {
			t.x[v] = cx + (next()-0.5)*float64(w.W)*0.25
			t.y[v] = cy + (next()-0.5)*bh*1.6
		}
		depth := 10 + float64(i)*0.5 // distinct per triangle
		t.z[0], t.z[1], t.z[2] = depth, depth, depth
		t.color = uint32(i)*2654435761 | 1
		out[i] = t
	}
	return out
}

// pixel is one covered pixel with its integer depth key.
type pixel struct {
	x, y  int
	depth uint32
}

// rasterize computes the pixels covered by a screen-space triangle within
// the clip rows [clipY0, clipY1), using exact integer edge functions (28.4
// fixed point), so the simulated renderer and the host-side verifier cover
// identical pixels.
func rasterize(t tri, width int, clipY0, clipY1 int) []pixel {
	const sub = 16 // 28.4 fixed point
	xi := [3]int64{int64(t.x[0] * sub), int64(t.x[1] * sub), int64(t.x[2] * sub)}
	yi := [3]int64{int64(t.y[0] * sub), int64(t.y[1] * sub), int64(t.y[2] * sub)}
	minX := int(min3(xi[0], xi[1], xi[2]) / sub)
	maxX := int(max3(xi[0], xi[1], xi[2])/sub) + 1
	minY := int(min3(yi[0], yi[1], yi[2]) / sub)
	maxY := int(max3(yi[0], yi[1], yi[2])/sub) + 1
	minX, minY = maxInt(minX, 0), maxInt(minY, clipY0)
	maxX, maxY = minInt(maxX, width-1), minInt(maxY, clipY1-1)

	orient := func(ax, ay, bx, by, px, py int64) int64 {
		return (bx-ax)*(py-ay) - (by-ay)*(px-ax)
	}
	area := orient(xi[0], yi[0], xi[1], yi[1], xi[2], yi[2])
	if area == 0 {
		return nil
	}
	flip := int64(1)
	if area < 0 {
		flip = -1
	}
	depth := uint32(t.z[0]*64) + 1 // >= 1; 0 means "empty"
	var out []pixel
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px := int64(x)*sub + sub/2
			py := int64(y)*sub + sub/2
			w0 := orient(xi[1], yi[1], xi[2], yi[2], px, py) * flip
			w1 := orient(xi[2], yi[2], xi[0], yi[0], px, py) * flip
			w2 := orient(xi[0], yi[0], xi[1], yi[1], px, py) * flip
			if w0 >= 0 && w1 >= 0 && w2 >= 0 {
				out = append(out, pixel{x: x, y: y, depth: depth})
			}
		}
	}
	return out
}

func min3(a, b, c int64) int64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max3(a, b, c int64) int64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bandRows returns the clip rows of band b.
func (w *PlyTrace) bandRows(b int) (y0, y1 int) {
	y0 = b * w.H / w.Bands
	y1 = (b + 1) * w.H / w.Bands
	if b == w.Bands-1 {
		y1 = w.H
	}
	return y0, y1
}

// Run implements Workload.
func (w *PlyTrace) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *PlyTrace) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	w.task = rt.Task()
	scene := w.scene()

	// Shared regions: scene vertices (read-only after init, replicated),
	// z-buffer and image (written by band owners); per-worker stack pages
	// for the rasterizer's interpolation temporaries.
	w.verts = rt.Alloc("scene", uint32(len(scene)*10*8))
	w.zbuf = rt.Alloc("zbuf", uint32(w.W*w.H*4))
	w.image = rt.Alloc("image", uint32(w.W*w.H*4))
	stacks := make([]uint32, nworkers)
	for i := range stacks {
		stacks[i] = rt.Alloc(fmt.Sprintf("stack%d", i), 4096)
	}

	// The queue of lists of polygons: one list per band.
	lists := make([][]int, w.Bands)
	for i := range scene {
		lists[i%w.Bands] = append(lists[i%w.Bands], i)
	}
	pile := rt.NewWorkPile(uint32(w.Bands))

	rt.StartMain(func(mc *vm.Context) {
		// Main stores the scene description into shared memory.
		for i, t := range scene {
			base := w.verts + uint32(i*10*8)
			for v := 0; v < 3; v++ {
				mc.StoreF64(base+uint32(v*24), t.x[v])
				mc.StoreF64(base+uint32(v*24+8), t.y[v])
				mc.StoreF64(base+uint32(v*24+16), t.z[v])
			}
			mc.Store32(base+9*8, t.color)
		}
		workers := rt.ForkWorkers(mc, nworkers, func(id int, c *vm.Context) {
			stack := stacks[id]
			for {
				li, ok := pile.Next(c)
				if !ok {
					return
				}
				y0, y1 := w.bandRows(int(li))
				for _, pi := range lists[li] {
					base := w.verts + uint32(pi*10*8)
					var t tri
					for v := 0; v < 3; v++ {
						t.x[v] = c.LoadF64(base + uint32(v*24))
						t.y[v] = c.LoadF64(base + uint32(v*24+8))
						t.z[v] = c.LoadF64(base + uint32(v*24+16))
						// Viewing transform: 3x3 matrix + perspective.
						c.FMul(9)
						c.FAdd(6)
						c.FDiv(1)
					}
					t.color = c.Load32(base + 9*8)
					for _, px := range rasterize(t, w.W, y0, y1) {
						off := uint32((px.y*w.W + px.x) * 4)
						c.FAdd(2) // z interpolation
						// The interpolated depth and the shade live in the
						// stack frame; the colour table entry is in the
						// replicated scene page.
						c.Store32(stack, px.depth)
						c.Load32(stack)
						c.Load32(base + 9*8)
						c.Compute(2)
						old := c.Load32(w.zbuf + off)
						if old == 0 || px.depth < old {
							c.Store32(w.zbuf+off, px.depth)
							c.Store32(w.image+off, t.color)
						}
					}
				}
			}
		})
		for _, wk := range workers {
			wk.Join(mc)
		}
	})
	return func() error { return w.verify(scene) }
}

func (w *PlyTrace) verify(scene []tri) error {
	zref := make([]uint32, w.W*w.H)
	cref := make([]uint32, w.W*w.H)
	for i, t := range scene {
		y0, y1 := w.bandRows(i % w.Bands)
		for _, px := range rasterize(t, w.W, y0, y1) {
			k := px.y*w.W + px.x
			if zref[k] == 0 || px.depth < zref[k] {
				zref[k] = px.depth
				cref[k] = t.color
			}
		}
	}
	covered := 0
	for k := 0; k < w.W*w.H; k++ {
		off := uint32(k * 4)
		gz := readWord(w.task, w.zbuf+off)
		if gz != zref[k] {
			return fmt.Errorf("PlyTrace: zbuf[%d] = %d, want %d", k, gz, zref[k])
		}
		if zref[k] != 0 {
			covered++
			if gc := readWord(w.task, w.image+off); gc != cref[k] {
				return fmt.Errorf("PlyTrace: image[%d] = %#x, want %#x", k, gc, cref[k])
			}
		}
	}
	if covered == 0 {
		return fmt.Errorf("PlyTrace: rendered nothing")
	}
	return nil
}
