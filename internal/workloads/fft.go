package workloads

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"numasim/internal/cthreads"
	"numasim/internal/vm"
)

// FFT performs a two-dimensional fast Fourier transform of an S×S array of
// complex floating-point numbers (the paper used 256×256, parallelized
// with the EPEX FORTRAN preprocessor). In the EPEX model shared and
// private data are segregated: the matrix and twiddle table are shared,
// each worker's row/column workspace is private. Baylor and Rathi found
// about 95% of such a program's data references are private (§3.2), which
// is the behaviour the workspace structure reproduces.
type FFT struct {
	S int // side; power of two

	task   *vm.Task
	matrix uint32 // S*S complex128, row major
	twid   uint32 // S/2 complex128 twiddle factors
}

// NewFFT creates an FFT instance; zero selects the paper's size (256×256).
func NewFFT(s int) *FFT {
	if s <= 0 {
		s = 256
	}
	if s&(s-1) != 0 {
		panic(fmt.Sprintf("workloads: FFT size %d not a power of two", s))
	}
	return &FFT{S: s}
}

// Name implements Workload.
func (w *FFT) Name() string { return "FFT" }

// FetchHeavy implements Workload.
func (w *FFT) FetchHeavy() bool { return false }

// initValue is the deterministic input matrix.
func fftInit(i, j int) complex128 {
	re := math.Sin(float64(1+i*3+j)) * 0.5
	im := math.Cos(float64(2+i+j*5)) * 0.25
	return complex(re, im)
}

// fft1d is the pure radix-2 DIT transform used both by the simulated
// workers (with charging around it) and by the host-side verification.
// buf length must be a power of two; tw holds e^{-2πi k/len(buf)} for
// k < len(buf)/2.
func fft1d(buf []complex128, tw []complex128) {
	n := len(buf)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				wv := tw[k*step]
				b := buf[start+half+k] * wv
				a := buf[start+k]
				buf[start+k] = a + b
				buf[start+half+k] = a - b
			}
		}
	}
}

// cAddr returns the VA of complex element k in a region of complex128s.
func cAddr(base uint32, k int) uint32 { return base + uint32(k*16) }

// loadC / storeC move one complex number between simulated memory and the
// host value, charging four 32-bit references each way.
func loadC(c *vm.Context, va uint32) complex128 {
	return complex(c.LoadF64(va), c.LoadF64(va+8))
}

func storeC(c *vm.Context, va uint32, v complex128) {
	c.StoreF64(va, real(v))
	c.StoreF64(va+8, imag(v))
}

// fft1dSim runs the same transform as fft1d against a private workspace in
// simulated memory, charging the butterfly arithmetic and the workspace
// and twiddle references the FORTRAN code generator would emit
// (memory-resident operands and temporaries).
func (w *FFT) fft1dSim(c *vm.Context, buf uint32) {
	n := w.S
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			vi := loadC(c, cAddr(buf, i))
			vj := loadC(c, cAddr(buf, j))
			storeC(c, cAddr(buf, i), vj)
			storeC(c, cAddr(buf, j), vi)
		}
		c.Compute(2)
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				wv := loadC(c, cAddr(w.twid, k*step)) // shared, replicated
				b := loadC(c, cAddr(buf, start+half+k))
				a := loadC(c, cAddr(buf, start+k))
				t := b * wv
				c.FMul(4)
				c.FAdd(2)
				// The temporary t lives in the stack frame.
				storeC(c, cAddr(buf, start+half+k), t) // reuse slot as temp
				c.FAdd(4)
				storeC(c, cAddr(buf, start+k), a+t)
				storeC(c, cAddr(buf, start+half+k), a-t)
				c.Compute(9) // EPEX subscript arithmetic and loop control
			}
		}
	}
}

// Run implements Workload.
func (w *FFT) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *FFT) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	s := w.S
	w.task = rt.Task()
	w.matrix = rt.Alloc("matrix", uint32(s*s*16))
	w.twid = rt.Alloc("twiddles", uint32(s/2*16))
	bufs := make([]uint32, nworkers)
	// Per-worker private column blocks for the second pass: EPEX FORTRAN
	// partitions the DO loop statically, so each worker copies its block
	// of columns in once, transforms them privately, and writes them back
	// once.
	colsPer := (s + nworkers - 1) / nworkers
	blocks := make([]uint32, nworkers)
	for i := range bufs {
		bufs[i] = rt.Alloc(fmt.Sprintf("workspace%d", i), uint32(s*16))
		blocks[i] = rt.Alloc(fmt.Sprintf("colblock%d", i), uint32(colsPer*s*16))
	}
	barrier := cthreads.NewBarrier(nworkers)

	rt.StartMain(func(mc *vm.Context) {
		// Initialization on the main processor.
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				storeC(mc, cAddr(w.matrix, i*s+j), fftInit(i, j))
			}
		}
		for k := 0; k < s/2; k++ {
			storeC(mc, cAddr(w.twid, k), cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(s))))
			mc.FMul(2)
			mc.FAdd(2)
		}
		workers := rt.ForkWorkers(mc, nworkers, func(id int, c *vm.Context) {
			buf := bufs[id]
			// Row pass over a statically assigned block of contiguous
			// rows (EPEX partitions the DO loop statically): each worker's
			// matrix pages are touched almost exclusively by that worker.
			rowsPer := (s + nworkers - 1) / nworkers
			r0 := id * rowsPer
			r1 := r0 + rowsPer
			if r1 > s {
				r1 = s
			}
			for row := r0; row < r1; row++ {
				for j := 0; j < s; j++ {
					storeC(c, cAddr(buf, j), loadC(c, cAddr(w.matrix, row*s+j)))
				}
				w.fft1dSim(c, buf)
				for j := 0; j < s; j++ {
					storeC(c, cAddr(w.matrix, row*s+j), loadC(c, cAddr(buf, j)))
				}
			}
			barrier.Wait(c)
			// Column pass over a statically assigned block of columns:
			// copy the block into private memory (one replication of each
			// matrix page per worker), transform every column in place,
			// write the block back (one ownership transfer per page per
			// worker).
			block := blocks[id]
			c0 := id * colsPer
			c1 := c0 + colsPer
			if c1 > s {
				c1 = s
			}
			for col := c0; col < c1; col++ {
				for i := 0; i < s; i++ {
					storeC(c, cAddr(block, (col-c0)*s+i), loadC(c, cAddr(w.matrix, i*s+col)))
				}
			}
			for col := c0; col < c1; col++ {
				w.fft1dSim(c, block+uint32((col-c0)*s*16))
			}
			for col := c0; col < c1; col++ {
				for i := 0; i < s; i++ {
					storeC(c, cAddr(w.matrix, i*s+col), loadC(c, cAddr(block, (col-c0)*s+i)))
				}
			}
		})
		for _, wk := range workers {
			wk.Join(mc)
		}
	})
	return w.verify
}

func (w *FFT) verify() error {
	s := w.S
	// Host-side reference: same algorithm, same operation order.
	tw := make([]complex128, s/2)
	for k := range tw {
		tw[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(s)))
	}
	ref := make([]complex128, s*s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			ref[i*s+j] = fftInit(i, j)
		}
	}
	row := make([]complex128, s)
	for i := 0; i < s; i++ {
		copy(row, ref[i*s:(i+1)*s])
		fft1d(row, tw)
		copy(ref[i*s:(i+1)*s], row)
	}
	col := make([]complex128, s)
	for j := 0; j < s; j++ {
		for i := 0; i < s; i++ {
			col[i] = ref[i*s+j]
		}
		fft1d(col, tw)
		for i := 0; i < s; i++ {
			ref[i*s+j] = col[i]
		}
	}
	for k := 0; k < s*s; k++ {
		va := cAddr(w.matrix, k)
		got := complex(math.Float64frombits(readWord64(w.task, va)),
			math.Float64frombits(readWord64(w.task, va+8)))
		if d := cmplx.Abs(got - ref[k]); d > 1e-9*(1+cmplx.Abs(ref[k])) {
			return fmt.Errorf("FFT: element %d = %v, want %v (|Δ|=%g)", k, got, ref[k], d)
		}
	}
	return nil
}
