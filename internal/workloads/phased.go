package workloads

import (
	"fmt"

	"numasim/internal/cthreads"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

// Phased is the probe workload for comparing placement policies that can
// and cannot reconsider their decisions (§4.3: "It may in some
// applications be worthwhile periodically to reconsider the decision to
// pin a page in global memory"). Phase one writes every page from every
// worker, which drives a threshold policy to pin everything; after a long
// quiet gap, phase two partitions the pages so each is used by a single
// worker. A policy that can unpin (Reconsider, FreezeDefrost) brings the
// pages home for phase two; the paper's policy leaves them in global
// memory forever.
type Phased struct {
	Pages         int
	SharedRounds  int
	PrivateRounds int

	task *vm.Task
	base uint32
}

// NewPhased creates a Phased probe; zeros select defaults.
func NewPhased(pages, sharedRounds, privateRounds int) *Phased {
	if pages <= 0 {
		pages = 8
	}
	if sharedRounds <= 0 {
		sharedRounds = 6
	}
	if privateRounds <= 0 {
		privateRounds = 400
	}
	return &Phased{Pages: pages, SharedRounds: sharedRounds, PrivateRounds: privateRounds}
}

// Name implements Workload.
func (w *Phased) Name() string { return "Phased" }

// FetchHeavy implements Workload.
func (w *Phased) FetchHeavy() bool { return false }

// Run implements Workload.
func (w *Phased) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *Phased) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	ps := rt.Kernel().Machine().PageSize()
	w.task = rt.Task()
	w.base = rt.Alloc("phased", uint32(w.Pages*ps))
	barrier := cthreads.NewBarrier(nworkers)

	rt.Start(nworkers, func(id int, c *vm.Context) {
		// Phase 1: every worker writes every page in turn.
		for r := 0; r < w.SharedRounds; r++ {
			for p := 0; p < w.Pages; p++ {
				if (p+r)%nworkers == id {
					c.Store32(w.base+uint32(p*ps), uint32(r))
				}
			}
			barrier.Wait(c)
		}
		// Long quiet gap between program phases.
		c.Compute(2000) // 1 ms of unrelated work
		c.Thread().Idle(300 * sim.Millisecond)
		barrier.Wait(c)
		// Phase 2: strictly partitioned single-writer use.
		for r := 0; r < w.PrivateRounds; r++ {
			for p := id; p < w.Pages; p += nworkers {
				va := w.base + uint32(p*ps)
				v := c.Load32(va)
				c.Store32(va, v+1)
			}
		}
	})
	return func() error {
		for p := 0; p < w.Pages; p++ {
			got := readWord(w.task, w.base+uint32(p*ps))
			// Phase 1 leaves the last round index; phase 2 adds
			// PrivateRounds increments.
			want := uint32(w.SharedRounds-1) + uint32(w.PrivateRounds)
			if got != want {
				return fmt.Errorf("Phased: page %d = %d, want %d", p, got, want)
			}
		}
		return nil
	}
}
