package workloads

import (
	"fmt"

	"numasim/internal/cthreads"
	"numasim/internal/vm"
)

// Gfetch is the paper's all-shared-memory extreme: it "does nothing but
// fetch from shared virtual memory. Loop control and workload allocation
// costs are too small to be seen. Its β is thus 1 and its α 0" (§3.2).
//
// A setup phase writes every page from several different processors in
// turn, so that under the paper's policy the pages use up their move
// budget and are pinned in global memory; the long fetch phase then runs
// entirely against global memory, which is exactly the α=0, γ≈G/L
// behaviour Table 3 reports.
type Gfetch struct {
	Pages       int // shared array size in pages
	Sweeps      int // full fetch passes over the array
	WriteRounds int // ownership-rotation rounds in the setup phase

	sums []uint64
	base uint32
}

// NewGfetch creates a Gfetch instance; zero parameters select defaults.
func NewGfetch(pages, sweeps int) *Gfetch {
	if pages <= 0 {
		pages = 48
	}
	if sweeps <= 0 {
		sweeps = 24
	}
	return &Gfetch{Pages: pages, Sweeps: sweeps, WriteRounds: 6}
}

// Name implements Workload.
func (w *Gfetch) Name() string { return "Gfetch" }

// FetchHeavy implements Workload.
func (w *Gfetch) FetchHeavy() bool { return true }

// pageValue is the deterministic content the setup phase leaves in word wd
// of page p.
func pageValue(p, wd, lastRound int) uint32 {
	return uint32(p)*31 + uint32(wd)*7 + uint32(lastRound)
}

// Run implements Workload.
func (w *Gfetch) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *Gfetch) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	ps := rt.Kernel().Machine().PageSize()
	wordsPerPage := ps / 4
	w.base = rt.Alloc("gfetch", uint32(w.Pages*ps))
	w.sums = make([]uint64, nworkers)
	barrier := cthreads.NewBarrier(nworkers)

	// Each round writes a few words of every page, rotating the writing
	// processor, so every page transfers ownership once per round. Only a
	// subset of words is written so the setup phase stays small next to
	// the fetch phase.
	const wordsWrittenPerRound = 8

	rt.Start(nworkers, func(id int, c *vm.Context) {
		for r := 0; r < w.WriteRounds; r++ {
			for p := 0; p < w.Pages; p++ {
				if (p+r)%nworkers != id {
					continue
				}
				for k := 0; k < wordsWrittenPerRound; k++ {
					wd := k * (wordsPerPage / wordsWrittenPerRound)
					c.Store32(w.base+uint32(p*ps+wd*4), pageValue(p, wd, r))
				}
			}
			barrier.Wait(c)
		}
		// Fetch phase: sweep this worker's partition of the array, reading
		// every word, many times. Pure fetches: β = 1.
		var sum uint64
		for s := 0; s < w.Sweeps; s++ {
			for p := id; p < w.Pages; p += nworkers {
				pb := w.base + uint32(p*ps)
				for wd := 0; wd < wordsPerPage; wd++ {
					sum += uint64(c.Load32(pb + uint32(wd*4)))
				}
			}
		}
		w.sums[id] = sum
	})
	return func() error { return w.verify(rt, nworkers) }
}

func (w *Gfetch) verify(rt *cthreads.Runtime, nworkers int) error {
	ps := rt.Kernel().Machine().PageSize()
	wordsPerPage := ps / 4
	const wordsWrittenPerRound = 8
	var want uint64
	for p := 0; p < w.Pages; p++ {
		var page uint64
		for k := 0; k < wordsWrittenPerRound; k++ {
			wd := k * (wordsPerPage / wordsWrittenPerRound)
			page += uint64(pageValue(p, wd, w.WriteRounds-1))
		}
		want += page
	}
	want *= uint64(w.Sweeps)
	var got uint64
	for _, s := range w.sums {
		got += s
	}
	if got != want {
		return fmt.Errorf("Gfetch: checksum %d, want %d", got, want)
	}
	return nil
}
