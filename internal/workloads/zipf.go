package workloads

import (
	"fmt"

	"numasim/internal/cthreads"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

// Zipf is the skewed probe workload for the adaptive policy zoo. Phase one
// has every worker storing to pages drawn from a zipf-like distribution
// over the whole range, so a handful of hot pages ping-pong hard enough to
// use up any fixed move threshold and get pinned in global memory. After a
// quiet gap the program partitions the pages and each worker increments
// only its own — still with skewed popularity, so the formerly-hot pages
// stay the most referenced but are now single-writer. A decaying policy
// forgets the phase-one ping-pong and brings them home; the paper's
// Threshold leaves them pinned forever and pays a global reference for
// every phase-two access.
//
// All randomness comes from a private splitmix64 stream seeded per worker,
// so the draw sequences — and therefore the verified final counts — are
// byte-identical across runs and host parallelism.
type Zipf struct {
	Pages        int
	SharedRounds int
	OwnDraws     int
	Seed         uint64

	task   *vm.Task
	base   uint32
	counts []uint32
}

// NewZipf creates a Zipf probe; zeros select defaults.
func NewZipf(pages, sharedRounds, ownDraws int) *Zipf {
	if pages <= 0 {
		pages = 12
	}
	if sharedRounds <= 0 {
		sharedRounds = 4
	}
	if ownDraws <= 0 {
		ownDraws = 4000
	}
	return &Zipf{Pages: pages, SharedRounds: sharedRounds, OwnDraws: ownDraws, Seed: 0x5eed}
}

// Name implements Workload.
func (w *Zipf) Name() string { return "Zipf" }

// FetchHeavy implements Workload.
func (w *Zipf) FetchHeavy() bool { return false }

// Run implements Workload.
func (w *Zipf) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// splitmix64 advances state and returns the next value of the stream
// (Steele et al.'s SplitMix64 finalizer — deterministic, no math/rand).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b893
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// zipfIdx maps a random draw onto [0, n) with a cubic skew: index k is
// drawn with probability density falling off like a zipf tail, so index 0
// is by far the most popular.
func zipfIdx(r uint64, n int) int {
	u := r & 0xFFFF
	return int(u * u * u * uint64(n) >> 48)
}

// sharedState seeds worker id's phase-one draw stream.
func (w *Zipf) sharedState(id int) uint64 {
	return w.Seed ^ uint64(id+1)*0x9e3779b97f4a7c15
}

// ownState seeds worker id's phase-two draw stream.
func (w *Zipf) ownState(id int) uint64 {
	return w.Seed ^ 0xa5a5a5a5a5a5a5a5 ^ uint64(id+1)*0xff51afd7ed558ccd
}

// partition lists the pages owned by worker id in phase two.
func (w *Zipf) partition(id, nworkers int) []int {
	var own []int
	for p := id; p < w.Pages; p += nworkers {
		own = append(own, p)
	}
	return own
}

// Start implements Starter.
func (w *Zipf) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	ps := rt.Kernel().Machine().PageSize()
	w.task = rt.Task()
	w.base = rt.Alloc("zipf", uint32(w.Pages*ps))
	barrier := cthreads.NewBarrier(nworkers)

	// Replay every worker's phase-two draw stream up front to know the
	// exact increment count each page must end with.
	w.counts = make([]uint32, w.Pages)
	for id := 0; id < nworkers; id++ {
		own := w.partition(id, nworkers)
		if len(own) == 0 {
			continue
		}
		st := w.ownState(id)
		for i := 0; i < w.OwnDraws; i++ {
			w.counts[own[zipfIdx(splitmix64(&st), len(own))]]++
		}
	}

	rt.Start(nworkers, func(id int, c *vm.Context) {
		// Phase 1: skewed contended stores over the whole range. The hot
		// low-numbered pages ping-pong between writers.
		st := w.sharedState(id)
		for r := 0; r < w.SharedRounds; r++ {
			for i := 0; i < w.Pages; i++ {
				p := zipfIdx(splitmix64(&st), w.Pages)
				c.Store32(w.base+uint32(p*ps), uint32(r+1))
			}
			barrier.Wait(c)
		}
		// Quiet gap between program phases: long enough for a decaying
		// policy's histograms to forget the phase-one ping-pong.
		c.Compute(2000)
		c.Thread().Idle(400 * sim.Millisecond)
		barrier.Wait(c)
		// Phase 2: strictly partitioned single-writer increments, still
		// zipf-skewed within each worker's own pages.
		own := w.partition(id, nworkers)
		if len(own) == 0 {
			return
		}
		for _, p := range own {
			c.Store32(w.base+uint32(p*ps), 0)
		}
		st = w.ownState(id)
		for i := 0; i < w.OwnDraws; i++ {
			va := w.base + uint32(own[zipfIdx(splitmix64(&st), len(own))]*ps)
			c.Store32(va, c.Load32(va)+1)
		}
	})
	return func() error {
		for p := 0; p < w.Pages; p++ {
			got := readWord(w.task, w.base+uint32(p*ps))
			if got != w.counts[p] {
				return fmt.Errorf("Zipf: page %d = %d, want %d", p, got, w.counts[p])
			}
		}
		return nil
	}
}
