package workloads

import (
	"fmt"

	"numasim/internal/cthreads"
	"numasim/internal/vm"
)

// hostSieve computes the primes up to limit on the host, for verification.
// Arithmetic is done in uint64 so n*n cannot wrap for large limits.
func hostSieve(limit uint32) []uint32 {
	if limit < 2 {
		return nil
	}
	lim := uint64(limit)
	composite := make([]bool, lim+1)
	var primes []uint32
	for n := uint64(2); n <= lim; n++ {
		if composite[n] {
			continue
		}
		primes = append(primes, uint32(n))
		for m := n * n; m <= lim; m += n {
			composite[m] = true
		}
	}
	return primes
}

func countPrimes(limit uint32) int { return len(hostSieve(limit)) }

// Primes1 "determines if an odd number is prime by dividing it by all odd
// numbers less than its square root and checking for remainders. It
// computes heavily (division is expensive on the ACE) and most of its
// memory references are to the stack during subroutine linkage" (§3.2).
type Primes1 struct {
	Limit uint32

	counts []uint32
}

// NewPrimes1 creates a Primes1 instance; zero selects the default limit
// (the paper searched to 10,000,000 — hours of 1989 CPU time).
func NewPrimes1(limit uint32) *Primes1 {
	if limit == 0 {
		limit = 50000
	}
	return &Primes1{Limit: limit}
}

// Name implements Workload.
func (w *Primes1) Name() string { return "Primes1" }

// FetchHeavy implements Workload.
func (w *Primes1) FetchHeavy() bool { return false }

// Run implements Workload.
func (w *Primes1) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *Primes1) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	// Candidates are the odd numbers 3,5,... <= Limit; unit i is 3+2i.
	nCand := (w.Limit - 1) / 2
	pile := rt.NewWorkPile(nCand)
	w.counts = make([]uint32, nworkers)
	stacks := make([]uint32, nworkers)
	for i := range stacks {
		stacks[i] = rt.Alloc(fmt.Sprintf("stack%d", i), 4096)
	}
	const batch = 32
	rt.Start(nworkers, func(id int, c *vm.Context) {
		stack := stacks[id]
		var count uint32
		for {
			lo, hi, ok := pile.NextBatch(c, batch)
			if !ok {
				break
			}
			for u := lo; u < hi; u++ {
				n := 3 + 2*u
				prime := true
				for d := uint32(3); d*d <= n; d += 2 {
					// The divide is a subroutine: linkage stores the
					// argument into and reloads the result from the stack
					// frame around the expensive software divide.
					c.Store32(stack+4, d)
					c.Div(1)
					c.Load32(stack + 8)
					c.Compute(3) // d*d bound check and loop control
					if n%d == 0 {
						prime = false
						break
					}
				}
				if prime {
					count++
				}
			}
		}
		w.counts[id] = count
	})
	return func() error {
		var got int
		for _, n := range w.counts {
			got += int(n)
		}
		want := countPrimes(w.Limit) - 1 // candidates exclude 2
		if got != want {
			return fmt.Errorf("Primes1: found %d odd primes <= %d, want %d", got, w.Limit, want)
		}
		return nil
	}
}

// Primes2 "divides each prime candidate by all previously found primes
// less than its square root. Each thread keeps a private list of primes to
// be used as divisors, so virtually all data references are local" (§3.2).
//
// Tuned=false reproduces the initial version of §4.2, in which threads
// fetched divisors directly from the writably-shared output vector of
// found primes, holding α to about 0.66; the tuned version copies the
// divisors into a private vector first, raising α to about 1.0.
type Primes2 struct {
	Limit uint32
	Tuned bool

	task    *vm.Task
	outVec  uint32
	outCnt  uint32
	outLock *cthreads.SpinLock
}

// NewPrimes2 creates a Primes2 instance; zero selects the default limit.
func NewPrimes2(limit uint32, tuned bool) *Primes2 {
	if limit == 0 {
		limit = 100000
	}
	return &Primes2{Limit: limit, Tuned: tuned}
}

// Name implements Workload.
func (w *Primes2) Name() string {
	if w.Tuned {
		return "Primes2"
	}
	return "Primes2-untuned"
}

// FetchHeavy implements Workload.
func (w *Primes2) FetchHeavy() bool { return false }

// isqrt returns the integer square root.
func isqrt(n uint32) uint32 {
	r := uint32(0)
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// Run implements Workload.
func (w *Primes2) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *Primes2) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	w.task = rt.Task()
	capacity := uint32(countPrimes(w.Limit) + 8)
	w.outVec = rt.Alloc("found-primes", capacity*4)
	cntBase := rt.Alloc("found-count", 8)
	w.outCnt = cntBase
	w.outLock = cthreads.NewSpinLockAt(cntBase + 4)

	root := isqrt(w.Limit)
	privVecs := make([]uint32, nworkers)
	stacks := make([]uint32, nworkers)
	for i := range privVecs {
		privVecs[i] = rt.Alloc(fmt.Sprintf("divisors%d", i), (uint32(countPrimes(root))+4)*4)
		stacks[i] = rt.Alloc(fmt.Sprintf("stack%d", i), 4096)
	}

	// Candidates above the seed range, odd only.
	firstCand := root + 1 | 1
	nCand := (w.Limit - firstCand) / 2
	pile := rt.NewWorkPile(nCand + 1)

	rt.StartMain(func(mc *vm.Context) {
		// The main thread seeds the shared output vector with the primes
		// up to sqrt(Limit) by trial division.
		var nSeed uint32
		for n := uint32(2); n <= root; n++ {
			prime := true
			for d := uint32(2); d*d <= n; d++ {
				mc.Div(1)
				mc.Compute(2)
				if n%d == 0 {
					prime = false
					break
				}
			}
			if prime {
				mc.Store32(w.outVec+nSeed*4, n)
				nSeed++
			}
		}
		mc.Store32(w.outCnt, nSeed)

		workers := rt.ForkWorkers(mc, nworkers, func(id int, c *vm.Context) {
			stack := stacks[id]
			divBase := w.outVec // untuned: read shared vector directly
			if w.Tuned {
				// Copy the needed divisors into a private vector.
				divBase = privVecs[id]
				for i := uint32(0); i < nSeed; i++ {
					c.Store32(divBase+i*4, c.Load32(w.outVec+i*4))
				}
			}
			const batch = 16
			for {
				lo, hi, ok := pile.NextBatch(c, batch)
				if !ok {
					return
				}
				for u := lo; u < hi; u++ {
					n := firstCand + 2*u
					if n > w.Limit {
						break
					}
					prime := true
					for i := uint32(0); i < nSeed; i++ {
						d := c.Load32(divBase + i*4)
						if d*d > n {
							c.Compute(2)
							break
						}
						// The compiler keeps the candidate and the
						// remainder in the stack frame.
						c.Load32(stack)
						c.Div(1)
						c.Store32(stack+4, n%d)
						c.Compute(3)
						if n%d == 0 {
							prime = false
							break
						}
					}
					if prime {
						// Append to the shared output vector.
						w.outLock.Lock(c)
						idx := c.Load32(w.outCnt)
						c.Store32(w.outVec+idx*4, n)
						c.Store32(w.outCnt, idx+1)
						w.outLock.Unlock(c)
					}
				}
			}
		})
		for _, wk := range workers {
			wk.Join(mc)
		}
	})
	return w.verify
}

func (w *Primes2) verify() error {
	want := hostSieve(w.Limit)
	got := int(readWord(w.task, w.outCnt))
	if got != len(want) {
		return fmt.Errorf("%s: found %d primes, want %d", w.Name(), got, len(want))
	}
	// The vector holds exactly the primes (seeds in order, the rest in
	// completion order): check as a set.
	wantSet := make(map[uint32]bool, len(want))
	for _, p := range want {
		wantSet[p] = true
	}
	for i := 0; i < got; i++ {
		v := readWord(w.task, w.outVec+uint32(i)*4)
		if !wantSet[v] {
			return fmt.Errorf("%s: output[%d] = %d is not prime or duplicated", w.Name(), i, v)
		}
		delete(wantSet, v)
	}
	return nil
}

// Primes3 is "a variant of the Sieve of Eratosthenes, with the sieve
// represented as a bit vector of odd numbers in shared memory. It produces
// an integer vector of results by masking off composites in the bit vector
// and scanning for the remaining primes. It references the shared bit
// vector heavily, fetching and storing as it masks off bits" (§3.2).
type Primes3 struct {
	Limit uint32

	task   *vm.Task
	sieve  uint32
	outVec uint32
	outCnt uint32
}

// NewPrimes3 creates a Primes3 instance; zero selects the paper's limit
// (primes up to 10,000,000).
func NewPrimes3(limit uint32) *Primes3 {
	if limit == 0 {
		limit = 10000000
	}
	return &Primes3{Limit: limit}
}

// Name implements Workload.
func (w *Primes3) Name() string { return "Primes3" }

// FetchHeavy implements Workload.
func (w *Primes3) FetchHeavy() bool { return false }

// Run implements Workload.
func (w *Primes3) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *Primes3) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	w.task = rt.Task()
	// Bit i represents the odd number 3+2i.
	nBits := (w.Limit - 1) / 2
	nWords := (nBits + 31) / 32
	w.sieve = rt.Alloc("sieve", nWords*4)
	capacity := uint32(countPrimes(w.Limit) + 8)
	w.outVec = rt.Alloc("primes", capacity*4)
	cnt := rt.Alloc("count", 8)
	w.outCnt = cnt
	outLock := cthreads.NewSpinLockAt(cnt + 4)

	seeds := hostSieve(isqrt(w.Limit))
	// Drop 2: the sieve holds odd numbers only.
	if len(seeds) > 0 && seeds[0] == 2 {
		seeds = seeds[1:]
	}
	strikePile := rt.NewWorkPile(uint32(len(seeds)))
	scanPile := rt.NewWorkPile(nWords)
	barrier := cthreads.NewBarrier(nworkers)
	// Per-worker private staging for scanned primes, merged into the
	// shared result vector at the end of the scan.
	staging := make([]uint32, nworkers)
	for i := range staging {
		staging[i] = rt.Alloc(fmt.Sprintf("staging%d", i), capacity*4)
	}

	rt.Start(nworkers, func(id int, c *vm.Context) {
		// Strike phase: mask off composites, read-modify-writing the
		// shared bit vector.
		for {
			si, ok := strikePile.Next(c)
			if !ok {
				break
			}
			p := seeds[si]
			c.Mul(1) // p*p
			for m := p * p; m <= w.Limit; m += 2 * p {
				idx := (m - 3) / 2
				va := w.sieve + (idx/32)*4
				bit := uint32(1) << (idx % 32)
				c.Compute(5) // bit-index arithmetic and loop control
				c.FetchOr32(va, bit)
			}
		}
		barrier.Wait(c)
		// Scan phase: collect the remaining primes into a private staging
		// vector ("it also computes heavily while scanning the bit vector
		// for primes"), then merge into the shared result vector.
		const batch = 8
		mine := staging[id]
		var nMine uint32
		for {
			lo, hi, ok := scanPile.NextBatch(c, batch)
			if !ok {
				break
			}
			for wd := lo; wd < hi; wd++ {
				v := c.Load32(w.sieve + wd*4)
				c.Compute(8) // shift-and-test scanning of the word
				if v == 0xffffffff {
					continue
				}
				for b := uint32(0); b < 32; b++ {
					if v&(1<<b) != 0 {
						continue
					}
					idx := wd*32 + b
					if idx >= nBits {
						break
					}
					c.Store32(mine+nMine*4, 3+2*idx)
					nMine++
				}
			}
		}
		if nMine > 0 {
			outLock.Lock(c)
			at := c.Load32(w.outCnt)
			for k := uint32(0); k < nMine; k++ {
				c.Store32(w.outVec+(at+k)*4, c.Load32(mine+k*4))
			}
			c.Store32(w.outCnt, at+nMine)
			outLock.Unlock(c)
		}
	})
	return w.verify
}

func (w *Primes3) verify() error {
	want := hostSieve(w.Limit)
	if len(want) > 0 && want[0] == 2 {
		want = want[1:] // sieve of odds: 2 is implicit
	}
	got := int(readWord(w.task, w.outCnt))
	if got != len(want) {
		return fmt.Errorf("Primes3: found %d odd primes, want %d", got, len(want))
	}
	wantSet := make(map[uint32]bool, len(want))
	for _, p := range want {
		wantSet[p] = true
	}
	for i := 0; i < got; i++ {
		v := readWord(w.task, w.outVec+uint32(i)*4)
		if !wantSet[v] {
			return fmt.Errorf("Primes3: output[%d] = %d is not an odd prime or duplicated", i, v)
		}
		delete(wantSet, v)
	}
	return nil
}
