package workloads

import (
	"fmt"

	"numasim/internal/cthreads"
	"numasim/internal/vm"
)

// Syscaller is a probe workload for the Unix-master experiment (§4.6):
// each worker loops over private data — which automatic placement makes
// local — but periodically performs a system call (sigvec, fstat, ioctl in
// the paper) that reads its stack. When the kernel funnels system calls to
// the master processor, those reads come from processor 0, the private
// pages become writably shared with the master, and they end up in global
// memory.
type Syscaller struct {
	Iters  int // private-work iterations per worker
	Period int // one syscall every Period iterations

	sums []uint64
}

// NewSyscaller creates a Syscaller; zeros select defaults.
func NewSyscaller(iters, period int) *Syscaller {
	if iters <= 0 {
		iters = 3000
	}
	if period <= 0 {
		period = 50
	}
	return &Syscaller{Iters: iters, Period: period}
}

// Name implements Workload.
func (w *Syscaller) Name() string { return "Syscaller" }

// FetchHeavy implements Workload.
func (w *Syscaller) FetchHeavy() bool { return false }

// Run implements Workload.
func (w *Syscaller) Run(rt *cthreads.Runtime, nworkers int) error {
	return runStarter(w, rt, nworkers)
}

// Start implements Starter.
func (w *Syscaller) Start(rt *cthreads.Runtime, nworkers int) func() error {
	if nworkers <= 0 {
		nworkers = rt.Kernel().Machine().NProc()
	}
	w.sums = make([]uint64, nworkers)
	stacks := make([]uint32, nworkers)
	for i := range stacks {
		stacks[i] = rt.Alloc(fmt.Sprintf("stack%d", i), 4096)
	}
	rt.Start(nworkers, func(id int, c *vm.Context) {
		stack := stacks[id]
		var sum uint64
		for i := 0; i < w.Iters; i++ {
			// Private work against the stack page.
			c.Store32(stack, uint32(i))
			sum += uint64(c.Load32(stack))
			c.Compute(4)
			if (i+1)%w.Period == 0 {
				c.Syscall(80, stack) // e.g. sigvec reading the user stack
			}
		}
		w.sums[id] = sum
	})
	return func() error {
		per := uint64(w.Iters) * uint64(w.Iters-1) / 2
		for id, s := range w.sums {
			if s != per {
				return fmt.Errorf("Syscaller: worker %d sum %d, want %d", id, s, per)
			}
		}
		return nil
	}
}
