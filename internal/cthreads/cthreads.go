// Package cthreads provides the parallel programming environment the
// paper's applications use: a Mach C-Threads-like package with "a single,
// uniform memory" in which all data is implicitly shared (§3.2).
//
// Threads fork into one shared task and are bound to processors by the
// affinity scheduler. Spin locks are real words in simulated shared
// memory, acquired with test-and-set, so synchronization traffic itself
// exercises NUMA placement exactly as on the ACE — including the false
// sharing that interspersed private and shared data causes.
package cthreads

import (
	"fmt"

	"numasim/internal/mmu"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

// Runtime is one C-Threads program instance: a shared address space, a
// scheduler, and allocation helpers.
type Runtime struct {
	kernel *vm.Kernel
	task   *vm.Task
	sched  *sched.Scheduler

	// syncVA/syncOff carve spin-lock words out of shared pages, several
	// locks per page, as a real loader would.
	syncVA  uint32
	syncOff uint32

	threads []*Thread
}

// New creates a C-Threads runtime on kernel with the given scheduling
// discipline.
func New(k *vm.Kernel, mode sched.Mode) *Runtime {
	return NewShared(k, sched.New(k, mode), "cthreads")
}

// NewShared creates a C-Threads runtime (its own task/address space) on a
// scheduler that may be shared with other runtimes. Several programs can
// thus run concurrently on one machine — the multiprogrammed "application
// mix" whose locality the paper's system manages as a whole.
func NewShared(k *vm.Kernel, s *sched.Scheduler, name string) *Runtime {
	// Connect the co-placement channel: a ThreadAdvisor-capable policy
	// can now ask the scheduler to migrate threads toward their hot
	// pages. With any other policy the channel carries nothing.
	k.NUMA().SetThreadMover(s)
	return &Runtime{
		kernel: k,
		task:   k.NewTask(name),
		sched:  s,
	}
}

// Kernel returns the runtime's kernel.
func (r *Runtime) Kernel() *vm.Kernel { return r.kernel }

// Task returns the shared address space.
func (r *Runtime) Task() *vm.Task { return r.task }

// Scheduler returns the runtime's scheduler.
func (r *Runtime) Scheduler() *sched.Scheduler { return r.sched }

// Alloc allocates a shared read-write region. Like data placed by the
// C-Threads loader, everything is potentially shared; segregation into
// pages is the only placement control an application has.
func (r *Runtime) Alloc(name string, size uint32) uint32 {
	return r.task.Allocate(name, size, mmu.ProtReadWrite)
}

// Thread is a forked C-thread.
type Thread struct {
	name string
	th   *sim.Thread
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Sim returns the underlying simulated thread.
func (t *Thread) Sim() *sim.Thread { return t.th }

// Fork starts fn on a new thread in the shared task, bound to a processor
// by the affinity rule. start is the new thread's initial virtual time.
func (r *Runtime) Fork(name string, start sim.Time, fn func(*vm.Context)) *Thread {
	t := &Thread{name: name}
	t.th = r.sched.Spawn(name, r.task, start, fn)
	r.threads = append(r.threads, t)
	return t
}

// Join blocks c's thread until t finishes.
func (t *Thread) Join(c *vm.Context) {
	t.th.Join(c.Thread())
}

// JoinAll joins every thread forked so far.
func (r *Runtime) JoinAll(c *vm.Context) {
	for _, t := range r.threads {
		if t.th != c.Thread() {
			t.Join(c)
		}
	}
}

// Start forks one thread per processor without running the engine (so
// several programs can be started before one engine run). fn receives the
// worker index and the worker's context.
func (r *Runtime) Start(nworkers int, fn func(id int, c *vm.Context)) {
	if nworkers <= 0 {
		nworkers = r.kernel.Machine().NProc()
	}
	for i := 0; i < nworkers; i++ {
		i := i
		r.Fork(fmt.Sprintf("worker%d", i), 0, func(c *vm.Context) {
			fn(i, c)
		})
	}
}

// Run forks one thread per processor, waits for all of them, and returns.
// It is the "parallel section" helper every application uses. fn receives
// the worker index and the worker's context.
func (r *Runtime) Run(nworkers int, fn func(id int, c *vm.Context)) error {
	r.Start(nworkers, fn)
	return r.kernel.Machine().Engine().Run()
}

// StartMain forks a coordinating thread (which may itself Fork workers and
// JoinAll them) without running the engine.
func (r *Runtime) StartMain(fn func(c *vm.Context)) {
	r.Fork("main", 0, fn)
}

// Main spawns a coordinating thread and runs the simulation to completion.
func (r *Runtime) Main(fn func(c *vm.Context)) error {
	r.StartMain(fn)
	return r.kernel.Machine().Engine().Run()
}

// ForkWorkers forks n workers from a running coordinator thread, starting
// at its current virtual time, and returns them for joining.
func (r *Runtime) ForkWorkers(c *vm.Context, n int, fn func(id int, c *vm.Context)) []*Thread {
	if n <= 0 {
		n = r.kernel.Machine().NProc()
	}
	out := make([]*Thread, n)
	for i := 0; i < n; i++ {
		i := i
		out[i] = r.Fork(fmt.Sprintf("worker%d", i), c.Thread().Clock(), func(wc *vm.Context) {
			fn(i, wc)
		})
	}
	return out
}

// SpinLock is a test-and-set lock on a word of shared memory. The paper's
// applications "synchronize their threads using non-blocking spin locks"
// (§3.1); the lock word's page is subject to NUMA placement like any
// other.
type SpinLock struct {
	va uint32
}

// NewSpinLock allocates a lock word from the runtime's sync pages (several
// locks share a page, as a loader would lay them out).
func (r *Runtime) NewSpinLock() *SpinLock {
	ps := uint32(r.kernel.Machine().PageSize())
	if r.syncVA == 0 || r.syncOff+4 > ps {
		r.syncVA = r.Alloc("sync", ps)
		r.syncOff = 0
	}
	l := &SpinLock{va: r.syncVA + r.syncOff}
	r.syncOff += 4
	return l
}

// NewSpinLockAt places a lock word at an application-chosen address, the
// manual segregation tool the paper's tuned applications use.
func NewSpinLockAt(va uint32) *SpinLock { return &SpinLock{va: va} }

// VA returns the lock word's address.
func (l *SpinLock) VA() uint32 { return l.va }

// Lock acquires the lock with test-and-set. On contention the C-Threads
// runtime yields the processor between probes (cthread_yield), with
// exponential backoff so that a holder delayed by a multi-millisecond
// page move is not buried under probe traffic; the waiting shows up as
// idle time, not user time, exactly as a yielded processor's would.
func (l *SpinLock) Lock(c *vm.Context) {
	if c.TestAndSet(l.va) == 0 {
		return
	}
	wait := 20 * sim.Microsecond
	for {
		c.Thread().Idle(wait)
		c.Thread().Yield()
		if c.TestAndSet(l.va) == 0 {
			return
		}
		if wait < sim.Millisecond {
			wait *= 2
		}
	}
}

// Unlock releases the lock.
func (l *SpinLock) Unlock(c *vm.Context) {
	c.Store32(l.va, 0)
}

// Mutex is a blocking (descheduling) lock, provided for completeness; the
// paper's applications use spin locks.
type Mutex struct {
	held    bool
	waiters []*sim.Thread
}

// Lock acquires the mutex, descheduling the thread if it is held.
func (m *Mutex) Lock(c *vm.Context) {
	th := c.Thread()
	for m.held {
		m.waiters = append(m.waiters, th)
		th.Block("mutex")
	}
	m.held = true
}

// Unlock releases the mutex and wakes one waiter.
func (m *Mutex) Unlock(c *vm.Context) {
	if !m.held {
		panic("cthreads: Unlock of unheld mutex")
	}
	m.held = false
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		w.Wake(c.Thread().Clock())
	}
}

// Cond is a condition variable used with Mutex.
type Cond struct {
	waiters []*sim.Thread
}

// Wait atomically releases mu and suspends the thread until Signal or
// Broadcast, then reacquires mu.
func (cv *Cond) Wait(c *vm.Context, mu *Mutex) {
	th := c.Thread()
	cv.waiters = append(cv.waiters, th)
	mu.Unlock(c)
	th.Block("cond")
	mu.Lock(c)
}

// Signal wakes one waiter.
func (cv *Cond) Signal(c *vm.Context) {
	if len(cv.waiters) == 0 {
		return
	}
	w := cv.waiters[0]
	cv.waiters = cv.waiters[1:]
	w.Wake(c.Thread().Clock())
}

// Broadcast wakes every waiter.
func (cv *Cond) Broadcast(c *vm.Context) {
	at := c.Thread().Clock()
	for _, w := range cv.waiters {
		w.Wake(at)
	}
	cv.waiters = nil
}

// Barrier makes n threads wait for each other.
type Barrier struct {
	n       int
	arrived int
	gen     int
	waiters []*sim.Thread
}

// NewBarrier creates a barrier for n threads.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("cthreads: barrier size < 1")
	}
	return &Barrier{n: n}
}

// Wait blocks until n threads have arrived.
func (b *Barrier) Wait(c *vm.Context) {
	th := c.Thread()
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		at := th.Clock()
		for _, w := range b.waiters {
			w.Wake(at)
		}
		b.waiters = nil
		return
	}
	b.waiters = append(b.waiters, th)
	gen := b.gen
	for gen == b.gen {
		th.Block("barrier")
	}
}

// WorkPile is the paper's work-allocation structure: a shared counter
// guarded by a spin lock, handing out unit-of-work indices. ("Its only
// data references are for workload allocation", §3.2 on ParMult.)
type WorkPile struct {
	lock  *SpinLock
	ctrVA uint32
	limit uint32
}

// NewWorkPile creates a pile of n work units. The counter and its lock
// live in shared memory and are subject to placement like everything else.
func (r *Runtime) NewWorkPile(n uint32) *WorkPile {
	base := r.Alloc("workpile", 8)
	return &WorkPile{
		lock:  NewSpinLockAt(base),
		ctrVA: base + 4,
		limit: n,
	}
}

// Next hands out the next work index; ok is false when the pile is empty.
func (w *WorkPile) Next(c *vm.Context) (idx uint32, ok bool) {
	w.lock.Lock(c)
	idx = c.Load32(w.ctrVA)
	if idx < w.limit {
		c.Store32(w.ctrVA, idx+1)
		ok = true
	}
	w.lock.Unlock(c)
	return idx, ok
}

// NextBatch hands out up to batch consecutive work indices, reducing lock
// traffic for fine-grained work (used by the sieve).
func (w *WorkPile) NextBatch(c *vm.Context, batch uint32) (lo, hi uint32, ok bool) {
	w.lock.Lock(c)
	lo = c.Load32(w.ctrVA)
	if lo < w.limit {
		hi = lo + batch
		if hi > w.limit {
			hi = w.limit
		}
		c.Store32(w.ctrVA, hi)
		ok = true
	}
	w.lock.Unlock(c)
	return lo, hi, ok
}
