package cthreads_test

import (
	"testing"

	"numasim/internal/cthreads"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

func TestBroadcastWakesAll(t *testing.T) {
	r := newRuntime(3, sched.Affinity)
	var mu cthreads.Mutex
	var cv cthreads.Cond
	ready := false
	woken := 0
	err := r.Run(3, func(id int, c *vm.Context) {
		if id == 0 {
			c.Compute(200)
			mu.Lock(c)
			ready = true
			cv.Broadcast(c)
			mu.Unlock(c)
			return
		}
		mu.Lock(c)
		for !ready {
			cv.Wait(c, &mu)
		}
		woken++
		mu.Unlock(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if woken != 2 {
		t.Errorf("woken = %d, want 2", woken)
	}
}

func TestJoinAllAndAccessors(t *testing.T) {
	r := newRuntime(2, sched.Affinity)
	if r.Kernel() == nil {
		t.Fatal("nil kernel")
	}
	data := r.Alloc("d", 8)
	err := r.Main(func(c *vm.Context) {
		th := r.Fork("child", c.Thread().Clock(), func(wc *vm.Context) {
			wc.Store32(data, 9)
		})
		if th.Name() != "child" || th.Sim() == nil {
			t.Error("thread accessors wrong")
		}
		r.JoinAll(c)
		if c.Load32(data) != 9 {
			t.Error("JoinAll returned before child finished")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewSharedRuntimesShareMachine(t *testing.T) {
	r1 := newRuntime(2, sched.Affinity)
	k := r1.Kernel()
	s := r1.Scheduler()
	r2 := cthreads.NewShared(k, s, "second")
	if r2.Task() == r1.Task() {
		t.Fatal("shared runtimes must have distinct address spaces")
	}
	a := r1.Alloc("a", 8)
	b := r2.Alloc("b", 8)
	done := 0
	r1.Start(1, func(id int, c *vm.Context) {
		c.Store32(a, 1)
		done++
	})
	r2.Start(1, func(id int, c *vm.Context) {
		c.Store32(b, 2)
		done++
	})
	if err := k.Machine().Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Errorf("done = %d", done)
	}
}

func TestSpinLockUncontendedFastPath(t *testing.T) {
	r := newRuntime(1, sched.Affinity)
	lock := r.NewSpinLock()
	var elapsed sim.Time
	err := r.Run(1, func(id int, c *vm.Context) {
		lock.Lock(c) // warm: page fault etc.
		lock.Unlock(c)
		before := c.Thread().Clock()
		lock.Lock(c)
		lock.Unlock(c)
		elapsed = c.Thread().Clock() - before
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uncontended lock+unlock: one test-and-set (fetch+store) plus one
	// store, all local.
	cost := r.Kernel().Machine().Cost()
	want := cost.LocalFetch + 2*cost.LocalStore
	if elapsed != want {
		t.Errorf("uncontended lock cycle = %v, want %v", elapsed, want)
	}
}

// TestManyThreadsPerProcessor oversubscribes the machine (8 threads per
// CPU): the affinity scheduler spreads them, the engine time-slices each
// processor, and the work still completes correctly.
func TestManyThreadsPerProcessor(t *testing.T) {
	r := newRuntime(4, sched.Affinity)
	const threads = 32
	counter := r.Alloc("counter", 4)
	lock := r.NewSpinLock()
	err := r.Run(threads, func(id int, c *vm.Context) {
		c.Compute(200)
		lock.Lock(c)
		c.Store32(counter, c.Load32(counter)+1)
		lock.Unlock(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	pg := r.Task().EntryAt(counter).Object().Page(0)
	if got := pg.Authoritative().Load32(0); got != threads {
		t.Errorf("counter = %d, want %d", got, threads)
	}
	// Total user time must be at least the serialized compute.
	min := sim.Time(threads) * 200 * 500 * sim.Nanosecond
	if got := r.Kernel().Machine().Engine().TotalUserTime(); got < min {
		t.Errorf("user time %v < compute %v", got, min)
	}
}
