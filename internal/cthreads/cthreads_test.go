package cthreads_test

import (
	"testing"

	"numasim/internal/ace"
	"numasim/internal/cthreads"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/vm"
)

func newRuntime(nproc int, mode sched.Mode) *cthreads.Runtime {
	cfg := ace.DefaultConfig()
	cfg.NProc = nproc
	cfg.GlobalFrames = 256
	cfg.LocalFrames = 128
	cfg.Quantum = 100 * sim.Microsecond
	k := vm.NewKernel(ace.MustMachine(cfg), policy.NewDefault())
	return cthreads.New(k, mode)
}

func TestRunBindsOneWorkerPerProcessor(t *testing.T) {
	r := newRuntime(4, sched.Affinity)
	procs := make([]int, 4)
	err := r.Run(4, func(id int, c *vm.Context) {
		procs[id] = c.Proc()
		c.Compute(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range procs {
		if seen[p] {
			t.Errorf("processor %d assigned twice: %v", p, procs)
		}
		seen[p] = true
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	r := newRuntime(4, sched.Affinity)
	lock := r.NewSpinLock()
	counterVA := r.Alloc("counter", 4)
	const perWorker = 50
	err := r.Run(4, func(id int, c *vm.Context) {
		for i := 0; i < perWorker; i++ {
			lock.Lock(c)
			v := c.Load32(counterVA)
			c.Compute(3) // widen the critical section
			c.Store32(counterVA, v+1)
			lock.Unlock(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify via a fresh read on a final thread.
	// The counter value lives in the NUMA-managed page; read it through
	// the page's authoritative frame.
	pg := r.Task().EntryAt(counterVA).Object().Page(0)
	if got := pg.Authoritative().Load32(0); got != 4*perWorker {
		t.Errorf("counter = %d, want %d (lost updates => broken mutual exclusion)", got, 4*perWorker)
	}
}

func TestSpinLocksShareSyncPage(t *testing.T) {
	r := newRuntime(2, sched.Affinity)
	a := r.NewSpinLock()
	b := r.NewSpinLock()
	if a.VA()/4096 != b.VA()/4096 {
		t.Error("two fresh locks should share a sync page (loader-style layout)")
	}
	if a.VA() == b.VA() {
		t.Error("distinct locks share a word")
	}
}

func TestMutexAndCond(t *testing.T) {
	r := newRuntime(2, sched.Affinity)
	var mu cthreads.Mutex
	var cv cthreads.Cond
	ready := false
	var consumedAt sim.Time
	err := r.Run(2, func(id int, c *vm.Context) {
		if id == 0 { // producer
			c.Compute(100)
			mu.Lock(c)
			ready = true
			cv.Signal(c)
			mu.Unlock(c)
		} else { // consumer
			mu.Lock(c)
			for !ready {
				cv.Wait(c, &mu)
			}
			mu.Unlock(c)
			consumedAt = c.Thread().Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if consumedAt < 100*500*sim.Nanosecond {
		t.Errorf("consumer finished at %v, before producer's work", consumedAt)
	}
}

func TestUnlockUnheldMutexPanics(t *testing.T) {
	r := newRuntime(1, sched.Affinity)
	var mu cthreads.Mutex
	err := r.Run(1, func(id int, c *vm.Context) {
		mu.Unlock(c)
	})
	if err == nil {
		t.Fatal("want error from panic")
	}
}

func TestBarrier(t *testing.T) {
	r := newRuntime(3, sched.Affinity)
	b := cthreads.NewBarrier(3)
	var after [3]sim.Time
	err := r.Run(3, func(id int, c *vm.Context) {
		c.Compute(100 * (id + 1)) // unequal work before the barrier
		b.Wait(c)
		after[id] = c.Thread().Clock()
		// Second use of the same barrier (generation logic).
		c.Compute(10)
		b.Wait(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	slowest := 100 * 3 * 500 * sim.Nanosecond
	for id, tm := range after {
		if tm < slowest {
			t.Errorf("worker %d passed barrier at %v, before slowest arrival %v", id, tm, slowest)
		}
	}
}

func TestBarrierSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	cthreads.NewBarrier(0)
}

func TestWorkPile(t *testing.T) {
	r := newRuntime(4, sched.Affinity)
	// Each unit carries enough compute (~300µs) that the pile outlives the
	// workers' initial page-move faults and everyone participates.
	const units = 200
	pile := r.NewWorkPile(units)
	got := make([][]uint32, 4)
	err := r.Run(4, func(id int, c *vm.Context) {
		for {
			idx, ok := pile.Next(c)
			if !ok {
				return
			}
			got[id] = append(got[id], idx)
			c.Compute(600)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]bool)
	total := 0
	for id, list := range got {
		total += len(list)
		if len(list) == 0 {
			t.Errorf("worker %d got no work", id)
		}
		for _, idx := range list {
			if seen[idx] {
				t.Errorf("work unit %d handed out twice", idx)
			}
			seen[idx] = true
		}
	}
	if total != units {
		t.Errorf("total units = %d, want %d", total, units)
	}
}

func TestWorkPileBatch(t *testing.T) {
	r := newRuntime(2, sched.Affinity)
	pile := r.NewWorkPile(10)
	var unitsSeen int
	err := r.Run(2, func(id int, c *vm.Context) {
		for {
			lo, hi, ok := pile.NextBatch(c, 4)
			if !ok {
				return
			}
			unitsSeen += int(hi - lo)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if unitsSeen != 10 {
		t.Errorf("units = %d, want 10", unitsSeen)
	}
}

func TestMainForkJoin(t *testing.T) {
	r := newRuntime(3, sched.Affinity)
	data := r.Alloc("data", 3*4)
	err := r.Main(func(c *vm.Context) {
		workers := r.ForkWorkers(c, 3, func(id int, wc *vm.Context) {
			wc.Store32(data+uint32(id)*4, uint32(id)+1)
		})
		for _, w := range workers {
			w.Join(c)
		}
		sum := uint32(0)
		for i := uint32(0); i < 3; i++ {
			sum += c.Load32(data + i*4)
		}
		if sum != 6 {
			t.Errorf("sum = %d, want 6", sum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNoAffinityHops(t *testing.T) {
	r := newRuntime(4, sched.NoAffinity)
	procsSeen := map[int]bool{}
	err := r.Run(1, func(id int, c *vm.Context) {
		for i := 0; i < 50; i++ {
			procsSeen[c.Proc()] = true
			c.Compute(400) // 200µs: beyond the quantum
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(procsSeen) < 2 {
		t.Errorf("no-affinity thread stayed on %v", procsSeen)
	}
	if r.Scheduler().Mode() != sched.NoAffinity || r.Scheduler().Mode().String() != "no-affinity" {
		t.Error("mode accessors wrong")
	}
}

func TestAffinityBinding(t *testing.T) {
	// E11: under the affinity scheduler a thread never changes processor.
	r := newRuntime(4, sched.Affinity)
	procsSeen := map[int]bool{}
	err := r.Run(1, func(id int, c *vm.Context) {
		for i := 0; i < 50; i++ {
			procsSeen[c.Proc()] = true
			c.Compute(400)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(procsSeen) != 1 {
		t.Errorf("affinity thread moved across %v", procsSeen)
	}
	if sched.Affinity.String() != "affinity" {
		t.Error("mode string wrong")
	}
}

func TestSchedulerSkipsBusyProcessors(t *testing.T) {
	r := newRuntime(4, sched.Affinity)
	var procs []int
	err := r.Main(func(c *vm.Context) {
		// Main occupies one processor; three workers must land on the
		// three others.
		ws := r.ForkWorkers(c, 3, func(id int, wc *vm.Context) {
			procs = append(procs, wc.Proc())
			wc.Compute(10)
		})
		for _, w := range ws {
			w.Join(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range procs {
		if p == 0 {
			t.Errorf("worker landed on main's busy processor: %v", procs)
		}
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Errorf("workers shared processors: %v", procs)
	}
}

func TestAllBusyFallsBackToSharing(t *testing.T) {
	r := newRuntime(2, sched.Affinity)
	counts := map[int]int{}
	err := r.Run(4, func(id int, c *vm.Context) {
		counts[c.Proc()]++
		c.Compute(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0]+counts[1] != 4 {
		t.Errorf("counts = %v", counts)
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("assignment unbalanced: %v", counts)
	}
}
