// Package chaos is the simulator's seeded fault-injection layer: it
// forces transient local-allocation failures and delays page moves, so
// the NUMA manager's pressure machinery (fallback, retry, reclaim) can be
// exercised and measured deterministically.
//
// Determinism is the design constraint. The fault schedule is drawn from
// a seeded PRNG (a splitmix64 stream owned by this package — math/rand is
// off limits in the deterministic core) advanced in virtual time: every
// draw folds the querying thread's virtual clock and the processor into
// the stream, so a given simulation asks the same questions in the same
// order and receives the same answers at any host parallelism. Each
// machine owns its own Injector; injectors are never shared across runs.
//
//numalint:deterministic
package chaos

import (
	"fmt"

	"numasim/internal/sim"
)

// Config parameterizes an Injector. The zero value disables every
// injection (Enabled reports false), which is how chaos stays strictly
// opt-in: a zero Config produces a run byte-identical to one with no
// injector attached.
type Config struct {
	// Seed selects the fault schedule. Two runs with equal Config are
	// identical; different seeds give independent schedules.
	Seed int64
	// FailProb is the probability (0..1) that one local-frame allocation
	// attempt fails transiently.
	FailProb float64
	// MaxRetries bounds how many times the NUMA manager retries a failed
	// local allocation before falling back to global placement.
	MaxRetries int
	// Backoff is the base virtual-time wait between retries; attempt k
	// waits Backoff<<k.
	Backoff sim.Time
	// DelayProb is the probability (0..1) that one page move (copy to
	// local, sync to global) is delayed by up to MoveDelay.
	DelayProb float64
	// MoveDelay is the maximum extra virtual time charged to a delayed
	// page move; the actual delay is drawn uniformly from (0, MoveDelay].
	MoveDelay sim.Time
	// PanicAt, when positive, makes the injector panic inside the first
	// protocol action consulted at or after this virtual time — a crash
	// drill for the harness supervisor's recovery and repro-bundle path.
	// It fires at most once per injector.
	PanicAt sim.Time
	// StallAt, when positive, makes Disrupt report a stall on the first
	// protocol action consulted at or after this virtual time: the faulting
	// thread then spins without advancing virtual time until the engine's
	// stall watchdog tears the run down. It fires at most once per
	// injector.
	StallAt sim.Time
	// Health is the hard-failure schedule: node offline/online and link
	// degrade/sever/restore events applied at fixed virtual times by the
	// metrics layer's health driver. See health.go. An empty schedule is
	// strictly inert — no driver thread is even spawned.
	Health []HealthEvent
}

// Defaults for WithDefaults.
const (
	DefaultFailProb   = 0.05
	DefaultMaxRetries = 3
	DefaultDelayProb  = 0.10
)

// DefaultBackoff and DefaultMoveDelay are virtual-time defaults sized
// against the ACE's fault-handling costs (a retry should cost about as
// much as losing the fault and taking it again).
const (
	DefaultBackoff   = 200 * sim.Microsecond
	DefaultMoveDelay = 100 * sim.Microsecond
)

// WithDefaults fills in the conventional injection rates for a config
// that names only a seed, leaving explicitly set fields alone.
func (c Config) WithDefaults() Config {
	if c.FailProb == 0 {
		c.FailProb = DefaultFailProb
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.Backoff == 0 {
		c.Backoff = DefaultBackoff
	}
	if c.DelayProb == 0 {
		c.DelayProb = DefaultDelayProb
	}
	if c.MoveDelay == 0 {
		c.MoveDelay = DefaultMoveDelay
	}
	return c
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.FailProb > 0 || c.DelayProb > 0 || c.PanicAt > 0 || c.StallAt > 0
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FailProb < 0 || c.FailProb > 1 {
		return fmt.Errorf("chaos: FailProb %v outside [0,1]", c.FailProb)
	}
	if c.DelayProb < 0 || c.DelayProb > 1 {
		return fmt.Errorf("chaos: DelayProb %v outside [0,1]", c.DelayProb)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("chaos: MaxRetries %d < 0", c.MaxRetries)
	}
	if c.Backoff < 0 || c.MoveDelay < 0 {
		return fmt.Errorf("chaos: negative backoff or move delay")
	}
	if c.PanicAt < 0 || c.StallAt < 0 {
		return fmt.Errorf("chaos: negative PanicAt or StallAt")
	}
	return c.ValidateHealth()
}

// Injector draws the fault schedule for one machine. It implements
// numa.Injector. Not safe for concurrent use — like the machine it is
// attached to, it belongs to a single simulation loop.
type Injector struct {
	cfg Config
	// state is the splitmix64 stream position; seq differentiates draws
	// made at the same virtual instant.
	state uint64
	seq   uint64

	// Counters for reports and tests.
	failures uint64
	delays   uint64

	// One-shot latches for the crash-drill modes.
	panicked bool
	stalled  bool
}

// New builds an injector from cfg, panicking on invalid configuration
// (configuration is a programming error, as for ace.NewMachine).
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg, state: mix64(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15)}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Failures reports how many allocation failures have been injected.
func (in *Injector) Failures() uint64 { return in.failures }

// Delays reports how many page moves have been delayed.
func (in *Injector) Delays() uint64 { return in.delays }

// draw advances the PRNG, folding the virtual time of the query and a
// per-injector sequence number into the stream. The result is uniform in
// [0, 1<<53).
func (in *Injector) draw(now sim.Time, salt uint64) uint64 {
	in.seq++
	in.state = mix64(in.state ^ uint64(now) ^ salt ^ in.seq*0xbf58476d1ce4e5b9)
	return in.state >> 11
}

// chance reports true with probability p for this draw.
func (in *Injector) chance(now sim.Time, salt uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	const scale = 1 << 53
	return float64(in.draw(now, salt)) < p*scale
}

// FailLocalAlloc reports whether one local-frame allocation attempt by
// proc at virtual time now fails transiently.
func (in *Injector) FailLocalAlloc(now sim.Time, proc int) bool {
	if !in.chance(now, uint64(proc)<<1, in.cfg.FailProb) {
		return false
	}
	in.failures++
	return true
}

// MoveDelay returns the extra virtual time to charge a page move
// performed by proc at time now, or zero when the move is not delayed.
func (in *Injector) MoveDelay(now sim.Time, proc int) sim.Time {
	if in.cfg.MoveDelay <= 0 || !in.chance(now, uint64(proc)<<1|1, in.cfg.DelayProb) {
		return 0
	}
	in.delays++
	// Uniform in (0, MoveDelay], never zero: a delayed move always costs.
	return sim.Time(in.draw(now, 0)%uint64(in.cfg.MoveDelay)) + 1
}

// Disrupt is consulted once per protocol action. When the config's crash
// drills are armed it either panics (PanicAt) or reports that the calling
// thread should stall without advancing virtual time (StallAt); each
// fires at most once per injector. The panic happens here, not in the
// NUMA manager, so the deterministic core's own panics all stay routed
// through its typed-violation helper.
func (in *Injector) Disrupt(now sim.Time, proc int) (stall bool) {
	if in.cfg.PanicAt > 0 && !in.panicked && now >= in.cfg.PanicAt {
		in.panicked = true
		panic(fmt.Sprintf("chaos: injected panic at %v on cpu%d", now, proc))
	}
	if in.cfg.StallAt > 0 && !in.stalled && now >= in.cfg.StallAt {
		in.stalled = true
		return true
	}
	return false
}

// MaxRetries bounds the NUMA manager's retry loop.
func (in *Injector) MaxRetries() int { return in.cfg.MaxRetries }

// RetryBackoff returns the virtual-time wait before retry number attempt
// (zero-based): Backoff doubled per attempt.
func (in *Injector) RetryBackoff(attempt int) sim.Time {
	if attempt > 16 {
		attempt = 16 // cap the shift; the retry loop is bounded anyway
	}
	return in.cfg.Backoff << uint(attempt)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Scripted replays an explicit allocation-failure schedule: call k of
// FailLocalAlloc fails iff Fail[k] (out-of-range calls succeed). It backs
// the protocol fuzz suite's pressure extension, where the failure
// schedule must be part of the seeded script rather than drawn from a
// second stream. MoveDelay never delays.
type Scripted struct {
	Fail    []bool
	Retries int
	Wait    sim.Time

	calls    uint64
	failures uint64
}

// FailLocalAlloc implements the injector contract by replaying the script.
func (s *Scripted) FailLocalAlloc(now sim.Time, proc int) bool {
	i := s.calls
	s.calls++
	if i < uint64(len(s.Fail)) && s.Fail[i] {
		s.failures++
		return true
	}
	return false
}

// MoveDelay implements the injector contract; scripted runs never delay.
func (s *Scripted) MoveDelay(now sim.Time, proc int) sim.Time { return 0 }

// Disrupt implements the injector contract; scripted runs never crash or
// stall.
func (s *Scripted) Disrupt(now sim.Time, proc int) bool { return false }

// MaxRetries implements the injector contract.
func (s *Scripted) MaxRetries() int { return s.Retries }

// RetryBackoff implements the injector contract with a fixed wait.
func (s *Scripted) RetryBackoff(attempt int) sim.Time { return s.Wait }

// Failures reports how many scripted failures have fired.
func (s *Scripted) Failures() uint64 { return s.failures }
