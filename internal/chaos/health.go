// Hard-failure schedules: virtual-time-stamped node offline/online and
// link degrade/sever/restore events. Unlike the probabilistic injector,
// a health schedule is explicit data — the same schedule replays the
// same failures at the same virtual instants on every run, so degraded
// runs are as deterministic as healthy ones. The metrics layer drives
// the schedule from a dedicated engine thread; this package only
// defines, validates, parses and orders the events.

package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"numasim/internal/sim"
)

// HealthKind classifies a HealthEvent.
type HealthKind uint8

// Health event kinds.
const (
	// NodeOffline marks a node failing at At: its pages evacuate, its
	// frame pool quarantines, and its processors stop receiving threads.
	NodeOffline HealthKind = iota
	// NodeOnline returns a previously offline node to service, cold.
	NodeOnline
	// LinkSever makes a link unusable; routes recompute around it.
	LinkSever
	// LinkDegrade multiplies a link's per-byte service time by Factor.
	LinkDegrade
	// LinkRestore undoes LinkSever and LinkDegrade for a link.
	LinkRestore
)

func (k HealthKind) String() string {
	switch k {
	case NodeOffline:
		return "node-offline"
	case NodeOnline:
		return "node-online"
	case LinkSever:
		return "link-sever"
	case LinkDegrade:
		return "link-degrade"
	case LinkRestore:
		return "link-restore"
	}
	return fmt.Sprintf("health-kind(%d)", int(k))
}

// HealthEvent is one scheduled health transition.
type HealthEvent struct {
	// At is the virtual time the event fires.
	At sim.Time
	// Kind selects the transition.
	Kind HealthKind
	// Node is the target node for NodeOffline/NodeOnline.
	Node int
	// Link names the target link ("node0-node1") for the link kinds; it
	// is resolved against the machine's topology when the run starts, so
	// a bad name fails setup instead of mid-run.
	Link string
	// Factor is LinkDegrade's capacity divisor (>= 2: "four times
	// slower" is Factor 4).
	Factor int
}

func (e HealthEvent) String() string {
	switch e.Kind {
	case NodeOffline, NodeOnline:
		return fmt.Sprintf("%v@%v node%d", e.Kind, e.At, e.Node)
	case LinkDegrade:
		return fmt.Sprintf("%v@%v %s x%d", e.Kind, e.At, e.Link, e.Factor)
	}
	return fmt.Sprintf("%v@%v %s", e.Kind, e.At, e.Link)
}

// HealthEnabled reports whether the config carries a failure schedule.
// It is deliberately separate from Enabled: the probabilistic injector
// and the health driver are independent machineries.
func (c Config) HealthEnabled() bool { return len(c.Health) > 0 }

// ValidateHealth checks the failure schedule.
func (c Config) ValidateHealth() error {
	for i, e := range c.Health {
		if e.At <= 0 {
			return fmt.Errorf("chaos: health event %d (%v) at non-positive time %v", i, e.Kind, e.At)
		}
		switch e.Kind {
		case NodeOffline, NodeOnline:
			if e.Node < 0 {
				return fmt.Errorf("chaos: health event %d (%v) targets negative node %d", i, e.Kind, e.Node)
			}
		case LinkSever, LinkDegrade, LinkRestore:
			if e.Link == "" {
				return fmt.Errorf("chaos: health event %d (%v) names no link", i, e.Kind)
			}
			if e.Kind == LinkDegrade && e.Factor < 2 {
				return fmt.Errorf("chaos: health event %d degrades %s by factor %d < 2", i, e.Link, e.Factor)
			}
		default:
			return fmt.Errorf("chaos: health event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// SortedHealth returns the schedule ordered by firing time (stable, so
// same-instant events keep their declaration order). The config's own
// slice is not mutated.
func (c Config) SortedHealth() []HealthEvent {
	evs := append([]HealthEvent(nil), c.Health...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// ParseNodeFail parses a -chaos-node-fail spec: comma-separated
// NODE@OFF[-ON] entries where OFF and ON are virtual-time durations —
// "2@10ms-60ms,5@20ms" takes node 2 offline at 10ms and back at 60ms,
// and node 5 offline at 20ms for the rest of the run.
func ParseNodeFail(spec string) ([]HealthEvent, error) {
	var evs []HealthEvent
	for _, part := range splitSpec(spec) {
		node, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: node-fail %q: want NODE@OFF[-ON]", part)
		}
		n, err := strconv.Atoi(node)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("chaos: node-fail %q: bad node %q", part, node)
		}
		off, on, hasOn := strings.Cut(rest, "-")
		at, err := parseSimTime(off)
		if err != nil {
			return nil, fmt.Errorf("chaos: node-fail %q: %v", part, err)
		}
		evs = append(evs, HealthEvent{At: at, Kind: NodeOffline, Node: n})
		if hasOn {
			back, err := parseSimTime(on)
			if err != nil {
				return nil, fmt.Errorf("chaos: node-fail %q: %v", part, err)
			}
			if back <= at {
				return nil, fmt.Errorf("chaos: node-fail %q: online time %v not after offline time %v", part, back, at)
			}
			evs = append(evs, HealthEvent{At: back, Kind: NodeOnline, Node: n})
		}
	}
	return evs, nil
}

// ParseLinkFail parses a -chaos-link-fail spec: comma-separated
// LINK@AT[xFACTOR][-RESTORE] entries — "node0-node1@5ms" severs the
// link at 5ms, "node0-node1@5msx4" slows it fourfold instead, and an
// optional -RESTORE time heals it ("node0-node1@5msx4-9ms").
func ParseLinkFail(spec string) ([]HealthEvent, error) {
	var evs []HealthEvent
	for _, part := range splitSpec(spec) {
		link, rest, ok := strings.Cut(part, "@")
		if !ok || link == "" {
			return nil, fmt.Errorf("chaos: link-fail %q: want LINK@AT[xFACTOR][-RESTORE]", part)
		}
		// Durations never contain '-', so the first '-' after '@' splits
		// off the restore time even though link names contain dashes.
		fail, restore, hasRestore := strings.Cut(rest, "-")
		at, factor := fail, 0
		if head, fac, hasFactor := strings.Cut(fail, "x"); hasFactor {
			f, err := strconv.Atoi(fac)
			if err != nil || f < 2 {
				return nil, fmt.Errorf("chaos: link-fail %q: bad degrade factor %q (want an integer >= 2)", part, fac)
			}
			at, factor = head, f
		}
		t, err := parseSimTime(at)
		if err != nil {
			return nil, fmt.Errorf("chaos: link-fail %q: %v", part, err)
		}
		if factor > 0 {
			evs = append(evs, HealthEvent{At: t, Kind: LinkDegrade, Link: link, Factor: factor})
		} else {
			evs = append(evs, HealthEvent{At: t, Kind: LinkSever, Link: link})
		}
		if hasRestore {
			back, err := parseSimTime(restore)
			if err != nil {
				return nil, fmt.Errorf("chaos: link-fail %q: %v", part, err)
			}
			if back <= t {
				return nil, fmt.Errorf("chaos: link-fail %q: restore time %v not after failure time %v", part, back, t)
			}
			evs = append(evs, HealthEvent{At: back, Kind: LinkRestore, Link: link})
		}
	}
	return evs, nil
}

// ParseHealthSchedule assembles a failure schedule from the two CLI
// specs (-chaos-node-fail and -chaos-link-fail); either may be empty.
func ParseHealthSchedule(nodeSpec, linkSpec string) ([]HealthEvent, error) {
	evs, err := ParseNodeFail(nodeSpec)
	if err != nil {
		return nil, err
	}
	links, err := ParseLinkFail(linkSpec)
	if err != nil {
		return nil, err
	}
	return append(evs, links...), nil
}

// splitSpec splits a comma-separated spec, dropping empty entries.
func splitSpec(spec string) []string {
	var parts []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// parseSimTime parses a virtual-time duration ("10ms", "1500us", "2s")
// without importing the host time package: the deterministic core owns
// its own unit table.
func parseSimTime(s string) (sim.Time, error) {
	units := []struct {
		suffix string
		scale  sim.Time
	}{
		{"ns", sim.Nanosecond},
		{"us", sim.Microsecond},
		{"µs", sim.Microsecond},
		{"ms", sim.Millisecond},
		{"s", sim.Second},
	}
	for _, u := range units {
		num, ok := strings.CutSuffix(s, u.suffix)
		if !ok {
			continue
		}
		// "1500ms" could also suffix-match "s"; require a numeric head so
		// the longest sensible unit wins (the table tries ns/us/ms first).
		v, err := strconv.ParseInt(num, 10, 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("bad duration %q (want a positive integer with a ns/us/ms/s suffix)", s)
		}
		return sim.Time(v) * u.scale, nil
	}
	return 0, fmt.Errorf("bad duration %q (want a positive integer with a ns/us/ms/s suffix)", s)
}
