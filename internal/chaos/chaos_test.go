package chaos

import (
	"testing"

	"numasim/internal/sim"
)

// schedule records every decision an injector makes over a fixed query
// sequence, so two injectors can be compared draw for draw.
func schedule(in *Injector) []bool {
	var s []bool
	for step := 0; step < 200; step++ {
		now := sim.Time(step) * 10 * sim.Microsecond
		proc := step % 4
		s = append(s, in.FailLocalAlloc(now, proc))
		s = append(s, in.MoveDelay(now, proc) > 0)
	}
	return s
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42}.WithDefaults()
	a, b := schedule(New(cfg)), schedule(New(cfg))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	cfg := Config{Seed: 1, FailProb: 0.5, DelayProb: 0.5,
		Backoff: DefaultBackoff, MoveDelay: DefaultMoveDelay, MaxRetries: 3}
	a := schedule(New(cfg))
	cfg.Seed = 2
	b := schedule(New(cfg))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical schedules")
	}
}

func TestInjectorRates(t *testing.T) {
	cfg := Config{Seed: 7, FailProb: 0.5, DelayProb: 0.5,
		Backoff: DefaultBackoff, MoveDelay: DefaultMoveDelay, MaxRetries: 3}
	in := New(cfg)
	schedule(in)
	// 200 draws each at p=0.5: expect roughly 100, accept a wide band.
	if in.Failures() < 60 || in.Failures() > 140 {
		t.Errorf("failures = %d, want ~100", in.Failures())
	}
	if in.Delays() < 60 || in.Delays() > 140 {
		t.Errorf("delays = %d, want ~100", in.Delays())
	}
}

func TestInjectorZeroProbInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 9})
	for _, fired := range schedule(in) {
		if fired {
			t.Fatal("zero-probability config injected a fault")
		}
	}
	if in.Failures() != 0 || in.Delays() != 0 {
		t.Errorf("counters moved: %d failures, %d delays", in.Failures(), in.Delays())
	}
}

func TestMoveDelayBounds(t *testing.T) {
	cfg := Config{Seed: 3, DelayProb: 1, MoveDelay: 50 * sim.Microsecond}
	in := New(cfg)
	for step := 0; step < 100; step++ {
		d := in.MoveDelay(sim.Time(step)*sim.Microsecond, step%4)
		if d <= 0 || d > cfg.MoveDelay {
			t.Fatalf("delay %v outside (0, %v]", d, cfg.MoveDelay)
		}
	}
}

func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	in := New(Config{Backoff: sim.Microsecond})
	if got := in.RetryBackoff(0); got != sim.Microsecond {
		t.Errorf("attempt 0 backoff = %v", got)
	}
	if got := in.RetryBackoff(3); got != 8*sim.Microsecond {
		t.Errorf("attempt 3 backoff = %v", got)
	}
	if got := in.RetryBackoff(40); got != in.RetryBackoff(16) {
		t.Errorf("uncapped shift: %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{FailProb: -0.1},
		{FailProb: 1.5},
		{DelayProb: 2},
		{MaxRetries: -1},
		{Backoff: -sim.Microsecond},
		{MoveDelay: -sim.Microsecond},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if err := (Config{Seed: 1}.WithDefaults()).Validate(); err != nil {
		t.Errorf("defaulted config rejected: %v", err)
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	if (Config{Seed: 5}).Enabled() {
		t.Error("seed-only config enabled")
	}
	if !(Config{FailProb: 0.1}).Enabled() || !(Config{DelayProb: 0.1}).Enabled() {
		t.Error("probability-bearing config disabled")
	}
}

func TestWithDefaultsPreservesExplicit(t *testing.T) {
	cfg := Config{Seed: 11, FailProb: 0.25, MaxRetries: 7}.WithDefaults()
	if cfg.FailProb != 0.25 || cfg.MaxRetries != 7 {
		t.Errorf("explicit fields overwritten: %+v", cfg)
	}
	if cfg.DelayProb != DefaultDelayProb || cfg.Backoff != DefaultBackoff ||
		cfg.MoveDelay != DefaultMoveDelay {
		t.Errorf("defaults not filled: %+v", cfg)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an invalid config")
		}
	}()
	New(Config{FailProb: 2})
}

func TestScriptedReplay(t *testing.T) {
	s := &Scripted{Fail: []bool{true, false, true}, Retries: 2, Wait: 5 * sim.Microsecond}
	want := []bool{true, false, true, false, false} // out-of-range calls succeed
	for i, w := range want {
		if got := s.FailLocalAlloc(sim.Time(i), 0); got != w {
			t.Errorf("call %d = %v, want %v", i, got, w)
		}
	}
	if s.Failures() != 2 {
		t.Errorf("failures = %d, want 2", s.Failures())
	}
	if s.MoveDelay(0, 0) != 0 {
		t.Error("scripted runs must not delay moves")
	}
	if s.MaxRetries() != 2 || s.RetryBackoff(3) != 5*sim.Microsecond {
		t.Error("scripted retry parameters not honoured")
	}
}
