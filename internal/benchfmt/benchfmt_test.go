package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: numasim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable3/FFT-8         	     100	   9879912 ns/op	         0.9921 alpha	         0.4413 beta	         1.285 gamma	  496676 B/op	    1103 allocs/op
BenchmarkLocalAccess-8        	 5403738	       214.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkPickManyThreads/64-8 	 1000000	      1023 ns/op	       0 allocs/op
some test chatter that is not a benchmark
PASS
ok  	numasim	42.1s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Errorf("header not captured: %+v", f)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	by := f.ByName()
	fft, ok := by["BenchmarkTable3/FFT"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: have %v", f.Benchmarks)
	}
	if fft.NsPerOp != 9879912 || fft.AllocsPerOp != 1103 || fft.BytesPerOp != 496676 {
		t.Errorf("FFT mis-parsed: %+v", fft)
	}
	if got := fft.Metrics["alpha"]; got != 0.9921 {
		t.Errorf("alpha = %v, want 0.9921", got)
	}
	if got := fft.Metrics["gamma"]; got != 1.285 {
		t.Errorf("gamma = %v, want 1.285", got)
	}
	local := by["BenchmarkLocalAccess"]
	if local.NsPerOp != 214.6 || local.AllocsPerOp != 0 || local.Iterations != 5403738 {
		t.Errorf("LocalAccess mis-parsed: %+v", local)
	}
	if _, ok := by["BenchmarkPickManyThreads/64"]; !ok {
		t.Errorf("sub-benchmark name lost: %v", f.Benchmarks)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Error("want error on input with no benchmark lines")
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	f.Date = "2026-08-08"
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Date != "2026-08-08" || len(back.Benchmarks) != len(f.Benchmarks) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range f.Benchmarks {
		a, b := f.Benchmarks[i], back.Benchmarks[i]
		if a.Name != b.Name || a.NsPerOp != b.NsPerOp || a.AllocsPerOp != b.AllocsPerOp {
			t.Errorf("benchmark %d changed: %+v vs %+v", i, a, b)
		}
		for k, v := range a.Metrics {
			if b.Metrics[k] != v {
				t.Errorf("%s metric %s: %v vs %v", a.Name, k, v, b.Metrics[k])
			}
		}
	}
}

func TestDuplicateKeepsLast(t *testing.T) {
	in := "BenchmarkX-4 100 50.0 ns/op 3 allocs/op\nBenchmarkX-4 200 40.0 ns/op 2 allocs/op\n"
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].NsPerOp != 40.0 || f.Benchmarks[0].AllocsPerOp != 2 {
		t.Errorf("duplicate handling wrong: %+v", f.Benchmarks)
	}
}
