// Package benchfmt is the repo's benchmark interchange format: a parser
// for `go test -bench -benchmem` text output and the JSON schema the
// perf trajectory is tracked in (BENCH_<date>.json files, compared by
// cmd/benchdiff and gated in CI). Custom benchmark metrics reported via
// b.ReportMetric — the derived model parameters alpha, beta, gamma, the
// trace-overhead event rate and so on — ride along in a per-benchmark
// metrics map.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// so results compare across machines with different CPU counts.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when the run used
	// -benchmem (or the benchmark called b.ReportAllocs).
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom units from b.ReportMetric (alpha, beta,
	// gamma, events/op, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is one tracked benchmark run.
type File struct {
	Date       string   `json:"date,omitempty"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// normName strips the trailing -N GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkTable3/FFT-8" -> "BenchmarkTable3/FFT").
func normName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Parse reads `go test -bench` text output and returns the structured
// run. Non-benchmark lines (PASS, ok, test log output) are ignored; the
// goos/goarch/cpu header lines are captured when present. Duplicate
// benchmark names (e.g. from -count>1) keep the last measurement.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	idx := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: normName(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q on line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			case "MB/s":
				// throughput is derived from ns/op; skip
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		if j, ok := idx[res.Name]; ok {
			f.Benchmarks[j] = res
			continue
		}
		idx[res.Name] = len(f.Benchmarks)
		f.Benchmarks = append(f.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark lines in input")
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		return f.Benchmarks[i].Name < f.Benchmarks[j].Name
	})
	return f, nil
}

// Write marshals the run as indented JSON with a trailing newline (the
// committed BENCH_*.json form).
func (f *File) Write(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Read unmarshals a BENCH_*.json file.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: file holds no benchmarks")
	}
	return &f, nil
}

// ByName indexes the file's benchmarks.
func (f *File) ByName() map[string]Result {
	m := make(map[string]Result, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		m[b.Name] = b
	}
	return m
}
