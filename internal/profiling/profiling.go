// Package profiling backs the -cpuprofile/-memprofile flags of the
// command-line tools: it starts pprof collection at flag-parse time and
// returns a single stop function the command defers, so every exit path
// flushes the profiles. The profiles are the inputs the perf work is
// steered by (`go tool pprof <binary> cpu.out`).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile
// into memPath; either may be empty to skip that profile. The returned
// stop function flushes and closes both and is safe to call when no
// profiling was requested (it is a no-op then).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
