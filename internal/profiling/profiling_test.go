package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNoOpWhenUnrequested(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal("second stop must stay a no-op:", err)
	}
}

func TestWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestBadPathFails(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Error("want error on uncreatable profile path")
	}
}
