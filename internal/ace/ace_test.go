package ace

import (
	"math"
	"strings"
	"testing"

	"numasim/internal/mem"
	"numasim/internal/sim"
)

func TestDefaultCostModelRatios(t *testing.T) {
	// §2.2: global is 2.3x slower than local on fetches, 1.7x on stores,
	// and about 2x for a mix with 45% stores (E13 in DESIGN.md).
	c := DefaultCostModel()
	fetch := float64(c.GlobalFetch) / float64(c.LocalFetch)
	if math.Abs(fetch-2.3) > 0.05 {
		t.Errorf("fetch ratio = %.2f, want ~2.3", fetch)
	}
	store := float64(c.GlobalStore) / float64(c.LocalStore)
	if math.Abs(store-1.7) > 0.05 {
		t.Errorf("store ratio = %.2f, want ~1.7", store)
	}
	mixed := c.GOverL(0.45)
	if math.Abs(mixed-2.0) > 0.1 {
		t.Errorf("mixed G/L = %.2f, want ~2.0", mixed)
	}
	if pure := c.GOverL(0); math.Abs(pure-2.3) > 0.05 {
		t.Errorf("fetch-only G/L = %.2f, want ~2.3", pure)
	}
}

func TestFetchStoreCost(t *testing.T) {
	c := DefaultCostModel()
	g, _ := mem.NewPool(mem.Global, -1, 1, 4096).Alloc()
	l0, _ := mem.NewPool(mem.Local, 0, 1, 4096).Alloc()
	if c.FetchCost(g, 0) != c.GlobalFetch {
		t.Error("global fetch cost wrong")
	}
	if c.FetchCost(l0, 0) != c.LocalFetch {
		t.Error("own-local fetch cost wrong")
	}
	if c.FetchCost(l0, 1) != c.RemoteFetch {
		t.Error("remote fetch cost wrong")
	}
	if c.StoreCost(g, 0) != c.GlobalStore || c.StoreCost(l0, 0) != c.LocalStore || c.StoreCost(l0, 1) != c.RemoteStore {
		t.Error("store costs wrong")
	}
}

func TestCopyZeroCost(t *testing.T) {
	c := DefaultCostModel()
	g, _ := mem.NewPool(mem.Global, -1, 1, 4096).Alloc()
	l0, _ := mem.NewPool(mem.Local, 0, 1, 4096).Alloc()
	// Copying global->local on cpu0: 1024 words * (global fetch + local store).
	want := 1024 * (c.GlobalFetch + c.LocalStore)
	if got := c.CopyCost(g, l0, 0, 4096); got != want {
		t.Errorf("CopyCost = %v, want %v", got, want)
	}
	if got := c.ZeroCost(l0, 0, 4096); got != 1024*c.LocalStore {
		t.Errorf("ZeroCost = %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NProc = 0 },
		func(c *Config) { c.PageSize = 1000 },
		func(c *Config) { c.PageSize = 8 },
		func(c *Config) { c.GlobalFrames = 0 },
		func(c *Config) { c.LocalFrames = -1 },
		func(c *Config) { c.Quantum = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestNewMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NProc = 3
	m := MustMachine(cfg)
	if m.NProc() != 3 {
		t.Errorf("NProc = %d", m.NProc())
	}
	for i := 0; i < 3; i++ {
		if m.Proc(i).ID() != i {
			t.Errorf("proc %d has id %d", i, m.Proc(i).ID())
		}
		if m.MMU(i).Proc() != i {
			t.Errorf("mmu %d has proc %d", i, m.MMU(i).Proc())
		}
	}
	if m.Memory().NProc() != 3 {
		t.Error("memory pools mismatch")
	}
	if m.Engine() == nil {
		t.Error("nil engine")
	}
}

func TestNewMachineBadConfig(t *testing.T) {
	if _, err := NewMachine(Config{}); err == nil {
		t.Fatal("NewMachine(Config{}): want error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustMachine(Config{}): want panic")
		}
	}()
	MustMachine(Config{})
}

func TestVPNAndOffset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageSize = 4096
	m := MustMachine(cfg)
	if m.PageShift() != 12 {
		t.Errorf("PageShift = %d", m.PageShift())
	}
	if m.VPN(0x12345) != 0x12 {
		t.Errorf("VPN = %#x", m.VPN(0x12345))
	}
	if m.PageOff(0x12345) != 0x345 {
		t.Errorf("PageOff = %#x", m.PageOff(0x12345))
	}
}

func TestChargeAndCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NProc = 2
	m := MustMachine(cfg)
	g, _ := m.Memory().Global().Alloc()
	l1, _ := m.Memory().Local(1).Alloc()
	var done bool
	m.Engine().Spawn("t", 0, func(th *sim.Thread) {
		m.ChargeFetch(th, 0, g)
		m.ChargeStore(th, 0, g)
		m.ChargeFetch(th, 1, l1)
		m.ChargeStore(th, 1, l1)
		m.ChargeFetch(th, 0, l1) // remote
		done = true
	})
	if err := m.Engine().Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("thread did not run")
	}
	r0, r1 := m.Proc(0).Refs(), m.Proc(1).Refs()
	if r0.GlobalFetch != 1 || r0.GlobalStore != 1 || r0.RemoteFetch != 1 {
		t.Errorf("proc0 refs = %+v", r0)
	}
	if r1.LocalFetch != 1 || r1.LocalStore != 1 {
		t.Errorf("proc1 refs = %+v", r1)
	}
	tot := m.TotalRefs()
	if tot.Total() != 5 {
		t.Errorf("total refs = %d, want 5", tot.Total())
	}
	wantLocal := 2.0 / 5.0
	if lf := tot.LocalFraction(); math.Abs(lf-wantLocal) > 1e-9 {
		t.Errorf("local fraction = %v, want %v", lf, wantLocal)
	}
	c := DefaultCostModel()
	wantTime := c.GlobalFetch + c.GlobalStore + c.LocalFetch + c.LocalStore + c.RemoteFetch
	if got := m.Engine().TotalUserTime(); got != wantTime {
		t.Errorf("user time = %v, want %v", got, wantTime)
	}
}

func TestLocalFractionEmpty(t *testing.T) {
	var r RefStats
	if r.LocalFraction() != 0 {
		t.Error("empty stats should report 0")
	}
}

func TestTopology(t *testing.T) {
	m := MustMachine(DefaultConfig())
	top := m.Topology()
	for _, want := range []string{"cpu0", "cpu6", "IPC bus", "global memory", "Figure 1"} {
		if !strings.Contains(top, want) {
			t.Errorf("topology missing %q:\n%s", want, top)
		}
	}
}

func TestTotalFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NProc = 2
	m := MustMachine(cfg)
	m.Proc(0).Faults = 3
	m.Proc(1).Faults = 4
	if m.TotalFaults() != 7 {
		t.Errorf("TotalFaults = %d", m.TotalFaults())
	}
}
