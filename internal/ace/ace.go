// Package ace models the hardware of the IBM ACE Multiprocessor Workstation
// (§2.2 of the paper): a set of processor modules, each with a ROMP-class
// CPU, a Rosetta-class MMU and a local memory, connected to one or more
// global memories by the Inter-Processor Communication bus.
//
// The model is a timing model, not an ISA emulator. Applications execute
// real Go code for their computations and charge virtual time for each
// simulated memory reference and for counted instruction work, using the
// latencies the paper measured: 32-bit local fetch 0.65µs / store 0.84µs,
// global fetch 1.5µs / store 1.4µs.
package ace

import (
	"fmt"

	"numasim/internal/mem"
	"numasim/internal/mmu"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
	"numasim/internal/topology"
)

// CostModel gives the virtual-time cost of every charged operation.
//
// The six memory-latency constants are the ACE's published measurements;
// they seed the ACE topology's latency matrix. Once a model is bound to a
// topology spec (Bind, done by NewMachine), every per-reference cost is
// read from the spec's distance-derived matrix — the two-level ACE case
// is then *derived* from the matrix rather than special-cased, and the
// constants remain only as matrix seed values and as the fallback for
// unbound models (zero-value CostModel in unit tests).
type CostModel struct {
	// 32-bit memory reference latencies (§2.2).
	LocalFetch  sim.Time
	LocalStore  sim.Time
	GlobalFetch sim.Time
	GlobalStore sim.Time
	// Remote references (one processor into another's local memory, §4.4).
	// The ACE supports them but the paper's system deliberately does not use
	// them; they are modelled for the remote-reference extension experiment.
	RemoteFetch sim.Time
	RemoteStore sim.Time

	// Instruction costs. The ROMP has no hardware multiply/divide and no
	// floating point unit, which the paper leans on repeatedly ("division
	// is expensive on the ACE", "the high cost of integer multiplication").
	Instr sim.Time // simple register/ALU instruction
	Mul   sim.Time // integer multiply
	Div   sim.Time // integer divide
	FAdd  sim.Time // floating add/sub
	FMul  sim.Time // floating multiply
	FDiv  sim.Time // floating divide

	// Kernel overheads, charged as system time.
	FaultBase sim.Time // trap entry + machine-independent VM fault handling
	NUMAOp    sim.Time // one NUMA-manager decision/bookkeeping step
	MMUOp     sim.Time // dropping or changing one translation, possibly cross-CPU

	// topo, when non-nil, supplies the per-(processor, node) latency
	// matrix that replaces the Local/Global/Remote constants above.
	topo *topology.Spec
}

// Bind routes the model's per-reference costs through spec's latency
// matrix. NewMachine binds the machine's cost model automatically;
// standalone consumers (the metrics evaluator's model arithmetic) bind a
// copy explicitly.
func (c *CostModel) Bind(spec *topology.Spec) { c.topo = spec }

// Topo returns the bound topology spec, or nil for an unbound model.
func (c *CostModel) Topo() *topology.Spec { return c.topo }

// DefaultCostModel returns the paper's measured memory latencies and
// ROMP-plausible instruction costs.
func DefaultCostModel() CostModel {
	return CostModel{
		LocalFetch:  650 * sim.Nanosecond,
		LocalStore:  840 * sim.Nanosecond,
		GlobalFetch: 1500 * sim.Nanosecond,
		GlobalStore: 1400 * sim.Nanosecond,
		RemoteFetch: 1800 * sim.Nanosecond,
		RemoteStore: 1700 * sim.Nanosecond,

		Instr: 500 * sim.Nanosecond, // ~2 MIPS
		Mul:   5 * sim.Microsecond,  // software multiply
		Div:   15 * sim.Microsecond, // software divide
		FAdd:  1 * sim.Microsecond,  // FPA-assisted floating point
		FMul:  1500 * sim.Nanosecond,
		FDiv:  4 * sim.Microsecond,

		FaultBase: 500 * sim.Microsecond,
		NUMAOp:    50 * sim.Microsecond,
		MMUOp:     10 * sim.Microsecond,
	}
}

// FetchCost returns the cost of one 32-bit fetch from a frame of the given
// kind by processor proc. Bound models read the topology's latency matrix;
// unbound models fall back to the two-level constants.
//
//numalint:hotpath
func (c *CostModel) FetchCost(f *mem.Frame, proc int) sim.Time {
	if t := c.topo; t != nil {
		return t.FetchLatency(proc, t.Col(f.Proc()))
	}
	if f.Kind() == mem.Global {
		return c.GlobalFetch
	}
	if f.Proc() == proc {
		return c.LocalFetch
	}
	return c.RemoteFetch
}

// StoreCost returns the cost of one 32-bit store to a frame of the given
// kind by processor proc. Bound models read the topology's latency matrix;
// unbound models fall back to the two-level constants.
//
//numalint:hotpath
func (c *CostModel) StoreCost(f *mem.Frame, proc int) sim.Time {
	if t := c.topo; t != nil {
		return t.StoreLatency(proc, t.Col(f.Proc()))
	}
	if f.Kind() == mem.Global {
		return c.GlobalStore
	}
	if f.Proc() == proc {
		return c.LocalStore
	}
	return c.RemoteStore
}

// CopyCost returns the cost for processor proc to copy a full page from src
// to dst, word by word, at memory speed. This is what makes page movement
// expensive and is the dominant term in the paper's system times (§3.3).
//
//numalint:hotpath
func (c *CostModel) CopyCost(src, dst *mem.Frame, proc, pageSize int) sim.Time {
	words := sim.Time(pageSize / 4)
	return words * (c.FetchCost(src, proc) + c.StoreCost(dst, proc))
}

// ZeroCost returns the cost for processor proc to zero-fill a page.
//
//numalint:hotpath
func (c *CostModel) ZeroCost(dst *mem.Frame, proc, pageSize int) sim.Time {
	words := sim.Time(pageSize / 4)
	return words * c.StoreCost(dst, proc)
}

// EstimateMix returns the mean per-reference latency for processor proc
// against memory column col (a node index, or any negative value for the
// interleaved global memory), for a reference mix with the given store
// fraction. Bound models read the topology's latency matrix; unbound
// models fall back to the two-level constants, treating col == proc as
// local and any other non-negative column as remote.
func (c *CostModel) EstimateMix(proc, col int, storeFrac float64) sim.Time {
	var fetch, store sim.Time
	if t := c.topo; t != nil {
		fetch = t.FetchLatency(proc, t.Col(col))
		store = t.StoreLatency(proc, t.Col(col))
	} else {
		switch {
		case col < 0:
			fetch, store = c.GlobalFetch, c.GlobalStore
		case col == proc:
			fetch, store = c.LocalFetch, c.LocalStore
		default:
			fetch, store = c.RemoteFetch, c.RemoteStore
		}
	}
	return sim.Time(float64(fetch)*(1-storeFrac) + float64(store)*storeFrac)
}

// GOverL returns the paper's G/L ratio for the given store fraction of the
// reference mix: §2.2 reports 2.3 for pure fetches and about 2 for a mix
// with 45% stores. On a bound model the ratio is read from the topology's
// latency matrix (processor 0's interleave column over its home column),
// so the ACE value is derived from the same matrix the simulation charges.
func (c *CostModel) GOverL(storeFrac float64) float64 {
	var gf, gs, lf, ls sim.Time
	if t := c.topo; t != nil {
		home := t.Home(0)
		gf = t.FetchLatency(0, t.NNodes())
		gs = t.StoreLatency(0, t.NNodes())
		lf = t.FetchLatency(0, home)
		ls = t.StoreLatency(0, home)
	} else {
		gf, gs, lf, ls = c.GlobalFetch, c.GlobalStore, c.LocalFetch, c.LocalStore
	}
	g := float64(gf)*(1-storeFrac) + float64(gs)*storeFrac
	l := float64(lf)*(1-storeFrac) + float64(ls)*storeFrac
	return g / l
}

// Config describes one machine instance.
type Config struct {
	NProc        int      // processor modules (the ACE backplane allows up to 8)
	GlobalFrames int      // frames of global memory
	LocalFrames  int      // frames of local memory per node
	PageSize     int      // bytes; power of two
	Quantum      sim.Time // scheduling time slice between involuntary yields
	Cost         CostModel

	// Topology selects a registered machine shape by name ("4socket",
	// "mesh8", ...). Empty or "ace" builds the paper's two-level ACE from
	// the cost model's measured constants: one node per processor,
	// uncontended.
	Topology string
	// Topo, when non-nil, overrides Topology with an explicit spec (tests
	// and the fuzz suite build random machines this way).
	Topo *topology.Spec
}

// SpecForConfig resolves the configuration's topology spec: the Topo
// override if set, the registered shape named by Topology, or the ACE
// two-level spec built from the cost model's measured constants.
func SpecForConfig(cfg Config) (*topology.Spec, error) {
	if cfg.Topo != nil {
		return cfg.Topo, nil
	}
	if cfg.Topology == "" || cfg.Topology == "ace" {
		return topology.ACE(cfg.NProc, topology.ACELatencies{
			LocalFetch:  cfg.Cost.LocalFetch,
			LocalStore:  cfg.Cost.LocalStore,
			GlobalFetch: cfg.Cost.GlobalFetch,
			GlobalStore: cfg.Cost.GlobalStore,
			RemoteFetch: cfg.Cost.RemoteFetch,
			RemoteStore: cfg.Cost.RemoteStore,
		})
	}
	return topology.ByName(cfg.Topology, cfg.NProc)
}

// DefaultConfig returns a machine comparable to the paper's measurement
// configuration: 7 processors (Table 4), 16 MB of global memory and 8 MB of
// local memory per module, 4 KiB pages.
func DefaultConfig() Config {
	return Config{
		NProc:        7,
		GlobalFrames: 16 << 20 >> 12, // 16 MB
		LocalFrames:  8 << 20 >> 12,  // 8 MB per processor
		PageSize:     4096,
		Quantum:      200 * sim.Microsecond,
		Cost:         DefaultCostModel(),
	}
}

// MinLocalFrames is the smallest workable local memory per processor:
// one frame to hold an incoming copy and one for the reclaimer to turn
// over. Below it the manager could never place anything locally.
const MinLocalFrames = 2

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.NProc < 1 {
		return fmt.Errorf("ace: NProc %d < 1", c.NProc)
	}
	if c.PageSize < 16 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("ace: page size %d not a power of two >= 16", c.PageSize)
	}
	if c.GlobalFrames < 1 {
		return fmt.Errorf("ace: GlobalFrames %d < 1", c.GlobalFrames)
	}
	if c.LocalFrames < MinLocalFrames {
		return fmt.Errorf("ace: LocalFrames %d below working minimum %d", c.LocalFrames, MinLocalFrames)
	}
	if c.Quantum <= 0 {
		return fmt.Errorf("ace: quantum %v <= 0", c.Quantum)
	}
	return nil
}

// RefStats counts memory references by destination, per processor. The
// paper's α is estimated from run times; these true counts let the harness
// cross-check the timing-derived estimate.
type RefStats struct {
	LocalFetch  uint64
	LocalStore  uint64
	GlobalFetch uint64
	GlobalStore uint64
	RemoteFetch uint64
	RemoteStore uint64
}

// Total returns the total number of references.
func (r *RefStats) Total() uint64 {
	return r.LocalFetch + r.LocalStore + r.GlobalFetch + r.GlobalStore + r.RemoteFetch + r.RemoteStore
}

// LocalFraction returns the fraction of references that hit local memory.
func (r *RefStats) LocalFraction() float64 {
	tot := r.Total()
	if tot == 0 {
		return 0
	}
	return float64(r.LocalFetch+r.LocalStore) / float64(tot)
}

// Add accumulates other into r.
func (r *RefStats) Add(other RefStats) {
	r.LocalFetch += other.LocalFetch
	r.LocalStore += other.LocalStore
	r.GlobalFetch += other.GlobalFetch
	r.GlobalStore += other.GlobalStore
	r.RemoteFetch += other.RemoteFetch
	r.RemoteStore += other.RemoteStore
}

// Processor is one ACE processor module.
type Processor struct {
	id   int
	res  *sim.Resource
	refs RefStats
	// Faults counts page faults taken on this processor.
	Faults uint64
}

// ID returns the processor number.
func (p *Processor) ID() int { return p.id }

// Resource returns the sim resource representing the CPU's execution unit.
//
//numalint:hotpath
func (p *Processor) Resource() *sim.Resource { return p.res }

// Refs returns the processor's reference counters.
func (p *Processor) Refs() RefStats { return p.refs }

// Machine is an assembled machine: engine, processors, memories and MMUs,
// shaped by a topology spec (the ACE by default).
type Machine struct {
	cfg    Config
	spec   *topology.Spec
	topo   *topology.Topology
	engine *sim.Engine
	procs  []*Processor
	memory *mem.Memory
	mmus   []*mmu.MMU
	bus    *simtrace.Bus
}

// NewMachine builds a machine from cfg, reporting invalid configuration
// as an error the caller can propagate. Static, known-good configurations
// (tests, examples) may use MustMachine instead.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := SpecForConfig(cfg)
	if err != nil {
		return nil, err
	}
	if spec.NProcs() != cfg.NProc {
		return nil, fmt.Errorf("ace: topology %s has %d processors, config has %d", spec.Name(), spec.NProcs(), cfg.NProc)
	}
	m := &Machine{
		cfg:    cfg,
		spec:   spec,
		topo:   topology.New(spec),
		engine: sim.NewEngine(),
		memory: mem.NewMemory(spec.NNodes(), cfg.GlobalFrames, cfg.LocalFrames, cfg.PageSize),
		bus:    simtrace.NewBus(),
	}
	m.cfg.Cost.Bind(spec)
	m.engine.Bus = m.bus
	m.procs = make([]*Processor, cfg.NProc)
	m.mmus = make([]*mmu.MMU, cfg.NProc)
	for i := 0; i < cfg.NProc; i++ {
		m.procs[i] = &Processor{id: i, res: &sim.Resource{Name: fmt.Sprintf("cpu%d", i), ID: i}}
		m.mmus[i] = mmu.New(i)
	}
	return m, nil
}

// MustMachine builds a machine from a configuration that is known to be
// valid, panicking otherwise. For tests and static setups only; code with
// an error path should call NewMachine.
func MustMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Bus returns the machine's trace-event bus. The bus always exists; it is
// inert (and nearly free) until a sink is attached.
//
//numalint:hotpath
func (m *Machine) Bus() *simtrace.Bus { return m.bus }

// AttachSink connects a trace sink to the machine's bus; every
// instrumented layer (engine, kernel, NUMA manager, pmap, scheduler)
// starts emitting to it.
func (m *Machine) AttachSink(s simtrace.Sink) { m.bus.Attach(s) }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Cost returns the machine's cost model.
//
//numalint:hotpath
func (m *Machine) Cost() *CostModel { return &m.cfg.Cost }

// PageSize reports the machine page size in bytes.
//
//numalint:hotpath
func (m *Machine) PageSize() int { return m.cfg.PageSize }

// Engine returns the machine's simulation engine.
func (m *Machine) Engine() *sim.Engine { return m.engine }

// NProc reports the number of processors.
//
//numalint:hotpath
func (m *Machine) NProc() int { return len(m.procs) }

// NNodes reports the number of memory nodes. On the ACE every processor
// is its own node; other topologies home several processors per node.
//
//numalint:hotpath
func (m *Machine) NNodes() int { return m.spec.NNodes() }

// Home reports the node processor proc's local memory lives on.
//
//numalint:hotpath
func (m *Machine) Home(proc int) int { return m.spec.Home(proc) }

// NodeProcs returns the processors homed on node (the spec's own slice;
// do not mutate).
//
//numalint:hotpath
func (m *Machine) NodeProcs(node int) []int { return m.spec.NodeProcs(node) }

// Spec returns the machine's immutable topology spec.
func (m *Machine) Spec() *topology.Spec { return m.spec }

// Topo returns the machine's runtime topology state (link token buckets
// and contention counters).
//
//numalint:hotpath
func (m *Machine) Topo() *topology.Topology { return m.topo }

// Proc returns processor i.
//
//numalint:hotpath
func (m *Machine) Proc(i int) *Processor { return m.procs[i] }

// Memory returns the machine's physical memory.
//
//numalint:hotpath
func (m *Machine) Memory() *mem.Memory { return m.memory }

// MMU returns processor i's MMU.
//
//numalint:hotpath
func (m *Machine) MMU(i int) *mmu.MMU { return m.mmus[i] }

// PageShift returns log2 of the page size.
//
//numalint:hotpath
func (m *Machine) PageShift() uint {
	s := uint(0)
	for 1<<s < m.cfg.PageSize {
		s++
	}
	return s
}

// VPN returns the virtual page number of va.
//
//numalint:hotpath
func (m *Machine) VPN(va uint32) uint32 { return va >> m.PageShift() }

// PageOff returns va's offset within its page.
//
//numalint:hotpath
func (m *Machine) PageOff(va uint32) int { return int(va) & (m.cfg.PageSize - 1) }

// ChargeFetch charges th for a 32-bit fetch from frame f by processor proc
// and counts it. On contended topologies the fetch also pays any queueing
// delay on the interconnect route to f's node.
//
//numalint:hotpath
func (m *Machine) ChargeFetch(th *sim.Thread, proc int, f *mem.Frame) {
	c := &m.cfg.Cost
	th.Advance(c.FetchCost(f, proc))
	m.chargeLink(th, proc, f, 4, false)
	r := &m.procs[proc].refs
	switch {
	case f.Kind() == mem.Global:
		r.GlobalFetch++
	case f.Proc() == m.spec.Home(proc):
		r.LocalFetch++
	default:
		r.RemoteFetch++
	}
}

// ChargeStore charges th for a 32-bit store to frame f by processor proc and
// counts it. On contended topologies the store also pays any queueing
// delay on the interconnect route to f's node.
//
//numalint:hotpath
func (m *Machine) ChargeStore(th *sim.Thread, proc int, f *mem.Frame) {
	c := &m.cfg.Cost
	th.Advance(c.StoreCost(f, proc))
	m.chargeLink(th, proc, f, 4, false)
	r := &m.procs[proc].refs
	switch {
	case f.Kind() == mem.Global:
		r.GlobalStore++
	case f.Proc() == m.spec.Home(proc):
		r.LocalStore++
	default:
		r.RemoteStore++
	}
}

// chargeLink routes a transfer touching frame f over the interconnect and
// charges th for any queueing delay the busy links imposed — as system
// time for kernel page operations (sys true), user time otherwise. On
// uncontended topologies (the ACE) this is a single branch and no charge.
//
//numalint:hotpath
func (m *Machine) chargeLink(th *sim.Thread, proc int, f *mem.Frame, bytes int, sys bool) {
	t := m.topo
	if !t.Contended() {
		return
	}
	wait := t.ChargeTransfer(th.Clock(), proc, m.spec.Col(f.Proc()), bytes)
	if wait == 0 {
		return
	}
	if sys {
		th.AdvanceSys(wait)
	} else {
		th.Advance(wait)
	}
	if m.bus.Enabled() {
		m.bus.Emit(simtrace.Event{
			Kind: simtrace.KindLinkWait, Proc: int32(proc), Thread: int32(th.ID()),
			Time: int64(th.Clock()), Dur: int64(wait), Page: -1, Arg: int64(f.Proc()),
		})
	}
}

// ChargeCopySys charges th, as system time, for processor proc copying a
// full page from src to dst plus any interconnect queueing delay on the
// two transfers. All kernel page-copy sites (NUMA protocol moves, pmap's
// physical copy) charge through here so contention applies uniformly.
//
//numalint:hotpath
func (m *Machine) ChargeCopySys(th *sim.Thread, src, dst *mem.Frame, proc int) {
	th.AdvanceSys(m.cfg.Cost.CopyCost(src, dst, proc, m.cfg.PageSize))
	m.chargeLink(th, proc, src, m.cfg.PageSize, true)
	m.chargeLink(th, proc, dst, m.cfg.PageSize, true)
}

// ChargeZeroSys charges th, as system time, for processor proc
// zero-filling a page plus any interconnect queueing delay.
//
//numalint:hotpath
func (m *Machine) ChargeZeroSys(th *sim.Thread, dst *mem.Frame, proc int) {
	th.AdvanceSys(m.cfg.Cost.ZeroCost(dst, proc, m.cfg.PageSize))
	m.chargeLink(th, proc, dst, m.cfg.PageSize, true)
}

// PoolPressure is one node's local-memory frame accounting: capacity, the
// most frames ever simultaneously in use, and how many allocation
// attempts found the pool empty. Proc is the node index (on the ACE the
// two coincide).
type PoolPressure struct {
	Proc      int
	Frames    int
	HighWater int
	Exhausted uint64
}

// LocalPressure reports per-node local-memory frame accounting, in node
// order.
func (m *Machine) LocalPressure() []PoolPressure {
	out := make([]PoolPressure, m.NNodes())
	for i := range out {
		p := m.memory.Local(i)
		out[i] = PoolPressure{Proc: i, Frames: p.Size(), HighWater: p.HighWater(), Exhausted: p.Exhausted()}
	}
	return out
}

// TotalRefs sums reference statistics across all processors.
func (m *Machine) TotalRefs() RefStats {
	var sum RefStats
	for _, p := range m.procs {
		sum.Add(p.refs)
	}
	return sum
}

// TotalFaults sums page-fault counts across all processors.
func (m *Machine) TotalFaults() uint64 {
	var sum uint64
	for _, p := range m.procs {
		sum += p.Faults
	}
	return sum
}

// Topology renders the machine's memory architecture: the paper's
// Figure 1 for the ACE, the spec's generic diagram for other shapes.
func (m *Machine) Topology() string {
	if m.spec.Name() != "ace" {
		s := m.spec.Describe()
		s += fmt.Sprintf("\n  memory: %d KB global (interleaved), %d KB local per node\n",
			m.cfg.GlobalFrames*m.cfg.PageSize/1024, m.cfg.LocalFrames*m.cfg.PageSize/1024)
		return s
	}
	s := "ACE memory architecture (paper Figure 1)\n\n"
	for i := range m.procs {
		s += fmt.Sprintf("  cpu%-2d [ROMP-C + Rosetta-C MMU] -- local memory (%d KB)\n",
			i, m.cfg.LocalFrames*m.cfg.PageSize/1024)
	}
	s += fmt.Sprintf("    |\n    +== IPC bus (32-bit, 80 MB/s) == global memory (%d KB)\n",
		m.cfg.GlobalFrames*m.cfg.PageSize/1024)
	s += fmt.Sprintf("\n  latencies: local fetch %v store %v; global fetch %v store %v\n",
		m.cfg.Cost.LocalFetch, m.cfg.Cost.LocalStore, m.cfg.Cost.GlobalFetch, m.cfg.Cost.GlobalStore)
	return s
}
