// Package ace models the hardware of the IBM ACE Multiprocessor Workstation
// (§2.2 of the paper): a set of processor modules, each with a ROMP-class
// CPU, a Rosetta-class MMU and a local memory, connected to one or more
// global memories by the Inter-Processor Communication bus.
//
// The model is a timing model, not an ISA emulator. Applications execute
// real Go code for their computations and charge virtual time for each
// simulated memory reference and for counted instruction work, using the
// latencies the paper measured: 32-bit local fetch 0.65µs / store 0.84µs,
// global fetch 1.5µs / store 1.4µs.
package ace

import (
	"fmt"

	"numasim/internal/mem"
	"numasim/internal/mmu"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// CostModel gives the virtual-time cost of every charged operation.
type CostModel struct {
	// 32-bit memory reference latencies (§2.2).
	LocalFetch  sim.Time
	LocalStore  sim.Time
	GlobalFetch sim.Time
	GlobalStore sim.Time
	// Remote references (one processor into another's local memory, §4.4).
	// The ACE supports them but the paper's system deliberately does not use
	// them; they are modelled for the remote-reference extension experiment.
	RemoteFetch sim.Time
	RemoteStore sim.Time

	// Instruction costs. The ROMP has no hardware multiply/divide and no
	// floating point unit, which the paper leans on repeatedly ("division
	// is expensive on the ACE", "the high cost of integer multiplication").
	Instr sim.Time // simple register/ALU instruction
	Mul   sim.Time // integer multiply
	Div   sim.Time // integer divide
	FAdd  sim.Time // floating add/sub
	FMul  sim.Time // floating multiply
	FDiv  sim.Time // floating divide

	// Kernel overheads, charged as system time.
	FaultBase sim.Time // trap entry + machine-independent VM fault handling
	NUMAOp    sim.Time // one NUMA-manager decision/bookkeeping step
	MMUOp     sim.Time // dropping or changing one translation, possibly cross-CPU
}

// DefaultCostModel returns the paper's measured memory latencies and
// ROMP-plausible instruction costs.
func DefaultCostModel() CostModel {
	return CostModel{
		LocalFetch:  650 * sim.Nanosecond,
		LocalStore:  840 * sim.Nanosecond,
		GlobalFetch: 1500 * sim.Nanosecond,
		GlobalStore: 1400 * sim.Nanosecond,
		RemoteFetch: 1800 * sim.Nanosecond,
		RemoteStore: 1700 * sim.Nanosecond,

		Instr: 500 * sim.Nanosecond, // ~2 MIPS
		Mul:   5 * sim.Microsecond,  // software multiply
		Div:   15 * sim.Microsecond, // software divide
		FAdd:  1 * sim.Microsecond,  // FPA-assisted floating point
		FMul:  1500 * sim.Nanosecond,
		FDiv:  4 * sim.Microsecond,

		FaultBase: 500 * sim.Microsecond,
		NUMAOp:    50 * sim.Microsecond,
		MMUOp:     10 * sim.Microsecond,
	}
}

// FetchCost returns the cost of one 32-bit fetch from a frame of the given
// kind by processor proc.
//
//numalint:hotpath
func (c *CostModel) FetchCost(f *mem.Frame, proc int) sim.Time {
	if f.Kind() == mem.Global {
		return c.GlobalFetch
	}
	if f.Proc() == proc {
		return c.LocalFetch
	}
	return c.RemoteFetch
}

// StoreCost returns the cost of one 32-bit store to a frame of the given
// kind by processor proc.
//
//numalint:hotpath
func (c *CostModel) StoreCost(f *mem.Frame, proc int) sim.Time {
	if f.Kind() == mem.Global {
		return c.GlobalStore
	}
	if f.Proc() == proc {
		return c.LocalStore
	}
	return c.RemoteStore
}

// CopyCost returns the cost for processor proc to copy a full page from src
// to dst, word by word, at memory speed. This is what makes page movement
// expensive and is the dominant term in the paper's system times (§3.3).
//
//numalint:hotpath
func (c *CostModel) CopyCost(src, dst *mem.Frame, proc, pageSize int) sim.Time {
	words := sim.Time(pageSize / 4)
	return words * (c.FetchCost(src, proc) + c.StoreCost(dst, proc))
}

// ZeroCost returns the cost for processor proc to zero-fill a page.
//
//numalint:hotpath
func (c *CostModel) ZeroCost(dst *mem.Frame, proc, pageSize int) sim.Time {
	words := sim.Time(pageSize / 4)
	return words * c.StoreCost(dst, proc)
}

// GOverL returns the paper's G/L ratio for the given store fraction of the
// reference mix: §2.2 reports 2.3 for pure fetches and about 2 for a mix
// with 45% stores.
func (c *CostModel) GOverL(storeFrac float64) float64 {
	g := float64(c.GlobalFetch)*(1-storeFrac) + float64(c.GlobalStore)*storeFrac
	l := float64(c.LocalFetch)*(1-storeFrac) + float64(c.LocalStore)*storeFrac
	return g / l
}

// Config describes one machine instance.
type Config struct {
	NProc        int      // processor modules (the ACE backplane allows up to 8)
	GlobalFrames int      // frames of global memory
	LocalFrames  int      // frames of local memory per processor
	PageSize     int      // bytes; power of two
	Quantum      sim.Time // scheduling time slice between involuntary yields
	Cost         CostModel
}

// DefaultConfig returns a machine comparable to the paper's measurement
// configuration: 7 processors (Table 4), 16 MB of global memory and 8 MB of
// local memory per module, 4 KiB pages.
func DefaultConfig() Config {
	return Config{
		NProc:        7,
		GlobalFrames: 16 << 20 >> 12, // 16 MB
		LocalFrames:  8 << 20 >> 12,  // 8 MB per processor
		PageSize:     4096,
		Quantum:      200 * sim.Microsecond,
		Cost:         DefaultCostModel(),
	}
}

// MinLocalFrames is the smallest workable local memory per processor:
// one frame to hold an incoming copy and one for the reclaimer to turn
// over. Below it the manager could never place anything locally.
const MinLocalFrames = 2

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.NProc < 1 {
		return fmt.Errorf("ace: NProc %d < 1", c.NProc)
	}
	if c.PageSize < 16 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("ace: page size %d not a power of two >= 16", c.PageSize)
	}
	if c.GlobalFrames < 1 {
		return fmt.Errorf("ace: GlobalFrames %d < 1", c.GlobalFrames)
	}
	if c.LocalFrames < MinLocalFrames {
		return fmt.Errorf("ace: LocalFrames %d below working minimum %d", c.LocalFrames, MinLocalFrames)
	}
	if c.Quantum <= 0 {
		return fmt.Errorf("ace: quantum %v <= 0", c.Quantum)
	}
	return nil
}

// RefStats counts memory references by destination, per processor. The
// paper's α is estimated from run times; these true counts let the harness
// cross-check the timing-derived estimate.
type RefStats struct {
	LocalFetch  uint64
	LocalStore  uint64
	GlobalFetch uint64
	GlobalStore uint64
	RemoteFetch uint64
	RemoteStore uint64
}

// Total returns the total number of references.
func (r *RefStats) Total() uint64 {
	return r.LocalFetch + r.LocalStore + r.GlobalFetch + r.GlobalStore + r.RemoteFetch + r.RemoteStore
}

// LocalFraction returns the fraction of references that hit local memory.
func (r *RefStats) LocalFraction() float64 {
	tot := r.Total()
	if tot == 0 {
		return 0
	}
	return float64(r.LocalFetch+r.LocalStore) / float64(tot)
}

// Add accumulates other into r.
func (r *RefStats) Add(other RefStats) {
	r.LocalFetch += other.LocalFetch
	r.LocalStore += other.LocalStore
	r.GlobalFetch += other.GlobalFetch
	r.GlobalStore += other.GlobalStore
	r.RemoteFetch += other.RemoteFetch
	r.RemoteStore += other.RemoteStore
}

// Processor is one ACE processor module.
type Processor struct {
	id   int
	res  *sim.Resource
	refs RefStats
	// Faults counts page faults taken on this processor.
	Faults uint64
}

// ID returns the processor number.
func (p *Processor) ID() int { return p.id }

// Resource returns the sim resource representing the CPU's execution unit.
//
//numalint:hotpath
func (p *Processor) Resource() *sim.Resource { return p.res }

// Refs returns the processor's reference counters.
func (p *Processor) Refs() RefStats { return p.refs }

// Machine is an assembled ACE: engine, processors, memories and MMUs.
type Machine struct {
	cfg    Config
	engine *sim.Engine
	procs  []*Processor
	memory *mem.Memory
	mmus   []*mmu.MMU
	bus    *simtrace.Bus
}

// NewMachine builds a machine from cfg, reporting invalid configuration
// as an error the caller can propagate. Static, known-good configurations
// (tests, examples) may use MustMachine instead.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:    cfg,
		engine: sim.NewEngine(),
		memory: mem.NewMemory(cfg.NProc, cfg.GlobalFrames, cfg.LocalFrames, cfg.PageSize),
		bus:    simtrace.NewBus(),
	}
	m.engine.Bus = m.bus
	m.procs = make([]*Processor, cfg.NProc)
	m.mmus = make([]*mmu.MMU, cfg.NProc)
	for i := 0; i < cfg.NProc; i++ {
		m.procs[i] = &Processor{id: i, res: &sim.Resource{Name: fmt.Sprintf("cpu%d", i), ID: i}}
		m.mmus[i] = mmu.New(i)
	}
	return m, nil
}

// MustMachine builds a machine from a configuration that is known to be
// valid, panicking otherwise. For tests and static setups only; code with
// an error path should call NewMachine.
func MustMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Bus returns the machine's trace-event bus. The bus always exists; it is
// inert (and nearly free) until a sink is attached.
//
//numalint:hotpath
func (m *Machine) Bus() *simtrace.Bus { return m.bus }

// AttachSink connects a trace sink to the machine's bus; every
// instrumented layer (engine, kernel, NUMA manager, pmap, scheduler)
// starts emitting to it.
func (m *Machine) AttachSink(s simtrace.Sink) { m.bus.Attach(s) }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Cost returns the machine's cost model.
//
//numalint:hotpath
func (m *Machine) Cost() *CostModel { return &m.cfg.Cost }

// PageSize reports the machine page size in bytes.
//
//numalint:hotpath
func (m *Machine) PageSize() int { return m.cfg.PageSize }

// Engine returns the machine's simulation engine.
func (m *Machine) Engine() *sim.Engine { return m.engine }

// NProc reports the number of processors.
//
//numalint:hotpath
func (m *Machine) NProc() int { return len(m.procs) }

// Proc returns processor i.
//
//numalint:hotpath
func (m *Machine) Proc(i int) *Processor { return m.procs[i] }

// Memory returns the machine's physical memory.
//
//numalint:hotpath
func (m *Machine) Memory() *mem.Memory { return m.memory }

// MMU returns processor i's MMU.
//
//numalint:hotpath
func (m *Machine) MMU(i int) *mmu.MMU { return m.mmus[i] }

// PageShift returns log2 of the page size.
//
//numalint:hotpath
func (m *Machine) PageShift() uint {
	s := uint(0)
	for 1<<s < m.cfg.PageSize {
		s++
	}
	return s
}

// VPN returns the virtual page number of va.
//
//numalint:hotpath
func (m *Machine) VPN(va uint32) uint32 { return va >> m.PageShift() }

// PageOff returns va's offset within its page.
//
//numalint:hotpath
func (m *Machine) PageOff(va uint32) int { return int(va) & (m.cfg.PageSize - 1) }

// ChargeFetch charges th for a 32-bit fetch from frame f by processor proc
// and counts it.
//
//numalint:hotpath
func (m *Machine) ChargeFetch(th *sim.Thread, proc int, f *mem.Frame) {
	c := &m.cfg.Cost
	th.Advance(c.FetchCost(f, proc))
	r := &m.procs[proc].refs
	switch {
	case f.Kind() == mem.Global:
		r.GlobalFetch++
	case f.Proc() == proc:
		r.LocalFetch++
	default:
		r.RemoteFetch++
	}
}

// ChargeStore charges th for a 32-bit store to frame f by processor proc and
// counts it.
//
//numalint:hotpath
func (m *Machine) ChargeStore(th *sim.Thread, proc int, f *mem.Frame) {
	c := &m.cfg.Cost
	th.Advance(c.StoreCost(f, proc))
	r := &m.procs[proc].refs
	switch {
	case f.Kind() == mem.Global:
		r.GlobalStore++
	case f.Proc() == proc:
		r.LocalStore++
	default:
		r.RemoteStore++
	}
}

// PoolPressure is one local memory's frame accounting: capacity, the
// most frames ever simultaneously in use, and how many allocation
// attempts found the pool empty.
type PoolPressure struct {
	Proc      int
	Frames    int
	HighWater int
	Exhausted uint64
}

// LocalPressure reports per-processor local-memory frame accounting, in
// processor order.
func (m *Machine) LocalPressure() []PoolPressure {
	out := make([]PoolPressure, m.NProc())
	for i := range out {
		p := m.memory.Local(i)
		out[i] = PoolPressure{Proc: i, Frames: p.Size(), HighWater: p.HighWater(), Exhausted: p.Exhausted()}
	}
	return out
}

// TotalRefs sums reference statistics across all processors.
func (m *Machine) TotalRefs() RefStats {
	var sum RefStats
	for _, p := range m.procs {
		sum.Add(p.refs)
	}
	return sum
}

// TotalFaults sums page-fault counts across all processors.
func (m *Machine) TotalFaults() uint64 {
	var sum uint64
	for _, p := range m.procs {
		sum += p.Faults
	}
	return sum
}

// Topology renders the machine's memory architecture in the style of the
// paper's Figure 1.
func (m *Machine) Topology() string {
	s := "ACE memory architecture (paper Figure 1)\n\n"
	for i := range m.procs {
		s += fmt.Sprintf("  cpu%-2d [ROMP-C + Rosetta-C MMU] -- local memory (%d KB)\n",
			i, m.cfg.LocalFrames*m.cfg.PageSize/1024)
	}
	s += fmt.Sprintf("    |\n    +== IPC bus (32-bit, 80 MB/s) == global memory (%d KB)\n",
		m.cfg.GlobalFrames*m.cfg.PageSize/1024)
	s += fmt.Sprintf("\n  latencies: local fetch %v store %v; global fetch %v store %v\n",
		m.cfg.Cost.LocalFetch, m.cfg.Cost.LocalStore, m.cfg.Cost.GlobalFetch, m.cfg.Cost.GlobalStore)
	return s
}
