package ace

import (
	"math"
	"testing"

	"numasim/internal/mem"
	"numasim/internal/sim"
	"numasim/internal/topology"
)

// bindACE returns the default cost model bound to the default ACE spec.
func bindACE(t *testing.T, nproc int) (CostModel, *topology.Spec) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NProc = nproc
	spec, err := SpecForConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg.Cost
	c.Bind(spec)
	return c, spec
}

// TestBoundCostsEqualPublishedConstants: routing FetchCost/StoreCost
// through the ACE latency matrix yields exactly the Local/Global/Remote
// constants the unbound model charges — the two-level machine is a derived
// special case, not separate arithmetic.
func TestBoundCostsEqualPublishedConstants(t *testing.T) {
	const nproc = 4
	bound, _ := bindACE(t, nproc)
	unbound := DefaultCostModel()
	m := mem.NewMemory(nproc, 8, 8, 4096)
	frames := []*mem.Frame{m.Global().Frame(0)}
	for n := 0; n < nproc; n++ {
		frames = append(frames, m.Local(n).Frame(0))
	}
	for proc := 0; proc < nproc; proc++ {
		for _, f := range frames {
			if got, want := bound.FetchCost(f, proc), unbound.FetchCost(f, proc); got != want {
				t.Errorf("fetch cpu%d frame(proc %d): bound %v, unbound %v", proc, f.Proc(), got, want)
			}
			if got, want := bound.StoreCost(f, proc), unbound.StoreCost(f, proc); got != want {
				t.Errorf("store cpu%d frame(proc %d): bound %v, unbound %v", proc, f.Proc(), got, want)
			}
			if got, want := bound.CopyCost(frames[0], f, proc, 4096), unbound.CopyCost(frames[0], f, proc, 4096); got != want {
				t.Errorf("copy cpu%d -> frame(proc %d): bound %v, unbound %v", proc, f.Proc(), got, want)
			}
		}
	}
}

// TestGOverLBoundMatchesUnbound: the model ratio the evaluator feeds into
// the paper's equations is identical whether read from the matrix or the
// constants.
func TestGOverLBoundMatchesUnbound(t *testing.T) {
	bound, _ := bindACE(t, 7)
	unbound := DefaultCostModel()
	for _, frac := range []float64{0, 0.45, 1} {
		if got, want := bound.GOverL(frac), unbound.GOverL(frac); math.Abs(got-want) > 1e-12 {
			t.Errorf("GOverL(%.2f): bound %v, unbound %v", frac, got, want)
		}
	}
	if gl := bound.GOverL(0); math.Abs(gl-1500.0/650.0) > 1e-12 {
		t.Errorf("fetch-only G/L = %v, want 1500/650", gl)
	}
}

// TestEstimateMix: the mix estimate interpolates fetch and store latencies
// for local, remote and interleaved columns, bound and unbound alike.
func TestEstimateMix(t *testing.T) {
	bound, _ := bindACE(t, 3)
	unbound := DefaultCostModel()
	cases := []struct {
		col  int
		frac float64
		want sim.Time
	}{
		{0, 0, 650 * sim.Nanosecond},                 // local pure fetch
		{0, 1, 840 * sim.Nanosecond},                 // local pure store
		{1, 0.5, (1800 + 1700) / 2 * sim.Nanosecond}, // remote even mix
		{-1, 0.45, sim.Time(1500*0.55 + 1400*0.45)},  // interleave, §2.2's mix
	}
	for _, c := range cases {
		if got := bound.EstimateMix(0, c.col, c.frac); got != c.want {
			t.Errorf("bound EstimateMix(0, %d, %.2f) = %v, want %v", c.col, c.frac, got, c.want)
		}
		if got := unbound.EstimateMix(0, c.col, c.frac); got != c.want {
			t.Errorf("unbound EstimateMix(0, %d, %.2f) = %v, want %v", c.col, c.frac, got, c.want)
		}
	}
}

// TestSpecForConfigShapes: "" and "ace" produce the two-level spec, the
// registered names produce their shapes, Topo overrides everything, and a
// processor-count mismatch is rejected by NewMachine.
func TestSpecForConfigShapes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NProc = 4
	for _, name := range []string{"", "ace"} {
		cfg.Topology = name
		spec, err := SpecForConfig(cfg)
		if err != nil {
			t.Fatalf("topology %q: %v", name, err)
		}
		if spec.NNodes() != 4 || spec.Contended() {
			t.Errorf("topology %q: %d nodes contended=%v, want the 4-node uncontended ACE", name, spec.NNodes(), spec.Contended())
		}
	}
	cfg.Topology = "4socket"
	spec, err := SpecForConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spec.NNodes() != 4 || !spec.Contended() {
		t.Errorf("4socket: %d nodes contended=%v", spec.NNodes(), spec.Contended())
	}
	override, err := topology.Mesh8(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topo = override
	if spec, err = SpecForConfig(cfg); err != nil || spec != override {
		t.Errorf("Topo override not honored: %v, %v", spec, err)
	}
	// A spec whose processor count disagrees with the config must not build.
	bad := DefaultConfig()
	bad.NProc = 3
	wrong, err := topology.Mesh8(5)
	if err != nil {
		t.Fatal(err)
	}
	bad.Topo = wrong
	if _, err := NewMachine(bad); err == nil {
		t.Error("NewMachine accepted a spec with a mismatched processor count")
	}
}

// TestMachineTopologyAccessors: Home/NNodes/NodeProcs reflect the spec and
// the per-node memory pools match the node count.
func TestMachineTopologyAccessors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NProc = 6
	cfg.GlobalFrames, cfg.LocalFrames = 64, 16
	cfg.Topology = "4socket"
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNodes() != 4 || m.Memory().NProc() != 4 {
		t.Errorf("4socket machine: %d nodes, %d local pools", m.NNodes(), m.Memory().NProc())
	}
	for p := 0; p < 6; p++ {
		if got, want := m.Home(p), p%4; got != want {
			t.Errorf("Home(%d) = %d, want %d", p, got, want)
		}
	}
	if got := m.NodeProcs(1); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("NodeProcs(1) = %v, want [1 5]", got)
	}
	if m.Topo() == nil || m.Topo().Spec() != m.Spec() {
		t.Error("machine runtime topology does not wrap its spec")
	}
}
