package harness

import (
	"sort"
	"strings"
	"testing"
)

// TestRegistryLookup: lookup is case-insensitive and misses are reported.
func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"table3", "Table3", "TABLE3", "pressureSweep"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) missed", name)
		}
	}
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Error("Lookup invented an experiment")
	}
}

// TestRegistryNames: the name list is sorted, unique, and consistent with
// Lookup.
func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("names unsorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[strings.ToLower(n)] {
			t.Errorf("duplicate name %q", n)
		}
		seen[strings.ToLower(n)] = true
		e, ok := Lookup(n)
		if !ok {
			t.Errorf("listed name %q does not look up", n)
			continue
		}
		if e.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, e.Name())
		}
		if e.Describe() == "" {
			t.Errorf("%q has no description", n)
		}
	}
}

// TestTablesSequenceRegistered: every experiment the tables command prints
// by default must exist in the registry.
func TestTablesSequenceRegistered(t *testing.T) {
	for _, name := range TablesSequence {
		if _, ok := Lookup(name); !ok {
			t.Errorf("TablesSequence entry %q not registered", name)
		}
	}
}

// TestRegisterRejectsDuplicates: a duplicate registration is a programming
// error and must panic.
func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(expFunc{name: "Table3", describe: "dup", run: nil})
}

// TestRegistryExperimentsRun: every registered experiment runs end to end
// on a small configuration and renders non-empty output.
func TestRegistryExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry")
	}
	opts := Options{NProc: 3, Small: true, App: "Gfetch", PressureFrames: []int{8}}
	for _, name := range Names() {
		e, _ := Lookup(name)
		res, err := e.Run(opts)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Render() == "" {
			t.Errorf("%s rendered nothing", name)
		}
	}
}
