package harness

import (
	"fmt"
	"strings"

	"numasim/internal/numa"

	"numasim/internal/metrics"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/workloads"
)

// ---------------------------------------------------------------------
// E8: false sharing — the §4.2 Primes2 tuning experiment.
// ---------------------------------------------------------------------

// FalseSharingResult compares the untuned and tuned Primes2.
type FalseSharingResult struct {
	Untuned, Tuned metrics.Eval
}

// FalseSharing reproduces the §4.2 experiment: copying the divisors out of
// the writably-shared output vector into private memory raised Primes2's α
// from 0.66 to 1.00.
func FalseSharing(opts Options) (FalseSharingResult, error) {
	opts = opts.withDefaults()
	ev := opts.evaluator()
	variants := []string{"Primes2-untuned", "Primes2"}
	evals := make([]metrics.Eval, len(variants))
	err := opts.pool().Run(len(variants), func(i int) error {
		e, err := ev.Evaluate(func() (metrics.Runner, error) { return opts.instance(variants[i]) })
		if err != nil {
			return err
		}
		evals[i] = e
		return nil
	})
	if err != nil {
		return FalseSharingResult{}, err
	}
	return FalseSharingResult{Untuned: evals[0], Tuned: evals[1]}, nil
}

// Render formats the experiment.
func (r FalseSharingResult) Render() string {
	headers := []string{"Primes2 variant", "Tnuma", "alpha", "gamma", "local refs", "| paper alpha"}
	rows := [][]string{
		{"untuned (shared divisors)", fmtF(r.Untuned.Tnuma, 2), fmtF(r.Untuned.Alpha, 2),
			fmtF(r.Untuned.Gamma, 2), fmtF(r.Untuned.MeasuredLocalFrac, 2), "0.66"},
		{"tuned (private divisors)", fmtF(r.Tuned.Tnuma, 2), fmtF(r.Tuned.Alpha, 2),
			fmtF(r.Tuned.Gamma, 2), fmtF(r.Tuned.MeasuredLocalFrac, 2), "1.00"},
	}
	return "False sharing (§4.2): Primes2 before and after divisor privatization\n" +
		renderTable(headers, rows)
}

// ---------------------------------------------------------------------
// E9: pin-threshold sweep (§2.3.2's boot-time parameter).
// ---------------------------------------------------------------------

// SweepRow is one point of a parameter sweep. Times are virtual seconds
// (sim.Ticks).
type SweepRow struct {
	Param        string
	Tnuma, Snuma sim.Ticks
	Alpha, Gamma float64
	Pins, Moves  uint64
}

// ThresholdSweep measures a workload under varying move limits; limit<0
// selects the never-pin policy.
func ThresholdSweep(opts Options, app string, limits []int) ([]SweepRow, error) {
	opts = opts.withDefaults()
	cfg := opts.config()
	rows := make([]SweepRow, len(limits))
	err := opts.pool().Run(len(limits), func(i int) error {
		lim := limits[i]
		p := policy.NewThreshold(max(lim, 0))
		if lim < 0 {
			p = policy.NeverPin()
		}
		res, err := opts.runInstance(app, metrics.RunSpec{
			Config: cfg, Policy: p, Workers: opts.Workers, Sched: sched.Affinity,
		})
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%d", lim)
		if lim < 0 {
			name = "never-pin"
		}
		rows[i] = SweepRow{
			Param: name,
			Tnuma: res.UserSec, Snuma: res.SysSec,
			Pins: res.NUMA.Pins, Moves: res.NUMA.Moves,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderSweepCSV renders a sweep as CSV (one header line plus one line per
// point), ready for plotting.
func RenderSweepCSV(param string, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,user_sec,sys_sec,pins,moves\n", param)
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.6f,%.6f,%d,%d\n", r.Param, r.Tnuma, r.Snuma, r.Pins, r.Moves)
	}
	return b.String()
}

// RenderSweep renders a sweep result.
func RenderSweep(title, param string, rows []SweepRow) string {
	headers := []string{param, "Tuser", "Tsys", "pins", "moves"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{r.Param, fmtF(r.Tnuma, 3), fmtF(r.Snuma, 3),
			fmt.Sprintf("%d", r.Pins), fmt.Sprintf("%d", r.Moves)})
	}
	return title + "\n" + renderTable(headers, body)
}

// ---------------------------------------------------------------------
// E11: processor affinity (§4.7).
// ---------------------------------------------------------------------

// AffinityResult compares the paper's affinity scheduler against the
// original single-queue behaviour.
type AffinityResult struct {
	App                string
	Affinity, Hopping  metrics.RunResult
	AffLocal, HopLocal float64
}

// AffinityCompare runs a workload under both scheduling disciplines.
func AffinityCompare(opts Options, app string) (AffinityResult, error) {
	opts = opts.withDefaults()
	cfg := opts.config()
	modes := []sched.Mode{sched.Affinity, sched.NoAffinity}
	runs := make([]metrics.RunResult, len(modes))
	err := opts.pool().Run(len(modes), func(i int) error {
		pol, err := opts.policyOr(func() numa.Policy { return policy.NewDefault() })
		if err != nil {
			return err
		}
		res, err := opts.runInstance(app, metrics.RunSpec{
			Config: cfg, Policy: pol, Workers: opts.Workers, Sched: modes[i],
		})
		if err != nil {
			return err
		}
		runs[i] = res
		return nil
	})
	if err != nil {
		return AffinityResult{}, err
	}
	aff, hop := runs[0], runs[1]
	return AffinityResult{
		App: app, Affinity: aff, Hopping: hop,
		AffLocal: aff.Refs.LocalFraction(),
		HopLocal: hop.Refs.LocalFraction(),
	}, nil
}

// Render formats the comparison.
func (r AffinityResult) Render() string {
	headers := []string{"scheduler", "Tuser", "Tsys", "local refs", "moves", "pins"}
	rows := [][]string{
		{"affinity (paper §4.7)", fmtF(r.Affinity.UserSec, 3), fmtF(r.Affinity.SysSec, 3),
			fmtF(r.AffLocal, 3), fmt.Sprintf("%d", r.Affinity.NUMA.Moves), fmt.Sprintf("%d", r.Affinity.NUMA.Pins)},
		{"single queue (original)", fmtF(r.Hopping.UserSec, 3), fmtF(r.Hopping.SysSec, 3),
			fmtF(r.HopLocal, 3), fmt.Sprintf("%d", r.Hopping.NUMA.Moves), fmt.Sprintf("%d", r.Hopping.NUMA.Pins)},
	}
	return fmt.Sprintf("Processor affinity (§4.7) on %s\n", r.App) + renderTable(headers, rows)
}

// ---------------------------------------------------------------------
// E12: the Unix master (§4.6).
// ---------------------------------------------------------------------

// UnixMasterResult compares runs with and without the Unix-master effect.
type UnixMasterResult struct {
	App           string
	Off, On       metrics.RunResult
	OffP0, OnP0   uint64 // references made by processor 0
	OffLoc, OnLoc float64
}

// UnixMasterCompare runs a workload with syscalls funnelled to CPU 0.
func UnixMasterCompare(opts Options, app string) (UnixMasterResult, error) {
	opts = opts.withDefaults()
	cfg := opts.config()
	runs := make([]metrics.RunResult, 2)
	err := opts.pool().Run(2, func(i int) error {
		pol, err := opts.policyOr(func() numa.Policy { return policy.NewDefault() })
		if err != nil {
			return err
		}
		res, err := opts.runInstance(app, metrics.RunSpec{
			Config: cfg, Policy: pol, Workers: opts.Workers, Sched: sched.Affinity,
			UnixMast: i == 1,
		})
		if err != nil {
			return err
		}
		runs[i] = res
		return nil
	})
	if err != nil {
		return UnixMasterResult{}, err
	}
	off, on := runs[0], runs[1]
	return UnixMasterResult{
		App: app, Off: off, On: on,
		OffLoc: off.Refs.LocalFraction(), OnLoc: on.Refs.LocalFraction(),
	}, nil
}

// ---------------------------------------------------------------------
// Replication ablation: the paper's protocol replicates read-only pages;
// Li-style pure migration keeps a single copy. IMatMult, which
// "emphasizes the value of replicating data that is writable, but that is
// never written", shows the difference directly.
// ---------------------------------------------------------------------

// ReplicationResult compares runs with and without read replication.
type ReplicationResult struct {
	App           string
	With, Without metrics.RunResult
}

// ReplicationCompare measures a workload with replication on and off.
func ReplicationCompare(opts Options, app string) (ReplicationResult, error) {
	opts = opts.withDefaults()
	cfg := opts.config()
	runs := make([]metrics.RunResult, 2)
	err := opts.pool().Run(2, func(i int) error {
		pol, err := opts.policyOr(func() numa.Policy { return policy.NewDefault() })
		if err != nil {
			return err
		}
		res, err := opts.runInstance(app, metrics.RunSpec{
			Config: cfg, Policy: pol, Workers: opts.Workers, Sched: sched.Affinity,
			NoReplication: i == 1,
		})
		if err != nil {
			return err
		}
		runs[i] = res
		return nil
	})
	if err != nil {
		return ReplicationResult{}, err
	}
	return ReplicationResult{App: app, With: runs[0], Without: runs[1]}, nil
}

// Render formats the comparison.
func (r ReplicationResult) Render() string {
	headers := []string{"protocol", "Tuser", "Tsys", "copies", "pins"}
	rows := [][]string{
		{"replicate read-only (paper)", fmtF(r.With.UserSec, 3), fmtF(r.With.SysSec, 3),
			fmt.Sprintf("%d", r.With.NUMA.Copies), fmt.Sprintf("%d", r.With.NUMA.Pins)},
		{"single copy (migration only)", fmtF(r.Without.UserSec, 3), fmtF(r.Without.SysSec, 3),
			fmt.Sprintf("%d", r.Without.NUMA.Copies), fmt.Sprintf("%d", r.Without.NUMA.Pins)},
	}
	return fmt.Sprintf("Read replication ablation on %s\n", r.App) + renderTable(headers, rows)
}

// ---------------------------------------------------------------------
// §4.4 remote references: pragma-placed pages at a home processor versus
// automatic placement, on a producer with occasional consumers — the
// "data used frequently by one processor and infrequently by others" case.
// ---------------------------------------------------------------------

// RemoteResult compares automatic placement against a remote pragma.
type RemoteResult struct {
	Auto, Remote metrics.RunResult
}

// RemoteCompare runs the asymmetric-sharing probe twice.
func RemoteCompare(opts Options) (RemoteResult, error) {
	opts = opts.withDefaults()
	cfg := opts.config()
	runs := make([]metrics.RunResult, 2)
	err := opts.pool().Run(2, func(i int) error {
		res, err := metrics.Run(workloads.NewHomeData(0, 0, i == 1), metrics.RunSpec{
			Config: cfg, Policy: policy.NewPragma(nil), Workers: opts.Workers, Sched: sched.Affinity,
		})
		if err != nil {
			return err
		}
		runs[i] = res
		return nil
	})
	if err != nil {
		return RemoteResult{}, err
	}
	return RemoteResult{Auto: runs[0], Remote: runs[1]}, nil
}

// Render formats the comparison.
func (r RemoteResult) Render() string {
	headers := []string{"placement", "Tuser", "Tsys", "moves", "pins"}
	rows := [][]string{
		{"automatic (threshold)", fmtF(r.Auto.UserSec, 3), fmtF(r.Auto.SysSec, 3),
			fmt.Sprintf("%d", r.Auto.NUMA.Moves), fmt.Sprintf("%d", r.Auto.NUMA.Pins)},
		{"remote pragma (§4.4)", fmtF(r.Remote.UserSec, 3), fmtF(r.Remote.SysSec, 3),
			fmt.Sprintf("%d", r.Remote.NUMA.Moves), fmt.Sprintf("%d", r.Remote.NUMA.Pins)},
	}
	return "Remote references (§4.4) on an asymmetric producer/consumer\n" + renderTable(headers, rows)
}

// ---------------------------------------------------------------------
// Policy comparison: the paper's never-reconsider Threshold against the
// §5 Reconsider extension and a PLATINUM-style freeze/defrost policy, on
// a workload whose sharing pattern changes between phases.
// ---------------------------------------------------------------------

// PolicyRow is one policy's result on the phase-change probe.
type PolicyRow struct {
	Policy    string
	UserSec   sim.Ticks
	SysSec    sim.Ticks
	LocalFrac float64
	Pins      uint64
}

// PolicyCompare runs the Phased probe under several placement policies.
func PolicyCompare(opts Options) ([]PolicyRow, error) {
	opts = opts.withDefaults()
	cfg := opts.config()
	pols := []numa.Policy{
		policy.NewDefault(),
		policy.NewReconsider(policy.DefaultThreshold, 8),
		policy.NewFreezeDefrost(0, 0),
	}
	rows := make([]PolicyRow, len(pols))
	err := opts.pool().Run(len(pols), func(i int) error {
		pol := pols[i]
		res, err := metrics.Run(workloads.NewPhased(0, 0, 0), metrics.RunSpec{
			Config: cfg, Policy: pol, Workers: opts.Workers, Sched: sched.Affinity,
		})
		if err != nil {
			return err
		}
		rows[i] = PolicyRow{
			Policy:    pol.Name(),
			UserSec:   res.UserSec,
			SysSec:    res.SysSec,
			LocalFrac: res.Refs.LocalFraction(),
			Pins:      res.NUMA.Pins,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderPolicyCompare formats the comparison.
func RenderPolicyCompare(rows []PolicyRow) string {
	headers := []string{"policy", "Tuser", "Tsys", "local refs", "pins"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{r.Policy, fmtF(r.UserSec, 3), fmtF(r.SysSec, 3),
			fmtF(r.LocalFrac, 3), fmt.Sprintf("%d", r.Pins)})
	}
	return "Placement policies on a phase-changing workload (shared phase, then partitioned phase)" + "\n" +
		renderTable(headers, body)
}

// ---------------------------------------------------------------------
// Page-size and G/L sweeps (model ablations).
// ---------------------------------------------------------------------

// PageSizeSweep measures a workload at several page sizes.
func PageSizeSweep(opts Options, app string, sizes []int) ([]SweepRow, error) {
	opts = opts.withDefaults()
	rows := make([]SweepRow, len(sizes))
	err := opts.pool().Run(len(sizes), func(i int) error {
		cfg := opts.config()
		cfg.PageSize = sizes[i]
		pol, err := opts.policyOr(func() numa.Policy { return policy.NewDefault() })
		if err != nil {
			return err
		}
		res, err := opts.runInstance(app, metrics.RunSpec{
			Config: cfg, Policy: pol, Workers: opts.Workers, Sched: sched.Affinity,
		})
		if err != nil {
			return err
		}
		rows[i] = SweepRow{
			Param: fmt.Sprintf("%d", sizes[i]),
			Tnuma: res.UserSec, Snuma: res.SysSec,
			Pins: res.NUMA.Pins, Moves: res.NUMA.Moves,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// GLSweep measures a workload with the global-memory latencies scaled by
// the given factors (exploring machines with different G/L ratios).
func GLSweep(opts Options, app string, factors []float64) ([]SweepRow, error) {
	opts = opts.withDefaults()
	rows := make([]SweepRow, len(factors))
	err := opts.pool().Run(len(factors), func(i int) error {
		f := factors[i]
		cfg := opts.config()
		cfg.Cost.GlobalFetch = sim.Time(float64(cfg.Cost.GlobalFetch) * f)
		cfg.Cost.GlobalStore = sim.Time(float64(cfg.Cost.GlobalStore) * f)
		pol, err := opts.policyOr(func() numa.Policy { return policy.NewDefault() })
		if err != nil {
			return err
		}
		res, err := opts.runInstance(app, metrics.RunSpec{
			Config: cfg, Policy: pol, Workers: opts.Workers, Sched: sched.Affinity,
		})
		if err != nil {
			return err
		}
		rows[i] = SweepRow{
			Param: fmt.Sprintf("%.2f", f),
			Tnuma: res.UserSec, Snuma: res.SysSec,
			Pins: res.NUMA.Pins, Moves: res.NUMA.Moves,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// QuantumSweep measures sensitivity to the scheduling quantum (an artifact
// knob of the simulation: finer quanta interleave processors more).
func QuantumSweep(opts Options, app string, quanta []sim.Time) ([]SweepRow, error) {
	opts = opts.withDefaults()
	rows := make([]SweepRow, len(quanta))
	err := opts.pool().Run(len(quanta), func(i int) error {
		q := quanta[i]
		cfg := opts.config()
		cfg.Quantum = q
		pol, err := opts.policyOr(func() numa.Policy { return policy.NewDefault() })
		if err != nil {
			return err
		}
		res, err := opts.runInstance(app, metrics.RunSpec{
			Config: cfg, Policy: pol, Workers: opts.Workers, Sched: sched.Affinity,
		})
		if err != nil {
			return err
		}
		rows[i] = SweepRow{
			Param: q.String(),
			Tnuma: res.UserSec, Snuma: res.SysSec,
			Pins: res.NUMA.Pins, Moves: res.NUMA.Moves,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
