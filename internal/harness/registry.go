package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Result is a finished experiment ready to print.
type Result interface {
	// Render formats the result as the plain-text table(s) the command-line
	// tools print.
	Render() string
}

// CSVResult is implemented by results that also have a machine-readable
// form (one header line plus one line per row, ready for plotting).
type CSVResult interface {
	Result
	RenderCSV() string
}

// Experiment is one reproducible experiment: a named recipe that turns
// Options into a Result. Implementations must be stateless — Run may be
// called concurrently and repeatedly.
type Experiment interface {
	// Name is the registry key (matched case-insensitively).
	Name() string
	// Describe is a one-line summary for usage messages.
	Describe() string
	// Run executes the experiment.
	Run(opts Options) (Result, error)
}

// registry maps lowercased experiment names to experiments. It is
// populated by init and read-only afterwards, so lookups need no locking.
var registry = map[string]Experiment{}

// Register adds an experiment to the registry; it panics on a duplicate
// name, which is a programming error.
func Register(e Experiment) {
	key := strings.ToLower(e.Name())
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("harness: duplicate experiment %q", e.Name()))
	}
	registry[key] = e
}

// Lookup finds an experiment by name, case-insensitively.
func Lookup(name string) (Experiment, bool) {
	e, ok := registry[strings.ToLower(name)]
	return e, ok
}

// Names lists the registered experiment names, sorted.
func Names() []string {
	keys := make([]string, 0, len(registry))
	for key := range registry {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	names := make([]string, len(keys))
	for i, key := range keys {
		names[i] = registry[key].Name()
	}
	return names
}

// TablesSequence is the document order in which the tables command prints
// the full evaluation: the paper's figures and tables first, then the
// extensions.
var TablesSequence = []string{
	"figure1", "figure2",
	"table1", "table2", "table3", "table4",
	"falsesharing",
}

// expFunc is the ordinary way to build an experiment: a name, a one-line
// description, and a run function.
type expFunc struct {
	name, describe string
	run            func(Options) (Result, error)
}

func (e expFunc) Name() string                     { return e.name }
func (e expFunc) Describe() string                 { return e.describe }
func (e expFunc) Run(opts Options) (Result, error) { return e.run(opts) }

// stringResult adapts a pre-rendered string.
type stringResult string

func (s stringResult) Render() string { return string(s) }

// table3Result carries Table 3 rows with both renderings.
type table3Result []Table3Row

func (r table3Result) Render() string    { return RenderTable3(r) }
func (r table3Result) RenderCSV() string { return RenderTable3CSV(r) }

// table4Result carries Table 4 rows with both renderings.
type table4Result []Table4Row

func (r table4Result) Render() string    { return RenderTable4(r) }
func (r table4Result) RenderCSV() string { return RenderTable4CSV(r) }

// sweepResult carries parameter-sweep rows plus their table title and
// parameter column name.
type sweepResult struct {
	title, param string
	rows         []SweepRow
}

func (r sweepResult) Render() string    { return RenderSweep(r.title, r.param, r.rows) }
func (r sweepResult) RenderCSV() string { return RenderSweepCSV(r.param, r.rows) }

// pressureResult carries a memory-pressure sweep.
type pressureResult []PressureRow

func (r pressureResult) Render() string    { return RenderPressure(r) }
func (r pressureResult) RenderCSV() string { return RenderPressureCSV(r) }

// availResult carries an availability sweep.
type availResult []AvailRow

func (r availResult) Render() string    { return RenderAvail(r) }
func (r availResult) RenderCSV() string { return RenderAvailCSV(r) }

// policyResult carries the policy-comparison rows.
type policyResult []PolicyRow

func (r policyResult) Render() string { return RenderPolicyCompare(r) }

// appOr returns opts.App, or fallback when no application was chosen.
func appOr(opts Options, fallback string) string {
	if opts.App != "" {
		return opts.App
	}
	return fallback
}

func init() {
	Register(expFunc{"figure1", "machine topology diagram (Figure 1)",
		func(opts Options) (Result, error) {
			s, err := Figure1(opts)
			return stringResult(s), err
		}})
	Register(expFunc{"figure2", "software architecture diagram (Figure 2)",
		func(opts Options) (Result, error) {
			return stringResult(Figure2()), nil
		}})
	Register(expFunc{"table1", "NUMA manager read-fault actions (Table 1)",
		func(opts Options) (Result, error) {
			s, err := ProtocolTable(false)
			return stringResult(s), err
		}})
	Register(expFunc{"table2", "NUMA manager write-fault actions (Table 2)",
		func(opts Options) (Result, error) {
			s, err := ProtocolTable(true)
			return stringResult(s), err
		}})
	Register(expFunc{"table3", "user times and model parameters (Table 3)",
		func(opts Options) (Result, error) {
			rows, err := Table3(opts)
			return table3Result(rows), err
		}})
	Register(expFunc{"table4", "system-time overhead analysis (Table 4)",
		func(opts Options) (Result, error) {
			rows, err := Table4(opts)
			return table4Result(rows), err
		}})
	Register(expFunc{"falsesharing", "Primes2 false-sharing tuning (§4.2)",
		func(opts Options) (Result, error) {
			r, err := FalseSharing(opts)
			return r, err
		}})
	Register(expFunc{"thresholdsweep", "pin-threshold sweep (§2.3.2 boot-time parameter)",
		func(opts Options) (Result, error) {
			app := appOr(opts, "IMatMult")
			rows, err := ThresholdSweep(opts, app, []int{0, 1, 2, 4, 8, 16, -1})
			title := fmt.Sprintf("Pin-threshold sweep on %s", app)
			return sweepResult{title, "threshold", rows}, err
		}})
	Register(expFunc{"pressuresweep", "slowdown under shrinking local memory",
		func(opts Options) (Result, error) {
			// With no -app, sweep the paper's whole application mix.
			var apps []string
			if opts.App != "" {
				apps = []string{opts.App}
			}
			rows, err := PressureSweepAll(opts, apps, opts.PressureFrames)
			return pressureResult(rows), err
		}})
	Register(expFunc{"affinity", "processor-affinity scheduling ablation (§4.7)",
		func(opts Options) (Result, error) {
			r, err := AffinityCompare(opts, appOr(opts, "IMatMult"))
			return r, err
		}})
	Register(expFunc{"replication", "read-replication ablation (Li-style migration)",
		func(opts Options) (Result, error) {
			r, err := ReplicationCompare(opts, appOr(opts, "IMatMult"))
			return r, err
		}})
	Register(expFunc{"remote", "remote-reference pragma comparison (§4.4)",
		func(opts Options) (Result, error) {
			r, err := RemoteCompare(opts)
			return r, err
		}})
	Register(expFunc{"policycompare", "threshold vs reconsider vs freeze/defrost",
		func(opts Options) (Result, error) {
			rows, err := PolicyCompare(opts)
			return policyResult(rows), err
		}})
	Register(expFunc{"availability", "degradation under node/link failure schedules",
		func(opts Options) (Result, error) {
			// With no -app, sweep the whole mix plus the Zipf probe.
			var apps []string
			if opts.App != "" {
				apps = []string{opts.App}
			}
			rows, err := AvailabilitySweep(opts, apps)
			return availResult(rows), err
		}})
	Register(expFunc{"tournament", "policy zoo x workloads x topologies, ranked",
		func(opts Options) (Result, error) {
			r, err := Tournament(opts)
			return r, err
		}})
}

// Compile-time checks that experiment results satisfy the interfaces the
// CLIs rely on.
var (
	_ Result    = FalseSharingResult{}
	_ Result    = AffinityResult{}
	_ Result    = ReplicationResult{}
	_ Result    = RemoteResult{}
	_ CSVResult = table3Result(nil)
	_ CSVResult = table4Result(nil)
	_ CSVResult = sweepResult{}
	_ CSVResult = pressureResult{}
	_ CSVResult = availResult{}
	_ CSVResult = TournamentResult{}
)
