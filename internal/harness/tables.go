package harness

import (
	"fmt"
	"strings"

	"numasim/internal/ace"
	"numasim/internal/metrics"
	"numasim/internal/mmu"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sim"
)

// ---------------------------------------------------------------------
// Tables 1 and 2: the NUMA manager's action matrices, derived from the
// implementation itself by driving each (policy decision, page state)
// cell on a probe machine and recording the actions the manager performs.
// ---------------------------------------------------------------------

// protoCell is one derived table cell.
type protoCell struct {
	Actions  []string
	NewState numa.State
}

// deriveProtocolTable exercises the NUMA manager for every cell of the
// paper's Table 1 (write=false) or Table 2 (write=true).
func deriveProtocolTable(write bool) (map[string]protoCell, error) {
	states := []string{"read-only", "global-writable", "lw-own", "lw-other"}
	decisions := []numa.Location{numa.Local, numa.Global}
	out := make(map[string]protoCell)
	for _, dec := range decisions {
		for _, st := range states {
			cfg := ace.DefaultConfig()
			cfg.NProc = 3
			cfg.GlobalFrames = 16
			cfg.LocalFrames = 16
			machine, err := ace.NewMachine(cfg)
			if err != nil {
				return nil, err
			}
			forced := &policy.Forced{Answer: numa.Local}
			mgr := numa.NewManager(machine, forced)
			var cell protoCell
			var runErr error
			machine.Engine().Spawn("probe", 0, func(th *sim.Thread) {
				pg, err := mgr.NewPage()
				if err != nil {
					runErr = err
					return
				}
				switch st {
				case "read-only":
					mgr.Access(th, pg, 1, false, mmu.ProtReadWrite)
					mgr.Access(th, pg, 2, false, mmu.ProtReadWrite)
				case "global-writable":
					forced.Answer = numa.Global
					mgr.Access(th, pg, 1, true, mmu.ProtReadWrite)
				case "lw-own":
					mgr.Access(th, pg, 0, true, mmu.ProtReadWrite)
				case "lw-other":
					mgr.Access(th, pg, 1, true, mmu.ProtReadWrite)
				}
				var actions []string
				mgr.SetActionHook(func(a string) { actions = append(actions, a) })
				forced.Answer = dec
				mgr.Access(th, pg, 0, write, mmu.ProtReadWrite)
				mgr.SetActionHook(nil)
				cell = protoCell{Actions: actions, NewState: pg.State()}
			})
			if err := machine.Engine().Run(); err != nil {
				return nil, err
			}
			if runErr != nil {
				return nil, runErr
			}
			out[dec.String()+"/"+st] = cell
		}
	}
	return out, nil
}

// ProtocolTable renders the paper's Table 1 (write=false) or Table 2
// (write=true) as derived from the implementation.
func ProtocolTable(write bool) (string, error) {
	cells, err := deriveProtocolTable(write)
	if err != nil {
		return "", err
	}
	kind, no := "Read", 1
	if write {
		kind, no = "Write", 2
	}
	headers := []string{"Policy Decision", "Read-Only", "Global-Writable", "LW on own node", "LW on other node"}
	keys := []string{"read-only", "global-writable", "lw-own", "lw-other"}
	var rows [][]string
	for _, dec := range []string{"LOCAL", "GLOBAL"} {
		row := []string{dec}
		for _, k := range keys {
			c := cells[dec+"/"+k]
			acts := strings.Join(c.Actions, "; ")
			if acts == "" {
				acts = "no action"
			}
			row = append(row, fmt.Sprintf("%s -> %s", acts, c.NewState))
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Table %d: NUMA Manager Actions for %s Requests (derived from implementation)\n", no, kind)
	return title + renderTable(headers, rows), nil
}

// ---------------------------------------------------------------------
// Table 3: user times and model parameters for the application mix.
// ---------------------------------------------------------------------

// PaperRow3 is a published Table 3 row.
type PaperRow3 struct {
	Tglobal, Tnuma, Tlocal float64
	Alpha                  float64 // <0 means "na"
	Beta, Gamma            float64
}

// PaperTable3 is the paper's Table 3, for side-by-side reporting.
var PaperTable3 = map[string]PaperRow3{
	"ParMult":  {67.4, 67.4, 67.3, -1, 0.00, 1.00},
	"Gfetch":   {60.2, 60.2, 26.5, 0, 1.0, 2.27},
	"IMatMult": {82.1, 69.0, 68.2, 0.94, 0.26, 1.01},
	"Primes1":  {18502.2, 17413.9, 17413.3, 1.0, 0.06, 1.00},
	"Primes2":  {5754.3, 4972.9, 4968.9, 0.99, 0.16, 1.00},
	"Primes3":  {39.1, 37.4, 28.8, 0.17, 0.36, 1.30},
	"FFT":      {687.4, 449.0, 438.4, 0.96, 0.56, 1.02},
	"PlyTrace": {56.9, 38.8, 38.0, 0.96, 0.50, 1.02},
}

// Table3Apps lists the applications in the paper's row order.
var Table3Apps = []string{"ParMult", "Gfetch", "IMatMult", "Primes1", "Primes2", "Primes3", "FFT", "PlyTrace"}

// Table3Row is one measured Table 3 row. Err carries a failed run's
// summary when the sweep continues past failures (partial results).
type Table3Row struct {
	App   string
	Eval  metrics.Eval
	Paper PaperRow3
	Err   string
}

// Table3Single evaluates one application of Table 3.
func Table3Single(opts Options, app string) (Table3Row, error) {
	opts = opts.withDefaults()
	ev := opts.evaluator()
	e, err := ev.Evaluate(func() (metrics.Runner, error) { return opts.instance(app) })
	if err != nil {
		return Table3Row{}, err
	}
	return Table3Row{App: app, Eval: e, Paper: PaperTable3[app]}, nil
}

// Table3 regenerates the paper's Table 3 (E5). The per-application rows
// are independent simulations; they run on the options' worker pool and
// land in the paper's row order regardless of completion order. Under a
// supervisor (timeout/retry/repro-dir) failed applications become
// error-annotated rows and the rest of the table still renders.
func Table3(opts Options) ([]Table3Row, error) {
	opts = opts.withDefaults()
	rows := make([]Table3Row, len(Table3Apps))
	errs := opts.pool().RunAll(len(Table3Apps), func(i int) error {
		return opts.supervise("table3-"+Table3Apps[i], func(o Options) error {
			row, err := Table3Single(o, Table3Apps[i])
			if err != nil {
				return err
			}
			rows[i] = row
			return nil
		})
	})
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !opts.keepGoing() {
			return nil, err
		}
		rows[i] = Table3Row{App: Table3Apps[i], Err: err.Error()}
	}
	return rows, nil
}

// RenderTable3 renders measured rows with the paper's numbers alongside.
func RenderTable3(rows []Table3Row) string {
	headers := []string{"Application", "Tglobal", "Tnuma", "Tlocal", "alpha", "beta", "gamma",
		"| paper:", "alpha", "beta", "gamma"}
	var body [][]string
	var fails []failedRun
	for _, r := range rows {
		if r.Err != "" {
			fails = append(fails, failedRun{r.App, r.Err})
			continue
		}
		alpha := fmtF(r.Eval.Alpha, 2)
		if r.App == "ParMult" {
			alpha = "na"
		}
		pAlpha := "na"
		if r.Paper.Alpha >= 0 {
			pAlpha = fmtF(r.Paper.Alpha, 2)
		}
		body = append(body, []string{
			r.App,
			fmtF(r.Eval.Tglobal, 2), fmtF(r.Eval.Tnuma, 2), fmtF(r.Eval.Tlocal, 2),
			alpha, fmtF(r.Eval.Beta, 2), fmtF(r.Eval.Gamma, 2),
			"|", pAlpha, fmtF(r.Paper.Beta, 2), fmtF(r.Paper.Gamma, 2),
		})
	}
	return "Table 3: measured user times in (virtual) seconds and computed model parameters\n" +
		renderTable(headers, body) + renderFailures(fails)
}

// RenderTable3CSV renders Table 3 as CSV for plotting.
func RenderTable3CSV(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("app,t_global,t_numa,t_local,alpha,beta,gamma,paper_alpha,paper_beta,paper_gamma\n")
	for _, r := range rows {
		if r.Err != "" {
			continue
		}
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			r.App, r.Eval.Tglobal, r.Eval.Tnuma, r.Eval.Tlocal,
			r.Eval.Alpha, r.Eval.Beta, r.Eval.Gamma,
			r.Paper.Alpha, r.Paper.Beta, r.Paper.Gamma)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table 4: system time overhead of NUMA management.
// ---------------------------------------------------------------------

// PaperRow4 is a published Table 4 row (7-processor runs).
type PaperRow4 struct {
	Snuma, Sglobal, DeltaS, Tnuma float64
	DeltaPct                      float64
}

// PaperTable4 is the paper's Table 4.
var PaperTable4 = map[string]PaperRow4{
	"IMatMult": {4.5, 1.2, 3.3, 82.1, 4.0},
	"Primes1":  {1.4, 2.3, -1, 17413.9, 0},
	"Primes2":  {29.9, 8.5, 21.4, 4972.9, 0.4},
	"Primes3":  {11.2, 1.9, 9.3, 37.4, 24.9},
	"FFT":      {21.1, 10.0, 11.1, 449.0, 2.5},
}

// Table4Apps lists the Table 4 applications in row order.
var Table4Apps = []string{"IMatMult", "Primes1", "Primes2", "Primes3", "FFT"}

// Table4Row is one measured Table 4 row. Times are virtual seconds
// (sim.Ticks); DeltaPct is dimensionless. Err carries a failed run's
// summary when the sweep continues past failures (partial results).
type Table4Row struct {
	App                           string
	Snuma, Sglobal, DeltaS, Tnuma sim.Ticks
	DeltaPct                      float64
	Paper                         PaperRow4
	Err                           string
}

// Table4Single evaluates one application of Table 4.
func Table4Single(opts Options, app string) (Table4Row, error) {
	opts = opts.withDefaults()
	ev := opts.evaluator()
	e, err := ev.Evaluate(func() (metrics.Runner, error) { return opts.instance(app) })
	if err != nil {
		return Table4Row{}, err
	}
	r := Table4Row{
		App:     app,
		Snuma:   e.Snuma,
		Sglobal: e.Sglobal,
		DeltaS:  e.DeltaS,
		Tnuma:   e.Tnuma,
		Paper:   PaperTable4[app],
	}
	if e.Tnuma > 0 {
		r.DeltaPct = 100 * float64(e.DeltaS) / float64(e.Tnuma)
	}
	return r, nil
}

// Table4 regenerates the paper's Table 4 (E6): total system time for runs
// on NProc processors. Rows run on the options' worker pool; under a
// supervisor, failed applications become error-annotated rows and the
// rest of the table still renders.
func Table4(opts Options) ([]Table4Row, error) {
	opts = opts.withDefaults()
	rows := make([]Table4Row, len(Table4Apps))
	errs := opts.pool().RunAll(len(Table4Apps), func(i int) error {
		return opts.supervise("table4-"+Table4Apps[i], func(o Options) error {
			row, err := Table4Single(o, Table4Apps[i])
			if err != nil {
				return err
			}
			rows[i] = row
			return nil
		})
	})
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !opts.keepGoing() {
			return nil, err
		}
		rows[i] = Table4Row{App: Table4Apps[i], Err: err.Error()}
	}
	return rows, nil
}

// RenderTable4 renders measured rows with the paper's numbers alongside.
func RenderTable4(rows []Table4Row) string {
	headers := []string{"Application", "Snuma", "Sglobal", "dS", "Tnuma", "dS/Tnuma",
		"| paper:", "Snuma", "Sglobal", "dS/Tnuma"}
	var body [][]string
	var fails []failedRun
	for _, r := range rows {
		if r.Err != "" {
			fails = append(fails, failedRun{r.App, r.Err})
			continue
		}
		ds := fmtF(r.DeltaS, 2)
		pct := fmt.Sprintf("%.1f%%", r.DeltaPct)
		if r.DeltaS < 0 {
			pct = "na"
		}
		body = append(body, []string{
			r.App, fmtF(r.Snuma, 2), fmtF(r.Sglobal, 2), ds, fmtF(r.Tnuma, 2), pct,
			"|", fmtF(r.Paper.Snuma, 1), fmtF(r.Paper.Sglobal, 1),
			fmt.Sprintf("%.1f%%", r.Paper.DeltaPct),
		})
	}
	return "Table 4: total system time (virtual seconds)\n" + renderTable(headers, body) +
		renderFailures(fails)
}

// ---------------------------------------------------------------------
// Figures 1 and 2: architecture diagrams.
// ---------------------------------------------------------------------

// RenderTable4CSV renders Table 4 as CSV for plotting.
func RenderTable4CSV(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("app,s_numa,s_global,delta_s,t_numa,delta_pct\n")
	for _, r := range rows {
		if r.Err != "" {
			continue
		}
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f,%.4f,%.2f\n",
			r.App, r.Snuma, r.Sglobal, r.DeltaS, r.Tnuma, r.DeltaPct)
	}
	return b.String()
}

// Figure1 renders the ACE memory architecture (E1).
func Figure1(opts Options) (string, error) {
	opts = opts.withDefaults()
	machine, err := ace.NewMachine(opts.config())
	if err != nil {
		return "", err
	}
	return machine.Topology(), nil
}

// Figure2 renders the structure of the ACE pmap layer (E2).
func Figure2() string {
	return `ACE pmap layer (paper Figure 2)

    Mach machine-independent VM        [internal/vm]
                 |
           pmap interface
                 |
           pmap manager                [internal/pmap]
            /          \
     NUMA manager   MMU interface      [internal/numa, internal/mmu]
            |
       NUMA policy                     [internal/policy]
`
}
