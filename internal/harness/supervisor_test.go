package harness

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"numasim/internal/chaos"
	"numasim/internal/metrics"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
)

// drill runs one Gfetch simulation under the options' supervisor, the
// same path every table row takes.
func drill(o Options) error {
	return o.supervise("drill-Gfetch", func(o Options) error {
		_, err := o.runInstance("Gfetch", metrics.RunSpec{
			Config: o.config(), Policy: policy.NewDefault(), Workers: o.Workers, Sched: sched.Affinity,
			Chaos: o.Chaos,
		})
		return err
	})
}

// bundleFiles finds the single repro bundle under dir and reads its
// files into a map keyed by file name.
func bundleFiles(t *testing.T, dir string) (string, map[string]string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].IsDir() {
		t.Fatalf("want exactly one bundle directory in %s, got %v", dir, entries)
	}
	bundle := filepath.Join(dir, entries[0].Name())
	files := make(map[string]string)
	inner, err := os.ReadDir(bundle)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range inner {
		b, err := os.ReadFile(filepath.Join(bundle, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(b)
	}
	return entries[0].Name(), files
}

// TestSupervisorPanicWritesBundle: a chaos-injected panic mid-protocol
// is recovered into an error, and the repro bundle carries the failure,
// the config, the forensic trace, the state dump and the command line.
func TestSupervisorPanicWritesBundle(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		NProc: 2, Small: true, Parallelism: 1,
		Chaos:    chaos.Config{PanicAt: sim.Millisecond},
		ReproDir: dir,
		Command:  "tables -small -nproc 2 -chaos-panic-at 1ms",
	}.withDefaults()
	err := drill(opts)
	if err == nil || !strings.Contains(err.Error(), "chaos: injected panic") {
		t.Fatalf("err = %v, want recovered chaos panic", err)
	}
	name, files := bundleFiles(t, dir)
	if !strings.HasPrefix(name, "drill-Gfetch") {
		t.Errorf("bundle dir %q not named after the unit", name)
	}
	if got := files["error.txt"]; !strings.Contains(got, "chaos: injected panic") {
		t.Errorf("error.txt missing failure:\n%s", got)
	}
	if got := files["config.txt"]; !strings.Contains(got, "unit: drill-Gfetch (attempt 1)") ||
		!strings.Contains(got, "chaos:") {
		t.Errorf("config.txt missing unit or chaos description:\n%s", got)
	}
	if got := files["statedump.txt"]; !strings.Contains(got, "=== machine state at ") {
		t.Errorf("statedump.txt missing dump:\n%s", got)
	}
	if got := files["trace.txt"]; got == "" {
		t.Error("trace.txt missing or empty; the forensic ring was not captured")
	}
	if got := files["repro.sh"]; !strings.Contains(got, opts.Command) {
		t.Errorf("repro.sh missing command line:\n%s", got)
	}
}

// TestReproBundleDeterminism: the bundle's promise is that the same seed
// replays the same failure. Two independent supervised runs of the same
// failing configuration must produce byte-identical state dumps and
// forensic traces.
func TestReproBundleDeterminism(t *testing.T) {
	run := func() map[string]string {
		dir := t.TempDir()
		opts := Options{
			NProc: 2, Small: true, Parallelism: 1,
			Chaos:    chaos.Config{PanicAt: sim.Millisecond},
			ReproDir: dir,
		}.withDefaults()
		if err := drill(opts); err == nil {
			t.Fatal("drill unexpectedly succeeded")
		}
		_, files := bundleFiles(t, dir)
		return files
	}
	a, b := run(), run()
	for _, f := range []string{"statedump.txt", "trace.txt", "config.txt"} {
		if a[f] == "" {
			t.Errorf("%s missing from bundle", f)
			continue
		}
		if a[f] != b[f] {
			t.Errorf("%s differs between identical runs:\n--- first\n%s\n--- second\n%s", f, a[f], b[f])
		}
	}
}

// TestSupervisorRecoversHostPanic: a panic outside the engine (harness
// code itself, not a simulated thread) is recovered by the supervisor
// into an error carrying the goroutine stack.
func TestSupervisorRecoversHostPanic(t *testing.T) {
	opts := Options{Retries: 0, Timeout: time.Minute}.withDefaults()
	err := opts.supervise("host-panic", func(Options) error {
		panic("harness bug")
	})
	if err == nil || !strings.Contains(err.Error(), "host-panic panicked: harness bug") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("recovered panic lost its stack trace: %v", err)
	}
}

// TestSupervisorRetries: a deterministic failure fails every attempt;
// the supervisor writes one bundle per attempt and returns the last
// error.
func TestSupervisorRetries(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		NProc: 2, Small: true, Parallelism: 1,
		Chaos:    chaos.Config{PanicAt: sim.Millisecond},
		ReproDir: dir,
		Retries:  2,
	}.withDefaults()
	if err := drill(opts); err == nil {
		t.Fatal("deterministic failure retried into success")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("bundles = %d, want one per attempt (3)", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.Name()] = true
	}
	for _, want := range []string{"drill-Gfetch", "drill-Gfetch-attempt2", "drill-Gfetch-attempt3"} {
		if !seen[want] {
			t.Errorf("missing bundle %q in %v", want, entries)
		}
	}
}

// TestSupervisorTimeout: a chaos stall drill with the virtual-time
// watchdog disabled spins forever; the wall-clock watchdog must stop the
// engine and report a budget error wrapping a typed sim.StoppedError.
func TestSupervisorTimeout(t *testing.T) {
	opts := Options{
		NProc: 2, Small: true, Parallelism: 1,
		Chaos:      chaos.Config{StallAt: sim.Millisecond},
		StallLimit: -1, // disable the virtual-time watchdog: only the wall clock can save us
		Timeout:    200 * time.Millisecond,
		KeepGoing:  false,
	}.withDefaults()
	err := drill(opts)
	if err == nil {
		t.Fatal("stalled run returned success")
	}
	if !strings.Contains(err.Error(), "wall-clock budget") {
		t.Errorf("err = %v, want wall-clock budget report", err)
	}
	var stopped *sim.StoppedError
	if !errors.As(err, &stopped) {
		t.Errorf("err chain %v does not reach *sim.StoppedError", err)
	}
}

// TestStallWatchdogKillsDrill: with the virtual-time watchdog on (a low
// limit keeps the test fast), the same stall drill dies deterministically
// with a typed StallError carrying the dump — no wall clock involved.
func TestStallWatchdogKillsDrill(t *testing.T) {
	opts := Options{
		NProc: 2, Small: true, Parallelism: 1,
		Chaos:      chaos.Config{StallAt: sim.Millisecond},
		StallLimit: 256,
		KeepGoing:  true,
	}.withDefaults()
	err := drill(opts)
	var stall *sim.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v, want *sim.StallError", err)
	}
	if stall.Dump == nil {
		t.Error("stall error carries no dump")
	}
}

// TestTable3PartialResults: with chaos panicking every run and a repro
// dir set, the sweep completes with per-row errors instead of dying, and
// the rendered table diverts failures to the footer.
func TestTable3PartialResults(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		NProc: 2, Small: true,
		Chaos:    chaos.Config{PanicAt: sim.Millisecond},
		ReproDir: dir,
	}
	rows, err := Table3(opts)
	if err != nil {
		t.Fatalf("partial sweep aborted: %v", err)
	}
	if len(rows) != len(Table3Apps) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Table3Apps))
	}
	for _, r := range rows {
		if r.Err == "" {
			t.Errorf("%s: chaos panic did not surface in the row", r.App)
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "failed runs:") {
		t.Errorf("render missing failure footer:\n%s", out)
	}
	for _, app := range Table3Apps {
		if !strings.Contains(out, app) {
			t.Errorf("failed app %s missing from render", app)
		}
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != len(Table3Apps) {
		t.Errorf("bundles = %d, want one per failed row (%d)", len(entries), len(Table3Apps))
	}
	// The CSV renderer skips failed rows entirely.
	if csv := RenderTable3CSV(rows); strings.Contains(csv, "Gfetch") {
		t.Errorf("CSV contains failed rows:\n%s", csv)
	}
}

// TestRenderUnchangedWithoutFailures: rows without errors render with no
// footer — the byte-identity contract for healthy runs.
func TestRenderUnchangedWithoutFailures(t *testing.T) {
	rows, err := Table3(Options{NProc: 2, Small: true})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable3(rows)
	if strings.Contains(out, "failed runs:") {
		t.Errorf("healthy render grew a failure footer:\n%s", out)
	}
}

// TestAuditDoesNotChangeResults: the online auditor only reads the
// directory, so audited and unaudited evaluations are identical.
func TestAuditDoesNotChangeResults(t *testing.T) {
	base := Options{NProc: 2, Small: true, Parallelism: 1}
	plain, err := Table3Single(base, "Gfetch")
	if err != nil {
		t.Fatal(err)
	}
	audited := base
	audited.Audit = 1
	withAudit, err := Table3Single(audited, "Gfetch")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Eval, withAudit.Eval) {
		t.Errorf("auditing changed results:\nplain  %+v\naudited %+v", plain.Eval, withAudit.Eval)
	}
}

// TestPoolRecoversPanics: a panicking task is returned as an error with
// the stack attached while the other tasks keep draining.
func TestPoolRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ran := make([]bool, 8)
		errs := NewPool(workers).RunAll(len(ran), func(i int) error {
			ran[i] = true
			if i == 3 {
				panic("task exploded")
			}
			return nil
		})
		for i, err := range errs {
			if i == 3 {
				if err == nil || !strings.Contains(err.Error(), "task 3 panicked: task exploded") ||
					!strings.Contains(err.Error(), "goroutine") {
					t.Errorf("workers=%d: panic error = %v", workers, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("workers=%d: task %d err = %v", workers, i, err)
			}
		}
		for i, r := range ran {
			if !r {
				t.Errorf("workers=%d: task %d never ran", workers, i)
			}
		}
	}
}

// TestSupervisorOffIsFree: with no robustness features requested there
// is no supervisor at all, so the default path cannot slow down or
// reorder anything.
func TestSupervisorOffIsFree(t *testing.T) {
	if s := (Options{}).supervisor(); s != nil {
		t.Errorf("zero options built a supervisor: %+v", s)
	}
	if s := (Options{Timeout: time.Second}).supervisor(); s == nil {
		t.Error("timeout did not enable supervision")
	}
	if s := (Options{ReproDir: "x"}).supervisor(); s == nil {
		t.Error("repro dir did not enable supervision")
	}
	if s := (Options{Retries: 1}).supervisor(); s == nil {
		t.Error("retries did not enable supervision")
	}
}
