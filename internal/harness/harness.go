// Package harness regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment
// builds fresh machines, runs the paper's workloads under the paper's
// policies, and renders plain-text tables with the paper's published
// numbers alongside the measured ones.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"numasim/internal/ace"
	"numasim/internal/chaos"
	"numasim/internal/metrics"
	"numasim/internal/simtrace"
	"numasim/internal/workloads"
)

// Options configures the experiments.
type Options struct {
	// NProc is the number of processors for parallel runs (the paper's
	// Table 4 runs used 7).
	NProc int
	// Workers is the number of worker threads (default one per CPU).
	Workers int
	// Small selects reduced problem sizes (used by tests; the defaults
	// are already scaled down from the paper's hours-long runs).
	Small bool
	// Threshold is the policy's move limit (default 4).
	Threshold int
	// AppSize, when positive, overrides the workload's primary size
	// parameter (see workloads.NewSized). Sweeps use it to keep repeated
	// runs quick.
	AppSize int
	// Parallelism bounds how many independent simulations run at once
	// (table rows, sweep points, the three runs inside an evaluation).
	// <= 0 selects runtime.NumCPU(). Simulated results are identical at
	// every setting; only wall-clock time changes.
	Parallelism int
	// TraceSink, when non-nil, is attached to every simulated machine the
	// experiments build. Runs execute concurrently, so the sink must be
	// safe for concurrent Emit (simtrace.CountingSink is). It feeds the
	// tables -timing event-count report; it never affects table contents.
	TraceSink simtrace.Sink
	// App selects the application for single-app experiments (the pressure
	// sweep; default Gfetch). Table experiments ignore it.
	App string
	// PressureFrames are the local-frame budgets the pressure sweep
	// measures (empty: DefaultPressureFrames).
	PressureFrames []int
	// LocalFrames, when positive, overrides the per-processor local memory
	// size. Zero keeps the effectively-unbounded default, under which the
	// pressure machinery never engages.
	LocalFrames int
	// Chaos configures fault injection (transient local-allocation
	// failures, delayed page moves) for every run an experiment performs.
	// The zero value is chaos off. Each run builds its own injector from
	// Chaos.Seed, so output is byte-identical at every Parallelism.
	Chaos chaos.Config
}

// withDefaults fills in defaults.
func (o Options) withDefaults() Options {
	if o.NProc <= 0 {
		o.NProc = 7
	}
	if o.Workers <= 0 {
		o.Workers = o.NProc
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	return o
}

// pool builds the worker pool for the options.
func (o Options) pool() *Pool { return NewPool(o.Parallelism) }

// config builds the machine configuration for the options.
func (o Options) config() ace.Config {
	cfg := ace.DefaultConfig()
	cfg.NProc = o.NProc
	// Lazily allocated frames make the full-size memories cheap, but the
	// small variant also shrinks them to keep test heaps tiny.
	if o.Small {
		cfg.GlobalFrames = 2048
		cfg.LocalFrames = 1024
	}
	if o.LocalFrames > 0 {
		cfg.LocalFrames = o.LocalFrames
	}
	return cfg
}

// instance builds a fresh workload instance by table name.
func (o Options) instance(name string) metrics.Runner {
	if o.Small {
		switch name {
		case "ParMult":
			return workloads.NewParMult(60, 80)
		case "Gfetch":
			return workloads.NewGfetch(12, 4)
		case "IMatMult":
			return workloads.NewIMatMult(24)
		case "Primes1":
			return workloads.NewPrimes1(4000)
		case "Primes2":
			return workloads.NewPrimes2(8000, true)
		case "Primes2-untuned":
			return workloads.NewPrimes2(8000, false)
		case "Primes3":
			return workloads.NewPrimes3(60000)
		case "FFT":
			return workloads.NewFFT(32)
		case "PlyTrace":
			return workloads.NewPlyTrace(160, 128, 128)
		case "Syscaller":
			return workloads.NewSyscaller(1200, 40)
		}
	}
	if name == "Syscaller" {
		return workloads.NewSyscaller(0, 0)
	}
	if o.AppSize > 0 {
		w, err := workloads.NewSized(name, o.AppSize)
		if err == nil {
			return w
		}
	}
	w, err := workloads.ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// evaluator builds the three-run evaluator for the options.
func (o Options) evaluator() *metrics.Evaluator {
	ev := metrics.NewEvaluator()
	ev.Config = o.config()
	ev.Workers = o.Workers
	ev.Parallelism = o.Parallelism
	ev.TraceSink = o.TraceSink
	ev.Chaos = o.Chaos
	if o.Threshold > 0 {
		ev.Threshold = o.Threshold
	}
	return ev
}

// newMachineFor builds a machine for the config (thin indirection so the
// mix experiment reads naturally).
func newMachineFor(cfg ace.Config) *ace.Machine { return ace.NewMachine(cfg) }

// fmtF renders a float with sensible precision for the tables. It is
// generic over named float64 types (sim.Ticks and plain float64 render
// identically), so adopting unit types cannot change table bytes.
func fmtF[F ~float64](v F, prec int) string {
	if math.IsNaN(float64(v)) {
		return "na"
	}
	return fmt.Sprintf("%.*f", prec, float64(v))
}

// renderTable renders a fixed-width text table.
func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
