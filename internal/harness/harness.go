// Package harness regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment
// builds fresh machines, runs the paper's workloads under the paper's
// policies, and renders plain-text tables with the paper's published
// numbers alongside the measured ones.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"numasim/internal/ace"
	"numasim/internal/chaos"
	"numasim/internal/metrics"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/simtrace"
	"numasim/internal/workloads"
)

// Options configures the experiments.
type Options struct {
	// NProc is the number of processors for parallel runs (the paper's
	// Table 4 runs used 7).
	NProc int
	// Workers is the number of worker threads (default one per CPU).
	Workers int
	// Small selects reduced problem sizes (used by tests; the defaults
	// are already scaled down from the paper's hours-long runs).
	Small bool
	// Threshold is the policy's move limit (default 4).
	Threshold int
	// Policy, when non-empty, overrides the placement policy for
	// single-policy experiments (the ablations, sweeps and pressure
	// runs). It accepts any registry spec ("decaythreshold",
	// "threshold:limit=2"; see policy.Usage). Experiments that compare a
	// fixed policy set (table3, policycompare, tournament) ignore it.
	// Empty keeps each experiment's default, byte-identical.
	Policy string
	// AppSize, when positive, overrides the workload's primary size
	// parameter (see workloads.NewSized). Sweeps use it to keep repeated
	// runs quick.
	AppSize int
	// Parallelism bounds how many independent simulations run at once
	// (table rows, sweep points, the three runs inside an evaluation).
	// <= 0 selects runtime.NumCPU(). Simulated results are identical at
	// every setting; only wall-clock time changes.
	Parallelism int
	// TraceSink, when non-nil, is attached to every simulated machine the
	// experiments build. Runs execute concurrently, so the sink must be
	// safe for concurrent Emit (simtrace.CountingSink is). It feeds the
	// tables -timing event-count report; it never affects table contents.
	TraceSink simtrace.Sink
	// App selects the application for single-app experiments (the pressure
	// sweep; default Gfetch). Table experiments ignore it.
	App string
	// PressureFrames are the local-frame budgets the pressure sweep
	// measures (empty: DefaultPressureFrames).
	PressureFrames []int
	// LocalFrames, when positive, overrides the per-node local memory
	// size. Zero keeps the effectively-unbounded default, under which the
	// pressure machinery never engages.
	LocalFrames int
	// Topology selects the machine topology by name ("" or "ace" is the
	// paper's two-level ACE; see topology.Names for the others). Every
	// machine an experiment builds uses it.
	Topology string
	// Chaos configures fault injection (transient local-allocation
	// failures, delayed page moves, panic/stall crash drills) for every
	// run an experiment performs. The zero value is chaos off. Each run
	// builds its own injector from Chaos.Seed, so output is byte-identical
	// at every Parallelism.
	Chaos chaos.Config
	// Audit enables the NUMA manager's online auditor at this sampling
	// stride for every run (0 off, 1 full, N sampled).
	Audit int
	// Timeout is the wall-clock budget per supervised run; 0 means no
	// timeout. When it expires the supervisor stops the run's engine and
	// reports a timeout failure.
	Timeout time.Duration
	// Retries is how many times the supervisor re-runs a failed unit
	// before giving up (bounded retry; 0 = one attempt only).
	Retries int
	// ReproDir, when non-empty, is where the supervisor writes a repro
	// bundle for each failed run (seed, config, flags, trace, state dump,
	// ready-to-run command line).
	ReproDir string
	// KeepGoing lets parallel sweeps continue past failed runs and report
	// partial results with per-run error summaries instead of aborting on
	// the first failure. Setting ReproDir implies it.
	KeepGoing bool
	// StallLimit overrides the engine stall-watchdog threshold for every
	// run (0 keeps the engine default).
	StallLimit int
	// Command is the CLI invocation that produced these options, recorded
	// verbatim in repro bundles (e.g. "acesim -exp pressuresweep ...").
	Command string

	// onMachine, when non-nil, is invoked for every machine a run builds.
	// The supervisor installs it to reach engines for timeout teardown; it
	// may be called concurrently when Parallelism > 1.
	onMachine func(*ace.Machine)
}

// withDefaults fills in defaults.
func (o Options) withDefaults() Options {
	if o.NProc <= 0 {
		o.NProc = 7
	}
	if o.Workers <= 0 {
		o.Workers = o.NProc
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	return o
}

// pool builds the worker pool for the options.
func (o Options) pool() *Pool { return NewPool(o.Parallelism) }

// config builds the machine configuration for the options.
func (o Options) config() ace.Config {
	cfg := ace.DefaultConfig()
	cfg.NProc = o.NProc
	// Lazily allocated frames make the full-size memories cheap, but the
	// small variant also shrinks them to keep test heaps tiny.
	if o.Small {
		cfg.GlobalFrames = 2048
		cfg.LocalFrames = 1024
	}
	if o.LocalFrames > 0 {
		cfg.LocalFrames = o.LocalFrames
	}
	cfg.Topology = o.Topology
	return cfg
}

// instance builds a fresh workload instance by table name, reporting
// unknown names as an error the experiment can propagate.
func (o Options) instance(name string) (metrics.Runner, error) {
	if o.Small {
		switch name {
		case "ParMult":
			return workloads.NewParMult(60, 80), nil
		case "Gfetch":
			return workloads.NewGfetch(12, 4), nil
		case "IMatMult":
			return workloads.NewIMatMult(24), nil
		case "Primes1":
			return workloads.NewPrimes1(4000), nil
		case "Primes2":
			return workloads.NewPrimes2(8000, true), nil
		case "Primes2-untuned":
			return workloads.NewPrimes2(8000, false), nil
		case "Primes3":
			return workloads.NewPrimes3(60000), nil
		case "FFT":
			return workloads.NewFFT(32), nil
		case "PlyTrace":
			return workloads.NewPlyTrace(160, 128, 128), nil
		case "Syscaller":
			return workloads.NewSyscaller(1200, 40), nil
		}
	}
	if name == "Syscaller" {
		return workloads.NewSyscaller(0, 0), nil
	}
	if o.AppSize > 0 {
		if w, err := workloads.NewSized(name, o.AppSize); err == nil {
			return w, nil
		}
	}
	return workloads.ByName(name)
}

// evaluator builds the three-run evaluator for the options.
func (o Options) evaluator() *metrics.Evaluator {
	ev := metrics.NewEvaluator()
	ev.Config = o.config()
	ev.Workers = o.Workers
	ev.Parallelism = o.Parallelism
	ev.TraceSink = o.TraceSink
	ev.Chaos = o.Chaos
	ev.Audit = o.Audit
	ev.StallLimit = o.StallLimit
	ev.Forensics = o.forensics()
	ev.OnMachine = o.onMachine
	if o.Threshold > 0 {
		ev.Threshold = o.Threshold
	}
	return ev
}

// policyOr builds the options' placement policy: the -policy spec when
// one was chosen, def() otherwise. Policies carry state, so call it
// inside each run closure for a fresh instance per run.
func (o Options) policyOr(def func() numa.Policy) (numa.Policy, error) {
	if o.Policy == "" {
		return def(), nil
	}
	thr := o.Threshold
	if thr == 0 {
		thr = policy.DefaultThreshold
	}
	return policy.ByName(o.Policy, thr)
}

// forensics reports whether runs should gather crash forensics (ring
// buffer + state dump on failure): whenever a supervisor feature or the
// auditor is on.
func (o Options) forensics() bool {
	return o.ReproDir != "" || o.Timeout > 0 || o.Retries > 0 || o.Audit > 0
}

// keepGoing reports whether sweeps should report partial results past
// failed runs.
func (o Options) keepGoing() bool { return o.KeepGoing || o.ReproDir != "" }

// runInstance builds the named workload and runs it once under the spec,
// filling in the options' robustness knobs (audit stride, stall limit,
// forensics, the supervisor's machine hook). All of those are zero for
// default options, so unsupervised runs are bit-for-bit unchanged.
func (o Options) runInstance(name string, spec metrics.RunSpec) (metrics.RunResult, error) {
	w, err := o.instance(name)
	if err != nil {
		return metrics.RunResult{}, err
	}
	spec.Audit = o.Audit
	spec.StallLimit = o.StallLimit
	spec.Forensics = o.forensics()
	spec.OnMachine = o.onMachine
	return metrics.Run(w, spec)
}

// Supervise wraps one caller-managed run (for example acesim's
// single-application path) in the options' supervisor: panic recovery,
// wall-clock timeout, bounded retry, repro bundles on failure. fn must
// call observe with every machine it builds so the timeout watchdog can
// stop the engines; with no supervision configured fn runs directly and
// observe is a no-op.
func (o Options) Supervise(label string, fn func(observe func(*ace.Machine)) error) error {
	sup := o.supervisor()
	if sup == nil {
		return fn(func(*ace.Machine) {})
	}
	return sup.Do(label, fn)
}

// supervise runs one experiment unit under the options' supervisor —
// panic recovery, wall-clock timeout, bounded retry, repro bundles — or
// directly when no supervision is configured.
func (o Options) supervise(label string, fn func(Options) error) error {
	sup := o.supervisor()
	if sup == nil {
		return fn(o)
	}
	return sup.Do(label, func(observe func(*ace.Machine)) error {
		oo := o
		oo.onMachine = observe
		return fn(oo)
	})
}

// newMachineFor builds a machine for the config (thin indirection so the
// mix experiment reads naturally).
func newMachineFor(cfg ace.Config) (*ace.Machine, error) { return ace.NewMachine(cfg) }

// fmtF renders a float with sensible precision for the tables. It is
// generic over named float64 types (sim.Ticks and plain float64 render
// identically), so adopting unit types cannot change table bytes.
func fmtF[F ~float64](v F, prec int) string {
	if math.IsNaN(float64(v)) {
		return "na"
	}
	return fmt.Sprintf("%.*f", prec, float64(v))
}

// failedRun names one failed unit of a partial result.
type failedRun struct {
	Unit, Err string
}

// renderFailures renders the per-run error summaries appended to a
// partial table; it is empty — and the table bytes untouched — when
// every run succeeded.
func renderFailures(fails []failedRun) string {
	if len(fails) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("failed runs:\n")
	for _, f := range fails {
		fmt.Fprintf(&b, "  %-12s %s\n", f.Unit, firstLine(f.Err))
	}
	return b.String()
}

// firstLine truncates multi-line error text (panic stacks) for tables.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// renderTable renders a fixed-width text table.
func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
