package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"numasim/internal/ace"
	"numasim/internal/metrics"
	"numasim/internal/numa"
	"numasim/internal/sim"
	"numasim/internal/simtrace"
)

// Supervisor wraps each experiment unit — one table row, one sweep
// point — in panic recovery, a wall-clock timeout, and bounded retry.
// When a unit still fails it writes a repro bundle: everything needed to
// re-run exactly the failing simulation (config, chaos script, recent
// trace, machine-state dump, and the ready-to-run command line). The
// deterministic engine makes the bundle an honest promise: the same seed
// replays the same failure.
type Supervisor struct {
	// Timeout is the wall-clock budget per attempt; 0 means none. On
	// expiry the supervisor stops every engine the attempt built, which
	// surfaces as a sim.StoppedError from the run.
	Timeout time.Duration
	// Retries is how many times a failed unit is re-run before giving up
	// (0 = single attempt).
	Retries int
	// ReproDir, when non-empty, receives one bundle directory per failed
	// attempt.
	ReproDir string

	// opts are the options that built the supervised experiment, recorded
	// in bundles so a reader sees the exact knobs.
	opts Options

	mu       sync.Mutex
	failures []Failure
}

// Failure records one failed supervised attempt.
type Failure struct {
	Label   string // experiment unit, e.g. "table3-FFT"
	Attempt int    // 1-based
	Err     error
	Bundle  string // bundle directory path, empty if none was written
}

// supervisor builds the options' supervisor, or nil when no supervision
// feature is requested — the nil path adds zero overhead and keeps
// default runs byte-identical.
func (o Options) supervisor() *Supervisor {
	if o.Timeout <= 0 && o.Retries <= 0 && o.ReproDir == "" {
		return nil
	}
	return &Supervisor{Timeout: o.Timeout, Retries: o.Retries, ReproDir: o.ReproDir, opts: o}
}

// Failures returns the attempts that failed, in completion order.
func (s *Supervisor) Failures() []Failure {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Failure(nil), s.failures...)
}

// Do runs one experiment unit under supervision. fn receives an observe
// hook it must arrange to be called for every machine the unit builds
// (the harness plumbs it through metrics.RunSpec.OnMachine); the hook is
// how the wall-clock watchdog reaches engines to stop them. Do returns
// nil as soon as an attempt succeeds, and the last attempt's error after
// the retry budget is spent.
func (s *Supervisor) Do(label string, fn func(observe func(*ace.Machine)) error) error {
	var last error
	for attempt := 1; attempt <= s.Retries+1; attempt++ {
		err := s.attempt(label, fn)
		if err == nil {
			return nil
		}
		last = err
		f := Failure{Label: label, Attempt: attempt, Err: err}
		if s.ReproDir != "" {
			if dir, werr := s.writeBundle(label, attempt, err); werr == nil {
				f.Bundle = dir
			} else {
				f.Err = fmt.Errorf("%w (repro bundle not written: %v)", err, werr)
			}
		}
		s.mu.Lock()
		s.failures = append(s.failures, f)
		s.mu.Unlock()
	}
	return last
}

// attempt runs fn once with panic recovery and the wall-clock watchdog.
// The watchdog is the one place the harness legitimately reads the host
// clock — it bounds how long a wedged simulation may burn wall time, and
// never feeds the reading back into simulated time — hence the
// determinism-lint escape below.
//
//numalint:hostside
func (s *Supervisor) attempt(label string, fn func(observe func(*ace.Machine)) error) (err error) {
	var mu sync.Mutex
	var engines []*sim.Engine
	timedOut := false
	observe := func(m *ace.Machine) {
		mu.Lock()
		defer mu.Unlock()
		if timedOut {
			// The deadline already passed: stop the newcomer immediately.
			m.Engine().Stop()
			return
		}
		engines = append(engines, m.Engine())
	}
	if s.Timeout > 0 {
		timer := time.AfterFunc(s.Timeout, func() {
			mu.Lock()
			defer mu.Unlock()
			timedOut = true
			for _, e := range engines {
				e.Stop()
			}
		})
		defer timer.Stop()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: %s panicked: %v\n%s", label, r, debug.Stack())
		}
		mu.Lock()
		expired := timedOut
		mu.Unlock()
		if expired && err != nil {
			err = fmt.Errorf("harness: %s exceeded the %v wall-clock budget: %w", label, s.Timeout, err)
		}
	}()
	return fn(observe)
}

// writeBundle writes one repro bundle directory for a failed attempt and
// returns its path. The bundle holds error.txt (the failure, stack
// included for panics), config.txt (machine, chaos and robustness knobs),
// trace.txt (the forensic ring, oldest first), statedump.txt (the
// machine-state dump at failure), and repro.sh (the recorded command
// line, ready to re-run).
func (s *Supervisor) writeBundle(label string, attempt int, runErr error) (string, error) {
	dir, err := s.bundleDir(label, attempt)
	if err != nil {
		return "", err
	}
	dump, events := extractForensics(runErr)
	files := map[string]string{
		"error.txt":  runErr.Error() + "\n",
		"config.txt": s.describe(label, attempt),
	}
	if len(events) > 0 {
		files["trace.txt"] = simtrace.FormatEvents(events)
	}
	if dump != "" {
		files["statedump.txt"] = dump
	}
	files["repro.sh"] = s.reproScript(label)
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			return "", err
		}
	}
	return dir, nil
}

// bundleDir creates a fresh directory for one failed attempt, suffixing
// past the first attempt and any name collisions.
func (s *Supervisor) bundleDir(label string, attempt int) (string, error) {
	base := filepath.Join(s.ReproDir, sanitizeLabel(label))
	if attempt > 1 {
		base = fmt.Sprintf("%s-attempt%d", base, attempt)
	}
	dir := base
	for i := 2; ; i++ {
		if _, err := os.Stat(dir); os.IsNotExist(err) {
			break
		}
		dir = fmt.Sprintf("%s-%d", base, i)
	}
	return dir, os.MkdirAll(dir, 0o755)
}

// sanitizeLabel maps an experiment-unit label to a safe directory name.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, label)
}

// extractForensics mines an error chain for the gathered forensics: the
// rendered state dump and the forensic ring contents. metrics.RunError
// carries both; engine errors and protocol violations carry their own.
func extractForensics(err error) (dump string, events []simtrace.Event) {
	var re *metrics.RunError
	if errors.As(err, &re) {
		dump, events = re.Dump, re.Events
	}
	if dump == "" {
		var de *sim.DeadlockError
		var st *sim.StallError
		var so *sim.StoppedError
		switch {
		case errors.As(err, &de) && de.Dump != nil:
			dump = de.Dump.Render()
		case errors.As(err, &st) && st.Dump != nil:
			dump = st.Dump.Render()
		case errors.As(err, &so) && so.Dump != nil:
			dump = so.Dump.Render()
		}
	}
	if len(events) == 0 {
		var pv *numa.ProtocolViolationError
		if errors.As(err, &pv) {
			events = pv.Trace
		}
	}
	return dump, events
}

// describe renders the knobs that produced the failing run.
func (s *Supervisor) describe(label string, attempt int) string {
	o := s.opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "unit: %s (attempt %d)\n", label, attempt)
	fmt.Fprintf(&b, "machine: %+v\n", o.config())
	fmt.Fprintf(&b, "options: nproc=%d workers=%d threshold=%d appsize=%d app=%q small=%v parallelism=%d\n",
		o.NProc, o.Workers, o.Threshold, o.AppSize, o.App, o.Small, o.Parallelism)
	fmt.Fprintf(&b, "robustness: audit=%d stall-limit=%d timeout=%v retries=%d\n",
		o.Audit, o.StallLimit, o.Timeout, o.Retries)
	fmt.Fprintf(&b, "chaos: %+v\n", o.Chaos)
	return b.String()
}

// reproScript renders the bundle's ready-to-run command line. The
// simulation is deterministic, so re-running the recorded command replays
// the identical failure (same seed, same state dump).
func (s *Supervisor) reproScript(label string) string {
	cmd := s.opts.Command
	if cmd == "" {
		cmd = "# (no command line was recorded; re-run the harness with the options in config.txt)"
	}
	return fmt.Sprintf("#!/bin/sh\n# repro bundle for %s — deterministic: same seed, same failure\n%s\n", label, cmd)
}
