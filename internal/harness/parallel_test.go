package harness

import (
	"reflect"
	"testing"

	"numasim/internal/sim"
)

// TestPoolOrderAndErrors: the pool runs every index exactly once and
// surfaces the smallest-index error, sequentially and in parallel.
func TestPoolOrderAndErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		hits := make([]int, 16)
		if err := NewPool(workers).Run(len(hits), func(i int) error {
			hits[i]++
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i, n := range hits {
			if n != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
		err := NewPool(workers).Run(8, func(i int) error {
			if i >= 3 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != errAt(3).Error() {
			t.Errorf("workers=%d: got error %v, want the smallest failing index (3)", workers, err)
		}
	}
	if err := NewPool(2).Run(0, func(int) error { panic("unreachable") }); err != nil {
		t.Errorf("empty run: %v", err)
	}
}

type errAt int

func (e errAt) Error() string { return "fail" + string(rune('0'+int(e))) }

// TestTable3ParallelDeterminism: the rendered Table 3 and every underlying
// per-run measurement must be byte-identical whether the harness runs its
// simulations sequentially or four at a time. This is the PR's core
// guarantee: parallelism changes wall-clock time, never simulated results.
func TestTable3ParallelDeterminism(t *testing.T) {
	seqOpts := Options{NProc: 3, Small: true, Parallelism: 1}
	parOpts := Options{NProc: 3, Small: true, Parallelism: 4}

	seq, err := Table3(seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table3(parOpts)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := RenderTable3(par), RenderTable3(seq); got != want {
		t.Errorf("rendered Table 3 differs between parallel and sequential runs:\nsequential:\n%s\nparallel:\n%s", want, got)
	}
	if got, want := RenderTable3CSV(par), RenderTable3CSV(seq); got != want {
		t.Errorf("Table 3 CSV differs between parallel and sequential runs:\nsequential:\n%s\nparallel:\n%s", want, got)
	}
	for i := range seq {
		s, p := seq[i].Eval, par[i].Eval
		if s.Alpha != p.Alpha || s.Beta != p.Beta || s.Gamma != p.Gamma {
			t.Errorf("%s: model parameters differ: sequential (α=%v β=%v γ=%v), parallel (α=%v β=%v γ=%v)",
				seq[i].App, s.Alpha, s.Beta, s.Gamma, p.Alpha, p.Beta, p.Gamma)
		}
		if s.Tglobal != p.Tglobal || s.Tnuma != p.Tnuma || s.Tlocal != p.Tlocal {
			t.Errorf("%s: run times differ: sequential (%v, %v, %v), parallel (%v, %v, %v)",
				seq[i].App, s.Tglobal, s.Tnuma, s.Tlocal, p.Tglobal, p.Tnuma, p.Tlocal)
		}
		if s.NumaRun.Refs != p.NumaRun.Refs {
			t.Errorf("%s: T_numa reference counts differ: sequential %+v, parallel %+v",
				seq[i].App, s.NumaRun.Refs, p.NumaRun.Refs)
		}
		if s.NumaRun.Faults != p.NumaRun.Faults || s.NumaRun.NUMA != p.NumaRun.NUMA {
			t.Errorf("%s: T_numa protocol activity differs between parallel and sequential runs", seq[i].App)
		}
	}
}

// TestTopologyParallelDeterminism: the determinism guarantee extends to
// the contended multi-node topologies — the token-bucket link clocks and
// round-robin interleave cursor are per-machine state, so Table 3 on the
// 4-socket and mesh machines is byte-identical at every -parallel,
// link-contention statistics included.
func TestTopologyParallelDeterminism(t *testing.T) {
	for _, topo := range []string{"4socket", "mesh8"} {
		seq, err := Table3Single(Options{NProc: 4, Small: true, Parallelism: 1, Topology: topo}, "Gfetch")
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		par, err := Table3Single(Options{NProc: 4, Small: true, Parallelism: 8, Topology: topo}, "Gfetch")
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if got, want := RenderTable3([]Table3Row{par}), RenderTable3([]Table3Row{seq}); got != want {
			t.Errorf("%s: rendered row differs between parallel and sequential runs:\nsequential:\n%s\nparallel:\n%s", topo, want, got)
		}
		s, p := seq.Eval, par.Eval
		if s.Tglobal != p.Tglobal || s.Tnuma != p.Tnuma || s.Tlocal != p.Tlocal ||
			s.NumaRun.Refs != p.NumaRun.Refs || s.NumaRun.NUMA != p.NumaRun.NUMA {
			t.Errorf("%s: per-run measurements differ between parallel and sequential runs", topo)
		}
		if len(s.NumaRun.Links) == 0 {
			t.Errorf("%s: contended topology reported no link stats", topo)
		}
		if !reflect.DeepEqual(s.NumaRun.Links, p.NumaRun.Links) {
			t.Errorf("%s: link stats differ:\nsequential %+v\nparallel   %+v", topo, s.NumaRun.Links, p.NumaRun.Links)
		}
		var waited sim.Time
		for _, l := range s.NumaRun.Links {
			waited += l.Waited
		}
		if waited == 0 {
			t.Logf("%s: note: no queueing delay observed at this problem size", topo)
		}
	}
}

// TestTable4ParallelDeterminism: same guarantee for the system-time table.
func TestTable4ParallelDeterminism(t *testing.T) {
	seq, err := Table4(Options{NProc: 3, Small: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table4(Options{NProc: 3, Small: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := RenderTable4(par), RenderTable4(seq); got != want {
		t.Errorf("rendered Table 4 differs between parallel and sequential runs:\nsequential:\n%s\nparallel:\n%s", want, got)
	}
}
