package harness

import (
	"flag"
	"os"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// The goldens in testdata were captured before the topology refactor, when
// ace/mem/numa were hard-wired to the two-level ACE. They pin the contract
// of that refactor: the ACE, expressed as a registered topology through the
// generalized matrix-and-home-node path, reproduces the published tables
// byte for byte. Regenerate only with a deliberate modelling change:
//
//	go test ./internal/harness -run TestTable3GoldenACE -update
//	go test ./internal/harness -run TestFigure1Golden -update
//
// (and justify the diff in the commit message).

func readGolden(t *testing.T, name string, got string) string {
	t.Helper()
	path := "testdata/" + name
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(want)
}

// TestTable3GoldenACE runs every Table 3 application on the ACE topology
// through the generalized (topology-parameterized) machine and compares the
// rendered table byte-for-byte against the pre-refactor golden.
func TestTable3GoldenACE(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 3 sweep")
	}
	rows, err := Table3(Options{Small: true, NProc: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := RenderTable3(rows)
	want := readGolden(t, "table3_small_p3.golden", got)
	if got != want {
		t.Errorf("Table 3 diverged from the pre-topology golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFigure1Golden pins the default machine's rendered architecture text.
func TestFigure1Golden(t *testing.T) {
	got, err := Figure1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := readGolden(t, "figure1_default.golden", got)
	if got != want {
		t.Errorf("Figure 1 diverged.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTable3ACEExplicitTopology: naming the topology "ace" selects the same
// machine as the default empty string — same table, same bytes.
func TestTable3ACEExplicitTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 3 run")
	}
	base := Options{Small: true, NProc: 3, Parallelism: 1}
	def, err := Table3Single(base, "Gfetch")
	if err != nil {
		t.Fatal(err)
	}
	named := base
	named.Topology = "ace"
	got, err := Table3Single(named, "Gfetch")
	if err != nil {
		t.Fatal(err)
	}
	if RenderTable3([]Table3Row{got}) != RenderTable3([]Table3Row{def}) {
		t.Errorf("-topology ace diverged from the default machine")
	}
}
