package harness

import (
	"strings"
	"testing"

	"numasim/internal/sim"
)

var small = Options{NProc: 4, Small: true}

func TestProtocolTablesMatchPaper(t *testing.T) {
	// E3/E4: the rendered matrices must contain the paper's cell contents.
	t1, err := ProtocolTable(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1", "sync&flush other; copy to local -> read-only",
		"unmap all; copy to local -> read-only",
		"sync&flush own -> global-writable",
		"no action -> local-writable",
	} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2, err := ProtocolTable(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 2", "flush other; copy to local -> local-writable",
		"unmap all; copy to local -> local-writable",
		"sync&flush other; copy to local -> local-writable",
		"sync&flush other -> global-writable",
	} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

// TestTable3Shape is E5: the headline result. We do not check absolute
// seconds (our substrate is a simulator), but the shape the paper claims:
// which apps achieve near-optimal placement (γ≈1), the extremes, and the
// α/β orderings.
func TestTable3Shape(t *testing.T) {
	rows, err := Table3(small)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Table3Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}

	// Gfetch: β≈1, α≈0, γ ≈ G/L(fetch) ≈ 2.3.
	g := byApp["Gfetch"].Eval
	if g.Beta < 0.9 || g.Alpha > 0.1 {
		t.Errorf("Gfetch α=%.2f β=%.2f, want α≈0 β≈1", g.Alpha, g.Beta)
	}
	if g.Gamma < 2.0 || g.Gamma > 2.4 {
		t.Errorf("Gfetch γ=%.2f, want ≈2.3", g.Gamma)
	}
	// ParMult: β≈0, γ≈1.
	p := byApp["ParMult"].Eval
	if p.Beta > 0.1 || p.Gamma > 1.1 {
		t.Errorf("ParMult β=%.2f γ=%.2f, want ≈0/≈1", p.Beta, p.Gamma)
	}
	// The well-placed apps: γ within a few percent of 1.
	for _, app := range []string{"IMatMult", "Primes1", "Primes2", "FFT", "PlyTrace"} {
		e := byApp[app].Eval
		if e.Gamma > 1.12 {
			t.Errorf("%s γ=%.2f, want ≈1 (near-optimal placement)", app, e.Gamma)
		}
		if e.Alpha < 0.8 {
			t.Errorf("%s α=%.2f, want high (mostly local)", app, e.Alpha)
		}
	}
	// Primes3: heavy legitimate sharing — low α, γ clearly above 1 but
	// well below G/L.
	p3 := byApp["Primes3"].Eval
	if p3.Alpha > 0.5 {
		t.Errorf("Primes3 α=%.2f, want low (sieve is writably shared)", p3.Alpha)
	}
	if p3.Gamma < 1.1 || p3.Gamma > 1.9 {
		t.Errorf("Primes3 γ=%.2f, want between 1.1 and 1.9 (paper: 1.30)", p3.Gamma)
	}
	// Orderings: Tglobal >= Tnuma >= ~Tlocal for every app.
	for _, r := range rows {
		e := r.Eval
		if e.Tnuma > e.Tglobal*1.05 {
			t.Errorf("%s: Tnuma %.3f exceeds Tglobal %.3f", r.App, e.Tnuma, e.Tglobal)
		}
		if e.Tlocal > e.Tnuma*1.02 {
			t.Errorf("%s: Tlocal %.3f exceeds Tnuma %.3f", r.App, e.Tlocal, e.Tnuma)
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "ParMult") || !strings.Contains(out, "paper") {
		t.Errorf("render incomplete:\n%s", out)
	}
	if !strings.Contains(out, "na") {
		t.Errorf("ParMult α should render as na:\n%s", out)
	}
}

// TestTable4Shape is E6: NUMA-management overhead is small for all but
// Primes3 among the prime finders; FFT's absolute ΔS is large (in the
// paper it is second-largest). FFT's overhead *ratio* is not checked: at
// scaled problem sizes its compute shrinks much faster than its data, so
// the ratio is inflated relative to the paper's 449-second run (see
// EXPERIMENTS.md).
func TestTable4Shape(t *testing.T) {
	rows, err := Table4(small)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Table4Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	p3 := byApp["Primes3"].DeltaPct
	if p3 < 5 {
		t.Errorf("Primes3 ΔS/Tnuma = %.1f%%, want substantial (paper: 24.9%%)", p3)
	}
	if p1 := byApp["Primes1"].DeltaPct; p1 >= p3/3 || p1 > 12 {
		t.Errorf("Primes1 ΔS/Tnuma = %.1f%%, want small and well below Primes3's %.1f%%", p1, p3)
	}
	if p2 := byApp["Primes2"].DeltaPct; p2 >= p3 {
		t.Errorf("Primes2 ΔS/Tnuma = %.1f%%, want below Primes3's %.1f%%", p2, p3)
	}
	// FFT moves a lot of pages before they pin: its absolute ΔS must be
	// the largest or second largest, as in the paper.
	var above int
	for _, r := range rows {
		if r.DeltaS > byApp["FFT"].DeltaS {
			above++
		}
	}
	if above > 1 {
		t.Errorf("FFT ΔS = %.2f ranks %d'th; want top two", byApp["FFT"].DeltaS, above+1)
	}
	out := RenderTable4(rows)
	if !strings.Contains(out, "Primes3") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestFigures(t *testing.T) {
	f1, err := Figure1(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cpu0", "cpu3", "IPC bus"} {
		if !strings.Contains(f1, want) {
			t.Errorf("Figure 1 missing %q", want)
		}
	}
	f2 := Figure2()
	for _, want := range []string{"pmap manager", "NUMA manager", "NUMA policy", "MMU interface"} {
		if !strings.Contains(f2, want) {
			t.Errorf("Figure 2 missing %q", want)
		}
	}
}

// TestFalseSharingExperiment is E8.
func TestFalseSharingExperiment(t *testing.T) {
	r, err := FalseSharing(small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tuned.Alpha <= r.Untuned.Alpha {
		t.Errorf("tuning must raise α: untuned %.2f, tuned %.2f", r.Untuned.Alpha, r.Tuned.Alpha)
	}
	if r.Tuned.Alpha < 0.75 {
		t.Errorf("tuned α = %.2f, want high", r.Tuned.Alpha)
	}
	out := r.Render()
	if !strings.Contains(out, "0.66") || !strings.Contains(out, "untuned") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

// TestThresholdSweep is E9: with a threshold of 0 everything shared pins
// immediately (few moves); never-pin moves forever; the default sits
// between.
func TestThresholdSweep(t *testing.T) {
	rows, err := ThresholdSweep(small, "Primes3", []int{0, 4, -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	zero, def, never := rows[0], rows[1], rows[2]
	if zero.Moves > def.Moves {
		t.Errorf("threshold 0 moved pages %d times, more than threshold 4 (%d)", zero.Moves, def.Moves)
	}
	if never.Moves <= def.Moves {
		t.Errorf("never-pin moves (%d) should exceed threshold 4 (%d)", never.Moves, def.Moves)
	}
	if never.Pins != 0 {
		t.Errorf("never-pin pinned %d pages", never.Pins)
	}
	if zero.Pins == 0 {
		t.Error("threshold 0 pinned nothing")
	}
	out := RenderSweep("sweep", "threshold", rows)
	if !strings.Contains(out, "never-pin") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

// TestAffinityExperiment is E11: hopping processors destroys locality.
func TestAffinityExperiment(t *testing.T) {
	r, err := AffinityCompare(small, "Primes1")
	if err != nil {
		t.Fatal(err)
	}
	if r.AffLocal <= r.HopLocal {
		t.Errorf("affinity local fraction %.3f should exceed no-affinity %.3f", r.AffLocal, r.HopLocal)
	}
	if r.Hopping.UserSec < r.Affinity.UserSec {
		t.Errorf("no-affinity user time %.3f should not beat affinity %.3f", r.Hopping.UserSec, r.Affinity.UserSec)
	}
	if !strings.Contains(r.Render(), "affinity") {
		t.Error("render incomplete")
	}
}

// TestUnixMasterExperiment is E12.
func TestUnixMasterExperiment(t *testing.T) {
	r, err := UnixMasterCompare(small, "Syscaller")
	if err != nil {
		t.Fatal(err)
	}
	if r.OnLoc >= r.OffLoc {
		t.Errorf("unix-master should reduce locality: off %.3f, on %.3f", r.OffLoc, r.OnLoc)
	}
	if r.On.UserSec <= r.Off.UserSec {
		t.Errorf("unix-master should cost user time: off %.3f, on %.3f", r.Off.UserSec, r.On.UserSec)
	}
}

func TestPageSizeSweep(t *testing.T) {
	// IMatMult's matrices are a fixed number of bytes, so smaller pages
	// mean more logical pages and more pinning of the shared output.
	rows, err := PageSizeSweep(small, "IMatMult", []int{1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Pins <= rows[1].Pins {
		t.Errorf("smaller pages should pin more pages: %d vs %d", rows[0].Pins, rows[1].Pins)
	}
}

func TestGLSweep(t *testing.T) {
	rows, err := GLSweep(small, "Gfetch", []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Tnuma <= rows[0].Tnuma {
		t.Errorf("slower global memory should cost Gfetch user time: %.3f vs %.3f", rows[1].Tnuma, rows[0].Tnuma)
	}
}

func TestQuantumSweep(t *testing.T) {
	rows, err := QuantumSweep(small, "IMatMult", []sim.Time{50 * sim.Microsecond, 400 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Tnuma <= 0 {
			t.Errorf("quantum %s: no user time", r.Param)
		}
	}
}

// TestRemoteReferences exercises the §4.4 extension: pragma-placed pages
// at a home processor eliminate the protocol churn an asymmetric
// producer/consumer pattern otherwise causes.
func TestRemoteReferences(t *testing.T) {
	r, err := RemoteCompare(small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remote.SysSec >= r.Auto.SysSec/2 {
		t.Errorf("remote pragma sys %.3f should be far below automatic %.3f",
			r.Remote.SysSec, r.Auto.SysSec)
	}
	if r.Remote.NUMA.RemotePlaced == 0 {
		t.Error("no pages were remote-placed")
	}
	if !strings.Contains(r.Render(), "remote pragma") {
		t.Error("render incomplete")
	}
}

// TestReplicationAblation shows "the value of replicating data that is
// writable, but that is never written" (§3.2): without replication the
// read-shared input matrices bounce between readers.
func TestReplicationAblation(t *testing.T) {
	r, err := ReplicationCompare(small, "IMatMult")
	if err != nil {
		t.Fatal(err)
	}
	if r.Without.NUMA.Copies < 10*r.With.NUMA.Copies {
		t.Errorf("single-copy migration should copy far more: %d vs %d",
			r.Without.NUMA.Copies, r.With.NUMA.Copies)
	}
	if r.Without.SysSec < 5*r.With.SysSec {
		t.Errorf("single-copy sys time %.2f should dwarf replication's %.2f",
			r.Without.SysSec, r.With.SysSec)
	}
	if !strings.Contains(r.Render(), "single copy") {
		t.Error("render incomplete")
	}
}

// TestApplicationMix runs two applications concurrently on one machine,
// each in its own task: both must verify, and the mix's locality must stay
// high — the introduction's "locality needs of the entire application mix"
// claim.
func TestApplicationMix(t *testing.T) {
	r, err := MixRun(small, []string{"IMatMult", "Primes1"})
	if err != nil {
		t.Fatal(err)
	}
	if r.LocalFrac < 0.8 {
		t.Errorf("mix local fraction = %.2f, want high", r.LocalFrac)
	}
	if r.UserSec <= 0 {
		t.Error("no user time")
	}
	out := r.Render()
	if !strings.Contains(out, "IMatMult + Primes1") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

// TestApplicationMixThreeWay piles on a third program.
func TestApplicationMixThreeWay(t *testing.T) {
	r, err := MixRun(Options{NProc: 6, Small: true}, []string{"ParMult", "Primes1", "FFT"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 3 {
		t.Errorf("apps = %v", r.Apps)
	}
}

// TestPolicyComparison: on a phase-changing workload, the PLATINUM-style
// freeze/defrost policy (with the manager's defrost daemon) recovers
// locality after the sharing phase ends, while the paper's
// never-reconsider threshold policy leaves the pages pinned (§4.3, §5).
func TestPolicyComparison(t *testing.T) {
	rows, err := PolicyCompare(small)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PolicyRow{}
	for _, r := range rows {
		byName[strings.SplitN(r.Policy, "(", 2)[0]] = r
	}
	thr := byName["threshold"]
	fd := byName["freeze-defrost"]
	if fd.LocalFrac < 0.8 {
		t.Errorf("freeze-defrost local fraction = %.3f, want high after defrost", fd.LocalFrac)
	}
	if thr.LocalFrac > 0.5 {
		t.Errorf("threshold local fraction = %.3f, want low (pages stay pinned)", thr.LocalFrac)
	}
	if !strings.Contains(RenderPolicyCompare(rows), "phase-changing") {
		t.Error("render incomplete")
	}
}

// TestTable3AtDefaultSizes re-checks the headline bands at the real
// (non-Small) problem sizes; skipped under -short.
func TestTable3AtDefaultSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("default-size run")
	}
	rows, err := Table3(Options{NProc: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		e, p := r.Eval, r.Paper
		switch r.App {
		case "ParMult":
			continue
		case "Gfetch":
			if e.Gamma < 2.1 || e.Gamma > 2.4 {
				t.Errorf("Gfetch γ=%.2f", e.Gamma)
			}
		case "Primes3":
			if e.Alpha > 0.4 || e.Gamma < 1.15 {
				t.Errorf("Primes3 α=%.2f γ=%.2f", e.Alpha, e.Gamma)
			}
		default:
			if e.Alpha < 0.85 {
				t.Errorf("%s α=%.2f, paper %.2f", r.App, e.Alpha, p.Alpha)
			}
			if e.Gamma > 1.08 {
				t.Errorf("%s γ=%.2f, paper %.2f", r.App, e.Gamma, p.Gamma)
			}
		}
	}
}

// TestAlphaModelAgainstGroundTruth validates the paper's indirect
// methodology: α is derived from three timing runs (equation 4) because
// 1989 hardware could not count per-processor reference destinations
// ("Conventional memory-management systems provide no way to measure the
// relative frequencies of references from processors to pages", §4.4).
// The simulator counts them, so we can check that the timing-derived α
// agrees with the true local fraction.
func TestAlphaModelAgainstGroundTruth(t *testing.T) {
	rows, err := Table3(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		e := r.Eval
		switch r.App {
		case "ParMult":
			continue // α undefined (β = 0)
		case "Primes3":
			// Low-α apps: counted fraction includes the read-only sharing
			// that the paper notes its α cannot separate; only the order
			// of magnitude is comparable.
			if e.Alpha > 0.5 && e.MeasuredLocalFrac < 0.5 {
				t.Errorf("Primes3: α %.2f vs counted %.2f disagree grossly", e.Alpha, e.MeasuredLocalFrac)
			}
		default:
			if diff := e.Alpha - e.MeasuredLocalFrac; diff > 0.15 || diff < -0.15 {
				t.Errorf("%s: timing-derived α %.2f vs counted local fraction %.2f differ by %.2f",
					r.App, e.Alpha, e.MeasuredLocalFrac, diff)
			}
		}
	}
}

// TestEightProcessorConfig runs the mix on the ACE's maximum backplane
// configuration (8 processor modules, §2.2).
func TestEightProcessorConfig(t *testing.T) {
	r, err := MixRun(Options{NProc: 8, Small: true}, []string{"IMatMult", "FFT"})
	if err != nil {
		t.Fatal(err)
	}
	if r.LocalFrac < 0.8 {
		t.Errorf("8-CPU mix local fraction = %.2f", r.LocalFrac)
	}
}

// TestSystemDeterminism: the entire evaluation pipeline is deterministic —
// two independent runs produce bitwise-identical timings and statistics.
func TestSystemDeterminism(t *testing.T) {
	run := func() Table3Row {
		r, err := Table3Single(Options{NProc: 3, Small: true}, "IMatMult")
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Eval.Tnuma != b.Eval.Tnuma || a.Eval.Tglobal != b.Eval.Tglobal ||
		a.Eval.Alpha != b.Eval.Alpha || a.Eval.NumaRun.Faults != b.Eval.NumaRun.Faults ||
		a.Eval.NumaRun.NUMA != b.Eval.NumaRun.NUMA {
		t.Errorf("runs differ:\n%+v\n%+v", a.Eval.NumaRun, b.Eval.NumaRun)
	}
}
