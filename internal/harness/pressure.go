package harness

import (
	"fmt"
	"strings"

	"numasim/internal/metrics"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
)

// ---------------------------------------------------------------------
// Memory pressure: the paper's machines had small local memories (the
// ACE's processor modules held 8 MB each), but its evaluation never runs
// them out. This experiment does: each application at shrinking
// per-processor local-frame budgets, against its unconstrained run as
// baseline, shows how gracefully the placement policy degrades when the
// reclaimer and the global-fallback path start doing real work.
// ---------------------------------------------------------------------

// DefaultPressureFrames are the local-frame budgets the sweep uses when
// the caller does not name any.
var DefaultPressureFrames = []int{64, 16, 4}

// PressureRow is one point of a local-memory pressure sweep. Times are
// virtual seconds (sim.Ticks).
type PressureRow struct {
	// App is the application measured.
	App string
	// LocalFrames is the per-processor frame budget; 0 marks the
	// unconstrained baseline row.
	LocalFrames  int
	Tnuma, Snuma sim.Ticks
	// Slowdown is total run time (user+sys) relative to the same
	// application's baseline row.
	Slowdown float64
	// LocalFrac is the measured fraction of references served locally.
	LocalFrac float64
	// Protocol pressure counters for the run.
	Fallbacks, Evictions, Retries, ChaosFaults uint64
	// Err carries a failed run's summary when the sweep continues past
	// failures (partial results).
	Err string
}

// PressureSweep measures one application under the threshold policy at
// each local-frame budget in frames, plus an unconstrained baseline. An
// empty frames slice selects DefaultPressureFrames; an empty app selects
// opts.App or Gfetch.
func PressureSweep(opts Options, app string, frames []int) ([]PressureRow, error) {
	if app == "" {
		app = opts.App
	}
	if app == "" {
		app = "Gfetch"
	}
	return PressureSweepAll(opts, []string{app}, frames)
}

// PressureSweepAll measures every listed application at every budget.
// All (application, budget) pairs run concurrently (bounded by
// opts.Parallelism); each is an independent deterministic simulation, so
// the table is byte-identical at every setting. An empty apps slice
// selects the paper's Table 3 applications.
func PressureSweepAll(opts Options, apps []string, frames []int) ([]PressureRow, error) {
	opts = opts.withDefaults()
	if len(apps) == 0 {
		apps = Table3Apps
	}
	if len(frames) == 0 {
		frames = DefaultPressureFrames
	}
	thr := opts.Threshold
	if thr <= 0 {
		thr = policy.DefaultThreshold
	}
	points := append([]int{0}, frames...)
	rows := make([]PressureRow, len(apps)*len(points))
	errs := opts.pool().RunAll(len(rows), func(i int) error {
		app, budget := apps[i/len(points)], points[i%len(points)]
		label := fmt.Sprintf("pressure-%s-%s", app, pressureParam(budget))
		return opts.supervise(label, func(o Options) error {
			cfg := o.config()
			if budget > 0 {
				cfg.LocalFrames = budget
			}
			pol, err := o.policyOr(func() numa.Policy { return policy.NewThreshold(thr) })
			if err != nil {
				return err
			}
			res, err := o.runInstance(app, metrics.RunSpec{
				Config: cfg, Policy: pol,
				Workers: o.Workers, Sched: sched.Affinity,
				TraceSink: o.TraceSink, Chaos: o.Chaos,
			})
			if err != nil {
				return fmt.Errorf("pressure sweep %s at %d local frames: %w", app, budget, err)
			}
			rows[i] = PressureRow{
				App:         app,
				LocalFrames: budget,
				Tnuma:       res.UserSec, Snuma: res.SysSec,
				LocalFrac: res.Refs.LocalFraction(),
				Fallbacks: res.NUMA.LocalFallback, Evictions: res.NUMA.Evictions,
				Retries: res.NUMA.Retries, ChaosFaults: res.NUMA.ChaosFaults,
			}
			return nil
		})
	})
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !opts.keepGoing() {
			return nil, err
		}
		rows[i] = PressureRow{
			App: apps[i/len(points)], LocalFrames: points[i%len(points)], Err: err.Error(),
		}
	}
	// Each application's rows are contiguous and lead with its baseline.
	for a := 0; a < len(apps); a++ {
		base := rows[a*len(points)].Tnuma + rows[a*len(points)].Snuma
		for p := 0; p < len(points); p++ {
			r := &rows[a*len(points)+p]
			if base > 0 && r.Err == "" {
				r.Slowdown = float64((r.Tnuma + r.Snuma) / base)
			}
		}
	}
	return rows, nil
}

// pressureParam renders the frame-budget column: the baseline row is
// unconstrained.
func pressureParam(frames int) string {
	if frames == 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%d", frames)
}

// RenderPressure formats a pressure sweep.
func RenderPressure(rows []PressureRow) string {
	headers := []string{"app", "local frames", "Tuser", "Tsys", "slowdown", "local refs",
		"fallbacks", "evictions", "retries", "faults"}
	var body [][]string
	var fails []failedRun
	for _, r := range rows {
		if r.Err != "" {
			fails = append(fails, failedRun{
				fmt.Sprintf("%s@%s", r.App, pressureParam(r.LocalFrames)), r.Err,
			})
			continue
		}
		body = append(body, []string{
			r.App, pressureParam(r.LocalFrames), fmtF(r.Tnuma, 3), fmtF(r.Snuma, 3),
			fmtF(r.Slowdown, 2) + "x", fmtF(r.LocalFrac, 3),
			fmt.Sprintf("%d", r.Fallbacks), fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.ChaosFaults),
		})
	}
	return "Memory pressure: slowdown under shrinking per-processor local memory\n" +
		renderTable(headers, body) + renderFailures(fails)
}

// RenderPressureCSV renders a pressure sweep as CSV, ready for plotting.
func RenderPressureCSV(rows []PressureRow) string {
	var b strings.Builder
	b.WriteString("app,local_frames,user_sec,sys_sec,slowdown,local_frac,fallbacks,evictions,retries,chaos_faults\n")
	for _, r := range rows {
		if r.Err != "" {
			continue
		}
		fmt.Fprintf(&b, "%s,%d,%.6f,%.6f,%.4f,%.4f,%d,%d,%d,%d\n",
			r.App, r.LocalFrames, r.Tnuma, r.Snuma, r.Slowdown, r.LocalFrac,
			r.Fallbacks, r.Evictions, r.Retries, r.ChaosFaults)
	}
	return b.String()
}
