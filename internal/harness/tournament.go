package harness

import (
	"fmt"
	"sort"
	"strings"

	"numasim/internal/metrics"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/topology"
)

// ---------------------------------------------------------------------
// Tournament: every policy in the zoo against every probe workload on
// every machine topology, ranked by the paper's primary metric (user
// time, the T_numa of §3.1). The grid is the capstone of the adaptive
// policy zoo: it shows where the paper's fixed Threshold wins (stable
// sharing patterns) and where the decaying and co-placement policies
// overtake it (skewed, phase-changing workloads).
// ---------------------------------------------------------------------

// TournamentPolicies are the policy specs entered in the tournament, in
// registry syntax; a fresh instance is parsed per run because policies
// carry state.
var TournamentPolicies = []string{
	"threshold",
	"neverpin",
	"reconsider",
	"freezedefrost",
	"decaythreshold",
	"bandit",
	"classifier",
	"coplace",
}

// TournamentWorkloads are the probe workloads, chosen to span the
// space: Gfetch (all shared fetches), IMatMult (read-mostly matrix),
// Phased (sharing pattern flips between phases), Zipf (skewed and
// phase-changing — the adaptive policies' home turf).
var TournamentWorkloads = []string{"Gfetch", "IMatMult", "Phased", "Zipf"}

// TournamentRow is one cell of the grid: one policy's showing on one
// workload on one topology.
type TournamentRow struct {
	Topology string
	Workload string
	Policy   string
	// Rank is the policy's 1-based position within its (topology,
	// workload) group, ranked by ascending user time (ties broken by
	// system time, then policy name).
	Rank      int
	UserSec   sim.Ticks
	SysSec    sim.Ticks
	LocalFrac float64
	Moves     uint64
	Pins      uint64
	// Hints and Migrations count the co-placement channel's traffic:
	// accepted scheduler hints and the thread migrations they caused.
	Hints      uint64
	Migrations uint64
}

// LeaderRow is one policy's aggregate standing across the whole grid.
type LeaderRow struct {
	Policy   string
	Wins     int
	MeanRank float64
}

// TournamentResult carries the ranked grid plus the leaderboard.
type TournamentResult struct {
	Rows  []TournamentRow
	Board []LeaderRow
}

// Tournament runs the full policy × workload × topology grid. Each cell
// is an independent simulation on its own machine, fanned out over the
// options' parallelism; the ranked output is byte-identical at every
// setting.
func Tournament(opts Options) (TournamentResult, error) {
	return tournamentGrid(opts, topology.Names(), TournamentWorkloads, TournamentPolicies)
}

// tournamentGrid runs the tournament over an explicit grid (the tests
// use reduced grids to keep runtimes sane).
func tournamentGrid(opts Options, topos, works, pols []string) (TournamentResult, error) {
	opts = opts.withDefaults()

	type cell struct {
		topo, workload, spec string
	}
	var cells []cell
	for _, t := range topos {
		for _, w := range works {
			for _, p := range pols {
				cells = append(cells, cell{t, w, p})
			}
		}
	}

	results := make([]metrics.RunResult, len(cells))
	err := opts.pool().Run(len(cells), func(i int) error {
		c := cells[i]
		return opts.supervise(fmt.Sprintf("tournament/%s/%s/%s", c.topo, c.workload, c.spec),
			func(opts Options) error {
				pol, err := policy.Parse(c.spec)
				if err != nil {
					return err
				}
				cfg := opts.config()
				cfg.Topology = c.topo
				res, err := opts.runInstance(c.workload, metrics.RunSpec{
					Config: cfg, Policy: pol, Workers: opts.Workers, Sched: sched.Affinity,
				})
				if err != nil {
					return fmt.Errorf("tournament %s/%s/%s: %w", c.topo, c.workload, c.spec, err)
				}
				results[i] = res
				return nil
			})
	})
	if err != nil {
		return TournamentResult{}, err
	}

	rows := make([]TournamentRow, len(cells))
	for i, c := range cells {
		res := results[i]
		rows[i] = TournamentRow{
			Topology:   c.topo,
			Workload:   c.workload,
			Policy:     res.Policy,
			UserSec:    res.UserSec,
			SysSec:     res.SysSec,
			LocalFrac:  res.Refs.LocalFraction(),
			Moves:      res.NUMA.Moves,
			Pins:       res.NUMA.Pins,
			Hints:      res.Sched.HintsAccepted,
			Migrations: res.Sched.Migrations,
		}
	}

	// Rank within each (topology, workload) group. The cell list is
	// grouped by construction: consecutive runs of len(pols).
	group := len(pols)
	for start := 0; start < len(rows); start += group {
		g := rows[start : start+group]
		sort.SliceStable(g, func(a, b int) bool {
			if g[a].UserSec != g[b].UserSec {
				return g[a].UserSec < g[b].UserSec
			}
			if g[a].SysSec != g[b].SysSec {
				return g[a].SysSec < g[b].SysSec
			}
			return g[a].Policy < g[b].Policy
		})
		for i := range g {
			g[i].Rank = i + 1
		}
	}

	return TournamentResult{Rows: rows, Board: leaderboard(rows)}, nil
}

// leaderboard aggregates ranks per policy across the grid.
func leaderboard(rows []TournamentRow) []LeaderRow {
	sums := map[string]*LeaderRow{}
	counts := map[string]int{}
	var order []string
	for _, r := range rows {
		lr, ok := sums[r.Policy]
		if !ok {
			lr = &LeaderRow{Policy: r.Policy}
			sums[r.Policy] = lr
			order = append(order, r.Policy)
		}
		if r.Rank == 1 {
			lr.Wins++
		}
		lr.MeanRank += float64(r.Rank)
		counts[r.Policy]++
	}
	board := make([]LeaderRow, 0, len(order))
	for _, name := range order {
		lr := *sums[name]
		lr.MeanRank /= float64(counts[name])
		board = append(board, lr)
	}
	sort.SliceStable(board, func(a, b int) bool {
		if board[a].MeanRank != board[b].MeanRank {
			return board[a].MeanRank < board[b].MeanRank
		}
		return board[a].Policy < board[b].Policy
	})
	return board
}

// Render formats the ranked grid, one table per (topology, workload)
// group, followed by the leaderboard.
func (r TournamentResult) Render() string {
	var b strings.Builder
	b.WriteString("Policy tournament: every policy x every workload x every topology,\n")
	b.WriteString("ranked by user time (the paper's T_numa, §3.1)\n")
	headers := []string{"rank", "policy", "Tuser", "Tsys", "local refs", "moves", "pins", "hints", "migr"}
	for start := 0; start < len(r.Rows); {
		end := start
		for end < len(r.Rows) &&
			r.Rows[end].Topology == r.Rows[start].Topology &&
			r.Rows[end].Workload == r.Rows[start].Workload {
			end++
		}
		fmt.Fprintf(&b, "\n%s / %s\n", r.Rows[start].Topology, r.Rows[start].Workload)
		var body [][]string
		for _, row := range r.Rows[start:end] {
			body = append(body, []string{
				fmt.Sprintf("%d", row.Rank), row.Policy,
				fmtF(row.UserSec, 4), fmtF(row.SysSec, 4), fmtF(row.LocalFrac, 3),
				fmt.Sprintf("%d", row.Moves), fmt.Sprintf("%d", row.Pins),
				fmt.Sprintf("%d", row.Hints), fmt.Sprintf("%d", row.Migrations),
			})
		}
		b.WriteString(renderTable(headers, body))
		start = end
	}
	b.WriteString("\nLeaderboard (wins and mean rank across the grid)\n")
	var body [][]string
	for _, lr := range r.Board {
		body = append(body, []string{lr.Policy, fmt.Sprintf("%d", lr.Wins), fmtF(lr.MeanRank, 2)})
	}
	b.WriteString(renderTable([]string{"policy", "wins", "mean rank"}, body))
	return b.String()
}

// RenderCSV formats the grid as one machine-readable table.
func (r TournamentResult) RenderCSV() string {
	var b strings.Builder
	b.WriteString("topology,workload,rank,policy,tuser,tsys,localfrac,moves,pins,hints,migrations\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%s,%s,%s,%s,%d,%d,%d,%d\n",
			row.Topology, row.Workload, row.Rank, row.Policy,
			fmtF(row.UserSec, 4), fmtF(row.SysSec, 4), fmtF(row.LocalFrac, 3),
			row.Moves, row.Pins, row.Hints, row.Migrations)
	}
	return b.String()
}
