package harness

import (
	"strings"
	"testing"

	"numasim/internal/chaos"
)

// TestPressureSweepShape: rows come out app-major with the unconstrained
// baseline first, the baseline's slowdown is exactly 1, and a local-heavy
// application under a tight budget really does evict.
func TestPressureSweepShape(t *testing.T) {
	opts := Options{NProc: 3, Small: true}
	rows, err := PressureSweep(opts, "FFT", []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (baseline + two budgets)", len(rows))
	}
	if rows[0].LocalFrames != 0 || rows[1].LocalFrames != 4 || rows[2].LocalFrames != 2 {
		t.Errorf("budget order wrong: %d, %d, %d",
			rows[0].LocalFrames, rows[1].LocalFrames, rows[2].LocalFrames)
	}
	if rows[0].Slowdown != 1 {
		t.Errorf("baseline slowdown = %v, want exactly 1", rows[0].Slowdown)
	}
	if rows[0].Evictions != 0 {
		t.Errorf("unconstrained baseline evicted %d times", rows[0].Evictions)
	}
	if rows[2].Evictions == 0 {
		t.Error("FFT under 2 local frames never evicted")
	}
	if rows[2].Slowdown < rows[0].Slowdown {
		t.Errorf("slowdown %v under pressure beats the unconstrained run", rows[2].Slowdown)
	}
	out := RenderPressure(rows)
	if !strings.Contains(out, "unbounded") || !strings.Contains(out, "FFT") {
		t.Errorf("rendered table incomplete:\n%s", out)
	}
	csv := RenderPressureCSV(rows)
	if got := strings.Count(csv, "\n"); got != 4 {
		t.Errorf("CSV has %d lines, want header + 3 rows", got)
	}
}

// TestPressureSweepAllCoversEveryApp: with no app list the sweep measures
// the paper's whole Table 3 mix, each application's rows contiguous.
func TestPressureSweepAllCoversEveryApp(t *testing.T) {
	opts := Options{NProc: 3, Small: true}
	rows, err := PressureSweepAll(opts, nil, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(Table3Apps) {
		t.Fatalf("rows = %d, want %d", len(rows), 2*len(Table3Apps))
	}
	for i, app := range Table3Apps {
		if rows[2*i].App != app || rows[2*i+1].App != app {
			t.Errorf("rows %d,%d should both be %s", 2*i, 2*i+1, app)
		}
	}
}

// TestPressureSweepParallelDeterminism: with a fixed chaos seed the
// rendered sweep is byte-identical whether the runs execute sequentially
// or four at a time — the fault schedule lives in virtual time, not in
// host scheduling.
func TestPressureSweepParallelDeterminism(t *testing.T) {
	cc := chaos.Config{Seed: 42, FailProb: 0.2, DelayProb: 0.2,
		MaxRetries: chaos.DefaultMaxRetries, Backoff: chaos.DefaultBackoff,
		MoveDelay: chaos.DefaultMoveDelay}
	seq := Options{NProc: 3, Small: true, Parallelism: 1, Chaos: cc}
	par := Options{NProc: 3, Small: true, Parallelism: 4, Chaos: cc}

	a, err := PressureSweep(seq, "IMatMult", []int{16, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PressureSweep(par, "IMatMult", []int{16, 4})
	if err != nil {
		t.Fatal(err)
	}
	if RenderPressure(a) != RenderPressure(b) {
		t.Errorf("sweep differs between sequential and parallel runs:\nsequential:\n%s\nparallel:\n%s",
			RenderPressure(a), RenderPressure(b))
	}
	if RenderPressureCSV(a) != RenderPressureCSV(b) {
		t.Error("CSV rendering differs between sequential and parallel runs")
	}
	var faults uint64
	for _, r := range a {
		faults += r.ChaosFaults
	}
	if faults == 0 {
		t.Error("20% failure injection produced no chaos faults")
	}
}

// TestPressureSweepChaosDisabledIsInert: a chaos config that injects
// nothing (seed set, probabilities zero) must leave the sweep
// byte-identical to a run with no chaos config at all.
func TestPressureSweepChaosDisabledIsInert(t *testing.T) {
	plain := Options{NProc: 3, Small: true}
	seeded := Options{NProc: 3, Small: true, Chaos: chaos.Config{Seed: 99}}

	a, err := PressureSweep(plain, "Gfetch", []int{8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PressureSweep(seeded, "Gfetch", []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if RenderPressure(a) != RenderPressure(b) {
		t.Errorf("disabled chaos changed the sweep:\nplain:\n%s\nseeded:\n%s",
			RenderPressure(a), RenderPressure(b))
	}
}

// TestPressureSweepSeedsDiffer: two different chaos seeds at real
// injection rates must produce different measurements — otherwise the
// injector is not actually consulted.
func TestPressureSweepSeedsDiffer(t *testing.T) {
	mk := func(seed int64) Options {
		return Options{NProc: 3, Small: true, Chaos: chaos.Config{
			Seed: seed, FailProb: 0.3, DelayProb: 0.3,
			MaxRetries: chaos.DefaultMaxRetries, Backoff: chaos.DefaultBackoff,
			MoveDelay: chaos.DefaultMoveDelay}}
	}
	a, err := PressureSweep(mk(1), "IMatMult", []int{4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PressureSweep(mk(2), "IMatMult", []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if RenderPressure(a) == RenderPressure(b) {
		t.Error("seeds 1 and 2 produced byte-identical sweeps")
	}
}
