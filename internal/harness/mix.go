package harness

import (
	"fmt"
	"strings"

	"numasim/internal/cthreads"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/vm"
	"numasim/internal/workloads"
)

// MixResult reports a multiprogrammed run: several applications executing
// concurrently, each in its own task, on one machine. The paper's
// introduction claims OS-level placement "address[es] the locality needs
// of the entire application mix, a task that cannot be accomplished
// through independent modification of individual applications".
type MixResult struct {
	Apps      []string
	UserSec   sim.Ticks
	SysSec    sim.Ticks
	LocalFrac float64
	Pins      uint64
	Moves     uint64
}

// MixRun executes the named applications concurrently under the paper's
// policy, splitting the machine's processors between them. Every
// application's own verification must pass.
func MixRun(opts Options, apps []string) (MixResult, error) {
	opts = opts.withDefaults()
	cfg := opts.config()
	machine, err := newMachineFor(cfg)
	if err != nil {
		return MixResult{}, err
	}
	kernel := vm.NewKernel(machine, policy.NewDefault())
	scheduler := sched.New(kernel, sched.Affinity)

	workersEach := cfg.NProc / len(apps)
	if workersEach < 1 {
		workersEach = 1
	}
	var finishes []func() error
	for _, app := range apps {
		inst, err := opts.instance(app)
		if err != nil {
			return MixResult{}, err
		}
		w, ok := inst.(workloads.Starter)
		if !ok {
			return MixResult{}, fmt.Errorf("harness: %s cannot run in a mix", app)
		}
		rt := cthreads.NewShared(kernel, scheduler, app)
		finishes = append(finishes, w.Start(rt, workersEach))
	}
	if err := machine.Engine().Run(); err != nil {
		return MixResult{}, err
	}
	for i, fin := range finishes {
		if err := fin(); err != nil {
			return MixResult{}, fmt.Errorf("harness: mix member %s: %w", apps[i], err)
		}
	}
	refs := machine.TotalRefs()
	ns := kernel.NUMA().Stats()
	return MixResult{
		Apps:      apps,
		UserSec:   machine.Engine().TotalUserTime().Ticks(),
		SysSec:    machine.Engine().TotalSysTime().Ticks(),
		LocalFrac: refs.LocalFraction(),
		Pins:      ns.Pins,
		Moves:     ns.Moves,
	}, nil
}

// Render formats the mix run.
func (r MixResult) Render() string {
	return fmt.Sprintf(`Application mix: %s running concurrently (each verified)
  user %.3fs  sys %.3fs  %.1f%% of references local  %d pins  %d moves
`, strings.Join(r.Apps, " + "), r.UserSec, r.SysSec, 100*r.LocalFrac, r.Pins, r.Moves)
}
