package harness

import (
	"fmt"
	"strings"

	"numasim/internal/chaos"
	"numasim/internal/metrics"
	"numasim/internal/numa"
	"numasim/internal/policy"
	"numasim/internal/sched"
	"numasim/internal/sim"
	"numasim/internal/topology"
)

// ---------------------------------------------------------------------
// Availability: the paper's machines were assumed healthy; this
// experiment is not. Each application runs through a set of failure
// schedules — a single permanent node loss, a rolling loss that takes
// nodes down and back one after another, and a link brownout — and is
// compared against its healthy run. The degradation ratio (total time
// under the schedule over healthy total time) shows how gracefully the
// evacuation protocol, the scheduler failover and the rerouted
// interconnect absorb the loss; the protocol audit and the repro-bundle
// machinery ride along like in every other experiment, so a violation
// under failure produces a bundle, not a bare panic.
// ---------------------------------------------------------------------

// availSchedule is one named failure schedule. The zero schedule (no
// events) is the healthy baseline every ratio is measured against.
type availSchedule struct {
	name string
	// linked marks schedules that reference interconnect links by name;
	// they are dropped on topologies without those links (the ACE has no
	// modelled interconnect).
	linked bool
	events []chaos.HealthEvent
}

// availSchedules builds the sweep's failure schedules. Virtual times are
// early in the run so even the reduced-size workloads live through every
// transition.
func availSchedules() []availSchedule {
	const ms = sim.Millisecond
	return []availSchedule{
		{name: "healthy"},
		{name: "single-loss", events: []chaos.HealthEvent{
			{At: 2 * ms, Kind: chaos.NodeOffline, Node: 1},
		}},
		{name: "rolling-loss", events: []chaos.HealthEvent{
			{At: 2 * ms, Kind: chaos.NodeOffline, Node: 1},
			{At: 8 * ms, Kind: chaos.NodeOnline, Node: 1},
			{At: 10 * ms, Kind: chaos.NodeOffline, Node: 2},
			{At: 16 * ms, Kind: chaos.NodeOnline, Node: 2},
			{At: 18 * ms, Kind: chaos.NodeOffline, Node: 3},
			{At: 24 * ms, Kind: chaos.NodeOnline, Node: 3},
		}},
		{name: "link-brownout", linked: true, events: []chaos.HealthEvent{
			{At: 1 * ms, Kind: chaos.LinkDegrade, Link: "node0-node1", Factor: 8},
			{At: 5 * ms, Kind: chaos.LinkSever, Link: "node0-node2"},
			{At: 15 * ms, Kind: chaos.LinkRestore, Link: "node0-node2"},
			{At: 20 * ms, Kind: chaos.LinkRestore, Link: "node0-node1"},
		}},
	}
}

// AvailRow is one point of the availability sweep. Times are virtual
// seconds (sim.Ticks).
type AvailRow struct {
	App      string
	Schedule string
	Tuser    sim.Ticks
	Tsys     sim.Ticks
	// Degradation is total run time (user+sys) relative to the same
	// application's healthy row.
	Degradation float64
	// LocalFrac is the measured fraction of references served locally.
	LocalFrac float64
	// Degraded-mode protocol counters for the run.
	Evacuations, EvacRetries, EvacFallbacks uint64
	// Failovers counts threads moved off dead processors by the
	// scheduler.
	Failovers uint64
	// Err carries a failed run's summary when the sweep continues past
	// failures (partial results).
	Err string
}

// AvailabilityApps are the applications the sweep measures by default:
// the paper's Table 3 mix plus the Zipf policy probe.
var AvailabilityApps = append(append([]string{}, Table3Apps...), "Zipf")

// AvailabilitySweep runs every listed application through every failure
// schedule. The machine defaults to the four-socket topology (the sweep
// needs more than one node to lose, and the ACE models no interconnect);
// an explicit opts.Topology overrides it, dropping the link-brownout
// schedule when the topology has no "node0-node1" link. All (app,
// schedule) pairs run concurrently (bounded by opts.Parallelism); each
// is an independent deterministic simulation, so the table is
// byte-identical at every setting. An empty apps slice selects
// AvailabilityApps.
func AvailabilitySweep(opts Options, apps []string) ([]AvailRow, error) {
	opts = opts.withDefaults()
	if opts.Topology == "" {
		opts.Topology = "4socket"
	}
	if len(apps) == 0 {
		apps = AvailabilityApps
	}
	spec, err := topology.ByName(opts.Topology, opts.NProc)
	if err != nil {
		return nil, fmt.Errorf("availability sweep: %w", err)
	}
	if spec.NNodes() < 4 {
		return nil, fmt.Errorf("availability sweep: topology %s has %d nodes; the schedules fail nodes 1-3",
			spec.Name(), spec.NNodes())
	}
	schedules := availSchedules()
	if _, ok := spec.LinkIndex("node0-node1"); !ok {
		kept := schedules[:0]
		for _, s := range schedules {
			if !s.linked {
				kept = append(kept, s)
			}
		}
		schedules = kept
	}
	thr := opts.Threshold
	if thr <= 0 {
		thr = policy.DefaultThreshold
	}
	rows := make([]AvailRow, len(apps)*len(schedules))
	errs := opts.pool().RunAll(len(rows), func(i int) error {
		app, sc := apps[i/len(schedules)], schedules[i%len(schedules)]
		label := fmt.Sprintf("avail-%s-%s", app, sc.name)
		return opts.supervise(label, func(o Options) error {
			pol, err := o.policyOr(func() numa.Policy { return policy.NewThreshold(thr) })
			if err != nil {
				return err
			}
			cc := o.Chaos
			cc.Health = append(append([]chaos.HealthEvent{}, cc.Health...), sc.events...)
			res, err := o.runInstance(app, metrics.RunSpec{
				Config: o.config(), Policy: pol,
				Workers: o.Workers, Sched: sched.Affinity,
				TraceSink: o.TraceSink, Chaos: cc,
			})
			if err != nil {
				return fmt.Errorf("availability sweep %s under %s: %w", app, sc.name, err)
			}
			rows[i] = AvailRow{
				App: app, Schedule: sc.name,
				Tuser: res.UserSec, Tsys: res.SysSec,
				LocalFrac:   res.Refs.LocalFraction(),
				Evacuations: res.NUMA.Evacuations, EvacRetries: res.NUMA.EvacRetries,
				EvacFallbacks: res.NUMA.EvacFallbacks,
				Failovers:     res.Sched.Failovers,
			}
			return nil
		})
	})
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !opts.keepGoing() {
			return nil, err
		}
		rows[i] = AvailRow{
			App: apps[i/len(schedules)], Schedule: schedules[i%len(schedules)].name, Err: err.Error(),
		}
	}
	// Each application's rows are contiguous and lead with its healthy
	// baseline.
	for a := 0; a < len(apps); a++ {
		base := rows[a*len(schedules)].Tuser + rows[a*len(schedules)].Tsys
		for s := 0; s < len(schedules); s++ {
			r := &rows[a*len(schedules)+s]
			if base > 0 && r.Err == "" {
				r.Degradation = float64((r.Tuser + r.Tsys) / base)
			}
		}
	}
	return rows, nil
}

// RenderAvail formats an availability sweep.
func RenderAvail(rows []AvailRow) string {
	headers := []string{"app", "schedule", "Tuser", "Tsys", "degradation", "local refs",
		"evacuations", "retries", "fallbacks", "failovers"}
	var body [][]string
	var fails []failedRun
	for _, r := range rows {
		if r.Err != "" {
			fails = append(fails, failedRun{fmt.Sprintf("%s@%s", r.App, r.Schedule), r.Err})
			continue
		}
		body = append(body, []string{
			r.App, r.Schedule, fmtF(r.Tuser, 3), fmtF(r.Tsys, 3),
			fmtF(r.Degradation, 2) + "x", fmtF(r.LocalFrac, 3),
			fmt.Sprintf("%d", r.Evacuations), fmt.Sprintf("%d", r.EvacRetries),
			fmt.Sprintf("%d", r.EvacFallbacks), fmt.Sprintf("%d", r.Failovers),
		})
	}
	return "Availability: degradation under failure schedules (vs healthy baseline)\n" +
		renderTable(headers, body) + renderFailures(fails)
}

// RenderAvailCSV renders an availability sweep as CSV.
func RenderAvailCSV(rows []AvailRow) string {
	var b strings.Builder
	b.WriteString("app,schedule,user_sec,sys_sec,degradation,local_frac,evacuations,evac_retries,evac_fallbacks,failovers\n")
	for _, r := range rows {
		if r.Err != "" {
			continue
		}
		fmt.Fprintf(&b, "%s,%s,%.6f,%.6f,%.4f,%.4f,%d,%d,%d,%d\n",
			r.App, r.Schedule, r.Tuser, r.Tsys, r.Degradation, r.LocalFrac,
			r.Evacuations, r.EvacRetries, r.EvacFallbacks, r.Failovers)
	}
	return b.String()
}
