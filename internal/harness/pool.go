package harness

import (
	"runtime"
	"sync"
)

// Pool runs independent experiment units — whole simulations, never parts
// of one — on a bounded number of goroutines. Every simulation is a
// self-contained deterministic machine, so running several at once changes
// wall-clock time only; callers collect results into index-addressed slots
// so rendered tables are byte-identical to a sequential run.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most parallelism tasks at once.
// parallelism <= 0 selects runtime.NumCPU().
func NewPool(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	return &Pool{workers: parallelism}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Run invokes fn(0..n-1), at most Workers at a time, and waits for all of
// them. Each index runs exactly once. If any invocations fail, Run returns
// the error of the smallest failing index — the same error a sequential
// loop would have surfaced first — so error behaviour is deterministic too.
func (p *Pool) Run(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p.workers == 1 || n == 1 {
		// Sequential fast path: no goroutines, no channel traffic.
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{} // acquire before spawning to bound goroutine count
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
