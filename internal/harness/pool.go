package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Pool runs independent experiment units — whole simulations, never parts
// of one — on a bounded number of goroutines. Every simulation is a
// self-contained deterministic machine, so running several at once changes
// wall-clock time only; callers collect results into index-addressed slots
// so rendered tables are byte-identical to a sequential run.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most parallelism tasks at once.
// parallelism <= 0 selects runtime.NumCPU().
func NewPool(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	return &Pool{workers: parallelism}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Run invokes fn(0..n-1), at most Workers at a time, and waits for all of
// them. Each index runs exactly once. If any invocations fail, Run returns
// the error of the smallest failing index — the same error a sequential
// loop would have surfaced first — so error behaviour is deterministic too.
func (p *Pool) Run(n int, fn func(i int) error) error {
	for _, err := range p.RunAll(n, fn) {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunAll is Run, except it reports every index's outcome (nil on success)
// so sweeps can render partial results with per-run error summaries. A
// panic inside fn is recovered into that index's error — stack attached —
// and the remaining indices still run to completion, on the sequential
// path and on worker goroutines alike.
func (p *Pool) RunAll(n int, fn func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("harness: task %d panicked: %v\n%s", i, r, debug.Stack())
			}
		}()
		return fn(i)
	}
	errs := make([]error, n)
	if p.workers == 1 || n == 1 {
		// Sequential fast path: no goroutines, no channel traffic.
		for i := 0; i < n; i++ {
			errs[i] = call(i)
		}
		return errs
	}
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{} // acquire before spawning to bound goroutine count
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = call(i)
		}(i)
	}
	wg.Wait()
	return errs
}
