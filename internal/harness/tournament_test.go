package harness

import (
	"strings"
	"testing"
)

// reduced grid for the determinism and acceptance tests: one topology,
// the two phase-changing probes, and a policy subset that includes a
// seeded bandit (its PRNG stream must also replay identically).
var (
	testTopos = []string{"ace"}
	testWorks = []string{"Phased", "Zipf"}
	testPols  = []string{"threshold", "decaythreshold", "bandit:seed=7", "coplace"}
)

// TestTournamentParallelDeterminism: the ranked tournament tables must
// be byte-identical whether the grid's cells run sequentially or eight
// at a time. The adaptive policies carry per-run state (decaying
// histograms, a bandit PRNG), so this also proves a fresh policy is
// parsed per cell and nothing leaks across the pool.
func TestTournamentParallelDeterminism(t *testing.T) {
	seq, err := tournamentGrid(Options{NProc: 3, Small: true, Parallelism: 1}, testTopos, testWorks, testPols)
	if err != nil {
		t.Fatal(err)
	}
	par, err := tournamentGrid(Options{NProc: 3, Small: true, Parallelism: 8}, testTopos, testWorks, testPols)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.Render(), seq.Render(); got != want {
		t.Errorf("rendered tournament differs between parallel and sequential runs:\nsequential:\n%s\nparallel:\n%s", want, got)
	}
	if got, want := par.RenderCSV(), seq.RenderCSV(); got != want {
		t.Errorf("tournament CSV differs between parallel and sequential runs:\nsequential:\n%s\nparallel:\n%s", want, got)
	}
}

// TestTournamentShape checks the structural contract: every cell is
// ranked 1..len(policies) within its group, the leaderboard covers every
// policy exactly once, and the renders carry the grid.
func TestTournamentShape(t *testing.T) {
	res, err := tournamentGrid(Options{NProc: 3, Small: true}, testTopos, testWorks, testPols)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Rows), len(testTopos)*len(testWorks)*len(testPols); got != want {
		t.Fatalf("got %d rows, want %d", got, want)
	}
	group := len(testPols)
	for start := 0; start < len(res.Rows); start += group {
		seen := map[int]bool{}
		for _, row := range res.Rows[start : start+group] {
			if row.Rank < 1 || row.Rank > group {
				t.Errorf("%s/%s/%s: rank %d out of range", row.Topology, row.Workload, row.Policy, row.Rank)
			}
			if seen[row.Rank] {
				t.Errorf("%s/%s: duplicate rank %d", row.Topology, row.Workload, row.Rank)
			}
			seen[row.Rank] = true
		}
		// Within a group the rows are sorted by rank.
		for i := start + 1; i < start+group; i++ {
			if res.Rows[i].Rank != res.Rows[i-1].Rank+1 {
				t.Errorf("group at %d: ranks not consecutive", start)
			}
		}
	}
	if len(res.Board) != len(testPols) {
		t.Errorf("leaderboard has %d rows, want %d", len(res.Board), len(testPols))
	}
	text := res.Render()
	for _, want := range []string{"Leaderboard", "ace / Zipf", "rank", "hints"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	csv := res.RenderCSV()
	if !strings.HasPrefix(csv, "topology,workload,rank,policy,") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if got, want := strings.Count(csv, "\n"), len(res.Rows)+1; got != want {
		t.Errorf("CSV has %d lines, want %d", got, want)
	}
}

// TestAdaptiveBeatsThresholdOnZipf is the zoo's acceptance criterion:
// on the skewed, phase-changing Zipf probe at least one adaptive policy
// must outrank the paper's fixed Threshold.
func TestAdaptiveBeatsThresholdOnZipf(t *testing.T) {
	res, err := tournamentGrid(Options{NProc: 3, Small: true}, testTopos, []string{"Zipf"}, testPols)
	if err != nil {
		t.Fatal(err)
	}
	rank := func(prefix string) int {
		for _, row := range res.Rows {
			if strings.HasPrefix(row.Policy, prefix) {
				return row.Rank
			}
		}
		t.Fatalf("no policy named %s* in ranks:\n%s", prefix, res.Render())
		return 0
	}
	thr := rank("threshold(")
	if got := rank("decay-threshold("); got >= thr {
		t.Errorf("decay-threshold ranks %d, threshold ranks %d; want the adaptive policy ahead on Zipf\n%s",
			got, thr, res.Render())
	}
}
