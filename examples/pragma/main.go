// Placement pragmas (§4.3): "pragmas that would cause a region of virtual
// memory to be marked cacheable and placed in local memory or marked
// noncacheable and placed in global memory". An application that knows a
// region is writably shared can pin it up front and skip the thrashing the
// automatic policy pays while it learns.
package main

import (
	"fmt"

	"numasim"
)

// run makes two processors alternate writes to one shared page. With the
// noncacheable pragma, the page goes to global memory on the first fault;
// without it, the automatic policy first lets the page ping-pong through
// its move budget.
func run(hint bool) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys, err := numasim.New(numasim.WithConfig(cfg), numasim.WithPolicy(numasim.PragmaPolicy(nil)))
	if err != nil {
		panic(err)
	}

	shared := sys.Runtime.Alloc("shared", 4096)
	if hint {
		sys.Runtime.Task().SetHint(shared, numasim.HintNoncacheable)
	}
	err = sys.Runtime.Run(2, func(id int, c *numasim.Context) {
		for i := 0; i < 50; i++ {
			c.Store32(shared+uint32(4*id), uint32(i))
			c.Compute(300)
		}
	})
	if err != nil {
		panic(err)
	}

	stats := sys.Kernel.NUMA().Stats()
	label := "automatic placement"
	if hint {
		label = "noncacheable pragma"
	}
	fmt.Printf("%-20s sys time %8v  page copies %2d  moves %d\n",
		label, sys.Machine.Engine().TotalSysTime(), stats.Copies, stats.Moves)
}

func main() {
	run(false)
	run(true)
}
