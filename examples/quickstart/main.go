// Quickstart: build a simulated ACE, run a small parallel program on it,
// and watch automatic page placement do its work.
//
// Three threads share one page of memory. Two only read it after an
// initial write — their copies are replicated into local memory. The
// third keeps writing a second page ping-ponged by its neighbour, so the
// placement policy eventually pins that page in global memory.
package main

import (
	"fmt"

	"numasim"
)

func main() {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 4
	sys, err := numasim.New(numasim.WithConfig(cfg))
	if err != nil {
		panic(err)
	}

	// Two shared regions: one that becomes read-mostly, one that is
	// written from two processors in alternation.
	readMostly := sys.Runtime.Alloc("read-mostly", 4096)
	pingPong := sys.Runtime.Alloc("ping-pong", 4096)
	barrier := numasim.NewBarrier(4)

	err = sys.Runtime.Run(4, func(id int, c *numasim.Context) {
		if id == 0 {
			// Initialize the read-mostly page, then join the readers.
			for i := uint32(0); i < 16; i++ {
				c.Store32(readMostly+i*4, i*i)
			}
		}
		barrier.Wait(c)
		switch id {
		case 0, 1:
			// Writers alternating on the ping-pong page.
			for round := 0; round < 12; round++ {
				c.Store32(pingPong+uint32(id)*4, uint32(round))
				barrier2Step(c) // let the other writer interleave
			}
		default:
			// Readers of the read-mostly page.
			var sum uint32
			for pass := 0; pass < 50; pass++ {
				for i := uint32(0); i < 16; i++ {
					sum += c.Load32(readMostly + i*4)
				}
			}
			_ = sum
		}
	})
	if err != nil {
		panic(err)
	}

	// Inspect where the pages ended up.
	describe := func(name string, va uint32) {
		pg := sys.Runtime.Task().EntryAt(va).Object().Page(0)
		fmt.Printf("%-12s state=%-15v copies=%d moves=%d pinned=%v\n",
			name, pg.State(), pg.NCopies(), pg.Moves(), pg.Pinned())
	}
	describe("read-mostly", readMostly)
	describe("ping-pong", pingPong)

	refs := sys.Machine.TotalRefs()
	fmt.Printf("\nuser time %v, system time %v, %.0f%% of references local\n",
		sys.Machine.Engine().TotalUserTime(),
		sys.Machine.Engine().TotalSysTime(),
		100*refs.LocalFraction())
}

// barrier2Step yields so the interleaving writer gets the page.
func barrier2Step(c *numasim.Context) {
	c.Compute(400) // ~200µs of private work between writes
}
