// Pageout and pinning (§4.3 footnote 4): "our system never reconsiders a
// pinning decision (unless the pinned page is paged out and back in)."
//
// This example pins a page in global memory by ping-ponging writes, then
// walks a large array on a machine with tiny global memory until the
// pinned page is evicted to backing store. When it is touched again it
// returns with fresh placement state — cacheable once more.
package main

import (
	"fmt"

	"numasim"
)

func main() {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	cfg.GlobalFrames = 24 // tiny global memory: pageout happens quickly
	cfg.LocalFrames = 64
	sys, err := numasim.New(numasim.WithConfig(cfg), numasim.WithPolicy(numasim.ThresholdPolicy(2)))
	if err != nil {
		panic(err)
	}

	hot := sys.Runtime.Alloc("hot", 4096)
	big := sys.Runtime.Alloc("big", 40*4096)

	page := func() *numasim.Page {
		return sys.Runtime.Task().EntryAt(hot).Object().Page(0)
	}

	err = sys.Runtime.Run(1, func(id int, c *numasim.Context) {
		// Phase 1: two processors fight over the hot page until it pins.
		for i := 0; i < 4; i++ {
			c.MigrateTo(i % 2)
			c.Store32(hot, uint32(i))
		}
		fmt.Printf("after ping-pong:   state=%-16v moves=%d pinned=%v\n",
			page().State(), page().Moves(), page().Pinned())

		// Phase 2: touch enough memory that the hot page is paged out.
		for i := uint32(0); i < 40; i++ {
			c.Store32(big+i*4096, i)
		}
		if page() != nil {
			fmt.Println("hot page unexpectedly still resident")
			return
		}
		fmt.Printf("after pressure:    paged out (pageouts=%d)\n",
			sys.Kernel.Stats().Pageouts)

		// Phase 3: touch it again — data intact, placement state reset.
		v := c.Load32(hot)
		fmt.Printf("after pagein:      state=%-16v moves=%d pinned=%v value=%d (pageins=%d)\n",
			page().State(), page().Moves(), page().Pinned(), v,
			sys.Kernel.Stats().Pageins)
	})
	if err != nil {
		panic(err)
	}
}
