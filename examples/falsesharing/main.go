// False sharing (§4.2): two workers each update their own counter, but the
// counters live on the same page, so the page is writably shared even
// though no word in it is — and the placement policy pins it in global
// memory. Padding the counters onto separate pages (the paper's manual
// tuning) keeps every access local.
//
// The example also shows the reference-trace facility detecting the false
// sharing automatically, and reproduces the paper's Primes2 experiment in
// which privatizing the divisor vector raised α from 0.66 to 1.00.
package main

import (
	"fmt"

	"numasim"
)

// run executes the two-counter program with the counters either packed
// onto one page or padded onto separate pages, and reports placement.
func run(padded bool) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 2
	sys, err := numasim.New(numasim.WithConfig(cfg))
	if err != nil {
		panic(err)
	}

	collector := numasim.NewTraceCollector(sys.Machine.PageShift(), true)
	sys.Kernel.RefTrace = collector.Hook()

	region := sys.Runtime.Alloc("counters", 2*4096)
	addr := []uint32{region, region + 4} // same page
	if padded {
		addr[1] = region + 4096 // "padding data structures out to page boundaries"
	}

	err = sys.Runtime.Run(2, func(id int, c *numasim.Context) {
		for i := 0; i < 400; i++ {
			v := c.Load32(addr[id])
			c.Store32(addr[id], v+1)
			c.Compute(100) // private work between updates
		}
	})
	if err != nil {
		panic(err)
	}

	pg := sys.Runtime.Task().EntryAt(region).Object().Page(0)
	refs := sys.Machine.TotalRefs()
	label := "packed on one page"
	if padded {
		label = "padded to two pages"
	}
	fmt.Printf("%-20s first page: state=%v pinned=%v; %.0f%% of references local\n",
		label, pg.State(), pg.Pinned(), 100*refs.LocalFraction())
	summary := collector.Summarize()
	fmt.Printf("%-20s trace: %d writably-shared page(s), %d falsely shared\n\n",
		"", summary.WritablyShared, summary.FalselyShared)
}

func main() {
	fmt.Println("-- counter pair --")
	run(false)
	run(true)

	// The paper's own false-sharing experiment: Primes2 before and after
	// copying divisors out of the writably-shared output vector.
	fmt.Println("-- Primes2 (§4.2) --")
	ev := numasim.NewEvaluator()
	cfg := numasim.DefaultConfig()
	cfg.NProc = 4
	ev.Config = cfg
	for _, name := range []string{"Primes2-untuned", "Primes2"} {
		res, err := numasim.EvaluateByName(ev, name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s alpha=%.2f gamma=%.2f (paper: untuned 0.66, tuned 1.00)\n",
			name, res.Alpha, res.Gamma)
	}
}
