// Custom policy: the NUMA manager accepts any implementation of the
// cache_policy interface (§2.3.2: "we could easily substitute another
// policy without modifying the NUMA manager"). This example implements a
// write-frequency policy — place a page globally once writes from
// different processors dominate its use — and races it against the
// paper's move-threshold policy on the sieve workload.
package main

import (
	"fmt"

	"numasim"
)

// writeBiased sends a page global when it has been moved at least twice
// AND it has ever been written, and otherwise keeps even hot read-only
// pages local forever. It exists to show the interface, not to win.
type writeBiased struct{}

// CachePolicy implements the placement decision.
//
//numalint:hotpath
func (writeBiased) CachePolicy(pg *numasim.Page, proc int, write bool, maxProt numasim.Prot) numasim.Location {
	if pg.EverWritten() && pg.Moves() >= 2 {
		return numasim.Global
	}
	return numasim.Local
}

// Name identifies the policy in reports.
//
//numalint:hotpath
func (writeBiased) Name() string { return "write-biased(2)" }

func run(pol numasim.Policy) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 4
	sys, err := numasim.New(numasim.WithConfig(cfg), numasim.WithPolicy(pol))
	if err != nil {
		panic(err)
	}
	w, err := numasim.WorkloadByName("Primes3")
	if err != nil {
		panic(err)
	}
	if err := w.Run(sys.Runtime, 4); err != nil {
		panic(err)
	}
	stats := sys.Kernel.NUMA().Stats()
	fmt.Printf("%-18s user %v  sys %v  moves %d  pins %d\n",
		pol.Name(), sys.Machine.Engine().TotalUserTime(),
		sys.Machine.Engine().TotalSysTime(), stats.Moves, stats.Pins)
}

func main() {
	fmt.Println("Primes3 under three placement policies:")
	run(numasim.DefaultPolicy())
	run(writeBiased{})
	run(numasim.NeverPinPolicy())
}
