// Remote references (§4.4): "On the ACE, remote references may be
// appropriate for data used frequently by one processor and infrequently
// by others." The paper's system deliberately does not use them
// automatically — "we see no reasonable way of determining this location
// without pragmas" — so this example supplies the pragma.
//
// A producer updates a buffer constantly while other processors sample it
// occasionally. Under automatic placement every sample costs a sync, a
// flush and a page copy; with the remote pragma the buffer sits in the
// producer's local memory, the producer runs at local speed, and samplers
// pay only the remote word latency.
package main

import (
	"fmt"

	"numasim"
)

func run(useRemote bool) {
	cfg := numasim.DefaultConfig()
	cfg.NProc = 4
	sys, err := numasim.New(numasim.WithConfig(cfg), numasim.WithPolicy(numasim.PragmaPolicy(nil)))
	if err != nil {
		panic(err)
	}

	buf := sys.Runtime.Alloc("telemetry", 4096)
	barrier := numasim.NewBarrier(4)

	err = sys.Runtime.Run(4, func(id int, c *numasim.Context) {
		if id == 0 && useRemote {
			c.Task().SetHome(buf, c.Proc())
		}
		barrier.Wait(c)
		if id == 0 { // producer
			for i := 0; i < 1200; i++ {
				for w := uint32(0); w < 16; w++ {
					c.Store32(buf+w*4, uint32(i))
				}
				c.Compute(20)
			}
		} else { // occasional samplers
			for s := 0; s < 30; s++ {
				c.Compute(800)
				_ = c.Load32(buf)
			}
		}
	})
	if err != nil {
		panic(err)
	}

	ns := sys.Kernel.NUMA().Stats()
	pg := sys.Runtime.Task().EntryAt(buf).Object().Page(0)
	label := "automatic placement"
	if useRemote {
		label = "remote pragma     "
	}
	fmt.Printf("%s  state=%-15v  sys %9v  syncs %3d  copies %3d\n",
		label, pg.State(), sys.Machine.Engine().TotalSysTime(), ns.Syncs, ns.Copies)
}

func main() {
	run(false)
	run(true)
}
