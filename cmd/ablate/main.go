// Command ablate runs the ablation studies DESIGN.md calls out: the pin
// threshold (§2.3.2), page size, scheduling affinity (§4.7), the Unix
// master (§4.6), the G/L latency ratio, and the simulation's scheduling
// quantum.
//
// Usage:
//
//	ablate [-nproc N] [-small] [-parallel N] [-app NAME]
//	       [-sweep threshold|pagesize|gl|quantum]
//	ablate -exp affinity|unixmaster|remote|replication|mix|policies
package main

import (
	"flag"
	"fmt"
	"os"

	"numasim/internal/harness"
	"numasim/internal/sim"
)

// render picks plain-text or CSV sweep output.
func render(csv bool, title, param string, rows []harness.SweepRow) string {
	if csv {
		return harness.RenderSweepCSV(param, rows)
	}
	return harness.RenderSweep(title, param, rows)
}

func main() {
	nproc := flag.Int("nproc", 7, "number of processors")
	smallFlag := flag.Bool("small", false, "use reduced problem sizes")
	app := flag.String("app", "Primes3", "application to sweep")
	size := flag.Int("size", 0, "problem size override for the swept application (0: 1000000 for Primes3, else the workload default)")
	sweep := flag.String("sweep", "", "sweep to run: threshold, pagesize, gl, quantum")
	exp := flag.String("exp", "", "experiment to run: affinity, unixmaster, remote, replication, mix, policies")
	csv := flag.Bool("csv", false, "emit sweeps as CSV for plotting")
	parallel := flag.Int("parallel", 0, "simulations to run concurrently (0: one per host CPU; results are identical at every setting)")
	flag.Parse()

	opts := harness.Options{NProc: *nproc, Small: *smallFlag, AppSize: *size, Parallelism: *parallel}
	if opts.AppSize == 0 && *app == "Primes3" {
		// Sweeps run the application many times; use a mid-scale sieve.
		opts.AppSize = 1000000
	}
	all := *sweep == "" && *exp == ""

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}

	if all || *sweep == "threshold" {
		rows, err := harness.ThresholdSweep(opts, *app, []int{0, 1, 2, 4, 8, 16, -1})
		if err != nil {
			fail(err)
		}
		fmt.Println(render(*csv, fmt.Sprintf("Pin threshold sweep (§2.3.2) on %s", *app), "threshold", rows))
	}
	if all || *sweep == "pagesize" {
		rows, err := harness.PageSizeSweep(opts, *app, []int{1024, 2048, 4096, 8192})
		if err != nil {
			fail(err)
		}
		fmt.Println(render(*csv, fmt.Sprintf("Page size sweep on %s", *app), "page_size", rows))
	}
	if all || *sweep == "gl" {
		rows, err := harness.GLSweep(opts, *app, []float64{0.5, 1, 2, 4})
		if err != nil {
			fail(err)
		}
		fmt.Println(render(*csv, fmt.Sprintf("Global-latency sweep on %s", *app), "g_scale", rows))
	}
	if all || *sweep == "quantum" {
		rows, err := harness.QuantumSweep(opts, *app, []sim.Time{
			50 * sim.Microsecond, 200 * sim.Microsecond, 1 * sim.Millisecond})
		if err != nil {
			fail(err)
		}
		fmt.Println(render(*csv, fmt.Sprintf("Scheduling quantum sweep on %s", *app), "quantum", rows))
	}
	if all || *exp == "affinity" {
		r, err := harness.AffinityCompare(opts, "Primes1")
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
	}
	if all || *exp == "remote" {
		r, err := harness.RemoteCompare(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
	}
	if all || *exp == "replication" {
		r, err := harness.ReplicationCompare(opts, "IMatMult")
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
	}
	if all || *exp == "policies" {
		rows, err := harness.PolicyCompare(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.RenderPolicyCompare(rows))
	}
	if all || *exp == "mix" {
		r, err := harness.MixRun(opts, []string{"IMatMult", "Primes1", "FFT"})
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Render())
	}
	if all || *exp == "unixmaster" {
		r, err := harness.UnixMasterCompare(opts, "Syscaller")
		if err != nil {
			fail(err)
		}
		fmt.Printf("Unix master (§4.6) on %s\n", r.App)
		fmt.Printf("  syscalls on home CPU:  user %.3fs, %.1f%% local references\n",
			r.Off.UserSec, 100*r.OffLoc)
		fmt.Printf("  syscalls on master:    user %.3fs, %.1f%% local references\n",
			r.On.UserSec, 100*r.OnLoc)
		fmt.Println()
	}
}
